// Ablation — client-side cooperative segment cache (DESIGN.md §14).
//
// NAS and fine-tune sweeps re-read the same hot backbones thousands of
// times while their bytes never change. This harness quantifies what the
// client cache buys on that pattern, in three tiers:
//
//   uncached   capacity 0 — every read pulls full payloads (the baseline).
//   validate   trust 0 — every read still asks the owning providers, but a
//              version match answers NotModified: metadata round trip, no
//              payload bytes.
//   trusted    a trust window — repeat reads inside the window are served
//              locally with no RPC at all.
//
// Sweep 1 (repeat-read) stores M models and reads each R times, reporting
// bytes-on-wire for the read phase, the reduction vs. uncached (must be
// >= 5x for the cached tiers once R >= 6 — the acceptance bar), and p50/p99
// read latency. Sweep 2 (shared backbone) has one client pull a model and
// N-1 more clients read it afterwards: the providers answer with redirect
// hints and the peers serve the payload (ScaleStore-style cooperative
// caching), offloading provider egress. Sweep 3 retires a cached model and
// checks the cache drops every entry rather than resurrecting stale bytes.
//
// --verify reads every model back against an in-memory copy and requires
// bit-identical content in every tier (exit 1 on any mismatch).
//
// Flags:
//   --gpus N         cluster size; providers = ceil(N/4)      (default 16)
//   --models N       models in the repeat-read sweep          (default 6)
//   --repeats N      reads per model                          (default 8)
//   --layers N       dense layers per model                   (default 10)
//   --width N        layer width                              (default 64)
//   --readers N      clients in the shared-backbone sweep     (default 4)
//   --capacity-mb N  per-client cache budget                  (default 64)
//   --trust S        trust window of the `trusted` tier       (default 3600)
//   --verify         bit-identical read-back in every tier
//   --metrics-out FILE  JSON metrics snapshot (client.cache.* counters)
//   --events-out FILE   flight-recorder event log over all sweeps
//                       (cache.trusted / cache.lookup / cache.peer /
//                       cache.peer_serve / gc.* lifecycle events)
//   --trace-out FILE    Chrome trace of the first sweep
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <vector>

#include "bench/nas_bench.h"
#include "model/layer.h"

using namespace evostore;

namespace {

struct SweepResult {
  double read_bulk_bytes = 0;  // bytes-on-wire during the read phase
  double p50 = 0;
  double p99 = 0;
  cache::CacheStats cache;
  uint64_t not_modified = 0;
  int mismatches = 0;
};

model::ArchGraph build_chain(int layers, int64_t width, int64_t salt) {
  std::vector<model::LayerDef> defs;
  defs.push_back(model::make_input(width));
  for (int i = 0; i < layers; ++i) {
    int64_t w = (i == layers - 1) ? width + salt : width;
    defs.push_back(model::make_dense(width, w));
  }
  auto g = model::ArchGraph::flatten(model::make_chain(std::move(defs)));
  return std::move(g).value();
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0;
  size_t i = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[i];
}

}  // namespace

int main(int argc, char** argv) {
  int gpus = bench::arg_int(argc, argv, "--gpus", 16);
  int models = bench::arg_int(argc, argv, "--models", 6);
  int repeats = bench::arg_int(argc, argv, "--repeats", 8);
  int layers = bench::arg_int(argc, argv, "--layers", 10);
  int64_t width = bench::arg_int(argc, argv, "--width", 64);
  int readers = bench::arg_int(argc, argv, "--readers", 4);
  int capacity_mb = bench::arg_int(argc, argv, "--capacity-mb", 64);
  int trust = bench::arg_int(argc, argv, "--trust", 3600);
  bool verify = bench::arg_flag(argc, argv, "--verify");
  bench::Observability obs = bench::Observability::from_args(argc, argv);

  bench::print_header("Cache ablation",
                      "client-side cooperative segment cache");
  std::printf("%d GPU(s), %d model(s) x %d read(s), %d x %lld dense, "
              "cache %d MB, trust %ds%s\n\n",
              gpus, models, repeats, layers, static_cast<long long>(width),
              capacity_mb, trust, verify ? ", VERIFY" : "");

  const uint64_t capacity = static_cast<uint64_t>(capacity_mb) << 20;

  // ---- Sweep 1: repeat reads under the three cache tiers -----------------
  auto sweep = [&](cache::CacheConfig ccache) -> SweepResult {
    SweepResult out;
    bench::Cluster cluster(gpus);
    obs.attach(cluster);
    core::ClientConfig ccfg;
    ccfg.cache = ccache;
    core::EvoStoreRepository repo(cluster.rpc, cluster.provider_nodes,
                                  core::ProviderConfig{}, {}, ccfg);
    core::Client& cli = repo.client(cluster.workers[0]);

    std::vector<model::Model> stored;
    auto fill = [&]() -> sim::CoTask<int> {
      for (int i = 0; i < models; ++i) {
        auto m = model::Model::random(repo.allocate_id(),
                                      build_chain(layers, width, i),
                                      /*seed=*/100 + static_cast<uint64_t>(i));
        m.set_quality(0.5);
        auto st = co_await cli.put_model(m, nullptr);
        if (!st.ok()) co_return 1;
        stored.push_back(std::move(m));
      }
      co_return 0;
    };
    if (cluster.sim.run_until_complete(fill()) != 0) {
      std::printf("FATAL: store phase failed\n");
      std::exit(1);
    }

    double bulk_before = cluster.rpc.stats().bulk_bytes;
    std::vector<double> latencies;
    auto read_all = [&]() -> sim::CoTask<int> {
      int bad = 0;
      for (int r = 0; r < repeats; ++r) {
        for (const model::Model& want : stored) {
          double t0 = cluster.sim.now();
          auto got = co_await cli.get_model(want.id());
          latencies.push_back(cluster.sim.now() - t0);
          if (!got.ok()) {
            ++bad;
            continue;
          }
          if (verify) {
            for (size_t v = 0; v < want.vertex_count(); ++v) {
              auto vid = static_cast<common::VertexId>(v);
              if (!got->segment(vid).content_equals(want.segment(vid))) {
                std::printf("verify: %s vertex %zu MISMATCH\n",
                            want.id().to_string().c_str(), v);
                ++bad;
                break;
              }
            }
          }
        }
      }
      co_return bad;
    };
    out.mismatches = cluster.sim.run_until_complete(read_all());
    out.read_bulk_bytes = cluster.rpc.stats().bulk_bytes - bulk_before;
    std::sort(latencies.begin(), latencies.end());
    out.p50 = percentile(latencies, 0.50);
    out.p99 = percentile(latencies, 0.99);
    if (cli.segment_cache() != nullptr) out.cache = cli.segment_cache()->stats();
    auto stats = cluster.sim.run_until_complete(cli.collect_stats());
    if (stats.ok()) out.not_modified = stats->totals.not_modified_reads;
    obs.detach(cluster);
    return out;
  };

  cache::CacheConfig off;  // capacity 0
  cache::CacheConfig validate;
  validate.capacity_bytes = capacity;
  cache::CacheConfig trusted = validate;
  trusted.trust_seconds = trust;

  SweepResult r_off = sweep(off);
  SweepResult r_val = sweep(validate);
  SweepResult r_tru = sweep(trusted);

  auto reduction = [&](const SweepResult& r) {
    return r.read_bulk_bytes == 0
               ? 0.0
               : r_off.read_bulk_bytes / r.read_bulk_bytes;
  };
  std::printf("%-10s %16s %10s %11s %11s %12s %12s\n", "tier",
              "read bytes", "reduction", "p50 read", "p99 read",
              "revalidated", "local hits");
  auto row = [&](const char* name, const SweepResult& r) {
    std::printf("%-10s %16.0f %9.1fx %9.2fus %9.2fus %12" PRIu64
                " %12" PRIu64 "\n",
                name, r.read_bulk_bytes, reduction(r), r.p50 * 1e6,
                r.p99 * 1e6, r.cache.revalidations, r.cache.hits);
  };
  row("uncached", r_off);
  row("validate", r_val);
  row("trusted", r_tru);

  bool ok = r_off.mismatches + r_val.mismatches + r_tru.mismatches == 0;
  // Acceptance bar: with R repeats the payload moves once instead of R
  // times, so both cached tiers must cut bytes-on-wire >= 5x once R >= 6.
  if (repeats >= 6) {
    if (reduction(r_val) < 5.0 || reduction(r_tru) < 5.0) {
      std::printf("!! FAIL: cached tiers below the 5x bytes-on-wire bar\n");
      ok = false;
    }
  }
  if (r_val.not_modified == 0 || r_tru.cache.hits == 0) {
    std::printf("!! FAIL: validation/trust paths never engaged\n");
    ok = false;
  }

  // ---- Sweep 2: shared backbone served by peer caches --------------------
  {
    bench::Cluster cluster(gpus);
    obs.attach(cluster);
    core::ClientConfig ccfg;
    ccfg.cache = validate;
    core::EvoStoreRepository repo(cluster.rpc, cluster.provider_nodes,
                                  core::ProviderConfig{}, {}, ccfg);
    int n_readers = std::min<int>(readers,
                                  static_cast<int>(cluster.nodes.size()));
    auto backbone = model::Model::random(repo.allocate_id(),
                                         build_chain(layers, width, 0), 7);
    backbone.set_quality(0.5);
    uint64_t peer_hits = 0, peer_misses = 0;
    int bad = 0;
    auto run = [&]() -> sim::CoTask<int> {
      auto st = co_await repo.client(cluster.nodes[0]).put_model(backbone,
                                                                 nullptr);
      if (!st.ok()) co_return -1;
      for (int i = 0; i < n_readers; ++i) {
        core::Client& cli = repo.client(cluster.nodes[static_cast<size_t>(i)]);
        auto got = co_await cli.get_model(backbone.id());
        if (!got.ok()) {
          ++bad;
          continue;
        }
        if (verify) {
          for (size_t v = 0; v < backbone.vertex_count(); ++v) {
            auto vid = static_cast<common::VertexId>(v);
            if (!got->segment(vid).content_equals(backbone.segment(vid))) {
              ++bad;
              break;
            }
          }
        }
        peer_hits += cli.segment_cache()->stats().peer_hits;
        peer_misses += cli.segment_cache()->stats().peer_misses;
      }
      co_return 0;
    };
    if (cluster.sim.run_until_complete(run()) != 0) {
      std::printf("FATAL: shared-backbone sweep failed\n");
      return 1;
    }
    auto stats = cluster.sim.run_until_complete(
        repo.client(cluster.nodes[0]).collect_stats());
    uint64_t redirects = stats.ok() ? stats->totals.redirects_issued : 0;
    uint64_t total = static_cast<uint64_t>(n_readers - 1) *
                     backbone.vertex_count();
    std::printf("\nshared backbone, %d reader(s): %" PRIu64
                " redirect(s) issued, %" PRIu64 "/%" PRIu64
                " segment(s) served by peers, %" PRIu64 " fallback(s)\n",
                n_readers, redirects, peer_hits, total, peer_misses);
    if (n_readers > 1 && peer_hits == 0) {
      std::printf("!! FAIL: no segment was ever served by a peer cache\n");
      ok = false;
    }
    ok = ok && bad == 0;
    obs.detach(cluster);
  }

  // ---- Sweep 3: retire must invalidate, never resurrect ------------------
  {
    bench::Cluster cluster(gpus);
    obs.attach(cluster);
    core::ClientConfig ccfg;
    ccfg.cache = trusted;  // the most caching-aggressive tier
    core::EvoStoreRepository repo(cluster.rpc, cluster.provider_nodes,
                                  core::ProviderConfig{}, {}, ccfg);
    core::Client& cli = repo.client(cluster.workers[0]);
    auto m = model::Model::random(repo.allocate_id(),
                                  build_chain(layers, width, 0), 7);
    m.set_quality(0.5);
    auto run = [&]() -> sim::CoTask<int> {
      if (!(co_await cli.put_model(m, nullptr)).ok()) co_return 1;
      if (!(co_await cli.get_model(m.id())).ok()) co_return 2;
      if (!(co_await cli.retire(m.id())).ok()) co_return 3;
      auto gone = co_await cli.get_model(m.id());
      co_return gone.status().code() == common::ErrorCode::kNotFound ? 0 : 4;
    };
    int rc = cluster.sim.run_until_complete(run());
    const auto& cs = cli.segment_cache()->stats();
    std::printf("retire invalidation: %" PRIu64 " entr(ies) dropped, "
                "re-read after retire -> %s\n",
                cs.invalidations, rc == 0 ? "NotFound" : "UNEXPECTED");
    if (rc != 0 || cs.invalidations != m.vertex_count() ||
        cli.segment_cache()->entry_count() != 0) {
      std::printf("!! FAIL: retire left cached entries behind (rc %d)\n", rc);
      ok = false;
    }
    obs.detach(cluster);
  }

  if (verify) {
    std::printf("verify: all tiers read back bit-identical content\n");
  }
  obs.finish();
  std::printf("overall: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
