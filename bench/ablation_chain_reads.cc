// Ablation — owner maps vs. ancestor-chain reconstruction.
//
// Paper §4.1 motivates owner maps against the "simple solution" that stores
// each derived model as a diff plus an ancestor reference: reads then have
// to examine the entire chain of incremental writes, so read overhead grows
// with lineage depth. This harness builds derivation chains of increasing
// length where every generation rewrites a different layer (so every
// ancestor owns live tensors) and measures full-model read latency through
// both paths.
//
// Flags: --layers N (default 80), --model-mb N (default 256)
#include "bench/bench_common.h"
#include "workload/arch_generator.h"

using namespace evostore;
using bench::Cluster;

namespace {

// Chain-graph where dense layer j has width base + salts[j] (0 = unchanged).
model::ArchGraph salted_graph(int layers, int64_t width,
                              const std::vector<int64_t>& salts) {
  std::vector<model::LayerDef> defs;
  defs.push_back(model::make_input(width));
  for (int j = 0; j < layers; ++j) {
    defs.push_back(model::make_dense(width, width + salts[j]));
  }
  return std::move(model::ArchGraph::flatten(
                       model::make_chain(std::move(defs))))
      .value();
}

struct ChainResult {
  double owner_map_ms = 0;
  double chain_walk_ms = 0;
};

ChainResult run_chain(int chain_length, int layers, int64_t width) {
  Cluster cluster(4);
  // Focus on the metadata/round-trip costs the two read paths differ in;
  // the payload bytes are identical either way, so the pool model would only
  // add a common offset.
  core::ProviderConfig pcfg;
  pcfg.pool_bandwidth = 0;
  core::EvoStoreRepository repo(cluster.rpc, cluster.provider_nodes, pcfg);
  auto& client = repo.client(cluster.workers[0]);

  auto build = [&]() -> sim::CoTask<common::ModelId> {
    std::vector<int64_t> salts(layers, 0);
    auto base_graph = salted_graph(layers, width, salts);
    auto base = model::Model::random(repo.allocate_id(), base_graph, 1);
    base.set_quality(0.5);
    (void)co_await client.put_model(base, nullptr);
    common::ModelId leaf = base.id();
    // Generation k rewrites dense layer k (ascending), keeping every earlier
    // generation's change — so the leaf's owner map spans the whole chain.
    for (int gen = 1; gen <= chain_length; ++gen) {
      salts[gen - 1] = 100 + gen;
      auto g = salted_graph(layers, width, salts);
      auto prep = co_await client.prepare_transfer(g, true);
      if (!prep.ok() || !prep->has_value()) {
        std::printf("!! chain build failed at generation %d\n", gen);
        co_return common::ModelId::invalid();
      }
      auto tc = std::move(prep->value());
      auto m = model::Model::random(repo.allocate_id(), g,
                                    static_cast<uint64_t>(100 + gen));
      for (size_t i = 0; i < tc.matches.size(); ++i) {
        m.segment(tc.matches[i].first) = tc.prefix_segments[i];
      }
      m.set_quality(0.5 + 0.001 * gen);
      (void)co_await client.put_model(m, &tc);
      leaf = m.id();
    }
    co_return leaf;
  };
  common::ModelId leaf = cluster.sim.run_until_complete(build());

  ChainResult out;
  auto timed_reads = [&]() -> sim::CoTask<void> {
    double t0 = cluster.sim.now();
    auto a = co_await client.get_model(leaf);
    out.owner_map_ms = (cluster.sim.now() - t0) * 1e3;
    t0 = cluster.sim.now();
    auto b = co_await client.get_model_via_chain(leaf);
    out.chain_walk_ms = (cluster.sim.now() - t0) * 1e3;
    if (!a.ok() || !b.ok()) std::printf("!! read failed\n");
  };
  cluster.sim.run_until_complete(timed_reads());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int layers = bench::arg_int(argc, argv, "--layers", 200);
  int model_mb = bench::arg_int(argc, argv, "--model-mb", 4);
  // Square dense layers sized so the model totals ~model_mb.
  auto width = static_cast<int64_t>(std::sqrt(
      static_cast<double>(model_mb) * (1 << 20) / (4.0 * layers)));

  bench::print_header("Ablation", "owner maps vs ancestor-chain reads "
                                  "(full-model read latency, ms)");
  std::printf("%d-layer / ~%d MB models; every generation rewrites one "
              "layer\n\n",
              layers, model_mb);
  std::printf("%-14s %16s %16s %10s\n", "chain length", "owner map (ms)",
              "chain walk (ms)", "ratio");
  for (int len : {1, 2, 4, 8, 16, 32, 64}) {
    if (len >= layers) break;
    auto r = run_chain(len, layers, width);
    std::printf("%-14d %16.2f %16.2f %9.1fx\n", len, r.owner_map_ms,
                r.chain_walk_ms, r.chain_walk_ms / r.owner_map_ms);
  }
  std::printf("\npaper §4.1: owner-map reads stay flat in chain length; the "
              "naive scheme grows linearly (one metadata+read round per "
              "ancestor).\n");
  return 0;
}
