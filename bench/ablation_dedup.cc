// Ablation — content-defined chunk dedup (DESIGN.md §13).
//
// The delta codec (PR 1) only deduplicates along ancestor edges: a model
// must name its base for shared bytes to collapse. This sweep builds the
// workload that defeats it — F model families whose roots share a
// byte-identical pretrained backbone but are stored as *unrelated* models
// (no TransferContext, so no owner-map or delta link ties them together) —
// and measures how much of that cross-lineage redundancy the provider-side
// chunk store recovers. Each family also derives C fine-tuned children via
// the normal transfer path, so dedup is measured composing with owner-map
// sharing, delta encoding, and refcount GC rather than in isolation.
//
// Reported: physical bytes with the delta codec alone (pre-dedup) vs. with
// chunk dedup (deduped), their ratio, and the chunk-store counters — both
// from direct provider introspection and through the GetStats RPC path so
// the wire plumbing is exercised too. The expected ratio is roughly
// (families / providers) on backbone bytes: each provider stores the shared
// backbone's chunks once however many of its resident roots carry them.
//
// Flags:
//   --gpus N             cluster size; providers = ceil(N/4)   (default 16)
//   --families N         unrelated roots sharing one backbone  (default 24)
//   --children N         fine-tuned children per family        (default 3)
//   --backbone-layers N  dense layers in the shared backbone   (default 12)
//   --head-layers N      family-specific head layers           (default 2)
//   --width N            layer width                           (default 48)
//   --retire-families N  families retired at the end (chunk GC) (default 1)
//   --verify             read every surviving model back and require
//                        bit-identical content (exit 1 on any mismatch)
//   --no-dedup           disable chunking (baseline sanity: deduped ==
//                        pre-dedup physical)
//   --metrics-out FILE   JSON metrics snapshot (chunk.hits/misses etc.)
#include <cstdio>
#include <vector>

#include "bench/nas_bench.h"
#include "model/layer.h"

using namespace evostore;

namespace {

// input(width) + `layers` dense layers; `salt` != 0 makes the final layers
// family-specific so children belong to a recognizable family head.
model::ArchGraph build_chain(int layers, int64_t width, int head_layers,
                             int64_t salt) {
  std::vector<model::LayerDef> defs;
  defs.push_back(model::make_input(width));
  for (int i = 0; i < layers; ++i) defs.push_back(model::make_dense(width, width));
  for (int i = 0; i < head_layers; ++i) {
    int64_t w = salt == 0 ? width : width + salt + i;
    defs.push_back(model::make_dense(width, w));
  }
  auto g = model::ArchGraph::flatten(model::make_chain(std::move(defs)));
  return std::move(g).value();
}

}  // namespace

int main(int argc, char** argv) {
  int gpus = bench::arg_int(argc, argv, "--gpus", 16);
  int families = bench::arg_int(argc, argv, "--families", 24);
  int children = bench::arg_int(argc, argv, "--children", 3);
  int backbone_layers = bench::arg_int(argc, argv, "--backbone-layers", 12);
  int head_layers = bench::arg_int(argc, argv, "--head-layers", 2);
  int64_t width = bench::arg_int(argc, argv, "--width", 48);
  int retire_families = bench::arg_int(argc, argv, "--retire-families", 1);
  bool verify = bench::arg_flag(argc, argv, "--verify");
  bool no_dedup = bench::arg_flag(argc, argv, "--no-dedup");
  bench::Observability obs = bench::Observability::from_args(argc, argv);

  bench::Cluster cluster(gpus);
  obs.attach(cluster);
  core::ProviderConfig pcfg;
  pcfg.chunking = !no_dedup;
  pcfg.chunker = bench::sim_scale_chunker();
  core::ClientConfig ccfg;
  ccfg.put_codec = compress::CodecId::kDeltaVsAncestor;
  core::EvoStoreRepository repo(cluster.rpc, cluster.provider_nodes, pcfg, {},
                                ccfg);
  core::Client& cli = repo.client(cluster.workers[0]);

  bench::print_header("Ablation", "content-defined chunk dedup");
  std::printf("%d provider(s), %d families x (1 root + %d children), "
              "backbone %d x %lld, dedup %s\n\n",
              static_cast<int>(cluster.provider_nodes.size()), families,
              children, backbone_layers, static_cast<long long>(width),
              no_dedup ? "OFF" : "on");

  // Every family root is Model::random over the SAME graph with the SAME
  // seed: byte-identical backbone + head content, stored as unrelated
  // models. Children go through prepare_transfer/put_model like any derived
  // model: inherited prefix by reference, fine-tuned head self-owned.
  constexpr uint64_t kBackboneSeed = 7;
  std::vector<model::Model> stored;  // in-memory copies for --verify
  size_t stored_per_family = 1 + static_cast<size_t>(children);
  auto run = [&]() -> sim::CoTask<int> {
    for (int f = 0; f < families; ++f) {
      auto root_graph = build_chain(backbone_layers, width, 0, 0);
      auto root = model::Model::random(repo.allocate_id(),
                                       std::move(root_graph), kBackboneSeed);
      root.set_quality(0.5);
      auto st = co_await cli.put_model(root, nullptr);
      if (!st.ok()) {
        std::printf("FATAL: root put failed: %s\n", st.to_string().c_str());
        co_return 1;
      }
      stored.push_back(std::move(root));
      for (int c = 0; c < children; ++c) {
        auto child_graph = build_chain(backbone_layers, width, head_layers,
                                       /*salt=*/7 + f);
        auto prep = co_await cli.prepare_transfer(child_graph, true);
        if (!prep.ok() || !prep->has_value()) {
          std::printf("FATAL: prepare_transfer failed\n");
          co_return 1;
        }
        auto tc = std::move(prep->value());
        auto child = model::Model::random(
            repo.allocate_id(), std::move(child_graph),
            /*seed=*/1000 + static_cast<uint64_t>(f) * 100 +
                static_cast<uint64_t>(c));
        for (size_t i = 0; i < tc.matches.size(); ++i) {
          child.segment(tc.matches[i].first) = tc.prefix_segments[i];
        }
        child.set_quality(0.6);
        st = co_await cli.put_model(child, &tc);
        if (!st.ok()) {
          std::printf("FATAL: child put failed: %s\n", st.to_string().c_str());
          co_return 1;
        }
        stored.push_back(std::move(child));
      }
    }
    co_return 0;
  };
  if (int rc = cluster.sim.run_until_complete(run()); rc != 0) return rc;

  size_t pre = repo.stored_pre_dedup_physical_bytes();
  size_t post = repo.stored_physical_bytes();
  double ratio = post == 0 ? 0.0
                           : static_cast<double>(pre) / static_cast<double>(post);
  std::printf("%-34s %14zu\n", "logical bytes", repo.stored_payload_bytes());
  std::printf("%-34s %14zu\n", "physical, delta alone (pre-dedup)", pre);
  std::printf("%-34s %14zu\n", "physical, deduped", post);
  std::printf("%-34s %14.2fx\n", "dedup ratio", ratio);
  std::printf("%-34s %14zu\n", "live chunks", repo.total_chunks());
  std::printf("%-34s %14llu\n", "dedup saved bytes",
              static_cast<unsigned long long>(repo.total_dedup_saved_bytes()));

  // Same numbers through the RPC path (the monitoring view): collect_stats
  // fans GetStats out over every provider and merges.
  auto stats = cluster.sim.run_until_complete(
      repo.collect_stats(cluster.workers[0]));
  if (!stats.ok()) {
    std::printf("FATAL: collect_stats failed\n");
    return 1;
  }
  const auto& t = stats->totals;
  std::printf("\nvia GetStats: hits %llu, misses %llu, freed %llu, "
              "physical %llu (pre-dedup %llu)\n",
              static_cast<unsigned long long>(t.chunk_hits),
              static_cast<unsigned long long>(t.chunk_misses),
              static_cast<unsigned long long>(t.chunks_freed),
              static_cast<unsigned long long>(t.physical_bytes),
              static_cast<unsigned long long>(t.pre_dedup_physical_bytes));
  if (t.physical_bytes != post || t.pre_dedup_physical_bytes != pre) {
    std::printf("FATAL: RPC-path stats disagree with direct introspection\n");
    return 1;
  }

  // Retire whole families (root + children) to drive chunk refcounts down
  // the same cascade as segment GC; survivors must stay readable.
  int retired = 0;
  if (retire_families > 0) {
    auto drain = [&]() -> sim::CoTask<int> {
      int ok = 0;
      size_t n = std::min(static_cast<size_t>(retire_families) *
                              stored_per_family,
                          stored.size());
      for (size_t i = stored.size() - n; i < stored.size(); ++i) {
        auto st = co_await cli.retire(stored[i].id());
        if (st.ok()) ++ok;
      }
      co_return ok;
    };
    retired = cluster.sim.run_until_complete(drain());
    size_t keep = stored.size() -
                  std::min(static_cast<size_t>(retire_families) *
                               stored_per_family,
                           stored.size());
    stored.resize(keep);
    uint64_t freed = 0;
    for (size_t i = 0; i < repo.provider_count(); ++i) {
      freed += repo.provider(i).chunk_store().stats().freed;
    }
    std::printf("\nretired %d model(s): %llu chunk(s) freed, "
                "%zu live, physical %zu\n",
                retired, static_cast<unsigned long long>(freed),
                repo.total_chunks(), repo.stored_physical_bytes());
  }

  if (verify) {
    auto check = [&]() -> sim::CoTask<int> {
      int bad = 0;
      for (const model::Model& want : stored) {
        auto got = co_await cli.get_model(want.id());
        if (!got.ok()) {
          std::printf("verify: load %s FAILED: %s\n",
                      want.id().to_string().c_str(),
                      got.status().to_string().c_str());
          ++bad;
          continue;
        }
        for (size_t v = 0; v < want.vertex_count(); ++v) {
          if (!got->segment(static_cast<common::VertexId>(v))
                   .content_equals(
                       want.segment(static_cast<common::VertexId>(v)))) {
            std::printf("verify: %s vertex %zu content MISMATCH\n",
                        want.id().to_string().c_str(), v);
            ++bad;
            break;
          }
        }
      }
      co_return bad;
    };
    int bad = cluster.sim.run_until_complete(check());
    std::printf("\nverify: %zu model(s) read back, %d mismatch(es)\n",
                stored.size(), bad);
    if (bad != 0) return 1;
  }

  obs.detach(cluster);
  obs.finish();
  return 0;
}
