// Fault-tolerance ablation: NAS completion under deterministic provider
// crash/restart cycles, message drops, deadlines, and retries.
//
// The paper's deployment story (§4.3: providers over restartable persistent
// backends) implies the search must ride through provider failures. This
// harness quantifies that: a seeded FaultInjector crashes provider
// processes on an MTBF/MTTR schedule while a full NAS run executes; clients
// retry with capped exponential backoff and idempotency tokens; crashed
// providers restore their catalogs, segments, refcounts, and dedup caches
// from their KV backends and resume serving.
//
// Reported per row: makespan vs. the fault-free baseline, crash/restart
// cycles actually hit, retries spent, responses replayed from the dedup
// cache, degraded (partial) LCP reduces — and the acceptance check: after
// retiring every surviving model, the repository must drain to EXACTLY the
// fault-free end state (zero models, zero segments, zero bytes), proving no
// reference count was ever leaked or double-applied.
//
// Beyond the MTBF matrix, three replication fault legs (DESIGN.md §15)
// exercise the k-way replica machinery end to end:
//   --kill-one-forever  provider 0 crashes with its backend WIPED (permanent
//                       loss), restarts empty 30 simulated seconds later, and
//                       anti-entropy repair rebuilds it from replica peers
//                       mid-run. The leg passes only if the cluster converges
//                       back to full k-way replication with a bit-identical
//                       client read-back and zero parked hints.
//   --drain             the last provider is drained out of the ring under
//                       ongoing traffic; its catalog must migrate to the
//                       successor replicas and the provider must end empty.
//   --partition         the kill-one-forever schedule plus a symmetric
//                       network partition islanding the recovering provider:
//                       its restart (and the hinted-handoff replay it
//                       triggers) happens INSIDE the partition, so replay
//                       traffic is held and re-delivered reordered after the
//                       heal. Proves handoff replay survives partitions.
//
// Flags: --gpus N        worker count            (default 128)
//        --candidates N  NAS candidate budget    (default 400)
//        --seed S        NAS + fault seed        (default 42)
//        --cache-mb N    per-client segment cache (0 = off). The cache must
//                        not change completion, the drain-to-zero end state,
//                        or --verify reproducibility — only wire traffic.
//        --replication K replica count override (0 = library default; 1
//                        restores the paper's single-owner placement — the
//                        replication legs above require K >= 2)
//        --kill-one-forever / --drain / --partition   enable the legs above
//        --legs-only     skip the MTBF matrix and run only the enabled legs.
//                        CI invariant runs use this so the exported event
//                        log covers exactly the orchestrated legs (the
//                        lossy matrix row may legitimately strand a parked
//                        hint when a drop interrupts the final replay,
//                        which the strict hint-balance invariant rejects).
//        --verify        run every fault config TWICE and compare digests
//                        (bit-identical reproducibility check)
//        --metrics-out FILE  JSON metrics snapshot over all fault configs
//        --events-out FILE   flight-recorder event log (JSON; a .csv path
//                            selects CSV). Like metrics — and unlike the
//                            tracer — recording is pure memory append, so
//                            the flag is KEPT under --verify and two
//                            verified reruns export byte-identical logs.
//        --trace-out FILE    Chrome trace of the first fault run. IGNORED
//                            under --verify: the tracer binds to the first
//                            run only, and its wire-header framing changes
//                            simulated timings, so run 2 could never match
//                            run 1's digest.
#include <cinttypes>
#include <cstring>

#include "bench/nas_bench.h"
#include "common/hash.h"

using namespace evostore;
using bench::Approach;

namespace {

// Order- and content-sensitive digest of everything a rerun must reproduce.
uint64_t outcome_digest(const bench::NasOutcome& out) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  auto mix = [&h](uint64_t v) { h = common::hash_combine(h, v); };
  uint64_t makespan_bits;
  static_assert(sizeof(makespan_bits) == sizeof(out.result.makespan));
  std::memcpy(&makespan_bits, &out.result.makespan, sizeof(makespan_bits));
  mix(makespan_bits);
  mix(out.result.traces.size());
  for (const auto& t : out.result.traces) {
    uint64_t finish_bits;
    std::memcpy(&finish_bits, &t.finish, sizeof(finish_bits));
    mix(finish_bits);
    mix(static_cast<uint64_t>(t.worker));
    mix(t.lcp_len);
  }
  mix(out.fault.crashes);
  mix(out.fault.restarts);
  mix(out.fault.retries);
  mix(out.fault.deduped_replays);
  mix(out.fault.end_models);
  mix(out.fault.end_segments);
  mix(static_cast<uint64_t>(out.fault.end_logical_bytes));
  mix(out.fault.read_failovers);
  mix(out.fault.hints_sent);
  mix(out.fault.hints_replayed);
  mix(out.fault.partitioned_messages);
  mix(static_cast<uint64_t>(out.fault.end_parked_hints));
  mix(static_cast<uint64_t>(out.fault.converged) |
      (static_cast<uint64_t>(out.fault.readback_ok) << 1) |
      (static_cast<uint64_t>(out.fault.repair_ok) << 2) |
      (static_cast<uint64_t>(out.fault.drain_ok) << 3));
  mix(out.fault.readback_digest);
  return h;
}

struct Row {
  const char* label;
  double mtbf;
  double mttr;
  double drop;
  int crash_providers;
};

}  // namespace

int main(int argc, char** argv) {
  int gpus = bench::arg_int(argc, argv, "--gpus", 128);
  size_t candidates = static_cast<size_t>(
      bench::arg_int(argc, argv, "--candidates", 400));
  uint64_t seed = static_cast<uint64_t>(bench::arg_int(argc, argv, "--seed", 42));
  int cache_mb = bench::arg_int(argc, argv, "--cache-mb", 0);
  size_t replication = static_cast<size_t>(
      bench::arg_int(argc, argv, "--replication", 0));
  bool leg_kill = bench::arg_flag(argc, argv, "--kill-one-forever");
  bool leg_drain = bench::arg_flag(argc, argv, "--drain");
  bool leg_partition = bench::arg_flag(argc, argv, "--partition");
  bool legs_only = bench::arg_flag(argc, argv, "--legs-only");
  bool verify = bench::arg_flag(argc, argv, "--verify");
  auto obs = bench::Observability::from_args(argc, argv);
  if (verify && !obs.trace_path.empty()) {
    std::printf("note: --trace-out ignored under --verify (tracing alters "
                "wire framing, so traced and untraced runs cannot digest-"
                "match)\n");
    obs.trace_path.clear();
  }

  bench::print_header(
      "Fault ablation",
      "NAS completion under provider crashes, drops, retries, recovery");
  std::printf("%d GPUs, %zu candidates, seed %" PRIu64 ", cache %d MB%s\n\n",
              gpus, candidates, seed, cache_mb,
              verify ? " — VERIFY MODE (each config run twice)" : "");

  cache::CacheConfig cache_cfg;
  cache_cfg.capacity_bytes = static_cast<uint64_t>(cache_mb) << 20;

  // Fault-free reference: same workload, no injector at all.
  bench::RunOptions baseline_opts;
  baseline_opts.cache = cache_cfg;
  baseline_opts.replication = replication;
  auto baseline = bench::run_nas_approach(Approach::kEvoStore, gpus,
                                          candidates, seed, baseline_opts);
  std::printf("fault-free baseline: makespan %.1fs, %zu tasks, %zu retired\n\n",
              baseline.result.makespan, baseline.result.traces.size(),
              baseline.result.retired);

  const Row rows[] = {
      {"gentle   (mtbf 600s)", 600, 5, 0.0, 1},
      {"standard (mtbf 150s)", 150, 5, 0.0, 1},
      {"harsh    (mtbf  60s)", 60, 8, 0.0, 2},
      {"lossy    (+1% drops)", 150, 5, 0.01, 1},
  };

  bool all_ok = true;
  if (!legs_only) {
    std::printf("%-22s %10s %8s %8s %9s %8s %8s %7s %7s\n", "config",
                "makespan", "slowdown", "crashes", "restarts", "retries",
                "replays", "partial", "drain");
    for (const Row& row : rows) {
      bench::RunOptions opts;
      opts.cache = cache_cfg;
      opts.replication = replication;
      opts.fault_seed = seed;
      opts.fault_mtbf = row.mtbf;
      opts.fault_mttr = row.mttr;
      opts.fault_drop_probability = row.drop;
      opts.fault_crash_providers = row.crash_providers;
      if (obs.enabled()) opts.observability = &obs;
      auto out = bench::run_nas_approach(Approach::kEvoStore, gpus, candidates,
                                         seed, opts);
      bool row_ok = out.fault.drained_to_zero &&
                    out.fault.drain_failures == 0 &&
                    out.result.traces.size() == baseline.result.traces.size();
      if (verify) {
        // The rerun must be bit-identical to the first, so it gets the exact
        // same observability attachment (metrics and events only; tracing is
        // disabled above and neither perturbs simulated time).
        auto again = bench::run_nas_approach(Approach::kEvoStore, gpus,
                                             candidates, seed, opts);
        if (outcome_digest(again) != outcome_digest(out)) {
          std::printf("!! %s: NOT reproducible (digest mismatch)\n", row.label);
          row_ok = false;
        }
      }
      all_ok = all_ok && row_ok;
      std::printf("%-22s %9.1fs %7.2fx %8" PRIu64 " %9" PRIu64 " %8" PRIu64
                  " %8" PRIu64 " %7" PRIu64 " %7s\n",
                  row.label, out.result.makespan,
                  out.result.makespan / baseline.result.makespan,
                  out.fault.crashes, out.fault.restarts, out.fault.retries,
                  out.fault.deduped_replays, out.fault.partial_lcp_queries,
                  out.fault.drained_to_zero ? "zero" : "LEAK");
      if (out.fault.exhausted != 0) {
        std::printf("   !! %" PRIu64
                    " operations exhausted their retry budget\n",
                    out.fault.exhausted);
      }
    }
  }

  // --- Replication fault legs (DESIGN.md §15) -------------------------------
  // Each leg is a full NAS run with one orchestrated fault, triggered at a
  // fixed fraction of the fault-free makespan so the schedule is a pure
  // function of the flags (required for --verify digest matching).
  const double leg_t = 0.25 * baseline.result.makespan;
  auto reproducible = [&](const bench::RunOptions& opts,
                          const bench::NasOutcome& first) {
    if (!verify) return true;
    auto again = bench::run_nas_approach(Approach::kEvoStore, gpus, candidates,
                                         seed, opts);
    return outcome_digest(again) == outcome_digest(first);
  };
  auto print_leg = [&](const char* label, const bench::NasOutcome& out,
                       bool ok) {
    std::printf("%-22s %9.1fs %7.2fx failovers %" PRIu64 ", hints %" PRIu64
                "/%" PRIu64 " replayed, parked %zu, partitioned %" PRIu64
                " — %s\n",
                label, out.result.makespan,
                out.result.makespan / baseline.result.makespan,
                out.fault.read_failovers, out.fault.hints_sent,
                out.fault.hints_replayed, out.fault.end_parked_hints,
                out.fault.partitioned_messages, ok ? "ok" : "FAIL");
    if (!ok) {
      std::printf("   !! repair=%d drain=%d converged=%d readback=%d "
                  "exhausted=%" PRIu64 " drain_failures=%" PRIu64
                  " drained=%d traces=%zu/%zu\n",
                  out.fault.repair_ok ? 1 : 0, out.fault.drain_ok ? 1 : 0,
                  out.fault.converged ? 1 : 0, out.fault.readback_ok ? 1 : 0,
                  out.fault.exhausted, out.fault.drain_failures,
                  out.fault.drained_to_zero ? 1 : 0, out.result.traces.size(),
                  baseline.result.traces.size());
    }
  };
  if (leg_kill || leg_drain || leg_partition) {
    std::printf("\nreplication fault legs (trigger at t=%.1fs):\n", leg_t);
  }
  if (leg_kill) {
    bench::RunOptions opts;
    opts.cache = cache_cfg;
    opts.replication = replication;
    opts.fault_seed = seed;
    opts.fault_crash_providers = 0;  // only the orchestrated permanent kill
    opts.kill_forever_at = leg_t;
    if (obs.enabled()) opts.observability = &obs;
    auto out = bench::run_nas_approach(Approach::kEvoStore, gpus, candidates,
                                       seed, opts);
    // Acceptance: the wiped provider is rebuilt from its replica peers, the
    // cluster converges back to FULL k-way replication with bit-identical
    // envelopes, the client read-back succeeds for every surviving model,
    // no hint stays parked, and no operation surfaced an error.
    bool ok = out.fault.repair_ok && out.fault.converged &&
              out.fault.readback_ok && out.fault.end_parked_hints == 0 &&
              out.fault.exhausted == 0 && out.fault.drain_failures == 0 &&
              out.fault.drained_to_zero &&
              out.result.traces.size() == baseline.result.traces.size() &&
              reproducible(opts, out);
    print_leg("kill-one-forever", out, ok);
    all_ok = all_ok && ok;
  }
  if (leg_drain) {
    bench::RunOptions opts;
    opts.cache = cache_cfg;
    opts.replication = replication;
    opts.fault_seed = seed;
    opts.fault_crash_providers = 0;
    opts.drain_at = leg_t;
    if (obs.enabled()) opts.observability = &obs;
    auto out = bench::run_nas_approach(Approach::kEvoStore, gpus, candidates,
                                       seed, opts);
    // Acceptance: drain completed under ongoing traffic, the drained
    // provider ended empty and out of the ring, and the surviving replicas
    // hold every model at full replication.
    bool ok = out.fault.drain_ok && out.fault.converged &&
              out.fault.readback_ok && out.fault.end_parked_hints == 0 &&
              out.fault.exhausted == 0 && out.fault.drain_failures == 0 &&
              out.fault.drained_to_zero &&
              out.result.traces.size() == baseline.result.traces.size() &&
              reproducible(opts, out);
    print_leg("drain", out, ok);
    all_ok = all_ok && ok;
  }
  if (leg_partition) {
    // Kill-one-forever schedule plus a partition islanding the recovering
    // provider over [leg_t+20, leg_t+40): the restart at leg_t+30 lands
    // INSIDE the window, so the hinted-handoff replay it triggers is held by
    // the partition and re-delivered in seeded reordered order at the heal.
    bench::RunOptions opts;
    opts.cache = cache_cfg;
    opts.replication = replication;
    opts.fault_seed = seed;
    opts.fault_crash_providers = 0;
    opts.kill_forever_at = leg_t;
    opts.partition_at = leg_t + 20;
    opts.partition_duration = 20;
    if (obs.enabled()) opts.observability = &obs;
    auto out = bench::run_nas_approach(Approach::kEvoStore, gpus, candidates,
                                       seed, opts);
    bool ok = out.fault.partitioned_messages > 0 && out.fault.repair_ok &&
              out.fault.converged && out.fault.readback_ok &&
              out.fault.end_parked_hints == 0 && out.fault.exhausted == 0 &&
              out.fault.drain_failures == 0 && out.fault.drained_to_zero &&
              out.result.traces.size() == baseline.result.traces.size() &&
              reproducible(opts, out);
    print_leg("partition+handoff", out, ok);
    all_ok = all_ok && ok;
  }

  std::printf("\nchecks:\n");
  if (!legs_only) {
    std::printf("  - every fault config completed all %zu candidates\n",
                baseline.result.traces.size());
  }
  std::printf("  - post-run drain (retire survivors) reached the fault-free "
              "end state: zero models / segments / bytes\n");
  if (leg_kill) {
    std::printf("  - kill-one-forever: wiped provider rebuilt from replica "
                "peers; full k-way replication restored; read-back "
                "bit-identical; zero client-visible errors\n");
  }
  if (leg_drain) {
    std::printf("  - drain: catalog migrated to successor replicas under "
                "ongoing traffic; drained provider ended empty\n");
  }
  if (leg_partition) {
    std::printf("  - partition: hinted-handoff replay was held by the "
                "partition and survived the reordered heal\n");
  }
  if (verify) {
    std::printf("  - reruns with the same seed were bit-identical "
                "(trace times, fault counters, end state)\n");
  }
  obs.finish();
  std::printf("overall: %s\n", all_ok ? "PASS" : "FAIL");
  return all_ok ? 0 : 1;
}
