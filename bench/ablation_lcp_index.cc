// Ablation — sublinear LCP serving via the catalog prefix index
// (DESIGN.md §16; ROADMAP "Sublinear LCP" item).
//
// Sweeps catalog size and answers one question: when does the O(prefix
// depth) trie walk beat the O(catalog) Algorithm 1 scan, and by how much —
// with byte-identical answers? Two legs per size:
//
//  * cluster mode (size <= --cluster-max): two full simulated clusters —
//    one scan-only, one with `lcp_index` (and `lcp_index_verify` under
//    --verify) — run the same metadata-only catalog, the same query storm,
//    and a retire + drain churn step; every response is compared field by
//    field and folded into a digest. Latency quantiles come from the
//    provider-side `lcp.seconds` histogram via the stats fan-out, index
//    footprint from the new StatsResponse fields.
//  * direct mode (larger sizes, up to 1M+): in-process PrefixIndex vs. the
//    catalog scan, with graphs regenerated on demand so memory stays
//    bounded by the index itself. The scan side uses an exact shortcut —
//    only models sharing the query's root signature can score (Algorithm 1
//    rejects all others at the root for exactly one vertex visit), so it
//    scans the root-signature bucket and charges 1 visit per model outside
//    it. Reported latencies are the provider cost model's (deterministic:
//    lcp_per_model_seconds * catalog + lcp_visit_seconds * visits for the
//    scan; visits only for the index), so reruns are byte-identical.
//
// Catalogs are fine-tune families: linear chains sharing a family spine
// with members mutated in the last layers — the regime the index serves
// (see prefix_index.h for why branchy graphs fall back to the scan).
//
// --verify additionally requires zero per-query mismatches and zero
// provider-side oracle mismatches, and exits non-zero otherwise; CI runs
// the bench twice and `cmp`s the outputs. Defaults keep CI fast; pass
// --sizes 1000,10000,100000,1000000 for the full sweep recorded in
// EXPERIMENTS.md.
#include <cinttypes>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/lcp.h"
#include "core/prefix_index.h"
#include "obs/metrics.h"
#include "tests/core/test_env.h"

using namespace evostore;
using bench::Cluster;
using common::ModelId;
using core::testing::widths_graph;

namespace {

constexpr int kMembersPerFamily = 64;
constexpr int kRootWidthSpread = 61;  // distinct root signatures in the mix

// Deterministic member spec -> widths. Member 0 is the family base; other
// members re-draw the last one or two layers (fine-tune-style tail
// mutations), so a family shares its spine in the trie.
std::vector<int64_t> member_widths(uint64_t family, uint64_t member) {
  common::Xoshiro256 rng(0x5eedULL + family * 0x9e3779b97f4a7c15ULL);
  size_t len = 6 + rng.below(7);  // 6..12 layers
  std::vector<int64_t> w(len);
  w[0] = 8 + static_cast<int64_t>(family % kRootWidthSpread);
  for (size_t j = 1; j < len; ++j) {
    w[j] = 16 + 8 * static_cast<int64_t>(rng.below(4));
  }
  if (member != 0) {
    common::Xoshiro256 mrng(member * 0xda942042e4dd58b5ULL + family);
    size_t cut = len - 1 - mrng.below(2);
    for (size_t j = cut; j < len; ++j) {
      w[j] = 17 + 8 * static_cast<int64_t>(mrng.below(4));
    }
  }
  return w;
}

model::ArchGraph catalog_graph(uint64_t i) {
  return widths_graph(
      member_widths(i / kMembersPerFamily, i % kMembersPerFamily));
}

double catalog_quality(uint64_t i) {
  // Coarse buckets so equal-depth quality and id tie-breaks fire often.
  return 0.25 * static_cast<double>(i % 4);
}

// Query q targets some family with a fresh (never stored) tail mutation.
model::ArchGraph query_graph(uint64_t q, uint64_t families) {
  uint64_t family = (q * 2654435761ULL) % families;
  return widths_graph(member_widths(family, 1000000 + q));
}

struct Answer {
  bool found = false;
  ModelId ancestor = ModelId::invalid();
  double quality = 0;
  std::vector<std::pair<common::VertexId, common::VertexId>> matches;
};

void fold_answer(common::Hasher128& digest, const Answer& a) {
  digest.u64(a.found ? 1 : 0);
  digest.u64(a.ancestor.value);
  uint64_t qbits = 0;
  static_assert(sizeof(qbits) == sizeof(a.quality));
  std::memcpy(&qbits, &a.quality, sizeof(qbits));
  digest.u64(qbits);
  digest.u64(a.matches.size());
  for (const auto& [gv, av] : a.matches) {
    digest.u64(gv);
    digest.u64(av);
  }
}

bool same_answer(const Answer& a, const Answer& b) {
  return a.found == b.found && a.ancestor == b.ancestor &&
         a.quality == b.quality && a.matches == b.matches;
}

struct LegResult {
  double p50_scan = 0, p99_scan = 0;
  double p50_index = 0, p99_index = 0;
  uint64_t index_nodes = 0;
  uint64_t index_bytes = 0;
  uint64_t fallbacks = 0;
  uint64_t oracle_mismatches = 0;  // cluster mode only
  size_t mismatches = 0;           // per-query answer disagreements
  common::Hash128 digest_scan{};
  common::Hash128 digest_index{};
};

// ---- direct mode ----------------------------------------------------------

LegResult run_direct(uint64_t size, int query_count, bool verify) {
  LegResult out;
  core::ProviderConfig cost_model;  // only the cost constants are used
  core::PrefixIndex idx;
  // Root-signature buckets: model indices by root width. Regenerating
  // graphs on demand keeps resident memory at the index plus one bucket of
  // 4-byte indices per root width.
  std::vector<std::vector<uint32_t>> buckets(kRootWidthSpread);
  for (uint64_t i = 0; i < size; ++i) {
    idx.insert(ModelId{i + 1}, catalog_quality(i), catalog_graph(i));
    buckets[(i / kMembersPerFamily) % kRootWidthSpread].push_back(
        static_cast<uint32_t>(i));
  }
  out.index_nodes = idx.node_count();
  out.index_bytes = idx.memory_bytes();

  uint64_t families = (size + kMembersPerFamily - 1) / kMembersPerFamily;
  obs::Histogram scan_hist;
  obs::Histogram index_hist;
  common::Hasher128 scan_digest(1);
  common::Hasher128 index_digest(1);
  core::LcpWorkspace ws;
  for (int q = 0; q < query_count; ++q) {
    uint64_t family = (static_cast<uint64_t>(q) * 2654435761ULL) % families;
    model::ArchGraph query = query_graph(static_cast<uint64_t>(q), families);
    uint64_t root_bucket = family % kRootWidthSpread;

    // Scan side: exact answer from the root bucket; everything else is a
    // one-visit root reject.
    Answer scan;
    core::LcpCost scan_cost;
    for (uint32_t i : buckets[root_bucket]) {
      model::ArchGraph stored = catalog_graph(i);
      core::LcpResult r = ws.run(query, stored, &scan_cost);
      if (r.length() == 0) continue;
      ModelId id{static_cast<uint64_t>(i) + 1};
      double quality = catalog_quality(i);
      bool better = false;
      if (!scan.found) {
        better = true;
      } else if (r.length() != scan.matches.size()) {
        better = r.length() > scan.matches.size();
      } else if (quality != scan.quality) {
        better = quality > scan.quality;
      } else {
        better = id < scan.ancestor;
      }
      if (better) {
        scan.found = true;
        scan.ancestor = id;
        scan.quality = quality;
        scan.matches = std::move(r.matches);
      }
    }
    scan_cost.vertex_visits += size - buckets[root_bucket].size();
    double scan_seconds =
        cost_model.lcp_per_model_seconds * static_cast<double>(size) +
        cost_model.lcp_visit_seconds *
            static_cast<double>(scan_cost.vertex_visits);
    scan_hist.add(scan_seconds);
    fold_answer(scan_digest, scan);

    // Index side: the provider's serving path (all catalogs here are
    // linear, so the gate is open by construction).
    Answer indexed;
    core::LcpCost index_cost;
    auto tokens = core::prefix_tokens(query);
    auto hit = idx.lookup(tokens);
    index_cost.vertex_visits += tokens.size() + hit.nodes_visited;
    bool fell_back = false;
    if (hit.found) {
      model::ArchGraph stored = catalog_graph(hit.best.value - 1);
      core::LcpResult r = ws.run(query, stored, &index_cost);
      if (r.length() != hit.depth) {
        fell_back = true;  // outside the exactness family: serve the scan
      } else {
        indexed.found = true;
        indexed.ancestor = hit.best;
        indexed.quality = catalog_quality(hit.best.value - 1);
        indexed.matches = std::move(r.matches);
      }
    }
    if (fell_back) {
      ++out.fallbacks;
      indexed = scan;
      index_hist.add(scan_seconds);
    } else {
      index_hist.add(cost_model.lcp_visit_seconds *
                     static_cast<double>(index_cost.vertex_visits));
    }
    fold_answer(index_digest, indexed);
    if (verify && !same_answer(scan, indexed)) ++out.mismatches;
  }
  out.p50_scan = scan_hist.quantile(0.5);
  out.p99_scan = scan_hist.quantile(0.99);
  out.p50_index = index_hist.quantile(0.5);
  out.p99_index = index_hist.quantile(0.99);
  out.digest_scan = scan_digest.finish();
  out.digest_index = index_digest.finish();
  return out;
}

// ---- cluster mode ---------------------------------------------------------

struct ClusterRun {
  std::vector<Answer> answers;
  double p50 = 0, p99 = 0;
  uint64_t index_nodes = 0;
  uint64_t index_bytes = 0;
  uint64_t fallbacks = 0;
  uint64_t oracle_mismatches = 0;
  common::Hash128 digest{};
};

ClusterRun run_cluster_one(uint64_t size, int query_count, int gpus,
                           bool use_index, bool verify) {
  Cluster cluster(gpus);
  core::ProviderConfig pcfg;
  pcfg.pool_bandwidth = 0;  // metadata-only: this ablation is about the scan
  pcfg.lcp_index = use_index;
  pcfg.lcp_index_verify = use_index && verify;
  core::EvoStoreRepository repo(cluster.rpc, cluster.provider_nodes, pcfg, {},
                                {});

  uint64_t families = (size + kMembersPerFamily - 1) / kMembersPerFamily;
  std::vector<ModelId> ids;
  auto populate = [&]() -> sim::CoTask<void> {
    auto& client = repo.client(cluster.workers[0]);
    for (uint64_t i = 0; i < size; ++i) {
      model::Model m(repo.allocate_id(), catalog_graph(i));
      m.set_quality(catalog_quality(i));
      ids.push_back(m.id());
      auto st = co_await client.put_model(m, nullptr);
      if (!st.ok()) std::printf("!! populate: %s\n", st.to_string().c_str());
    }
  };
  cluster.sim.run_until_complete(populate());

  ClusterRun out;
  common::Hasher128 digest(1);
  auto storm = [&]() -> sim::CoTask<void> {
    auto& client = repo.client(cluster.workers[0]);
    for (int q = 0; q < query_count; ++q) {
      auto r = co_await client.query_lcp(
          query_graph(static_cast<uint64_t>(q), families));
      Answer a;
      if (r.ok() && r->found) {
        a.found = true;
        a.ancestor = r->ancestor;
        a.quality = r->quality;
        a.matches = r->matches;
      }
      out.answers.push_back(std::move(a));
    }
  };
  cluster.sim.run_until_complete(storm());

  // Churn: retire a slice of the catalog, then drain one provider (its
  // models replicate-install elsewhere), then re-answer the same storm —
  // the incremental-maintenance paths must keep answers equal to the
  // scan's.
  auto churn = [&]() -> sim::CoTask<void> {
    auto& client = repo.client(cluster.workers[0]);
    for (size_t i = 0; i < ids.size(); i += 7) {
      auto st = co_await client.retire(ids[i]);
      if (!st.ok()) std::printf("!! retire: %s\n", st.to_string().c_str());
    }
  };
  cluster.sim.run_until_complete(churn());
  if (repo.provider_count() > 1) {
    auto st = cluster.sim.run_until_complete(repo.drain_provider(1));
    if (!st.ok()) std::printf("!! drain: %s\n", st.to_string().c_str());
  }
  cluster.sim.run_until_complete(storm());

  for (const Answer& a : out.answers) fold_answer(digest, a);
  out.digest = digest.finish();

  auto stats = cluster.sim.run_until_complete(
      repo.client(cluster.workers[0]).collect_stats());
  if (stats.ok()) {
    for (const auto& h : stats->totals.histograms) {
      if (h.name == "lcp.seconds") {
        out.p50 = h.p50;
        out.p99 = h.p99;
      }
    }
    out.index_nodes = stats->totals.lcp_index_nodes;
    out.index_bytes = stats->totals.lcp_index_bytes;
    out.fallbacks = stats->totals.lcp_index_fallback_scans;
  }
  for (size_t p = 0; p < repo.provider_count(); ++p) {
    out.oracle_mismatches +=
        repo.provider(p).stats().lcp_index_verify_mismatches;
  }
  return out;
}

LegResult run_cluster(uint64_t size, int query_count, int gpus, bool verify) {
  ClusterRun scan = run_cluster_one(size, query_count, gpus, false, verify);
  ClusterRun indexed = run_cluster_one(size, query_count, gpus, true, verify);
  LegResult out;
  out.p50_scan = scan.p50;
  out.p99_scan = scan.p99;
  out.p50_index = indexed.p50;
  out.p99_index = indexed.p99;
  out.index_nodes = indexed.index_nodes;
  out.index_bytes = indexed.index_bytes;
  out.fallbacks = indexed.fallbacks;
  out.oracle_mismatches = indexed.oracle_mismatches;
  out.digest_scan = scan.digest;
  out.digest_index = indexed.digest;
  for (size_t i = 0;
       i < scan.answers.size() && i < indexed.answers.size(); ++i) {
    if (!same_answer(scan.answers[i], indexed.answers[i])) ++out.mismatches;
  }
  if (scan.answers.size() != indexed.answers.size()) ++out.mismatches;
  return out;
}

std::vector<uint64_t> parse_sizes(const std::string& csv) {
  std::vector<uint64_t> sizes;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    sizes.push_back(std::strtoull(csv.substr(pos, comma - pos).c_str(),
                                  nullptr, 10));
    pos = comma + 1;
  }
  return sizes;
}

}  // namespace

int main(int argc, char** argv) {
  std::string sizes_csv =
      bench::arg_str(argc, argv, "--sizes", "1000,10000,100000");
  int query_count = bench::arg_int(argc, argv, "--queries", 64);
  int cluster_max = bench::arg_int(argc, argv, "--cluster-max", 10000);
  int gpus = bench::arg_int(argc, argv, "--gpus", 8);
  bool verify = bench::arg_flag(argc, argv, "--verify");

  bench::print_header(
      "Ablation — LCP prefix index",
      "catalog scan vs. trie-indexed find_ancestor (DESIGN.md §16)");
  std::printf("queries/size: %d, cluster legs up to %d models, %s\n\n",
              query_count, cluster_max,
              verify ? "verify ON (scan oracle per query)" : "verify OFF");
  std::printf("%-9s %-8s %12s %12s %12s %12s %9s %10s %9s %s\n", "catalog",
              "mode", "scan p50us", "scan p99us", "index p50us", "index p99us",
              "speedup", "idx nodes", "idx MiB", "answers");

  bool failed = false;
  for (uint64_t size : parse_sizes(sizes_csv)) {
    bool cluster_leg = size <= static_cast<uint64_t>(cluster_max);
    LegResult r = cluster_leg
                      ? run_cluster(size, query_count, gpus, verify)
                      : run_direct(size, query_count, verify);
    bool identical = r.digest_scan == r.digest_index && r.mismatches == 0 &&
                     r.oracle_mismatches == 0;
    double speedup = r.p50_index > 0 ? r.p50_scan / r.p50_index : 0;
    std::printf("%-9" PRIu64 " %-8s %12.3f %12.3f %12.3f %12.3f %8.1fx "
                "%10" PRIu64 " %9.2f %s\n",
                size, cluster_leg ? "cluster" : "direct", r.p50_scan * 1e6,
                r.p99_scan * 1e6, r.p50_index * 1e6, r.p99_index * 1e6,
                speedup, r.index_nodes,
                static_cast<double>(r.index_bytes) / (1024.0 * 1024.0),
                identical ? "identical" : "MISMATCH");
    if (r.fallbacks > 0) {
      std::printf("          (%" PRIu64 " fallback scans)\n", r.fallbacks);
    }
    if (!identical) {
      failed = true;
      std::printf("!! %zu per-query mismatches, %" PRIu64
                  " oracle mismatches, digests %s\n",
                  r.mismatches, r.oracle_mismatches,
                  r.digest_scan == r.digest_index ? "equal" : "DIFFER");
    }
  }
  std::printf("\nanswer digests compare the full (found, ancestor, quality, "
              "matches) tuple per query; index latency must stay flat as the "
              "scan grows linearly.\n");
  if (failed) {
    std::printf("FAILED: index answers diverged from the scan\n");
    return 1;
  }
  return 0;
}
