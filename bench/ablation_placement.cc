// Ablation — co-located vs. dedicated providers.
//
// Paper §4.1: "The providers can either be co-located with the application
// processes on the same compute nodes or be deployed separately on
// dedicated nodes." This harness runs the Fig.-4 write workload under both
// deployments with the same total provider count and compares aggregated
// write bandwidth: co-location shares NICs between workers and providers
// but keeps 1/P of traffic node-local; dedicated providers get clean NICs
// but every byte crosses the fabric.
//
// Flags: --gpus N (default 64), --model-mb N (default 1024)
#include "bench/bench_common.h"
#include "sim/sync.h"
#include "workload/arch_generator.h"

using namespace evostore;

namespace {

double run_deployment(bool dedicated, int gpus, const model::ArchGraph& graph,
                      int frozen_layers) {
  bench::Cluster cluster(gpus);
  std::vector<common::NodeId> provider_nodes;
  if (dedicated) {
    // Same provider count, but each on its own extra node.
    for (size_t i = 0; i < cluster.nodes.size(); ++i) {
      provider_nodes.push_back(cluster.fabric.add_node(25e9, 25e9));
    }
  } else {
    provider_nodes = cluster.provider_nodes;
  }
  core::EvoStoreRepository repo(cluster.rpc, provider_nodes);
  sim::Barrier barrier(cluster.sim, gpus);
  double model_bytes = static_cast<double>(graph.total_param_bytes());
  std::vector<double> times(gpus, 0.0);

  auto worker = [&](int w) -> sim::CoTask<void> {
    auto& client = repo.client(cluster.workers[w]);
    auto base = workload::make_base_model(repo.allocate_id(), graph,
                                          static_cast<uint64_t>(w));
    (void)co_await client.put_model(base, nullptr);
    auto owners = core::OwnerMap::self_owned(base.id(), graph.size());
    auto derived = workload::derive_partial(repo.allocate_id(), base, owners,
                                            frozen_layers,
                                            static_cast<uint64_t>(w) + 7777);
    co_await barrier.arrive_and_wait();
    double t0 = cluster.sim.now();
    (void)co_await client.put_model(derived.model, &derived.transfer);
    times[w] = cluster.sim.now() - t0;
  };
  std::vector<sim::Future<void>> futures;
  for (int w = 0; w < gpus; ++w) futures.push_back(cluster.sim.spawn(worker(w)));
  cluster.sim.run();

  double agg = 0;
  for (double t : times) agg += model_bytes / t;
  return agg / 1e9;
}

}  // namespace

int main(int argc, char** argv) {
  int gpus = bench::arg_int(argc, argv, "--gpus", 64);
  int model_mb = bench::arg_int(argc, argv, "--model-mb", 1024);

  bench::print_header("Ablation",
                      "provider placement: co-located vs dedicated nodes");
  workload::ArchGenConfig gen;
  gen.total_bytes = static_cast<size_t>(model_mb) << 20;
  gen.leaf_layers = 100;
  auto graph = workload::generate_chain(gen);
  std::printf("%d GPUs, %.2f GB models, 100 layers\n\n", gpus,
              graph.total_param_bytes() / 1e9);

  std::printf("%-12s %22s %22s\n", "modified", "co-located (GB/s)",
              "dedicated (GB/s)");
  for (int pct : {25, 100}) {
    int frozen = 100 * (100 - pct) / 100;
    double colo = run_deployment(false, gpus, graph, frozen);
    double dedi = run_deployment(true, gpus, graph, frozen);
    std::printf("%-11d%% %22.1f %22.1f\n", pct, colo, dedi);
  }
  std::printf("\nwith pool-bound providers the two deployments are close; "
              "dedicated nodes win when worker NICs saturate, co-location "
              "wins on node-local traffic (1/P of requests) and hardware "
              "budget.\n");
  return 0;
}
