// Ablation — zero-cost-proxy candidate estimation (paper §6, future work).
//
// "Zero cost proxies offer the opportunity to reduce the training costs.
//  With reduced training costs, the percentage of the workflow dominated by
//  I/O increases, potentially requiring further improvements..."
//
// This harness shrinks per-candidate training to a fraction of an epoch and
// measures how the repository-I/O share of the end-to-end runtime grows for
// EvoStore — quantifying how much headroom the design has before I/O
// becomes the bottleneck.
//
// Flags: --gpus N (default 64), --candidates N (default 400)
#include "bench/nas_bench.h"

using namespace evostore;

int main(int argc, char** argv) {
  int gpus = bench::arg_int(argc, argv, "--gpus", 64);
  size_t candidates =
      static_cast<size_t>(bench::arg_int(argc, argv, "--candidates", 400));

  bench::print_header("Ablation",
                      "zero-cost-proxy estimation: I/O share vs training cost");
  std::printf("%d GPUs, %zu candidates, EvoStore transfer learning\n\n", gpus,
              candidates);

  std::printf("%-16s %12s %12s %14s %12s\n", "train fraction", "makespan",
              "io total", "io share", "transfers");
  for (double fraction : {1.0, 0.5, 0.25, 0.1, 0.05}) {
    bench::Cluster cluster(gpus);
    nas::AttnSearchSpace space;
    core::EvoStoreRepository repo(cluster.rpc, cluster.provider_nodes);
    nas::NasConfig cfg;
    cfg.total_candidates = candidates;
    cfg.population_cap = 100;
    cfg.sample_size = 10;
    cfg.seed = 42;
    cfg.train_fraction = fraction;
    auto r = nas::run_nas(cluster.sim, cluster.fabric, space, &repo,
                          cluster.workers, cluster.controller, cfg);
    double share = r.total_io_seconds /
                   (r.total_io_seconds + r.total_train_seconds);
    std::printf("%-16.2f %11.1fs %11.1fs %13.2f%% %12zu\n", fraction,
                r.makespan, r.total_io_seconds, 100.0 * share, r.transfers);
  }
  std::printf("\nshape check: the I/O share grows as training shrinks "
              "(paper §6's motivation for further I/O improvements), while "
              "remaining small in absolute terms thanks to incremental "
              "storage.\n");
  return 0;
}
