// Shared helpers for the figure-reproduction harnesses.
#pragma once

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/repository.h"
#include "net/fabric.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace evostore::bench {

/// A Polaris-like cluster slice (paper §5.1/§5.4): `gpus` workers, 4 per
/// node, one provider per node, 25 GB/s full-duplex NICs, 1.5 us fabric
/// latency. The controller gets its own node.
struct Cluster {
  sim::Simulation sim;
  net::Fabric fabric;
  net::RpcSystem rpc;
  common::NodeId controller;
  std::vector<common::NodeId> nodes;          // compute nodes
  std::vector<common::NodeId> workers;        // one entry per GPU
  std::vector<common::NodeId> provider_nodes; // co-located, one per node

  explicit Cluster(int gpus, int gpus_per_node = 4)
      : fabric(sim, net::FabricConfig{.latency = 1.5e-6, .local_latency = 2e-7}),
        rpc(fabric) {
    controller = fabric.add_node(25e9, 25e9, "controller");
    int n_nodes = (gpus + gpus_per_node - 1) / gpus_per_node;
    for (int n = 0; n < n_nodes; ++n) {
      auto node = fabric.add_node(25e9, 25e9);
      nodes.push_back(node);
      provider_nodes.push_back(node);
      for (int g = 0; g < gpus_per_node &&
                      static_cast<int>(workers.size()) < gpus;
           ++g) {
        workers.push_back(node);
      }
    }
  }
};

inline int arg_int(int argc, char** argv, const char* flag, int fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == flag) return std::atoi(argv[i + 1]);
  }
  return fallback;
}

inline bool arg_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == flag) return true;
  }
  return false;
}

inline std::string arg_str(int argc, char** argv, const char* flag,
                           std::string fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == flag) return argv[i + 1];
  }
  return fallback;
}

/// `--metrics-out FILE` / `--trace-out FILE` / `--events-out FILE` support
/// for the harnesses.
///
/// Owns the cluster-wide MetricsRegistry, the Tracer, and the flight
/// recorder (EventLog). Lifecycle: `attach(cluster)` before the workload
/// runs (the tracer binds to the FIRST cluster attached — later clusters
/// get metrics and events only, so a multi-scale sweep traces its first
/// run rather than concatenating unrelated traces); `detach(cluster)`
/// before the cluster is destroyed; `finish()` after all runs writes the
/// requested files. All exports are keyed on simulated time and
/// deterministic registry/span/ring state, so two identical seeded runs
/// write byte-identical files. Unlike the tracer (which changes wire
/// framing and is therefore forbidden under --verify), metrics and events
/// are pure in-memory recording and stay available under --verify.
struct Observability {
  std::string metrics_path;  // empty = no metrics export
  std::string trace_path;    // empty = no trace export
  std::string events_path;   // empty = no event-log export (.csv = CSV)
  obs::MetricsRegistry registry;
  obs::EventLog events;
  std::optional<obs::Tracer> tracer;

  static Observability from_args(int argc, char** argv) {
    Observability o;
    o.metrics_path = arg_str(argc, argv, "--metrics-out", "");
    o.trace_path = arg_str(argc, argv, "--trace-out", "");
    o.events_path = arg_str(argc, argv, "--events-out", "");
    return o;
  }

  bool enabled() const {
    return !metrics_path.empty() || !trace_path.empty() ||
           !events_path.empty();
  }

  void attach(Cluster& cluster) {
    if (!enabled()) return;
    cluster.rpc.set_metrics(&registry);
    if (!events_path.empty()) cluster.rpc.set_events(&events);
    if (!trace_path.empty() && !tracer.has_value()) {
      tracer.emplace(cluster.sim);
      cluster.rpc.set_tracer(&*tracer);
    }
  }

  /// Unhook from `cluster` (must precede its destruction; the tracer keeps
  /// only recorded spans afterwards, never touching the dead simulation).
  void detach(Cluster& cluster) {
    cluster.rpc.set_tracer(nullptr);
    cluster.rpc.set_events(nullptr);
    cluster.rpc.set_metrics(nullptr);
  }

  /// Write the requested files; prints one line per file written.
  void finish() const {
    if (!metrics_path.empty()) {
      std::ofstream out(metrics_path);
      registry.write_json(out);
      out << "\n";
      std::printf("metrics snapshot -> %s\n", metrics_path.c_str());
    }
    if (!events_path.empty()) {
      std::ofstream out(events_path);
      bool csv = events_path.size() >= 4 &&
                 events_path.compare(events_path.size() - 4, 4, ".csv") == 0;
      if (csv) {
        events.write_csv(out);
      } else {
        events.write_json(out);
        out << "\n";
      }
      std::printf("event log (%zu events, %" PRIu64 " dropped) -> %s\n",
                  events.size(), events.dropped(), events_path.c_str());
    }
    if (!trace_path.empty() && tracer.has_value()) {
      std::ofstream out(trace_path);
      tracer->write_chrome_trace(out);
      out << "\n";
      std::printf("chrome trace (%zu spans) -> %s\n",
                  tracer->complete_count(), trace_path.c_str());
    }
  }
};

inline void print_header(const char* figure, const char* description) {
  std::printf("==================================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("==================================================================\n");
}

}  // namespace evostore::bench
