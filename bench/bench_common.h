// Shared helpers for the figure-reproduction harnesses.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/repository.h"
#include "net/fabric.h"

namespace evostore::bench {

/// A Polaris-like cluster slice (paper §5.1/§5.4): `gpus` workers, 4 per
/// node, one provider per node, 25 GB/s full-duplex NICs, 1.5 us fabric
/// latency. The controller gets its own node.
struct Cluster {
  sim::Simulation sim;
  net::Fabric fabric;
  net::RpcSystem rpc;
  common::NodeId controller;
  std::vector<common::NodeId> nodes;          // compute nodes
  std::vector<common::NodeId> workers;        // one entry per GPU
  std::vector<common::NodeId> provider_nodes; // co-located, one per node

  explicit Cluster(int gpus, int gpus_per_node = 4)
      : fabric(sim, net::FabricConfig{.latency = 1.5e-6, .local_latency = 2e-7}),
        rpc(fabric) {
    controller = fabric.add_node(25e9, 25e9, "controller");
    int n_nodes = (gpus + gpus_per_node - 1) / gpus_per_node;
    for (int n = 0; n < n_nodes; ++n) {
      auto node = fabric.add_node(25e9, 25e9);
      nodes.push_back(node);
      provider_nodes.push_back(node);
      for (int g = 0; g < gpus_per_node &&
                      static_cast<int>(workers.size()) < gpus;
           ++g) {
        workers.push_back(node);
      }
    }
  }
};

inline int arg_int(int argc, char** argv, const char* flag, int fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == flag) return std::atoi(argv[i + 1]);
  }
  return fallback;
}

inline bool arg_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == flag) return true;
  }
  return false;
}

inline void print_header(const char* figure, const char* description) {
  std::printf("==================================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("==================================================================\n");
}

}  // namespace evostore::bench
