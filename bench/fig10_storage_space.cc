// Figure 10 — Storage space overhead: EvoStore vs. HDF5+PFS, with and
// without retirement of candidates dropped from the NAS population.
//
// Paper §5.6 claims to reproduce: a large dedup gap between EvoStore and
// HDF5+PFS both with and without retirement (the conclusions quantify it as
// "up to 5x less storage space"); retirement shrinks both further, with
// EvoStore ~1.7x below HDF5+PFS in the retired configuration.
//
// Flags: --gpus N (default 128), --candidates N (default 1000)
#include "bench/nas_bench.h"

using namespace evostore;
using bench::Approach;

int main(int argc, char** argv) {
  int gpus = bench::arg_int(argc, argv, "--gpus", 128);
  size_t candidates =
      static_cast<size_t>(bench::arg_int(argc, argv, "--candidates", 1000));

  bench::print_header("Figure 10", "repository storage space (GB)");
  std::printf("%d GPUs, %zu candidates, population cap 100\n\n", gpus,
              candidates);

  struct Cell {
    double gb = 0;
    size_t transfers = 0;
    double mean_lcp = 0;
  };
  auto measure = [&](Approach a, bool retire) {
    auto out = bench::run_nas_approach(a, gpus, candidates, 42, retire);
    return Cell{out.stored_bytes / 1e9, out.result.transfers,
                out.result.mean_lcp_fraction};
  };

  Cell h5_keep = measure(Approach::kHdf5Pfs, false);
  Cell evo_keep = measure(Approach::kEvoStore, false);
  Cell h5_retire = measure(Approach::kHdf5Pfs, true);
  Cell evo_retire = measure(Approach::kEvoStore, true);

  std::printf("%-26s %12s\n", "configuration", "storage (GB)");
  std::printf("%-26s %12.1f\n", "HDF5+PFS, no retire", h5_keep.gb);
  std::printf("%-26s %12.1f\n", "EvoStore, no retire", evo_keep.gb);
  std::printf("%-26s %12.1f\n", "HDF5+PFS, with retire", h5_retire.gb);
  std::printf("%-26s %12.1f\n", "EvoStore, with retire", evo_retire.gb);

  std::printf("\nshape checks vs paper:\n");
  std::printf("  - no retire: EvoStore uses %.1fx less space than HDF5+PFS "
              "(dedup of shared prefixes; avg frozen fraction %.0f%%)\n",
              h5_keep.gb / evo_keep.gb, 100 * evo_keep.mean_lcp);
  std::printf("  - with retire: EvoStore uses %.1fx less than HDF5+PFS "
              "(paper: ~1.7x)\n",
              h5_retire.gb / evo_retire.gb);
  std::printf("  - retirement shrinks EvoStore by %.1fx (population-bounded "
              "live set)\n",
              evo_keep.gb / evo_retire.gb);

  // Compression extension: a fine-tuning workload (part of the transferred
  // prefix is modified, so it must be stored self-owned) run once with Raw
  // segments and once with the delta-vs-ancestor codec. Retirement is off so
  // both runs keep the same logical segment set (with GC on, delta
  // dependencies retain ancestor bases past retirement and the live sets
  // diverge); the physical column then isolates what the codec saves.
  std::printf("\ncompression (fine-tuning workload, no retire, 60%% of LCP "
              "fine-tuned, 15%% of tensors touched):\n");
  auto measure_codec = [&](compress::CodecId codec, bool chunk_dedup) {
    bench::RunOptions opt;
    opt.retire = false;
    opt.finetune_lcp_fraction = 0.6;
    opt.finetune_update_fraction = 0.15;
    opt.put_codec = codec;
    if (chunk_dedup) {
      // Simulation-scale chunking (DESIGN.md §13): the provider dedups
      // identical chunks across models the delta codec cannot relate.
      opt.provider_config.chunker = bench::sim_scale_chunker();
    }
    return bench::run_nas_approach(Approach::kEvoStore, gpus, candidates, 42,
                                   opt);
  };
  auto evo_raw = measure_codec(compress::CodecId::kRaw, false);
  auto evo_delta = measure_codec(compress::CodecId::kDeltaVsAncestor, false);
  auto evo_dedup = measure_codec(compress::CodecId::kDeltaVsAncestor, true);
  auto ratio = [](size_t num, size_t den) {
    return den == 0 ? 0.0
                    : static_cast<double>(num) / static_cast<double>(den);
  };
  std::printf("%-26s %14s %14s %8s\n", "codec", "logical (GB)",
              "physical (GB)", "ratio");
  std::printf("%-26s %14.1f %14.1f %8.2f\n", "Raw",
              evo_raw.stored_bytes / 1e9, evo_raw.physical_bytes / 1e9,
              ratio(evo_raw.physical_bytes, evo_raw.stored_bytes));
  std::printf("%-26s %14.1f %14.1f %8.2f\n", "DeltaVsAncestor",
              evo_delta.stored_bytes / 1e9, evo_delta.physical_bytes / 1e9,
              ratio(evo_delta.physical_bytes, evo_delta.stored_bytes));
  std::printf("%-26s %14.1f %14.1f %8.2f\n", "Delta + chunk dedup",
              evo_dedup.stored_bytes / 1e9, evo_dedup.physical_bytes / 1e9,
              ratio(evo_dedup.physical_bytes, evo_dedup.stored_bytes));
  std::printf("  - delta physical bytes are %.0f%% of Raw physical bytes "
              "(target <= 60%%)\n",
              100 * ratio(evo_delta.physical_bytes, evo_raw.physical_bytes));
  std::printf("  - chunk dedup: physical %.2fx below delta-alone "
              "(%zu live chunks; NAS content is mostly unique, so the gap "
              "is modest here — bench/ablation_dedup isolates the "
              "duplicate-backbone case)\n",
              ratio(evo_dedup.pre_dedup_physical_bytes,
                    evo_dedup.physical_bytes),
              static_cast<size_t>(evo_dedup.live_chunks));
  return 0;
}
