// Figure 4 — Incremental storage: EvoStore vs. HDF5+PFS.
//
// Weak-scaling experiment (paper §5.4): 8..256 GPUs, each worker holds a
// 4 GB / 100-layer model from the architecture generator, pre-stores a base
// version, synchronizes on a barrier, then writes a derived model with
// 25/50/75/100% of the tensors modified. Reported metric: aggregated write
// bandwidth, with each worker's bandwidth normalized to the FULL model size
// (total model bytes / time to store), exactly as the paper defines it.
// HDF5+PFS cannot store incrementally, so only its 100% column exists; no
// Redis metadata server is involved in this figure.
//
// Flags: --max-gpus N (default 256), --model-mb N (default 4096),
//        --layers N (default 100)
#include "baseline/hdf5_pfs.h"
#include "bench/bench_common.h"
#include "sim/sync.h"
#include "workload/arch_generator.h"

using namespace evostore;
using bench::Cluster;

namespace {

struct Point {
  double agg_bandwidth_gbs = 0;
};

// One EvoStore run: returns aggregated (normalized) write bandwidth in GB/s.
Point run_evostore(int gpus, const model::ArchGraph& graph, int frozen_layers) {
  Cluster cluster(gpus);
  core::EvoStoreRepository repo(cluster.rpc, cluster.provider_nodes);
  sim::Barrier barrier(cluster.sim, gpus);
  double model_bytes = static_cast<double>(graph.total_param_bytes());
  std::vector<double> times(gpus, 0.0);

  auto worker = [&](int w) -> sim::CoTask<void> {
    common::NodeId node = cluster.workers[w];
    auto& client = repo.client(node);
    auto base = workload::make_base_model(repo.allocate_id(), graph,
                                          static_cast<uint64_t>(w));
    (void)co_await client.put_model(base, nullptr);
    auto owners = core::OwnerMap::self_owned(base.id(), graph.size());
    auto derived = workload::derive_partial(repo.allocate_id(), base, owners,
                                            frozen_layers,
                                            static_cast<uint64_t>(w) + 7777);
    co_await barrier.arrive_and_wait();
    double t0 = cluster.sim.now();
    auto st = co_await client.put_model(derived.model, &derived.transfer);
    if (!st.ok()) std::printf("!! put failed: %s\n", st.to_string().c_str());
    times[w] = cluster.sim.now() - t0;
  };
  std::vector<sim::Future<void>> futures;
  for (int w = 0; w < gpus; ++w) futures.push_back(cluster.sim.spawn(worker(w)));
  cluster.sim.run();

  double agg = 0;
  for (double t : times) agg += model_bytes / t;  // normalized to full model
  return Point{agg / 1e9};
}

Point run_hdf5(int gpus, const model::ArchGraph& graph) {
  Cluster cluster(gpus);
  storage::Pfs pfs(cluster.fabric, storage::PfsConfig{});
  baseline::Hdf5PfsConfig h5cfg;
  h5cfg.staging_bandwidth = 2.4e9;  // Keras/h5py tensor->NumPy copy path
  h5cfg.per_dataset_seconds = 2e-3;
  h5cfg.context_setup_seconds = 5e-3;
  baseline::Hdf5PfsRepository repo(pfs, nullptr, h5cfg);
  sim::Barrier barrier(cluster.sim, gpus);
  double model_bytes = static_cast<double>(graph.total_param_bytes());
  std::vector<double> times(gpus, 0.0);

  auto worker = [&](int w) -> sim::CoTask<void> {
    common::NodeId node = cluster.workers[w];
    auto m = workload::make_base_model(repo.allocate_id(), graph,
                                       static_cast<uint64_t>(w));
    co_await barrier.arrive_and_wait();
    double t0 = cluster.sim.now();
    auto st = co_await repo.store(node, m, nullptr);
    if (!st.ok()) std::printf("!! store failed: %s\n", st.to_string().c_str());
    times[w] = cluster.sim.now() - t0;
  };
  std::vector<sim::Future<void>> futures;
  for (int w = 0; w < gpus; ++w) futures.push_back(cluster.sim.spawn(worker(w)));
  cluster.sim.run();

  double agg = 0;
  for (double t : times) agg += model_bytes / t;
  return Point{agg / 1e9};
}

}  // namespace

int main(int argc, char** argv) {
  int max_gpus = bench::arg_int(argc, argv, "--max-gpus", 256);
  int model_mb = bench::arg_int(argc, argv, "--model-mb", 4096);
  int layers = bench::arg_int(argc, argv, "--layers", 100);

  bench::print_header(
      "Figure 4", "incremental storage: aggregated write bandwidth (GB/s), "
                  "normalized to full model size");
  workload::ArchGenConfig gen;
  gen.total_bytes = static_cast<size_t>(model_mb) << 20;
  gen.leaf_layers = layers;
  auto graph = workload::generate_chain(gen);
  std::printf("model: %.2f GB, %d evenly-sized leaf layers; 4 GPUs/node, "
              "1 provider/node\n\n",
              graph.total_param_bytes() / 1e9, layers);

  std::printf("%-8s %14s %14s %14s %14s %14s\n", "GPUs", "Evo 25%", "Evo 50%",
              "Evo 75%", "Evo 100%", "HDF5+PFS 100%");
  std::vector<int> scales;
  for (int g = 8; g <= max_gpus; g *= 2) scales.push_back(g);
  double ratio_100 = 0, ratio_25 = 0;
  for (int gpus : scales) {
    double evo[4];
    int idx = 0;
    for (int pct : {25, 50, 75, 100}) {
      int frozen = layers * (100 - pct) / 100;
      evo[idx++] = run_evostore(gpus, graph, frozen).agg_bandwidth_gbs;
    }
    double h5 = run_hdf5(gpus, graph).agg_bandwidth_gbs;
    std::printf("%-8d %14.1f %14.1f %14.1f %14.1f %14.1f\n", gpus, evo[0],
                evo[1], evo[2], evo[3], h5);
    ratio_100 = evo[3] / h5;
    ratio_25 = evo[0] / h5;
  }
  std::printf("\nat the largest scale: EvoStore 100%% / HDF5+PFS = %.2fx "
              "(paper: ~1.25x); EvoStore 25%% / HDF5+PFS = %.2fx (paper: up "
              "to ~5x)\n",
              ratio_100, ratio_25);
  return 0;
}
