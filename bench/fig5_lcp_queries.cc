// Figure 5 — Strong scalability of LCP query processing:
// EvoStore (provider-side collective scans) vs. Redis-Queries (centralized).
//
// Paper §5.5: a catalog of 60k DeepSpace-generated architectures (metadata
// only, no tensors) is queried 10k times by 1..512 concurrent workers; the
// total query count is fixed (strong scaling) and split evenly. EvoStore is
// deployed 1 provider / 4 workers per node as in Fig. 4; Redis-Queries runs
// on one dedicated node. Reported metric: aggregate query throughput.
//
// Defaults are scaled to 6k/1k so the bench finishes in about a minute of
// host time on one core (the *ratios* are scale-stable; see EXPERIMENTS.md);
// pass --catalog 60000 --queries 10000 for the paper-sized run.
//
// Observability: --metrics-out FILE writes a JSON metrics snapshot
// aggregated over the EvoStore runs; --trace-out FILE writes a Chrome
// trace (Perfetto-loadable) of the FIRST EvoStore scale. Both are
// deterministic — same seeds, byte-identical files.
#include <cmath>
#include <memory>

#include "baseline/redis_queries.h"
#include "bench/bench_common.h"
#include "net/fault.h"
#include "sim/stats.h"
#include "workload/deepspace.h"

using namespace evostore;
using bench::Cluster;

namespace {

std::vector<workload::DeepSpaceSeq> make_catalog(const workload::DeepSpace& space,
                                                 int n, uint64_t seed) {
  common::Xoshiro256 rng(seed);
  std::vector<workload::DeepSpaceSeq> catalog;
  catalog.reserve(n);
  for (int i = 0; i < n; ++i) catalog.push_back(space.random(rng));
  return catalog;
}

// Queries are mutations of random catalog members: realistic lookups that
// share long prefixes with some stored model.
std::vector<model::ArchGraph> make_queries(
    const workload::DeepSpace& space,
    const std::vector<workload::DeepSpaceSeq>& catalog, int n, uint64_t seed) {
  common::Xoshiro256 rng(seed);
  std::vector<model::ArchGraph> queries;
  queries.reserve(n);
  for (int i = 0; i < n; ++i) {
    const auto& parent = catalog[rng.below(catalog.size())];
    queries.push_back(space.decode_graph(space.mutate(parent, rng)));
  }
  return queries;
}

struct Outcome {
  double throughput = 0;  // queries/second (simulated time)
  double mean_latency = 0;
  size_t found = 0;
  bool saturated = false;
  size_t partial = 0;   // degraded (subset-reduced) LCP responses
  uint64_t retries = 0; // RPC retries spent (fault runs only)
};

Outcome run_evostore(const workload::DeepSpace& space,
                     const std::vector<workload::DeepSpaceSeq>& catalog,
                     const std::vector<model::ArchGraph>& queries, int gpus,
                     uint64_t fault_seed, bench::Observability* obs) {
  Cluster cluster(gpus);
  // Attach before the repository exists so providers and clients cache the
  // shared histogram pointers at construction.
  if (obs != nullptr) obs->attach(cluster);
  core::ProviderConfig pcfg;
  pcfg.pool_bandwidth = 0;  // metadata-only experiment
  // --fault-seed adds seeded message drops + latency spikes to the query
  // storm (no crashes: this figure measures scan throughput, not recovery).
  // Clients retry; partial reduces are tolerated. Default (0) leaves the
  // run byte-identical to the fault-free build.
  std::unique_ptr<net::FaultInjector> injector;
  core::ClientConfig ccfg;
  if (fault_seed != 0) {
    net::FaultConfig fcfg;
    fcfg.seed = fault_seed;
    fcfg.drop_probability = 0.01;
    fcfg.spike_probability = 0.001;
    fcfg.spike_seconds = 0.01;
    fcfg.loss_detect_seconds = 0.05;
    injector = std::make_unique<net::FaultInjector>(cluster.sim, fcfg);
    cluster.rpc.set_fault_injector(injector.get());
    ccfg.retry.max_attempts = 8;
    ccfg.retry.initial_backoff = 0.01;
    ccfg.fault_seed = fault_seed;
  }
  core::EvoStoreRepository repo(cluster.rpc, cluster.provider_nodes, pcfg, {},
                                ccfg);
  // Providers get a bounded executor pool (4 Argobots-style ES each).
  for (auto node : cluster.provider_nodes) {
    cluster.rpc.set_service_pool(node, 4, 0.0);
  }

  // Phase 1: populate metadata (architectures only; no tensors stored).
  auto populate = [&]() -> sim::CoTask<void> {
    auto& client = repo.client(cluster.workers[0]);
    for (const auto& seq : catalog) {
      model::Model m(repo.allocate_id(), space.decode_graph(seq));
      m.set_quality(0.5);
      auto st = co_await client.put_model(m, nullptr);
      if (!st.ok()) std::printf("!! populate: %s\n", st.to_string().c_str());
    }
  };
  cluster.sim.run_until_complete(populate());

  // Phase 2: the timed concurrent query storm.
  double t0 = cluster.sim.now();
  size_t found = 0;
  size_t partial = 0;
  sim::Accumulator latency;
  auto worker = [&](int w) -> sim::CoTask<void> {
    auto& client = repo.client(cluster.workers[w]);
    for (size_t q = w; q < queries.size(); q += gpus) {
      double start = cluster.sim.now();
      auto r = co_await client.query_lcp(queries[q]);
      latency.add(cluster.sim.now() - start);
      if (r.ok() && r->found) ++found;
      if (r.ok() && r->partial) ++partial;
    }
  };
  std::vector<sim::Future<void>> futures;
  for (int w = 0; w < gpus; ++w) futures.push_back(cluster.sim.spawn(worker(w)));
  cluster.sim.run();

  Outcome out;
  out.throughput = static_cast<double>(queries.size()) / (cluster.sim.now() - t0);
  out.mean_latency = latency.mean();
  out.found = found;
  out.partial = partial;
  out.retries = repo.total_client_fault_stats().retries;
  if (injector != nullptr) cluster.rpc.set_fault_injector(nullptr);
  if (obs != nullptr) obs->detach(cluster);
  return out;
}

Outcome run_redis(const workload::DeepSpace& space,
                  const std::vector<workload::DeepSpaceSeq>& catalog,
                  const std::vector<model::ArchGraph>& queries, int gpus) {
  Cluster cluster(gpus);
  auto redis_node = cluster.fabric.add_node(25e9, 25e9, "redis");
  baseline::RedisConfig rcfg;
  rcfg.conn_poll_seconds = 50e-6;  // event-loop pressure per in-flight client
  baseline::RedisQueries redis(cluster.rpc, redis_node, rcfg);

  auto populate = [&]() -> sim::CoTask<void> {
    uint32_t next = 1;
    for (const auto& seq : catalog) {
      common::ModelId id = common::ModelId::make(7, next++);
      auto r = co_await redis.begin_add(cluster.workers[0], id,
                                        space.decode_graph(seq), 0.5);
      if (r.need_weights) {
        (void)co_await redis.finish_add(cluster.workers[0], id);
      }
    }
  };
  cluster.sim.run_until_complete(populate());

  double t0 = cluster.sim.now();
  size_t found = 0;
  sim::Accumulator latency;
  auto worker = [&](int w) -> sim::CoTask<void> {
    for (size_t q = w; q < queries.size(); q += gpus) {
      double start = cluster.sim.now();
      auto r = co_await redis.query(cluster.workers[w], queries[q]);
      latency.add(cluster.sim.now() - start);
      if (r.ok() && r->found) {
        ++found;
        (void)co_await redis.unpin(cluster.workers[w], r->ancestor);
      }
    }
  };
  std::vector<sim::Future<void>> futures;
  for (int w = 0; w < gpus; ++w) futures.push_back(cluster.sim.spawn(worker(w)));
  cluster.sim.run();

  Outcome out;
  out.throughput = static_cast<double>(queries.size()) / (cluster.sim.now() - t0);
  out.mean_latency = latency.mean();
  out.found = found;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int catalog_size = bench::arg_int(argc, argv, "--catalog", 6000);
  int query_count = bench::arg_int(argc, argv, "--queries", 1000);
  int max_workers = bench::arg_int(argc, argv, "--max-workers", 512);
  uint64_t fault_seed = static_cast<uint64_t>(
      bench::arg_int(argc, argv, "--fault-seed", 0));
  auto obs = bench::Observability::from_args(argc, argv);

  bench::print_header("Figure 5",
                      "strong scaling of LCP query throughput (queries/sec)");
  if (fault_seed != 0) {
    std::printf("fault injection ON (seed %llu): 1%% drops, 0.1%% 10ms "
                "spikes on EvoStore; retries + degraded partial reduces\n",
                static_cast<unsigned long long>(fault_seed));
  }
  workload::DeepSpace space;
  auto catalog = make_catalog(space, catalog_size, 1);
  auto queries = make_queries(space, catalog, query_count, 2);
  std::printf("catalog: %d architectures, %d queries total (paper: 60k/10k)\n\n",
              catalog_size, query_count);

  std::printf("%-8s %18s %18s %10s\n", "GPUs", "EvoStore (q/s)",
              "Redis-Queries (q/s)", "speedup");
  double single_redis_latency = 0;
  std::vector<int> scales{1, 8, 32, 64, 128, 256, 512};
  for (int gpus : scales) {
    if (gpus > max_workers) break;
    auto evo = run_evostore(space, catalog, queries, gpus, fault_seed, &obs);
    auto redis = run_redis(space, catalog, queries, gpus);
    if (gpus == 1) single_redis_latency = redis.mean_latency;
    // The paper marks Redis as non-functional beyond 32 GPUs; we flag the
    // point saturated once mean latency blows up 30x over the uncontended
    // single-client latency (the queue at the single-threaded server).
    bool saturated =
        gpus > 1 && redis.mean_latency > 30.0 * single_redis_latency;
    std::printf("%-8d %18.1f %17.1f%s %9.1fx\n", gpus, evo.throughput,
                redis.throughput, saturated ? "*" : " ",
                evo.throughput / redis.throughput);
    if (fault_seed != 0) {
      std::printf("         (faults: %llu retries, %zu partial reduces)\n",
                  static_cast<unsigned long long>(evo.retries), evo.partial);
    }
  }
  std::printf("\n(*) Redis-Queries saturated: mean query latency exceeded 30x "
              "the uncontended latency (paper: does not scale beyond 32 GPUs)\n");
  obs.finish();
  return 0;
}
