// Figure 6 — Accuracy of DL model candidates over time, 256 GPUs:
// DeepHyper with transfer learning through EvoStore vs. DH-NoTransfer.
//
// Paper §5.6 claims to reproduce: (a) with transfer, high-quality (>0.80)
// candidates appear almost immediately, while DH-NoTransfer needs ~1/3 of
// its run; (b) average and top candidate accuracy are higher with transfer;
// (c) end-to-end runtime is ~30% shorter.
//
// Flags: --gpus N (default 256), --candidates N (default 1000)
#include "bench/nas_bench.h"

using namespace evostore;
using bench::Approach;

namespace {

void print_series(const nas::NasResult& r, int buckets) {
  // Bucket completions by time; print mean/max accuracy per bucket — the
  // printable form of the paper's scatter plot.
  double span = r.makespan / buckets;
  std::printf("  %-12s", r.approach.c_str());
  for (int b = 0; b < buckets; ++b) {
    double lo = b * span, hi = (b + 1) * span;
    double best = 0;
    for (const auto& p : r.accuracy_over_time.points()) {
      if (p.t >= lo && p.t < hi) best = std::max(best, p.v);
    }
    if (best > 0) {
      std::printf(" %.3f", best);
    } else {
      std::printf("   -  ");
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  int gpus = bench::arg_int(argc, argv, "--gpus", 256);
  size_t candidates =
      static_cast<size_t>(bench::arg_int(argc, argv, "--candidates", 1000));

  bench::print_header("Figure 6",
                      "candidate accuracy over time (NAS for CANDLE-ATTN)");
  std::printf("%d GPUs, %zu candidates, aged evolution, fixed seed\n\n", gpus,
              candidates);

  auto no_transfer =
      bench::run_nas_approach(Approach::kNoTransfer, gpus, candidates, 42);
  auto evostore =
      bench::run_nas_approach(Approach::kEvoStore, gpus, candidates, 42);

  constexpr int kBuckets = 12;
  std::printf("best accuracy per time bucket (bucket = makespan/%d):\n",
              kBuckets);
  print_series(no_transfer.result, kBuckets);
  print_series(evostore.result, kBuckets);
  std::printf("\n");

  std::printf("%-16s %12s %12s %12s %14s\n", "approach", "best acc",
              "mean acc", "makespan", "t(acc>0.80)");
  for (const auto* r : {&no_transfer.result, &evostore.result}) {
    std::printf("%-16s %12.4f %12.4f %11.1fs %13.1fs\n", r->approach.c_str(),
                r->best_accuracy, r->mean_accuracy, r->makespan,
                r->time_to(0.80));
  }

  double t80_nt = no_transfer.result.time_to(0.80);
  double t80_evo = evostore.result.time_to(0.80);
  std::printf("\nshape checks vs paper:\n");
  std::printf("  - t(>0.80): EvoStore %.1fs vs DH-NoTransfer %.1fs "
              "(paper: almost immediately vs ~1/3 into the run)\n",
              t80_evo, t80_nt);
  std::printf("  - mean accuracy: %.4f vs %.4f (paper: higher with transfer)\n",
              evostore.result.mean_accuracy, no_transfer.result.mean_accuracy);
  std::printf("  - runtime reduction: %.0f%% (paper: ~30%%)\n",
              100.0 * (1.0 - evostore.result.makespan /
                                 no_transfer.result.makespan));
  return 0;
}
