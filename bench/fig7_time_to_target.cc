// Figure 7 — Time to target objective: seconds until the search produces a
// candidate at or above a target accuracy, for 128 and 256 GPUs,
// DH-NoTransfer vs. EvoStore-backed transfer learning.
//
// Paper §5.6 claims to reproduce: EvoStore reaches 0.90+ targets ~2.5-3x
// faster; DH-NoTransfer tops out around 0.94 (asterisks = never reached);
// EvoStore keeps finding candidates above 0.96.
//
// Flags: --candidates N (default 1000)
#include "bench/nas_bench.h"

using namespace evostore;
using bench::Approach;

int main(int argc, char** argv) {
  size_t candidates =
      static_cast<size_t>(bench::arg_int(argc, argv, "--candidates", 1000));

  bench::print_header("Figure 7", "time to target accuracy (seconds)");
  std::printf("%zu candidates, aged evolution, fixed seed; * = target never "
              "reached\n\n",
              candidates);

  struct Run {
    const char* label;
    nas::NasResult result;
  };
  std::vector<Run> runs;
  for (int gpus : {128, 256}) {
    runs.push_back({gpus == 128 ? "DH-NoTransfer 128" : "DH-NoTransfer 256",
                    bench::run_nas_approach(Approach::kNoTransfer, gpus,
                                            candidates, 42)
                        .result});
    runs.push_back({gpus == 128 ? "EvoStore 128" : "EvoStore 256",
                    bench::run_nas_approach(Approach::kEvoStore, gpus,
                                            candidates, 42)
                        .result});
  }

  // The paper's thresholds are 0.91-0.95 on CANDLE-ATTN's accuracy scale;
  // our synthetic landscape tops out lower under the same 256-way
  // asynchronous evolution (see EXPERIMENTS.md), so the ladder is shifted
  // down while keeping the same structure: DH-NoTransfer reaches the low
  // rungs slower, stops at a middle rung (*), EvoStore keeps going.
  const double targets[] = {0.78, 0.80, 0.82, 0.84, 0.86, 0.88, 0.90};
  std::printf("%-20s", "target accuracy");
  for (double t : targets) std::printf(" %8.2f", t);
  std::printf("\n");
  for (const auto& run : runs) {
    std::printf("%-20s", run.label);
    for (double target : targets) {
      double t = run.result.time_to(target);
      if (t >= 0) {
        std::printf(" %7.1fs", t);
      } else {
        std::printf("        *");
      }
    }
    std::printf("   (best %.4f)\n", run.result.best_accuracy);
  }

  // Shape check: speedup at the 0.90 threshold.
  auto time_of = [&](const char* label, double target) {
    for (const auto& run : runs) {
      if (std::string(run.label) == label) return run.result.time_to(target);
    }
    return -1.0;
  };
  std::printf("\nshape checks vs paper (the 0.80-0.84 rungs play the role of "
              "the paper's 0.90-0.92):\n");
  for (double rung : {0.80, 0.82, 0.84}) {
    for (int gpus : {128, 256}) {
      std::string nt_label = "DH-NoTransfer " + std::to_string(gpus);
      std::string evo_label = "EvoStore " + std::to_string(gpus);
      double nt = time_of(nt_label.c_str(), rung);
      double evo = time_of(evo_label.c_str(), rung);
      if (nt > 0 && evo > 0) {
        std::printf("  - %d GPUs, target %.2f: EvoStore %.1fx faster "
                    "(paper: ~2.5-3x)\n",
                    gpus, rung, nt / evo);
      } else if (evo > 0) {
        std::printf("  - %d GPUs, target %.2f: only EvoStore reaches it "
                    "(paper: DH-NoTransfer caps out mid-ladder)\n",
                    gpus, rung);
      }
    }
  }
  return 0;
}
