// Figure 8 — End-to-end NAS runtime (weak scaling): DH-NoTransfer vs.
// EvoStore vs. HDF5+PFS (with Redis metadata), at 128 and 256 GPUs.
//
// Paper §5.6 claims to reproduce: (a) EvoStore significantly reduces the
// end-to-end runtime and the gap grows with GPUs; (b) HDF5+PFS lands close
// to DH-NoTransfer (freezing gains eaten by I/O + metadata overheads);
// (c) EvoStore repository interactions stay below ~2% of the runtime.
//
// Weak scaling: the candidate budget scales with the worker count
// (1000 candidates at 128 GPUs, 2000 at 256), keeping per-GPU work fixed.
//
// Flags: --base-candidates N (default 1000)
//        --fault-seed S      (default 0 = off; non-zero injects provider
//                             crash/restart cycles into the EvoStore runs —
//                             the baselines stay fault-free — to show the
//                             runtime cost of riding through failures)
//        --metrics-out FILE  (JSON metrics snapshot over the EvoStore runs)
//        --trace-out FILE    (Chrome trace of the FIRST EvoStore run,
//                             Perfetto-loadable; put_model spans link to
//                             provider-side segment writes and KV commits,
//                             retry attempts carry backoff/outcome tags)
#include "bench/nas_bench.h"

using namespace evostore;
using bench::Approach;

int main(int argc, char** argv) {
  size_t base_candidates = static_cast<size_t>(
      bench::arg_int(argc, argv, "--base-candidates", 1000));
  uint64_t fault_seed = static_cast<uint64_t>(
      bench::arg_int(argc, argv, "--fault-seed", 0));
  auto obs = bench::Observability::from_args(argc, argv);

  bench::print_header("Figure 8",
                      "end-to-end NAS runtime (seconds), weak scaling");
  std::printf("candidates scale with GPUs (%zu at 128 GPUs)\n",
              base_candidates);
  if (fault_seed != 0) {
    std::printf("fault injection ON for EvoStore (seed %llu): provider "
                "crash/restart cycles, client retries + recovery\n",
                static_cast<unsigned long long>(fault_seed));
  }
  std::printf("\n");

  std::printf("%-8s %16s %16s %16s %18s\n", "GPUs", "DH-NoTransfer",
              "EvoStore", "HDF5+PFS", "EvoStore I/O share");
  double evo_mk[2] = {0, 0}, nt_mk[2] = {0, 0}, h5_mk[2] = {0, 0};
  int idx = 0;
  for (int gpus : {128, 256}) {
    size_t candidates = base_candidates * gpus / 128;
    auto nt = bench::run_nas_approach(Approach::kNoTransfer, gpus, candidates, 42);
    bench::RunOptions evo_opts;
    evo_opts.fault_seed = fault_seed;
    if (obs.enabled()) evo_opts.observability = &obs;
    auto evo = bench::run_nas_approach(Approach::kEvoStore, gpus, candidates,
                                       42, evo_opts);
    auto h5 = bench::run_nas_approach(Approach::kHdf5Pfs, gpus, candidates, 42);
    double evo_io_share =
        evo.result.total_io_seconds /
        (evo.result.total_io_seconds + evo.result.total_train_seconds);
    std::printf("%-8d %15.1fs %15.1fs %15.1fs %17.2f%%\n", gpus,
                nt.result.makespan, evo.result.makespan, h5.result.makespan,
                100.0 * evo_io_share);
    if (evo.fault_enabled) {
      std::printf("         (EvoStore faults: %llu crashes, %llu retries, "
                  "%llu replays deduped; drained to zero: %s)\n",
                  static_cast<unsigned long long>(evo.fault.crashes),
                  static_cast<unsigned long long>(evo.fault.retries),
                  static_cast<unsigned long long>(evo.fault.deduped_replays),
                  evo.fault.drained_to_zero ? "yes" : "NO");
    }
    nt_mk[idx] = nt.result.makespan;
    evo_mk[idx] = evo.result.makespan;
    h5_mk[idx] = h5.result.makespan;
    ++idx;
  }

  std::printf("\nshape checks vs paper:\n");
  std::printf("  - EvoStore vs DH-NoTransfer: %.0f%% / %.0f%% shorter at "
              "128/256 GPUs (paper: ~30%%, gap grows with scale)\n",
              100.0 * (1 - evo_mk[0] / nt_mk[0]),
              100.0 * (1 - evo_mk[1] / nt_mk[1]));
  std::printf("  - HDF5+PFS vs DH-NoTransfer: %+.0f%% / %+.0f%% at 128/256 "
              "GPUs (paper: close to DH-NoTransfer)\n",
              100.0 * (h5_mk[0] / nt_mk[0] - 1),
              100.0 * (h5_mk[1] / nt_mk[1] - 1));
  obs.finish();
  return 0;
}
