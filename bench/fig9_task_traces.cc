// Figure 9 — Task evolution on 128 GPUs: start/finish timestamps of every
// training task, for DH-NoTransfer, EvoStore, and HDF5+PFS.
//
// Paper §5.6 claims to reproduce: (a) DH-NoTransfer tasks start/finish in
// regular waves; (b) transfer learning makes the pattern irregular (variable
// frozen fractions -> uneven durations); (c) HDF5+PFS tasks run visibly
// longer; (d) task-duration variability: stddev ~17.91 (HDF5+PFS) vs ~16.15
// (EvoStore); overhead breakdown ~18% I/O, ~24% metadata, rest variability.
//
// Full traces are written as CSV next to the binary for plotting; the stdout
// report prints wave structure and duration statistics.
//
// Flags: --gpus N (default 128), --candidates N (default 1000),
//        --out-dir DIR (default ".", where the CSVs land; checked-in
//        reference traces live in bench/data/)
#include <cmath>
#include <fstream>

#include "bench/nas_bench.h"

using namespace evostore;
using bench::Approach;

namespace {

// Wave regularity: bucket each worker's task starts into rounds; regular
// waves (paper: DH-NoTransfer) keep a small within-round start-time spread
// relative to the task length. Rounds 2-5 are used — round 1 is aligned by
// construction and late rounds blur for every approach.
double wave_irregularity(const nas::NasResult& r, int gpus) {
  std::vector<std::vector<double>> per_worker(gpus);
  for (const auto& t : r.traces) per_worker[t.worker].push_back(t.start);
  for (auto& v : per_worker) std::sort(v.begin(), v.end());
  sim::Accumulator spread;
  for (size_t round = 1; round <= 4; ++round) {
    sim::Accumulator starts;
    for (auto& v : per_worker) {
      if (round < v.size()) starts.add(v[round]);
    }
    if (starts.count() > 1) spread.add(starts.stddev());
  }
  return spread.mean() / std::max(1e-9, r.mean_task_seconds);
}

void dump_csv(const nas::NasResult& r, const std::string& path) {
  std::ofstream out(path);
  out << "worker,start,finish,accuracy,lcp_fraction,io_seconds\n";
  for (const auto& t : r.traces) {
    out << t.worker << ',' << t.start << ',' << t.finish << ',' << t.accuracy
        << ',' << t.lcp_fraction << ',' << t.io_seconds << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  int gpus = bench::arg_int(argc, argv, "--gpus", 128);
  size_t candidates =
      static_cast<size_t>(bench::arg_int(argc, argv, "--candidates", 1000));
  std::string out_dir = bench::arg_str(argc, argv, "--out-dir", ".");

  bench::print_header("Figure 9", "per-GPU task start/finish traces");
  std::printf("%d GPUs, %zu candidates; CSVs: %s/fig9_trace_<approach>.csv\n\n",
              gpus, candidates, out_dir.c_str());

  struct Row {
    std::string name;
    nas::NasResult result;
  };
  std::vector<Row> rows;
  rows.push_back({"DH-NoTransfer",
                  bench::run_nas_approach(Approach::kNoTransfer, gpus,
                                          candidates, 42)
                      .result});
  rows.push_back({"EvoStore", bench::run_nas_approach(Approach::kEvoStore,
                                                      gpus, candidates, 42)
                                  .result});
  rows.push_back({"HDF5+PFS", bench::run_nas_approach(Approach::kHdf5Pfs,
                                                      gpus, candidates, 42)
                                  .result});

  std::printf("%-16s %10s %10s %14s %12s %12s\n", "approach", "mean task",
              "stddev", "irregularity", "makespan", "io/task");
  for (auto& row : rows) {
    const auto& r = row.result;
    dump_csv(r, out_dir + "/fig9_trace_" + row.name + ".csv");
    std::printf("%-16s %9.1fs %9.2fs %14.2f %11.1fs %11.2fs\n",
                row.name.c_str(), r.mean_task_seconds, r.stddev_task_seconds,
                wave_irregularity(r, gpus), r.makespan,
                r.total_io_seconds / static_cast<double>(r.traces.size()));
  }

  const auto& nt = rows[0].result;
  const auto& evo = rows[1].result;
  const auto& h5 = rows[2].result;
  std::printf("\nshape checks vs paper:\n");
  std::printf("  - wave regularity: DH-NoTransfer irregularity %.2f < "
              "EvoStore %.2f (paper: transfer learning makes the start/"
              "finish pattern irregular)\n",
              wave_irregularity(nt, gpus), wave_irregularity(evo, gpus));
  std::printf("  - task durations: HDF5 %.1fs > EvoStore %.1fs "
              "(paper: HDF5 tasks visibly longer)\n",
              h5.mean_task_seconds, evo.mean_task_seconds);
  std::printf("  - duration stddev: HDF5 %.2f vs EvoStore %.2f "
              "(paper: 17.91 vs 16.15)\n",
              h5.stddev_task_seconds, evo.stddev_task_seconds);
  double overhead = h5.mean_task_seconds - evo.mean_task_seconds;
  if (overhead > 0) {
    double io_part = (h5.total_io_seconds - evo.total_io_seconds) /
                     static_cast<double>(h5.traces.size());
    std::printf("  - HDF5 per-task overhead %.2fs, of which I/O+metadata "
                "%.2fs (paper: 18%% I/O + 24%% metadata of the gap)\n",
                overhead, io_part);
  }
  return 0;
}
