// Micro-benchmarks for the tensor codec subsystem: raw/zero-RLE/delta
// encode and decode throughput on the segment shapes the providers see.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "compress/compressed_segment.h"
#include "compress/zero_rle.h"
#include "model/model.h"

namespace {

using namespace evostore;
using common::Buffer;
using compress::CodecId;

// Dense segment with `tensor_count` tensors of `bytes_each` bytes whose
// content is pseudo-random except for a leading zero run of `zero_fraction`
// per tensor (models sparsified / freshly-initialized weights).
model::Segment dense_segment(size_t tensor_count, size_t bytes_each,
                             uint64_t seed, double zero_fraction) {
  model::Segment seg;
  for (size_t t = 0; t < tensor_count; ++t) {
    common::Bytes bytes(bytes_each);
    size_t zeros = static_cast<size_t>(zero_fraction *
                                       static_cast<double>(bytes_each));
    for (size_t i = zeros; i < bytes_each; ++i) {
      bytes[i] = static_cast<std::byte>(
          common::SplitMix64::at(seed + t, i) & 0xff);
    }
    model::TensorSpec spec;
    spec.shape = {static_cast<int64_t>(bytes_each / 4)};
    spec.dtype = model::DType::kF32;
    seg.tensors.emplace_back(spec,
                             Buffer::copy(std::span<const std::byte>(bytes)));
  }
  return seg;
}

const common::SegmentKey kBaseKey{common::ModelId::make(0, 1), 0};

void BM_CompressRaw(benchmark::State& state) {
  model::Segment seg =
      dense_segment(4, static_cast<size_t>(state.range(0)), 7, 0.0);
  for (auto _ : state) {
    auto env = compress::compress_segment(seg, CodecId::kRaw);
    benchmark::DoNotOptimize(env.ok());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(seg.nbytes()));
}
BENCHMARK(BM_CompressRaw)->Arg(4096)->Arg(1 << 18);

void BM_CompressZeroRle(benchmark::State& state) {
  // Half of every tensor is zeros: RLE pays off and is taken.
  model::Segment seg =
      dense_segment(4, static_cast<size_t>(state.range(0)), 7, 0.5);
  for (auto _ : state) {
    auto env = compress::compress_segment(seg, CodecId::kZeroRle);
    benchmark::DoNotOptimize(env.ok());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(seg.nbytes()));
}
BENCHMARK(BM_CompressZeroRle)->Arg(4096)->Arg(1 << 18);

void BM_CompressDeltaUnchanged(benchmark::State& state) {
  // Child shares every tensor buffer with the base: the delta codec hits the
  // identity fast path and encodes O(1) per tensor regardless of size.
  model::Segment base =
      dense_segment(4, static_cast<size_t>(state.range(0)), 7, 0.0);
  model::Segment child = base;
  for (auto _ : state) {
    auto env = compress::compress_segment(child, CodecId::kDeltaVsAncestor,
                                          &base, &kBaseKey);
    benchmark::DoNotOptimize(env.ok());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(child.nbytes()));
}
BENCHMARK(BM_CompressDeltaUnchanged)->Arg(4096)->Arg(1 << 18);

void BM_CompressDeltaFinetuned(benchmark::State& state) {
  // A quarter of the tensors are re-seeded (fine-tuning); the rest delta to
  // nothing via the identity fast path.
  model::Segment base =
      dense_segment(8, static_cast<size_t>(state.range(0)), 7, 0.0);
  model::Segment child = model::finetune_segment(base, 99, 0.25);
  for (auto _ : state) {
    auto env = compress::compress_segment(child, CodecId::kDeltaVsAncestor,
                                          &base, &kBaseKey);
    benchmark::DoNotOptimize(env.ok());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(child.nbytes()));
}
BENCHMARK(BM_CompressDeltaFinetuned)->Arg(4096)->Arg(1 << 18);

void BM_DecompressDelta(benchmark::State& state) {
  model::Segment base =
      dense_segment(8, static_cast<size_t>(state.range(0)), 7, 0.0);
  model::Segment child = model::finetune_segment(base, 99, 0.25);
  auto env = compress::compress_segment(child, CodecId::kDeltaVsAncestor,
                                        &base, &kBaseKey)
                 .value();
  for (auto _ : state) {
    auto seg = compress::decompress_segment(env, &base);
    benchmark::DoNotOptimize(seg.ok());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(child.nbytes()));
}
BENCHMARK(BM_DecompressDelta)->Arg(4096)->Arg(1 << 18);

void BM_ZeroRleEncodeBytes(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  common::Bytes in(n);
  for (size_t i = 0; i < n; ++i) {
    // Alternating 16-byte random and 48-byte zero stretches.
    in[i] = (i % 64) < 16
                ? static_cast<std::byte>(common::SplitMix64::at(3, i) & 0xff)
                : std::byte{0};
  }
  for (auto _ : state) {
    auto out = compress::zero_rle_encode(std::span<const std::byte>(in));
    benchmark::DoNotOptimize(out.size());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_ZeroRleEncodeBytes)->Arg(4096)->Arg(1 << 20);

void BM_ZeroRleDecodeBytes(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  common::Bytes in(n);
  for (size_t i = 0; i < n; ++i) {
    in[i] = (i % 64) < 16
                ? static_cast<std::byte>(common::SplitMix64::at(3, i) & 0xff)
                : std::byte{0};
  }
  common::Bytes encoded =
      compress::zero_rle_encode(std::span<const std::byte>(in));
  common::Bytes out(n);
  for (auto _ : state) {
    auto st = compress::zero_rle_decode(std::span<const std::byte>(encoded),
                                        std::span<std::byte>(out));
    benchmark::DoNotOptimize(st.ok());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_ZeroRleDecodeBytes)->Arg(4096)->Arg(1 << 20);

}  // namespace
