// Micro-benchmarks for the KV store backends (MemKv vs LogKv), plus the
// observability primitives the data path leans on.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "obs/events.h"
#include "obs/metrics.h"
#include "storage/log_kv.h"
#include "storage/mem_kv.h"

namespace {

using namespace evostore;
using common::Buffer;

void BM_MemKvPut(benchmark::State& state) {
  storage::MemKv kv;
  size_t value_size = static_cast<size_t>(state.range(0));
  uint64_t i = 0;
  for (auto _ : state) {
    // i++ and i in sibling arguments are indeterminately sequenced; the
    // payload seed must not depend on argument evaluation order.
    const uint64_t k = i++;
    auto st = kv.put("key" + std::to_string(k % 4096),
                     Buffer::synthetic(value_size, k + 1));
    benchmark::DoNotOptimize(st.ok());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(value_size));
}
BENCHMARK(BM_MemKvPut)->Arg(64)->Arg(4096)->Arg(1 << 20);

void BM_MemKvGet(benchmark::State& state) {
  storage::MemKv kv;
  for (int i = 0; i < 4096; ++i) {
    (void)kv.put("key" + std::to_string(i), Buffer::synthetic(1024, i));
  }
  uint64_t i = 0;
  for (auto _ : state) {
    auto r = kv.get("key" + std::to_string(i++ % 4096));
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_MemKvGet);

void BM_LogKvPut(benchmark::State& state) {
  auto dir = std::filesystem::temp_directory_path() / "evostore_bench_logkv";
  std::filesystem::remove_all(dir);
  auto kv = std::move(storage::LogKv::open(dir).value());
  size_t value_size = static_cast<size_t>(state.range(0));
  uint64_t i = 0;
  for (auto _ : state) {
    const uint64_t k = i++;
    auto st = kv->put("key" + std::to_string(k % 4096),
                      Buffer::synthetic(value_size, k + 1));
    benchmark::DoNotOptimize(st.ok());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(value_size));
  kv.reset();
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_LogKvPut)->Arg(64)->Arg(4096);

void BM_LogKvGet(benchmark::State& state) {
  auto dir = std::filesystem::temp_directory_path() / "evostore_bench_logkv_g";
  std::filesystem::remove_all(dir);
  auto kv = std::move(storage::LogKv::open(dir).value());
  for (int i = 0; i < 1024; ++i) {
    (void)kv->put("key" + std::to_string(i), Buffer::synthetic(1024, i));
  }
  uint64_t i = 0;
  for (auto _ : state) {
    auto r = kv->get("key" + std::to_string(i++ % 1024));
    benchmark::DoNotOptimize(r.ok());
  }
  kv.reset();
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_LogKvGet);

void BM_LogKvCompact(benchmark::State& state) {
  auto dir = std::filesystem::temp_directory_path() / "evostore_bench_logkv_c";
  for (auto _ : state) {
    state.PauseTiming();
    std::filesystem::remove_all(dir);
    auto kv = std::move(storage::LogKv::open(dir).value());
    for (int round = 0; round < 4; ++round) {
      for (int i = 0; i < 256; ++i) {
        (void)kv->put("key" + std::to_string(i), Buffer::synthetic(512, i));
      }
    }
    state.ResumeTiming();
    auto r = kv->compact();
    benchmark::DoNotOptimize(r.ok());
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_LogKvCompact);

void BM_BufferSyntheticRead(benchmark::State& state) {
  Buffer b = Buffer::synthetic(static_cast<size_t>(state.range(0)), 7);
  common::Bytes out(b.size());
  for (auto _ : state) {
    b.read(0, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BufferSyntheticRead)->Arg(4096)->Arg(1 << 20);

void BM_BufferContentHash(benchmark::State& state) {
  // Cache-defeating: fresh buffer per iteration.
  size_t n = static_cast<size_t>(state.range(0));
  uint64_t seed = 0;
  for (auto _ : state) {
    Buffer b = Buffer::synthetic(n, ++seed);
    benchmark::DoNotOptimize(b.content_hash());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BufferContentHash)->Arg(4096)->Arg(1 << 20);

// The per-operation cost of the two ways to bump a counter. Instrumented
// hot paths must cache the Counter* at attach time (the idiom everywhere in
// src/) — the by-name variant re-hashes the metric name per operation and
// exists here as the anti-pattern to measure against, not to copy.
void BM_MetricsCounterByName(benchmark::State& state) {
  obs::MetricsRegistry registry;
  for (auto _ : state) {
    registry.counter("provider.put_count")->add();
  }
  benchmark::DoNotOptimize(registry.counter("provider.put_count")->value());
}
BENCHMARK(BM_MetricsCounterByName);

void BM_MetricsCounterCached(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.counter("provider.put_count");
  for (auto _ : state) {
    c->add();
  }
  benchmark::DoNotOptimize(c->value());
}
BENCHMARK(BM_MetricsCounterCached);

// Flight-recorder append: one branch + ring write + attr string copies.
// This is the cost every instrumented call site pays when --events-out is
// active (and a single null-check when it is not).
void BM_EventLogRecord(benchmark::State& state) {
  obs::EventLog log;
  double t = 0;
  for (auto _ : state) {
    t += 1e-6;
    log.record(t, "hint.recorded", 3,
               {{"count", "1"}, {"target", "2"}});
  }
  benchmark::DoNotOptimize(log.recorded());
}
BENCHMARK(BM_EventLogRecord);

}  // namespace
