// Micro-benchmarks for Algorithm 1 (LCP) — the provider-side inner loop of
// every collective metadata query.
#include <benchmark/benchmark.h>

#include "core/lcp.h"
#include "tests/core/test_env.h"
#include "workload/deepspace.h"

namespace {

using namespace evostore;
using core::testing::chain_graph;

void BM_LcpIdenticalChain(benchmark::State& state) {
  auto g = chain_graph(static_cast<int>(state.range(0)), 64);
  core::LcpWorkspace ws;
  for (auto _ : state) {
    auto r = ws.run(g, g, nullptr);
    benchmark::DoNotOptimize(r.matches.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LcpIdenticalChain)->Arg(10)->Arg(100)->Arg(1000);

void BM_LcpRootMismatch(benchmark::State& state) {
  // The dominant case in large catalog scans: rejected at the root.
  auto g = chain_graph(100, 64);
  auto a = chain_graph(100, 48);
  core::LcpWorkspace ws;
  for (auto _ : state) {
    auto r = ws.run(g, a, nullptr);
    benchmark::DoNotOptimize(r.matches.data());
  }
}
BENCHMARK(BM_LcpRootMismatch);

void BM_LcpHalfPrefix(benchmark::State& state) {
  int layers = static_cast<int>(state.range(0));
  auto g = chain_graph(layers, 64);
  auto a = chain_graph(layers, 64, layers / 2);
  core::LcpWorkspace ws;
  for (auto _ : state) {
    auto r = ws.run(g, a, nullptr);
    benchmark::DoNotOptimize(r.matches.data());
  }
}
BENCHMARK(BM_LcpHalfPrefix)->Arg(20)->Arg(100);

void BM_LcpDeepSpacePair(benchmark::State& state) {
  // Realistic branchy/nested graphs, mutated pairs (the Fig. 5 workload).
  workload::DeepSpace space;
  common::Xoshiro256 rng(1);
  std::vector<std::pair<model::ArchGraph, model::ArchGraph>> pairs;
  for (int i = 0; i < 64; ++i) {
    auto s = space.random(rng);
    pairs.emplace_back(space.decode_graph(space.mutate(s, rng)),
                       space.decode_graph(s));
  }
  core::LcpWorkspace ws;
  size_t i = 0;
  for (auto _ : state) {
    auto& [g, a] = pairs[i++ % pairs.size()];
    auto r = ws.run(g, a, nullptr);
    benchmark::DoNotOptimize(r.matches.data());
  }
}
BENCHMARK(BM_LcpDeepSpacePair);

void BM_LcpCatalogScan(benchmark::State& state) {
  // One full provider-side scan: a query graph against N stored graphs.
  workload::DeepSpace space;
  common::Xoshiro256 rng(2);
  std::vector<model::ArchGraph> catalog;
  for (int64_t i = 0; i < state.range(0); ++i) {
    catalog.push_back(space.decode_graph(space.random(rng)));
  }
  auto query = space.decode_graph(space.random(rng));
  core::LcpWorkspace ws;
  for (auto _ : state) {
    size_t best = 0;
    for (const auto& a : catalog) {
      best = std::max(best, ws.run(query, a, nullptr).length());
    }
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LcpCatalogScan)->Arg(100)->Arg(1000)->Arg(10000);

void BM_LcpWorkspaceVsFresh(benchmark::State& state) {
  auto g = chain_graph(50, 64);
  auto a = chain_graph(50, 64, 10);
  if (state.range(0) == 0) {
    core::LcpWorkspace ws;
    for (auto _ : state) {
      benchmark::DoNotOptimize(ws.run(g, a, nullptr).length());
    }
  } else {
    for (auto _ : state) {
      benchmark::DoNotOptimize(core::longest_common_prefix(g, a).length());
    }
  }
}
BENCHMARK(BM_LcpWorkspaceVsFresh)->Arg(0)->Arg(1);

}  // namespace
