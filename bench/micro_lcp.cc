// Micro-benchmarks for Algorithm 1 (LCP) — the provider-side inner loop of
// every collective metadata query — and for the catalog prefix index
// (DESIGN.md §16) that replaces the scan at catalog scale.
//
// `--index` is shorthand for `--benchmark_filter=Index`: it runs just the
// scan-vs-index pair (build, lookup, and the same-catalog scan baseline)
// whose output lands in bench/data/micro_lcp_index.txt.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/lcp.h"
#include "core/prefix_index.h"
#include "tests/core/test_env.h"
#include "workload/deepspace.h"

namespace {

using namespace evostore;
using core::testing::chain_graph;
using core::testing::widths_graph;

void BM_LcpIdenticalChain(benchmark::State& state) {
  auto g = chain_graph(static_cast<int>(state.range(0)), 64);
  core::LcpWorkspace ws;
  for (auto _ : state) {
    auto r = ws.run(g, g, nullptr);
    benchmark::DoNotOptimize(r.matches.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LcpIdenticalChain)->Arg(10)->Arg(100)->Arg(1000);

void BM_LcpRootMismatch(benchmark::State& state) {
  // The dominant case in large catalog scans: rejected at the root.
  auto g = chain_graph(100, 64);
  auto a = chain_graph(100, 48);
  core::LcpWorkspace ws;
  for (auto _ : state) {
    auto r = ws.run(g, a, nullptr);
    benchmark::DoNotOptimize(r.matches.data());
  }
}
BENCHMARK(BM_LcpRootMismatch);

void BM_LcpHalfPrefix(benchmark::State& state) {
  int layers = static_cast<int>(state.range(0));
  auto g = chain_graph(layers, 64);
  auto a = chain_graph(layers, 64, layers / 2);
  core::LcpWorkspace ws;
  for (auto _ : state) {
    auto r = ws.run(g, a, nullptr);
    benchmark::DoNotOptimize(r.matches.data());
  }
}
BENCHMARK(BM_LcpHalfPrefix)->Arg(20)->Arg(100);

void BM_LcpDeepSpacePair(benchmark::State& state) {
  // Realistic branchy/nested graphs, mutated pairs (the Fig. 5 workload).
  workload::DeepSpace space;
  common::Xoshiro256 rng(1);
  std::vector<std::pair<model::ArchGraph, model::ArchGraph>> pairs;
  for (int i = 0; i < 64; ++i) {
    auto s = space.random(rng);
    pairs.emplace_back(space.decode_graph(space.mutate(s, rng)),
                       space.decode_graph(s));
  }
  core::LcpWorkspace ws;
  size_t i = 0;
  for (auto _ : state) {
    auto& [g, a] = pairs[i++ % pairs.size()];
    auto r = ws.run(g, a, nullptr);
    benchmark::DoNotOptimize(r.matches.data());
  }
}
BENCHMARK(BM_LcpDeepSpacePair);

void BM_LcpCatalogScan(benchmark::State& state) {
  // One full provider-side scan: a query graph against N stored graphs.
  workload::DeepSpace space;
  common::Xoshiro256 rng(2);
  std::vector<model::ArchGraph> catalog;
  for (int64_t i = 0; i < state.range(0); ++i) {
    catalog.push_back(space.decode_graph(space.random(rng)));
  }
  auto query = space.decode_graph(space.random(rng));
  core::LcpWorkspace ws;
  for (auto _ : state) {
    size_t best = 0;
    for (const auto& a : catalog) {
      best = std::max(best, ws.run(query, a, nullptr).length());
    }
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LcpCatalogScan)->Arg(100)->Arg(1000)->Arg(10000);

// ---- catalog prefix index (scan-vs-index microcosts) ----------------------

// Fine-tune families of linear chains: 64 members per family sharing a
// spine, tails mutated — the ablation_lcp_index catalog shape.
std::vector<model::ArchGraph> family_catalog(int64_t n) {
  std::vector<model::ArchGraph> catalog;
  catalog.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    uint64_t family = static_cast<uint64_t>(i) / 64;
    common::Xoshiro256 rng(0x5eedULL + family * 0x9e3779b97f4a7c15ULL);
    size_t len = 6 + rng.below(7);
    std::vector<int64_t> w(len);
    w[0] = 8 + static_cast<int64_t>(family % 61);
    for (size_t j = 1; j < len; ++j) {
      w[j] = 16 + 8 * static_cast<int64_t>(rng.below(4));
    }
    if (i % 64 != 0) {
      common::Xoshiro256 mrng(static_cast<uint64_t>(i) * 0xda942042e4dd58b5ULL);
      for (size_t j = len - 1 - mrng.below(2); j < len; ++j) {
        w[j] = 17 + 8 * static_cast<int64_t>(mrng.below(4));
      }
    }
    catalog.push_back(widths_graph(w));
  }
  return catalog;
}

void BM_LcpIndexBuild(benchmark::State& state) {
  auto catalog = family_catalog(state.range(0));
  for (auto _ : state) {
    core::PrefixIndex idx;
    for (size_t i = 0; i < catalog.size(); ++i) {
      idx.insert(common::ModelId{i + 1}, 0.5, catalog[i]);
    }
    benchmark::DoNotOptimize(idx.node_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LcpIndexBuild)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_LcpIndexLookup(benchmark::State& state) {
  auto catalog = family_catalog(state.range(0));
  core::PrefixIndex idx;
  for (size_t i = 0; i < catalog.size(); ++i) {
    idx.insert(common::ModelId{i + 1}, 0.5, catalog[i]);
  }
  // Queries cycle through stored members: deep trie walks, realistic hits.
  size_t q = 0;
  for (auto _ : state) {
    auto hit = idx.lookup(catalog[(q += 17) % catalog.size()]);
    benchmark::DoNotOptimize(hit.best);
  }
}
BENCHMARK(BM_LcpIndexLookup)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_LcpIndexScanBaseline(benchmark::State& state) {
  // The cost the index replaces: a full Algorithm 1 scan of the SAME
  // family catalog (compare against BM_LcpIndexLookup at equal Arg).
  auto catalog = family_catalog(state.range(0));
  core::LcpWorkspace ws;
  size_t q = 0;
  for (auto _ : state) {
    const auto& query = catalog[(q += 17) % catalog.size()];
    size_t best = 0;
    for (const auto& a : catalog) {
      best = std::max(best, ws.run(query, a, nullptr).length());
    }
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LcpIndexScanBaseline)->Arg(1000)->Arg(10000);

void BM_LcpWorkspaceVsFresh(benchmark::State& state) {
  auto g = chain_graph(50, 64);
  auto a = chain_graph(50, 64, 10);
  if (state.range(0) == 0) {
    core::LcpWorkspace ws;
    for (auto _ : state) {
      benchmark::DoNotOptimize(ws.run(g, a, nullptr).length());
    }
  } else {
    for (auto _ : state) {
      benchmark::DoNotOptimize(core::longest_common_prefix(g, a).length());
    }
  }
}
BENCHMARK(BM_LcpWorkspaceVsFresh)->Arg(0)->Arg(1);

}  // namespace

// Custom main so `--index` maps onto the benchmark filter; everything else
// passes straight through to google-benchmark (our definition wins over the
// one in benchmark_main, which the linker only pulls when main is
// undefined).
int main(int argc, char** argv) {
  std::string filter = "--benchmark_filter=Index";
  std::vector<char*> args(argv, argv + argc);
  for (char*& arg : args) {
    if (std::string(arg) == "--index") arg = filter.data();
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
