// Micro-benchmarks for the model layer: flattening, canonical hashing,
// serialization — the metadata costs behind every query and put.
#include <benchmark/benchmark.h>

#include "model/model.h"
#include "nas/attn_space.h"
#include "workload/deepspace.h"

namespace {

using namespace evostore;

void BM_FlattenDeepSpace(benchmark::State& state) {
  workload::DeepSpace space;
  common::Xoshiro256 rng(1);
  std::vector<workload::DeepSpaceSeq> seqs;
  for (int i = 0; i < 64; ++i) seqs.push_back(space.random(rng));
  size_t i = 0;
  for (auto _ : state) {
    auto arch = space.decode(seqs[i++ % seqs.size()]);
    auto g = model::ArchGraph::flatten(arch);
    benchmark::DoNotOptimize(g.ok());
  }
}
BENCHMARK(BM_FlattenDeepSpace);

void BM_DecodeAttnCandidate(benchmark::State& state) {
  nas::AttnSearchSpace space;
  common::Xoshiro256 rng(2);
  std::vector<nas::CandidateSeq> seqs;
  for (int i = 0; i < 64; ++i) seqs.push_back(space.random(rng));
  size_t i = 0;
  for (auto _ : state) {
    auto g = space.decode(seqs[i++ % seqs.size()]);
    benchmark::DoNotOptimize(g.size());
  }
}
BENCHMARK(BM_DecodeAttnCandidate);

void BM_LayerSignature(benchmark::State& state) {
  auto def = model::make_attention(1024, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(def.signature());
  }
}
BENCHMARK(BM_LayerSignature);

void BM_GraphSerde(benchmark::State& state) {
  workload::DeepSpace space;
  common::Xoshiro256 rng(3);
  auto g = space.decode_graph(space.random(rng));
  for (auto _ : state) {
    common::Serializer s;
    g.serialize(s);
    common::Deserializer d(s.data());
    auto out = model::ArchGraph::deserialize(d);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_GraphSerde);

void BM_RandomModelCreation(benchmark::State& state) {
  nas::AttnSearchSpace space;
  common::Xoshiro256 rng(4);
  auto g = space.decode(space.random(rng));
  uint64_t seed = 0;
  for (auto _ : state) {
    auto m = model::Model::random(common::ModelId::make(1, 1), g, ++seed);
    benchmark::DoNotOptimize(m.total_bytes());
  }
}
BENCHMARK(BM_RandomModelCreation);

void BM_SegmentSerde(benchmark::State& state) {
  auto g = nas::AttnSearchSpace().decode(
      nas::CandidateSeq(nas::AttnSearchSpace().positions(), 1));
  auto m = model::Model::random(common::ModelId::make(1, 1), g, 1);
  // Pick the largest segment.
  common::VertexId big = 0;
  for (common::VertexId v = 0; v < m.vertex_count(); ++v) {
    if (m.segment(v).nbytes() > m.segment(big).nbytes()) big = v;
  }
  for (auto _ : state) {
    common::Serializer s;
    m.segment(big).serialize(s);
    common::Deserializer d(s.data());
    auto out = model::Segment::deserialize(d);
    benchmark::DoNotOptimize(out.nbytes());
  }
}
BENCHMARK(BM_SegmentSerde);

}  // namespace
