// Micro-benchmarks for owner-map operations (derive, group, serialize) —
// the metadata path of every put/get/retire.
#include <benchmark/benchmark.h>

#include "core/owner_map.h"

namespace {

using namespace evostore;
using common::ModelId;
using common::VertexId;
using core::OwnerMap;

OwnerMap make_mixed_map(size_t vertices, int owners) {
  OwnerMap map = OwnerMap::self_owned(ModelId::make(1, 1), vertices);
  for (VertexId v = 0; v < vertices; ++v) {
    map.set_entry(v, {ModelId::make(1, 1 + v % owners), v});
  }
  return map;
}

void BM_OwnerMapSelfOwned(benchmark::State& state) {
  for (auto _ : state) {
    auto m = OwnerMap::self_owned(ModelId::make(1, 1),
                                  static_cast<size_t>(state.range(0)));
    benchmark::DoNotOptimize(m.size());
  }
}
BENCHMARK(BM_OwnerMapSelfOwned)->Arg(100)->Arg(10000);

void BM_OwnerMapDerive(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  OwnerMap parent = OwnerMap::self_owned(ModelId::make(1, 1), n);
  std::vector<std::pair<VertexId, VertexId>> matches;
  for (VertexId v = 0; v < n / 2; ++v) matches.emplace_back(v, v);
  for (auto _ : state) {
    auto m = OwnerMap::derive(ModelId::make(1, 2), n, parent, matches);
    benchmark::DoNotOptimize(m.size());
  }
}
BENCHMARK(BM_OwnerMapDerive)->Arg(100)->Arg(10000);

void BM_OwnerMapByOwner(benchmark::State& state) {
  auto map = make_mixed_map(static_cast<size_t>(state.range(0)), 16);
  for (auto _ : state) {
    auto groups = map.by_owner();
    benchmark::DoNotOptimize(groups.size());
  }
}
BENCHMARK(BM_OwnerMapByOwner)->Arg(100)->Arg(10000);

void BM_OwnerMapContributors(benchmark::State& state) {
  auto map = make_mixed_map(static_cast<size_t>(state.range(0)), 16);
  for (auto _ : state) {
    auto c = map.contributors();
    benchmark::DoNotOptimize(c.size());
  }
}
BENCHMARK(BM_OwnerMapContributors)->Arg(100)->Arg(1000);

void BM_OwnerMapSerde(benchmark::State& state) {
  auto map = make_mixed_map(static_cast<size_t>(state.range(0)), 16);
  for (auto _ : state) {
    common::Serializer s;
    map.serialize(s);
    common::Deserializer d(s.data());
    auto out = OwnerMap::deserialize(d);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(map.metadata_bytes()));
}
BENCHMARK(BM_OwnerMapSerde)->Arg(100)->Arg(10000);

}  // namespace
