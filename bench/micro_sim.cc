// Micro-benchmarks for the simulation engine: event throughput, coroutine
// switch cost, fair-share recomputation — bounds on experiment wall time.
#include <benchmark/benchmark.h>

#include "net/rpc.h"
#include "sim/flow.h"
#include "sim/simulation.h"
#include "sim/sync.h"

namespace {

using namespace evostore;
using sim::CoTask;
using sim::Simulation;

void BM_EventLoopCallbacks(benchmark::State& state) {
  for (auto _ : state) {
    Simulation sim;
    int sink = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_callback(static_cast<double>(i), [&sink] { ++sink; });
    }
    sim.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventLoopCallbacks);

CoTask<void> yielder(Simulation& sim, int n) {
  for (int i = 0; i < n; ++i) co_await sim.yield();
}

void BM_CoroutineYield(benchmark::State& state) {
  for (auto _ : state) {
    Simulation sim;
    sim.run_until_complete(yielder(sim, 1000));
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CoroutineYield);

CoTask<void> chain_spawn(Simulation& sim, int depth) {
  if (depth == 0) co_return;
  co_await sim.spawn(chain_spawn(sim, depth - 1));
}

void BM_SpawnJoin(benchmark::State& state) {
  for (auto _ : state) {
    Simulation sim;
    sim.run_until_complete(chain_spawn(sim, 500));
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_SpawnJoin);

void BM_FairShareChurn(benchmark::State& state) {
  // N overlapping flows on one port: each add/finish triggers recomputation.
  int flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulation sim;
    sim::FlowScheduler fs(sim);
    auto port = fs.add_port(1e9);
    std::vector<sim::Future<void>> futures;
    for (int i = 0; i < flows; ++i) {
      std::vector<sim::PortId> path{port};
      futures.push_back(
          sim.spawn(fs.transfer(std::move(path), 1000.0 * (i + 1))));
    }
    sim.run();
    benchmark::DoNotOptimize(futures.size());
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FairShareChurn)->Arg(16)->Arg(128)->Arg(512);

void BM_RpcRoundTrip(benchmark::State& state) {
  Simulation sim;
  net::Fabric fabric(sim);
  net::RpcSystem rpc(fabric);
  auto a = fabric.add_node(25e9, 25e9);
  auto b = fabric.add_node(25e9, 25e9);
  rpc.register_handler(b, "echo", [](common::Bytes req) -> CoTask<common::Bytes> {
    co_return req;
  });
  auto do_call = [&]() -> CoTask<void> {
    auto r = co_await rpc.call(a, b, "echo", common::Bytes(64));
    benchmark::DoNotOptimize(r.ok());
  };
  for (auto _ : state) {
    sim.run_until_complete(do_call());
  }
}
BENCHMARK(BM_RpcRoundTrip);

void BM_SemaphoreHandoff(benchmark::State& state) {
  for (auto _ : state) {
    Simulation sim;
    sim::Semaphore sem(sim, 1);
    auto worker = [&](int n) -> CoTask<void> {
      for (int i = 0; i < n; ++i) {
        co_await sem.acquire();
        co_await sim.yield();
        sem.release();
      }
    };
    auto f1 = sim.spawn(worker(200));
    auto f2 = sim.spawn(worker(200));
    sim.run();
    benchmark::DoNotOptimize(f1.done() && f2.done());
  }
  state.SetItemsProcessed(state.iterations() * 400);
}
BENCHMARK(BM_SemaphoreHandoff);

}  // namespace
