// Shared wiring for the end-to-end NAS experiments (Figures 6-10):
// builds a cluster, instantiates the requested repository flavor, and runs
// the aged-evolution search to completion.
#pragma once

#include <memory>

#include "baseline/hdf5_pfs.h"
#include "bench/bench_common.h"
#include "nas/attn_space.h"
#include "nas/runner.h"

namespace evostore::bench {

enum class Approach { kNoTransfer, kEvoStore, kHdf5Pfs };

inline const char* approach_name(Approach a) {
  switch (a) {
    case Approach::kNoTransfer: return "DH-NoTransfer";
    case Approach::kEvoStore: return "EvoStore";
    case Approach::kHdf5Pfs: return "HDF5+PFS";
  }
  return "?";
}

struct NasOutcome {
  nas::NasResult result;
  size_t stored_bytes = 0;        // repository payload at end of run (logical)
  size_t physical_bytes = 0;      // post-compression payload (EvoStore only)
  size_t peak_metadata_bytes = 0; // metadata footprint (EvoStore only)
};

/// Knobs beyond the (approach, gpus, candidates, seed) basics.
struct RunOptions {
  bool retire = true;
  /// Passed through to NasConfig: fraction of the LCP fine-tuned (stored
  /// self-owned) and fraction of each fine-tuned segment's tensors modified.
  double finetune_lcp_fraction = 0.0;
  double finetune_update_fraction = 0.25;
  /// Codec EvoStore clients apply to self-owned segments.
  compress::CodecId put_codec = compress::CodecId::kRaw;
};

inline NasOutcome run_nas_approach(Approach approach, int gpus,
                                   size_t candidates, uint64_t seed,
                                   RunOptions options) {
  Cluster cluster(gpus);
  nas::AttnSearchSpace space;
  nas::NasConfig cfg;
  cfg.total_candidates = candidates;
  cfg.population_cap = 100;
  cfg.sample_size = 10;
  cfg.seed = seed;
  cfg.retire_dropped = options.retire;
  cfg.finetune_lcp_fraction = options.finetune_lcp_fraction;
  cfg.finetune_update_fraction = options.finetune_update_fraction;

  NasOutcome out;
  switch (approach) {
    case Approach::kNoTransfer: {
      cfg.use_transfer = false;
      out.result = nas::run_nas(cluster.sim, cluster.fabric, space, nullptr,
                                cluster.workers, cluster.controller, cfg);
      break;
    }
    case Approach::kEvoStore: {
      core::ClientConfig ccfg;
      ccfg.put_codec = options.put_codec;
      core::EvoStoreRepository repo(cluster.rpc, cluster.provider_nodes, {},
                                    {}, ccfg);
      cfg.use_transfer = true;
      out.result = nas::run_nas(cluster.sim, cluster.fabric, space, &repo,
                                cluster.workers, cluster.controller, cfg);
      out.stored_bytes = repo.stored_payload_bytes();
      out.physical_bytes = repo.stored_physical_bytes();
      out.peak_metadata_bytes = repo.total_metadata_bytes();
      break;
    }
    case Approach::kHdf5Pfs: {
      auto redis_node = cluster.fabric.add_node(25e9, 25e9, "redis");
      storage::Pfs pfs(cluster.fabric, storage::PfsConfig{});
      // The end-to-end runs pay the full Keras/h5py/TF tax the paper
      // measured (§5.6): launching an execution context per store/load,
      // single-threaded staging copies, ~100 ms chunked ranged reads on a
      // loaded Lustre client, and a contended Redis metadata server.
      // Constants calibrated so the per-task overhead matches the paper's
      // finding that HDF5+PFS lands close to DH-NoTransfer (EXPERIMENTS.md).
      baseline::RedisConfig rcfg;
      rcfg.op_seconds = 50e-3;
      baseline::RedisQueries redis(cluster.rpc, redis_node, rcfg);
      baseline::Hdf5PfsConfig h5cfg;
      h5cfg.staging_bandwidth = 0.25e9;
      h5cfg.context_setup_seconds = 11.0;
      h5cfg.per_dataset_seconds = 10e-3;
      h5cfg.partial_read_seconds = 450e-3;
      baseline::Hdf5PfsRepository repo(pfs, &redis, h5cfg);
      cfg.use_transfer = true;
      out.result = nas::run_nas(cluster.sim, cluster.fabric, space, &repo,
                                cluster.workers, cluster.controller, cfg);
      out.stored_bytes = pfs.stored_bytes();
      out.physical_bytes = pfs.stored_bytes();
      break;
    }
  }
  return out;
}

inline NasOutcome run_nas_approach(Approach approach, int gpus,
                                   size_t candidates, uint64_t seed,
                                   bool retire = true) {
  RunOptions options;
  options.retire = retire;
  return run_nas_approach(approach, gpus, candidates, seed, options);
}

}  // namespace evostore::bench
