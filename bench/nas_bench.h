// Shared wiring for the end-to-end NAS experiments (Figures 6-10):
// builds a cluster, instantiates the requested repository flavor, and runs
// the aged-evolution search to completion.
#pragma once

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "baseline/hdf5_pfs.h"
#include "bench/bench_common.h"
#include "common/hash.h"
#include "nas/attn_space.h"
#include "nas/runner.h"
#include "net/fault.h"
#include "storage/mem_kv.h"

namespace evostore::bench {

enum class Approach { kNoTransfer, kEvoStore, kHdf5Pfs };

inline const char* approach_name(Approach a) {
  switch (a) {
    case Approach::kNoTransfer: return "DH-NoTransfer";
    case Approach::kEvoStore: return "EvoStore";
    case Approach::kHdf5Pfs: return "HDF5+PFS";
  }
  return "?";
}

/// Fault-run accounting (filled for EvoStore when fault injection is on).
struct FaultOutcome {
  // Injector-side.
  uint64_t crashes = 0;
  uint64_t restarts = 0;
  uint64_t dropped_messages = 0;
  uint64_t rejected_while_down = 0;
  // Client-side.
  uint64_t retries = 0;
  uint64_t exhausted = 0;
  uint64_t partial_lcp_queries = 0;
  uint64_t degraded_transfers = 0;
  // Provider-side.
  uint64_t provider_restarts = 0;
  uint64_t deduped_replays = 0;
  // Post-run drain: every surviving model retired, then the repository
  // inspected. A correct run under faults drains to exactly zero — the same
  // end state as a fault-free run — proving no refcount leaked or
  // double-applied despite crashes, retries, and replays.
  uint64_t drain_failures = 0;
  size_t end_models = 0;
  size_t end_segments = 0;
  size_t end_logical_bytes = 0;
  bool drained_to_zero = false;
  // K-way replication fault model (DESIGN.md §15).
  uint64_t read_failovers = 0;        // reads that fell over to another replica
  uint64_t hints_sent = 0;            // writes parked as hinted handoffs
  uint64_t hints_replayed = 0;        // hints delivered on target recovery
  uint64_t partitioned_messages = 0;  // legs held by a network partition
  size_t end_parked_hints = 0;        // hints still parked when the run ended
  /// Kill-one-forever leg: the mid-run repair_provider() call succeeded.
  bool repair_ok = false;
  /// Drain leg: the mid-run drain_provider() call succeeded and the drained
  /// provider ended the run with an empty catalog.
  bool drain_ok = false;
  /// Post-run audit: every surviving model present on ALL of its replicas
  /// with bit-identical self-owned segment envelopes (full k-way strength).
  bool converged = false;
  /// Post-run read-back: every surviving model loaded through the client API
  /// without error, its content folded into `readback_digest`.
  bool readback_ok = false;
  uint64_t readback_digest = 0;
};

struct NasOutcome {
  nas::NasResult result;
  size_t stored_bytes = 0;        // repository payload at end of run (logical)
  size_t physical_bytes = 0;      // post-compression + post-dedup (EvoStore)
  // What the same segments would cost without chunk dedup (delta codec
  // alone); equals physical_bytes when chunking never triggered.
  size_t pre_dedup_physical_bytes = 0;
  uint64_t live_chunks = 0;
  uint64_t dedup_saved_bytes = 0;
  size_t peak_metadata_bytes = 0; // metadata footprint (EvoStore only)
  bool fault_enabled = false;
  FaultOutcome fault;
};

/// Knobs beyond the (approach, gpus, candidates, seed) basics.
struct RunOptions {
  bool retire = true;
  /// Passed through to NasConfig: fraction of the LCP fine-tuned (stored
  /// self-owned) and fraction of each fine-tuned segment's tensors modified.
  double finetune_lcp_fraction = 0.0;
  double finetune_update_fraction = 0.25;
  /// Codec EvoStore clients apply to self-owned segments.
  compress::CodecId put_codec = compress::CodecId::kRaw;
  /// Client-side cooperative segment cache (EvoStore only; DESIGN.md §14).
  /// The default (capacity 0) keeps every run byte-identical to a cacheless
  /// deployment; fault harnesses enable it to prove the cached read path
  /// replays deterministically and never perturbs the drain-to-zero check.
  cache::CacheConfig cache;
  /// Provider configuration, passed through verbatim (chunk dedup knobs
  /// live here). The default keeps chunking at real-deployment parameters,
  /// which is inert at simulation payload scale; harnesses that want the
  /// dedup path hot set simulation-scale chunker sizes — see
  /// sim_scale_chunker() and DESIGN.md §13.
  core::ProviderConfig provider_config;
  /// Fault injection (EvoStore only). 0 disables it entirely — the run is
  /// byte-identical to one without any fault machinery. Non-zero seeds a
  /// deterministic crash/restart schedule on the first
  /// `fault_crash_providers` provider nodes (exponential MTBF, fixed MTTR),
  /// backs every provider with an in-memory KV store so crashed providers
  /// recover their state, and turns on client deadlines + retries.
  uint64_t fault_seed = 0;
  double fault_mtbf = 300;
  double fault_mttr = 5;
  double fault_drop_probability = 0;
  int fault_crash_providers = 1;
  /// No crash is scheduled past this simulated time (keeps the end-of-run
  /// drain out of the fault window).
  double fault_horizon = 4000;
  /// Replica count for EvoStore clients (0 = library default). 1 restores
  /// the paper's single-owner placement.
  size_t replication = 0;
  /// Kill-one-FOREVER leg (requires fault_seed != 0): at this simulated time
  /// provider 0 crashes AND its backend is wiped — permanent data loss, not
  /// a crash window. `kill_repair_delay` seconds later it restarts empty and
  /// repair_provider() rebuilds it from its replica peers while the search
  /// keeps running. 0 disables.
  double kill_forever_at = 0;
  double kill_repair_delay = 30;
  /// Symmetric network partition islanding provider 0's node over
  /// [partition_at, partition_at + partition_duration): crossing messages
  /// are held and re-delivered after the heal in a seeded reordered order
  /// (requires fault_seed != 0). 0 disables.
  double partition_at = 0;
  double partition_duration = 0;
  /// Drain leg (requires fault_seed != 0 for the fault accounting): at this
  /// simulated time the LAST provider is drained out of the ring under
  /// ongoing traffic. 0 disables.
  double drain_at = 0;
  /// When set, the run attaches the harness's metrics registry (and, on the
  /// first attached cluster, its tracer) to the cluster's RpcSystem — see
  /// Observability in bench_common.h. Non-owning; detached before the
  /// cluster is destroyed.
  Observability* observability = nullptr;
};

/// Chunker parameters proportioned to the compact serialized-descriptor
/// payloads the simulation stores (DESIGN.md §13: the real-deployment
/// 4/16/64 KiB defaults would never fire on descriptor-sized payloads).
inline compress::ChunkerConfig sim_scale_chunker() {
  return compress::ChunkerConfig{/*min_bytes=*/32, /*avg_bytes=*/64,
                                 /*max_bytes=*/256};
}

namespace detail {

/// Kill-one-forever orchestration, spawned alongside the NAS run. Parameters
/// travel by value (pointers/ids) — the coroutine outlives the spawning
/// statement, so it must not capture references to locals via a lambda.
inline sim::CoTask<void> kill_forever_leg(sim::Simulation* sim,
                                          net::FaultInjector* injector,
                                          core::EvoStoreRepository* repo,
                                          storage::MemKv* backend,
                                          common::NodeId node,
                                          common::ProviderId provider,
                                          double at, double repair_delay,
                                          bool* repair_ok) {
  co_await sim->delay(at);
  injector->crash_node(node);
  // Permanent loss: the backend dies with the process, so the restart below
  // comes back EMPTY — only anti-entropy repair can rebuild this replica.
  for (const std::string& key : backend->keys()) (void)backend->erase(key);
  co_await sim->delay(repair_delay);
  injector->restart_node(node);
  auto st = co_await repo->repair_provider(provider);
  *repair_ok = st.ok();
}

/// Drain orchestration: flip membership + migrate the catalog mid-run.
inline sim::CoTask<void> drain_leg(sim::Simulation* sim,
                                   core::EvoStoreRepository* repo,
                                   common::ProviderId provider, double at,
                                   bool* drain_ok) {
  co_await sim->delay(at);
  auto st = co_await repo->drain_provider(provider);
  *drain_ok = st.ok();
}

/// Post-run replica-convergence audit: every id present on ALL of its
/// replicas, with bit-identical self-owned segment envelopes everywhere.
/// (Ancestor-owned composition entries belong to the ancestor's replica set
/// and are audited under the ancestor's own id.)
inline bool full_replication_converged(core::EvoStoreRepository& repo,
                                       const std::vector<common::ModelId>& ids) {
  const core::Membership& membership = repo.membership();
  for (common::ModelId id : ids) {
    auto reps = membership.replicas(id);
    size_t want = std::min(membership.replication(), membership.live_count());
    if (reps.size() != want || reps.empty()) return false;
    const core::OwnerMap* owners = nullptr;
    for (common::ProviderId p : reps) {
      if (!repo.provider(p).has_model(id)) return false;
      if (owners == nullptr) owners = repo.provider(p).owner_map(id);
    }
    if (owners == nullptr) return false;
    for (const common::SegmentKey& key : owners->entries()) {
      if (key.owner != id) continue;  // ancestor-owned: audited under its id
      const auto* first = repo.provider(reps[0]).segment_envelope(key);
      if (first == nullptr) return false;
      for (size_t i = 1; i < reps.size(); ++i) {
        const auto* other = repo.provider(reps[i]).segment_envelope(key);
        if (other == nullptr || !(*other == *first)) return false;
      }
    }
  }
  return true;
}

/// Post-run read-back: load every surviving model through the client API and
/// fold its content fingerprints into an order-sensitive digest.
inline sim::CoTask<bool> readback_population(
    core::EvoStoreRepository* repo, common::NodeId reader,
    const std::vector<common::ModelId>* ids, uint64_t* digest) {
  uint64_t h = 0x243f6a8885a308d3ULL;
  bool ok = true;
  for (common::ModelId id : *ids) {
    auto r = co_await repo->load(reader, id);
    if (!r.ok()) {
      ok = false;
      continue;
    }
    h = common::hash_combine(h, id.value);
    for (common::VertexId v = 0; v < r->vertex_count(); ++v) {
      common::Hash128 f = r->segment(v).identity();
      h = common::hash_combine(h, f.hi);
      h = common::hash_combine(h, f.lo);
    }
  }
  *digest = h;
  co_return ok;
}

}  // namespace detail

inline NasOutcome run_nas_approach(Approach approach, int gpus,
                                   size_t candidates, uint64_t seed,
                                   RunOptions options) {
  Cluster cluster(gpus);
  // Attach before any repository exists so providers/clients constructed
  // below cache the shared histogram pointers.
  if (options.observability != nullptr) options.observability->attach(cluster);
  nas::AttnSearchSpace space;
  nas::NasConfig cfg;
  cfg.total_candidates = candidates;
  cfg.population_cap = 100;
  cfg.sample_size = 10;
  cfg.seed = seed;
  cfg.retire_dropped = options.retire;
  cfg.finetune_lcp_fraction = options.finetune_lcp_fraction;
  cfg.finetune_update_fraction = options.finetune_update_fraction;

  NasOutcome out;
  switch (approach) {
    case Approach::kNoTransfer: {
      cfg.use_transfer = false;
      out.result = nas::run_nas(cluster.sim, cluster.fabric, space, nullptr,
                                cluster.workers, cluster.controller, cfg);
      break;
    }
    case Approach::kEvoStore: {
      core::ClientConfig ccfg;
      ccfg.put_codec = options.put_codec;
      ccfg.cache = options.cache;
      if (options.replication != 0) ccfg.replication = options.replication;
      std::vector<std::unique_ptr<storage::MemKv>> backing;
      std::vector<storage::KvStore*> backends;
      std::unique_ptr<net::FaultInjector> injector;
      if (options.fault_seed != 0) {
        net::FaultConfig fcfg;
        fcfg.seed = options.fault_seed;
        fcfg.drop_probability = options.fault_drop_probability;
        injector = std::make_unique<net::FaultInjector>(cluster.sim, fcfg);
        // Must be installed before the repository is built so provider
        // restart hooks get registered. The flight recorder (attached above
        // through the rpc system) also observes crash/restart/partition
        // transitions.
        injector->set_events(cluster.rpc.events());
        cluster.rpc.set_fault_injector(injector.get());
        // Crash recovery needs durable provider state: back every provider
        // with an in-memory KV store (write-through, restored on restart).
        backing.reserve(cluster.provider_nodes.size());
        for (size_t i = 0; i < cluster.provider_nodes.size(); ++i) {
          backing.push_back(std::make_unique<storage::MemKv>());
          backends.push_back(backing.back().get());
        }
        int n = std::min(options.fault_crash_providers,
                         static_cast<int>(cluster.provider_nodes.size()));
        for (int i = 0; i < n; ++i) {
          injector->schedule_mtbf(cluster.provider_nodes[i], /*start=*/1.0,
                                  options.fault_horizon, options.fault_mtbf,
                                  options.fault_mttr);
        }
        // Retry budget sized so an RPC aimed at a crashed provider keeps
        // backing off past the MTTR: cumulative backoff (~0.05 * 2^k capped
        // at 2 s, 12 attempts => ~18 s + deadlines) comfortably exceeds the
        // default 5 s downtime, so exhaustion is the exception, not the rule.
        ccfg.retry.max_attempts = 12;
        ccfg.rpc_timeout = 1.0;
        ccfg.fault_seed = options.fault_seed;
        // Two-tier write budget: a replica leg that keeps failing parks its
        // hinted handoff after ~6 fast attempts instead of riding the whole
        // budget, while outer put rounds (same token, idempotent) keep the
        // operation alive through long outages — including the case where
        // the CLIENT's own co-located node is the one that crashed.
        ccfg.retry.write_leg_attempts = 6;
        if (options.kill_forever_at > 0 || options.partition_duration > 0) {
          // The orchestrated outages below run much longer than the MTTR the
          // default budget was sized for — and providers are CO-LOCATED with
          // compute nodes, so the killed node's own workers lose their
          // client egress for the whole window. Extend the attempt cap so
          // cumulative backoff (~13 s for the first 12 attempts, then
          // max_backoff per attempt) rides through the longest outage plus
          // reorder-heal slack instead of exhausting mid-window.
          double outage =
              options.kill_repair_delay + options.partition_duration + 10;
          ccfg.retry.max_attempts =
              12 + static_cast<int>(outage / ccfg.retry.max_backoff);
        }
      }
      core::EvoStoreRepository repo(cluster.rpc, cluster.provider_nodes,
                                    options.provider_config, backends, ccfg);
      cfg.use_transfer = true;
      // Fault-orchestration legs run as independent simulated processes
      // inside run_nas's event loop; the futures let the post-run accounting
      // below confirm each leg actually finished.
      bool repair_ok = false;
      bool drain_ok = false;
      const bool kill_leg =
          injector != nullptr && options.kill_forever_at > 0 && !backing.empty();
      const bool drain_leg_on =
          injector != nullptr && options.drain_at > 0 &&
          cluster.provider_nodes.size() > 1;
      if (kill_leg) {
        cluster.sim.spawn(detail::kill_forever_leg(
            // evo-lint: suppress(EVO-CORO-004) drained by sim.run() below
            &cluster.sim, injector.get(), &repo, backing.front().get(),
            cluster.provider_nodes.front(), common::ProviderId{0},
            // evo-lint: suppress(EVO-CORO-004) drained by sim.run() below
            options.kill_forever_at, options.kill_repair_delay, &repair_ok));
      }
      if (drain_leg_on) {
        const auto last = static_cast<common::ProviderId>(
            cluster.provider_nodes.size() - 1);
        cluster.sim.spawn(detail::drain_leg(
            // evo-lint: suppress(EVO-CORO-004) drained by sim.run() below
            &cluster.sim, &repo, last, options.drain_at, &drain_ok));
      }
      if (injector != nullptr && options.partition_duration > 0) {
        const std::vector<common::NodeId> island{
            cluster.provider_nodes.front()};
        injector->schedule_partition(
            island, options.partition_at,
            options.partition_at + options.partition_duration);
      }
      out.result = nas::run_nas(cluster.sim, cluster.fabric, space, &repo,
                                cluster.workers, cluster.controller, cfg);
      // A leg whose trigger time lands past the search makespan is still
      // pending: drain the event queue so it runs to completion before the
      // audits below.
      if (kill_leg || drain_leg_on) cluster.sim.run();
      out.stored_bytes = repo.stored_payload_bytes();
      out.physical_bytes = repo.stored_physical_bytes();
      out.pre_dedup_physical_bytes = repo.stored_pre_dedup_physical_bytes();
      out.live_chunks = repo.total_chunks();
      out.dedup_saved_bytes = repo.total_dedup_saved_bytes();
      out.peak_metadata_bytes = repo.total_metadata_bytes();
      if (injector != nullptr) {
        out.fault_enabled = true;
        // Replica-convergence audit and client read-back run BEFORE the
        // retire-drain below empties the repository. The audit walks every
        // surviving model's replica set; the read-back digests content
        // fingerprints through the normal client path (failover included).
        out.fault.converged = detail::full_replication_converged(
            repo, out.result.final_population);
        out.fault.readback_ok = cluster.sim.run_until_complete(
            detail::readback_population(&repo, cluster.workers[0],
                                        &out.result.final_population,
                                        &out.fault.readback_digest));
        out.fault.repair_ok = repair_ok;
        if (drain_leg_on) {
          const auto last = static_cast<common::ProviderId>(
              cluster.provider_nodes.size() - 1);
          out.fault.drain_ok = drain_ok && repo.provider(last).drained() &&
                               repo.provider(last).model_ids().empty() &&
                               !repo.membership().is_live(last);
        }
        // Retire every model still alive in the population, then check the
        // repository really is empty — the acceptance criterion that
        // refcounts never leaked or double-applied under faults.
        auto drain = [&]() -> sim::CoTask<uint64_t> {
          uint64_t failed = 0;
          for (common::ModelId id : out.result.final_population) {
            auto st = co_await repo.retire(cluster.workers[0], id);
            if (!st.ok()) ++failed;
          }
          co_return failed;
        };
        out.fault.drain_failures = cluster.sim.run_until_complete(drain());
        const net::FaultStats& is = injector->stats();
        out.fault.crashes = is.crashes;
        out.fault.restarts = is.restarts;
        out.fault.dropped_messages = is.dropped_messages;
        out.fault.rejected_while_down = is.rejected_down;
        core::ClientFaultStats cs = repo.total_client_fault_stats();
        out.fault.retries = cs.retries;
        out.fault.exhausted = cs.exhausted;
        out.fault.partial_lcp_queries = cs.partial_lcp_queries;
        out.fault.degraded_transfers = cs.degraded_transfers;
        out.fault.read_failovers = cs.read_failovers;
        out.fault.hints_sent = cs.hints_sent;
        out.fault.partitioned_messages = is.partitioned_messages;
        for (size_t p = 0; p < repo.provider_count(); ++p) {
          out.fault.hints_replayed += repo.provider(p).stats().hints_replayed;
        }
        out.fault.end_parked_hints = repo.total_hints();
        out.fault.provider_restarts = repo.total_provider_restarts();
        out.fault.deduped_replays = repo.total_deduped_replays();
        out.fault.end_models = repo.total_models();
        out.fault.end_segments = repo.total_segments();
        out.fault.end_logical_bytes = repo.stored_payload_bytes();
        out.fault.drained_to_zero =
            out.fault.end_models == 0 && out.fault.end_segments == 0 &&
            out.fault.end_logical_bytes == 0;
        cluster.rpc.set_fault_injector(nullptr);
      }
      break;
    }
    case Approach::kHdf5Pfs: {
      auto redis_node = cluster.fabric.add_node(25e9, 25e9, "redis");
      storage::Pfs pfs(cluster.fabric, storage::PfsConfig{});
      // The end-to-end runs pay the full Keras/h5py/TF tax the paper
      // measured (§5.6): launching an execution context per store/load,
      // single-threaded staging copies, ~100 ms chunked ranged reads on a
      // loaded Lustre client, and a contended Redis metadata server.
      // Constants calibrated so the per-task overhead matches the paper's
      // finding that HDF5+PFS lands close to DH-NoTransfer (EXPERIMENTS.md).
      baseline::RedisConfig rcfg;
      rcfg.op_seconds = 50e-3;
      baseline::RedisQueries redis(cluster.rpc, redis_node, rcfg);
      baseline::Hdf5PfsConfig h5cfg;
      h5cfg.staging_bandwidth = 0.25e9;
      h5cfg.context_setup_seconds = 11.0;
      h5cfg.per_dataset_seconds = 10e-3;
      h5cfg.partial_read_seconds = 450e-3;
      baseline::Hdf5PfsRepository repo(pfs, &redis, h5cfg);
      cfg.use_transfer = true;
      out.result = nas::run_nas(cluster.sim, cluster.fabric, space, &repo,
                                cluster.workers, cluster.controller, cfg);
      out.stored_bytes = pfs.stored_bytes();
      out.physical_bytes = pfs.stored_bytes();
      break;
    }
  }
  if (options.observability != nullptr) options.observability->detach(cluster);
  return out;
}

inline NasOutcome run_nas_approach(Approach approach, int gpus,
                                   size_t candidates, uint64_t seed,
                                   bool retire = true) {
  RunOptions options;
  options.retire = retire;
  return run_nas_approach(approach, gpus, candidates, seed, options);
}

}  // namespace evostore::bench
