file(REMOVE_RECURSE
  "CMakeFiles/ablation_chain_reads.dir/ablation_chain_reads.cc.o"
  "CMakeFiles/ablation_chain_reads.dir/ablation_chain_reads.cc.o.d"
  "ablation_chain_reads"
  "ablation_chain_reads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_chain_reads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
