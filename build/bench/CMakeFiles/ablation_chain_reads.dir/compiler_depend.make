# Empty compiler generated dependencies file for ablation_chain_reads.
# This may be replaced when dependencies are built.
