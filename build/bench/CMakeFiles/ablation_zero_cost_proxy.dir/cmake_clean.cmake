file(REMOVE_RECURSE
  "CMakeFiles/ablation_zero_cost_proxy.dir/ablation_zero_cost_proxy.cc.o"
  "CMakeFiles/ablation_zero_cost_proxy.dir/ablation_zero_cost_proxy.cc.o.d"
  "ablation_zero_cost_proxy"
  "ablation_zero_cost_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_zero_cost_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
