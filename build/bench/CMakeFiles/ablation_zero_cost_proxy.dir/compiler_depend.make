# Empty compiler generated dependencies file for ablation_zero_cost_proxy.
# This may be replaced when dependencies are built.
