# Empty dependencies file for fig10_storage_space.
# This may be replaced when dependencies are built.
