file(REMOVE_RECURSE
  "CMakeFiles/fig4_incremental_storage.dir/fig4_incremental_storage.cc.o"
  "CMakeFiles/fig4_incremental_storage.dir/fig4_incremental_storage.cc.o.d"
  "fig4_incremental_storage"
  "fig4_incremental_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_incremental_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
