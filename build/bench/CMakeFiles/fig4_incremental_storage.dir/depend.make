# Empty dependencies file for fig4_incremental_storage.
# This may be replaced when dependencies are built.
