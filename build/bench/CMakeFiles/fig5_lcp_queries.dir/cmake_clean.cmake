file(REMOVE_RECURSE
  "CMakeFiles/fig5_lcp_queries.dir/fig5_lcp_queries.cc.o"
  "CMakeFiles/fig5_lcp_queries.dir/fig5_lcp_queries.cc.o.d"
  "fig5_lcp_queries"
  "fig5_lcp_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_lcp_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
