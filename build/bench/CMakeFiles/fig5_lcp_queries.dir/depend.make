# Empty dependencies file for fig5_lcp_queries.
# This may be replaced when dependencies are built.
