# Empty dependencies file for fig6_accuracy_over_time.
# This may be replaced when dependencies are built.
