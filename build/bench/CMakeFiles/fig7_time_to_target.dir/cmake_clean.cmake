file(REMOVE_RECURSE
  "CMakeFiles/fig7_time_to_target.dir/fig7_time_to_target.cc.o"
  "CMakeFiles/fig7_time_to_target.dir/fig7_time_to_target.cc.o.d"
  "fig7_time_to_target"
  "fig7_time_to_target.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_time_to_target.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
