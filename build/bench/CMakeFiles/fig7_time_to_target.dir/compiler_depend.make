# Empty compiler generated dependencies file for fig7_time_to_target.
# This may be replaced when dependencies are built.
