file(REMOVE_RECURSE
  "CMakeFiles/fig9_task_traces.dir/fig9_task_traces.cc.o"
  "CMakeFiles/fig9_task_traces.dir/fig9_task_traces.cc.o.d"
  "fig9_task_traces"
  "fig9_task_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_task_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
