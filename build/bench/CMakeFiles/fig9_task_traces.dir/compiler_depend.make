# Empty compiler generated dependencies file for fig9_task_traces.
# This may be replaced when dependencies are built.
