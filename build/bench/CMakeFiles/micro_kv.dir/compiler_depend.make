# Empty compiler generated dependencies file for micro_kv.
# This may be replaced when dependencies are built.
