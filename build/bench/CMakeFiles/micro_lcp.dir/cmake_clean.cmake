file(REMOVE_RECURSE
  "CMakeFiles/micro_lcp.dir/micro_lcp.cc.o"
  "CMakeFiles/micro_lcp.dir/micro_lcp.cc.o.d"
  "micro_lcp"
  "micro_lcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_lcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
