# Empty compiler generated dependencies file for micro_lcp.
# This may be replaced when dependencies are built.
