file(REMOVE_RECURSE
  "CMakeFiles/micro_owner_map.dir/micro_owner_map.cc.o"
  "CMakeFiles/micro_owner_map.dir/micro_owner_map.cc.o.d"
  "micro_owner_map"
  "micro_owner_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_owner_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
