# Empty dependencies file for micro_owner_map.
# This may be replaced when dependencies are built.
