file(REMOVE_RECURSE
  "CMakeFiles/incremental_io.dir/incremental_io.cpp.o"
  "CMakeFiles/incremental_io.dir/incremental_io.cpp.o.d"
  "incremental_io"
  "incremental_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
