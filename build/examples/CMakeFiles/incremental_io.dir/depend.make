# Empty dependencies file for incremental_io.
# This may be replaced when dependencies are built.
