
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/hdf5_pfs.cc" "src/CMakeFiles/evostore_baseline.dir/baseline/hdf5_pfs.cc.o" "gcc" "src/CMakeFiles/evostore_baseline.dir/baseline/hdf5_pfs.cc.o.d"
  "/root/repo/src/baseline/redis_queries.cc" "src/CMakeFiles/evostore_baseline.dir/baseline/redis_queries.cc.o" "gcc" "src/CMakeFiles/evostore_baseline.dir/baseline/redis_queries.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/evostore_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/evostore_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/evostore_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/evostore_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/evostore_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/evostore_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
