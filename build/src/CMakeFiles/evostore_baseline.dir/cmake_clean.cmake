file(REMOVE_RECURSE
  "CMakeFiles/evostore_baseline.dir/baseline/hdf5_pfs.cc.o"
  "CMakeFiles/evostore_baseline.dir/baseline/hdf5_pfs.cc.o.d"
  "CMakeFiles/evostore_baseline.dir/baseline/redis_queries.cc.o"
  "CMakeFiles/evostore_baseline.dir/baseline/redis_queries.cc.o.d"
  "libevostore_baseline.a"
  "libevostore_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evostore_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
