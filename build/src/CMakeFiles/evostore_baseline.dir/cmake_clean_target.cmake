file(REMOVE_RECURSE
  "libevostore_baseline.a"
)
