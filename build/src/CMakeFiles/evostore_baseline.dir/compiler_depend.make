# Empty compiler generated dependencies file for evostore_baseline.
# This may be replaced when dependencies are built.
