
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/buffer.cc" "src/CMakeFiles/evostore_common.dir/common/buffer.cc.o" "gcc" "src/CMakeFiles/evostore_common.dir/common/buffer.cc.o.d"
  "/root/repo/src/common/hash.cc" "src/CMakeFiles/evostore_common.dir/common/hash.cc.o" "gcc" "src/CMakeFiles/evostore_common.dir/common/hash.cc.o.d"
  "/root/repo/src/common/log.cc" "src/CMakeFiles/evostore_common.dir/common/log.cc.o" "gcc" "src/CMakeFiles/evostore_common.dir/common/log.cc.o.d"
  "/root/repo/src/common/serde.cc" "src/CMakeFiles/evostore_common.dir/common/serde.cc.o" "gcc" "src/CMakeFiles/evostore_common.dir/common/serde.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/evostore_common.dir/common/status.cc.o" "gcc" "src/CMakeFiles/evostore_common.dir/common/status.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
