file(REMOVE_RECURSE
  "CMakeFiles/evostore_common.dir/common/buffer.cc.o"
  "CMakeFiles/evostore_common.dir/common/buffer.cc.o.d"
  "CMakeFiles/evostore_common.dir/common/hash.cc.o"
  "CMakeFiles/evostore_common.dir/common/hash.cc.o.d"
  "CMakeFiles/evostore_common.dir/common/log.cc.o"
  "CMakeFiles/evostore_common.dir/common/log.cc.o.d"
  "CMakeFiles/evostore_common.dir/common/serde.cc.o"
  "CMakeFiles/evostore_common.dir/common/serde.cc.o.d"
  "CMakeFiles/evostore_common.dir/common/status.cc.o"
  "CMakeFiles/evostore_common.dir/common/status.cc.o.d"
  "libevostore_common.a"
  "libevostore_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evostore_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
