file(REMOVE_RECURSE
  "libevostore_common.a"
)
