# Empty dependencies file for evostore_common.
# This may be replaced when dependencies are built.
