
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/client.cc" "src/CMakeFiles/evostore_core.dir/core/client.cc.o" "gcc" "src/CMakeFiles/evostore_core.dir/core/client.cc.o.d"
  "/root/repo/src/core/lcp.cc" "src/CMakeFiles/evostore_core.dir/core/lcp.cc.o" "gcc" "src/CMakeFiles/evostore_core.dir/core/lcp.cc.o.d"
  "/root/repo/src/core/owner_map.cc" "src/CMakeFiles/evostore_core.dir/core/owner_map.cc.o" "gcc" "src/CMakeFiles/evostore_core.dir/core/owner_map.cc.o.d"
  "/root/repo/src/core/provider.cc" "src/CMakeFiles/evostore_core.dir/core/provider.cc.o" "gcc" "src/CMakeFiles/evostore_core.dir/core/provider.cc.o.d"
  "/root/repo/src/core/repository.cc" "src/CMakeFiles/evostore_core.dir/core/repository.cc.o" "gcc" "src/CMakeFiles/evostore_core.dir/core/repository.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/evostore_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/evostore_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/evostore_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/evostore_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/evostore_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
