file(REMOVE_RECURSE
  "CMakeFiles/evostore_core.dir/core/client.cc.o"
  "CMakeFiles/evostore_core.dir/core/client.cc.o.d"
  "CMakeFiles/evostore_core.dir/core/lcp.cc.o"
  "CMakeFiles/evostore_core.dir/core/lcp.cc.o.d"
  "CMakeFiles/evostore_core.dir/core/owner_map.cc.o"
  "CMakeFiles/evostore_core.dir/core/owner_map.cc.o.d"
  "CMakeFiles/evostore_core.dir/core/provider.cc.o"
  "CMakeFiles/evostore_core.dir/core/provider.cc.o.d"
  "CMakeFiles/evostore_core.dir/core/repository.cc.o"
  "CMakeFiles/evostore_core.dir/core/repository.cc.o.d"
  "libevostore_core.a"
  "libevostore_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evostore_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
