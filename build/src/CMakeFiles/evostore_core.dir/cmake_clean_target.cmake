file(REMOVE_RECURSE
  "libevostore_core.a"
)
