# Empty compiler generated dependencies file for evostore_core.
# This may be replaced when dependencies are built.
