
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/arch_graph.cc" "src/CMakeFiles/evostore_model.dir/model/arch_graph.cc.o" "gcc" "src/CMakeFiles/evostore_model.dir/model/arch_graph.cc.o.d"
  "/root/repo/src/model/architecture.cc" "src/CMakeFiles/evostore_model.dir/model/architecture.cc.o" "gcc" "src/CMakeFiles/evostore_model.dir/model/architecture.cc.o.d"
  "/root/repo/src/model/dtype.cc" "src/CMakeFiles/evostore_model.dir/model/dtype.cc.o" "gcc" "src/CMakeFiles/evostore_model.dir/model/dtype.cc.o.d"
  "/root/repo/src/model/json.cc" "src/CMakeFiles/evostore_model.dir/model/json.cc.o" "gcc" "src/CMakeFiles/evostore_model.dir/model/json.cc.o.d"
  "/root/repo/src/model/layer.cc" "src/CMakeFiles/evostore_model.dir/model/layer.cc.o" "gcc" "src/CMakeFiles/evostore_model.dir/model/layer.cc.o.d"
  "/root/repo/src/model/model.cc" "src/CMakeFiles/evostore_model.dir/model/model.cc.o" "gcc" "src/CMakeFiles/evostore_model.dir/model/model.cc.o.d"
  "/root/repo/src/model/tensor.cc" "src/CMakeFiles/evostore_model.dir/model/tensor.cc.o" "gcc" "src/CMakeFiles/evostore_model.dir/model/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/evostore_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
