file(REMOVE_RECURSE
  "CMakeFiles/evostore_model.dir/model/arch_graph.cc.o"
  "CMakeFiles/evostore_model.dir/model/arch_graph.cc.o.d"
  "CMakeFiles/evostore_model.dir/model/architecture.cc.o"
  "CMakeFiles/evostore_model.dir/model/architecture.cc.o.d"
  "CMakeFiles/evostore_model.dir/model/dtype.cc.o"
  "CMakeFiles/evostore_model.dir/model/dtype.cc.o.d"
  "CMakeFiles/evostore_model.dir/model/json.cc.o"
  "CMakeFiles/evostore_model.dir/model/json.cc.o.d"
  "CMakeFiles/evostore_model.dir/model/layer.cc.o"
  "CMakeFiles/evostore_model.dir/model/layer.cc.o.d"
  "CMakeFiles/evostore_model.dir/model/model.cc.o"
  "CMakeFiles/evostore_model.dir/model/model.cc.o.d"
  "CMakeFiles/evostore_model.dir/model/tensor.cc.o"
  "CMakeFiles/evostore_model.dir/model/tensor.cc.o.d"
  "libevostore_model.a"
  "libevostore_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evostore_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
