file(REMOVE_RECURSE
  "libevostore_model.a"
)
