# Empty dependencies file for evostore_model.
# This may be replaced when dependencies are built.
