file(REMOVE_RECURSE
  "CMakeFiles/evostore_nas.dir/nas/attn_space.cc.o"
  "CMakeFiles/evostore_nas.dir/nas/attn_space.cc.o.d"
  "CMakeFiles/evostore_nas.dir/nas/evolution.cc.o"
  "CMakeFiles/evostore_nas.dir/nas/evolution.cc.o.d"
  "CMakeFiles/evostore_nas.dir/nas/runner.cc.o"
  "CMakeFiles/evostore_nas.dir/nas/runner.cc.o.d"
  "CMakeFiles/evostore_nas.dir/nas/search_space.cc.o"
  "CMakeFiles/evostore_nas.dir/nas/search_space.cc.o.d"
  "CMakeFiles/evostore_nas.dir/nas/training_model.cc.o"
  "CMakeFiles/evostore_nas.dir/nas/training_model.cc.o.d"
  "libevostore_nas.a"
  "libevostore_nas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evostore_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
