file(REMOVE_RECURSE
  "libevostore_nas.a"
)
