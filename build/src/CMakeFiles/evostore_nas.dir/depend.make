# Empty dependencies file for evostore_nas.
# This may be replaced when dependencies are built.
