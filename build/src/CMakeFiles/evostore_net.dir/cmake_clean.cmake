file(REMOVE_RECURSE
  "CMakeFiles/evostore_net.dir/net/fabric.cc.o"
  "CMakeFiles/evostore_net.dir/net/fabric.cc.o.d"
  "CMakeFiles/evostore_net.dir/net/rpc.cc.o"
  "CMakeFiles/evostore_net.dir/net/rpc.cc.o.d"
  "libevostore_net.a"
  "libevostore_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evostore_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
