file(REMOVE_RECURSE
  "libevostore_net.a"
)
