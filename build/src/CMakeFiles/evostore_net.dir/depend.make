# Empty dependencies file for evostore_net.
# This may be replaced when dependencies are built.
