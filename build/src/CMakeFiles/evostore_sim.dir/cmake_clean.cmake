file(REMOVE_RECURSE
  "CMakeFiles/evostore_sim.dir/sim/flow.cc.o"
  "CMakeFiles/evostore_sim.dir/sim/flow.cc.o.d"
  "CMakeFiles/evostore_sim.dir/sim/simulation.cc.o"
  "CMakeFiles/evostore_sim.dir/sim/simulation.cc.o.d"
  "CMakeFiles/evostore_sim.dir/sim/stats.cc.o"
  "CMakeFiles/evostore_sim.dir/sim/stats.cc.o.d"
  "libevostore_sim.a"
  "libevostore_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evostore_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
