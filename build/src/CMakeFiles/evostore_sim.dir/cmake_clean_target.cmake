file(REMOVE_RECURSE
  "libevostore_sim.a"
)
