# Empty compiler generated dependencies file for evostore_sim.
# This may be replaced when dependencies are built.
