
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/h5file.cc" "src/CMakeFiles/evostore_storage.dir/storage/h5file.cc.o" "gcc" "src/CMakeFiles/evostore_storage.dir/storage/h5file.cc.o.d"
  "/root/repo/src/storage/log_kv.cc" "src/CMakeFiles/evostore_storage.dir/storage/log_kv.cc.o" "gcc" "src/CMakeFiles/evostore_storage.dir/storage/log_kv.cc.o.d"
  "/root/repo/src/storage/mem_kv.cc" "src/CMakeFiles/evostore_storage.dir/storage/mem_kv.cc.o" "gcc" "src/CMakeFiles/evostore_storage.dir/storage/mem_kv.cc.o.d"
  "/root/repo/src/storage/pfs.cc" "src/CMakeFiles/evostore_storage.dir/storage/pfs.cc.o" "gcc" "src/CMakeFiles/evostore_storage.dir/storage/pfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/evostore_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/evostore_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/evostore_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/evostore_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
