file(REMOVE_RECURSE
  "CMakeFiles/evostore_storage.dir/storage/h5file.cc.o"
  "CMakeFiles/evostore_storage.dir/storage/h5file.cc.o.d"
  "CMakeFiles/evostore_storage.dir/storage/log_kv.cc.o"
  "CMakeFiles/evostore_storage.dir/storage/log_kv.cc.o.d"
  "CMakeFiles/evostore_storage.dir/storage/mem_kv.cc.o"
  "CMakeFiles/evostore_storage.dir/storage/mem_kv.cc.o.d"
  "CMakeFiles/evostore_storage.dir/storage/pfs.cc.o"
  "CMakeFiles/evostore_storage.dir/storage/pfs.cc.o.d"
  "libevostore_storage.a"
  "libevostore_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evostore_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
