file(REMOVE_RECURSE
  "libevostore_storage.a"
)
