# Empty dependencies file for evostore_storage.
# This may be replaced when dependencies are built.
