file(REMOVE_RECURSE
  "CMakeFiles/evostore_workload.dir/workload/arch_generator.cc.o"
  "CMakeFiles/evostore_workload.dir/workload/arch_generator.cc.o.d"
  "CMakeFiles/evostore_workload.dir/workload/deepspace.cc.o"
  "CMakeFiles/evostore_workload.dir/workload/deepspace.cc.o.d"
  "libevostore_workload.a"
  "libevostore_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evostore_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
