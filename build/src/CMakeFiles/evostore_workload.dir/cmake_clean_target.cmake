file(REMOVE_RECURSE
  "libevostore_workload.a"
)
