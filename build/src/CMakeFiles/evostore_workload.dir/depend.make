# Empty dependencies file for evostore_workload.
# This may be replaced when dependencies are built.
