file(REMOVE_RECURSE
  "CMakeFiles/baseline_hdf5_pfs_test.dir/baseline/hdf5_pfs_test.cc.o"
  "CMakeFiles/baseline_hdf5_pfs_test.dir/baseline/hdf5_pfs_test.cc.o.d"
  "baseline_hdf5_pfs_test"
  "baseline_hdf5_pfs_test.pdb"
  "baseline_hdf5_pfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_hdf5_pfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
