# Empty dependencies file for baseline_hdf5_pfs_test.
# This may be replaced when dependencies are built.
