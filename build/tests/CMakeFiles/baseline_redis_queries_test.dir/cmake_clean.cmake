file(REMOVE_RECURSE
  "CMakeFiles/baseline_redis_queries_test.dir/baseline/redis_queries_test.cc.o"
  "CMakeFiles/baseline_redis_queries_test.dir/baseline/redis_queries_test.cc.o.d"
  "baseline_redis_queries_test"
  "baseline_redis_queries_test.pdb"
  "baseline_redis_queries_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_redis_queries_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
