# Empty dependencies file for baseline_redis_queries_test.
# This may be replaced when dependencies are built.
