file(REMOVE_RECURSE
  "CMakeFiles/common_buffer_test.dir/common/buffer_test.cc.o"
  "CMakeFiles/common_buffer_test.dir/common/buffer_test.cc.o.d"
  "common_buffer_test"
  "common_buffer_test.pdb"
  "common_buffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
