file(REMOVE_RECURSE
  "CMakeFiles/common_fuzz_test.dir/common/fuzz_test.cc.o"
  "CMakeFiles/common_fuzz_test.dir/common/fuzz_test.cc.o.d"
  "common_fuzz_test"
  "common_fuzz_test.pdb"
  "common_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
