
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/serde_test.cc" "tests/CMakeFiles/common_serde_test.dir/common/serde_test.cc.o" "gcc" "tests/CMakeFiles/common_serde_test.dir/common/serde_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/evostore_nas.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/evostore_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/evostore_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/evostore_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/evostore_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/evostore_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/evostore_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/evostore_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/evostore_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
