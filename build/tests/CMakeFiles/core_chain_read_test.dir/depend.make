# Empty dependencies file for core_chain_read_test.
# This may be replaced when dependencies are built.
