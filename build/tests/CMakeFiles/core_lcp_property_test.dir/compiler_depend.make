# Empty compiler generated dependencies file for core_lcp_property_test.
# This may be replaced when dependencies are built.
