file(REMOVE_RECURSE
  "CMakeFiles/core_lcp_test.dir/core/lcp_test.cc.o"
  "CMakeFiles/core_lcp_test.dir/core/lcp_test.cc.o.d"
  "core_lcp_test"
  "core_lcp_test.pdb"
  "core_lcp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_lcp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
