# Empty dependencies file for core_lcp_test.
# This may be replaced when dependencies are built.
