# Empty compiler generated dependencies file for core_owner_map_test.
# This may be replaced when dependencies are built.
