file(REMOVE_RECURSE
  "CMakeFiles/core_pin_test.dir/core/pin_test.cc.o"
  "CMakeFiles/core_pin_test.dir/core/pin_test.cc.o.d"
  "core_pin_test"
  "core_pin_test.pdb"
  "core_pin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_pin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
