# Empty dependencies file for core_pin_test.
# This may be replaced when dependencies are built.
