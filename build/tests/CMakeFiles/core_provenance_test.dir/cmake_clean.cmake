file(REMOVE_RECURSE
  "CMakeFiles/core_provenance_test.dir/core/provenance_test.cc.o"
  "CMakeFiles/core_provenance_test.dir/core/provenance_test.cc.o.d"
  "core_provenance_test"
  "core_provenance_test.pdb"
  "core_provenance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_provenance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
