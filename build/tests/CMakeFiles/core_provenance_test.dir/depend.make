# Empty dependencies file for core_provenance_test.
# This may be replaced when dependencies are built.
