file(REMOVE_RECURSE
  "CMakeFiles/core_provider_test.dir/core/provider_test.cc.o"
  "CMakeFiles/core_provider_test.dir/core/provider_test.cc.o.d"
  "core_provider_test"
  "core_provider_test.pdb"
  "core_provider_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_provider_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
