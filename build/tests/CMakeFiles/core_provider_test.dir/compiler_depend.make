# Empty compiler generated dependencies file for core_provider_test.
# This may be replaced when dependencies are built.
