file(REMOVE_RECURSE
  "CMakeFiles/integration_shape_invariants_test.dir/integration/shape_invariants_test.cc.o"
  "CMakeFiles/integration_shape_invariants_test.dir/integration/shape_invariants_test.cc.o.d"
  "integration_shape_invariants_test"
  "integration_shape_invariants_test.pdb"
  "integration_shape_invariants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_shape_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
