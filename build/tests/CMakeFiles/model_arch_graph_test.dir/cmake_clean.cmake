file(REMOVE_RECURSE
  "CMakeFiles/model_arch_graph_test.dir/model/arch_graph_test.cc.o"
  "CMakeFiles/model_arch_graph_test.dir/model/arch_graph_test.cc.o.d"
  "model_arch_graph_test"
  "model_arch_graph_test.pdb"
  "model_arch_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_arch_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
