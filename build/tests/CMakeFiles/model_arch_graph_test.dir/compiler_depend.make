# Empty compiler generated dependencies file for model_arch_graph_test.
# This may be replaced when dependencies are built.
