file(REMOVE_RECURSE
  "CMakeFiles/model_architecture_test.dir/model/architecture_test.cc.o"
  "CMakeFiles/model_architecture_test.dir/model/architecture_test.cc.o.d"
  "model_architecture_test"
  "model_architecture_test.pdb"
  "model_architecture_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_architecture_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
