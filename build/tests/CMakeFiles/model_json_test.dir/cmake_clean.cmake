file(REMOVE_RECURSE
  "CMakeFiles/model_json_test.dir/model/json_test.cc.o"
  "CMakeFiles/model_json_test.dir/model/json_test.cc.o.d"
  "model_json_test"
  "model_json_test.pdb"
  "model_json_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_json_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
