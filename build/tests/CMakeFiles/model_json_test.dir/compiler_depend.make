# Empty compiler generated dependencies file for model_json_test.
# This may be replaced when dependencies are built.
