file(REMOVE_RECURSE
  "CMakeFiles/model_layer_test.dir/model/layer_test.cc.o"
  "CMakeFiles/model_layer_test.dir/model/layer_test.cc.o.d"
  "model_layer_test"
  "model_layer_test.pdb"
  "model_layer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_layer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
