# Empty compiler generated dependencies file for model_layer_test.
# This may be replaced when dependencies are built.
