file(REMOVE_RECURSE
  "CMakeFiles/model_tensor_test.dir/model/tensor_test.cc.o"
  "CMakeFiles/model_tensor_test.dir/model/tensor_test.cc.o.d"
  "model_tensor_test"
  "model_tensor_test.pdb"
  "model_tensor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_tensor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
