# Empty compiler generated dependencies file for model_tensor_test.
# This may be replaced when dependencies are built.
