file(REMOVE_RECURSE
  "CMakeFiles/nas_evolution_test.dir/nas/evolution_test.cc.o"
  "CMakeFiles/nas_evolution_test.dir/nas/evolution_test.cc.o.d"
  "nas_evolution_test"
  "nas_evolution_test.pdb"
  "nas_evolution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nas_evolution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
