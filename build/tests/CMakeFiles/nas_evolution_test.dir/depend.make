# Empty dependencies file for nas_evolution_test.
# This may be replaced when dependencies are built.
