file(REMOVE_RECURSE
  "CMakeFiles/nas_random_search_test.dir/nas/random_search_test.cc.o"
  "CMakeFiles/nas_random_search_test.dir/nas/random_search_test.cc.o.d"
  "nas_random_search_test"
  "nas_random_search_test.pdb"
  "nas_random_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nas_random_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
