# Empty compiler generated dependencies file for nas_random_search_test.
# This may be replaced when dependencies are built.
