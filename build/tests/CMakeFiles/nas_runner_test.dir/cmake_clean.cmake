file(REMOVE_RECURSE
  "CMakeFiles/nas_runner_test.dir/nas/runner_test.cc.o"
  "CMakeFiles/nas_runner_test.dir/nas/runner_test.cc.o.d"
  "nas_runner_test"
  "nas_runner_test.pdb"
  "nas_runner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nas_runner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
