file(REMOVE_RECURSE
  "CMakeFiles/nas_search_space_test.dir/nas/search_space_test.cc.o"
  "CMakeFiles/nas_search_space_test.dir/nas/search_space_test.cc.o.d"
  "nas_search_space_test"
  "nas_search_space_test.pdb"
  "nas_search_space_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nas_search_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
