# Empty compiler generated dependencies file for nas_search_space_test.
# This may be replaced when dependencies are built.
