file(REMOVE_RECURSE
  "CMakeFiles/nas_training_model_test.dir/nas/training_model_test.cc.o"
  "CMakeFiles/nas_training_model_test.dir/nas/training_model_test.cc.o.d"
  "nas_training_model_test"
  "nas_training_model_test.pdb"
  "nas_training_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nas_training_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
