# Empty dependencies file for nas_training_model_test.
# This may be replaced when dependencies are built.
