# Empty compiler generated dependencies file for sim_flow_property_test.
# This may be replaced when dependencies are built.
