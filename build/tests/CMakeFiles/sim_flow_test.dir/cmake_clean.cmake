file(REMOVE_RECURSE
  "CMakeFiles/sim_flow_test.dir/sim/flow_test.cc.o"
  "CMakeFiles/sim_flow_test.dir/sim/flow_test.cc.o.d"
  "sim_flow_test"
  "sim_flow_test.pdb"
  "sim_flow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_flow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
