file(REMOVE_RECURSE
  "CMakeFiles/storage_h5file_test.dir/storage/h5file_test.cc.o"
  "CMakeFiles/storage_h5file_test.dir/storage/h5file_test.cc.o.d"
  "storage_h5file_test"
  "storage_h5file_test.pdb"
  "storage_h5file_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_h5file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
