# Empty compiler generated dependencies file for storage_h5file_test.
# This may be replaced when dependencies are built.
