file(REMOVE_RECURSE
  "CMakeFiles/storage_log_kv_test.dir/storage/log_kv_test.cc.o"
  "CMakeFiles/storage_log_kv_test.dir/storage/log_kv_test.cc.o.d"
  "storage_log_kv_test"
  "storage_log_kv_test.pdb"
  "storage_log_kv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_log_kv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
