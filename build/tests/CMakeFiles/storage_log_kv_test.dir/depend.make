# Empty dependencies file for storage_log_kv_test.
# This may be replaced when dependencies are built.
