file(REMOVE_RECURSE
  "CMakeFiles/storage_pfs_test.dir/storage/pfs_test.cc.o"
  "CMakeFiles/storage_pfs_test.dir/storage/pfs_test.cc.o.d"
  "storage_pfs_test"
  "storage_pfs_test.pdb"
  "storage_pfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_pfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
