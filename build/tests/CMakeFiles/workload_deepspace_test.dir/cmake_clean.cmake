file(REMOVE_RECURSE
  "CMakeFiles/workload_deepspace_test.dir/workload/deepspace_test.cc.o"
  "CMakeFiles/workload_deepspace_test.dir/workload/deepspace_test.cc.o.d"
  "workload_deepspace_test"
  "workload_deepspace_test.pdb"
  "workload_deepspace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_deepspace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
