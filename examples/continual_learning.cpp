// Continual learning on top of EvoStore (paper §6, future work): a stream of
// tasks fine-tunes a shared backbone; the repository stores every task head
// as a derived model, deduplicating the frozen backbone across all of them.
//
// The paper notes continual learning "may [need] additional factors ...
// such as the age of the model" when choosing a transfer source: this
// example implements a recency-weighted ancestor choice on top of the plain
// LCP query using the store timestamps the owner-map metadata already
// carries.
//
//   ./build/examples/continual_learning
#include <cstdio>

#include "common/rng.h"
#include "core/repository.h"
#include "net/fabric.h"

using namespace evostore;

namespace {

// Backbone + task-specific head: widths shared, head width per task.
model::ArchGraph task_graph(int64_t head_width) {
  std::vector<model::LayerDef> defs;
  defs.push_back(model::make_input(256));
  for (int i = 0; i < 6; ++i) defs.push_back(model::make_dense(256, 256));
  defs.push_back(model::make_dense(256, head_width));
  defs.push_back(model::make_output(head_width, 10));
  return std::move(model::ArchGraph::flatten(model::make_chain(std::move(defs))))
      .value();
}

// Recency-weighted source selection: query the LCP winner, but if its
// lineage is stale (older than `max_age` simulated seconds), prefer a
// shorter-prefix but fresher contributor from its provenance record.
// `client` is a pointer: used across suspension points (EVO-CORO-003);
// the caller's client outlives the awaited task.
sim::CoTask<std::optional<core::TransferContext>> choose_source(
    core::Client* client, const model::ArchGraph& g, double max_age) {
  auto prep = co_await client->prepare_transfer(g, true);
  if (!prep.ok() || !prep->has_value()) co_return std::nullopt;
  auto meta = co_await client->get_meta(prep->value().ancestor);
  if (meta.ok()) {
    double age = 0;  // age of the chosen ancestor at decision time
    // (simulated clock lives in the repository's fabric; callers track it)
    (void)age;
    std::printf("  LCP winner %s stored at t=%.3fs (quality %.2f), max_age=%g\n",
                prep->value().ancestor.to_string().c_str(), meta->store_time,
                prep->value().ancestor_quality, max_age);
  }
  co_return std::move(prep->value());
}

}  // namespace

int main() {
  sim::Simulation sim;
  net::Fabric fabric(sim);
  std::vector<common::NodeId> providers;
  for (int i = 0; i < 4; ++i) providers.push_back(fabric.add_node(25e9, 25e9));
  auto worker = fabric.add_node(25e9, 25e9);
  net::RpcSystem rpc(fabric);
  core::EvoStoreRepository repo(rpc, providers);

  auto scenario = [&]() -> sim::CoTask<int> {
    auto& client = repo.client(worker);
    common::Xoshiro256 rng(2026);

    // Pre-train the shared backbone (task 0).
    auto g0 = task_graph(128);
    auto backbone = model::Model::random(repo.allocate_id(), g0, rng.next());
    backbone.set_quality(0.75);
    (void)co_await client.put_model(backbone, nullptr);
    std::printf("backbone %s stored: %.1f MB\n\n",
                backbone.id().to_string().c_str(),
                backbone.total_bytes() / 1e6);

    size_t full_copy_bytes = backbone.total_bytes();
    // A stream of 8 tasks, each with a differently-sized head. Every task
    // transfers + freezes the backbone and only stores its own head.
    for (int task = 1; task <= 8; ++task) {
      int64_t head = 64 + 32 * task;
      auto g = task_graph(head);
      std::printf("task %d (head width %ld):\n", task, head);
      auto tc = co_await choose_source(&client, g, /*max_age=*/60.0);
      auto m = model::Model::random(repo.allocate_id(), g, rng.next());
      if (tc.has_value()) {
        for (size_t i = 0; i < tc->matches.size(); ++i) {
          m.segment(tc->matches[i].first) = tc->prefix_segments[i];
        }
      }
      m.set_quality(0.75 + 0.01 * task);
      co_await sim.delay(5.0);  // fine-tuning the head
      auto st = co_await client.put_model(m, tc.has_value() ? &*tc : nullptr);
      full_copy_bytes += m.total_bytes();
      std::printf("  stored %s (%s); repository now %.1f MB vs %.1f MB for "
                  "full copies\n",
                  m.id().to_string().c_str(), st.to_string().c_str(),
                  repo.stored_payload_bytes() / 1e6, full_copy_bytes / 1e6);
    }

    // Provenance across the task stream: every task head should name the
    // backbone as a contributor.
    std::printf("\nbackbone reuse across tasks (via owner maps):\n");
    size_t backbone_refs = 0;
    for (size_t p = 0; p < repo.provider_count(); ++p) {
      backbone_refs += repo.provider(p).has_segment(
          common::SegmentKey{backbone.id(), 1});
    }
    for (size_t p = 0; p < repo.provider_count(); ++p) {
      if (repo.provider(p).has_segment(common::SegmentKey{backbone.id(), 1})) {
        std::printf("  backbone layer 1 refcount: %d (backbone + 8 tasks)\n",
                    repo.provider(p).refcount(
                        common::SegmentKey{backbone.id(), 1}));
      }
    }
    std::printf("dedup factor vs naive per-task checkpoints: %.1fx\n",
                static_cast<double>(full_copy_bytes) /
                    repo.stored_payload_bytes());
    co_return 0;
  };
  return sim.run_until_complete(scenario());
}
