// Incremental storage in action (a runnable miniature of paper Fig. 4):
// concurrent workers write 64 MB models with 25/50/75/100% of tensors
// modified; EvoStore's aggregated write bandwidth is compared with the
// HDF5+PFS baseline writing full models.
//
//   ./build/examples/incremental_io
#include <cstdio>

#include "baseline/hdf5_pfs.h"
#include "core/repository.h"
#include "workload/arch_generator.h"

using namespace evostore;

namespace {

constexpr int kWorkers = 16;
constexpr size_t kModelBytes = 64ull << 20;
constexpr int kLayers = 40;

struct Cluster {
  sim::Simulation sim;
  net::Fabric fabric{sim};
  net::RpcSystem rpc{fabric};
  std::vector<common::NodeId> nodes;  // provider + 4 workers each

  Cluster() {
    for (int n = 0; n < kWorkers / 4; ++n) {
      nodes.push_back(fabric.add_node(25e9, 25e9));
    }
  }
};

}  // namespace

int main() {
  workload::ArchGenConfig gen;
  gen.total_bytes = kModelBytes;
  gen.leaf_layers = kLayers;
  auto graph = workload::generate_chain(gen);

  std::printf("model: %d layers, %.1f MB; %d concurrent workers\n\n", kLayers,
              graph.total_param_bytes() / 1e6, kWorkers);
  std::printf("%-22s %-10s %s\n", "configuration", "modified", "agg. write BW");

  for (int pct : {25, 50, 75, 100}) {
    Cluster cluster;
    core::EvoStoreRepository repo(cluster.rpc, cluster.nodes);
    sim::Barrier barrier(cluster.sim, kWorkers);
    int frozen = kLayers * (100 - pct) / 100;

    double write_time = 0;
    auto worker = [&](common::NodeId node, uint64_t seed) -> sim::CoTask<void> {
      auto& client = repo.client(node);
      auto base = workload::make_base_model(repo.allocate_id(), graph, seed);
      (void)co_await client.put_model(base, nullptr);
      auto owners = core::OwnerMap::self_owned(base.id(), graph.size());
      auto derived = workload::derive_partial(repo.allocate_id(), base, owners,
                                              frozen, seed + 1);
      co_await barrier.arrive_and_wait();
      double t0 = cluster.sim.now();
      (void)co_await client.put_model(derived.model, &derived.transfer);
      write_time = std::max(write_time, cluster.sim.now() - t0);
    };
    std::vector<sim::Future<void>> futures;
    for (int w = 0; w < kWorkers; ++w) {
      futures.push_back(cluster.sim.spawn(
          worker(cluster.nodes[w / 4], static_cast<uint64_t>(w * 100))));
    }
    cluster.sim.run();
    double gb = kWorkers * static_cast<double>(kModelBytes) / 1e9;
    std::printf("EvoStore %3d%%          %3d%%       %7.1f GB/s\n", pct, pct,
                gb / write_time);
  }

  // Baseline: HDF5+PFS always writes the full model.
  {
    Cluster cluster;
    storage::Pfs pfs(cluster.fabric, storage::PfsConfig{});
    baseline::Hdf5PfsConfig h5cfg;  // the Fig. 4 calibration
    h5cfg.staging_bandwidth = 2.4e9;
    h5cfg.per_dataset_seconds = 2e-3;
    h5cfg.context_setup_seconds = 5e-3;
    baseline::Hdf5PfsRepository h5(pfs, nullptr, h5cfg);
    sim::Barrier barrier(cluster.sim, kWorkers);
    double write_time = 0;
    auto worker = [&](common::NodeId node, uint64_t seed) -> sim::CoTask<void> {
      auto m = workload::make_base_model(h5.allocate_id(), graph, seed);
      co_await barrier.arrive_and_wait();
      double t0 = cluster.sim.now();
      (void)co_await h5.store(node, m, nullptr);
      write_time = std::max(write_time, cluster.sim.now() - t0);
    };
    std::vector<sim::Future<void>> futures;
    for (int w = 0; w < kWorkers; ++w) {
      futures.push_back(cluster.sim.spawn(
          worker(cluster.nodes[w / 4], static_cast<uint64_t>(w * 100))));
    }
    cluster.sim.run();
    double gb = kWorkers * static_cast<double>(kModelBytes) / 1e9;
    std::printf("HDF5+PFS 100%%          100%%       %7.1f GB/s\n",
                gb / write_time);
  }
  return 0;
}
