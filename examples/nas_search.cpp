// NAS with transfer learning through EvoStore (the paper's §2 scenario,
// scaled to run in moments): a DeepHyper-style aged-evolution search over
// the CANDLE-ATTN-like space, on 32 simulated GPUs, comparing against the
// same search without transfer.
//
//   ./build/examples/nas_search [candidates] [workers]
#include <cstdio>
#include <cstdlib>

#include "nas/attn_space.h"
#include "nas/runner.h"

using namespace evostore;

namespace {

struct Cluster {
  sim::Simulation sim;
  net::Fabric fabric{sim};
  net::RpcSystem rpc{fabric};
  common::NodeId controller;
  std::vector<common::NodeId> workers;
  std::vector<common::NodeId> provider_nodes;

  explicit Cluster(int n_workers) {
    controller = fabric.add_node(25e9, 25e9, "controller");
    int nodes = (n_workers + 3) / 4;
    for (int n = 0; n < nodes; ++n) {
      auto node = fabric.add_node(25e9, 25e9);
      provider_nodes.push_back(node);
      for (int w = 0; w < 4 && static_cast<int>(workers.size()) < n_workers;
           ++w) {
        workers.push_back(node);
      }
    }
  }
};

void print_result(const nas::NasResult& r) {
  std::printf("%-14s best=%.4f mean=%.4f makespan=%7.1fs transfers=%4zu "
              "avg-frozen=%4.1f%% io=%6.1fs\n",
              r.approach.c_str(), r.best_accuracy, r.mean_accuracy, r.makespan,
              r.transfers, 100 * r.mean_lcp_fraction, r.total_io_seconds);
  for (double threshold : {0.85, 0.90, 0.92}) {
    double t = r.time_to(threshold);
    if (t >= 0) {
      std::printf("    reached %.2f accuracy at t=%.1fs\n", threshold, t);
    } else {
      std::printf("    never reached %.2f accuracy\n", threshold);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  size_t candidates = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 200;
  int workers = argc > 2 ? std::atoi(argv[2]) : 32;

  nas::AttnSearchSpace space;
  std::printf("search space: %s, |space| = 10^%.2f candidates\n",
              space.name().c_str(), space.cardinality_log10());

  nas::NasConfig cfg;
  cfg.total_candidates = candidates;
  cfg.population_cap = std::max<size_t>(16, candidates / 10);
  cfg.sample_size = 8;
  cfg.seed = 42;

  // Without transfer learning (the original DeepHyper behavior).
  {
    Cluster cluster(workers);
    cfg.use_transfer = false;
    auto result = nas::run_nas(cluster.sim, cluster.fabric, space, nullptr,
                               cluster.workers, cluster.controller, cfg);
    print_result(result);
  }
  // With transfer learning through EvoStore.
  {
    Cluster cluster(workers);
    core::EvoStoreRepository repo(cluster.rpc, cluster.provider_nodes);
    cfg.use_transfer = true;
    auto result = nas::run_nas(cluster.sim, cluster.fabric, space, &repo,
                               cluster.workers, cluster.controller, cfg);
    print_result(result);
    std::printf("repository after search: %zu live models, %.1f MB payload, "
                "%.1f KB metadata\n",
                repo.total_models(), repo.stored_payload_bytes() / 1e6,
                repo.total_metadata_bytes() / 1e3);
  }
  return 0;
}
