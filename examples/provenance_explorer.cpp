// Provenance exploration: build a transfer-learning family tree, then answer
// the paper's §1 provenance questions from owner maps alone — lineage
// chains, per-ancestor contributions, and most recent common ancestors.
//
//   ./build/examples/provenance_explorer
#include <cstdio>
#include <map>

#include "core/repository.h"
#include "net/fabric.h"
#include "workload/deepspace.h"

using namespace evostore;

namespace {

struct Explorer {
  core::EvoStoreRepository& repo;
  core::Client& client;
  workload::DeepSpace space;
  common::Xoshiro256 rng{2024};
  std::map<std::string, common::ModelId> by_name;

  sim::CoTask<common::ModelId> plant(std::string name,
                                     const workload::DeepSpaceSeq& seq,
                                     double quality) {
    auto graph = space.decode_graph(seq);
    auto prep = co_await client.prepare_transfer(graph, true);
    model::Model m = model::Model::random(repo.allocate_id(), graph,
                                          rng.next());
    const core::TransferContext* tc = nullptr;
    if (prep.ok() && prep->has_value()) {
      auto& ctx = prep->value();
      for (size_t i = 0; i < ctx.matches.size(); ++i) {
        m.segment(ctx.matches[i].first) = ctx.prefix_segments[i];
      }
      tc = &ctx;
    }
    m.set_quality(quality);
    (void)co_await client.put_model(m, tc);
    std::printf("planted %-12s as %-6s (%2zu leaf layers, ancestor: %s)\n",
                name.c_str(), m.id().to_string().c_str(), graph.size(),
                tc ? tc->ancestor.to_string().c_str() : "none");
    by_name[name] = m.id();
    co_return m.id();
  }
};

// `repo` is a pointer: used across suspension points (EVO-CORO-003);
// main()'s repo outlives run_until_complete.
sim::CoTask<int> scenario(core::EvoStoreRepository* repo,
                          common::NodeId worker) {
  Explorer ex{*repo, repo->client(worker)};

  // A family: root -> {branch_a, branch_b}; branch_a -> {leaf_a1, leaf_a2}.
  auto root_seq = ex.space.random(ex.rng);
  co_await ex.plant("root", root_seq, 0.70);
  auto branch_a = ex.space.mutate(root_seq, ex.rng);
  co_await ex.plant("branch_a", branch_a, 0.78);
  auto branch_b = ex.space.mutate(root_seq, ex.rng);
  co_await ex.plant("branch_b", branch_b, 0.74);
  auto leaf_a1 = ex.space.mutate(branch_a, ex.rng);
  co_await ex.plant("leaf_a1", leaf_a1, 0.83);
  auto leaf_a2 = ex.space.mutate(branch_a, ex.rng);
  co_await ex.plant("leaf_a2", leaf_a2, 0.81);

  // Q1: what chain of transfers produced leaf_a1?
  auto lineage = co_await ex.client.lineage(ex.by_name["leaf_a1"]);
  if (lineage.ok()) {
    std::printf("\nlineage of leaf_a1:");
    for (auto id : *lineage) std::printf(" %s", id.to_string().c_str());
    std::printf("\n");
  }

  // Q2: which ancestors contributed which layers to leaf_a1?
  auto contribs = co_await ex.client.contributions(ex.by_name["leaf_a1"]);
  if (contribs.ok()) {
    std::printf("contributions to leaf_a1 (most recent first):\n");
    for (const auto& c : *contribs) {
      std::printf("  %-6s owns %2zu leaf layer(s), stored at t=%.2es\n",
                  c.owner.to_string().c_str(), c.vertices.size(),
                  c.store_time);
    }
  }

  // Q3: most recent common ancestors of various pairs.
  auto pairs = {std::make_pair("leaf_a1", "leaf_a2"),
                std::make_pair("leaf_a1", "branch_b"),
                std::make_pair("branch_a", "branch_b")};
  std::printf("most recent common ancestors:\n");
  for (auto [a, b] : pairs) {
    auto mrca = co_await ex.client.most_recent_common_ancestor(
        ex.by_name[a], ex.by_name[b]);
    std::printf("  mrca(%s, %s) = %s\n", a, b,
                mrca.ok() ? mrca.value().to_string().c_str()
                          : mrca.status().to_string().c_str());
  }

  // Q4: the metadata cost of all of this — owner maps only.
  std::printf("total provenance metadata: %.1f KB across %zu models\n",
              repo->total_metadata_bytes() / 1e3, repo->total_models());
  co_return 0;
}

}  // namespace

int main() {
  sim::Simulation sim;
  net::Fabric fabric(sim);
  std::vector<common::NodeId> providers;
  for (int i = 0; i < 4; ++i) providers.push_back(fabric.add_node(25e9, 25e9));
  auto worker = fabric.add_node(25e9, 25e9);
  net::RpcSystem rpc(fabric);
  core::EvoStoreRepository repo(rpc, providers);
  return sim.run_until_complete(scenario(&repo, worker));
}
