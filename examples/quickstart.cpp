// Quickstart: deploy a small EvoStore cluster, store a model, derive a
// child through an LCP query + transfer, read it back, and retire both.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build --target quickstart
//   ./build/examples/quickstart
#include <cstdio>

#include "core/repository.h"
#include "net/fabric.h"

using namespace evostore;

// Build input -> dense(w) x n chain, mutating the last `mutated` layers.
static model::ArchGraph make_graph(int layers, int mutated) {
  std::vector<model::LayerDef> defs;
  defs.push_back(model::make_input(64));
  for (int i = 0; i < layers; ++i) {
    int64_t out = (i >= layers - mutated) ? 96 + i : 64;
    defs.push_back(model::make_dense(64, out));
  }
  return std::move(model::ArchGraph::flatten(model::make_chain(std::move(defs))))
      .value();
}

// `repo` is a pointer: the repository is read again after suspension
// points, so the coroutine must not hold a reference parameter
// (EVO-CORO-003); main()'s repo outlives run_until_complete.
static sim::CoTask<int> scenario(core::EvoStoreRepository* repo,
                                 common::NodeId worker) {
  auto& client = repo->client(worker);

  // 1. Store a model trained from scratch.
  auto base_graph = make_graph(8, 0);
  auto base = model::Model::random(repo->allocate_id(), base_graph, /*seed=*/1);
  base.set_quality(0.82);
  auto status = co_await client.put_model(base, nullptr);
  std::printf("stored base model %s (%zu layers, %.1f KB): %s\n",
              base.id().to_string().c_str(), base_graph.size(),
              base.total_bytes() / 1024.0, status.to_string().c_str());

  // 2. A new candidate architecture: same prefix, two new layers.
  auto child_graph = make_graph(8, 2);

  // 3. Ask the repository for the best transfer-learning ancestor
  //    (broadcast LCP query + reduce) and fetch the prefix tensors.
  auto prep = co_await client.prepare_transfer(child_graph, /*payload=*/true);
  if (!prep.ok() || !prep->has_value()) {
    std::printf("no ancestor found!?\n");
    co_return 1;
  }
  auto& tc = prep->value();
  std::printf("best ancestor: %s, LCP = %zu of %zu leaf layers\n",
              tc.ancestor.to_string().c_str(), tc.lcp_len(),
              child_graph.size());

  // 4. "Train": inherit + freeze the prefix, randomize the rest.
  auto child = model::Model::random(repo->allocate_id(), child_graph, 2);
  for (size_t i = 0; i < tc.matches.size(); ++i) {
    child.segment(tc.matches[i].first) = tc.prefix_segments[i];
  }
  child.set_quality(0.88);

  // 5. Store incrementally: only the modified tensors travel.
  status = co_await client.put_model(child, &tc);
  std::printf("stored derived model %s incrementally: %s\n",
              child.id().to_string().c_str(), status.to_string().c_str());
  std::printf("repository payload: %.1f KB (full copies would be %.1f KB)\n",
              repo->stored_payload_bytes() / 1024.0,
              (base.total_bytes() + child.total_bytes()) / 1024.0);

  // 6. Read the child back and verify.
  auto loaded = co_await client.get_model(child.id());
  bool identical = loaded.ok();
  if (identical) {
    for (common::VertexId v = 0; v < child.vertex_count(); ++v) {
      identical &= loaded->segment(v).content_equals(child.segment(v));
    }
  }
  std::printf("read-back verification: %s\n", identical ? "OK" : "MISMATCH");

  // 7. Provenance: who owns each layer of the child?
  auto contribs = co_await client.contributions(child.id());
  if (contribs.ok()) {
    for (const auto& c : *contribs) {
      std::printf("  owner %s contributes %zu leaf layer(s)\n",
                  c.owner.to_string().c_str(), c.vertices.size());
    }
  }

  // 8. Retire both; shared tensors are freed when the last reference drops.
  (void)co_await client.retire(base.id());
  (void)co_await client.retire(child.id());
  std::printf("after retirement: %zu bytes stored, %zu segments\n",
              repo->stored_payload_bytes(), repo->total_segments());
  co_return identical ? 0 : 1;
}

int main() {
  sim::Simulation sim;
  net::Fabric fabric(sim);
  std::vector<common::NodeId> providers;
  for (int i = 0; i < 4; ++i) {
    providers.push_back(fabric.add_node(25e9, 25e9));
  }
  auto worker = fabric.add_node(25e9, 25e9);
  net::RpcSystem rpc(fabric);
  core::EvoStoreRepository repo(rpc, providers);

  int rc = sim.run_until_complete(scenario(&repo, worker));
  std::printf("simulated time: %.3f ms\n", sim.now() * 1e3);
  return rc;
}
