#include "baseline/hdf5_pfs.h"

#include <algorithm>

#include "common/log.h"

namespace evostore::baseline {

using common::Buffer;
using model::Model;
using model::Segment;

Hdf5PfsRepository::Hdf5PfsRepository(storage::Pfs& pfs, RedisQueries* redis,
                                     Hdf5PfsConfig config)
    : pfs_(&pfs), redis_(redis), config_(config), sim_(nullptr) {}

std::string Hdf5PfsRepository::dataset_path(common::VertexId v, size_t slot) {
  return "/model_weights/v" + std::to_string(v) + "/t" + std::to_string(slot);
}

sim::CoTask<void> Hdf5PfsRepository::charge_staging(double bytes,
                                                    size_t datasets) {
  io_.staged_bytes += bytes;
  // One execution context launch + per-dataset bookkeeping + memcpy of all
  // tensor payloads through NumPy staging arrays.
  co_await pfs_->simulation().delay(
      config_.context_setup_seconds +
      config_.per_dataset_seconds * static_cast<double>(datasets) +
      bytes / config_.staging_bandwidth);
}

// NOLINTNEXTLINE(cppcoreguidelines-avoid-reference-coroutine-parameters)
sim::CoTask<Status> Hdf5PfsRepository::store(NodeId client, const Model& m,
                                             const core::TransferContext* tc) {
  (void)tc;  // no incremental storage: the full model is always written
  ++io_.stores;
  bool need_weights = true;
  if (redis_ != nullptr) {
    auto add = co_await redis_->begin_add(client, m.id(), m.graph(),
                                          m.quality());
    if (!add.status.ok()) co_return add.status;
    need_weights = add.need_weights;
  }
  if (need_weights) {
    storage::H5Writer writer;
    common::Serializer arch;
    // store() is always awaited by the frame that owns the model (never
    // spawned detached), so `m` outlives this coroutine by contract.
    // evo-lint: suppress(EVO-CORO-003) m pinned by the awaiting caller
    m.graph().serialize(arch);
    common::Bytes arch_bytes = std::move(arch).take();
    writer.put_attr("arch", std::string(
                                reinterpret_cast<const char*>(arch_bytes.data()),
                                arch_bytes.size()));
    writer.put_attr("quality", std::to_string(m.quality()));
    size_t datasets = 0;
    for (common::VertexId v = 0; v < m.vertex_count(); ++v) {
      const Segment& seg = m.segment(v);
      for (size_t slot = 0; slot < seg.tensors.size(); ++slot) {
        auto st = writer.put_dataset(dataset_path(v, slot), seg.tensors[slot]);
        if (!st.ok()) co_return st;
        ++datasets;
      }
    }
    co_await charge_staging(static_cast<double>(m.total_bytes()), datasets);
    auto st = co_await pfs_->write(client, RedisQueries::weights_path(m.id()),
                                   std::move(writer).finish());
    if (!st.ok()) co_return st;
  }
  if (redis_ != nullptr) {
    co_return co_await redis_->finish_add(client, m.id());
  }
  co_return Status::Ok();
}

sim::CoTask<Result<Model>> Hdf5PfsRepository::load(NodeId client, ModelId id) {
  ++io_.loads;
  auto extents = co_await pfs_->read(client, RedisQueries::weights_path(id));
  if (!extents.ok()) co_return extents.status();
  auto reader = storage::H5Reader::open(std::move(extents).value());
  if (!reader.ok()) co_return reader.status();
  auto arch_attr = reader->attr("arch");
  if (!arch_attr.ok()) co_return arch_attr.status();
  common::Deserializer d(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(arch_attr->data()),
      arch_attr->size()));
  model::ArchGraph graph = model::ArchGraph::deserialize(d);
  if (!d.ok()) co_return d.status();
  Model m(id, std::move(graph));
  auto quality_attr = reader->attr("quality");
  if (quality_attr.ok()) m.set_quality(std::stod(quality_attr.value()));
  size_t datasets = 0;
  double bytes = 0;
  for (common::VertexId v = 0; v < m.vertex_count(); ++v) {
    Segment& seg = m.segment(v);
    for (size_t slot = 0;; ++slot) {
      auto t = reader->dataset(dataset_path(v, slot));
      if (!t.ok()) break;
      bytes += static_cast<double>(t->nbytes());
      seg.tensors.push_back(std::move(t).value());
      ++datasets;
    }
  }
  co_await charge_staging(bytes, datasets);
  co_return m;
}

sim::CoTask<Result<std::optional<core::TransferContext>>>
// NOLINTNEXTLINE(cppcoreguidelines-avoid-reference-coroutine-parameters)
Hdf5PfsRepository::prepare_transfer(NodeId client, const ArchGraph& g,
                                    bool fetch_payload) {
  if (redis_ == nullptr) {
    co_return std::optional<core::TransferContext>{};
  }
  auto q = co_await redis_->query(client, g);
  if (!q.ok()) co_return q.status();
  if (!q->found) co_return std::optional<core::TransferContext>{};

  core::TransferContext tc;
  tc.ancestor = q->ancestor;
  tc.ancestor_quality = q->quality;
  tc.matches = q->matches;

  Status status;
  if (fetch_payload) {
    // HDF5 partial read: fetch the TOC, then one ranged read per tensor of
    // the prefix — each paying the PFS per-op cost.
    std::string path = RedisQueries::weights_path(tc.ancestor);
    const auto* extents = pfs_->peek(path);
    if (extents == nullptr || extents->empty()) {
      status = Status::NotFound("weights file " + path);
    } else {
      auto toc = co_await pfs_->read_range(client, path, 0,
                                           (*extents)[0].size());
      ++io_.ranged_reads;
      if (!toc.ok()) {
        status = toc.status();
      } else {
        auto reader = storage::H5Reader::open(*extents);
        if (!reader.ok()) {
          status = reader.status();
        } else {
          // Ranged-read every tensor belonging to a matched ancestor vertex.
          size_t offset = (*extents)[0].size();
          std::map<common::VertexId, std::map<size_t, size_t>> ranges;
          size_t extent_index = 1;
          for (const auto& dpath : reader->dataset_paths()) {
            // dataset_path format: /model_weights/v<vertex>/t<slot>
            common::VertexId v = 0;
            size_t slot = 0;
            if (std::sscanf(dpath.c_str(), "/model_weights/v%u/t%zu", &v,
                            &slot) == 2) {
              ranges[v][slot] = offset;
            }
            offset += (*extents)[extent_index].size();
            ++extent_index;
          }
          tc.prefix_segments.resize(tc.matches.size());
          for (size_t i = 0; i < tc.matches.size() && status.ok(); ++i) {
            common::VertexId av = tc.matches[i].second;
            Segment seg;
            for (size_t slot = 0;; ++slot) {
              auto t = reader->dataset(dataset_path(av, slot));
              if (!t.ok()) break;
              if (config_.partial_read_seconds > 0) {
                co_await pfs_->simulation().delay(config_.partial_read_seconds);
              }
              auto r = co_await pfs_->read_range(client, path,
                                                 ranges[av][slot], t->nbytes());
              ++io_.ranged_reads;
              if (!r.ok()) {
                status = r.status();
                break;
              }
              seg.tensors.push_back(std::move(t).value());
            }
            tc.prefix_segments[i] = std::move(seg);
          }
        }
      }
    }
  }
  // Unpin regardless of payload outcome; a dropped last reference means the
  // ancestor was retired while pinned and its file is now ours to delete.
  auto unpin = co_await redis_->unpin(client, tc.ancestor);
  if (unpin.status.ok() && unpin.remove_weights) {
    auto removed =
        co_await pfs_->remove(client, RedisQueries::weights_path(tc.ancestor));
    if (!removed.ok()) {
      // Best-effort cleanup: the load itself succeeded, but a leaked file
      // would silently distort stored-bytes accounting, so make it visible.
      EVO_WARN << "hdf5+pfs: removing retired ancestor "
               << tc.ancestor.value
               << " weights failed: " << removed.message();
    }
  }
  if (!status.ok()) co_return status;
  co_return std::optional<core::TransferContext>(std::move(tc));
}

sim::CoTask<Status> Hdf5PfsRepository::retire(NodeId client, ModelId id) {
  if (redis_ == nullptr) {
    co_return co_await pfs_->remove(client, RedisQueries::weights_path(id));
  }
  auto r = co_await redis_->retire(client, id);
  if (!r.status.ok()) co_return r.status;
  if (r.remove_weights) {
    co_return co_await pfs_->remove(client, RedisQueries::weights_path(id));
  }
  co_return Status::Ok();
}

}  // namespace evostore::baseline
