// HDF5+PFS baseline repository (paper §5.2): full-model serialization into
// an HDF5-style container stored on the parallel file system, optionally
// paired with Redis-Queries for LCP metadata.
//
// Cost model mirrors the Keras store/load path the paper measured:
//  - store: copy every tensor into staging (NumPy) arrays at memory-copy
//    bandwidth inside a freshly-launched execution context, create one HDF5
//    dataset per tensor, then write the file through Lustre striping;
//  - load: the reverse;
//  - partial reads (transfer learning) fetch the TOC then issue one
//    small ranged read PER TENSOR — each paying PFS metadata latency, which
//    is exactly the "bulk-optimized formats penalize fine-grain access"
//    effect (§1, §5.6 overhead breakdown).
//
// No dedup: every model stores its full payload; retiring relies on Redis
// reference counts to decide when to delete the file.
#pragma once

#include <map>
#include <optional>

#include "baseline/redis_queries.h"
#include "core/repository.h"
#include "storage/h5file.h"
#include "storage/pfs.h"

namespace evostore::baseline {

struct Hdf5PfsConfig {
  /// Tensor <-> NumPy staging copy bandwidth (bytes/s).
  double staging_bandwidth = 12e9;
  /// Launching the separate execution context per store/load.
  double context_setup_seconds = 2e-3;
  /// Per-dataset HDF5 overhead (create/lookup, chunk bookkeeping).
  double per_dataset_seconds = 60e-6;
  /// Client-side cost per ranged dataset read during transfer learning
  /// (h5py chunked access over a loaded Lustre client; the paper's "formats
  /// optimized for bulk I/O penalize fine-grain access"). Zero by default;
  /// end-to-end NAS runs set a realistic value.
  double partial_read_seconds = 0.0;
};

class Hdf5PfsRepository final : public core::ModelRepository {
 public:
  /// `redis` may be null (no metadata server: prepare_transfer always
  /// reports "no ancestor" and retire deletes unconditionally) — the Fig. 4
  /// configuration.
  Hdf5PfsRepository(storage::Pfs& pfs, RedisQueries* redis,
                    Hdf5PfsConfig config = {});

  std::string name() const override {
    return redis_ != nullptr ? "HDF5+PFS+Redis" : "HDF5+PFS";
  }
  ModelId allocate_id() override { return ModelId::make(1, ++id_seq_); }

  sim::CoTask<Result<std::optional<core::TransferContext>>> prepare_transfer(
      NodeId client, const ArchGraph& g, bool fetch_payload) override;
  sim::CoTask<Status> store(NodeId client, const model::Model& m,
                            const core::TransferContext* tc) override;
  sim::CoTask<Result<model::Model>> load(NodeId client, ModelId id) override;
  sim::CoTask<Status> retire(NodeId client, ModelId id) override;

  size_t stored_payload_bytes() const override { return pfs_->stored_bytes(); }

  /// I/O accounting for the paper's overhead breakdowns.
  struct IoStats {
    uint64_t stores = 0;
    uint64_t loads = 0;
    uint64_t ranged_reads = 0;
    double staged_bytes = 0;
  };
  const IoStats& io_stats() const { return io_; }

 private:
  static std::string dataset_path(common::VertexId v, size_t slot);
  sim::CoTask<void> charge_staging(double bytes, size_t datasets);

  storage::Pfs* pfs_;
  RedisQueries* redis_;
  Hdf5PfsConfig config_;
  sim::Simulation* sim_;
  uint32_t id_seq_ = 0;
  IoStats io_;
};

}  // namespace evostore::baseline
