#include "baseline/redis_queries.h"

#include "core/lcp.h"

namespace evostore::baseline {

using common::Bytes;
using common::Deserializer;
using common::Serializer;
using core::wire::deserialize_status;
using core::wire::serialize_status;

namespace {

constexpr const char* kBeginAdd = "redis.begin_add";
constexpr const char* kFinishAdd = "redis.finish_add";
constexpr const char* kQuery = "redis.query";
constexpr const char* kUnpin = "redis.unpin";
constexpr const char* kRetire = "redis.retire";

struct BeginAddReq {
  ModelId id;
  double quality = 0;
  ArchGraph graph;
  void serialize(Serializer& s) const {
    s.u64(id.value);
    s.f64(quality);
    graph.serialize(s);
  }
  static BeginAddReq deserialize(Deserializer& d) {
    BeginAddReq r;
    r.id.value = d.u64();
    r.quality = d.f64();
    r.graph = ArchGraph::deserialize(d);
    return r;
  }
};

struct BoolResp {
  Status status;
  bool flag = false;
  void serialize(Serializer& s) const {
    serialize_status(s, status);
    s.boolean(flag);
  }
  static BoolResp deserialize(Deserializer& d) {
    BoolResp r;
    r.status = deserialize_status(d);
    r.flag = d.boolean();
    return r;
  }
};

struct IdReq {
  ModelId id;
  void serialize(Serializer& s) const { s.u64(id.value); }
  static IdReq deserialize(Deserializer& d) { return IdReq{ModelId{d.u64()}}; }
};

template <typename Response>
Bytes pack(const Response& r) {
  Serializer s;
  r.serialize(s);
  return std::move(s).take();
}

}  // namespace

RedisQueries::RedisQueries(net::RpcSystem& rpc, NodeId node,
                           RedisConfig config)
    : rpc_(&rpc), sim_(&rpc.simulation()), node_(node), config_(config) {
  metadata_lock_ = std::make_unique<sim::RwLock>(*sim_);
  cpu_ = std::make_unique<sim::Semaphore>(*sim_, 1);
  rpc.register_handler(node_, kBeginAdd,
                       [this](Bytes b) { return handle_begin_add(std::move(b)); });
  rpc.register_handler(node_, kFinishAdd,
                       [this](Bytes b) { return handle_finish_add(std::move(b)); });
  rpc.register_handler(node_, kQuery,
                       [this](Bytes b) { return handle_query(std::move(b)); });
  rpc.register_handler(node_, kUnpin,
                       [this](Bytes b) { return handle_unpin(std::move(b)); });
  rpc.register_handler(node_, kRetire,
                       [this](Bytes b) { return handle_retire(std::move(b)); });
}

sim::CoTask<void> RedisQueries::charge_op(double extra_cpu_seconds) {
  ++in_flight_;
  double cost = config_.op_seconds +
                config_.conn_poll_seconds * static_cast<double>(in_flight_) +
                extra_cpu_seconds;
  co_await sim_->delay(cost);
  --in_flight_;
}

size_t RedisQueries::published_count() const {
  size_t n = 0;
  for (const auto& [id, e] : entries_) {
    if (e.published) ++n;
  }
  return n;
}

// ---- server-side handlers -------------------------------------------------

sim::CoTask<Bytes> RedisQueries::handle_begin_add(Bytes request) {
  Deserializer d(request);
  auto req = BeginAddReq::deserialize(d);
  BoolResp resp;
  if (!d.ok()) {
    resp.status = d.status();
    co_return pack(resp);
  }
  ++stats_.adds;
  co_await charge_op(0);
  co_await metadata_lock_->lock_exclusive();
  auto it = entries_.find(req.id);
  if (it == entries_.end()) {
    Entry e;
    e.id = req.id;
    e.graph = std::move(req.graph);
    e.quality = req.quality;
    e.arch_lock = std::make_unique<sim::Mutex>(*sim_);
    it = entries_.emplace(req.id, std::move(e)).first;
  }
  Entry& entry = it->second;
  // "attempt to acquire the architecture-specific writer lock"
  bool got_arch_lock = !entry.published && entry.arch_lock->locked() == false;
  ++entry.refcount;
  if (got_arch_lock) {
    // Hold the arch lock across the client's PFS weight write; released by
    // finish_add.
    bool ok = entry.arch_lock->try_lock_now();
    (void)ok;
    resp.flag = true;  // caller must write weights, then finish_add
  } else {
    resp.flag = false;  // already registered (or being registered)
  }
  metadata_lock_->unlock_exclusive();
  resp.status = Status::Ok();
  co_return pack(resp);
}

sim::CoTask<Bytes> RedisQueries::handle_finish_add(Bytes request) {
  Deserializer d(request);
  auto req = IdReq::deserialize(d);
  BoolResp resp;
  co_await charge_op(0);
  co_await metadata_lock_->lock_exclusive();
  auto it = entries_.find(req.id);
  if (it == entries_.end() || !d.ok()) {
    metadata_lock_->unlock_exclusive();
    resp.status = Status::NotFound("model " + req.id.to_string());
    co_return pack(resp);
  }
  it->second.published = true;
  metadata_lock_->unlock_exclusive();
  it->second.arch_lock->unlock();
  resp.status = Status::Ok();
  co_return pack(resp);
}

sim::CoTask<Bytes> RedisQueries::handle_query(Bytes request) {
  Deserializer d(request);
  auto req = core::wire::LcpQueryRequest::deserialize(d);
  core::wire::LcpQueryResponse resp;
  if (!d.ok()) co_return pack(resp);
  ++stats_.queries;
  co_await charge_op(0);
  co_await metadata_lock_->lock_shared();
  // Redis is single-threaded: the catalog scan serializes on the one CPU
  // even while the reader lock admits concurrent queries.
  co_await cpu_->acquire();
  core::LcpCost cost;
  core::LcpWorkspace ws;
  Entry* best = nullptr;
  size_t scanned = 0;
  for (auto& [id, entry] : entries_) {
    if (!entry.published) continue;
    ++scanned;
    core::LcpResult r = ws.run(req.graph, entry.graph, &cost);
    if (r.length() == 0) continue;
    bool better = false;
    if (!resp.found) {
      better = true;
    } else if (r.length() != resp.matches.size()) {
      better = r.length() > resp.matches.size();
    } else if (entry.quality != resp.quality) {
      better = entry.quality > resp.quality;
    } else {
      better = id < resp.ancestor;
    }
    if (better) {
      resp.found = true;
      resp.ancestor = id;
      resp.quality = entry.quality;
      resp.matches = std::move(r.matches);
      best = &entry;
    }
  }
  stats_.entries_scanned += scanned;
  co_await sim_->delay(
      config_.scan_entry_seconds * static_cast<double>(scanned) +
      config_.lcp_visit_seconds * static_cast<double>(cost.vertex_visits));
  cpu_->release();
  // Pin the winner so a concurrent retire cannot free its weights while the
  // client reads them.
  if (best != nullptr) ++best->refcount;
  metadata_lock_->unlock_shared();
  co_return pack(resp);
}

namespace {
struct DecOutcome {
  bool found = false;
  bool remove_weights = false;
};
}  // namespace

sim::CoTask<Bytes> RedisQueries::handle_unpin(Bytes request) {
  Deserializer d(request);
  auto req = IdReq::deserialize(d);
  BoolResp resp;
  co_await charge_op(0);
  co_await metadata_lock_->lock_exclusive();
  auto it = entries_.find(req.id);
  if (it == entries_.end() || !d.ok()) {
    metadata_lock_->unlock_exclusive();
    resp.status = Status::NotFound("model " + req.id.to_string());
    co_return pack(resp);
  }
  Entry& entry = it->second;
  if (--entry.refcount <= 0) {
    // Deferred retirement: take the arch lock, unpublish, free metadata
    // lock; the caller frees the storage, then the arch lock clears.
    co_await entry.arch_lock->lock();
    entry.published = false;
    metadata_lock_->unlock_exclusive();
    entry.arch_lock->unlock();
    resp.flag = true;
  } else {
    metadata_lock_->unlock_exclusive();
  }
  resp.status = Status::Ok();
  co_return pack(resp);
}

sim::CoTask<Bytes> RedisQueries::handle_retire(Bytes request) {
  ++stats_.retires;
  co_return co_await handle_unpin(std::move(request));
}

// ---- client-side wrappers ---------------------------------------------------

sim::CoTask<RedisQueries::AddResult> RedisQueries::begin_add(
    // NOLINTNEXTLINE(cppcoreguidelines-avoid-reference-coroutine-parameters)
    NodeId client, ModelId id, const ArchGraph& graph, double quality) {
  BeginAddReq req;
  req.id = id;
  req.quality = quality;
  req.graph = graph;
  auto r = co_await net::typed_call<BoolResp>(rpc_, client, node_, kBeginAdd, req);
  AddResult out;
  if (!r.ok()) {
    out.status = r.status();
  } else {
    out.status = r->status;
    out.need_weights = r->flag;
  }
  co_return out;
}

sim::CoTask<Status> RedisQueries::finish_add(NodeId client, ModelId id) {
  IdReq req{id};
  auto r = co_await net::typed_call<BoolResp>(rpc_, client, node_, kFinishAdd, req);
  if (!r.ok()) co_return r.status();
  co_return r->status;
}

sim::CoTask<Result<core::wire::LcpQueryResponse>> RedisQueries::query(
    // NOLINTNEXTLINE(cppcoreguidelines-avoid-reference-coroutine-parameters)
    NodeId client, const ArchGraph& graph) {
  core::wire::LcpQueryRequest req;
  req.graph = graph;
  co_return co_await net::typed_call<core::wire::LcpQueryResponse>(
      rpc_, client, node_, kQuery, req);
}

sim::CoTask<RedisQueries::UnpinResult> RedisQueries::unpin(NodeId client,
                                                           ModelId id) {
  IdReq req{id};
  auto r = co_await net::typed_call<BoolResp>(rpc_, client, node_, kUnpin, req);
  UnpinResult out;
  if (!r.ok()) {
    out.status = r.status();
  } else {
    out.status = r->status;
    out.remove_weights = r->flag;
  }
  co_return out;
}

sim::CoTask<RedisQueries::RetireResult> RedisQueries::retire(NodeId client,
                                                             ModelId id) {
  IdReq req{id};
  auto r = co_await net::typed_call<BoolResp>(rpc_, client, node_, kRetire, req);
  RetireResult out;
  if (!r.ok()) {
    out.status = r.status();
  } else {
    out.status = r->status;
    out.remove_weights = r->flag;
  }
  co_return out;
}

}  // namespace evostore::baseline
