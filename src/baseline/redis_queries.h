// Redis-Queries baseline (paper §5.2): a centralized DL-model metadata
// server with LCP query support, reimplemented faithfully — including the
// exact lock protocol the paper describes.
//
//  add:    global writer metadata lock -> try per-architecture writer lock;
//          on success increment the refcount, drop the metadata lock, let
//          the CLIENT write the weights to the PFS, then re-acquire the
//          metadata writer lock and publish the architecture. If the
//          per-architecture lock is already taken/registered, only the
//          refcount is incremented (no weight write).
//  retire: writer metadata lock; decrement refcount; at zero take the
//          per-architecture lock, unpublish, free storage, unlock.
//  query:  reader metadata lock; iterate over ALL published architectures
//          computing the LCP and retaining the best; increment the winner's
//          refcount (pin) before releasing; the client unpins after the
//          weight transfer, which may trigger deferred retirement.
//
// Performance model: the server runs on one node; LCP scans execute on a
// single-threaded CPU (Redis event loop) and every operation pays a
// per-connection polling overhead that grows with the number of in-flight
// clients — which is what bends the throughput curve down and eventually
// flat-lines it beyond a few dozen concurrent workers (paper Fig. 5).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "core/wire.h"
#include "net/rpc.h"
#include "sim/sync.h"

namespace evostore::baseline {

using common::Hash128;
using common::ModelId;
using common::NodeId;
using common::Result;
using common::Status;
using model::ArchGraph;

struct RedisConfig {
  /// Catalog iteration cost per stored architecture per query (Redis API
  /// fetch + JSON parse; much slower than EvoStore's in-memory compact
  /// graphs).
  double scan_entry_seconds = 1.6e-6;
  /// LCP compute per vertex visit (same algorithm, run client-code-style on
  /// the deserialized form).
  double lcp_visit_seconds = 60e-9;
  /// Fixed cost per server op (command dispatch).
  double op_seconds = 4e-6;
  /// Event-loop polling overhead charged per op per concurrent in-flight op.
  double conn_poll_seconds = 1.2e-6;
};

struct RedisStats {
  uint64_t adds = 0;
  uint64_t queries = 0;
  uint64_t retires = 0;
  uint64_t entries_scanned = 0;
};

class RedisQueries {
 public:
  RedisQueries(net::RpcSystem& rpc, NodeId node, RedisConfig config = {});

  NodeId node() const { return node_; }

  // ---- Client-side operations (issue RPCs to the server node) ----

  struct AddResult {
    Status status;
    /// True if this architecture was new and the caller must write the
    /// weights then call finish_add.
    bool need_weights = false;
  };
  sim::CoTask<AddResult> begin_add(NodeId client, ModelId id,
                                   const ArchGraph& graph, double quality);
  sim::CoTask<Status> finish_add(NodeId client, ModelId id);

  /// LCP query over the whole published catalog. On success the winner is
  /// pinned (refcount incremented); call unpin(ancestor) after the weights
  /// have been transferred.
  sim::CoTask<Result<core::wire::LcpQueryResponse>> query(
      NodeId client, const ArchGraph& graph);

  struct UnpinResult {
    Status status;
    /// True when the unpin dropped the last reference and the caller must
    /// delete the weights file.
    bool remove_weights = false;
  };
  sim::CoTask<UnpinResult> unpin(NodeId client, ModelId id);

  /// Retire a model (refcount decrement; unpublish + storage free at zero).
  struct RetireResult {
    Status status;
    bool remove_weights = false;
  };
  sim::CoTask<RetireResult> retire(NodeId client, ModelId id);

  // ---- Introspection ----
  size_t published_count() const;
  const RedisStats& stats() const { return stats_; }
  /// Key under which a model's weights file lives on the PFS.
  static std::string weights_path(ModelId id) {
    return "/repo/" + id.to_string() + ".h5";
  }

 private:
  struct Entry {
    ModelId id;
    ArchGraph graph;
    double quality = 0;
    int32_t refcount = 0;
    bool published = false;
    std::unique_ptr<sim::Mutex> arch_lock;
  };

  // Server-side handler bodies (invoked via RPC on node_).
  sim::CoTask<common::Bytes> handle_begin_add(common::Bytes req);
  sim::CoTask<common::Bytes> handle_finish_add(common::Bytes req);
  sim::CoTask<common::Bytes> handle_query(common::Bytes req);
  sim::CoTask<common::Bytes> handle_unpin(common::Bytes req);
  sim::CoTask<common::Bytes> handle_retire(common::Bytes req);

  sim::CoTask<void> charge_op(double extra_cpu_seconds);

  net::RpcSystem* rpc_;
  sim::Simulation* sim_;
  NodeId node_;
  RedisConfig config_;

  std::unique_ptr<sim::RwLock> metadata_lock_;
  std::unique_ptr<sim::Semaphore> cpu_;  // single-threaded event loop
  std::unordered_map<ModelId, Entry> entries_;
  int in_flight_ = 0;
  RedisStats stats_;
};

}  // namespace evostore::baseline
