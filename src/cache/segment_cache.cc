#include "cache/segment_cache.h"

#include <utility>

namespace evostore::cache {

const SegmentCache::Entry* SegmentCache::lookup(
    const common::SegmentKey& key) {
  auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  it->second->referenced = true;
  return &it->second->entry;
}

void SegmentCache::insert(const common::SegmentKey& key,
                          compress::CompressedSegment envelope,
                          uint64_t version, double now) {
  uint64_t bytes = envelope.physical_bytes;
  if (bytes > config_.capacity_bytes) return;  // would evict everything
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Replace in place (re-created key or refreshed fill): adjust the byte
    // charge, keep the ring position.
    Slot& slot = *it->second;
    charged_bytes_ -= slot.entry.envelope.physical_bytes;
    slot.entry = Entry{std::move(envelope), version, now};
    slot.referenced = true;
    charged_bytes_ += bytes;
    evict_until_fits(0);
    ++stats_.inserts;
    if (m_inserts_ != nullptr) m_inserts_->add();
    set_bytes_gauge();
    return;
  }
  evict_until_fits(bytes);
  ring_.push_back(Slot{key, Entry{std::move(envelope), version, now}, false});
  auto slot_it = std::prev(ring_.end());
  index_.emplace(key, slot_it);
  if (hand_ == ring_.end()) hand_ = slot_it;
  charged_bytes_ += bytes;
  ++stats_.inserts;
  if (m_inserts_ != nullptr) m_inserts_->add();
  set_bytes_gauge();
}

bool SegmentCache::revalidate(const common::SegmentKey& key, uint64_t version,
                              double now) {
  auto it = index_.find(key);
  if (it == index_.end()) return false;
  Slot& slot = *it->second;
  if (slot.entry.version != version) {
    invalidate(key);
    return false;
  }
  slot.entry.validated_at = now;
  slot.referenced = true;
  return true;
}

void SegmentCache::invalidate(const common::SegmentKey& key) {
  auto it = index_.find(key);
  if (it == index_.end()) return;
  erase_slot(it->second);
  ++stats_.invalidations;
  if (m_invalidations_ != nullptr) m_invalidations_->add();
  set_bytes_gauge();
}

void SegmentCache::clear() {
  ring_.clear();
  index_.clear();
  hand_ = ring_.end();
  charged_bytes_ = 0;
  set_bytes_gauge();
}

void SegmentCache::evict_until_fits(uint64_t incoming_bytes) {
  while (!ring_.empty() &&
         charged_bytes_ + incoming_bytes > config_.capacity_bytes) {
    // CLOCK sweep: give referenced entries a second chance, evict the first
    // cold one. Bounded: each pass over the ring clears every bit, so a
    // victim is found within two laps.
    if (hand_ == ring_.end()) hand_ = ring_.begin();
    if (hand_->referenced) {
      hand_->referenced = false;
      ++hand_;
      continue;
    }
    index_.erase(hand_->key);
    charged_bytes_ -= hand_->entry.envelope.physical_bytes;
    hand_ = ring_.erase(hand_);
    ++stats_.evictions;
    if (m_evictions_ != nullptr) m_evictions_->add();
  }
}

void SegmentCache::erase_slot(Ring::iterator it) {
  charged_bytes_ -= it->entry.envelope.physical_bytes;
  index_.erase(it->key);
  if (hand_ == it) ++hand_;
  ring_.erase(it);
  if (hand_ == ring_.end() && !ring_.empty()) hand_ = ring_.begin();
}

void SegmentCache::set_bytes_gauge() {
  if (m_cached_bytes_ != nullptr) {
    m_cached_bytes_->set(static_cast<double>(charged_bytes_));
  }
}

void SegmentCache::bind_metrics(obs::MetricsRegistry* registry,
                                const std::string& prefix) {
  if (registry == nullptr) return;
  m_hits_ = registry->counter(prefix + ".hits");
  m_misses_ = registry->counter(prefix + ".misses");
  m_inserts_ = registry->counter(prefix + ".inserts");
  m_evictions_ = registry->counter(prefix + ".evictions");
  m_invalidations_ = registry->counter(prefix + ".invalidations");
  m_revalidations_ = registry->counter(prefix + ".revalidations");
  m_peer_hits_ = registry->counter(prefix + ".peer_hits");
  m_peer_misses_ = registry->counter(prefix + ".peer_misses");
  m_bytes_saved_ = registry->counter(prefix + ".bytes_saved");
  m_cached_bytes_ = registry->gauge(prefix + ".cached_bytes");
  set_bytes_gauge();
}

void SegmentCache::count_hit(uint64_t bytes_saved) {
  ++stats_.hits;
  stats_.bytes_saved += bytes_saved;
  if (m_hits_ != nullptr) m_hits_->add();
  if (m_bytes_saved_ != nullptr) m_bytes_saved_->add(bytes_saved);
}

void SegmentCache::count_miss() {
  ++stats_.misses;
  if (m_misses_ != nullptr) m_misses_->add();
}

void SegmentCache::count_revalidation(uint64_t bytes_saved) {
  ++stats_.revalidations;
  stats_.bytes_saved += bytes_saved;
  if (m_revalidations_ != nullptr) m_revalidations_->add();
  if (m_bytes_saved_ != nullptr) m_bytes_saved_->add(bytes_saved);
}

void SegmentCache::count_peer_hit() {
  ++stats_.peer_hits;
  if (m_peer_hits_ != nullptr) m_peer_hits_->add();
}

void SegmentCache::count_peer_miss() {
  ++stats_.peer_misses;
  if (m_peer_misses_ != nullptr) m_peer_misses_->add();
}

}  // namespace evostore::cache
