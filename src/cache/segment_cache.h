// Client-local cooperative segment cache (DESIGN.md §14).
//
// A capacity-bounded cache of compressed segment envelopes keyed by
// SegmentKey (owner model, vertex). Hot NAS/fine-tune backbones are read
// thousands of times while their bytes never change, so a client that keeps
// the envelope locally can answer repeat reads without moving payload bytes
// — the provider only has to confirm the cached copy is still current.
//
// Correctness rests on provider-assigned versions, not on the cache itself:
// every stored segment carries the monotonic store sequence of the put that
// created it, and a cached entry is only served after the owning provider
// confirmed that version (`NotModified`) or within the configured trust
// window of such a confirmation. Retire/overwrite therefore can never
// resurrect stale bytes — a freed key answers NotFound (the client drops the
// entry), and a re-created key carries a strictly newer version (the
// provider ships fresh bytes).
//
// Eviction is second-chance (CLOCK): entries sit on a ring in insertion
// order; a hit sets the entry's reference bit; when the byte budget is
// exceeded the hand sweeps the ring, clearing reference bits and evicting
// the first entry found cold. This is the classic approximation of LRU with
// O(1) amortised work per insert and no per-hit list splicing.
//
// The cache is deterministic: it never consults wall clocks or RNGs, the
// ring order is a pure function of the insert/hit sequence, and timestamps
// are simulated seconds supplied by the caller — so faulted runs replay
// bit-identically (the `ablation_faults` drain-to-zero contract).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/types.h"
#include "compress/compressed_segment.h"
#include "obs/metrics.h"

namespace evostore::cache {

struct CacheConfig {
  /// Byte budget for cached envelopes (charged at physical_bytes). 0
  /// disables caching entirely — the client behaves exactly as before.
  uint64_t capacity_bytes = 0;
  /// How long (simulated seconds) a provider confirmation stays trusted:
  /// entries validated within this window are served with no RPC at all.
  /// 0 keeps strict validation — every read revalidates with the owning
  /// provider (a metadata round trip, but no payload bytes on a match).
  double trust_seconds = 0;
  /// Chase provider redirect hints to peer clients already holding the
  /// segment (ScaleStore-style "cache anywhere"); a dead or cold peer falls
  /// back to the provider.
  bool follow_redirects = true;
  /// Answer peer-read RPCs from this cache (serve other clients).
  bool serve_peers = true;
};

/// Event counters; also mirrored into a bound MetricsRegistry (see
/// `bind_metrics`) so benches export them via --metrics-out.
struct CacheStats {
  uint64_t hits = 0;           ///< served locally with no RPC (trusted)
  uint64_t misses = 0;         ///< not cached (or stale) — payload fetched
  uint64_t inserts = 0;
  uint64_t evictions = 0;      ///< CLOCK victim under byte pressure
  uint64_t invalidations = 0;  ///< dropped on retire / NotFound / mismatch
  uint64_t revalidations = 0;  ///< provider said NotModified; cached bytes
  uint64_t peer_hits = 0;      ///< redirect served by a peer cache
  uint64_t peer_misses = 0;    ///< redirect failed; fell back to provider
  uint64_t bytes_saved = 0;    ///< payload bytes not pulled from providers
};

class SegmentCache {
 public:
  explicit SegmentCache(CacheConfig config) : config_(config) {}

  struct Entry {
    compress::CompressedSegment envelope;  // always kInline
    uint64_t version = 0;       ///< provider store-sequence of the bytes
    double validated_at = 0;    ///< sim time of the last confirmation
  };

  /// Look up `key`, setting its CLOCK reference bit. Returns nullptr when
  /// absent. Does not touch counters — the caller decides whether this is
  /// a trusted hit, a revalidation, or a peer-serve.
  const Entry* lookup(const common::SegmentKey& key);

  /// Insert (or replace) an entry, evicting cold entries until the byte
  /// budget holds. Envelopes larger than the whole budget are not cached.
  void insert(const common::SegmentKey& key,
              compress::CompressedSegment envelope, uint64_t version,
              double now);

  /// Provider confirmed `version` is still current: refresh the trust
  /// timestamp and return true. A version mismatch (re-created key)
  /// invalidates the entry and returns false; so does a missing entry.
  bool revalidate(const common::SegmentKey& key, uint64_t version,
                  double now);

  /// Drop `key` if present (retire, NotFound, stale). Counts an
  /// invalidation only when something was actually dropped.
  void invalidate(const common::SegmentKey& key);

  void clear();

  /// True when the entry exists, matches `version`, and its confirmation is
  /// within `trust_seconds` of `now` — servable with no RPC.
  bool trusted(const Entry& e, double now) const {
    return now - e.validated_at <= config_.trust_seconds;
  }

  uint64_t charged_bytes() const { return charged_bytes_; }
  size_t entry_count() const { return ring_.size(); }
  const CacheConfig& config() const { return config_; }
  CacheStats& stats() { return stats_; }
  const CacheStats& stats() const { return stats_; }

  /// Mirror counters/gauges into `registry` under `prefix` (e.g.
  /// "client.cache"). Pointers are cached; pass the registry that outlives
  /// the cache. Several caches may bind the same registry — the counters
  /// then aggregate across clients, which is what cluster benches want.
  void bind_metrics(obs::MetricsRegistry* registry, const std::string& prefix);

  // Counting helpers (keep the registry mirror in sync). The client calls
  // these from its read path; internal events (insert/evict/invalidate) are
  // counted by the methods above.
  void count_hit(uint64_t bytes_saved);
  void count_miss();
  void count_revalidation(uint64_t bytes_saved);
  void count_peer_hit();
  void count_peer_miss();

 private:
  struct Slot {
    common::SegmentKey key;
    Entry entry;
    bool referenced = false;  // CLOCK second-chance bit
  };
  using Ring = std::list<Slot>;

  void evict_until_fits(uint64_t incoming_bytes);
  void erase_slot(Ring::iterator it);
  void set_bytes_gauge();

  CacheConfig config_;
  CacheStats stats_;
  uint64_t charged_bytes_ = 0;

  // CLOCK ring in insertion order; `hand_` is the sweep position. The map
  // indexes the ring by key. std::list keeps iterators stable across
  // insert/erase, so the hand survives unrelated mutations.
  Ring ring_;
  Ring::iterator hand_ = ring_.end();
  std::unordered_map<common::SegmentKey, Ring::iterator> index_;

  // Optional registry mirror (null until bind_metrics).
  obs::Counter* m_hits_ = nullptr;
  obs::Counter* m_misses_ = nullptr;
  obs::Counter* m_inserts_ = nullptr;
  obs::Counter* m_evictions_ = nullptr;
  obs::Counter* m_invalidations_ = nullptr;
  obs::Counter* m_revalidations_ = nullptr;
  obs::Counter* m_peer_hits_ = nullptr;
  obs::Counter* m_peer_misses_ = nullptr;
  obs::Counter* m_bytes_saved_ = nullptr;
  obs::Gauge* m_cached_bytes_ = nullptr;
};

}  // namespace evostore::cache
