#include "common/buffer.h"

#include <cassert>
#include <cstring>

#include "common/rng.h"

namespace evostore::common {

namespace {

// Fill `out` with synthetic stream bytes starting at absolute position `pos`.
void fill_synthetic(uint64_t seed, uint64_t pos, std::span<std::byte> out) {
  size_t n = out.size();
  size_t i = 0;
  // Leading partial word.
  while (i < n && (pos + i) % 8 != 0) {
    out[i] = Buffer::synthetic_byte(seed, pos + i);
    ++i;
  }
  // Whole words.
  for (; i + 8 <= n; i += 8) {
    uint64_t word = SplitMix64::at(seed, (pos + i) / 8);
    std::memcpy(out.data() + i, &word, 8);
  }
  // Trailing partial word.
  for (; i < n; ++i) {
    out[i] = Buffer::synthetic_byte(seed, pos + i);
  }
}

}  // namespace

Buffer Buffer::dense(Bytes bytes) {
  size_t n = bytes.size();
  return Buffer(std::make_shared<const Bytes>(std::move(bytes)), 0, n, 0);
}

Buffer Buffer::copy(std::span<const std::byte> bytes) {
  return dense(Bytes(bytes.begin(), bytes.end()));
}

Buffer Buffer::zeros(size_t size) { return dense(Bytes(size)); }

Buffer Buffer::synthetic(size_t size, uint64_t seed) {
  return Buffer(nullptr, 0, size, seed);
}

void Buffer::read(size_t offset, std::span<std::byte> out) const {
  assert(offset + out.size() <= size_);
  if (out.empty()) return;
  if (data_) {
    std::memcpy(out.data(), data_->data() + offset_ + offset, out.size());
  } else {
    fill_synthetic(seed_, offset_ + offset, out);
  }
}

Bytes Buffer::to_bytes() const {
  Bytes out(size_);
  read(0, out);
  return out;
}

Buffer Buffer::materialize() const {
  if (!is_synthetic()) return *this;
  return dense(to_bytes());
}

Buffer Buffer::slice(size_t offset, size_t len) const {
  assert(offset + len <= size_);
  if (len == 0) return Buffer();
  return Buffer(data_, offset_ + offset, len, seed_);
}

Hash128 Buffer::content_hash() const {
  if (cached_hash_) return *cached_hash_;
  // Hash in fixed-size chunks on EVERY path so dense and synthetic copies of
  // the same logical content produce the same digest (the per-chunk framing
  // inside Hasher128 makes the digest chunk-boundary sensitive, so the
  // boundaries must be representation-independent).
  constexpr size_t kChunk = 64 * 1024;
  Hasher128 h;
  h.u64(size_);
  if (data_) {
    auto span = dense_span();
    for (size_t off = 0; off < size_; off += kChunk) {
      size_t n = std::min(kChunk, size_ - off);
      h.bytes(span.subspan(off, n));
    }
  } else {
    Bytes chunk(std::min<size_t>(kChunk, std::max<size_t>(size_, 1)));
    for (size_t off = 0; off < size_; off += kChunk) {
      size_t n = std::min(kChunk, size_ - off);
      read(off, std::span<std::byte>(chunk.data(), n));
      h.bytes(std::span<const std::byte>(chunk.data(), n));
    }
  }
  Hash128 result = h.finish();
  cached_hash_ = std::make_shared<const Hash128>(result);
  return result;
}

Hash128 Buffer::identity() const {
  if (is_synthetic()) {
    Hasher128 h(0x5e1ff00dULL);
    h.u64(seed_).u64(offset_).u64(size_);
    return h.finish();
  }
  return content_hash();
}

bool Buffer::content_equals(const Buffer& other) const {
  if (size_ != other.size_) return false;
  if (size_ == 0) return true;
  // Fast path: identical descriptors.
  if (is_synthetic() && other.is_synthetic()) {
    if (seed_ == other.seed_ && offset_ == other.offset_) return true;
  } else if (data_ && data_ == other.data_ && offset_ == other.offset_) {
    return true;
  }
  // General path: chunked compare of logical content.
  constexpr size_t kChunk = 64 * 1024;
  Bytes a(std::min<size_t>(kChunk, size_));
  Bytes b(a.size());
  for (size_t off = 0; off < size_; off += kChunk) {
    size_t n = std::min(kChunk, size_ - off);
    read(off, std::span<std::byte>(a.data(), n));
    other.read(off, std::span<std::byte>(b.data(), n));
    if (std::memcmp(a.data(), b.data(), n) != 0) return false;
  }
  return true;
}

std::span<const std::byte> Buffer::dense_span() const {
  assert(!is_synthetic());
  if (!data_) return {};
  return std::span<const std::byte>(data_->data() + offset_, size_);
}

std::byte Buffer::synthetic_byte(uint64_t seed, uint64_t pos) {
  uint64_t word = SplitMix64::at(seed, pos / 8);
  return static_cast<std::byte>((word >> (8 * (pos % 8))) & 0xff);
}

}  // namespace evostore::common
