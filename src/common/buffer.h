// Buffer: the unit of payload data moved and stored by EvoStore.
//
// A Buffer is an immutable, cheaply-copyable view of `size()` logical bytes
// in one of two representations:
//
//  - *dense*: backed by real bytes (shared, so slicing is zero-copy);
//  - *synthetic*: defined by (seed, offset); byte i is a deterministic
//    function of the seed, generated on demand.
//
// Synthetic buffers let benchmarks run paper-scale workloads (4 GB models on
// 256 simulated GPUs) in a small resident footprint while every store and
// transport code path still operates on the same `Buffer` type and can read,
// slice, hash, and compare logical content. Tests cross-validate that a
// synthetic buffer and its materialized dense copy behave identically.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "common/hash.h"

namespace evostore::common {

using Bytes = std::vector<std::byte>;

class Buffer {
 public:
  /// Empty dense buffer.
  Buffer() = default;

  /// Dense buffer taking ownership of `bytes`.
  static Buffer dense(Bytes bytes);
  /// Dense buffer copying from a span.
  static Buffer copy(std::span<const std::byte> bytes);
  /// Dense zero-filled buffer.
  static Buffer zeros(size_t size);
  /// Synthetic buffer of `size` logical bytes drawn from stream `seed`.
  static Buffer synthetic(size_t size, uint64_t seed);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool is_synthetic() const { return data_ == nullptr && size_ != 0; }

  /// Stream seed; only meaningful for synthetic buffers.
  uint64_t seed() const { return seed_; }

  /// Bytes actually resident in host memory (0 for synthetic buffers).
  size_t resident_bytes() const { return data_ ? data_->size() : 0; }

  /// Copy logical bytes [offset, offset+out.size()) into `out`.
  /// Requires offset + out.size() <= size().
  void read(size_t offset, std::span<std::byte> out) const;

  /// Materialize the full logical content as owned bytes.
  Bytes to_bytes() const;

  /// Materialize as a dense Buffer (no-op for dense buffers).
  Buffer materialize() const;

  /// Zero-copy sub-range view [offset, offset+len). Synthetic slices remain
  /// synthetic. Requires offset + len <= size().
  Buffer slice(size_t offset, size_t len) const;

  /// Hash of the logical content. Streams synthetic content in chunks; cost
  /// is O(size), so avoid on multi-GB buffers in hot paths (use identity()).
  Hash128 content_hash() const;

  /// Cheap fingerprint: equals content_hash() agreement for buffers created
  /// through the same path (synthetic: hashed descriptor; dense: content
  /// hash computed once and cached).
  Hash128 identity() const;

  /// Logical byte-wise equality. Fast paths: same representation/descriptor.
  bool content_equals(const Buffer& other) const;

  /// Direct access to dense storage. Requires !is_synthetic().
  std::span<const std::byte> dense_span() const;

  /// The synthetic stream's byte at absolute stream position `pos`.
  static std::byte synthetic_byte(uint64_t seed, uint64_t pos);

 private:
  Buffer(std::shared_ptr<const Bytes> data, size_t offset, size_t size,
         uint64_t seed)
      : data_(std::move(data)), offset_(offset), size_(size), seed_(seed) {}

  std::shared_ptr<const Bytes> data_;  // null => synthetic (or empty)
  size_t offset_ = 0;                  // into dense storage or synthetic stream
  size_t size_ = 0;
  uint64_t seed_ = 0;
  mutable std::shared_ptr<const Hash128> cached_hash_;
};

}  // namespace evostore::common
