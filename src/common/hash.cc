#include "common/hash.h"

namespace evostore::common {

uint64_t fnv1a64(const void* data, size_t len, uint64_t seed) {
  constexpr uint64_t kPrime = 0x100000001b3ULL;
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  // Process 8 bytes per round to keep the loop cheap; mix the tail bytewise.
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    uint64_t word;
    std::memcpy(&word, p + i, 8);
    h = (h ^ word) * kPrime;
    h = (h ^ (h >> 47)) * kPrime;
  }
  for (; i < len; ++i) {
    h = (h ^ p[i]) * kPrime;
  }
  return mix64(h);
}

std::string Hash128::hex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(32, '0');
  uint64_t parts[2] = {hi, lo};
  for (int part = 0; part < 2; ++part) {
    for (int nibble = 0; nibble < 16; ++nibble) {
      out[part * 16 + nibble] =
          kDigits[(parts[part] >> (60 - 4 * nibble)) & 0xf];
    }
  }
  return out;
}

Hash128 hash128_bytes(const void* data, size_t len, uint64_t seed) {
  Hasher128 h(seed);
  h.bytes(std::span<const std::byte>(static_cast<const std::byte*>(data), len));
  return h.finish();
}

}  // namespace evostore::common
