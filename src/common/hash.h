// Hashing primitives used across EvoStore.
//
// Two families:
//  - fast 64-bit mixing / streaming FNV-1a for hash tables and placement;
//  - 128-bit content hashes (`Hash128`) for canonical layer identities and
//    tensor-content fingerprints, where accidental collisions must be
//    negligible across tens of millions of objects.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <span>
#include <string>
#include <string_view>

namespace evostore::common {

/// SplitMix64 finalizer: a strong, cheap 64-bit mixer.
constexpr uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combine two 64-bit hashes (order-sensitive).
constexpr uint64_t hash_combine(uint64_t seed, uint64_t v) {
  return mix64(seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2)));
}

/// Streaming FNV-1a over raw bytes.
uint64_t fnv1a64(const void* data, size_t len, uint64_t seed = 0xcbf29ce484222325ULL);

inline uint64_t fnv1a64(std::string_view s, uint64_t seed = 0xcbf29ce484222325ULL) {
  return fnv1a64(s.data(), s.size(), seed);
}

/// 128-bit hash value. Totally ordered so it can key ordered containers and
/// be formatted deterministically.
struct Hash128 {
  uint64_t hi = 0;
  uint64_t lo = 0;

  friend auto operator<=>(const Hash128&, const Hash128&) = default;

  bool is_zero() const { return hi == 0 && lo == 0; }

  /// Lowercase 32-char hex, hi first.
  std::string hex() const;
};

/// Hash a byte range into 128 bits (two decorrelated FNV/mix streams).
Hash128 hash128_bytes(const void* data, size_t len, uint64_t seed = 0);

inline Hash128 hash128_bytes(std::span<const std::byte> bytes, uint64_t seed = 0) {
  return hash128_bytes(bytes.data(), bytes.size(), seed);
}
inline Hash128 hash128_str(std::string_view s, uint64_t seed = 0) {
  return hash128_bytes(s.data(), s.size(), seed);
}

/// Incremental 128-bit hasher for structured content. Feed scalars and byte
/// ranges in a canonical order; the result is independent of how the input
/// was chunked only if the same sequence of typed appends is used (this is a
/// structural hash, not a raw byte hash).
class Hasher128 {
 public:
  explicit Hasher128(uint64_t seed = 0) : a_(mix64(seed ^ kSeedA)), b_(mix64(seed ^ kSeedB)) {}

  Hasher128& u64(uint64_t v) {
    a_ = hash_combine(a_, v);
    b_ = hash_combine(b_, ~v);
    return *this;
  }
  Hasher128& i64(int64_t v) { return u64(static_cast<uint64_t>(v)); }
  Hasher128& f64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return u64(bits);
  }
  Hasher128& str(std::string_view s) {
    u64(s.size());
    a_ = fnv1a64(s, a_);
    b_ = fnv1a64(s, mix64(b_));
    return *this;
  }
  Hasher128& bytes(std::span<const std::byte> s) {
    u64(s.size());
    a_ = fnv1a64(s.data(), s.size(), a_);
    b_ = fnv1a64(s.data(), s.size(), mix64(b_));
    return *this;
  }
  Hasher128& h128(const Hash128& h) { return u64(h.hi), u64(h.lo), *this; }

  Hash128 finish() const { return {mix64(a_), mix64(b_)}; }

 private:
  static constexpr uint64_t kSeedA = 0x243f6a8885a308d3ULL;  // pi digits
  static constexpr uint64_t kSeedB = 0x13198a2e03707344ULL;
  uint64_t a_;
  uint64_t b_;
};

}  // namespace evostore::common

template <>
struct std::hash<evostore::common::Hash128> {
  size_t operator()(const evostore::common::Hash128& h) const noexcept {
    return static_cast<size_t>(h.hi ^ evostore::common::mix64(h.lo));
  }
};
