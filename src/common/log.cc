#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace evostore::common {

namespace {

LogLevel initial_level() {
  const char* env = std::getenv("EVOSTORE_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::atomic<LogLevel>& level_storage() {
  static std::atomic<LogLevel> level{initial_level()};
  return level;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kOff: return "?";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return level_storage().load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  level_storage().store(level, std::memory_order_relaxed);
}

void log_message(LogLevel level, std::string_view file, int line,
                 const std::string& msg) {
  if (level < log_level()) return;
  // Strip directories from the file path for readability.
  size_t slash = file.find_last_of('/');
  if (slash != std::string_view::npos) file = file.substr(slash + 1);
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[%s %.*s:%d] %s\n", level_tag(level),
               static_cast<int>(file.size()), file.data(), line, msg.c_str());
}

}  // namespace evostore::common
