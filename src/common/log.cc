#include "common/log.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace evostore::common {

namespace {

LogLevel initial_level() {
  const char* env = std::getenv("EVOSTORE_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  return parse_log_level(env).value_or(LogLevel::kWarn);
}

std::atomic<LogLevel>& level_storage() {
  static std::atomic<LogLevel> level{initial_level()};
  return level;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kOff: return "?";
  }
  return "?";
}

// Registered time source. Written from single-threaded setup code (the
// simulation's constructor); reads race-free enough for logging via atomics.
std::atomic<LogTimeFn> g_time_fn{nullptr};
std::atomic<void*> g_time_ctx{nullptr};

}  // namespace

LogLevel log_level() { return level_storage().load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  level_storage().store(level, std::memory_order_relaxed);
}

std::optional<LogLevel> parse_log_level(std::string_view name) {
  auto equals_ci = [](std::string_view a, std::string_view b) {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (std::tolower(static_cast<unsigned char>(a[i])) !=
          std::tolower(static_cast<unsigned char>(b[i]))) {
        return false;
      }
    }
    return true;
  };
  if (equals_ci(name, "debug")) return LogLevel::kDebug;
  if (equals_ci(name, "info")) return LogLevel::kInfo;
  if (equals_ci(name, "warn")) return LogLevel::kWarn;
  if (equals_ci(name, "error")) return LogLevel::kError;
  if (equals_ci(name, "off")) return LogLevel::kOff;
  return std::nullopt;
}

void set_log_time_source(LogTimeFn fn, void* ctx) {
  g_time_fn.store(fn, std::memory_order_relaxed);
  g_time_ctx.store(ctx, std::memory_order_relaxed);
}

void* log_time_ctx() { return g_time_ctx.load(std::memory_order_relaxed); }

unsigned log_thread_id() {
  static std::atomic<unsigned> next{0};
  thread_local unsigned id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void log_message(LogLevel level, std::string_view file, int line,
                 const std::string& msg) {
  if (level < log_level()) return;
  // Strip directories from the file path for readability.
  size_t slash = file.find_last_of('/');
  if (slash != std::string_view::npos) file = file.substr(slash + 1);
  char when[32];
  when[0] = '\0';
  LogTimeFn fn = g_time_fn.load(std::memory_order_relaxed);
  if (fn != nullptr) {
    std::snprintf(when, sizeof(when), " %.6f",
                  fn(g_time_ctx.load(std::memory_order_relaxed)));
  }
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[%s%s t%u %.*s:%d] %s\n", level_tag(level), when,
               log_thread_id(), static_cast<int>(file.size()), file.data(),
               line, msg.c_str());
}

}  // namespace evostore::common
