// Minimal leveled logging. Defaults to warnings+errors only so tests and
// benchmarks stay quiet; set EVOSTORE_LOG=debug|info|warn|error (any case)
// or call set_log_level() to change at runtime.
//
// Each line carries a short thread id (`t0`, `t1`, ... in first-log order)
// and, when a time source is registered, the current simulated time — so
// interleaved provider/client logs from a simulation can be correlated with
// trace spans and with each other.
#pragma once

#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace evostore::common {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

LogLevel log_level();
void set_log_level(LogLevel level);

/// Parse "debug" / "info" / "warn" / "error" / "off", case-insensitively
/// ("DEBUG", "Warn", ... all work). nullopt for anything else.
std::optional<LogLevel> parse_log_level(std::string_view name);

/// When registered, every log line is prefixed with `fn(ctx)` — the current
/// time in seconds (the simulation registers its clock here). Pass
/// (nullptr, nullptr) to clear.
using LogTimeFn = double (*)(void*);
void set_log_time_source(LogTimeFn fn, void* ctx);
/// The ctx currently registered (nullptr when none): lets an owner being
/// destroyed clear only its own registration and leave a newer one alone.
void* log_time_ctx();

/// Small sequential id of the calling thread, assigned on first use (the
/// first logging thread is 0). Stable for the thread's lifetime.
unsigned log_thread_id();

/// Emit one log line (thread-safe, single write to stderr).
void log_message(LogLevel level, std::string_view file, int line,
                 const std::string& msg);

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogLine() { log_message(level_, file_, line_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace evostore::common

#define EVO_LOG(level)                                                  \
  if (::evostore::common::log_level() <= ::evostore::common::LogLevel::level) \
  ::evostore::common::detail::LogLine(                                  \
      ::evostore::common::LogLevel::level, __FILE__, __LINE__)

#define EVO_DEBUG EVO_LOG(kDebug)
#define EVO_INFO EVO_LOG(kInfo)
#define EVO_WARN EVO_LOG(kWarn)
#define EVO_ERROR EVO_LOG(kError)
