// Minimal leveled logging. Defaults to warnings+errors only so tests and
// benchmarks stay quiet; set EVOSTORE_LOG=debug|info|warn|error or call
// set_log_level() to change at runtime.
#pragma once

#include <sstream>
#include <string>

namespace evostore::common {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

LogLevel log_level();
void set_log_level(LogLevel level);

/// Emit one log line (thread-safe, single write to stderr).
void log_message(LogLevel level, std::string_view file, int line,
                 const std::string& msg);

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogLine() { log_message(level_, file_, line_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace evostore::common

#define EVO_LOG(level)                                                  \
  if (::evostore::common::log_level() <= ::evostore::common::LogLevel::level) \
  ::evostore::common::detail::LogLine(                                  \
      ::evostore::common::LogLevel::level, __FILE__, __LINE__)

#define EVO_DEBUG EVO_LOG(kDebug)
#define EVO_INFO EVO_LOG(kInfo)
#define EVO_WARN EVO_LOG(kWarn)
#define EVO_ERROR EVO_LOG(kError)
