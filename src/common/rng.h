// Deterministic pseudo-random number generation.
//
// All randomness in EvoStore (workload generation, search-space sampling,
// fitness-landscape noise, simulated timing jitter) flows through these
// generators so that every experiment is exactly reproducible from a seed.
// Header-only: the generators are tiny and hot.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>

#include "common/hash.h"

namespace evostore::common {

/// SplitMix64: used to seed Xoshiro and as a cheap stateless stream
/// (value i of stream s = SplitMix64(s).skip(i)).
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    return mix64_final(state_);
  }

  /// The i-th value of the stream without advancing (stateless access).
  static uint64_t at(uint64_t seed, uint64_t i) {
    return mix64_final(seed + (i + 1) * 0x9e3779b97f4a7c15ULL);
  }

 private:
  static constexpr uint64_t mix64_final(uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  uint64_t state_;
};

/// Xoshiro256**: fast, high-quality general-purpose generator.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = uint64_t;

  explicit Xoshiro256(uint64_t seed = 0x9d2c5680u) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  uint64_t next() {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t below(uint64_t bound) {
    assert(bound > 0);
    // Lemire's multiply-shift rejection method (unbiased).
    uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<uint64_t>(m);
    if (low < bound) {
      uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t range(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(below(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Standard normal via Box-Muller (no state carried between calls).
  double normal() {
    double u1 = uniform();
    double u2 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Exponential with the given mean.
  double exponential(double mean) {
    double u = uniform();
    if (u < 1e-300) u = 1e-300;
    return -mean * std::log(u);
  }

  bool chance(double p) { return uniform() < p; }

 private:
  static constexpr uint64_t rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t s_[4];
};

}  // namespace evostore::common
