#include "common/serde.h"

namespace evostore::common {

namespace {
constexpr uint8_t kDenseTag = 0;
constexpr uint8_t kSyntheticTag = 1;
}  // namespace

void Serializer::buffer(const Buffer& b) {
  if (b.is_synthetic()) {
    u8(kSyntheticTag);
    // A sliced synthetic buffer has a nonzero base offset inside its stream;
    // re-expressing it as (seed, size) would change content, so serialize the
    // descriptor of the *slice* content by materializing in that rare case.
    // Slices created by Buffer::slice keep the parent's seed with an offset
    // we cannot represent, so we only fast-path offset-0 views.
    Buffer probe = b.slice(0, std::min<size_t>(b.size(), 8));
    Bytes head = probe.to_bytes();
    Bytes expect(head.size());
    for (size_t i = 0; i < expect.size(); ++i) {
      expect[i] = Buffer::synthetic_byte(b.seed(), i);
    }
    if (head == expect) {
      u64(b.seed());
      u64(b.size());
      return;
    }
    // Fall through to dense encoding for offset synthetic slices.
    Bytes content = b.to_bytes();
    out_.back() = static_cast<std::byte>(kDenseTag);
    bytes(content);
    return;
  }
  u8(kDenseTag);
  bytes(b.dense_span());
}

uint8_t Deserializer::u8() {
  if (!status_.ok() || pos_ >= data_.size()) {
    fail("u8 past end");
    return 0;
  }
  return static_cast<uint8_t>(data_[pos_++]);
}

double Deserializer::f64() {
  if (!status_.ok() || pos_ + 8 > data_.size()) {
    fail("f64 past end");
    return 0.0;
  }
  double v;
  std::memcpy(&v, data_.data() + pos_, 8);
  pos_ += 8;
  return v;
}

std::string Deserializer::str() {
  uint64_t n = checked_varint(UINT64_MAX);
  // NOTE: compare against the remaining byte count; `pos_ + n` could wrap.
  if (!status_.ok() || n > data_.size() - pos_) {
    fail("string past end");
    return {};
  }
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

Bytes Deserializer::bytes() {
  uint64_t n = checked_varint(UINT64_MAX);
  if (!status_.ok() || n > data_.size() - pos_) {
    fail("bytes past end");
    return {};
  }
  Bytes b(data_.begin() + static_cast<ptrdiff_t>(pos_),
          data_.begin() + static_cast<ptrdiff_t>(pos_ + n));
  pos_ += n;
  return b;
}

Buffer Deserializer::buffer() {
  uint8_t tag = u8();
  if (!ok()) return {};
  switch (tag) {
    case 0:
      return Buffer::dense(bytes());
    case 1: {
      uint64_t seed = u64();
      uint64_t size = u64();
      if (!ok()) return {};
      return Buffer::synthetic(size, seed);
    }
    default:
      fail("unknown buffer tag");
      return {};
  }
}

void Deserializer::skip(size_t n) {
  if (!status_.ok() || n > data_.size() - pos_) {
    fail("skip past end");
    pos_ = data_.size();
    return;
  }
  pos_ += n;
}

uint64_t Deserializer::checked_varint(uint64_t max) {
  if (!status_.ok()) return 0;  // sticky error: all later reads fail
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= data_.size()) {
      fail("varint past end");
      return 0;
    }
    auto byte = static_cast<uint8_t>(data_[pos_++]);
    if (shift == 63 && (byte & 0x7e) != 0) {
      fail("varint overflow");
      return 0;
    }
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
    if (shift > 63) {
      fail("varint too long");
      return 0;
    }
  }
  if (v > max) {
    fail("varint exceeds field width");
    return 0;
  }
  return v;
}

}  // namespace evostore::common
