// Compact binary serialization used for wire messages (RPC payloads), stored
// metadata (owner maps, architecture graphs), and the H5-like file format.
//
// Encoding: LEB128 varints for unsigned integers and lengths, zig-zag for
// signed, raw little-endian for doubles, length-prefixed byte strings.
// `Deserializer` is sticky-error: after a malformed read every subsequent
// read returns a default value and `status()` reports the first corruption,
// so wire-decoding code stays linear (no per-field branching).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/buffer.h"
#include "common/status.h"

namespace evostore::common {

class Serializer {
 public:
  Serializer() = default;

  void u8(uint8_t v) { out_.push_back(static_cast<std::byte>(v)); }
  void u32(uint32_t v) { varint(v); }
  void u64(uint64_t v) { varint(v); }
  void i64(int64_t v) { varint(zigzag(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void f64(double v) {
    std::byte raw[8];
    std::memcpy(raw, &v, 8);
    out_.insert(out_.end(), raw, raw + 8);
  }
  void str(std::string_view s) {
    varint(s.size());
    const auto* p = reinterpret_cast<const std::byte*>(s.data());
    out_.insert(out_.end(), p, p + s.size());
  }
  void bytes(std::span<const std::byte> s) {
    varint(s.size());
    out_.insert(out_.end(), s.begin(), s.end());
  }
  /// Serialize a Buffer preserving its representation: synthetic buffers
  /// travel as (seed, size) descriptors, dense buffers as raw content.
  void buffer(const Buffer& b);

  /// Raw append with no length prefix (for framing composition).
  void raw(std::span<const std::byte> s) {
    out_.insert(out_.end(), s.begin(), s.end());
  }

  const Bytes& data() const& { return out_; }
  Bytes take() && { return std::move(out_); }
  size_t size() const { return out_.size(); }

 private:
  static uint64_t zigzag(int64_t v) {
    return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
  }
  void varint(uint64_t v) {
    while (v >= 0x80) {
      out_.push_back(static_cast<std::byte>((v & 0x7f) | 0x80));
      v >>= 7;
    }
    out_.push_back(static_cast<std::byte>(v));
  }
  Bytes out_;
};

class Deserializer {
 public:
  explicit Deserializer(std::span<const std::byte> data) : data_(data) {}

  uint8_t u8();
  uint32_t u32() { return static_cast<uint32_t>(checked_varint(UINT32_MAX)); }
  uint64_t u64() { return checked_varint(UINT64_MAX); }
  int64_t i64() { return unzigzag(checked_varint(UINT64_MAX)); }
  bool boolean() { return u8() != 0; }
  double f64();
  std::string str();
  Bytes bytes();
  Buffer buffer();

  /// Remaining unread bytes (view; valid while the source span lives).
  std::span<const std::byte> remaining() const { return data_.subspan(pos_); }
  size_t position() const { return pos_; }
  void skip(size_t n);
  bool at_end() const { return pos_ == data_.size(); }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Validate a decoded element count against the bytes actually left:
  /// every element needs at least `min_bytes_each` more input. Fails the
  /// stream and returns false on a lying length prefix — callers use this
  /// before reserving/resizing so malformed input can never force a huge
  /// allocation.
  bool check_count(uint64_t n, size_t min_bytes_each = 1) {
    if (!status_.ok()) return false;
    if (n > (data_.size() - pos_) / std::max<size_t>(min_bytes_each, 1)) {
      fail("count exceeds remaining input");
      return false;
    }
    return true;
  }

  /// Inject a corruption failure from a message decoder that detects a
  /// semantically invalid value the primitive readers cannot see — an
  /// unknown enum tag, an impossible field combination. Joins the same
  /// sticky-error path as malformed primitives: every later read returns a
  /// default and `status()` reports the first failure.
  void corrupt(std::string msg) { fail(std::move(msg)); }

  /// Ok iff decoding succeeded and all input was consumed.
  Status finish() const {
    if (!status_.ok()) return status_;
    if (!at_end()) return Status::Corruption("trailing bytes after decode");
    return Status::Ok();
  }

 private:
  uint64_t checked_varint(uint64_t max);
  static int64_t unzigzag(uint64_t v) {
    return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
  }
  void fail(std::string msg) {
    if (status_.ok()) status_ = Status::Corruption(std::move(msg));
  }

  std::span<const std::byte> data_;
  size_t pos_ = 0;
  Status status_;
};

}  // namespace evostore::common
