#include "common/status.h"

namespace evostore::common {

std::string_view error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "Ok";
    case ErrorCode::kNotFound: return "NotFound";
    case ErrorCode::kAlreadyExists: return "AlreadyExists";
    case ErrorCode::kInvalidArgument: return "InvalidArgument";
    case ErrorCode::kFailedPrecondition: return "FailedPrecondition";
    case ErrorCode::kOutOfRange: return "OutOfRange";
    case ErrorCode::kCorruption: return "Corruption";
    case ErrorCode::kIoError: return "IoError";
    case ErrorCode::kUnavailable: return "Unavailable";
    case ErrorCode::kInternal: return "Internal";
    case ErrorCode::kDeadlineExceeded: return "DeadlineExceeded";
    case ErrorCode::kUnimplemented: return "Unimplemented";
  }
  return "Unknown";
}

std::string Status::to_string() const {
  if (ok()) return "Ok";
  std::string out(error_code_name(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace evostore::common
