// Lightweight error handling for EvoStore.
//
// EvoStore avoids exceptions on its data paths (they interact badly with the
// coroutine-based simulation scheduler and with HPC-style hot loops).
// Instead, fallible operations return `Status` or `Result<T>`.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace evostore::common {

/// Error categories, deliberately coarse: callers branch on "what kind of
/// failure", not on exact causes (those live in the message).
enum class ErrorCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kFailedPrecondition,
  kOutOfRange,
  kCorruption,
  kIoError,
  kUnavailable,
  kInternal,
  // Appended (never reorder: codes are serialized as integers on the wire).
  kDeadlineExceeded,
  kUnimplemented,
};

/// True for failures a caller may transparently retry: the operation may
/// succeed against the same node later (it was down, the message was lost,
/// or the deadline fired). Permanent errors (NotFound, InvalidArgument,
/// Corruption, ...) are excluded.
inline bool is_retryable(ErrorCode code) {
  return code == ErrorCode::kUnavailable || code == ErrorCode::kDeadlineExceeded;
}

/// Human-readable name of an error code ("NotFound", ...).
std::string_view error_code_name(ErrorCode code);

/// A success-or-error value. Cheap to copy on success (no allocation).
class Status {
 public:
  Status() = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string m) { return {ErrorCode::kNotFound, std::move(m)}; }
  static Status AlreadyExists(std::string m) { return {ErrorCode::kAlreadyExists, std::move(m)}; }
  static Status InvalidArgument(std::string m) { return {ErrorCode::kInvalidArgument, std::move(m)}; }
  static Status FailedPrecondition(std::string m) { return {ErrorCode::kFailedPrecondition, std::move(m)}; }
  static Status OutOfRange(std::string m) { return {ErrorCode::kOutOfRange, std::move(m)}; }
  static Status Corruption(std::string m) { return {ErrorCode::kCorruption, std::move(m)}; }
  static Status IoError(std::string m) { return {ErrorCode::kIoError, std::move(m)}; }
  static Status Unavailable(std::string m) { return {ErrorCode::kUnavailable, std::move(m)}; }
  static Status Internal(std::string m) { return {ErrorCode::kInternal, std::move(m)}; }
  static Status DeadlineExceeded(std::string m) { return {ErrorCode::kDeadlineExceeded, std::move(m)}; }
  static Status Unimplemented(std::string m) { return {ErrorCode::kUnimplemented, std::move(m)}; }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "NotFound: no such model".
  std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

/// A value of type T, or the Status explaining why there is none.
template <typename T>
class Result {
 public:
  Result(T value) : var_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : var_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(var_).ok() && "Result<T> must not hold an Ok status");
  }

  bool ok() const { return std::holds_alternative<T>(var_); }
  explicit operator bool() const { return ok(); }

  const Status& status() const {
    static const Status ok_status;
    return ok() ? ok_status : std::get<Status>(var_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(var_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(var_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(var_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T value_or(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Status> var_;
};

/// Propagate a non-Ok status out of the enclosing function.
#define EVO_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::evostore::common::Status _evo_st = (expr);   \
    if (!_evo_st.ok()) return _evo_st;             \
  } while (0)

/// Assign from a Result<T> or propagate its error.
#define EVO_ASSIGN_OR_RETURN(lhs, expr)            \
  auto _evo_res_##__LINE__ = (expr);               \
  if (!_evo_res_##__LINE__.ok()) return _evo_res_##__LINE__.status(); \
  lhs = std::move(_evo_res_##__LINE__).value()

}  // namespace evostore::common
