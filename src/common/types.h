// Core identifier types shared across the repository layers.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/hash.h"

namespace evostore::common {

/// Identifies a DL model stored in (or being prepared for) the repository.
/// 64 bits; allocated by clients from (client id, local counter) so ids are
/// unique without coordination.
struct ModelId {
  uint64_t value = 0;

  static constexpr ModelId invalid() { return ModelId{0}; }
  bool valid() const { return value != 0; }

  friend auto operator<=>(const ModelId&, const ModelId&) = default;
  // Appended, not `"m" + ...`: operator+(const char*, string&&) trips GCC
  // 12's -Wrestrict false positive (PR105651) under -O2 -Werror.
  std::string to_string() const {
    std::string s = "m";
    s += std::to_string(value);
    return s;
  }

  /// Compose a globally unique id from an allocator (client/worker) id and
  /// its local sequence number.
  static ModelId make(uint32_t allocator, uint32_t seq) {
    return ModelId{(static_cast<uint64_t>(allocator) << 32) | seq};
  }
};

/// Index of a leaf-layer vertex inside a flattened architecture graph.
/// Vertex ids are assigned by deterministic BFS during flattening.
using VertexId = uint32_t;

/// Addresses one leaf layer's consolidated parameter segment: the segment is
/// stored under the model that *owns* it (most recent ancestor that modified
/// it). This is the 128-bit unit the paper's owner maps are built from.
struct SegmentKey {
  ModelId owner;
  VertexId vertex = 0;

  friend auto operator<=>(const SegmentKey&, const SegmentKey&) = default;
  std::string to_string() const {
    return owner.to_string() + "/v" + std::to_string(vertex);
  }
};

/// Identifies a provider (data+metadata server) in the deployment.
using ProviderId = uint32_t;

/// Identifies a node in the simulated cluster fabric.
using NodeId = uint32_t;

}  // namespace evostore::common

template <>
struct std::hash<evostore::common::ModelId> {
  size_t operator()(const evostore::common::ModelId& id) const noexcept {
    return static_cast<size_t>(evostore::common::mix64(id.value));
  }
};

template <>
struct std::hash<evostore::common::SegmentKey> {
  size_t operator()(const evostore::common::SegmentKey& k) const noexcept {
    return static_cast<size_t>(
        evostore::common::hash_combine(k.owner.value, k.vertex));
  }
};
