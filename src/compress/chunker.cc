#include "compress/chunker.h"

#include <algorithm>
#include <array>

#include "common/hash.h"

namespace evostore::compress {

namespace {

// 256 pseudo-random gear values, fixed forever: chunk boundaries are part of
// the stored format (a provider restart must recompute identical digests for
// identical manifests), so the table is derived from mix64 with a pinned
// salt rather than anything configuration- or build-dependent.
std::array<uint64_t, 256> make_gear() {
  std::array<uint64_t, 256> g{};
  for (size_t i = 0; i < g.size(); ++i) {
    g[i] = common::mix64(0x9e3779b97f4a7c15ULL ^ (i * 0xff51afd7ed558ccdULL));
  }
  return g;
}

const std::array<uint64_t, 256>& gear() {
  static const std::array<uint64_t, 256> table = make_gear();
  return table;
}

// Largest power of two <= v (v >= 1).
uint64_t floor_pow2(uint64_t v) {
  uint64_t p = 1;
  while (p * 2 <= v) p *= 2;
  return p;
}

}  // namespace

const uint64_t* gear_table() { return gear().data(); }

std::vector<size_t> chunk_boundaries(std::span<const std::byte> data,
                                     const ChunkerConfig& config) {
  std::vector<size_t> ends;
  if (data.empty()) return ends;
  if (!config.valid()) {
    ends.push_back(data.size());
    return ends;
  }
  // A boundary fires when the rolling hash's `bits` low bits are zero, where
  // 2^bits is the power-of-two floor of (avg - min): the expected gap after
  // the minimum is ~avg_bytes overall.
  uint64_t mask = floor_pow2(std::max<uint64_t>(
                      1, config.avg_bytes - config.min_bytes)) -
                  1;
  const auto& g = gear();
  size_t start = 0;
  while (start < data.size()) {
    size_t remaining = data.size() - start;
    if (remaining <= config.min_bytes) {
      // Tail shorter than the minimum: one final chunk.
      ends.push_back(data.size());
      break;
    }
    size_t limit = std::min(remaining, config.max_bytes);
    uint64_t h = 0;
    size_t cut = limit;  // force-split fallback
    for (size_t i = 0; i < limit; ++i) {
      h = (h << 1) + g[static_cast<uint8_t>(data[start + i])];
      if (i + 1 >= config.min_bytes && (h & mask) == 0) {
        cut = i + 1;
        break;
      }
    }
    start += cut;
    ends.push_back(start);
  }
  return ends;
}

}  // namespace evostore::compress
