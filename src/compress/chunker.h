// Content-defined chunking (Gear/FastCDC-style rolling hash).
//
// `chunk_boundaries` splits a byte stream into variable-size chunks whose cut
// points depend only on the local content: a window of bytes rolls through a
// Gear hash and a boundary is declared where the hash's low bits are zero.
// Because the decision is local, inserting or deleting bytes shifts only the
// chunks touching the edit — everything downstream of the next surviving cut
// point realigns, which is what makes chunk-level dedup robust against
// content shifts (the property tests/compress/chunker_test.cc pins down).
//
// Parameters follow the FastCDC convention: a hard minimum (no boundary is
// even considered before `min_bytes`), a target average set by the number of
// low bits required to be zero (`avg_bytes`, rounded to a power of two), and
// a hard maximum that force-splits pathological content (e.g. all zeros,
// which never produces a natural cut).
//
// In a real deployment chunks cover tensor content and the useful range is
// ~4-64 KiB (ZipLLM/TStore territory). In this simulation, segment payloads
// are compact serialized descriptors standing in for that content, so the
// benches and the provider's simulation-scale configuration use the same
// algorithm with proportionally smaller sizes — see DESIGN.md §13.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace evostore::compress {

struct ChunkerConfig {
  /// No cut point before this many bytes; also the threshold below which a
  /// payload is not worth chunking at all (callers keep it inline).
  size_t min_bytes = 4 * 1024;
  /// Target mean chunk size. Rounded down to a power of two to derive the
  /// boundary mask; must be >= min_bytes.
  size_t avg_bytes = 16 * 1024;
  /// Hard force-split size (content with no natural boundaries).
  size_t max_bytes = 64 * 1024;

  /// True when the parameters are self-consistent (0 < min <= avg <= max).
  bool valid() const {
    return min_bytes > 0 && min_bytes <= avg_bytes && avg_bytes <= max_bytes;
  }
};

/// Cut the stream into content-defined chunks. Returns the *end offset* of
/// every chunk, ascending, with the last entry equal to `data.size()`; an
/// empty input yields no chunks. Deterministic: the same bytes and config
/// always produce the same boundaries (the gear table is a fixed constant).
/// An invalid config degenerates to one whole-stream chunk.
std::vector<size_t> chunk_boundaries(std::span<const std::byte> data,
                                     const ChunkerConfig& config);

/// The rolling-hash gear table (exposed for tests; content is a fixed
/// SplitMix64 expansion, identical in every build).
const uint64_t* gear_table();

}  // namespace evostore::compress
