#include "compress/codec.h"

namespace evostore::compress {

namespace {

using common::Deserializer;
using common::Result;
using common::Serializer;

class RawCodec final : public Codec {
 public:
  CodecId id() const override { return CodecId::kRaw; }
  std::string_view name() const override { return "raw"; }

  Result<uint64_t> encode(const model::Segment& in, const model::Segment*,
                          Serializer& s) const override {
    in.serialize(s);
    return static_cast<uint64_t>(in.nbytes());
  }

  Result<model::Segment> decode(Deserializer& d, const model::Segment*,
                                uint64_t) const override {
    auto seg = model::Segment::deserialize(d);
    if (!d.ok()) return d.status();
    return seg;
  }
};

}  // namespace

const Codec& raw_codec() {
  static RawCodec codec;
  return codec;
}

std::string_view codec_name(CodecId id) {
  switch (id) {
    case CodecId::kRaw:
      return "raw";
    case CodecId::kZeroRle:
      return "zero-rle";
    case CodecId::kDeltaVsAncestor:
      return "delta-vs-ancestor";
  }
  return "unknown";
}

void export_codec_stats(const CodecStatsTable& stats,
                        obs::MetricsRegistry& registry) {
  for (size_t i = 0; i < kCodecCount; ++i) {
    const CodecStats& s = stats[i];
    std::string prefix =
        "codec." + std::string(codec_name(static_cast<CodecId>(i))) + ".";
    registry.counter(prefix + "encodes")->add(s.encodes);
    registry.counter(prefix + "decodes")->add(s.decodes);
    registry.counter(prefix + "fallbacks")->add(s.fallbacks);
    registry.counter(prefix + "bytes_in")->add(s.bytes_in);
    registry.counter(prefix + "bytes_out")->add(s.bytes_out);
    registry.gauge(prefix + "ratio")->set(s.ratio());
  }
}

const Codec* codec_for(CodecId id) {
  switch (id) {
    case CodecId::kRaw:
      return &raw_codec();
    case CodecId::kZeroRle:
      return &zero_rle_codec();
    case CodecId::kDeltaVsAncestor:
      return &delta_codec();
  }
  return nullptr;
}

}  // namespace evostore::compress
