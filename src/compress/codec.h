// Pluggable tensor codecs for segment payloads.
//
// A `Codec` turns one `model::Segment` into a compact byte payload and back.
// The codec id travels in the `CompressedSegment` wire envelope, so providers
// store envelopes opaquely and any client that knows the registry can decode
// them. Codecs distinguish *logical* bytes (the tensor content a reader gets
// back) from *physical* bytes (what a real deployment would keep on its
// medium): synthetic buffers stay tiny descriptors in host memory either way,
// but their physical cost is still modelled honestly (a raw random stream
// does not compress; only content shared with a delta base does).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "common/serde.h"
#include "common/status.h"
#include "model/model.h"
#include "obs/metrics.h"
#include "sim/stats.h"

namespace evostore::compress {

enum class CodecId : uint8_t {
  kRaw = 0,
  kZeroRle = 1,
  kDeltaVsAncestor = 2,
};

inline constexpr size_t kCodecCount = 3;

std::string_view codec_name(CodecId id);

/// Array index of a codec id, or kCodecCount for out-of-range (hostile) ids.
inline constexpr size_t codec_index(CodecId id) {
  auto i = static_cast<size_t>(id);
  return i < kCodecCount ? i : kCodecCount;
}

class Codec {
 public:
  virtual ~Codec() = default;

  virtual CodecId id() const = 0;
  virtual std::string_view name() const = 0;

  /// True when encode/decode require the ancestor base segment.
  virtual bool needs_base() const { return false; }

  /// Append the encoding of `in` (against `base` for delta codecs) to `s`.
  /// Returns the physical byte count of the encoded tensor content — what a
  /// store keeping raw bytes verbatim would occupy (framing excluded,
  /// synthetic content priced at its logical size).
  virtual common::Result<uint64_t> encode(const model::Segment& in,
                                          const model::Segment* base,
                                          common::Serializer& s) const = 0;

  /// Decode a payload produced by encode. `base` must be the same segment
  /// content the encoder saw when `needs_base()`. `logical_bytes` is the
  /// envelope's declared decoded size: codecs must refuse to allocate past it
  /// so corrupt input can never force a huge allocation.
  virtual common::Result<model::Segment> decode(
      common::Deserializer& d, const model::Segment* base,
      uint64_t logical_bytes) const = 0;
};

/// Registry lookup; nullptr for unknown ids (corrupt or hostile input).
const Codec* codec_for(CodecId id);

// Singleton accessors (each codec lives in its own translation unit).
const Codec& raw_codec();
const Codec& zero_rle_codec();
const Codec& delta_codec();

/// Per-codec client-side counters: encode/decode volume, fallback count and
/// host wall-clock timings (sim/stats accumulators).
struct CodecStats {
  uint64_t encodes = 0;
  uint64_t decodes = 0;
  /// Encodes that fell back to Raw because the ratio was poor.
  uint64_t fallbacks = 0;
  uint64_t bytes_in = 0;   // logical bytes entering encode
  uint64_t bytes_out = 0;  // physical bytes leaving encode
  sim::Accumulator encode_seconds;
  sim::Accumulator decode_seconds;

  double ratio() const {
    return bytes_in > 0
               ? static_cast<double>(bytes_out) / static_cast<double>(bytes_in)
               : 1.0;
  }
};
using CodecStatsTable = std::array<CodecStats, kCodecCount>;

/// Snapshot `stats` into `registry` as per-codec counters and ratio gauges
/// (`codec.<name>.encodes/decodes/fallbacks/bytes_in/bytes_out/ratio`).
/// Deliberately excludes the encode/decode wall-clock accumulators: they are
/// host-time measurements and would make an exported metrics file differ
/// between two otherwise identical runs.
void export_codec_stats(const CodecStatsTable& stats,
                        obs::MetricsRegistry& registry);

/// Live per-codec stored aggregate (provider-side bookkeeping, surfaced in
/// wire stat responses).
struct CodecUsage {
  uint64_t segments = 0;
  uint64_t logical_bytes = 0;
  uint64_t physical_bytes = 0;
};
using CodecUsageTable = std::array<CodecUsage, kCodecCount>;

}  // namespace evostore::compress
