#include "compress/compressed_segment.h"

#include <chrono>
#include <string>
#include <utility>

namespace evostore::compress {

namespace {

using common::Result;
using common::Status;

// Host-side codec profiling: CodecStats::{encode,decode}_seconds are
// excluded from every exported artifact, so wall time never reaches
// deterministic output (export_codec_stats drops the timing fields).
double seconds_since(std::chrono::steady_clock::time_point start) {
  // evo-lint: suppress(EVO-DET-001) host-only codec profiling, not exported
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

void CompressedSegment::serialize(common::Serializer& s) const {
  s.u8(static_cast<uint8_t>(kind));
  s.u8(static_cast<uint8_t>(codec));
  s.u64(logical_bytes);
  s.u64(physical_bytes);
  s.boolean(has_base);
  if (has_base) {
    s.u64(base.owner.value);
    s.u32(base.vertex);
  }
  if (kind == EnvelopeKind::kChunked) {
    s.u64(chunks.size());
    for (const ChunkRef& c : chunks) {
      s.u64(c.digest.hi);
      s.u64(c.digest.lo);
      s.u32(c.bytes);
    }
  } else {
    s.bytes(payload);
  }
}

CompressedSegment CompressedSegment::deserialize(common::Deserializer& d) {
  CompressedSegment env;
  uint8_t kind = d.u8();
  if (d.ok() && kind >= kEnvelopeKindCount) {
    // Defined forward-compatibility error: a reader that does not know this
    // envelope kind cannot interpret the remainder of the record.
    d.corrupt("unknown envelope kind " + std::to_string(kind));
    return env;
  }
  env.kind = static_cast<EnvelopeKind>(kind);
  uint8_t codec = d.u8();
  if (d.ok() && codec_index(static_cast<CodecId>(codec)) >= kCodecCount) {
    d.corrupt("unknown codec id " + std::to_string(codec));
    return env;
  }
  env.codec = static_cast<CodecId>(codec);
  env.logical_bytes = d.u64();
  env.physical_bytes = d.u64();
  env.has_base = d.boolean();
  if (env.has_base) {
    env.base.owner.value = d.u64();
    env.base.vertex = d.u32();
  }
  if (env.kind == EnvelopeKind::kChunked) {
    uint64_t n = d.u64();
    // >= hi + lo + size bytes per manifest entry.
    if (!d.check_count(n, 3)) return env;
    env.chunks.reserve(n);
    for (uint64_t i = 0; i < n && d.ok(); ++i) {
      ChunkRef c;
      c.digest.hi = d.u64();
      c.digest.lo = d.u64();
      c.bytes = d.u32();
      env.chunks.push_back(c);
    }
  } else {
    env.payload = d.bytes();
  }
  return env;
}

Result<CompressedSegment> compress_segment(const model::Segment& seg,
                                           CodecId preferred,
                                           const model::Segment* base,
                                           const common::SegmentKey* base_key,
                                           CodecStatsTable* stats) {
  if (codec_for(preferred) == nullptr) {
    return Status::InvalidArgument("unknown codec id");
  }
  CodecId attempted = preferred;
  if (attempted == CodecId::kDeltaVsAncestor &&
      (base == nullptr || base_key == nullptr)) {
    attempted = CodecId::kRaw;  // no ancestor content to delta against
  }
  const Codec& codec = *codec_for(attempted);

  // evo-lint: suppress(EVO-DET-001) host-only codec profiling, not exported
  auto start = std::chrono::steady_clock::now();
  CompressedSegment env;
  env.logical_bytes = seg.nbytes();
  common::Serializer payload;
  auto physical =
      codec.encode(seg, codec.needs_base() ? base : nullptr, payload);
  if (!physical.ok()) return physical.status();

  bool fell_back =
      attempted != CodecId::kRaw &&
      static_cast<double>(*physical) >=
          kCodecFallbackRatio * static_cast<double>(env.logical_bytes);
  if (fell_back) {
    common::Serializer raw;
    physical = raw_codec().encode(seg, nullptr, raw);
    if (!physical.ok()) return physical.status();
    payload = std::move(raw);
  }
  env.codec = fell_back ? CodecId::kRaw : attempted;
  env.physical_bytes = *physical;
  if (env.codec == CodecId::kDeltaVsAncestor) {
    env.has_base = true;
    env.base = *base_key;
  }
  env.payload = std::move(payload).take();

  if (stats != nullptr) {
    auto& cs = (*stats)[codec_index(preferred)];
    ++cs.encodes;
    if (fell_back || attempted != preferred) ++cs.fallbacks;
    cs.bytes_in += env.logical_bytes;
    cs.bytes_out += env.physical_bytes;
    cs.encode_seconds.add(seconds_since(start));
  }
  return env;
}

Result<model::Segment> decompress_segment(const CompressedSegment& env,
                                          const model::Segment* base,
                                          CodecStatsTable* stats) {
  if (env.kind != EnvelopeKind::kInline) {
    // A manifest is only meaningful to the provider-side chunk store that
    // minted it; decoding requires the reassembled inline payload.
    return Status::InvalidArgument("chunked envelope not reassembled");
  }
  const Codec* codec = codec_for(env.codec);
  if (codec == nullptr) {
    return Status::Corruption("unknown codec id in envelope");
  }
  if (codec->needs_base()) {
    if (!env.has_base) {
      return Status::Corruption("delta envelope missing base key");
    }
    if (base == nullptr) {
      return Status::InvalidArgument("delta base segment not resolved");
    }
  }
  // evo-lint: suppress(EVO-DET-001) host-only codec profiling, not exported
  auto start = std::chrono::steady_clock::now();
  common::Deserializer d(env.payload);
  auto seg =
      codec->decode(d, codec->needs_base() ? base : nullptr, env.logical_bytes);
  if (!seg.ok()) return seg;
  EVO_RETURN_IF_ERROR(d.finish());
  if (seg->nbytes() != env.logical_bytes) {
    return Status::Corruption("decoded segment size mismatch");
  }
  if (stats != nullptr) {
    auto& cs = (*stats)[codec_index(env.codec)];
    ++cs.decodes;
    cs.decode_seconds.add(seconds_since(start));
  }
  return seg;
}

}  // namespace evostore::compress
