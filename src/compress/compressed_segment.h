// CompressedSegment: the self-describing envelope a segment travels and is
// stored in once a codec has run.
//
// Envelope layout (serde):
//   u8      codec id
//   varint  logical_bytes   — decoded tensor content size
//   varint  physical_bytes  — modeled storage/wire cost of the payload
//   bool    has_base
//   [key]   base SegmentKey (owner u64 + vertex u32), present iff has_base
//   bytes   codec payload
//
// A DeltaVsAncestor envelope depends on its base segment: the provider holds
// one reference on `base` for as long as the envelope lives, and releases it
// (possibly cascading) when the envelope is freed — see handle_modify_refs.
#pragma once

#include <cstdint>

#include "common/serde.h"
#include "common/status.h"
#include "common/types.h"
#include "compress/codec.h"
#include "model/model.h"

namespace evostore::compress {

struct CompressedSegment {
  CodecId codec = CodecId::kRaw;
  uint64_t logical_bytes = 0;
  uint64_t physical_bytes = 0;
  bool has_base = false;
  common::SegmentKey base{};  // meaningful iff has_base
  common::Bytes payload;

  friend bool operator==(const CompressedSegment&,
                         const CompressedSegment&) = default;

  void serialize(common::Serializer& s) const;
  /// Total: never crashes on corrupt input (the stream's status reports
  /// truncation; codec/size validity is checked by decompress_segment).
  static CompressedSegment deserialize(common::Deserializer& d);
};

/// A non-Raw encoding is kept only when physical < this fraction of logical;
/// otherwise the envelope falls back to Raw (and drops any base dependency).
inline constexpr double kCodecFallbackRatio = 0.95;

/// Encode `seg` with `preferred`. DeltaVsAncestor additionally needs the
/// ancestor's segment content (`base`) and its storage key (`base_key`);
/// without them, or when the ratio is poor, the result is a Raw envelope.
/// Stats (when given) are attributed to the *requested* codec, so ratio and
/// fallback counters describe what the policy achieved.
common::Result<CompressedSegment> compress_segment(
    const model::Segment& seg, CodecId preferred,
    const model::Segment* base = nullptr,
    const common::SegmentKey* base_key = nullptr,
    CodecStatsTable* stats = nullptr);

/// Decode an envelope. `base` must be the decoded content of `env.base` when
/// `env.has_base`. Validates the codec id and the declared logical size.
common::Result<model::Segment> decompress_segment(
    const CompressedSegment& env, const model::Segment* base = nullptr,
    CodecStatsTable* stats = nullptr);

}  // namespace evostore::compress
