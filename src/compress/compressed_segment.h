// CompressedSegment: the self-describing envelope a segment travels and is
// stored in once a codec has run.
//
// Envelope layout (serde):
//   u8      kind            — versioned envelope kind (EnvelopeKind); an
//                             unknown kind is a defined decode error, so a
//                             reader predating a kind fails cleanly instead
//                             of misparsing the remainder
//   u8      codec id
//   varint  logical_bytes   — decoded tensor content size
//   varint  physical_bytes  — modeled storage/wire cost of the payload
//   bool    has_base
//   [key]   base SegmentKey (owner u64 + vertex u32), present iff has_base
//   kInline:  bytes  codec payload
//   kChunked: varint chunk count, then per chunk (digest hi u64, digest lo
//             u64, size u32) — a manifest referencing a provider-side
//             content-addressed chunk store instead of carrying the payload
//
// A DeltaVsAncestor envelope depends on its base segment: the provider holds
// one reference on `base` for as long as the envelope lives, and releases it
// (possibly cascading) when the envelope is freed — see handle_modify_refs.
// A kChunked envelope additionally holds one reference on every manifest
// chunk in its provider's chunk store (storage/chunk_store.h); a client can
// never resolve a manifest, so chunked envelopes never travel on the
// client-facing wire — reads reassemble back to kInline first. The one
// exception is provider-to-provider traffic (kReplicate, driven by hint
// replay, drain, and repair): manifests travel as-is there, and the
// receiving replica pulls any chunk bodies it is missing content-addressed
// via kFetchChunks from whichever peer holds them.
#pragma once

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/serde.h"
#include "common/status.h"
#include "common/types.h"
#include "compress/codec.h"
#include "model/model.h"

namespace evostore::compress {

/// Envelope storage representation. New kinds append here; decoders reject
/// values >= kEnvelopeKindCount with a Corruption error (old readers fail
/// cleanly on envelopes from the future).
enum class EnvelopeKind : uint8_t {
  kInline = 0,   // payload bytes carried in the envelope
  kChunked = 1,  // payload replaced by a chunk-store manifest
};

inline constexpr uint8_t kEnvelopeKindCount = 2;

/// One manifest entry of a kChunked envelope: the chunk's content digest and
/// the number of payload bytes it covers (sizes let reassembly pre-validate
/// the manifest against logical expectations before touching the store).
struct ChunkRef {
  common::Hash128 digest;
  uint32_t bytes = 0;

  friend bool operator==(const ChunkRef&, const ChunkRef&) = default;
};

struct CompressedSegment {
  EnvelopeKind kind = EnvelopeKind::kInline;
  CodecId codec = CodecId::kRaw;
  uint64_t logical_bytes = 0;
  uint64_t physical_bytes = 0;
  bool has_base = false;
  common::SegmentKey base{};         // meaningful iff has_base
  common::Bytes payload;             // kInline only
  std::vector<ChunkRef> chunks;      // kChunked only

  /// Sum of manifest chunk sizes (the payload size a reassembly yields).
  uint64_t manifest_bytes() const {
    uint64_t n = 0;
    for (const ChunkRef& c : chunks) n += c.bytes;
    return n;
  }

  friend bool operator==(const CompressedSegment&,
                         const CompressedSegment&) = default;

  void serialize(common::Serializer& s) const;
  /// Total: never crashes on corrupt input. An unknown envelope kind or an
  /// out-of-range codec id fails the stream with a Corruption status (the
  /// defined forward-compatibility error); truncation is reported by the
  /// stream's own status. Codec/size validity beyond the id range is checked
  /// by decompress_segment.
  static CompressedSegment deserialize(common::Deserializer& d);
};

/// A non-Raw encoding is kept only when physical < this fraction of logical;
/// otherwise the envelope falls back to Raw (and drops any base dependency).
inline constexpr double kCodecFallbackRatio = 0.95;

/// Encode `seg` with `preferred`. DeltaVsAncestor additionally needs the
/// ancestor's segment content (`base`) and its storage key (`base_key`);
/// without them, or when the ratio is poor, the result is a Raw envelope.
/// Stats (when given) are attributed to the *requested* codec, so ratio and
/// fallback counters describe what the policy achieved. Always kInline —
/// chunking is a provider-side storage decision, not an encoding.
common::Result<CompressedSegment> compress_segment(
    const model::Segment& seg, CodecId preferred,
    const model::Segment* base = nullptr,
    const common::SegmentKey* base_key = nullptr,
    CodecStatsTable* stats = nullptr);

/// Decode an envelope. `base` must be the decoded content of `env.base` when
/// `env.has_base`. Validates the codec id and the declared logical size.
/// Rejects kChunked envelopes (resolve the manifest to kInline first).
common::Result<model::Segment> decompress_segment(
    const CompressedSegment& env, const model::Segment* base = nullptr,
    CodecStatsTable* stats = nullptr);

}  // namespace evostore::compress
