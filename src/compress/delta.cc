// DeltaVsAncestor: encode a segment as its difference against the same
// vertex's segment in the ancestor model (the TransferContext prefix payload
// on the write path, resolved via the envelope's base key on the read path).
//
// Per-tensor records, comparing slot i against base slot i:
//   kSame    — identities match: zero physical bytes, the decoder aliases the
//              base tensor's buffer. Identity comparison is O(1) for
//              synthetic tensors and a cached hash for dense ones, so this
//              path never materializes multi-GB content.
//   kDiff    — both dense with the same spec: byte-wise difference mod 256,
//              zero-RLE'd (unchanged bytes become zero runs).
//   kRawTensor — everything else (changed synthetic streams do not delta).
#include <cstring>

#include "compress/codec.h"
#include "compress/zero_rle.h"
#include "model/tensor.h"

namespace evostore::compress {

namespace {

using common::Bytes;
using common::Deserializer;
using common::Result;
using common::Serializer;
using common::Status;

constexpr uint8_t kSame = 0;
constexpr uint8_t kRawTensor = 1;
constexpr uint8_t kDiff = 2;

class DeltaVsAncestorCodec final : public Codec {
 public:
  CodecId id() const override { return CodecId::kDeltaVsAncestor; }
  std::string_view name() const override { return "delta-vs-ancestor"; }
  bool needs_base() const override { return true; }

  Result<uint64_t> encode(const model::Segment& in, const model::Segment* base,
                          Serializer& s) const override {
    if (base == nullptr) {
      return Status::InvalidArgument("delta codec requires a base segment");
    }
    uint64_t physical = 0;
    s.u64(in.tensors.size());
    for (size_t i = 0; i < in.tensors.size(); ++i) {
      const model::Tensor& t = in.tensors[i];
      const model::Tensor* bt =
          i < base->tensors.size() ? &base->tensors[i] : nullptr;
      t.spec().serialize(s);
      bool spec_match = bt != nullptr && t.spec() == bt->spec();
      if (spec_match && t.identity() == bt->identity()) {
        s.u8(kSame);
        continue;
      }
      if (spec_match && !t.data().is_synthetic() &&
          !bt->data().is_synthetic()) {
        auto cur = t.data().dense_span();
        auto prev = bt->data().dense_span();
        Bytes diff(cur.size());
        for (size_t j = 0; j < cur.size(); ++j) {
          diff[j] = static_cast<std::byte>(static_cast<uint8_t>(cur[j]) -
                                           static_cast<uint8_t>(prev[j]));
        }
        Bytes rle = zero_rle_encode(diff);
        if (rle.size() < t.nbytes()) {
          s.u8(kDiff);
          s.bytes(rle);
          physical += rle.size();
          continue;
        }
      }
      s.u8(kRawTensor);
      s.buffer(t.data());
      physical += t.nbytes();
    }
    return physical;
  }

  Result<model::Segment> decode(Deserializer& d, const model::Segment* base,
                                uint64_t logical_bytes) const override {
    if (base == nullptr) {
      return Status::InvalidArgument("delta codec requires a base segment");
    }
    uint64_t n = d.u64();
    if (!d.check_count(n)) return d.status();
    model::Segment out;
    out.tensors.reserve(n);
    uint64_t remaining = logical_bytes;
    for (uint64_t i = 0; i < n && d.ok(); ++i) {
      auto spec = model::TensorSpec::deserialize(d);
      uint8_t tag = d.u8();
      if (!d.ok()) return d.status();
      size_t nb = spec.nbytes();
      if (nb > remaining) {
        return Status::Corruption("delta tensor exceeds declared size");
      }
      const model::Tensor* bt =
          i < base->tensors.size() ? &base->tensors[i] : nullptr;
      switch (tag) {
        case kSame: {
          if (bt == nullptr || bt->spec() != spec) {
            return Status::Corruption("delta 'same' record has no base tensor");
          }
          out.tensors.emplace_back(std::move(spec), bt->data());
          break;
        }
        case kRawTensor: {
          common::Buffer b = d.buffer();
          if (!d.ok()) return d.status();
          if (b.size() != nb) {
            return Status::Corruption("delta raw tensor size mismatch");
          }
          out.tensors.emplace_back(std::move(spec), std::move(b));
          break;
        }
        case kDiff: {
          if (bt == nullptr || bt->spec() != spec) {
            return Status::Corruption("delta diff record has no base tensor");
          }
          Bytes rle = d.bytes();
          if (!d.ok()) return d.status();
          Bytes content(nb);
          EVO_RETURN_IF_ERROR(zero_rle_decode(rle, content));
          Bytes prev = bt->data().to_bytes();
          for (size_t j = 0; j < content.size(); ++j) {
            content[j] =
                static_cast<std::byte>(static_cast<uint8_t>(content[j]) +
                                       static_cast<uint8_t>(prev[j]));
          }
          out.tensors.emplace_back(std::move(spec),
                                   common::Buffer::dense(std::move(content)));
          break;
        }
        default:
          return Status::Corruption("unknown delta tensor tag");
      }
      remaining -= nb;
    }
    if (!d.ok()) return d.status();
    return out;
  }
};

}  // namespace

const Codec& delta_codec() {
  static DeltaVsAncestorCodec codec;
  return codec;
}

}  // namespace evostore::compress
