#include "compress/zero_rle.h"

#include <cstring>

#include "compress/codec.h"
#include "model/tensor.h"

namespace evostore::compress {

namespace {

using common::Bytes;
using common::Deserializer;
using common::Result;
using common::Serializer;
using common::Status;

// Zero runs shorter than this stay literal: a group split costs ~2 varint
// bytes, so encoding a 2-byte zero run never wins.
constexpr size_t kMinZeroRun = 3;

}  // namespace

Bytes zero_rle_encode(std::span<const std::byte> in) {
  Serializer s;
  size_t i = 0;
  while (i < in.size()) {
    // Extend the literal run past zero runs too short to break even.
    size_t j = i;
    while (j < in.size()) {
      if (in[j] != std::byte{0}) {
        ++j;
        continue;
      }
      size_t z = j;
      while (z < in.size() && in[z] == std::byte{0}) ++z;
      if (z - j >= kMinZeroRun || z == in.size()) break;
      j = z;
    }
    size_t zero_end = j;
    while (zero_end < in.size() && in[zero_end] == std::byte{0}) ++zero_end;
    s.u64(j - i);
    s.raw(in.subspan(i, j - i));
    s.u64(zero_end - j);
    i = zero_end;
  }
  return std::move(s).take();
}

Status zero_rle_decode(std::span<const std::byte> in,
                       std::span<std::byte> out) {
  Deserializer d(in);
  size_t pos = 0;
  while (pos < out.size()) {
    if (d.at_end()) return Status::Corruption("zero-rle stream truncated");
    uint64_t lit = d.u64();
    if (!d.ok()) return d.status();
    if (lit > out.size() - pos || lit > d.remaining().size()) {
      return Status::Corruption("zero-rle literal run out of bounds");
    }
    std::memcpy(out.data() + pos, d.remaining().data(), lit);
    d.skip(lit);
    pos += lit;
    uint64_t zeros = d.u64();
    if (!d.ok()) return d.status();
    if (zeros > out.size() - pos) {
      return Status::Corruption("zero-rle zero run out of bounds");
    }
    std::memset(out.data() + pos, 0, zeros);
    pos += zeros;
  }
  return d.finish();
}

namespace {

// Per-tensor record tags.
constexpr uint8_t kTensorRaw = 0;  // Buffer as serde encodes it
constexpr uint8_t kTensorRle = 1;  // zero-RLE of the dense content

class ZeroRleCodec final : public Codec {
 public:
  CodecId id() const override { return CodecId::kZeroRle; }
  std::string_view name() const override { return "zero-rle"; }

  Result<uint64_t> encode(const model::Segment& in, const model::Segment*,
                          Serializer& s) const override {
    uint64_t physical = 0;
    s.u64(in.tensors.size());
    for (const auto& t : in.tensors) {
      t.spec().serialize(s);
      // Synthetic content is a full-entropy stream: never compressible,
      // and materializing it would defeat the O(1) descriptor path.
      if (!t.data().is_synthetic()) {
        Bytes rle = zero_rle_encode(t.data().dense_span());
        if (rle.size() < t.nbytes()) {
          s.u8(kTensorRle);
          s.bytes(rle);
          physical += rle.size();
          continue;
        }
      }
      s.u8(kTensorRaw);
      s.buffer(t.data());
      physical += t.nbytes();
    }
    return physical;
  }

  Result<model::Segment> decode(Deserializer& d, const model::Segment*,
                                uint64_t logical_bytes) const override {
    uint64_t n = d.u64();
    if (!d.check_count(n)) return d.status();
    model::Segment out;
    out.tensors.reserve(n);
    uint64_t remaining = logical_bytes;
    for (uint64_t i = 0; i < n && d.ok(); ++i) {
      auto spec = model::TensorSpec::deserialize(d);
      uint8_t tag = d.u8();
      if (!d.ok()) return d.status();
      size_t nb = spec.nbytes();
      if (nb > remaining) {
        return Status::Corruption("zero-rle tensor exceeds declared size");
      }
      switch (tag) {
        case kTensorRaw: {
          common::Buffer b = d.buffer();
          if (!d.ok()) return d.status();
          if (b.size() != nb) {
            return Status::Corruption("zero-rle raw tensor size mismatch");
          }
          out.tensors.emplace_back(std::move(spec), std::move(b));
          break;
        }
        case kTensorRle: {
          Bytes rle = d.bytes();
          if (!d.ok()) return d.status();
          Bytes content(nb);
          EVO_RETURN_IF_ERROR(zero_rle_decode(rle, content));
          out.tensors.emplace_back(std::move(spec),
                                   common::Buffer::dense(std::move(content)));
          break;
        }
        default:
          return Status::Corruption("unknown zero-rle tensor tag");
      }
      remaining -= nb;
    }
    if (!d.ok()) return d.status();
    return out;
  }
};

}  // namespace

const Codec& zero_rle_codec() {
  static ZeroRleCodec codec;
  return codec;
}

}  // namespace evostore::compress
