// Byte-level run-length encoding of zero runs.
//
// Stream layout: repeated groups of
//   (varint literal_len, literal_len raw bytes, varint zero_len)
// until the decoded output reaches its expected size. Zero runs shorter than
// the break-even threshold stay inside the literal run. Used standalone by
// the ZeroRle codec and as the back end of DeltaVsAncestor (a byte-wise
// difference against the base is mostly zeros when few tensors changed).
#pragma once

#include <span>

#include "common/serde.h"
#include "common/status.h"

namespace evostore::compress {

/// Encode `in`; worst case (no zero runs) costs a few varint bytes of
/// framing over the input size.
common::Bytes zero_rle_encode(std::span<const std::byte> in);

/// Decode into exactly `out.size()` bytes. Returns Corruption when the
/// stream is truncated, overflows `out`, or leaves trailing bytes.
common::Status zero_rle_decode(std::span<const std::byte> in,
                               std::span<std::byte> out);

}  // namespace evostore::compress
