#include "core/client.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <unordered_set>

namespace evostore::core {

using common::VertexId;
using compress::CompressedSegment;

namespace {

Status combine(Status acc, const Status& next) {
  return acc.ok() ? next : acc;
}

template <typename Response>
common::Bytes pack(const Response& response) {
  common::Serializer s;
  response.serialize(s);
  return std::move(s).take();
}

// Comma-joined provider list for flight-recorder attrs (e.g. "0,2,3").
std::string id_list(const std::vector<common::ProviderId>& ids) {
  std::string out;
  for (common::ProviderId p : ids) {
    if (!out.empty()) out += ",";
    out += std::to_string(p);
  }
  return out;
}

}  // namespace

Client::Client(net::RpcSystem& rpc, NodeId self, uint32_t client_id,
               std::vector<NodeId> provider_nodes, ClientConfig config)
    : rpc_(&rpc),
      self_(self),
      client_id_(client_id),
      provider_nodes_(std::move(provider_nodes)),
      config_(config),
      retry_rng_(common::hash_combine(config.fault_seed, client_id)) {
  assert(!provider_nodes_.empty());
  // Shared membership when the repository installed one (drains propagate
  // to every client at once); otherwise a private fully-live view.
  membership_ = config_.membership != nullptr
                    ? config_.membership
                    : std::make_shared<Membership>(provider_nodes_.size(),
                                                   config_.replication);
  // Client-side end-to-end latencies land in the cluster registry when one
  // is attached to the RpcSystem (pointers stay null otherwise, so the
  // unattached hot path pays one branch per operation).
  if (obs::MetricsRegistry* shared = rpc.metrics()) {
    hist_put_seconds_ = shared->histogram("client.put_model_seconds");
    hist_lcp_seconds_ = shared->histogram("client.lcp_query_seconds");
    hist_read_seconds_ = shared->histogram("client.read_segments_seconds");
  }
  if (config_.cache.capacity_bytes > 0) {
    cache_ = std::make_unique<cache::SegmentCache>(config_.cache);
    if (obs::MetricsRegistry* shared = rpc.metrics()) {
      // All clients bind the same prefix on purpose: the registry counters
      // aggregate cluster-wide, which is what --metrics-out wants.
      cache_->bind_metrics(shared, "client.cache");
    }
    if (config_.cache.serve_peers) {
      // Context-aware registration: the serve-side span parents under the
      // RPC serve span, so a redirected read's trace shows the peer leg.
      rpc.register_handler(
          self_, kPeerRead, [this](common::Bytes b, net::HandlerContext ctx) {
            return handle_peer_read(std::move(b), ctx);
          });
    }
  }
}

double Client::backoff_delay(int attempt) {
  const RetryPolicy& rp = config_.retry;
  double b = rp.initial_backoff * std::pow(rp.backoff_multiplier, attempt - 1);
  b = std::min(b, rp.max_backoff);
  if (rp.jitter_fraction > 0) {
    b *= 1.0 + rp.jitter_fraction * (2.0 * retry_rng_.uniform() - 1.0);
  }
  return b;
}

// ---- LCP query: broadcast + reduce ---------------------------------------

sim::CoTask<Result<wire::LcpQueryResponse>> Client::lcp_one(
    NodeId to, wire::LcpQueryRequest req, obs::TraceContext parent) {
  // One span per fan-out leg, so the trace shows the broadcast shape (and
  // which leg a slow or retried attempt belonged to).
  obs::Span leg = obs::Tracer::maybe_begin(tracer(), "lcp_leg", self_, parent);
  leg.tag_u64("provider_node", to);
  co_return co_await call_retried<wire::LcpQueryResponse>(
      to, Provider::kLcpQuery, std::move(req), leg.context());
}

sim::CoTask<Result<wire::LcpQueryResponse>> Client::query_lcp(
    // NOLINTNEXTLINE(cppcoreguidelines-avoid-reference-coroutine-parameters)
    const ArchGraph& g, obs::TraceContext parent) {
  obs::Span span =
      obs::Tracer::maybe_begin(tracer(), "lcp_query", self_, parent);
  double t0 = rpc_->simulation().now();
  wire::LcpQueryRequest req;
  req.graph = g;
  auto& sim = rpc_->simulation();
  std::vector<sim::Future<Result<wire::LcpQueryResponse>>> futures;
  futures.reserve(provider_nodes_.size());
  for (size_t p = 0; p < provider_nodes_.size(); ++p) {
    // Drained providers hold no catalog; broadcasting to them would only
    // burn the retry budget and mark the reduce partial.
    if (!membership_->is_live(static_cast<common::ProviderId>(p))) continue;
    futures.push_back(sim.spawn(lcp_one(provider_nodes_[p], req, span.context())));
  }
  wire::LcpQueryResponse best;
  size_t unreachable = 0;
  for (auto& f : futures) {
    auto r = co_await f;
    if (!r.ok()) {
      // Graceful degradation: a provider that stayed unreachable through
      // the retry budget is simply left out of the reduce. The caller sees
      // the best answer among the responders, tagged partial (it may be
      // shorter than the true global LCP — the NAS then trains a longer
      // prefix from scratch, which is slower but correct). Non-retryable
      // failures still propagate: they signal bugs, not faults.
      if (common::is_retryable(r.status().code())) {
        ++unreachable;
        continue;
      }
      co_return r.status();
    }
    const auto& resp = r.value();
    if (!resp.found) continue;
    bool better = false;
    if (!best.found) {
      better = true;
    } else if (resp.lcp_len() != best.lcp_len()) {
      better = resp.lcp_len() > best.lcp_len();
    } else if (resp.quality != best.quality) {
      better = resp.quality > best.quality;
    } else {
      better = resp.ancestor < best.ancestor;
    }
    if (better) best = resp;
  }
  if (unreachable > 0) {
    best.partial = true;
    ++fault_stats_.partial_lcp_queries;
  }
  span.tag("found", best.found ? "true" : "false");
  span.tag_u64("lcp_len", best.lcp_len());
  span.tag_u64("unreachable", unreachable);
  if (hist_lcp_seconds_ != nullptr) {
    hist_lcp_seconds_->add(rpc_->simulation().now() - t0);
  }
  co_return best;
}

// ---- put -----------------------------------------------------------------

sim::CoTask<Result<wire::ModifyRefsResponse>> Client::refs_one(
    NodeId to, wire::ModifyRefsRequest req, obs::TraceContext parent) {
  co_return co_await call_retried<wire::ModifyRefsResponse>(
      to, Provider::kModifyRefs, std::move(req), parent);
}

sim::CoTask<Status> Client::put_one(NodeId home, wire::PutModelRequest req,
                                    size_t payload_bytes,
                                    obs::TraceContext parent, int attempt_cap,
                                    bool prior_rounds) {
  // Data plane first: the consolidated new tensors cross via bulk RDMA,
  // then the (small) metadata RPC publishes the model. Both legs retry as
  // one unit — a lost publish re-sends the (idempotent) payload too.
  // `attempt_cap` bounds THIS leg only; exhausting it is not an operation
  // failure (put_model may hint the leg away or re-fan another round), so
  // the exhausted counter is the caller's to bump.
  for (int attempt = 1;; ++attempt) {
    obs::Span span =
        obs::Tracer::maybe_begin(tracer(), "put_attempt", self_, parent);
    span.tag_u64("attempt", static_cast<uint64_t>(attempt));
    span.tag_u64("payload_bytes", payload_bytes);
    Status st = co_await rpc_->bulk(
        self_, home, common::Buffer::synthetic(payload_bytes, 0));
    if (st.ok()) {
      auto r = co_await net::typed_call<wire::PutModelResponse>(
          rpc_, self_, home, Provider::kPutModel, req,
          net::CallOptions{config_.rpc_timeout, span.context()});
      st = r.ok() ? r->status : r.status();
    }
    if (st.ok()) {
      span.tag("outcome", "ok");
      co_return st;
    }
    // Model ids are globally unique, so AlreadyExists on a RETRY (including
    // an earlier outer round) can only mean an earlier attempt committed and
    // its response was lost.
    if ((attempt > 1 || prior_rounds) &&
        st.code() == common::ErrorCode::kAlreadyExists) {
      span.tag("outcome", "committed-by-earlier-attempt");
      co_return Status::Ok();
    }
    if (!common::is_retryable(st.code())) {
      span.tag("outcome", st.to_string());
      co_return st;
    }
    if (attempt >= attempt_cap) {
      span.tag("outcome", "leg exhausted: " + st.to_string());
      co_return st;
    }
    ++fault_stats_.retries;
    double backoff = backoff_delay(attempt);
    span.tag("outcome", st.to_string());
    span.tag_f64("backoff_seconds", backoff);
    span.end();
    co_await rpc_->simulation().delay(backoff);
  }
}

sim::CoTask<Status> Client::modify_refs(
    std::vector<common::SegmentKey> keys, bool increment,
    uint32_t* missing_out, std::vector<common::SegmentKey>* applied_out,
    obs::TraceContext parent, uint64_t pin_epoch, bool pin_consume) {
  auto& sim = rpc_->simulation();
  Status status;
  uint32_t missing = 0;
  std::vector<common::SegmentKey> pending = std::move(keys);
  bool first_round = true;
  // Decrements can free delta envelopes, releasing the reference each held
  // on its base; those bases come back as freed_bases and are decremented in
  // the next round (the cascade drains down the delta chain). Increments
  // never free, so they always finish in one round.
  while (!pending.empty()) {
    // Group keys by their (identical) replica set: every replica of a key
    // must see the same logical ±1. Each replica gets its own tokened copy
    // of the group's request — the token makes retries AND hint replays
    // exactly-once per replica.
    std::map<std::vector<common::ProviderId>, std::vector<common::SegmentKey>>
        groups;
    for (const auto& key : pending) {
      groups[replicas_of(key.owner)].push_back(key);
    }
    pending.clear();
    struct GroupLeg {
      common::ProviderId replica = 0;
      size_t future_idx = 0;
      common::Bytes payload;  // serialized request, kept for hinting
    };
    struct GroupState {
      std::vector<common::ProviderId> reps;
      std::vector<common::SegmentKey> keys;
      std::vector<GroupLeg> legs;
    };
    std::vector<GroupState> states;
    std::vector<sim::Future<Result<wire::ModifyRefsResponse>>> futures;
    states.reserve(groups.size());
    for (auto& [reps, group_keys] : groups) {
      GroupState gs;
      gs.reps = reps;
      gs.keys = group_keys;
      for (common::ProviderId p : reps) {
        wire::ModifyRefsRequest req;
        req.increment = first_round ? increment : false;
        req.token = next_token();
        // Pin-ledger bookkeeping describes the caller's keys only; the
        // cascaded base releases of later rounds are plain delta-dependency
        // references, never pins.
        if (first_round) {
          req.pin_epoch = pin_epoch;
          req.pin_consume = pin_consume;
        }
        req.keys = group_keys;
        GroupLeg leg;
        leg.replica = p;
        leg.future_idx = futures.size();
        leg.payload = pack(req);
        gs.legs.push_back(std::move(leg));
        futures.push_back(
            sim.spawn(refs_one(provider_node(p), std::move(req), parent)));
      }
      states.push_back(std::move(gs));
    }
    for (size_t s = 0; s < states.size(); ++s) {
      // Replicas hold identical copies and each logical ±1 reaches every
      // replica exactly once, so their refcounts move in lockstep: any ONE
      // successful response is authoritative for the cascade. Prefer the one
      // that found the most keys (a freshly rebuilt replica may briefly lag).
      std::optional<wire::ModifyRefsResponse> authoritative;
      std::map<common::SegmentKey, size_t> missing_votes;
      size_t successes = 0;
      Status group_status;
      std::vector<common::ProviderId> failed_reps;
      std::vector<common::Bytes> failed_payloads;
      for (size_t i = 0; i < states[s].legs.size(); ++i) {
        auto r = co_await futures[states[s].legs[i].future_idx];
        if (!r.ok()) {
          group_status = combine(group_status, r.status());
          if (common::is_retryable(r.status().code()) &&
              membership_->is_live(states[s].legs[i].replica)) {
            failed_reps.push_back(states[s].legs[i].replica);
            failed_payloads.push_back(std::move(states[s].legs[i].payload));
          }
          continue;
        }
        wire::ModifyRefsResponse resp = std::move(r).value();
        ++successes;
        for (const auto& mk : resp.missing_keys) ++missing_votes[mk];
        if (!authoritative.has_value() ||
            resp.missing < authoritative->missing) {
          authoritative.emplace(std::move(resp));
        }
      }
      if (successes == 0) {
        // Every replica unreachable: the delta is lost, not parked — a hint
        // needs at least one live custodian that applied it.
        status = combine(status, group_status);
        continue;
      }
      // Park a hint for each unreachable still-member replica: the delta
      // must land there eventually or the copies diverge.
      for (size_t i = 0; i < failed_reps.size(); ++i) {
        std::vector<common::ProviderId> custodians;
        for (common::ProviderId p : states[s].reps) {
          if (p != failed_reps[i]) custodians.push_back(p);
        }
        Status hs = co_await send_hint(failed_reps[i], Provider::kModifyRefs,
                                       std::move(failed_payloads[i]),
                                       std::move(custodians), parent);
        if (!hs.ok()) status = combine(status, hs);
      }
      // A key is only globally missing when EVERY responding replica
      // reported it missing (one lagging rebuild must not look like a lost
      // segment).
      uint32_t group_missing = 0;
      for (const auto& [mk, votes] : missing_votes) {
        (void)mk;
        if (votes == successes) ++group_missing;
      }
      if (first_round) {
        if (applied_out != nullptr) {
          applied_out->insert(applied_out->end(), states[s].keys.begin(),
                              states[s].keys.end());
        }
        missing += group_missing;
        if (group_missing > 0 && missing_out == nullptr) {
          // Caller treats missing keys as an error.
          status = combine(
              status, Status::NotFound(std::to_string(group_missing) +
                                       " segment(s) not found"));
        }
      } else if (group_missing > 0) {
        // A cascaded base release hit an already-freed key — the delta
        // dependency held a reference, so this should be impossible.
        status = combine(status,
                         Status::NotFound("cascaded base release missed"));
      }
      pending.insert(pending.end(), authoritative->freed_bases.begin(),
                     authoritative->freed_bases.end());
    }
    first_round = false;
  }
  if (missing_out != nullptr) *missing_out = missing;
  co_return status;
}

sim::CoTask<Status> Client::send_hint(common::ProviderId target,
                                      std::string method, common::Bytes payload,
                                      std::vector<common::ProviderId> custodians,
                                      obs::TraceContext parent) {
  wire::StoreHintRequest req;
  req.hint.target = target;
  req.hint.method = std::move(method);
  req.hint.payload = std::move(payload);
  Status last = Status::Unavailable("no live custodian for hint");
  for (common::ProviderId custodian : custodians) {
    if (!membership_->is_live(custodian)) continue;
    auto r = co_await call_retried<wire::StoreHintResponse>(
        provider_node(custodian), Provider::kStoreHint, req, parent);
    Status st = r.ok() ? r->status : r.status();
    if (st.ok()) {
      ++fault_stats_.hints_sent;
      co_return st;
    }
    last = st;
  }
  co_return last;
}

// NOLINTNEXTLINE(cppcoreguidelines-avoid-reference-coroutine-parameters)
sim::CoTask<Status> Client::fan_out_refs(const OwnerMap& owners,
                                         bool increment, ModelId exclude_owner,
                                         obs::TraceContext parent) {
  std::vector<common::SegmentKey> keys;
  for (const auto& entry : owners.entries()) {
    if (entry.owner == exclude_owner) continue;
    keys.push_back(entry);
  }
  co_return co_await modify_refs(std::move(keys), increment, nullptr, nullptr,
                                 parent);
}

// NOLINTNEXTLINE(cppcoreguidelines-avoid-reference-coroutine-parameters)
sim::CoTask<Status> Client::put_model(const Model& m, const TransferContext* tc) {
  obs::Span span = obs::Tracer::maybe_begin(tracer(), "put_model", self_);
  span.tag("model", m.id().to_string());
  double t0 = rpc_->simulation().now();
  size_t n = m.vertex_count();
  bool use_delta = config_.put_codec == compress::CodecId::kDeltaVsAncestor;

  // Per fine-tuned child vertex: the ancestor segment it can delta against
  // (prefix payload, when fetched) and the key that segment is stored under.
  struct BaseRef {
    const Segment* segment = nullptr;
    common::SegmentKey key;
  };
  std::unordered_map<VertexId, BaseRef> bases;
  OwnerMap owners;
  if (tc == nullptr) {
    owners = OwnerMap::self_owned(m.id(), n);
  } else if (tc->finetuned.empty()) {
    owners = OwnerMap::derive(m.id(), n, tc->ancestor_owners, tc->matches);
  } else {
    // Fine-tuned vertices were modified by training: they are stored
    // self-owned even though the LCP matched them.
    std::vector<std::pair<VertexId, VertexId>> inherited;
    inherited.reserve(tc->matches.size());
    for (size_t i = 0; i < tc->matches.size(); ++i) {
      auto [gv, av] = tc->matches[i];
      if (!std::binary_search(tc->finetuned.begin(), tc->finetuned.end(),
                              gv)) {
        inherited.push_back(tc->matches[i]);
        continue;
      }
      BaseRef base;
      base.key = tc->ancestor_owners.entry(av);
      if (i < tc->prefix_segments.size()) {
        base.segment = &tc->prefix_segments[i];
      }
      bases.emplace(gv, base);
    }
    owners = OwnerMap::derive(m.id(), n, tc->ancestor_owners, inherited);
  }

  wire::PutModelRequest req;
  req.id = m.id();
  req.ancestor = tc != nullptr ? tc->ancestor : ModelId::invalid();
  req.token = next_token();
  req.quality = m.quality();
  req.graph = m.graph();
  req.owners = owners;
  uint64_t payload = 0;
  // Pinned fine-tuned matches whose envelope kept no base dependency must
  // release their pin (nothing references the ancestor segment anymore);
  // conversely, un-pinned envelopes that DID keep a base need a +1 on it.
  // Pinned envelopes that kept a base consume the pin in place (it becomes
  // the delta-base reference) — only the ledger entry goes.
  std::vector<common::SegmentKey> release_keys;
  std::vector<common::SegmentKey> extra_ref_keys;
  std::vector<common::SegmentKey> consume_base_keys;
  obs::Span encode =
      obs::Tracer::maybe_begin(tracer(), "encode", self_, span.context());
  for (VertexId v : owners.vertices_owned_by(m.id())) {
    const Segment* base = nullptr;
    const common::SegmentKey* base_key = nullptr;
    auto it = bases.find(v);
    if (use_delta && it != bases.end() && it->second.segment != nullptr) {
      base = it->second.segment;
      base_key = &it->second.key;
    }
    auto env = compress::compress_segment(m.segment(v), config_.put_codec,
                                          base, base_key, &codec_stats_);
    if (!env.ok()) co_return env.status();
    payload += env->physical_bytes;
    if (it != bases.end()) {
      if (env->has_base) {
        if (!tc->pinned) {
          extra_ref_keys.push_back(it->second.key);
        } else {
          consume_base_keys.push_back(it->second.key);
        }
      } else if (tc->pinned) {
        release_keys.push_back(it->second.key);
      }
    }
    req.new_segments.emplace_back(v, std::move(env).value());
  }
  encode.tag_u64("segments", req.new_segments.size());
  encode.tag_u64("physical_bytes", payload);
  encode.end();

  auto& sim = rpc_->simulation();
  // The model write fans out to every replica in its rendezvous set (same
  // request, same token — providers deduplicate, so a replica reached twice
  // commits once) while the inherited-segment ref increments proceed in
  // parallel. A pinned transfer already holds +1 on every inherited
  // segment — that pin simply becomes this model's reference (or, for a
  // fine-tuned vertex, its envelope's delta base reference).
  //
  // Two-tier retry budget (RetryPolicy::write_leg_attempts): each leg gets a
  // short per-round cap, and rounds below re-fan the same tokened request to
  // the replicas that have not committed yet. One replica down → its leg
  // exhausts fast and becomes a hinted handoff; the client's own egress
  // down → every leg fails fast but the rounds ride out the outage.
  std::vector<common::ProviderId> put_reps = replicas_of(m.id());
  const int leg_cap =
      config_.retry.write_leg_attempts > 0
          ? std::min(config_.retry.write_leg_attempts,
                     config_.retry.max_attempts)
          : config_.retry.max_attempts;
  const int put_rounds =
      config_.retry.write_leg_attempts > 0 ? config_.retry.max_attempts : 1;
  std::vector<char> put_done(put_reps.size(), 0);
  std::vector<Status> leg_status(put_reps.size());
  std::vector<sim::Future<Status>> put_futures;
  std::vector<size_t> put_idx;
  put_futures.reserve(put_reps.size());
  for (size_t i = 0; i < put_reps.size(); ++i) {
    put_idx.push_back(i);
    put_futures.push_back(sim.spawn(put_one(provider_node(put_reps[i]), req,
                                            payload, span.context(), leg_cap,
                                            /*prior_rounds=*/false)));
  }
  Status ref_status;
  if (tc == nullptr || !tc->pinned) {
    std::vector<common::SegmentKey> keys;
    for (const auto& entry : owners.entries()) {
      if (entry.owner == m.id()) continue;
      keys.push_back(entry);
    }
    keys.insert(keys.end(), extra_ref_keys.begin(), extra_ref_keys.end());
    ref_status = co_await modify_refs(std::move(keys), /*increment=*/true,
                                      nullptr, nullptr, span.context());
  } else {
    // The pins prepare_transfer recorded just became this model's permanent
    // references (inherited entries) or its envelopes' delta-base
    // references (consume_base_keys) — the refcounts already hold, so only
    // the pin-ledger entries are removed. Without this, a later client
    // incarnation would reap the "pins" and free segments the stored model
    // still references.
    std::vector<common::SegmentKey> consume_keys;
    for (const auto& entry : owners.entries()) {
      if (entry.owner == m.id()) continue;
      consume_keys.push_back(entry);
    }
    consume_keys.insert(consume_keys.end(), consume_base_keys.begin(),
                        consume_base_keys.end());
    if (!consume_keys.empty()) {
      ref_status = co_await modify_refs(
          std::move(consume_keys), /*increment=*/false, nullptr, nullptr,
          span.context(), config_.token_epoch, /*pin_consume=*/true);
    }
  }
  if (!release_keys.empty()) {
    // release_keys only exist on pinned transfers: the decrement releases
    // the pinned reference AND its ledger entry.
    ref_status = combine(
        ref_status,
        co_await modify_refs(std::move(release_keys), /*increment=*/false,
                             nullptr, nullptr, span.context(),
                             config_.token_epoch));
  }
  // The put commits once ANY replica holds the model (degraded-but-correct:
  // reads fail over, repair restores full replication). A replica that
  // stayed unreachable through its whole budget gets the request parked as
  // a hinted handoff on a replica that did commit.
  bool committed = false;
  bool fatal = false;
  for (int round = 1;; ++round) {
    for (size_t j = 0; j < put_futures.size(); ++j) {
      Status st = co_await put_futures[j];
      leg_status[put_idx[j]] = st;
      if (st.ok()) {
        put_done[put_idx[j]] = 1;
        committed = true;
      } else if (!common::is_retryable(st.code())) {
        fatal = true;
      }
    }
    // Stop as soon as anything committed (stragglers become hints), on a
    // non-retryable error (a bug, not a fault), or when the round budget is
    // spent. Otherwise every leg failed retryably — likely our own egress is
    // down — so back off and re-fan the same tokened request.
    if (committed || fatal || round >= put_rounds) break;
    ++fault_stats_.retries;
    co_await sim.delay(backoff_delay(round));
    put_futures.clear();
    put_idx.clear();
    for (size_t i = 0; i < put_reps.size(); ++i) {
      if (put_done[i] != 0) continue;
      put_idx.push_back(i);
      put_futures.push_back(sim.spawn(put_one(provider_node(put_reps[i]), req,
                                              payload, span.context(), leg_cap,
                                              /*prior_rounds=*/true)));
    }
  }
  Status put_status;
  std::vector<common::ProviderId> missed;
  for (size_t i = 0; i < put_reps.size(); ++i) {
    if (put_done[i] != 0) continue;
    put_status = combine(put_status, leg_status[i]);
    if (common::is_retryable(leg_status[i].code())) missed.push_back(put_reps[i]);
  }
  if (obs::EventLog* ev = events()) {
    // One event per fan-out leg: which replicas committed the write and
    // which exhausted their budget (the latter become hinted handoffs).
    for (size_t i = 0; i < put_reps.size(); ++i) {
      if (put_done[i] != 0) {
        ev->record(sim.now(), "write.leg_committed", self_,
                   {{"model", req.id.to_string()},
                    {"replica", obs::EventLog::u64(put_reps[i])}});
      } else {
        ev->record(sim.now(), "write.leg_exhausted", self_,
                   {{"model", req.id.to_string()},
                    {"replica", obs::EventLog::u64(put_reps[i])},
                    {"error", leg_status[i].to_string()}});
      }
    }
  }
  if (committed) {
    put_status = Status::Ok();
    if (!missed.empty()) {
      common::Bytes packed = pack(req);
      for (common::ProviderId target : missed) {
        if (!membership_->is_live(target)) continue;
        std::vector<common::ProviderId> custodians;
        for (common::ProviderId p : put_reps) {
          if (p != target) custodians.push_back(p);
        }
        // Best-effort: a failed hint only delays convergence until the next
        // anti-entropy repair, it never loses the committed write.
        (void)co_await send_hint(target, Provider::kPutModel, packed,
                                 std::move(custodians), span.context());
      }
    }
  } else if (!put_status.ok() && common::is_retryable(put_status.code())) {
    // The whole operation ran out of budget — THIS is a client-visible
    // exhaustion (per-leg exhaustion that ended in a hint is not).
    ++fault_stats_.exhausted;
  }
  Status final_status = combine(put_status, ref_status);
  span.tag("outcome", final_status.ok() ? "ok" : final_status.to_string());
  if (hist_put_seconds_ != nullptr) {
    hist_put_seconds_->add(rpc_->simulation().now() - t0);
  }
  co_return final_status;
}

// ---- reads ---------------------------------------------------------------

sim::CoTask<Result<ModelMeta>> Client::get_meta(ModelId id,
                                                obs::TraceContext parent) {
  wire::GetMetaRequest req{id};
  std::vector<common::ProviderId> reps = replicas_of(id);
  Status last = Status::NotFound("model " + id.to_string());
  for (size_t i = 0; i < reps.size(); ++i) {
    if (i > 0) {
      ++fault_stats_.read_failovers;
      if (obs::EventLog* ev = events()) {
        ev->record(rpc_->simulation().now(), "read.failover", self_,
                   {{"model", id.to_string()},
                    {"from", obs::EventLog::u64(reps[i - 1])},
                    {"to", obs::EventLog::u64(reps[i])}});
      }
    }
    auto r = co_await call_retried<wire::GetMetaResponse>(
        provider_node(reps[i]), Provider::kGetMeta, req, parent);
    if (!r.ok()) {
      // Exhausted retries on this replica: the next one may still answer.
      // Non-retryable failures signal bugs, not faults, and propagate.
      if (!common::is_retryable(r.status().code())) co_return r.status();
      last = r.status();
      continue;
    }
    if (!r->found) {
      // Keep probing: this replica may have been rebuilt after data loss
      // (or be lagging a repair) — "gone" is only believable when every
      // reachable replica agrees.
      last = Status::NotFound("model " + id.to_string());
      continue;
    }
    ModelMeta meta;
    meta.graph = std::move(r->graph);
    meta.owners = std::move(r->owners);
    meta.quality = r->quality;
    meta.ancestor = r->ancestor;
    meta.store_time = r->store_time;
    meta.store_seq = r->store_seq;
    if (obs::EventLog* ev = events()) {
      // `replicas` lets the analyzer assert no read was ever served by a
      // node outside the model's replica set (a placement-routing bug).
      ev->record(rpc_->simulation().now(), "read.served", self_,
                 {{"model", id.to_string()},
                  {"provider", obs::EventLog::u64(reps[i])},
                  {"rank", obs::EventLog::u64(i)},
                  {"replicas", id_list(reps)}});
    }
    co_return meta;
  }
  co_return last;
}

sim::CoTask<Result<wire::ReadSegmentsResponse>> Client::read_one(
    NodeId to, wire::ReadSegmentsRequest req, obs::TraceContext parent) {
  // Reads are naturally idempotent, so the whole RPC + payload pull retries
  // as one unit without tokens.
  for (int attempt = 1;; ++attempt) {
    obs::Span span =
        obs::Tracer::maybe_begin(tracer(), "read_attempt", self_, parent);
    span.tag_u64("attempt", static_cast<uint64_t>(attempt));
    span.tag_u64("keys", req.keys.size());
    auto r = co_await net::typed_call<wire::ReadSegmentsResponse>(
        rpc_, self_, to, Provider::kReadSegments, req,
        net::CallOptions{config_.rpc_timeout, span.context()});
    Status st = r.ok() ? r->status : r.status();
    if (r.ok() && st.ok()) {
      // RDMA-style payload pull: charge the bulk bytes provider -> client
      // (post-compression — reading a delta chain moves only the deltas).
      st = co_await rpc_->bulk(
          to, self_, common::Buffer::synthetic(r->payload_bytes, 0));
      if (st.ok()) {
        span.tag("outcome", "ok");
        span.tag_u64("payload_bytes", r->payload_bytes);
        co_return std::move(r).value();
      }
    }
    if (!common::is_retryable(st.code())) {
      span.tag("outcome", st.to_string());
      co_return st;
    }
    if (attempt >= config_.retry.max_attempts) {
      ++fault_stats_.exhausted;
      span.tag("outcome", "exhausted: " + st.to_string());
      co_return st;
    }
    ++fault_stats_.retries;
    double backoff = backoff_delay(attempt);
    span.tag("outcome", st.to_string());
    span.tag_f64("backoff_seconds", backoff);
    span.end();
    co_await rpc_->simulation().delay(backoff);
  }
}

sim::CoTask<Result<wire::PeerReadResponse>> Client::peer_one(
    NodeId to, wire::PeerReadRequest req, obs::TraceContext parent) {
  obs::Span span =
      obs::Tracer::maybe_begin(tracer(), "peer_read", self_, parent);
  span.tag_u64("peer_node", to);
  span.tag_u64("keys", req.keys.size());
  auto r = co_await net::typed_call<wire::PeerReadResponse>(
      rpc_, self_, to, kPeerRead, req,
      net::CallOptions{config_.rpc_timeout, span.context()});
  Status st = r.ok() ? r->status : r.status();
  if (r.ok() && st.ok() && r->payload_bytes > 0) {
    st = co_await rpc_->bulk(to, self_,
                             common::Buffer::synthetic(r->payload_bytes, 0));
  }
  if (!st.ok()) {
    span.tag("outcome", st.to_string());
    co_return st;
  }
  span.tag("outcome", "ok");
  span.tag_u64("payload_bytes", r->payload_bytes);
  co_return std::move(r).value();
}

sim::CoTask<common::Bytes> Client::handle_peer_read(common::Bytes request,
                                                    net::HandlerContext ctx) {
  obs::Span span =
      obs::Tracer::maybe_begin(tracer(), "peer_serve", self_, ctx.trace);
  common::Deserializer d(request);
  auto req = wire::PeerReadRequest::deserialize(d);
  wire::PeerReadResponse resp;
  if (!d.ok()) {
    resp.status = d.status();
    span.tag("outcome", resp.status.to_string());
    co_return pack(resp);
  }
  uint64_t served = 0;
  resp.found.reserve(req.keys.size());
  for (size_t i = 0; i < req.keys.size(); ++i) {
    const uint64_t want = i < req.versions.size() ? req.versions[i] : 0;
    const cache::SegmentCache::Entry* e =
        cache_ != nullptr ? cache_->lookup(req.keys[i]) : nullptr;
    if (e != nullptr && want != 0 && e->version == want) {
      resp.found.push_back(1);
      resp.payload_bytes += e->envelope.physical_bytes;
      resp.segments.push_back(e->envelope);
      ++served;
    } else {
      resp.found.push_back(0);
    }
  }
  resp.status = Status::Ok();
  span.tag("outcome", "ok");
  span.tag_u64("served", served);
  span.tag_u64("missed", req.keys.size() - served);
  if (obs::EventLog* ev = events()) {
    ev->record(rpc_->simulation().now(), "cache.peer_serve", self_,
               {{"served", obs::EventLog::u64(served)},
                {"missed", obs::EventLog::u64(req.keys.size() - served)}});
  }
  co_return pack(resp);
}

sim::CoTask<Status> Client::fetch_envelopes(
    // NOLINTNEXTLINE(cppcoreguidelines-avoid-reference-coroutine-parameters)
    const std::vector<common::SegmentKey>& keys,
    std::unordered_map<common::SegmentKey, CompressedSegment>* out,
    obs::TraceContext parent) {
  const double now = rpc_->simulation().now();
  auto& sim = rpc_->simulation();
  // Phase 1 — serve trusted cache entries locally; everything else enters
  // the failover loop at its preferred replica (attempt index 0). A
  // cached-but-untrusted entry travels as its version: the provider can
  // then answer kNotModified instead of shipping payload.
  std::vector<common::SegmentKey> todo;
  std::unordered_map<common::SegmentKey, size_t> attempt;
  std::unordered_map<common::SegmentKey, uint64_t> cached_version;
  uint64_t trusted_hits = 0;
  for (const auto& key : keys) {
    if (out->count(key) != 0 || attempt.count(key) != 0) continue;
    const cache::SegmentCache::Entry* e =
        cache_ != nullptr ? cache_->lookup(key) : nullptr;
    if (e != nullptr && cache_->trusted(*e, now)) {
      cache_->count_hit(e->envelope.physical_bytes);
      ++trusted_hits;
      out->emplace(key, e->envelope);
      continue;
    }
    attempt.emplace(key, 0);
    if (cache_ != nullptr) {
      cached_version.emplace(key, e != nullptr ? e->version : 0);
    }
    todo.push_back(key);
  }
  if (trusted_hits > 0) {
    if (obs::EventLog* ev = events()) {
      ev->record(now, "cache.trusted", self_,
                 {{"hits", obs::EventLog::u64(trusted_hits)}});
    }
  }
  // Phase 2 — provider rounds with read failover: keys group by their
  // current replica choice; per-key dispositions (fresh envelopes fill the
  // cache, NotModified serves the revalidated cached copy, redirects queue
  // a peer fetch). A group whose replica fails retryably — or answers
  // NotFound, which a freshly rebuilt replica briefly does — requeues its
  // keys at each key's NEXT replica; only a key that exhausts its whole
  // replica set fails the read.
  std::map<NodeId, wire::PeerReadRequest> redirects;
  std::vector<common::SegmentKey> fallback;
  while (!todo.empty()) {
    std::map<common::ProviderId, wire::ReadSegmentsRequest> groups;
    for (const auto& key : todo) {
      auto& req = groups[replicas_of(key.owner)[attempt[key]]];
      req.keys.push_back(key);
      if (cache_ != nullptr) req.cached_versions.push_back(cached_version[key]);
    }
    todo.clear();
    std::vector<std::vector<common::SegmentKey>> order;
    std::vector<common::ProviderId> order_provider;
    std::vector<sim::Future<Result<wire::ReadSegmentsResponse>>> futures;
    for (auto& [provider, req] : groups) {
      if (cache_ != nullptr) {
        req.reader_node = self_;
        req.caching = true;
        req.accept_redirect = config_.cache.follow_redirects;
      }
      order.push_back(req.keys);
      order_provider.push_back(provider);
      futures.push_back(
          sim.spawn(read_one(provider_node(provider), std::move(req), parent)));
    }
    for (size_t i = 0; i < futures.size(); ++i) {
      auto r = co_await futures[i];
      if (!r.ok()) {
        // Drop the group's cache entries — they may be the reason the
        // answer is gone — then fail the keys over to their next replicas.
        if (cache_ != nullptr) {
          for (const auto& key : order[i]) cache_->invalidate(key);
        }
        Status st = r.status();
        if (!common::is_retryable(st.code()) &&
            st.code() != common::ErrorCode::kNotFound) {
          co_return st;
        }
        if (obs::EventLog* ev = events()) {
          // Aggregated: one event per failed group, not per key, so a large
          // fan-out can never flood the ring with identical failovers.
          ev->record(sim.now(), "read.failover", self_,
                     {{"from", obs::EventLog::u64(order_provider[i])},
                      {"keys", obs::EventLog::u64(order[i].size())},
                      {"error", st.to_string()}});
        }
        for (const auto& key : order[i]) {
          size_t next = ++attempt[key];
          if (next >= replicas_of(key.owner).size()) co_return st;
          ++fault_stats_.read_failovers;
          if (cache_ != nullptr) cached_version[key] = 0;
          todo.push_back(key);
        }
        continue;
      }
      auto& resp = r.value();
      if (resp.info.size() != order[i].size()) {
        co_return Status::Internal("info count mismatch in read fan-out");
      }
      uint64_t nm_count = 0;
      uint64_t redirect_count = 0;
      size_t fresh_idx = 0;
      for (size_t j = 0; j < order[i].size(); ++j) {
        const common::SegmentKey& key = order[i][j];
        const wire::ReadEntryInfo& info = resp.info[j];
        switch (info.state) {
          case wire::ReadEntryState::kFresh: {
            if (fresh_idx >= resp.segments.size()) {
              co_return Status::Internal(
                  "segment count mismatch in read fan-out");
            }
            CompressedSegment env = std::move(resp.segments[fresh_idx++]);
            if (cache_ != nullptr) {
              cache_->count_miss();
              cache_->insert(key, env, info.version, sim.now());
            }
            out->emplace(key, std::move(env));
            break;
          }
          case wire::ReadEntryState::kNotModified: {
            ++nm_count;
            const cache::SegmentCache::Entry* e =
                cache_ != nullptr ? cache_->lookup(key) : nullptr;
            if (e != nullptr &&
                cache_->revalidate(key, info.version, sim.now())) {
              cache_->count_revalidation(e->envelope.physical_bytes);
              out->emplace(key, e->envelope);
            } else {
              fallback.push_back(key);
            }
            break;
          }
          case wire::ReadEntryState::kRedirect: {
            ++redirect_count;
            auto& preq = redirects[info.redirect];
            preq.keys.push_back(key);
            preq.versions.push_back(info.version);
            break;
          }
        }
      }
      if (obs::EventLog* ev = events()) {
        ev->record(sim.now(), "cache.lookup", self_,
                   {{"provider", obs::EventLog::u64(order_provider[i])},
                    {"fresh", obs::EventLog::u64(fresh_idx)},
                    {"not_modified", obs::EventLog::u64(nm_count)},
                    {"redirect", obs::EventLog::u64(redirect_count)}});
      }
    }
  }
  // Phase 3 — chase redirect hints to peer caches. The hint is best-effort:
  // a crashed, cold, or version-skewed peer demotes the key to the provider
  // fallback. A peer-served envelope is provider-validated transitively (the
  // redirect named its exact current version and the peer matched it).
  if (!redirects.empty()) {
    std::vector<wire::PeerReadRequest> peer_reqs;
    std::vector<NodeId> peer_ids;
    std::vector<sim::Future<Result<wire::PeerReadResponse>>> peer_futures;
    for (auto& [peer, preq] : redirects) {
      peer_reqs.push_back(preq);
      peer_ids.push_back(peer);
      peer_futures.push_back(sim.spawn(peer_one(peer, std::move(preq), parent)));
    }
    for (size_t i = 0; i < peer_futures.size(); ++i) {
      auto r = co_await peer_futures[i];
      const wire::PeerReadRequest& preq = peer_reqs[i];
      uint64_t peer_hits = 0;
      uint64_t peer_misses = 0;
      if (!r.ok() || !r->status.ok() ||
          r->found.size() != preq.keys.size()) {
        for (const auto& key : preq.keys) {
          cache_->count_peer_miss();
          ++peer_misses;
          fallback.push_back(key);
        }
      } else {
        size_t seg_idx = 0;
        for (size_t j = 0; j < preq.keys.size(); ++j) {
          if (r->found[j] != 0 && seg_idx < r->segments.size()) {
            CompressedSegment env = std::move(r->segments[seg_idx++]);
            cache_->count_peer_hit();
            ++peer_hits;
            cache_->insert(preq.keys[j], env, preq.versions[j], sim.now());
            out->emplace(preq.keys[j], std::move(env));
          } else {
            cache_->count_peer_miss();
            ++peer_misses;
            fallback.push_back(preq.keys[j]);
          }
        }
      }
      if (obs::EventLog* ev = events()) {
        ev->record(sim.now(), "cache.peer", self_,
                   {{"peer", obs::EventLog::u64(peer_ids[i])},
                    {"hits", obs::EventLog::u64(peer_hits)},
                    {"misses", obs::EventLog::u64(peer_misses)}});
      }
    }
  }
  // Phase 4 — provider re-fetch for everything the optimistic paths missed
  // (evicted cache entries, cold or dead redirect peers). No cached
  // versions, no redirects: providers answer kFresh only — but the fetch
  // still fails over down each key's replica set, so a redirect that named
  // a now-dead peer never strands the read on an equally dead owner.
  if (!fallback.empty()) {
    std::unordered_map<common::SegmentKey, size_t> fb_attempt;
    std::vector<common::SegmentKey> fb_todo;
    for (const auto& key : fallback) {
      if (fb_attempt.emplace(key, 0).second) fb_todo.push_back(key);
    }
    while (!fb_todo.empty()) {
      std::map<common::ProviderId, wire::ReadSegmentsRequest> fb_groups;
      for (const auto& key : fb_todo) {
        fb_groups[replicas_of(key.owner)[fb_attempt[key]]].keys.push_back(key);
      }
      fb_todo.clear();
      std::vector<std::vector<common::SegmentKey>> fb_order;
      std::vector<common::ProviderId> fb_provider;
      std::vector<sim::Future<Result<wire::ReadSegmentsResponse>>> fb_futures;
      for (auto& [provider, req] : fb_groups) {
        if (cache_ != nullptr) {
          req.reader_node = self_;
          req.caching = true;
        }
        fb_order.push_back(req.keys);
        fb_provider.push_back(provider);
        fb_futures.push_back(sim.spawn(
            read_one(provider_node(provider), std::move(req), parent)));
      }
      for (size_t i = 0; i < fb_futures.size(); ++i) {
        auto r = co_await fb_futures[i];
        if (!r.ok()) {
          if (cache_ != nullptr) {
            for (const auto& key : fb_order[i]) cache_->invalidate(key);
          }
          Status st = r.status();
          if (!common::is_retryable(st.code()) &&
              st.code() != common::ErrorCode::kNotFound) {
            co_return st;
          }
          if (obs::EventLog* ev = events()) {
            ev->record(sim.now(), "read.failover", self_,
                       {{"from", obs::EventLog::u64(fb_provider[i])},
                        {"keys", obs::EventLog::u64(fb_order[i].size())},
                        {"error", st.to_string()}});
          }
          for (const auto& key : fb_order[i]) {
            size_t next = ++fb_attempt[key];
            if (next >= replicas_of(key.owner).size()) co_return st;
            ++fault_stats_.read_failovers;
            fb_todo.push_back(key);
          }
          continue;
        }
        auto& resp = r.value();
        if (resp.segments.size() != fb_order[i].size() ||
            resp.info.size() != fb_order[i].size()) {
          co_return Status::Internal("segment count mismatch in read fallback");
        }
        for (size_t j = 0; j < fb_order[i].size(); ++j) {
          CompressedSegment env = std::move(resp.segments[j]);
          if (cache_ != nullptr) {
            cache_->count_miss();
            cache_->insert(fb_order[i][j], env, resp.info[j].version,
                           sim.now());
          }
          out->emplace(fb_order[i][j], std::move(env));
        }
      }
    }
  }
  co_return Status::Ok();
}

sim::CoTask<Result<std::vector<Segment>>> Client::read_segments(
    const OwnerMap* owners, std::vector<VertexId> vertices,
    obs::TraceContext parent) {
  obs::Span span =
      obs::Tracer::maybe_begin(tracer(), "read_segments", self_, parent);
  span.tag_u64("vertices", vertices.size());
  double t0 = rpc_->simulation().now();
  std::vector<common::SegmentKey> roots;
  roots.reserve(vertices.size());
  for (VertexId v : vertices) roots.push_back(owners->entry(v));

  // Fetch the requested envelopes, then chase unresolved delta bases round
  // by round: each round is one parallel fan-out, so a chain of depth k
  // costs k rounds, not k round trips per segment.
  std::unordered_map<common::SegmentKey, CompressedSegment> envelopes;
  std::vector<common::SegmentKey> frontier = roots;
  while (!frontier.empty()) {
    Status st = co_await fetch_envelopes(frontier, &envelopes, span.context());
    if (!st.ok()) co_return st;
    std::unordered_set<common::SegmentKey> next;
    for (const auto& [key, env] : envelopes) {
      if (env.has_base && envelopes.count(env.base) == 0) {
        next.insert(env.base);
      }
    }
    frontier.assign(next.begin(), next.end());
  }

  // Decode memoized, resolving each envelope's base first via an explicit
  // stack (delta chains can be deep; no recursion).
  obs::Span decode =
      obs::Tracer::maybe_begin(tracer(), "decode", self_, span.context());
  std::unordered_map<common::SegmentKey, Segment> decoded;
  for (const auto& root : roots) {
    std::vector<common::SegmentKey> stack{root};
    while (!stack.empty()) {
      if (stack.size() > envelopes.size() + 1) {
        co_return Status::Corruption("delta dependency cycle");
      }
      common::SegmentKey key = stack.back();
      if (decoded.count(key) != 0) {
        stack.pop_back();
        continue;
      }
      const auto& env = envelopes.at(key);
      if (env.has_base && decoded.count(env.base) == 0) {
        stack.push_back(env.base);
        continue;
      }
      const Segment* base = env.has_base ? &decoded.at(env.base) : nullptr;
      auto seg = compress::decompress_segment(env, base, &codec_stats_);
      if (!seg.ok()) co_return seg.status();
      decoded.emplace(key, std::move(seg).value());
      stack.pop_back();
    }
  }

  decode.tag_u64("envelopes", envelopes.size());
  decode.tag_u64("decoded", decoded.size());
  decode.end();

  std::vector<Segment> out;
  out.reserve(vertices.size());
  for (VertexId v : vertices) out.push_back(decoded.at(owners->entry(v)));
  if (hist_read_seconds_ != nullptr) {
    hist_read_seconds_->add(rpc_->simulation().now() - t0);
  }
  co_return out;
}

sim::CoTask<Result<Model>> Client::get_model(ModelId id) {
  obs::Span span = obs::Tracer::maybe_begin(tracer(), "get_model", self_);
  span.tag("model", id.to_string());
  auto meta = co_await get_meta(id, span.context());
  if (!meta.ok()) co_return meta.status();
  std::vector<VertexId> all(meta->graph.size());
  for (VertexId v = 0; v < all.size(); ++v) all[v] = v;
  auto segments =
      co_await read_segments(&meta->owners, all, span.context());
  if (!segments.ok()) co_return segments.status();
  Model m(id, std::move(meta->graph));
  m.set_quality(meta->quality);
  for (VertexId v = 0; v < all.size(); ++v) {
    m.segment(v) = std::move(segments.value()[v]);
  }
  co_return m;
}

sim::CoTask<Result<Model>> Client::get_model_via_chain(ModelId id) {
  auto meta = co_await get_meta(id);
  if (!meta.ok()) co_return meta.status();
  Model m(id, meta->graph);
  m.set_quality(meta->quality);
  // The leaf's owner map stands in for the per-level diff records a
  // chain-based design would store; what this path deliberately does NOT do
  // is exploit it for one-shot parallel reads — each lineage level costs its
  // own metadata round trip and its own read round, as in the naive scheme.
  const OwnerMap& owners = meta->owners;
  ModelId cur = id;
  size_t remaining = m.vertex_count();
  while (cur.valid() && remaining > 0) {
    ModelMeta level;
    if (cur == id) {
      level = *meta;
    } else {
      auto r = co_await get_meta(cur);
      if (!r.ok()) co_return r.status();
      level = std::move(r).value();
    }
    std::vector<common::VertexId> mine;
    for (common::VertexId v = 0; v < owners.size(); ++v) {
      if (owners.entry(v).owner == cur) mine.push_back(v);
    }
    if (!mine.empty()) {
      auto segs = co_await read_segments(&owners, mine);
      if (!segs.ok()) co_return segs.status();
      for (size_t i = 0; i < mine.size(); ++i) {
        m.segment(mine[i]) = std::move(segs.value()[i]);
      }
      remaining -= mine.size();
    }
    cur = level.ancestor;
  }
  if (remaining > 0) {
    co_return Status::NotFound(
        "chain reconstruction incomplete: an ancestor was retired");
  }
  co_return m;
}

sim::CoTask<Result<std::optional<TransferContext>>> Client::prepare_transfer(
    // NOLINTNEXTLINE(cppcoreguidelines-avoid-reference-coroutine-parameters)
    const ArchGraph& g, bool fetch_payload) {
  obs::Span span =
      obs::Tracer::maybe_begin(tracer(), "prepare_transfer", self_);
  auto q = co_await query_lcp(g, span.context());
  if (!q.ok()) co_return q.status();
  if (!q->found) co_return std::optional<TransferContext>{};
  auto meta = co_await get_meta(q->ancestor, span.context());
  if (!meta.ok()) {
    if (meta.status().code() == common::ErrorCode::kNotFound) {
      // The ancestor was retired between the query and the read; treat as
      // "no ancestor" (the caller trains from scratch).
      co_return std::optional<TransferContext>{};
    }
    co_return meta.status();
  }
  TransferContext tc;
  tc.ancestor = q->ancestor;
  tc.ancestor_quality = q->quality;
  tc.matches = std::move(q->matches);
  tc.ancestor_owners = std::move(meta->owners);

  // Pin the prefix segments so a concurrent retirement of the ancestor (or
  // of the original owners along its lineage) cannot free them while this
  // transfer trains. The pin later becomes the derived model's reference.
  std::vector<common::SegmentKey> pin_keys;
  pin_keys.reserve(tc.matches.size());
  for (auto [gv, av] : tc.matches) {
    (void)gv;
    pin_keys.push_back(tc.ancestor_owners.entry(av));
  }
  uint32_t missing = 0;
  std::vector<common::SegmentKey> applied;
  Status pin_status = co_await modify_refs(pin_keys, /*increment=*/true,
                                           &missing, &applied, span.context(),
                                           config_.token_epoch);
  if (!pin_status.ok() || missing > 0) {
    // Either lost the race with a retire mid-pin (missing > 0), or a
    // provider stayed unreachable through the retry budget. Roll back only
    // the increments that were ACKNOWLEDGED — unacked groups were
    // deduplicated provider-side and never double-apply, but decrementing
    // them here would underflow a count we never raised. Then degrade to
    // training from scratch (correct, just slower). Non-retryable pin
    // failures still propagate: they signal bugs, not faults.
    if (!pin_status.ok() && !common::is_retryable(pin_status.code())) {
      co_return pin_status;
    }
    if (!applied.empty()) {
      uint32_t rollback_missing = 0;
      (void)co_await modify_refs(std::move(applied), /*increment=*/false,
                                 &rollback_missing, nullptr, span.context(),
                                 config_.token_epoch);
    }
    if (!pin_status.ok()) ++fault_stats_.degraded_transfers;
    co_return std::optional<TransferContext>{};
  }
  tc.pinned = true;

  if (fetch_payload) {
    std::vector<VertexId> ancestor_vertices;
    ancestor_vertices.reserve(tc.matches.size());
    for (auto [gv, av] : tc.matches) {
      (void)gv;
      ancestor_vertices.push_back(av);
    }
    auto segs = co_await read_segments(&tc.ancestor_owners,
                                       std::move(ancestor_vertices),
                                       span.context());
    if (!segs.ok()) {
      (void)co_await modify_refs(std::move(pin_keys), /*increment=*/false,
                                 &missing, nullptr, span.context(),
                                 config_.token_epoch);
      co_return segs.status();
    }
    tc.prefix_segments = std::move(segs).value();
  }
  co_return std::optional<TransferContext>(std::move(tc));
}

// NOLINTNEXTLINE(cppcoreguidelines-avoid-reference-coroutine-parameters)
sim::CoTask<Status> Client::abandon_transfer(const TransferContext& tc) {
  if (!tc.pinned) co_return Status::Ok();
  std::vector<common::SegmentKey> keys;
  keys.reserve(tc.matches.size());
  for (auto [gv, av] : tc.matches) {
    (void)gv;
    keys.push_back(tc.ancestor_owners.entry(av));
  }
  co_return co_await modify_refs(std::move(keys), /*increment=*/false,
                                 nullptr, nullptr, {}, config_.token_epoch);
}

// ---- retire ----------------------------------------------------------------

sim::CoTask<Result<wire::RetireResponse>> Client::retire_one(
    NodeId to, wire::RetireRequest req, obs::TraceContext parent) {
  co_return co_await call_retried<wire::RetireResponse>(
      to, Provider::kRetire, std::move(req), parent);
}

sim::CoTask<Status> Client::retire(ModelId id) {
  obs::Span span = obs::Tracer::maybe_begin(tracer(), "retire", self_);
  span.tag("model", id.to_string());
  // Tokened: a retry whose first delivery already removed the model replays
  // the cached owner map instead of answering NotFound (which would leak
  // every refcount the fan-out below is about to release). The same token
  // fans to every replica — each removes its copy of the metadata once.
  wire::RetireRequest req{id, next_token()};
  std::vector<common::ProviderId> reps = replicas_of(id);
  auto& sim = rpc_->simulation();
  std::vector<sim::Future<Result<wire::RetireResponse>>> futures;
  futures.reserve(reps.size());
  for (common::ProviderId p : reps) {
    futures.push_back(
        sim.spawn(retire_one(provider_node(p), req, span.context())));
  }
  std::optional<OwnerMap> owners;
  Status status;
  std::vector<common::ProviderId> missed;
  for (size_t i = 0; i < futures.size(); ++i) {
    auto r = co_await futures[i];
    Status st = r.ok() ? r->status : r.status();
    if (r.ok() && st.ok()) {
      // Any replica's owner map will do — they hold identical copies.
      if (!owners.has_value()) owners.emplace(std::move(r->owners));
      continue;
    }
    status = combine(status, st);
    if (!r.ok() && common::is_retryable(r.status().code())) {
      missed.push_back(reps[i]);
    }
    // A NotFound from one replica is tolerated as long as another found the
    // model (a rebuilt replica may briefly lag its peers).
  }
  if (!owners.has_value()) co_return status;
  if (obs::EventLog* ev = events()) {
    ev->record(sim.now(), "gc.retire", self_,
               {{"model", id.to_string()},
                {"missed", obs::EventLog::u64(missed.size())}});
  }
  // Park the retire on a custodian for each unreachable replica: its copy
  // of the metadata must eventually go, or a failover read would resurrect
  // a retired model.
  if (!missed.empty()) {
    common::Bytes packed = pack(req);
    for (common::ProviderId target : missed) {
      if (!membership_->is_live(target)) continue;
      std::vector<common::ProviderId> custodians;
      for (common::ProviderId p : reps) {
        if (p != target) custodians.push_back(p);
      }
      (void)co_await send_hint(target, Provider::kRetire, packed,
                               std::move(custodians), span.context());
    }
  }
  // Drop every cached segment the retired model contributed — the bytes may
  // be freed the moment the decrements below land, and a later model reusing
  // the key must never be answered from this copy.
  if (cache_ != nullptr) {
    for (const auto& entry : owners->entries()) cache_->invalidate(entry);
  }
  // Decrement every tensor the retired model referenced — its own segments
  // and the inherited ones alike (O(k), k = leaf layers). modify_refs fans
  // each logical decrement to every replica internally.
  co_return co_await fan_out_refs(*owners, /*increment=*/false,
                                  ModelId::invalid(), span.context());
}

// ---- stats -----------------------------------------------------------------

sim::CoTask<Result<wire::StatsResponse>> Client::provider_stats(
    common::ProviderId provider) {
  wire::StatsRequest req;
  auto r = co_await call_retried<wire::StatsResponse>(
      provider_node(provider), Provider::kGetStats, req);
  if (!r.ok()) co_return r.status();
  if (!r->status.ok()) co_return r->status;
  co_return std::move(r).value();
}

sim::CoTask<Result<wire::StatsResponse>> Client::stats_one(NodeId to) {
  co_return co_await call_retried<wire::StatsResponse>(
      to, Provider::kGetStats, wire::StatsRequest{});
}

sim::CoTask<Result<Client::ClusterStats>> Client::collect_stats() {
  auto& sim = rpc_->simulation();
  std::vector<sim::Future<Result<wire::StatsResponse>>> futures;
  futures.reserve(provider_nodes_.size());
  for (NodeId node : provider_nodes_) {
    futures.push_back(sim.spawn(stats_one(node)));
  }
  ClusterStats out;
  out.per_provider.reserve(futures.size());
  for (auto& f : futures) {
    auto r = co_await f;
    if (!r.ok()) co_return r.status();
    if (!r->status.ok()) co_return r->status;
    out.per_provider.push_back(std::move(r).value());
  }
  out.totals = wire::merge_stats(out.per_provider);
  co_return out;
}

// ---- provenance ------------------------------------------------------------

sim::CoTask<Result<std::vector<ModelId>>> Client::lineage(ModelId id) {
  std::vector<ModelId> chain;
  ModelId cur = id;
  while (cur.valid()) {
    auto meta = co_await get_meta(cur);
    if (!meta.ok()) {
      if (!chain.empty() &&
          meta.status().code() == common::ErrorCode::kNotFound) {
        break;  // ancestor already retired; chain ends here
      }
      co_return meta.status();
    }
    chain.push_back(cur);
    cur = meta->ancestor;
  }
  co_return chain;
}

sim::CoTask<Result<std::vector<Client::Contribution>>> Client::contributions(
    ModelId id) {
  auto meta = co_await get_meta(id);
  if (!meta.ok()) co_return meta.status();
  std::vector<Contribution> out;
  for (auto& [owner, pairs] : meta->owners.by_owner()) {
    Contribution c;
    c.owner = owner;
    for (auto [local_v, owner_v] : pairs) {
      (void)owner_v;
      c.vertices.push_back(local_v);
    }
    if (owner == id) {
      c.store_time = meta->store_time;
    } else {
      auto owner_meta = co_await get_meta(owner);
      c.store_time = owner_meta.ok() ? owner_meta->store_time : 0.0;
    }
    out.push_back(std::move(c));
  }
  std::sort(out.begin(), out.end(), [](const Contribution& a,
                                       const Contribution& b) {
    if (a.store_time != b.store_time) return a.store_time > b.store_time;
    return a.owner < b.owner;
  });
  co_return out;
}

sim::CoTask<Result<ModelId>> Client::most_recent_common_ancestor(ModelId a,
                                                                 ModelId b) {
  auto meta_a = co_await get_meta(a);
  if (!meta_a.ok()) co_return meta_a.status();
  auto meta_b = co_await get_meta(b);
  if (!meta_b.ok()) co_return meta_b.status();
  auto ca = meta_a->owners.contributors();
  auto cb = meta_b->owners.contributors();
  std::sort(ca.begin(), ca.end());
  std::sort(cb.begin(), cb.end());
  std::vector<ModelId> common_owners;
  std::set_intersection(ca.begin(), ca.end(), cb.begin(), cb.end(),
                        std::back_inserter(common_owners));
  if (common_owners.empty()) {
    co_return Status::NotFound("no common ancestor");
  }
  ModelId best;
  double best_time = -1;
  for (ModelId c : common_owners) {
    double t = 0.0;
    if (c == a) {
      t = meta_a->store_time;
    } else if (c == b) {
      t = meta_b->store_time;
    } else {
      auto meta_c = co_await get_meta(c);
      t = meta_c.ok() ? meta_c->store_time : 0.0;
    }
    if (t > best_time || (t == best_time && c < best)) {
      best = c;
      best_time = t;
    }
  }
  co_return best;
}

}  // namespace evostore::core
