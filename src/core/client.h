// EvoStore client library (paper §4.3): the side applications link against.
//
// The client interprets owner maps, talks to a model's replica set for
// metadata (preferred replica first, failing over down the rendezvous order
// on faults), fans bulk reads/writes out to the providers owning each
// segment in parallel, broadcasts LCP queries and reduces the replies, and
// drives the distributed reference-count updates for put/retire. Writes go
// to every replica; a replica that stays unreachable through the retry
// budget gets its copy of the request parked as a hinted handoff on a
// surviving peer (DESIGN.md §15).
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cache/segment_cache.h"
#include "common/rng.h"
#include "compress/codec.h"
#include "compress/compressed_segment.h"
#include "core/owner_map.h"
#include "core/placement.h"
#include "core/provider.h"
#include "core/wire.h"
#include "net/rpc.h"
#include "obs/trace.h"

namespace evostore::core {

using common::ModelId;
using common::NodeId;
using common::Result;
using common::Status;
using model::ArchGraph;
using model::Model;
using model::Segment;

/// Capped-exponential-backoff retry for RPCs that fail with a retryable
/// code (Unavailable, DeadlineExceeded). The default (`max_attempts == 1`)
/// disables retries entirely: every call behaves exactly as before.
struct RetryPolicy {
  int max_attempts = 1;
  double initial_backoff = 0.05;
  double backoff_multiplier = 2.0;
  double max_backoff = 2.0;
  /// Backoff is scaled by a factor drawn uniformly from
  /// [1 - jitter, 1 + jitter] (seeded RNG — deterministic per client).
  double jitter_fraction = 0.1;
  /// Two-tier budget for replicated writes. 0 (default) keeps the classic
  /// behavior: each replica leg retries up to `max_attempts` before the
  /// caller parks a hinted handoff. A positive value caps each leg at that
  /// many attempts per round — a write whose target is down parks its hint
  /// after ~a second instead of riding the whole budget — and put_model adds
  /// up to `max_attempts` outer rounds that re-fan the SAME tokened request
  /// to the replicas that have not committed yet (idempotent), so a client
  /// whose own egress is down (co-located node outage) still rides through
  /// long outages instead of failing fast.
  int write_leg_attempts = 0;
};

struct ClientConfig {
  /// Codec applied to self-owned segments on put. `kDeltaVsAncestor`
  /// delta-encodes fine-tuned vertices against the TransferContext's prefix
  /// payloads (anything without a usable base falls back to Raw). The
  /// default keeps the wire and storage behavior byte-identical to an
  /// uncompressed deployment.
  compress::CodecId put_codec = compress::CodecId::kRaw;
  /// Retry behavior for retryable RPC failures.
  RetryPolicy retry;
  /// Per-call deadline in simulated seconds. 0 inherits the RpcSystem's
  /// default (normally "no deadline"); negative disables deadlines for this
  /// client even when the RpcSystem has a default.
  double rpc_timeout = 0;
  /// Seed for the retry-jitter RNG (combined with the client id so every
  /// client draws an independent, reproducible stream).
  uint64_t fault_seed = 0x5eedf00d;
  /// Incarnation epoch mixed into idempotency tokens (high 16 bits).
  /// EvoStoreRepository sets this from a counter persisted in the provider
  /// backends so that a fresh repository over an old backend can never mint
  /// tokens colliding with dedup records a previous incarnation left there.
  /// Providers also reap transfer pins recorded under older epochs when they
  /// first see a token from this one (crashed clients cannot leak pins).
  uint64_t token_epoch = 1;
  /// Client-local cooperative segment cache (DESIGN.md §14).
  /// `cache.capacity_bytes == 0` (the default) disables it entirely: the
  /// read path and the wire traffic stay byte-identical to an uncached
  /// deployment.
  cache::CacheConfig cache;
  /// Replicas per key (k-way rendezvous placement, DESIGN.md §15). Clamped
  /// to the live provider count, so single-provider deployments behave
  /// exactly as unreplicated ones regardless of this value.
  size_t replication = 2;
  /// Shared ring-membership view. Null builds a private fully-live view
  /// over the client's provider list (fine for a fixed cluster); an
  /// EvoStoreRepository installs one shared instance across its clients so
  /// a drain is visible to everyone at the same instant.
  std::shared_ptr<Membership> membership;
};

/// Fault-path counters for one client (all zero in a fault-free run).
struct ClientFaultStats {
  /// Individual RPC attempts that failed retryably and were retried.
  uint64_t retries = 0;
  /// Logical operations that ran out of retry budget (gave up).
  uint64_t exhausted = 0;
  /// LCP broadcasts reduced over a strict subset of providers.
  uint64_t partial_lcp_queries = 0;
  /// prepare_transfer calls that degraded to "train from scratch" because
  /// the pin could not be completed under faults.
  uint64_t degraded_transfers = 0;
  /// Reads (metadata or segment groups) answered by a later replica after
  /// an earlier one failed or answered not-found.
  uint64_t read_failovers = 0;
  /// Hinted handoffs parked on a surviving replica for an unreachable one.
  uint64_t hints_sent = 0;
};

/// Everything needed to perform one transfer-learning operation: produced by
/// `prepare_transfer`, consumed by training (prefix segments) and by
/// `put_model` (owner-map derivation + ref increments).
struct TransferContext {
  ModelId ancestor;
  double ancestor_quality = 0;
  /// (child vertex, ancestor vertex) pairs of the LCP.
  std::vector<std::pair<common::VertexId, common::VertexId>> matches;
  OwnerMap ancestor_owners;
  /// Prefix segments, in `matches` order (filled by prepare_transfer when
  /// fetch_payload is requested).
  std::vector<Segment> prefix_segments;
  /// True when prepare_transfer already incremented the refcount of every
  /// inherited segment (a *pin*, protecting the transfer against concurrent
  /// retirement of the ancestor). put_model turns the pin into the stored
  /// model's reference; abandon_transfer releases it.
  bool pinned = false;
  /// Child vertices among `matches` whose weights training modified
  /// (fine-tuned). They are stored self-owned — delta-encoded against the
  /// ancestor's segment when the client's codec allows — instead of
  /// inherited by reference. Must be sorted ascending.
  std::vector<common::VertexId> finetuned;

  size_t lcp_len() const { return matches.size(); }
};

/// Full metadata of a stored model.
struct ModelMeta {
  ArchGraph graph;
  OwnerMap owners;
  double quality = 0;
  ModelId ancestor;
  double store_time = 0;
  uint64_t store_seq = 0;
};

class Client {
 public:
  /// RPC method peers answer segment-cache reads on (registered on this
  /// client's node when `config.cache.serve_peers` and the cache is enabled).
  static constexpr const char* kPeerRead = "evostore.peer_read";

  /// `provider_nodes[i]` is the fabric node hosting provider i.
  Client(net::RpcSystem& rpc, NodeId self, uint32_t client_id,
         std::vector<NodeId> provider_nodes, ClientConfig config = {});

  NodeId node() const { return self_; }
  const ClientConfig& config() const { return config_; }
  /// Per-codec encode/decode counters and timings for this client.
  const compress::CodecStatsTable& codec_stats() const { return codec_stats_; }
  /// Retry/degradation counters (all zero in a fault-free run).
  const ClientFaultStats& fault_stats() const { return fault_stats_; }
  /// The local segment cache, or nullptr when disabled (hit/miss counters,
  /// charged bytes — see cache::SegmentCache::stats()).
  const cache::SegmentCache* segment_cache() const { return cache_.get(); }

  /// Allocate a fresh globally-unique model id.
  ModelId allocate_id() { return ModelId::make(client_id_, ++id_seq_); }

  /// Broadcast an LCP query to all providers and reduce to the global best
  /// (longest prefix; ties by quality, then lower id). `found == false`
  /// means no stored model shares even the input layer. Degrades gracefully
  /// under faults: providers that stay unreachable after retries are left
  /// out of the reduce and the response is tagged `partial` (all providers
  /// unreachable => `found == false`, still `partial`). Non-retryable
  /// failures propagate as errors.
  ///
  /// `parent` (here and on the other entry points) is the caller's trace
  /// context; the default starts a new trace when a tracer is attached and
  /// is inert otherwise.
  sim::CoTask<Result<wire::LcpQueryResponse>> query_lcp(
      const ArchGraph& g, obs::TraceContext parent = {});

  /// query_lcp + fetch the ancestor's owner map, PIN the prefix segments
  /// (refcount +1, so a concurrent retire cannot free them mid-transfer),
  /// and read the prefix payloads when `fetch_payload`. Returns nullopt
  /// (inside the Result) if no ancestor exists or it vanished while racing a
  /// retire. The pin is consumed by put_model or released by
  /// abandon_transfer.
  sim::CoTask<Result<std::optional<TransferContext>>> prepare_transfer(
      const ArchGraph& g, bool fetch_payload = true);

  /// Release a pinned transfer without storing a derived model.
  sim::CoTask<Status> abandon_transfer(const TransferContext& tc);

  /// Store a model. For derived models pass the TransferContext so that only
  /// self-owned segments travel; inherited segments get their refcounts
  /// incremented on their owners' providers.
  sim::CoTask<Status> put_model(const Model& m, const TransferContext* tc);

  /// Fetch metadata (graph, owner map, quality, lineage pointer).
  sim::CoTask<Result<ModelMeta>> get_meta(ModelId id,
                                          obs::TraceContext parent = {});

  /// Reconstruct a full model: one owner-map lookup + parallel bulk reads
  /// from every owning provider.
  sim::CoTask<Result<Model>> get_model(ModelId id);

  /// ABLATION BASELINE (paper §4.1's "simple solution"): reconstruct by
  /// walking the ancestor chain level by level — one metadata round trip
  /// plus one read round per ancestor, instead of consulting a single owner
  /// map. Read cost grows with chain length; `bench/ablation_chain_reads`
  /// quantifies the gap that motivates owner maps. Fails if any ancestor on
  /// the chain was already retired.
  sim::CoTask<Result<Model>> get_model_via_chain(ModelId id);

  /// Read the segments for an arbitrary vertex subset (in `vertices` order)
  /// by following `owners`. `owners` is a pointer because the map is read
  /// again after suspension points: it must outlive the returned task
  /// (every caller owns it across the co_await); `vertices` is copied into
  /// the frame for the same reason (EVO-CORO-003).
  sim::CoTask<Result<std::vector<Segment>>> read_segments(
      const OwnerMap* owners, std::vector<common::VertexId> vertices,
      obs::TraceContext parent = {});

  /// Retire a model: metadata removed eagerly; every owner-map entry's
  /// refcount decremented (parallel fan-out); payloads freed at zero.
  sim::CoTask<Status> retire(ModelId id);

  /// Fetch one provider's operation counters and live stored volume
  /// (logical/physical bytes, per-codec breakdown).
  sim::CoTask<Result<wire::StatsResponse>> provider_stats(
      common::ProviderId provider);

  /// Cluster-wide stats: one parallel GetStats fan-out over every provider.
  /// `per_provider` is in provider-id order; `totals` sums the counters and
  /// merges the per-provider histogram digests by name (see
  /// wire::merge_stats).
  struct ClusterStats {
    std::vector<wire::StatsResponse> per_provider;
    wire::StatsResponse totals;
  };
  sim::CoTask<Result<ClusterStats>> collect_stats();

  // ---- Provenance queries (paper §4.1 "owner maps as a foundation") ----

  /// Ancestor chain id, parent, grandparent, ... (stops at a from-scratch
  /// model or at the first retired ancestor whose metadata is gone).
  sim::CoTask<Result<std::vector<ModelId>>> lineage(ModelId id);

  /// Contributors to a model's composition with the vertex sets they own,
  /// ordered by recency (store time descending) — directly from one owner
  /// map plus the contributors' store timestamps.
  struct Contribution {
    ModelId owner;
    std::vector<common::VertexId> vertices;
    double store_time = 0;
  };
  sim::CoTask<Result<std::vector<Contribution>>> contributions(ModelId id);

  /// Most recent common ancestor of two models: the common owner-map
  /// contributor with the latest store time. NotFound if none.
  sim::CoTask<Result<ModelId>> most_recent_common_ancestor(ModelId a,
                                                           ModelId b);

 private:
  NodeId provider_node(common::ProviderId p) const {
    return provider_nodes_[p];
  }
  /// The replica set for `id`, preference order (rendezvous top-k over the
  /// live membership).
  std::vector<common::ProviderId> replicas_of(ModelId id) const {
    return membership_->replicas(id);
  }
  /// The preferred replica for `id` (first element of replicas_of).
  common::ProviderId home_of(ModelId id) const {
    std::vector<common::ProviderId> r = membership_->replicas(id);
    return r.empty() ? 0 : r.front();
  }

  /// Fresh idempotency token, never 0: incarnation epoch (16 bits) | client
  /// id (16 bits) | sequence (32 bits). One token covers one logical
  /// mutation across all its retries. Unique as long as a deployment stays
  /// under 2^16 clients per epoch and 2^32 tokened mutations per client.
  uint64_t next_token() {
    return (config_.token_epoch & 0xffff) << 48 |
           static_cast<uint64_t>(client_id_ & 0xffff) << 32 | ++token_seq_;
  }
  /// Backoff before retry number `attempt` (1-based), capped and jittered.
  double backoff_delay(int attempt);

  /// The attached tracer, if any (client-side root + attempt spans).
  obs::Tracer* tracer() { return rpc_->tracer(); }
  /// The attached flight recorder, if any (write-leg / failover / cache
  /// lifecycle events). Null when detached: call sites pay one branch.
  obs::EventLog* events() { return rpc_->events(); }

  /// typed_call with the client's deadline, retried per RetryPolicy on
  /// retryable failures. The request is reused verbatim across attempts, so
  /// an embedded idempotency token stays stable for the logical operation.
  /// Each attempt gets its own child span of `parent`, tagged with the
  /// attempt number, the fault outcome, and (when retrying) the backoff.
  template <typename Response, typename Request>
  sim::CoTask<Result<Response>> call_retried(NodeId to, std::string method,
                                             Request request,
                                             obs::TraceContext parent = {}) {
    for (int attempt = 1;; ++attempt) {
      obs::Span span =
          obs::Tracer::maybe_begin(tracer(), "attempt", self_, parent);
      span.tag("method", method);
      span.tag_u64("attempt", static_cast<uint64_t>(attempt));
      auto r = co_await net::typed_call<Response>(
          rpc_, self_, to, method, request,
          net::CallOptions{config_.rpc_timeout, span.context()});
      if (r.ok() || !common::is_retryable(r.status().code())) {
        span.tag("outcome", r.ok() ? "ok" : r.status().to_string());
        co_return r;
      }
      if (attempt >= config_.retry.max_attempts) {
        ++fault_stats_.exhausted;
        span.tag("outcome", "exhausted: " + r.status().to_string());
        co_return r;
      }
      ++fault_stats_.retries;
      double backoff = backoff_delay(attempt);
      span.tag("outcome", r.status().to_string());
      span.tag_f64("backoff_seconds", backoff);
      span.end();
      co_await rpc_->simulation().delay(backoff);
    }
  }

  // Spawned fan-out legs. Member coroutines so they can retry via the
  // client's policy; they take their request BY VALUE — a lazily-started
  // frame holding a reference to a loop-local request would dangle. The
  // trace context is likewise by value.
  sim::CoTask<Result<wire::LcpQueryResponse>> lcp_one(
      NodeId to, wire::LcpQueryRequest req, obs::TraceContext parent);
  sim::CoTask<Result<wire::ModifyRefsResponse>> refs_one(
      NodeId to, wire::ModifyRefsRequest req, obs::TraceContext parent);
  sim::CoTask<Status> put_one(NodeId home, wire::PutModelRequest req,
                              size_t payload_bytes, obs::TraceContext parent,
                              int attempt_cap, bool prior_rounds);
  sim::CoTask<Result<wire::ReadSegmentsResponse>> read_one(
      NodeId to, wire::ReadSegmentsRequest req, obs::TraceContext parent);
  sim::CoTask<Result<wire::StatsResponse>> stats_one(NodeId to);
  sim::CoTask<Result<wire::RetireResponse>> retire_one(
      NodeId to, wire::RetireRequest req, obs::TraceContext parent);
  // Park a hinted handoff for `target` (a replica that stayed unreachable
  // through a write's retry budget) on the first custodian in `custodians`
  // that accepts it. `payload` is the serialized original request — token
  // included, so the eventual replay deduplicates exactly like a retry.
  sim::CoTask<Status> send_hint(common::ProviderId target, std::string method,
                                common::Bytes payload,
                                std::vector<common::ProviderId> custodians,
                                obs::TraceContext parent);
  // One peer-cache fetch after a provider redirect hint. Single attempt —
  // a dead or cold peer is not worth a retry budget; the caller falls back
  // to the provider (with redirects disabled, guaranteeing termination).
  sim::CoTask<Result<wire::PeerReadResponse>> peer_one(
      NodeId to, wire::PeerReadRequest req, obs::TraceContext parent);
  // Serves kPeerRead: answers from the local cache, exact-version matches
  // only (anything else could resurrect bytes the provider replaced). The
  // handler context parents the serve-side span under the RPC span.
  sim::CoTask<common::Bytes> handle_peer_read(common::Bytes request,
                                              net::HandlerContext ctx);

  // Fan one ModifyRefs round out to the providers hosting `keys`.
  // Returns the number of keys the providers reported missing via
  // `missing_out` (optional). When a decrement frees delta envelopes, the
  // base references they held are released too — the fan-out loops until the
  // cascade is drained. Keys whose first-round request was acknowledged by
  // its provider are appended to `applied_out` (optional) — under faults a
  // caller can roll back exactly the increments that are known to have
  // landed.
  // `pin_epoch` / `pin_consume` ride on the FIRST round only (they describe
  // the caller's keys, not the cascaded bases) — see
  // wire::ModifyRefsRequest::pin_epoch.
  sim::CoTask<Status> modify_refs(std::vector<common::SegmentKey> keys,
                                  bool increment, uint32_t* missing_out,
                                  std::vector<common::SegmentKey>* applied_out =
                                      nullptr,
                                  obs::TraceContext parent = {},
                                  uint64_t pin_epoch = 0,
                                  bool pin_consume = false);
  // Convenience: all entries of `owners` except those owned by
  // `exclude_owner` (pass invalid() to include everything).
  sim::CoTask<Status> fan_out_refs(const OwnerMap& owners, bool increment,
                                   ModelId exclude_owner,
                                   obs::TraceContext parent = {});
  // Fetch the envelopes for `keys` (skipping ones already in `out`),
  // grouped by provider, charging bulk transfers at physical size.
  sim::CoTask<Status> fetch_envelopes(
      const std::vector<common::SegmentKey>& keys,
      std::unordered_map<common::SegmentKey, compress::CompressedSegment>* out,
      obs::TraceContext parent = {});

  net::RpcSystem* rpc_;
  NodeId self_;
  uint32_t client_id_;
  uint32_t id_seq_ = 0;
  uint32_t token_seq_ = 0;
  std::vector<NodeId> provider_nodes_;
  ClientConfig config_;
  std::shared_ptr<Membership> membership_;
  compress::CodecStatsTable codec_stats_{};
  ClientFaultStats fault_stats_{};
  common::Xoshiro256 retry_rng_;
  // Null when config_.cache.capacity_bytes == 0 (caching disabled).
  std::unique_ptr<cache::SegmentCache> cache_;

  // Client-side end-to-end latency histograms in the RpcSystem's shared
  // registry (null when no registry is attached — one branch per op).
  obs::Histogram* hist_put_seconds_ = nullptr;
  obs::Histogram* hist_lcp_seconds_ = nullptr;
  obs::Histogram* hist_read_seconds_ = nullptr;
};

}  // namespace evostore::core
