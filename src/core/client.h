// EvoStore client library (paper §4.3): the side applications link against.
//
// The client interprets owner maps, talks to the home provider for metadata,
// fans bulk reads/writes out to the providers owning each segment in
// parallel, broadcasts LCP queries and reduces the replies, and drives the
// distributed reference-count updates for put/retire.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "compress/codec.h"
#include "compress/compressed_segment.h"
#include "core/owner_map.h"
#include "core/placement.h"
#include "core/provider.h"
#include "core/wire.h"
#include "net/rpc.h"

namespace evostore::core {

using common::ModelId;
using common::NodeId;
using common::Result;
using common::Status;
using model::ArchGraph;
using model::Model;
using model::Segment;

struct ClientConfig {
  /// Codec applied to self-owned segments on put. `kDeltaVsAncestor`
  /// delta-encodes fine-tuned vertices against the TransferContext's prefix
  /// payloads (anything without a usable base falls back to Raw). The
  /// default keeps the wire and storage behavior byte-identical to an
  /// uncompressed deployment.
  compress::CodecId put_codec = compress::CodecId::kRaw;
};

/// Everything needed to perform one transfer-learning operation: produced by
/// `prepare_transfer`, consumed by training (prefix segments) and by
/// `put_model` (owner-map derivation + ref increments).
struct TransferContext {
  ModelId ancestor;
  double ancestor_quality = 0;
  /// (child vertex, ancestor vertex) pairs of the LCP.
  std::vector<std::pair<common::VertexId, common::VertexId>> matches;
  OwnerMap ancestor_owners;
  /// Prefix segments, in `matches` order (filled by prepare_transfer when
  /// fetch_payload is requested).
  std::vector<Segment> prefix_segments;
  /// True when prepare_transfer already incremented the refcount of every
  /// inherited segment (a *pin*, protecting the transfer against concurrent
  /// retirement of the ancestor). put_model turns the pin into the stored
  /// model's reference; abandon_transfer releases it.
  bool pinned = false;
  /// Child vertices among `matches` whose weights training modified
  /// (fine-tuned). They are stored self-owned — delta-encoded against the
  /// ancestor's segment when the client's codec allows — instead of
  /// inherited by reference. Must be sorted ascending.
  std::vector<common::VertexId> finetuned;

  size_t lcp_len() const { return matches.size(); }
};

/// Full metadata of a stored model.
struct ModelMeta {
  ArchGraph graph;
  OwnerMap owners;
  double quality = 0;
  ModelId ancestor;
  double store_time = 0;
  uint64_t store_seq = 0;
};

class Client {
 public:
  /// `provider_nodes[i]` is the fabric node hosting provider i.
  Client(net::RpcSystem& rpc, NodeId self, uint32_t client_id,
         std::vector<NodeId> provider_nodes, ClientConfig config = {});

  NodeId node() const { return self_; }
  const ClientConfig& config() const { return config_; }
  /// Per-codec encode/decode counters and timings for this client.
  const compress::CodecStatsTable& codec_stats() const { return codec_stats_; }

  /// Allocate a fresh globally-unique model id.
  ModelId allocate_id() { return ModelId::make(client_id_, ++id_seq_); }

  /// Broadcast an LCP query to all providers and reduce to the global best
  /// (longest prefix; ties by quality, then lower id). `found == false`
  /// means no stored model shares even the input layer.
  sim::CoTask<Result<wire::LcpQueryResponse>> query_lcp(const ArchGraph& g);

  /// query_lcp + fetch the ancestor's owner map, PIN the prefix segments
  /// (refcount +1, so a concurrent retire cannot free them mid-transfer),
  /// and read the prefix payloads when `fetch_payload`. Returns nullopt
  /// (inside the Result) if no ancestor exists or it vanished while racing a
  /// retire. The pin is consumed by put_model or released by
  /// abandon_transfer.
  sim::CoTask<Result<std::optional<TransferContext>>> prepare_transfer(
      const ArchGraph& g, bool fetch_payload = true);

  /// Release a pinned transfer without storing a derived model.
  sim::CoTask<Status> abandon_transfer(const TransferContext& tc);

  /// Store a model. For derived models pass the TransferContext so that only
  /// self-owned segments travel; inherited segments get their refcounts
  /// incremented on their owners' providers.
  sim::CoTask<Status> put_model(const Model& m, const TransferContext* tc);

  /// Fetch metadata (graph, owner map, quality, lineage pointer).
  sim::CoTask<Result<ModelMeta>> get_meta(ModelId id);

  /// Reconstruct a full model: one owner-map lookup + parallel bulk reads
  /// from every owning provider.
  sim::CoTask<Result<Model>> get_model(ModelId id);

  /// ABLATION BASELINE (paper §4.1's "simple solution"): reconstruct by
  /// walking the ancestor chain level by level — one metadata round trip
  /// plus one read round per ancestor, instead of consulting a single owner
  /// map. Read cost grows with chain length; `bench/ablation_chain_reads`
  /// quantifies the gap that motivates owner maps. Fails if any ancestor on
  /// the chain was already retired.
  sim::CoTask<Result<Model>> get_model_via_chain(ModelId id);

  /// Read the segments for an arbitrary vertex subset (in `vertices` order)
  /// by following `owners`.
  sim::CoTask<Result<std::vector<Segment>>> read_segments(
      const OwnerMap& owners, const std::vector<common::VertexId>& vertices);

  /// Retire a model: metadata removed eagerly; every owner-map entry's
  /// refcount decremented (parallel fan-out); payloads freed at zero.
  sim::CoTask<Status> retire(ModelId id);

  /// Fetch one provider's operation counters and live stored volume
  /// (logical/physical bytes, per-codec breakdown).
  sim::CoTask<Result<wire::StatsResponse>> provider_stats(
      common::ProviderId provider);

  // ---- Provenance queries (paper §4.1 "owner maps as a foundation") ----

  /// Ancestor chain id, parent, grandparent, ... (stops at a from-scratch
  /// model or at the first retired ancestor whose metadata is gone).
  sim::CoTask<Result<std::vector<ModelId>>> lineage(ModelId id);

  /// Contributors to a model's composition with the vertex sets they own,
  /// ordered by recency (store time descending) — directly from one owner
  /// map plus the contributors' store timestamps.
  struct Contribution {
    ModelId owner;
    std::vector<common::VertexId> vertices;
    double store_time = 0;
  };
  sim::CoTask<Result<std::vector<Contribution>>> contributions(ModelId id);

  /// Most recent common ancestor of two models: the common owner-map
  /// contributor with the latest store time. NotFound if none.
  sim::CoTask<Result<ModelId>> most_recent_common_ancestor(ModelId a,
                                                           ModelId b);

 private:
  NodeId provider_node(common::ProviderId p) const {
    return provider_nodes_[p];
  }
  common::ProviderId home_of(ModelId id) const {
    return provider_for(id, provider_nodes_.size());
  }

  // Fan one ModifyRefs round out to the providers hosting `keys`.
  // Returns the number of keys the providers reported missing via
  // `missing_out` (optional). When a decrement frees delta envelopes, the
  // base references they held are released too — the fan-out loops until the
  // cascade is drained.
  sim::CoTask<Status> modify_refs(std::vector<common::SegmentKey> keys,
                                  bool increment, uint32_t* missing_out);
  // Convenience: all entries of `owners` except those owned by
  // `exclude_owner` (pass invalid() to include everything).
  sim::CoTask<Status> fan_out_refs(const OwnerMap& owners, bool increment,
                                   ModelId exclude_owner);
  // Fetch the envelopes for `keys` (skipping ones already in `out`),
  // grouped by provider, charging bulk transfers at physical size.
  sim::CoTask<Status> fetch_envelopes(
      const std::vector<common::SegmentKey>& keys,
      std::unordered_map<common::SegmentKey, compress::CompressedSegment>*
          out);

  net::RpcSystem* rpc_;
  NodeId self_;
  uint32_t client_id_;
  uint32_t id_seq_ = 0;
  std::vector<NodeId> provider_nodes_;
  ClientConfig config_;
  compress::CodecStatsTable codec_stats_{};
};

}  // namespace evostore::core
