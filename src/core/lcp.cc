#include "core/lcp.h"

#include <algorithm>

namespace evostore::core {

namespace {
constexpr VertexId kUnmatched = UINT32_MAX;
}  // namespace

size_t LcpResult::prefix_param_bytes(const ArchGraph& g) const {
  size_t total = 0;
  for (auto [gv, av] : matches) {
    (void)av;
    total += g.param_bytes(gv);
  }
  return total;
}

std::vector<VertexId> LcpResult::unmatched_g_vertices(const ArchGraph& g) const {
  std::vector<bool> in_prefix(g.size(), false);
  for (auto [gv, av] : matches) {
    (void)av;
    in_prefix[gv] = true;
  }
  std::vector<VertexId> out;
  for (VertexId v = 0; v < g.size(); ++v) {
    if (!in_prefix[v]) out.push_back(v);
  }
  return out;
}

LcpResult longest_common_prefix(const ArchGraph& g, const ArchGraph& a) {
  return longest_common_prefix(g, a, nullptr);
}

LcpResult longest_common_prefix(const ArchGraph& g, const ArchGraph& a,
                                LcpCost* cost) {
  LcpWorkspace ws;
  return ws.run(g, a, cost);
}

LcpResult LcpWorkspace::run(const ArchGraph& g, const ArchGraph& a,
                            LcpCost* cost) {
  LcpResult result;
  uint64_t visits_done = 0;
  if (g.empty() || a.empty()) return result;
  ++visits_done;
  if (g.signature(g.root()) != a.signature(a.root())) {
    if (cost != nullptr) cost->vertex_visits += visits_done;
    return result;
  }

  match_.assign(g.size(), kUnmatched);
  a_used_.assign(a.size(), 0);
  visits_.assign(g.size(), 0);
  proposed_.assign(g.size(), 0);
  if (candidates_.size() < g.size()) candidates_.resize(g.size());
  frontier_.clear();

  match_[g.root()] = a.root();
  a_used_[a.root()] = 1;
  frontier_.push_back(g.root());

  // frontier_ is consumed FIFO via an index (stable, no deque needed).
  for (size_t fi = 0; fi < frontier_.size(); ++fi) {
    VertexId u = frontier_[fi];
    VertexId au = match_[u];
    for (VertexId v : g.out_edges(u)) {
      if (match_[v] != kUnmatched) continue;
      ++visits_done;
      // Counterparts this predecessor can offer: A-successors of au with an
      // identical leaf-layer configuration.
      cand_here_.clear();
      for (VertexId av : a.out_edges(au)) {
        ++visits_done;
        if (!a_used_[av] && a.signature(av) == g.signature(v)) {
          cand_here_.push_back(av);
        }
      }
      // out_edges are sorted, so cand_here_ is sorted.
      if (!proposed_[v]) {
        proposed_[v] = 1;
        candidates_[v].assign(cand_here_.begin(), cand_here_.end());
      } else {
        merged_.clear();
        std::set_intersection(candidates_[v].begin(), candidates_[v].end(),
                              cand_here_.begin(), cand_here_.end(),
                              std::back_inserter(merged_));
        candidates_[v].assign(merged_.begin(), merged_.end());
      }
      ++visits_[v];
      if (visits_[v] == g.in_degree(v)) {
        // All predecessors are in the prefix; bind the counterpart. The
        // in-degree guard is the paper's max(in_degree) rule: a counterpart
        // with extra incoming edges has a predecessor outside the prefix.
        for (VertexId av : candidates_[v]) {
          if (!a_used_[av] && a.in_degree(av) == g.in_degree(v)) {
            match_[v] = av;
            a_used_[av] = 1;
            frontier_.push_back(v);
            break;
          }
        }
      }
    }
  }

  result.matches.reserve(frontier_.size());
  for (VertexId v = 0; v < g.size(); ++v) {
    if (match_[v] != kUnmatched) result.matches.emplace_back(v, match_[v]);
  }
  if (cost != nullptr) cost->vertex_visits += visits_done;
  return result;
}

}  // namespace evostore::core
