// Longest common prefix over architecture graphs (paper §4.2, Algorithm 1).
//
// The LCP of candidate graph G against ancestor graph A is the largest set
// of G-vertices V such that every v in V (1) has a counterpart in A with an
// identical leaf-layer configuration, and (2) has ALL of its predecessors in
// V (recursively rooted at the input layer). These are exactly the layers
// that can be transferred and frozen.
//
// The implementation follows Algorithm 1's frontier expansion with visit
// counters, extended with an explicit vertex correspondence: when a G-vertex
// becomes eligible, it is bound to the smallest-id unmatched A-successor
// candidate that every matched predecessor agrees on and whose in-degree
// equals the G-vertex's (the paper's max(in_degree) guard — a vertex with a
// predecessor outside the prefix in either graph can never be eligible).
//
// One run compares a query against ONE stored model; a provider answering
// `find_ancestor` at paper scale scans its whole catalog this way. At
// catalog scale that scan is the dominant cost — the prefix index
// (core/prefix_index.h, DESIGN.md §16) replaces it with an O(prefix depth)
// trie walk plus a single confirming `run`, keeping this header as the
// exactness oracle (scan fallback, `lcp_index_verify`, and the `--verify`
// benches all re-answer through it).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "model/arch_graph.h"

namespace evostore::core {

using common::VertexId;
using model::ArchGraph;

struct LcpResult {
  /// (G vertex, A vertex) pairs forming the prefix; empty if even the roots
  /// differ. Sorted by G vertex id.
  std::vector<std::pair<VertexId, VertexId>> matches;

  size_t length() const { return matches.size(); }

  /// Total parameter bytes of the prefix in `g` (the transferable payload).
  size_t prefix_param_bytes(const ArchGraph& g) const;

  /// Vertices of `g` NOT in the prefix (the segments a derived model must
  /// store itself).
  std::vector<VertexId> unmatched_g_vertices(const ArchGraph& g) const;
};

/// Compute the longest common prefix of `g` against ancestor `a`.
LcpResult longest_common_prefix(const ArchGraph& g, const ArchGraph& a);

/// Number of vertex visits Algorithm 1 performs (the work the provider-side
/// cost model charges for; exposed for benchmarks and tests).
struct LcpCost {
  uint64_t vertex_visits = 0;
};
LcpResult longest_common_prefix(const ArchGraph& g, const ArchGraph& a,
                                LcpCost* cost);

/// Reusable scratch space for catalog scans: a provider evaluating one query
/// graph against thousands of stored ancestors avoids re-allocating the
/// per-call vectors. Not thread-safe; one workspace per scanning context.
class LcpWorkspace {
 public:
  LcpResult run(const ArchGraph& g, const ArchGraph& a, LcpCost* cost);

 private:
  friend LcpResult longest_common_prefix(const ArchGraph&, const ArchGraph&,
                                         LcpCost*);
  std::vector<VertexId> match_;
  std::vector<uint8_t> a_used_;
  std::vector<uint32_t> visits_;
  std::vector<std::vector<VertexId>> candidates_;
  std::vector<uint8_t> proposed_;
  std::vector<VertexId> frontier_;
  std::vector<VertexId> cand_here_;
  std::vector<VertexId> merged_;
};

}  // namespace evostore::core
