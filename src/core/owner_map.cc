#include "core/owner_map.h"

#include <algorithm>

namespace evostore::core {

OwnerMap OwnerMap::self_owned(ModelId self, size_t vertex_count) {
  OwnerMap m;
  m.entries_.reserve(vertex_count);
  for (VertexId v = 0; v < vertex_count; ++v) {
    m.entries_.push_back(SegmentKey{self, v});
  }
  return m;
}

OwnerMap OwnerMap::derive(
    ModelId self, size_t vertex_count, const OwnerMap& ancestor,
    const std::vector<std::pair<VertexId, VertexId>>& matches) {
  OwnerMap m = self_owned(self, vertex_count);
  for (auto [child_v, ancestor_v] : matches) {
    // The ancestor's entry already points at the ORIGINAL owner, so chains
    // collapse to a single indirection (the paper's O(1)-in-chain-length
    // read property).
    m.entries_[child_v] = ancestor.entry(ancestor_v);
  }
  return m;
}

std::vector<VertexId> OwnerMap::vertices_owned_by(ModelId owner) const {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < entries_.size(); ++v) {
    if (entries_[v].owner == owner) out.push_back(v);
  }
  return out;
}

std::vector<ModelId> OwnerMap::contributors() const {
  std::vector<ModelId> out;
  for (const auto& e : entries_) {
    if (std::find(out.begin(), out.end(), e.owner) == out.end()) {
      out.push_back(e.owner);
    }
  }
  return out;
}

std::map<ModelId, std::vector<std::pair<VertexId, VertexId>>>
OwnerMap::by_owner() const {
  std::map<ModelId, std::vector<std::pair<VertexId, VertexId>>> out;
  for (VertexId v = 0; v < entries_.size(); ++v) {
    out[entries_[v].owner].emplace_back(v, entries_[v].vertex);
  }
  return out;
}

double OwnerMap::shared_fraction(ModelId self) const {
  if (entries_.empty()) return 0.0;
  size_t shared = 0;
  for (const auto& e : entries_) {
    if (e.owner != self) ++shared;
  }
  return static_cast<double>(shared) / static_cast<double>(entries_.size());
}

void OwnerMap::serialize(common::Serializer& s) const {
  s.u64(entries_.size());
  for (const auto& e : entries_) {
    s.u64(e.owner.value);
    s.u32(e.vertex);
  }
}

OwnerMap OwnerMap::deserialize(common::Deserializer& d) {
  OwnerMap m;
  uint64_t n = d.u64();
  if (!d.check_count(n, 2)) return m;
  m.entries_.reserve(n);
  for (uint64_t i = 0; i < n && d.ok(); ++i) {
    ModelId owner{d.u64()};
    VertexId vertex = d.u32();
    m.entries_.push_back(SegmentKey{owner, vertex});
  }
  return m;
}

}  // namespace evostore::core
