// Owner maps (paper §4.1): the per-model metadata structure at the heart of
// EvoStore's incremental storage and provenance support.
//
// For every leaf-layer vertex of a model's flattened graph, the owner map
// records a `SegmentKey` — (owner model id, vertex id *in the owner's own
// graph*) — identifying the stored parameter segment to read. The owner is
// the most recent ancestor that modified the tensor; a model trained from
// scratch owns everything. One owner-map lookup per vertex reconstructs any
// model regardless of how long its transfer-learning chain is.
//
// Each entry is 128 bits (64-bit model id + 32-bit vertex + padding), which
// is the paper's "at most hundreds of KB" metadata budget.
#pragma once

#include <map>
#include <vector>

#include "common/serde.h"
#include "common/types.h"

namespace evostore::core {

using common::ModelId;
using common::SegmentKey;
using common::VertexId;

class OwnerMap {
 public:
  OwnerMap() = default;

  /// Map for a from-scratch model: every vertex owned by `self`.
  static OwnerMap self_owned(ModelId self, size_t vertex_count);

  /// Map for a derived model: vertices matched to the ancestor inherit the
  /// ancestor's owner entries (following the chain transitively, because the
  /// ancestor's map already points at original owners); all other vertices
  /// are owned by `self`.
  ///
  /// `matches` pairs (child vertex, ancestor vertex) from the LCP query.
  static OwnerMap derive(
      ModelId self, size_t vertex_count, const OwnerMap& ancestor,
      const std::vector<std::pair<VertexId, VertexId>>& matches);

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  const SegmentKey& entry(VertexId v) const { return entries_[v]; }
  void set_entry(VertexId v, SegmentKey key) { entries_[v] = key; }
  const std::vector<SegmentKey>& entries() const { return entries_; }

  /// Vertices whose owner is `m` (for a model's own map with m == self,
  /// these are the segments it physically stores).
  std::vector<VertexId> vertices_owned_by(ModelId m) const;

  /// Distinct contributing models, in first-appearance (vertex) order.
  std::vector<ModelId> contributors() const;

  /// Group entries by owner: owner -> list of (local vertex, owner vertex).
  std::map<ModelId, std::vector<std::pair<VertexId, VertexId>>> by_owner()
      const;

  /// Fraction of vertices NOT owned by `self` (shared with ancestors).
  double shared_fraction(ModelId self) const;

  /// Serialized metadata footprint: 128 bits per leaf layer.
  size_t metadata_bytes() const { return entries_.size() * 16; }

  void serialize(common::Serializer& s) const;
  static OwnerMap deserialize(common::Deserializer& d);

  friend bool operator==(const OwnerMap&, const OwnerMap&) = default;

 private:
  std::vector<SegmentKey> entries_;  // indexed by local VertexId
};

}  // namespace evostore::core
