// Static hash placement of models onto providers (paper §4.1): the owner map
// fully describes a model's composition, so a stateless hash of the model id
// suffices to locate its home provider — no directory service needed.
#pragma once

#include "common/hash.h"
#include "common/types.h"

namespace evostore::core {

inline common::ProviderId provider_for(common::ModelId id,
                                       size_t provider_count) {
  return static_cast<common::ProviderId>(common::mix64(id.value) %
                                         provider_count);
}

}  // namespace evostore::core
