// Deterministic k-way replica placement of models onto providers.
//
// The paper's placement (§4.1) is a stateless hash of model id → one
// provider: the owner map fully describes a model's composition, so no
// directory service is needed. This file generalizes that to rendezvous
// (highest-random-weight, HRW) hashing over the current membership:
// every (model, provider) pair gets a deterministic score, and the model's
// replica set is the top-k live providers by score. HRW gives the property
// single-owner mod-hash lacks and drain/decommission requires: removing a
// provider from the ring moves ONLY the keys that provider held — every
// other key's replica set is unchanged, because the relative order of the
// surviving providers' scores never changes.
//
// Segments are placed by their OWNER model id (same as the owner-map
// metadata), so a model's meta and its self-owned segments always share one
// replica set.
#pragma once

#include <algorithm>
#include <vector>

#include "common/hash.h"
#include "common/types.h"

namespace evostore::core {

/// Rendezvous score for (model, provider). Pure function of the two ids:
/// any node computes the same ranking with no coordination.
constexpr uint64_t placement_score(common::ModelId id,
                                   common::ProviderId provider) {
  return common::hash_combine(common::mix64(id.value), provider);
}

/// Top-k live providers for `id` by descending rendezvous score (ties broken
/// toward the lower provider id, which cannot happen with distinct ids but
/// keeps the sort total). `live` may be empty, meaning "all provider_count
/// providers are in the ring"; otherwise live[p] == false excludes provider
/// p from placement (drained or decommissioned). Returns fewer than k
/// providers only when fewer than k are live.
inline std::vector<common::ProviderId> replicas_for(
    common::ModelId id, size_t provider_count, size_t k,
    const std::vector<bool>& live = {}) {
  std::vector<common::ProviderId> ranked;
  ranked.reserve(provider_count);
  for (size_t p = 0; p < provider_count; ++p) {
    if (!live.empty() && !live[p]) continue;
    ranked.push_back(static_cast<common::ProviderId>(p));
  }
  if (k < ranked.size()) {
    std::partial_sort(ranked.begin(), ranked.begin() + static_cast<long>(k),
                      ranked.end(),
                      [id](common::ProviderId a, common::ProviderId b) {
                        uint64_t sa = placement_score(id, a);
                        uint64_t sb = placement_score(id, b);
                        return sa != sb ? sa > sb : a < b;
                      });
    ranked.resize(k);
  } else {
    std::sort(ranked.begin(), ranked.end(),
              [id](common::ProviderId a, common::ProviderId b) {
                uint64_t sa = placement_score(id, a);
                uint64_t sb = placement_score(id, b);
                return sa != sb ? sa > sb : a < b;
              });
  }
  return ranked;
}

/// Primary (top-1 HRW) provider for `id` over a fully-live ring. Kept for
/// single-replica deployments and call sites that only need a canonical
/// "first" placement; with k-way replication the primary is simply
/// replicas_for(...)[0].
inline common::ProviderId provider_for(common::ModelId id,
                                       size_t provider_count) {
  common::ProviderId best = 0;
  uint64_t best_score = 0;
  for (size_t p = 0; p < provider_count; ++p) {
    uint64_t s = placement_score(id, static_cast<common::ProviderId>(p));
    if (p == 0 || s > best_score) {
      best = static_cast<common::ProviderId>(p);
      best_score = s;
    }
  }
  return best;
}

/// Shared ring-membership view: which providers participate in placement and
/// how many replicas each key gets. One instance is shared (by shared_ptr)
/// between the repository and every client it hands out, so a drain observed
/// by the repository immediately redirects all clients' placement. Drained
/// providers stay addressable on the wire (their node ids remain valid) but
/// receive no new placements.
class Membership {
 public:
  Membership(size_t provider_count, size_t replication)
      : live_(provider_count, true),
        replication_(replication == 0 ? 1 : replication) {}

  size_t provider_count() const { return live_.size(); }
  size_t replication() const { return replication_; }

  bool is_live(common::ProviderId p) const {
    return p < live_.size() && live_[p];
  }
  size_t live_count() const {
    return static_cast<size_t>(std::count(live_.begin(), live_.end(), true));
  }

  /// Remove a provider from placement (drain/decommission). Idempotent.
  void retire_provider(common::ProviderId p) {
    if (p < live_.size()) live_[p] = false;
  }
  /// Re-admit a provider (used by repair once a rebuilt provider rejoins).
  void admit_provider(common::ProviderId p) {
    if (p < live_.size()) live_[p] = true;
  }

  const std::vector<bool>& live() const { return live_; }

  /// Replica set for `id` under the current membership, clamped to the live
  /// provider count.
  std::vector<common::ProviderId> replicas(common::ModelId id) const {
    return replicas_for(id, live_.size(), replication_, live_);
  }

 private:
  std::vector<bool> live_;
  size_t replication_;
};

}  // namespace evostore::core
