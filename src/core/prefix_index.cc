#include "core/prefix_index.h"

#include <utility>

namespace evostore::core {

namespace {
// Domain seed for prefix tokens so they can never collide with other
// Hasher128 uses (chunk ids, graph hashes) by construction.
constexpr uint64_t kTokenSeed = 0x9106f5c1a7e03b2dULL;
}  // namespace

std::vector<common::Hash128> prefix_tokens(const model::ArchGraph& g) {
  std::vector<common::Hash128> tokens;
  if (g.empty()) return tokens;
  tokens.reserve(g.size());

  // Predecessor lists in ascending order (out-edges are iterated in
  // ascending source order, so each preds[w] comes out sorted).
  std::vector<std::vector<common::VertexId>> preds(g.size());
  for (common::VertexId u = 0; u < g.size(); ++u) {
    for (common::VertexId w : g.out_edges(u)) preds[w].push_back(u);
  }

  // Token 0: the root signature alone — Algorithm 1 binds roots purely on
  // signature equality, so the root token must not see structure.
  {
    common::Hasher128 h(kTokenSeed);
    h.h128(g.signature(g.root()));
    tokens.push_back(h.finish());
  }

  for (common::VertexId v = 1; v < g.size(); ++v) {
    // Downward closure under the identity map: every predecessor must have
    // a smaller id. The first violation ends the canonical prefix — beyond
    // it, "same position" no longer implies "same predecessors inside the
    // prefix", and identity matching would be unsound.
    bool closed = true;
    for (common::VertexId p : preds[v]) {
      if (p >= v) {
        closed = false;
        break;
      }
    }
    if (!closed) break;
    common::Hasher128 h(kTokenSeed);
    h.h128(g.signature(v));
    h.u64(g.in_degree(v));
    h.u64(preds[v].size());
    for (common::VertexId p : preds[v]) h.u64(p);
    tokens.push_back(h.finish());
  }
  return tokens;
}

bool is_linear(const model::ArchGraph& g) {
  if (g.empty()) return true;
  std::vector<uint32_t> pred_count(g.size(), 0);
  std::vector<common::VertexId> only_pred(g.size(), 0);
  for (common::VertexId u = 0; u < g.size(); ++u) {
    for (common::VertexId w : g.out_edges(u)) {
      ++pred_count[w];
      only_pred[w] = u;
    }
  }
  if (pred_count[g.root()] != 0) return false;
  for (common::VertexId v = 1; v < g.size(); ++v) {
    if (pred_count[v] != 1 || only_pred[v] != v - 1 || g.in_degree(v) != 1) {
      return false;
    }
  }
  return true;
}

void PrefixIndex::recompute_best(Node& n) {
  bool any = false;
  double q = 0;
  common::ModelId id = common::ModelId::invalid();
  if (!n.homed.empty()) {
    any = true;
    q = n.homed.begin()->first;
    id = n.homed.begin()->second;
  }
  for (const auto& [tok, child] : n.children) {
    (void)tok;
    if (child->subtree_models == 0) continue;
    if (!any || BestOrder{}({child->best_quality, child->best}, {q, id})) {
      any = true;
      q = child->best_quality;
      id = child->best;
    }
  }
  n.best_quality = q;
  n.best = id;
}

void PrefixIndex::insert(common::ModelId id, double quality,
                         const model::ArchGraph& g) {
  std::vector<common::Hash128> tokens = prefix_tokens(g);
  if (tokens.empty()) return;  // empty graph: never matched by the scan
  if (!is_linear(g)) ++non_linear_models_;
  Node* n = &root_;
  ++n->subtree_models;
  if (n->subtree_models == 1 ||
      BestOrder{}({quality, id}, {n->best_quality, n->best})) {
    n->best_quality = quality;
    n->best = id;
  }
  for (const common::Hash128& tok : tokens) {
    auto [it, created] = n->children.try_emplace(tok, nullptr);
    if (created) {
      it->second = std::make_unique<Node>();
      ++node_count_;
    }
    n = it->second.get();
    ++n->subtree_models;
    if (n->subtree_models == 1 ||
        BestOrder{}({quality, id}, {n->best_quality, n->best})) {
      n->best_quality = quality;
      n->best = id;
    }
  }
  n->homed.insert({quality, id});
  ++model_count_;
}

bool PrefixIndex::remove(common::ModelId id, const model::ArchGraph& g) {
  std::vector<common::Hash128> tokens = prefix_tokens(g);
  if (tokens.empty()) return false;

  // Walk down recording the path; bail without touching anything if the
  // model was never indexed (unknown path or no homed entry).
  std::vector<Node*> path;
  path.reserve(tokens.size() + 1);
  Node* n = &root_;
  path.push_back(n);
  for (const common::Hash128& tok : tokens) {
    auto it = n->children.find(tok);
    if (it == n->children.end()) return false;
    n = it->second.get();
    path.push_back(n);
  }
  // The homed set is keyed by (quality, id); find the entry for `id`. The
  // quality stored at insert is authoritative, but scan by id so a caller
  // passing a drifted quality still removes the right record.
  auto homed_it = n->homed.end();
  for (auto it = n->homed.begin(); it != n->homed.end(); ++it) {
    if (it->second == id) {
      homed_it = it;
      break;
    }
  }
  if (homed_it == n->homed.end()) return false;
  n->homed.erase(homed_it);
  --model_count_;
  if (!is_linear(g)) --non_linear_models_;

  // Unwind bottom-up: drop counts, prune empty nodes, refresh aggregates.
  for (size_t i = path.size(); i-- > 0;) {
    Node* cur = path[i];
    --cur->subtree_models;
    if (cur->subtree_models == 0 && i > 0) {
      path[i - 1]->children.erase(tokens[i - 1]);
      --node_count_;
      continue;  // parent aggregate handled on its own unwind step
    }
    recompute_best(*cur);
  }
  return true;
}

void PrefixIndex::clear() {
  root_.children.clear();
  root_.homed.clear();
  root_.subtree_models = 0;
  root_.best_quality = 0;
  root_.best = common::ModelId::invalid();
  model_count_ = 0;
  node_count_ = 0;
  non_linear_models_ = 0;
}

PrefixIndex::LookupResult PrefixIndex::lookup(const model::ArchGraph& g) const {
  return lookup(prefix_tokens(g));
}

PrefixIndex::LookupResult PrefixIndex::lookup(
    const std::vector<common::Hash128>& tokens) const {
  LookupResult r;
  const Node* n = &root_;
  for (const common::Hash128& tok : tokens) {
    auto it = n->children.find(tok);
    if (it == n->children.end()) break;
    n = it->second.get();
    ++r.nodes_visited;
    ++r.depth;
  }
  if (r.depth == 0) return r;  // no model shares even the root signature
  r.found = true;
  r.best = n->best;
  r.best_quality = n->best_quality;
  r.candidates = n->subtree_models;
  return r;
}

size_t PrefixIndex::memory_bytes() const {
  // Deterministic structural model: each trie node costs its struct plus an
  // ordered-map entry (key + red-black node overhead) in its parent; each
  // indexed model costs one homed-set entry (key + tree node overhead).
  constexpr size_t kMapEntryOverhead = 48;  // rb-tree node bookkeeping
  constexpr size_t kNodeBytes =
      sizeof(Node) + sizeof(common::Hash128) + kMapEntryOverhead;
  constexpr size_t kHomedEntryBytes =
      sizeof(std::pair<double, common::ModelId>) + kMapEntryOverhead;
  return sizeof(Node) + node_count_ * kNodeBytes +
         model_count_ * kHomedEntryBytes;
}

}  // namespace evostore::core
