// Input-rooted catalog prefix index for sublinear LCP serving
// (DESIGN.md §16; ROADMAP "Sublinear LCP" item).
//
// Provider-side LCP (paper §4.2, Algorithm 1) is a linear scan of the local
// catalog per `find_ancestor` query — fine at paper scale, the dominant cost
// at model-hub scale. This index maps a query `ArchGraph` to the set of
// catalog models sharing its deepest common prefix in O(prefix depth) trie
// steps instead of O(catalog models) graph comparisons.
//
// Structure: a trie over canonical *prefix tokens*. Token i fingerprints
// vertex i of the BFS-flattened graph — its leaf-layer configuration
// signature, its total in-degree, and the exact (sorted) list of its
// predecessors among earlier-id vertices. Token 0 is the root's signature
// alone (mirroring Algorithm 1's signature-only root binding). The token
// sequence stops at the first vertex whose predecessor set is not fully
// contained in the earlier-id prefix (the prefix is no longer downward
// closed under the identity vertex map, so identity matching is no longer
// valid beyond it).
//
// Exactness contract: two graphs sharing their first d tokens share an
// identity-mapped common prefix of length >= d. When the query AND every
// indexed model are linear chains (each non-root vertex's only predecessor
// is the previous vertex — the shape every fine-tune lineage in the
// sequential workload generators has), Algorithm 1's matching is forced
// vertex-by-vertex and the exact LCP length EQUALS the shared token depth,
// so the deepest trie node plus its best aggregate reproduce the scan's
// answer exactly. For branchy DAGs no trie over one linearization can be
// exact: a query can diverge token-wise from a model early (say in one
// parallel branch) while Algorithm 1 happily matches a deeper prefix
// through the other branch, so a model in a *sibling* subtree may beat the
// trie's answer set. The index therefore tracks how many indexed models are
// non-linear; the serving path consults the trie only when the query is
// linear and `all_linear()` holds, and even then re-runs the exact LCP
// against the chosen candidate, falling back to the full catalog scan on
// any disagreement (see Provider::handle_lcp_query). `--verify` benches and
// the randomized property tests additionally compare whole answers against
// the scan.
//
// Maintenance is incremental — O(token depth) per mutation — on every
// catalog path: put, retire/GC, drain, and the replicate-install path used
// by repair. Like `ChunkStore`, the index is volatile and rebuilt from the
// restored catalog on provider restart.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/hash.h"
#include "common/types.h"
#include "model/arch_graph.h"

namespace evostore::core {

/// Canonical prefix tokens of `g` (see file comment). Empty for an empty
/// graph; otherwise token 0 always exists. The sequence is a maximal
/// downward-closed prefix of the BFS order: it ends at the first vertex with
/// a predecessor of a larger id.
std::vector<common::Hash128> prefix_tokens(const model::ArchGraph& g);

/// True when `g` is a linear chain: vertex 0 has no predecessors and every
/// vertex v >= 1 has exactly one predecessor, v - 1. Inside this family the
/// shared-token depth equals the exact LCP length (see file comment); empty
/// graphs are vacuously linear.
bool is_linear(const model::ArchGraph& g);

class PrefixIndex {
 public:
  struct LookupResult {
    /// True when at least one indexed model shares the query's root token
    /// (equivalently: its root signature — token 0 is a function of the
    /// signature alone, so this matches Algorithm 1's root binding).
    bool found = false;
    /// Shared token depth with every model in the answer set (the deepest
    /// trie node on the query's token path).
    size_t depth = 0;
    /// Best model of the answer set under the scan's tie-break at equal
    /// prefix length: highest quality, then lowest id.
    common::ModelId best = common::ModelId::invalid();
    double best_quality = 0;
    /// Size of the answer set (all models at exactly `depth` shared tokens).
    size_t candidates = 0;
    /// Trie nodes touched by the walk (charged to the LcpCost model by the
    /// caller, alongside the O(|query|) token computation).
    uint64_t nodes_visited = 0;
  };

  /// Index a model. Empty graphs are not indexed (the scan also never
  /// matches them: an empty graph yields an empty LCP against anything).
  void insert(common::ModelId id, double quality, const model::ArchGraph& g);

  /// Remove a model previously inserted with the same (id, graph). Returns
  /// false (and changes nothing) if it was never indexed.
  bool remove(common::ModelId id, const model::ArchGraph& g);

  /// Drop everything (drain, restart).
  void clear();

  /// Answer set for a query graph: the deepest trie node on the query's
  /// token path, with the per-subtree best aggregate.
  LookupResult lookup(const model::ArchGraph& g) const;
  /// Same, over precomputed tokens (lets the caller charge token
  /// computation separately and reuse the tokens).
  LookupResult lookup(const std::vector<common::Hash128>& tokens) const;

  size_t model_count() const { return model_count_; }
  size_t node_count() const { return node_count_; }
  /// True when every indexed model is a linear chain — the regime where a
  /// trie answer for a linear query is provably the scan's answer. Branchy
  /// models are still indexed (so the catalog mirror stays trivial and the
  /// index re-arms the moment the last one retires), but while any is
  /// present the serving path must scan.
  bool all_linear() const { return non_linear_models_ == 0; }
  /// Physical footprint model: trie nodes (struct + ordered child-map entry
  /// overhead) plus one homed-set entry per indexed model. Deterministic by
  /// construction — counts structures, not allocator jitter.
  size_t memory_bytes() const;

 private:
  /// (quality desc, id asc): *begin() of a set ordered this way is the
  /// scan's tie-break winner at a fixed prefix length.
  struct BestOrder {
    bool operator()(const std::pair<double, common::ModelId>& a,
                    const std::pair<double, common::ModelId>& b) const {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    }
  };

  struct Node {
    /// Ordered children so every walk (and any future export) is
    /// deterministic regardless of insertion order.
    std::map<common::Hash128, std::unique_ptr<Node>> children;
    /// Models whose token sequence ends exactly here.
    std::set<std::pair<double, common::ModelId>, BestOrder> homed;
    /// Aggregates over the whole subtree (this node + descendants).
    size_t subtree_models = 0;
    double best_quality = 0;
    common::ModelId best = common::ModelId::invalid();
  };

  /// Recompute `n`'s best aggregate from its homed set and child
  /// aggregates (children are already up to date).
  static void recompute_best(Node& n);

  Node root_;  // synthetic super-root; children keyed by token 0
  size_t model_count_ = 0;
  size_t node_count_ = 0;  // excludes the super-root
  size_t non_linear_models_ = 0;
};

}  // namespace evostore::core
