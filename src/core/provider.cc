#include "core/provider.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "common/log.h"
#include "core/lcp.h"
#include "core/placement.h"

namespace evostore::core {

using common::Bytes;
using common::ModelId;
using common::Status;

namespace {
template <typename Response>
Bytes pack(const Response& response) {
  common::Serializer s;
  response.serialize(s);
  return std::move(s).take();
}
}  // namespace

Provider::Provider(net::RpcSystem& rpc, common::NodeId node,
                   common::ProviderId id, ProviderConfig config,
                   storage::KvStore* backend)
    : sim_(&rpc.simulation()),
      rpc_(&rpc),
      flows_(&rpc.fabric().flows()),
      node_(node),
      id_(id),
      config_(config),
      backend_(backend),
      chunk_store_(backend) {
  if (config_.pool_bandwidth > 0) {
    pool_port_ = flows_->add_port(config_.pool_bandwidth,
                                  "pool" + std::to_string(id));
    pool_enabled_ = true;
  }
  hist_put_seconds_ = metrics_.histogram("put.seconds");
  hist_put_bytes_ = metrics_.histogram("put.physical_bytes");
  hist_read_seconds_ = metrics_.histogram("read.seconds");
  hist_read_bytes_ = metrics_.histogram("read.physical_bytes");
  hist_lcp_seconds_ = metrics_.histogram("lcp.seconds");
  hist_refs_seconds_ = metrics_.histogram("refs.seconds");
  hist_chunk_bytes_ = metrics_.histogram("chunk.payload_bytes");
  counter_chunk_hits_ = metrics_.counter("chunk.hits");
  counter_chunk_misses_ = metrics_.counter("chunk.misses");
  if (obs::MetricsRegistry* shared = rpc.metrics()) {
    shared_put_seconds_ = shared->histogram("provider.put_seconds");
    shared_put_bytes_ = shared->histogram("provider.put_physical_bytes");
    shared_read_seconds_ = shared->histogram("provider.read_seconds");
    shared_read_bytes_ = shared->histogram("provider.read_physical_bytes");
    shared_lcp_seconds_ = shared->histogram("provider.lcp_seconds");
    shared_refs_seconds_ = shared->histogram("provider.refs_seconds");
    shared_chunk_bytes_ = shared->histogram("provider.chunk_payload_bytes");
  }
  if (backend_ != nullptr) restore_from_backend();
  register_handlers(rpc);
}

// ---- persistence --------------------------------------------------------

std::string Provider::meta_key(common::ModelId id) {
  return "meta/" + std::to_string(id.value);
}

std::string Provider::segment_key(const common::SegmentKey& key) {
  return "seg/" + std::to_string(key.owner.value) + "/" +
         std::to_string(key.vertex);
}

std::string Provider::token_key(uint64_t token) {
  return "tok/" + std::to_string(token);
}

void Provider::persist_meta(common::ModelId id, const MetaRecord& meta) {
  if (backend_ == nullptr) return;
  common::Serializer s;
  meta.graph.serialize(s);
  meta.owners.serialize(s);
  s.f64(meta.quality);
  s.u64(meta.ancestor.value);
  s.f64(meta.store_time);
  s.u64(meta.store_seq);
  auto st = backend_->put(meta_key(id),
                          common::Buffer::dense(std::move(s).take()));
  if (!st.ok()) EVO_WARN << "persist_meta: " << st.to_string();
}

void Provider::erase_meta(common::ModelId id) {
  if (backend_ == nullptr) return;
  (void)backend_->erase(meta_key(id));
}

void Provider::persist_segment(const common::SegmentKey& key,
                               const SegEntry& entry) {
  if (backend_ == nullptr) return;
  common::Serializer s;
  s.i64(entry.refs);
  s.u64(entry.version);
  entry.segment.serialize(s);
  auto st = backend_->put(segment_key(key),
                          common::Buffer::dense(std::move(s).take()));
  if (!st.ok()) EVO_WARN << "persist_segment: " << st.to_string();
}

std::string Provider::pin_record_key(uint64_t epoch,
                                     const common::SegmentKey& key) {
  return "pin/" + std::to_string(epoch) + "/" +
         std::to_string(key.owner.value) + "/" + std::to_string(key.vertex);
}

void Provider::persist_pin(uint64_t epoch, const common::SegmentKey& key,
                           uint32_t count) {
  if (backend_ == nullptr) return;
  if (count == 0) {
    (void)backend_->erase(pin_record_key(epoch, key));
    return;
  }
  common::Serializer s;
  s.u64(count);
  auto st = backend_->put(pin_record_key(epoch, key),
                          common::Buffer::dense(std::move(s).take()));
  if (!st.ok()) EVO_WARN << "persist_pin: " << st.to_string();
}

void Provider::pin_add(uint64_t epoch, const common::SegmentKey& key) {
  uint32_t& count = pins_[epoch][key];
  ++count;
  ++stats_.pins_recorded;
  persist_pin(epoch, key, count);
}

void Provider::pin_remove(uint64_t epoch, const common::SegmentKey& key) {
  auto eit = pins_.find(epoch);
  if (eit == pins_.end()) return;
  auto kit = eit->second.find(key);
  if (kit == eit->second.end()) return;
  uint32_t remaining = --kit->second;
  if (remaining == 0) eit->second.erase(kit);
  persist_pin(epoch, key, remaining);
  if (eit->second.empty()) pins_.erase(eit);
}

void Provider::account_stored(const compress::CompressedSegment& env,
                              int dir) {
  size_t idx = compress::codec_index(env.codec);
  // The per-codec table and physical_bytes_ charge the envelope's full
  // codec-output size whatever its storage kind — the pre-dedup view that
  // isolates what compression achieved. Only inline_physical_bytes_ splits
  // by kind: chunked envelopes' at-rest cost lives in the chunk store.
  bool is_inline = env.kind == compress::EnvelopeKind::kInline;
  if (dir > 0) {
    payload_bytes_ += env.logical_bytes;
    physical_bytes_ += env.physical_bytes;
    if (is_inline) inline_physical_bytes_ += env.physical_bytes;
    ++codec_usage_[idx].segments;
    codec_usage_[idx].logical_bytes += env.logical_bytes;
    codec_usage_[idx].physical_bytes += env.physical_bytes;
  } else {
    payload_bytes_ -= env.logical_bytes;
    physical_bytes_ -= env.physical_bytes;
    if (is_inline) inline_physical_bytes_ -= env.physical_bytes;
    --codec_usage_[idx].segments;
    codec_usage_[idx].logical_bytes -= env.logical_bytes;
    codec_usage_[idx].physical_bytes -= env.physical_bytes;
  }
}

// ---- chunk dedup (DESIGN.md §13) ----------------------------------------

void Provider::maybe_chunk(compress::CompressedSegment& env) {
  if (!config_.chunking || !config_.chunker.valid()) return;
  if (env.kind != compress::EnvelopeKind::kInline) return;
  if (env.payload.size() < config_.chunker.min_bytes) return;
  std::span<const std::byte> payload(env.payload);
  std::vector<size_t> ends =
      compress::chunk_boundaries(payload, config_.chunker);
  const uint64_t physical = env.physical_bytes;
  const uint64_t total = payload.size();
  env.chunks.reserve(ends.size());
  size_t start = 0;
  uint64_t dedup_hits = 0;
  for (size_t end : ends) {
    std::span<const std::byte> piece = payload.subspan(start, end - start);
    common::Hash128 digest = common::hash128_bytes(piece);
    // Proportional share of the envelope's modeled physical cost; the
    // telescoping floors make per-envelope chunk costs sum to exactly
    // env.physical_bytes, so dedup-free accounting is unchanged.
    uint64_t cost = physical * end / total - physical * start / total;
    bool miss = chunk_store_.add_ref(digest, piece, cost);
    (miss ? counter_chunk_misses_ : counter_chunk_hits_)->add(1);
    if (!miss) ++dedup_hits;
    record(hist_chunk_bytes_, shared_chunk_bytes_,
           static_cast<double>(piece.size()));
    env.chunks.push_back(
        compress::ChunkRef{digest, static_cast<uint32_t>(piece.size())});
    start = end;
  }
  if (dedup_hits > 0) {
    if (obs::EventLog* ev = events()) {
      // Aggregated per envelope, not per chunk, to bound event volume.
      ev->record(sim_->now(), "dedup.hit", node_,
                 {{"chunks", obs::EventLog::u64(dedup_hits)},
                  {"of", obs::EventLog::u64(ends.size())}});
    }
  }
  env.kind = compress::EnvelopeKind::kChunked;
  env.payload.clear();
  env.payload.shrink_to_fit();
}

common::Result<compress::CompressedSegment> Provider::reassemble(
    const compress::CompressedSegment& env) const {
  if (env.kind == compress::EnvelopeKind::kInline) return env;
  compress::CompressedSegment out = env;
  out.kind = compress::EnvelopeKind::kInline;
  out.chunks.clear();
  out.payload.reserve(env.manifest_bytes());
  for (const compress::ChunkRef& c : env.chunks) {
    const storage::ChunkStore::Chunk* chunk = chunk_store_.find(c.digest);
    if (chunk == nullptr || chunk->bytes.size() != c.bytes) {
      return Status::Corruption("chunk " + c.digest.hex() +
                                " missing or resized");
    }
    out.payload.insert(out.payload.end(), chunk->bytes.begin(),
                       chunk->bytes.end());
  }
  return out;
}

void Provider::release_chunks(const compress::CompressedSegment& env) {
  for (const compress::ChunkRef& c : env.chunks) {
    chunk_store_.release(c.digest);
  }
}

void Provider::erase_segment_record(const common::SegmentKey& key) {
  if (backend_ == nullptr) return;
  (void)backend_->erase(segment_key(key));
}

bool Provider::release_ref(const common::SegmentKey& key,
                           uint64_t* freed_bytes,
                           std::vector<common::SegmentKey>* freed_bases) {
  auto it = segments_.find(key);
  if (it == segments_.end()) return false;
  ++stats_.refs_removed;
  if (--it->second.refs <= 0) {
    const auto& env = it->second.segment;
    *freed_bytes += env.logical_bytes;
    // A freed delta envelope releases the reference it held on its base;
    // the caller decrements that key next (cascading down the chain).
    if (env.has_base) freed_bases->push_back(env.base);
    // A freed chunked envelope releases its manifest's chunk references;
    // each chunk dies only when no other segment's manifest names it.
    release_chunks(env);
    account_stored(env, -1);
    segments_.erase(it);
    erase_segment_record(key);
    cache_dir_.erase(key);
    ++stats_.segments_freed;
  } else {
    persist_segment(key, it->second);
  }
  return true;
}

// ---- pin ledger (DESIGN.md §14) -----------------------------------------

void Provider::observe_epoch(uint64_t token) {
  if (token == 0) return;
  uint64_t epoch = token >> 48;
  if (epoch <= last_pin_epoch_) return;
  last_pin_epoch_ = epoch;
  reap_stale_pins(epoch);
}

void Provider::reap_stale_pins(uint64_t current_epoch) {
  uint64_t reaped = 0;
  for (auto it = pins_.begin();
       it != pins_.end() && it->first < current_epoch;) {
    for (const auto& [key, count] : it->second) {
      // Release the leaked pins, cascading through locally stored delta
      // bases. A base living on another provider can't be reached from
      // here; its own pin record (if the transfer pinned it) is reaped by
      // that provider when it observes the epoch bump.
      std::vector<common::SegmentKey> frontier(count, key);
      while (!frontier.empty()) {
        common::SegmentKey k = frontier.back();
        frontier.pop_back();
        uint64_t bytes = 0;
        std::vector<common::SegmentKey> bases;
        if (!release_ref(k, &bytes, &bases)) {
          EVO_WARN << "pin reap: segment " << k.to_string()
                   << " not stored locally; skipped";
          continue;
        }
        for (const auto& b : bases) frontier.push_back(b);
      }
      reaped += count;
      persist_pin(it->first, key, 0);
    }
    it = pins_.erase(it);
  }
  if (reaped > 0) {
    stats_.pins_reaped += reaped;
    EVO_INFO << "provider " << id_ << " reaped " << reaped
             << " stale pin(s) from epochs < " << current_epoch;
  }
}

uint64_t Provider::segment_version(const common::SegmentKey& key) const {
  auto it = segments_.find(key);
  return it == segments_.end() ? 0 : it->second.version;
}

uint64_t Provider::pinned_count(const common::SegmentKey& key) const {
  uint64_t n = 0;
  for (const auto& [epoch, keys] : pins_) {
    auto it = keys.find(key);
    if (it != keys.end()) n += it->second;
  }
  return n;
}

size_t Provider::pin_ledger_size() const {
  size_t n = 0;
  for (const auto& [epoch, keys] : pins_) n += keys.size();
  return n;
}

const common::Bytes* Provider::dedup_lookup(uint64_t token) {
  if (token == 0) return nullptr;
  auto it = dedup_.find(token);
  if (it == dedup_.end()) return nullptr;
  ++stats_.deduped_replays;
  return &it->second;
}

void Provider::dedup_store(uint64_t token, const common::Bytes& response) {
  if (token == 0) return;
  if (!dedup_.emplace(token, response).second) return;  // already cached
  dedup_order_.push_back(token);
  if (backend_ != nullptr) {
    common::Serializer s;
    s.u64(++dedup_seq_);
    s.bytes(response);
    auto st = backend_->put(token_key(token),
                            common::Buffer::dense(std::move(s).take()));
    if (!st.ok()) EVO_WARN << "dedup_store: " << st.to_string();
  }
  while (dedup_order_.size() > config_.dedup_window) {
    uint64_t evict = dedup_order_.front();
    dedup_order_.pop_front();
    dedup_.erase(evict);
    if (backend_ != nullptr) (void)backend_->erase(token_key(evict));
  }
}

void Provider::restart() {
  ++stats_.restarts;
  models_.clear();
  lcp_index_.clear();
  segments_.clear();
  cache_dir_.clear();
  pins_.clear();
  last_pin_epoch_ = 0;
  dedup_.clear();
  dedup_order_.clear();
  hints_.clear();
  hint_seq_ = 0;
  payload_bytes_ = 0;
  physical_bytes_ = 0;
  inline_physical_bytes_ = 0;
  chunk_store_.clear();
  codec_usage_ = {};
  seq_ = 0;
  dedup_seq_ = 0;
  if (backend_ != nullptr) restore_from_backend();
  if (obs::EventLog* ev = events()) {
    ev->record(sim_->now(), "provider.recover", node_,
               {{"models", obs::EventLog::u64(models_.size())},
                {"segments", obs::EventLog::u64(segments_.size())},
                {"hints", obs::EventLog::u64(hints_.size())}});
  }
  EVO_INFO << "provider " << id_ << " restarted: " << models_.size()
           << " models, " << segments_.size() << " segments recovered";
}

void Provider::restore_from_backend() {
  // Sort for a deterministic rebuild regardless of the backend's native key
  // order (MemKv hashes, LogKv replays the log).
  std::vector<std::string> keys = backend_->keys();
  std::sort(keys.begin(), keys.end());
  // (dedup seq, token, packed response) — ordered below to rebuild the FIFO.
  std::vector<std::tuple<uint64_t, uint64_t, common::Bytes>> tokens;
  for (const auto& key : keys) {
    auto value = backend_->get(key);
    if (!value.ok()) continue;
    common::Buffer buf = value.value().materialize();
    common::Deserializer d(buf.dense_span());
    if (key.rfind("chunk/", 0) == 0) {
      // Sorted iteration visits "chunk/" before "meta/" and "seg/", so every
      // chunk record is installed (at zero references) before any surviving
      // segment manifest re-references it below.
      uint64_t seq = std::strtoull(key.c_str() + 6, nullptr, 10);
      common::Hash128 digest;
      digest.hi = d.u64();
      digest.lo = d.u64();
      uint64_t cost = d.u64();
      common::Bytes bytes = d.bytes();
      if (!d.finish().ok()) {
        EVO_WARN << "restore: corrupt chunk record '" << key << "'";
        continue;
      }
      chunk_store_.install(digest, std::move(bytes), cost, seq);
    } else if (key.rfind("tok/", 0) == 0) {
      uint64_t token = std::strtoull(key.c_str() + 4, nullptr, 10);
      uint64_t at = d.u64();
      common::Bytes resp = d.bytes();
      if (!d.finish().ok()) {
        EVO_WARN << "restore: corrupt token record '" << key << "'";
        continue;
      }
      tokens.emplace_back(at, token, std::move(resp));
    } else if (key.rfind("hint/", 0) == 0) {
      // Parked hinted handoffs survive this provider's own crashes: the
      // guarantee is "replayed once the target recovers", not "replayed
      // unless the custodian also crashed in between".
      uint64_t seq = std::strtoull(key.c_str() + 5, nullptr, 10);
      wire::HintRecord hint = wire::HintRecord::deserialize(d);
      if (!d.finish().ok()) {
        EVO_WARN << "restore: corrupt hint record '" << key << "'";
        continue;
      }
      hint_seq_ = std::max(hint_seq_, seq);
      hints_.emplace(seq, std::move(hint));
    } else if (key.rfind("meta/", 0) == 0) {
      common::ModelId id{std::strtoull(key.c_str() + 5, nullptr, 10)};
      MetaRecord meta;
      meta.graph = model::ArchGraph::deserialize(d);
      meta.owners = OwnerMap::deserialize(d);
      meta.quality = d.f64();
      meta.ancestor.value = d.u64();
      meta.store_time = d.f64();
      meta.store_seq = d.u64();
      if (!d.finish().ok()) {
        EVO_WARN << "restore: corrupt metadata record '" << key << "'";
        continue;
      }
      seq_ = std::max(seq_, meta.store_seq);
      models_.emplace(id, std::move(meta));
    } else if (key.rfind("pin/", 0) == 0) {
      // "pin/<epoch>/<owner>/<vertex>" -> u64 outstanding pin count. The
      // ledger survives provider crashes so a client-incarnation bump can
      // still reap pins recorded before the crash.
      const char* p = key.c_str() + 4;
      char* end = nullptr;
      uint64_t epoch = std::strtoull(p, &end, 10);
      if (end == nullptr || *end != '/') continue;
      common::ModelId owner{std::strtoull(end + 1, &end, 10)};
      if (end == nullptr || *end != '/') continue;
      auto vertex =
          static_cast<common::VertexId>(std::strtoul(end + 1, nullptr, 10));
      uint64_t count = d.u64();
      if (!d.finish().ok() || count == 0) {
        EVO_WARN << "restore: corrupt pin record '" << key << "'";
        continue;
      }
      pins_[epoch][common::SegmentKey{owner, vertex}] =
          static_cast<uint32_t>(count);
    } else if (key.rfind("seg/", 0) == 0) {
      const char* p = key.c_str() + 4;
      char* end = nullptr;
      common::ModelId owner{std::strtoull(p, &end, 10)};
      if (end == nullptr || *end != '/') continue;
      auto vertex = static_cast<common::VertexId>(
          std::strtoul(end + 1, nullptr, 10));
      SegEntry entry;
      entry.refs = static_cast<int32_t>(d.i64());
      entry.version = d.u64();
      entry.segment = compress::CompressedSegment::deserialize(d);
      if (!d.finish().ok() ||
          compress::codec_for(entry.segment.codec) == nullptr) {
        EVO_WARN << "restore: corrupt segment record '" << key << "'";
        continue;
      }
      // Versions share the store sequence; segments can outlive their
      // model's metadata (retired model, still-referenced segments), so the
      // sequence restores from both.
      seq_ = std::max(seq_, entry.version);
      if (entry.segment.kind == compress::EnvelopeKind::kChunked) {
        // Re-take the manifest's chunk references. A manifest pointing at a
        // chunk whose record did not survive is unreadable: drop it (and its
        // backend record) rather than restore a segment no read can serve.
        size_t taken = 0;
        bool complete = true;
        for (const compress::ChunkRef& c : entry.segment.chunks) {
          if (!chunk_store_.add_ref_existing(c.digest)) {
            complete = false;
            break;
          }
          ++taken;
        }
        if (!complete) {
          for (size_t i = 0; i < taken; ++i) {
            chunk_store_.release(entry.segment.chunks[i].digest);
          }
          EVO_WARN << "restore: segment record '" << key
                   << "' references missing chunks; dropped";
          (void)backend_->erase(key);
          continue;
        }
      }
      account_stored(entry.segment, +1);
      segments_.emplace(common::SegmentKey{owner, vertex}, std::move(entry));
    }
  }
  // Rebuild the idempotency cache in its original FIFO order so a retry
  // arriving after a crash still replays instead of re-applying.
  std::sort(tokens.begin(), tokens.end(),
            [](const auto& a, const auto& b) {
              return std::get<0>(a) < std::get<0>(b);
            });
  for (auto& [at, token, resp] : tokens) {
    dedup_seq_ = std::max(dedup_seq_, at);
    if (dedup_.emplace(token, std::move(resp)).second) {
      dedup_order_.push_back(token);
    }
  }
  // Chunk records whose every referencing manifest died with the crash (the
  // put persisted its chunks but not yet its segment) are orphans: sweep
  // them so the store and the backend reflect only reachable chunks.
  size_t orphans = chunk_store_.drop_unreferenced();
  if (orphans > 0) {
    EVO_INFO << "restore: dropped " << orphans << " orphaned chunk(s)";
  }
  // Rebuild the prefix index from the restored catalog. Like the chunk
  // store it is derived state — never persisted, always reconstructed.
  // model_ids() sorts, so the rebuild inserts in deterministic order.
  if (config_.lcp_index) {
    lcp_index_.clear();
    for (ModelId id : model_ids()) {
      const MetaRecord& meta = models_.at(id);
      lcp_index_.insert(id, meta.quality, meta.graph);
    }
  }
}

sim::CoTask<void> Provider::charge_pool(double bytes) {
  if (!pool_enabled_ || bytes <= 0) co_return;
  std::vector<sim::PortId> path;
  path.push_back(pool_port_);
  co_await flows_->transfer(std::move(path), bytes);
}

void Provider::register_handlers(net::RpcSystem& rpc) {
  rpc.register_handler(node_, kPutModel, [this](Bytes b, net::HandlerContext c) {
    return handle_put(std::move(b), c);
  });
  rpc.register_handler(node_, kGetMeta, [this](Bytes b) {
    return handle_get_meta(std::move(b));
  });
  rpc.register_handler(node_, kReadSegments,
                       [this](Bytes b, net::HandlerContext c) {
                         return handle_read_segments(std::move(b), c);
                       });
  rpc.register_handler(node_, kModifyRefs,
                       [this](Bytes b, net::HandlerContext c) {
                         return handle_modify_refs(std::move(b), c);
                       });
  rpc.register_handler(node_, kRetire, [this](Bytes b) {
    return handle_retire(std::move(b));
  });
  rpc.register_handler(node_, kLcpQuery,
                       [this](Bytes b, net::HandlerContext c) {
                         return handle_lcp_query(std::move(b), c);
                       });
  rpc.register_handler(node_, kGetStats, [this](Bytes b) {
    return handle_get_stats(std::move(b));
  });
  rpc.register_handler(node_, kStoreHint, [this](Bytes b) {
    return handle_store_hint(std::move(b));
  });
  rpc.register_handler(node_, kReplicate,
                       [this](Bytes b, net::HandlerContext c) {
                         return handle_replicate(std::move(b), c);
                       });
  rpc.register_handler(node_, kFetchChunks,
                       [this](Bytes b, net::HandlerContext c) {
                         return handle_fetch_chunks(std::move(b), c);
                       });
  rpc.register_handler(node_, kDrain, [this](Bytes b, net::HandlerContext c) {
    return handle_drain(std::move(b), c);
  });
  rpc.register_handler(node_, kRepairPeer,
                       [this](Bytes b, net::HandlerContext c) {
                         return handle_repair(std::move(b), c);
                       });
}

int Provider::refcount(const common::SegmentKey& key) const {
  auto it = segments_.find(key);
  return it == segments_.end() ? 0 : it->second.refs;
}

size_t Provider::metadata_bytes() const {
  size_t n = 0;
  for (const auto& [id, meta] : models_) {
    n += meta.owners.metadata_bytes();
    // Compact graph: per vertex, a signature (16B) plus edge list entries.
    n += meta.graph.size() * 16 + meta.graph.edge_count() * 4;
  }
  return n;
}

std::vector<ModelId> Provider::model_ids() const {
  std::vector<ModelId> out;
  out.reserve(models_.size());
  for (const auto& [id, meta] : models_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

sim::CoTask<Bytes> Provider::handle_put(Bytes request,
                                        net::HandlerContext ctx) {
  double t0 = sim_->now();
  common::Deserializer d(request);
  auto req = wire::PutModelRequest::deserialize(d);
  wire::PutModelResponse resp;
  if (!d.ok()) {
    resp.status = d.status();
    co_return pack(resp);
  }
  ++stats_.puts;
  if (drained_) {
    resp.status = Status::Unavailable("provider " + std::to_string(id_) +
                                      " drained");
    co_return pack(resp);
  }
  // A token minted by a newer client incarnation proves the older ones are
  // gone — reap the transfer pins they leaked (DESIGN.md §14).
  observe_epoch(req.token);
  co_await sim_->delay(config_.op_seconds +
                       config_.per_segment_seconds *
                           static_cast<double>(req.new_segments.size()));
  if (models_.find(req.id) != models_.end()) {
    resp.status = Status::AlreadyExists("model " + req.id.to_string());
    co_return pack(resp);
  }
  uint64_t physical = 0;
  for (const auto& [v, env] : req.new_segments) {
    if (compress::codec_for(env.codec) == nullptr) {
      resp.status = Status::InvalidArgument("unknown codec in put");
      co_return pack(resp);
    }
    // Manifests are provider-local (they index this provider's chunk
    // store); a client can only ever submit inline envelopes.
    if (env.kind != compress::EnvelopeKind::kInline) {
      resp.status = Status::InvalidArgument("chunked envelope on the wire");
      co_return pack(resp);
    }
    physical += env.physical_bytes;
  }
  {
    // The pool moves what is actually stored: post-compression bytes.
    obs::Span write = obs::Tracer::maybe_begin(tracer(), "segment_write",
                                               node_, ctx.trace);
    write.tag_u64("segments", req.new_segments.size());
    write.tag_u64("physical_bytes", physical);
    co_await charge_pool(static_cast<double>(physical));
  }
  // Re-check after the await: a drain may have started (committing into a
  // catalog the drain already migrated would strand the model) ...
  if (drained_) {
    resp.status = Status::Unavailable("provider " + std::to_string(id_) +
                                      " drained");
    co_return pack(resp);
  }
  // ... and a deadline-driven retry of this same put may have landed while
  // the pool transfer ran (model ids are globally unique, so AlreadyExists
  // here can only mean an earlier attempt succeeded).
  if (models_.find(req.id) != models_.end()) {
    resp.status = Status::AlreadyExists("model " + req.id.to_string());
    co_return pack(resp);
  }
  MetaRecord meta;
  meta.graph = std::move(req.graph);
  meta.owners = std::move(req.owners);
  meta.quality = req.quality;
  meta.ancestor = req.ancestor;
  meta.store_time = sim_->now();
  meta.store_seq = ++seq_;
  resp.store_seq = meta.store_seq;
  {
    // Commit metadata + segments to the catalog and (when backed) the
    // persistent KV. Instantaneous in sim time — the span exists for its
    // parent/child link under the put, not its duration.
    obs::Span commit =
        obs::Tracer::maybe_begin(tracer(), "kv_commit", node_, ctx.trace);
    commit.tag_u64("segments", req.new_segments.size());
    commit.tag("backed", backend_ != nullptr ? "true" : "false");
    persist_meta(req.id, meta);
    auto [mit, inserted] = models_.emplace(req.id, std::move(meta));
    if (config_.lcp_index && inserted) {
      lcp_index_.insert(req.id, mit->second.quality, mit->second.graph);
    }
    for (auto& [v, env] : req.new_segments) {
      common::SegmentKey key{req.id, v};
      stats_.logical_bytes_ingested += env.logical_bytes;
      stats_.physical_bytes_ingested += env.physical_bytes;
      // Storage decision, after the wire cost is paid: large payloads are
      // split into deduplicated chunks and the envelope keeps a manifest.
      maybe_chunk(env);
      account_stored(env, +1);
      // The segment's cache-validation version is the put's store sequence:
      // monotonic, so re-created keys always look newer than stale copies.
      segments_[key] = SegEntry{std::move(env), 1, resp.store_seq};
      persist_segment(key, segments_[key]);
    }
  }
  record(hist_put_seconds_, shared_put_seconds_, sim_->now() - t0);
  record(hist_put_bytes_, shared_put_bytes_, static_cast<double>(physical));
  resp.status = Status::Ok();
  co_return pack(resp);
}

sim::CoTask<Bytes> Provider::handle_get_meta(Bytes request) {
  common::Deserializer d(request);
  auto req = wire::GetMetaRequest::deserialize(d);
  wire::GetMetaResponse resp;
  ++stats_.meta_gets;
  co_await sim_->delay(config_.op_seconds);
  auto it = models_.find(req.id);
  if (it != models_.end() && d.ok()) {
    resp.found = true;
    resp.graph = it->second.graph;
    resp.owners = it->second.owners;
    resp.quality = it->second.quality;
    resp.ancestor = it->second.ancestor;
    resp.store_time = it->second.store_time;
    resp.store_seq = it->second.store_seq;
  }
  co_return pack(resp);
}

sim::CoTask<Bytes> Provider::handle_read_segments(Bytes request,
                                                  net::HandlerContext ctx) {
  double t0 = sim_->now();
  common::Deserializer d(request);
  auto req = wire::ReadSegmentsRequest::deserialize(d);
  wire::ReadSegmentsResponse resp;
  if (!d.ok()) {
    resp.status = d.status();
    co_return pack(resp);
  }
  ++stats_.segment_reads;
  co_await sim_->delay(config_.op_seconds +
                       config_.per_segment_seconds *
                           static_cast<double>(req.keys.size()));
  resp.info.reserve(req.keys.size());
  for (size_t i = 0; i < req.keys.size(); ++i) {
    const auto& key = req.keys[i];
    auto it = segments_.find(key);
    if (it == segments_.end()) {
      resp.info.clear();
      resp.segments.clear();
      resp.payload_bytes = 0;
      resp.status = Status::NotFound("segment " + key.to_string());
      co_return pack(resp);
    }
    const uint64_t version = it->second.version;
    // Validation handshake (DESIGN.md §14): the client's cached copy is
    // current iff its version matches — answer kNotModified and move no
    // payload. Version 0 (or no vector) means "not cached".
    uint64_t cached = i < req.cached_versions.size()
                          ? req.cached_versions[i]
                          : 0;
    if (cached != 0 && cached == version) {
      resp.info.push_back(
          {wire::ReadEntryState::kNotModified, version, 0});
      ++stats_.not_modified_reads;
      if (req.caching) cache_dir_[key] = req.reader_node;
      continue;
    }
    // Redirect hint: point the reader at the last client known to cache
    // this segment (ScaleStore-style cooperative caching). The hint is
    // best-effort — a cold or crashed peer makes the reader fall back here
    // with accept_redirect off.
    if (req.accept_redirect) {
      auto dir = cache_dir_.find(key);
      if (dir != cache_dir_.end()) {
        // Never bounce a reader at a peer this provider can observe dead —
        // the injector stands in for the deployment's failure detector. A
        // stale hint at a crashed client would cost every reader a full
        // peer timeout per key until the entry is overwritten; drop it.
        net::FaultInjector* injector = rpc_->fault_injector();
        if (injector != nullptr && !injector->node_up(dir->second)) {
          cache_dir_.erase(dir);
        } else if (dir->second != req.reader_node) {
          resp.info.push_back(
              {wire::ReadEntryState::kRedirect, version, dir->second});
          ++stats_.redirects_issued;
          continue;
        }
      }
    }
    // Chunked envelopes resolve back to inline here: the manifest only
    // means something to this provider's chunk store, and the wire cost of
    // a read is the full post-compression payload either way.
    auto env = reassemble(it->second.segment);
    if (!env.ok()) {
      resp.info.clear();
      resp.segments.clear();
      resp.payload_bytes = 0;
      resp.status = env.status();
      co_return pack(resp);
    }
    resp.info.push_back({wire::ReadEntryState::kFresh, version, 0});
    resp.payload_bytes += env->physical_bytes;
    resp.segments.push_back(std::move(*env));
    if (req.caching) cache_dir_[key] = req.reader_node;
  }
  {
    obs::Span fetch = obs::Tracer::maybe_begin(tracer(), "segment_read",
                                               node_, ctx.trace);
    fetch.tag_u64("segments", req.keys.size());
    fetch.tag_u64("physical_bytes", resp.payload_bytes);
    co_await charge_pool(static_cast<double>(resp.payload_bytes));
  }
  record(hist_read_seconds_, shared_read_seconds_, sim_->now() - t0);
  record(hist_read_bytes_, shared_read_bytes_,
         static_cast<double>(resp.payload_bytes));
  resp.status = Status::Ok();
  co_return pack(resp);
}

sim::CoTask<Bytes> Provider::handle_modify_refs(Bytes request,
                                                net::HandlerContext ctx) {
  double t0 = sim_->now();
  common::Deserializer d(request);
  auto req = wire::ModifyRefsRequest::deserialize(d);
  wire::ModifyRefsResponse resp;
  if (!d.ok()) {
    resp.status = d.status();
    co_return pack(resp);
  }
  obs::Span span =
      obs::Tracer::maybe_begin(tracer(), "modify_refs", node_, ctx.trace);
  span.tag_u64("keys", req.keys.size());
  span.tag("increment", req.increment ? "true" : "false");
  co_await sim_->delay(config_.per_segment_seconds *
                       static_cast<double>(req.keys.size()));
  // Retry of an already-applied request: replay the cached response instead
  // of double-applying the deltas (the first delivery's response was lost).
  if (const common::Bytes* cached = dedup_lookup(req.token)) {
    co_return *cached;
  }
  // A token from a newer client incarnation proves every older incarnation
  // is gone: reap their leaked pins before applying this request.
  observe_epoch(req.token);
  if (req.pin_consume && req.pin_epoch != 0) {
    // The pin became a stored model's permanent reference at put time:
    // clear the ledger entries, leave the refcounts alone.
    for (const auto& key : req.keys) pin_remove(req.pin_epoch, key);
    resp.status = Status::Ok();
    span.tag("pin_consume", "true");
    record(hist_refs_seconds_, shared_refs_seconds_, sim_->now() - t0);
    Bytes consumed = pack(resp);
    dedup_store(req.token, consumed);
    co_return consumed;
  }
  for (const auto& key : req.keys) {
    if (req.increment) {
      auto it = segments_.find(key);
      if (it == segments_.end()) {
        ++resp.missing;
        resp.missing_keys.push_back(key);
        continue;
      }
      ++it->second.refs;
      ++stats_.refs_added;
      persist_segment(key, it->second);
      if (req.pin_epoch != 0) pin_add(req.pin_epoch, key);
    } else {
      // Pinned decrements clear their ledger entry whether or not the
      // segment still exists (rollback may race a concurrent free).
      if (req.pin_epoch != 0) pin_remove(req.pin_epoch, key);
      if (!release_ref(key, &resp.freed_bytes, &resp.freed_bases)) {
        ++resp.missing;
        resp.missing_keys.push_back(key);
      }
    }
  }
  resp.status = resp.missing == 0
                    ? Status::Ok()
                    : Status::NotFound(std::to_string(resp.missing) +
                                       " segment(s) missing");
  span.tag_u64("freed_bases", resp.freed_bases.size());
  if (resp.freed_bytes > 0) {
    if (obs::EventLog* ev = events()) {
      // Aggregated per request: how many logical bytes this decrement batch
      // actually freed (refcounts that hit zero), for GC-rate time-series.
      ev->record(sim_->now(), "gc.segment_freed", node_,
                 {{"bytes", obs::EventLog::u64(resp.freed_bytes)},
                  {"cascade_bases",
                   obs::EventLog::u64(resp.freed_bases.size())}});
    }
  }
  record(hist_refs_seconds_, shared_refs_seconds_, sim_->now() - t0);
  Bytes packed = pack(resp);
  dedup_store(req.token, packed);
  co_return packed;
}

sim::CoTask<Bytes> Provider::handle_retire(Bytes request) {
  common::Deserializer d(request);
  auto req = wire::RetireRequest::deserialize(d);
  wire::RetireResponse resp;
  ++stats_.retires;
  co_await sim_->delay(config_.op_seconds);
  // A retried retire whose first delivery applied must replay the original
  // response (with the owner map) — a fresh lookup would answer NotFound and
  // the caller could never run the reference decrements.
  if (d.ok()) {
    if (const common::Bytes* cached = dedup_lookup(req.token)) {
      co_return *cached;
    }
    observe_epoch(req.token);
  }
  auto it = models_.find(req.id);
  if (it == models_.end() || !d.ok()) {
    resp.status = Status::NotFound("model " + req.id.to_string());
    co_return pack(resp);
  }
  resp.owners = std::move(it->second.owners);
  // Metadata is removed eagerly; segment payloads survive until their
  // reference counts (decremented by the client fan-out) reach zero.
  if (config_.lcp_index) (void)lcp_index_.remove(req.id, it->second.graph);
  models_.erase(it);
  erase_meta(req.id);
  resp.status = Status::Ok();
  Bytes packed = pack(resp);
  dedup_store(req.token, packed);
  co_return packed;
}

sim::CoTask<Bytes> Provider::handle_lcp_query(Bytes request,
                                              net::HandlerContext ctx) {
  double t0 = sim_->now();
  common::Deserializer d(request);
  auto req = wire::LcpQueryRequest::deserialize(d);
  wire::LcpQueryResponse resp;
  if (!d.ok()) co_return pack(resp);
  obs::Span span = obs::Tracer::maybe_begin(
      tracer(), config_.lcp_index ? "lcp_index" : "lcp_scan", node_,
      ctx.trace);
  ++stats_.lcp_queries;
  LcpCost cost;
  LcpWorkspace ws;
  // Scan the local catalog with Algorithm 1; keep the best by
  // (prefix length, quality, lower id). Also the verify oracle and the
  // fallback body for the index path below.
  auto scan_catalog = [&](wire::LcpQueryResponse& out, LcpCost* c) {
    for (const auto& [id, meta] : models_) {
      LcpResult r = ws.run(req.graph, meta.graph, c);
      if (r.length() == 0) continue;
      bool better = false;
      if (!out.found) {
        better = true;
      } else if (r.length() != out.matches.size()) {
        better = r.length() > out.matches.size();
      } else if (meta.quality != out.quality) {
        better = meta.quality > out.quality;
      } else {
        better = id < out.ancestor;
      }
      if (better) {
        out.found = true;
        out.ancestor = id;
        out.quality = meta.quality;
        out.matches = std::move(r.matches);
      }
    }
  };
  bool scan_needed = !config_.lcp_index;
  bool fallback = false;
  const char* outcome = "index";
  PrefixIndex::LookupResult hit;
  if (config_.lcp_index) {
    // Index path (DESIGN.md §16): walk the query's canonical token path to
    // the deepest populated trie node — O(prefix depth) — then confirm the
    // per-subtree best candidate with ONE exact Algorithm 1 run. The trie
    // answer is provably the scan's answer only inside the linear-chain
    // family (see prefix_index.h): a branchy query, or any branchy model in
    // the catalog, can beat the trie's answer set from a sibling subtree,
    // so those queries go straight to the scan.
    if (!lcp_index_.all_linear() || !is_linear(req.graph)) {
      fallback = true;
      outcome = "nonlinear_scan";
    } else {
      std::vector<common::Hash128> tokens = prefix_tokens(req.graph);
      hit = lcp_index_.lookup(tokens);
      // Token computation touches each query vertex once; the walk touches
      // one trie node per shared level. Both are catalog-size independent.
      cost.vertex_visits += tokens.size() + hit.nodes_visited;
      if (hit.found) {
        auto mit = models_.find(hit.best);
        LcpResult r;
        if (mit != models_.end()) {
          r = ws.run(req.graph, mit->second.graph, &cost);
        }
        if (mit == models_.end() || r.length() != hit.depth) {
          fallback = true;
          outcome = "fallback_scan";
        } else {
          resp.found = true;
          resp.ancestor = hit.best;
          resp.quality = mit->second.quality;
          resp.matches = std::move(r.matches);
        }
      }
      // hit.found == false needs no fallback: token 0 is a function of the
      // root signature alone, so a root-token miss means no stored model
      // shares the query's root signature and every scan LCP is empty too.
    }
    if (fallback) {
      ++stats_.lcp_index_fallback_scans;
      scan_needed = true;
    } else {
      ++stats_.lcp_index_answers;
    }
  }
  if (scan_needed) {
    resp = wire::LcpQueryResponse{};
    scan_catalog(resp, &cost);
    stats_.lcp_models_scanned += models_.size();
  }
  stats_.lcp_vertex_visits += cost.vertex_visits;
  // Verify oracle: re-answer from the full scan and compare. The oracle's
  // work is charged to a separate cost so verified runs keep index-shaped
  // timing and counters; the scan's answer wins a disagreement.
  if (config_.lcp_index && config_.lcp_index_verify && !scan_needed) {
    wire::LcpQueryResponse oracle;
    LcpCost oracle_cost;
    scan_catalog(oracle, &oracle_cost);
    bool same = oracle.found == resp.found &&
                oracle.ancestor == resp.ancestor &&
                oracle.quality == resp.quality && oracle.matches == resp.matches;
    if (!same) {
      ++stats_.lcp_index_verify_mismatches;
      EVO_WARN << "lcp_index verify mismatch on provider " << id_
               << ": index answered model "
               << (resp.found ? resp.ancestor.to_string() : "<none>")
               << " depth " << resp.matches.size() << ", scan answered "
               << (oracle.found ? oracle.ancestor.to_string() : "<none>")
               << " depth " << oracle.matches.size();
      resp = std::move(oracle);
    }
  }
  // Charge the CPU time of whichever path served (the map step of the
  // collective query): the scan pays a per-model term, the index does not.
  co_await sim_->delay(
      (scan_needed ? config_.lcp_per_model_seconds *
                         static_cast<double>(models_.size())
                   : 0.0) +
      config_.lcp_visit_seconds * static_cast<double>(cost.vertex_visits));
  if (scan_needed) span.tag_u64("models_scanned", models_.size());
  span.tag_u64("vertex_visits", cost.vertex_visits);
  span.tag("found", resp.found ? "true" : "false");
  if (config_.lcp_index) {
    span.tag_u64("index_depth", hit.depth);
    span.tag_u64("index_candidates", hit.candidates);
    span.tag("index_outcome", outcome);
    if (obs::EventLog* ev = events()) {
      // One flight-recorder record per indexed query: how deep the token
      // walk got, how many catalog models share that prefix, what the
      // whole answer cost, and whether the exactness guard bailed to the
      // scan. obsq time-series over these shows the index staying
      // catalog-size independent.
      ev->record(sim_->now(), "lcp.index", node_,
                 {{"depth", obs::EventLog::u64(hit.depth)},
                  {"candidates", obs::EventLog::u64(hit.candidates)},
                  {"visits", obs::EventLog::u64(cost.vertex_visits)},
                  {"fallback", fallback ? "1" : "0"}});
    }
  }
  record(hist_lcp_seconds_, shared_lcp_seconds_, sim_->now() - t0);
  co_return pack(resp);
}

// ---- replication fault model (DESIGN.md §15) ----------------------------

std::string Provider::hint_key(uint64_t seq) {
  // Zero-padded so the backend's lexicographic key sort (restore order)
  // equals numeric arrival order.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "hint/%020llu",
                static_cast<unsigned long long>(seq));
  return buf;
}

uint64_t Provider::record_hint(wire::HintRecord hint) {
  uint64_t seq = ++hint_seq_;
  if (backend_ != nullptr) {
    common::Serializer s;
    hint.serialize(s);
    auto st = backend_->put(hint_key(seq),
                            common::Buffer::dense(std::move(s).take()));
    if (!st.ok()) EVO_WARN << "record_hint: " << st.to_string();
  }
  common::ProviderId target = hint.target;
  hints_.emplace(seq, std::move(hint));
  ++stats_.hints_recorded;
  if (obs::EventLog* ev = events()) {
    // The analyzer balances hint lifecycles: every `hint.recorded` count
    // must eventually be matched by a replay, a supersede (repair made the
    // hint moot), or a move (drain re-parked it — the refuge re-records it,
    // so a moved hint contributes to both sides consistently).
    ev->record(sim_->now(), "hint.recorded", node_,
               {{"count", "1"}, {"target", obs::EventLog::u64(target)}});
  }
  return seq;
}

void Provider::erase_hint(uint64_t seq) {
  hints_.erase(seq);
  if (backend_ != nullptr) (void)backend_->erase(hint_key(seq));
}

size_t Provider::hint_count_for(common::ProviderId target) const {
  size_t n = 0;
  for (const auto& [seq, hint] : hints_) {
    if (hint.target == target) ++n;
  }
  return n;
}

sim::CoTask<uint64_t> Provider::replay_hints(common::ProviderId target,
                                             common::NodeId target_node) {
  // Snapshot the matching sequence numbers first: hints_ can gain or lose
  // entries while this coroutine is suspended (a concurrent store_hint, a
  // racing discard after repair) and no iterator may be held across a
  // co_await.
  std::vector<uint64_t> seqs;
  for (const auto& [seq, hint] : hints_) {
    if (hint.target == target) seqs.push_back(seq);
  }
  // Roots its own trace: replay is triggered by a restart hook, not an RPC.
  obs::Span span =
      obs::Tracer::maybe_begin(tracer(), "replay_hints", node_);
  span.tag_u64("target", target);
  span.tag_u64("parked", seqs.size());
  uint64_t replayed = 0;
  for (uint64_t seq : seqs) {
    auto it = hints_.find(seq);
    if (it == hints_.end()) continue;  // discarded while we were replaying
    // Copies, not references: the map entry must not be touched across the
    // suspension below.
    std::string method = it->second.method;
    Bytes payload = it->second.payload;
    net::CallOptions opts;
    opts.timeout = config_.peer_rpc_timeout;
    opts.parent = span.context();
    auto r = co_await rpc_->call(node_, target_node, method,
                                 std::move(payload), opts);
    if (!r.ok()) break;  // target went down again; keep the rest parked
    // Re-check after the suspension: a repair that finished while this
    // call was in flight already discarded (and accounted) the hint —
    // counting it replayed too would double-resolve it.
    if (hints_.find(seq) == hints_.end()) continue;
    // The response itself is method-specific and belongs to a client that
    // has long since given up on it; transport delivery is what matters —
    // the original idempotency token inside the payload made the apply
    // exactly-once.
    ++stats_.hints_replayed;
    erase_hint(seq);
    ++replayed;
  }
  span.tag_u64("replayed", replayed);
  span.tag("outcome", replayed == seqs.size() ? "ok" : "interrupted");
  if (replayed > 0) {
    if (obs::EventLog* ev = events()) {
      ev->record(sim_->now(), "hint.replayed", node_,
                 {{"count", obs::EventLog::u64(replayed)},
                  {"target", obs::EventLog::u64(target)}});
    }
    EVO_INFO << "provider " << id_ << " replayed " << replayed
             << " hint(s) to recovered provider " << target;
  }
  co_return replayed;
}

uint64_t Provider::discard_hints_for(common::ProviderId target) {
  uint64_t discarded = 0;
  for (auto it = hints_.begin(); it != hints_.end();) {
    if (it->second.target == target) {
      if (backend_ != nullptr) (void)backend_->erase(hint_key(it->first));
      it = hints_.erase(it);
      ++discarded;
    } else {
      ++it;
    }
  }
  stats_.hints_discarded += discarded;
  if (discarded > 0) {
    if (obs::EventLog* ev = events()) {
      ev->record(sim_->now(), "hint.superseded", node_,
                 {{"count", obs::EventLog::u64(discarded)},
                  {"target", obs::EventLog::u64(target)}});
    }
  }
  return discarded;
}

sim::CoTask<Bytes> Provider::handle_store_hint(Bytes request) {
  common::Deserializer d(request);
  auto req = wire::StoreHintRequest::deserialize(d);
  wire::StoreHintResponse resp;
  if (!d.ok()) {
    resp.status = d.status();
    co_return pack(resp);
  }
  co_await sim_->delay(config_.op_seconds);
  if (drained_) {
    resp.status = Status::Unavailable("provider " + std::to_string(id_) +
                                      " drained");
    co_return pack(resp);
  }
  record_hint(std::move(req.hint));
  resp.status = Status::Ok();
  co_return pack(resp);
}

sim::CoTask<Bytes> Provider::handle_fetch_chunks(Bytes request,
                                                 net::HandlerContext ctx) {
  common::Deserializer d(request);
  auto req = wire::FetchChunksRequest::deserialize(d);
  wire::FetchChunksResponse resp;
  if (!d.ok()) {
    resp.status = d.status();
    co_return pack(resp);
  }
  co_await sim_->delay(config_.op_seconds +
                       config_.per_segment_seconds *
                           static_cast<double>(req.digests.size()));
  for (const auto& digest : req.digests) {
    const storage::ChunkStore::Chunk* chunk = chunk_store_.find(digest);
    if (chunk == nullptr) continue;  // requester retries elsewhere
    resp.chunks.push_back(wire::ChunkBodyEntry{digest, chunk->bytes,
                                               chunk->cost});
    resp.payload_bytes += chunk->cost;
  }
  {
    obs::Span fetch = obs::Tracer::maybe_begin(tracer(), "chunk_serve",
                                               node_, ctx.trace);
    fetch.tag_u64("chunks", resp.chunks.size());
    fetch.tag_u64("physical_bytes", resp.payload_bytes);
    co_await charge_pool(static_cast<double>(resp.payload_bytes));
  }
  // Ok even when some digests were absent: the requester falls back to the
  // next peer for the remainder.
  resp.status = Status::Ok();
  co_return pack(resp);
}

sim::CoTask<Bytes> Provider::handle_replicate(Bytes request,
                                              net::HandlerContext ctx) {
  obs::Span span =
      obs::Tracer::maybe_begin(tracer(), "replicate_serve", node_, ctx.trace);
  common::Deserializer d(request);
  auto req = wire::ReplicateRequest::deserialize(d);
  wire::ReplicateResponse resp;
  if (!d.ok()) {
    resp.status = d.status();
    span.tag("outcome", resp.status.to_string());
    co_return pack(resp);
  }
  co_await sim_->delay(config_.op_seconds +
                       config_.per_segment_seconds *
                           static_cast<double>(req.segments.size()));
  if (drained_) {
    resp.status = Status::Unavailable("provider " + std::to_string(id_) +
                                      " drained");
    span.tag("outcome", resp.status.to_string());
    co_return pack(resp);
  }
  // Install-if-absent throughout: an entry already here is being actively
  // maintained by client traffic (its refcount is live GC state) and must
  // never be overwritten by an anti-entropy copy.
  if (req.has_meta && models_.find(req.id) == models_.end()) {
    MetaRecord meta;
    meta.graph = std::move(req.graph);
    meta.owners = std::move(req.owners);
    meta.quality = req.quality;
    meta.ancestor = req.ancestor;
    meta.store_time = req.store_time;
    meta.store_seq = ++seq_;
    persist_meta(req.id, meta);
    auto [mit, inserted] = models_.emplace(req.id, std::move(meta));
    if (config_.lcp_index && inserted) {
      lcp_index_.insert(req.id, mit->second.quality, mit->second.graph);
    }
    resp.installed_meta = true;
    ++stats_.replica_installed_models;
  }
  // Manifests travel as-is on this path: collect the chunk bodies the local
  // store is missing before touching any catalog state.
  std::vector<common::Hash128> missing;
  for (const auto& seg : req.segments) {
    if (segments_.find(seg.key) != segments_.end()) continue;
    if (seg.segment.kind != compress::EnvelopeKind::kChunked) continue;
    for (const compress::ChunkRef& c : seg.segment.chunks) {
      if (chunk_store_.find(c.digest) == nullptr) missing.push_back(c.digest);
    }
  }
  std::sort(missing.begin(), missing.end());
  missing.erase(std::unique(missing.begin(), missing.end()), missing.end());
  // Pull the bodies content-addressed: the pushing provider first, then any
  // other replica peer — whoever holds a digest serves it.
  std::map<common::Hash128, wire::ChunkBodyEntry> fetched;
  if (!missing.empty()) {
    std::vector<common::NodeId> sources;
    sources.push_back(req.source_node);
    for (common::NodeId n : req.peer_nodes) {
      if (n != node_ && n != req.source_node) sources.push_back(n);
    }
    for (common::NodeId source : sources) {
      if (fetched.size() == missing.size()) break;
      wire::FetchChunksRequest freq;
      for (const auto& digest : missing) {
        if (fetched.find(digest) == fetched.end()) freq.digests.push_back(digest);
      }
      net::CallOptions opts;
      opts.timeout = config_.peer_rpc_timeout;
      // Parent the chunk-pull leg under the replicate serve span so a trace
      // shows which repair/drain push paid for which body transfers.
      opts.parent = span.context();
      auto r = co_await net::typed_call<wire::FetchChunksResponse>(
          rpc_, node_, source, kFetchChunks, freq, opts);
      if (!r.ok() || !r->status.ok()) continue;
      // The bodies move over the bulk path at their modeled physical cost.
      if (r->payload_bytes > 0) {
        (void)co_await rpc_->bulk(
            source, node_, common::Buffer::synthetic(r->payload_bytes, 0));
      }
      for (auto& c : r->chunks) {
        ++resp.fetched_chunks;
        ++stats_.replica_chunks_fetched;
        fetched.emplace(c.digest, std::move(c));
      }
    }
  }
  // Install the absent segments. No suspension below this point: catalog
  // mutation and its accounting commit atomically in sim time.
  uint64_t installed_physical = 0;
  for (auto& seg : req.segments) {
    if (segments_.find(seg.key) != segments_.end()) continue;
    compress::CompressedSegment env = std::move(seg.segment);
    if (compress::codec_for(env.codec) == nullptr) continue;
    if (env.kind == compress::EnvelopeKind::kChunked) {
      // Re-reference chunks already here; store fetched bodies fresh. An
      // unfetchable body makes the segment unservable — skip it whole (a
      // later repair pass retries) and roll back the references taken.
      size_t taken = 0;
      bool complete = true;
      for (const compress::ChunkRef& c : env.chunks) {
        if (chunk_store_.find(c.digest) != nullptr) {
          if (!chunk_store_.add_ref_existing(c.digest)) {
            complete = false;
            break;
          }
        } else {
          auto fit = fetched.find(c.digest);
          if (fit == fetched.end()) {
            complete = false;
            break;
          }
          std::span<const std::byte> body(fit->second.bytes);
          chunk_store_.add_ref(c.digest, body, fit->second.cost);
        }
        ++taken;
      }
      if (!complete) {
        for (size_t i = 0; i < taken; ++i) {
          chunk_store_.release(env.chunks[i].digest);
        }
        continue;
      }
    }
    // The refcount travels: replication copies GC state, so the symmetric
    // decrements that arrive later balance on every replica. The version is
    // a fresh local sequence — the safe direction for cache validation (a
    // mismatch costs one extra fetch, never a stale read).
    SegEntry entry;
    entry.segment = std::move(env);
    entry.refs = static_cast<int32_t>(seg.refs);
    entry.version = ++seq_;
    installed_physical += entry.segment.physical_bytes;
    account_stored(entry.segment, +1);
    common::SegmentKey key = seg.key;
    segments_[key] = std::move(entry);
    persist_segment(key, segments_[key]);
    ++resp.installed_segments;
    ++stats_.replica_installed_segments;
  }
  co_await charge_pool(static_cast<double>(installed_physical));
  span.tag_u64("installed_segments", resp.installed_segments);
  span.tag_u64("fetched_chunks", resp.fetched_chunks);
  span.tag("installed_meta", resp.installed_meta ? "1" : "0");
  span.tag("outcome", "ok");
  if (obs::EventLog* ev = events()) {
    ev->record(sim_->now(), "replicate.install", node_,
               {{"model", req.id.to_string()},
                {"meta", resp.installed_meta ? "1" : "0"},
                {"segments", obs::EventLog::u64(resp.installed_segments)},
                {"chunks_fetched", obs::EventLog::u64(resp.fetched_chunks)}});
  }
  resp.status = Status::Ok();
  co_return pack(resp);
}

sim::CoTask<uint64_t> Provider::push_owner(
    common::ModelId id, bool with_meta,
    std::vector<common::ProviderId> targets,
    std::vector<common::NodeId> provider_nodes,
    std::vector<common::NodeId> peer_nodes, obs::TraceContext parent) {
  wire::ReplicateRequest rr;
  rr.id = id;
  auto mit = models_.find(id);
  if (with_meta && mit != models_.end()) {
    rr.has_meta = true;
    rr.graph = mit->second.graph;
    rr.owners = mit->second.owners;
    rr.quality = mit->second.quality;
    rr.ancestor = mit->second.ancestor;
    rr.store_time = mit->second.store_time;
  }
  // Deterministic segment order (segments_ is hashed): sort by vertex.
  std::vector<std::pair<common::SegmentKey, const SegEntry*>> local;
  for (const auto& [key, entry] : segments_) {
    if (key.owner == id) local.push_back({key, &entry});
  }
  std::sort(local.begin(), local.end(), [](const auto& a, const auto& b) {
    return a.first.vertex < b.first.vertex;
  });
  for (const auto& [key, entry] : local) {
    rr.segments.push_back(wire::ReplicateSegment{
        key, entry->segment,
        static_cast<uint32_t>(std::max(entry->refs, 0))});
  }
  rr.source_node = node_;
  rr.peer_nodes = std::move(peer_nodes);
  const uint64_t pushed = rr.segments.size();
  for (common::ProviderId target : targets) {
    if (target >= provider_nodes.size()) continue;
    net::CallOptions opts;
    opts.timeout = config_.peer_rpc_timeout;
    opts.parent = parent;
    // Best effort: a joiner that is down right now is rebuilt by the next
    // repair pass; the surviving replicas still hold everything.
    (void)co_await net::typed_call<wire::ReplicateResponse>(
        rpc_, node_, provider_nodes[target], kReplicate, rr, opts);
  }
  co_return pushed;
}

sim::CoTask<Bytes> Provider::handle_drain(Bytes request,
                                          net::HandlerContext ctx) {
  common::Deserializer d(request);
  auto req = wire::DrainRequest::deserialize(d);
  wire::DrainResponse resp;
  if (!d.ok()) {
    resp.status = d.status();
    co_return pack(resp);
  }
  co_await sim_->delay(config_.op_seconds);
  if (drained_) {  // idempotent: the catalog is already gone
    resp.status = Status::Ok();
    co_return pack(resp);
  }
  const size_t n = req.provider_nodes.size();
  if (n <= id_ || req.live.size() < n) {
    resp.status = Status::InvalidArgument("drain ring view too small");
    co_return pack(resp);
  }
  obs::Span span =
      obs::Tracer::maybe_begin(tracer(), "drain_serve", node_, ctx.trace);
  if (obs::EventLog* ev = events()) {
    ev->record(sim_->now(), "drain.begin", node_,
               {{"models", obs::EventLog::u64(models_.size())},
                {"segments", obs::EventLog::u64(segments_.size())},
                {"hints", obs::EventLog::u64(hints_.size())}});
  }
  // Refuse new state from here on: a put or replicate landing mid-migration
  // would commit into a catalog about to be wiped. Reads keep working off
  // the intact catalog until the wipe (in-flight readers), after which the
  // natural NotFound routes them to the surviving replicas.
  drained_ = true;
  const size_t k = req.replication == 0 ? 1 : req.replication;
  std::vector<bool> new_live(n, false);
  for (size_t i = 0; i < n; ++i) new_live[i] = req.live[i] != 0;
  new_live[id_] = false;  // this provider is leaving, whatever the view says
  std::vector<bool> old_live = new_live;
  old_live[id_] = true;
  // Every owner id with local state: models first, then orphan segment
  // owners (meta retired, payloads alive through inherited references).
  std::vector<ModelId> with_meta = model_ids();
  std::set<ModelId> orphan_owners;
  for (const auto& [key, entry] : segments_) {
    if (models_.find(key.owner) == models_.end()) orphan_owners.insert(key.owner);
  }
  // HRW's minimal-movement property does the routing: each key's new
  // replica set differs from the old one only by the joiner(s) replacing
  // this provider, so only those targets need a push.
  auto joiners_of = [&](ModelId id) {
    std::vector<common::ProviderId> joiners;
    auto old_set = replicas_for(id, n, k, old_live);
    auto new_set = replicas_for(id, n, k, new_live);
    for (common::ProviderId p : new_set) {
      if (std::find(old_set.begin(), old_set.end(), p) == old_set.end()) {
        joiners.push_back(p);
      }
    }
    std::vector<common::NodeId> peers;
    for (common::ProviderId p : old_set) {
      if (p != id_ && p < n) peers.push_back(req.provider_nodes[p]);
    }
    return std::make_pair(joiners, peers);
  };
  for (ModelId id : with_meta) {
    auto [joiners, peers] = joiners_of(id);
    uint64_t segs = co_await push_owner(id, /*with_meta=*/true, joiners,
                                        req.provider_nodes, peers,
                                        span.context());
    ++resp.models_moved;
    resp.segments_moved += segs;
    ++stats_.drain_models_moved;
    stats_.drain_segments_moved += segs;
  }
  for (ModelId owner : orphan_owners) {
    auto [joiners, peers] = joiners_of(owner);
    uint64_t segs = co_await push_owner(owner, /*with_meta=*/false, joiners,
                                        req.provider_nodes, peers,
                                        span.context());
    resp.segments_moved += segs;
    stats_.drain_segments_moved += segs;
  }
  // Hand the parked hints to the lowest-id surviving provider: their
  // targets may still recover and expect a replay.
  if (!hints_.empty()) {
    common::ProviderId refuge = static_cast<common::ProviderId>(n);
    for (size_t i = 0; i < n; ++i) {
      if (new_live[i]) {
        refuge = static_cast<common::ProviderId>(i);
        break;
      }
    }
    if (refuge < n) {
      std::vector<uint64_t> seqs;
      for (const auto& [seq, hint] : hints_) seqs.push_back(seq);
      const common::NodeId refuge_node = req.provider_nodes[refuge];
      for (uint64_t seq : seqs) {
        auto it = hints_.find(seq);
        if (it == hints_.end()) continue;
        wire::StoreHintRequest hreq;
        hreq.hint = it->second;  // copy: no map access across the await
        net::CallOptions opts;
        opts.timeout = config_.peer_rpc_timeout;
        auto r = co_await net::typed_call<wire::StoreHintResponse>(
            rpc_, node_, refuge_node, kStoreHint, hreq, opts);
        if (!r.ok() || !r->status.ok()) continue;
        erase_hint(seq);
        ++resp.hints_moved;
      }
      if (resp.hints_moved > 0) {
        if (obs::EventLog* ev = events()) {
          ev->record(sim_->now(), "hint.moved", node_,
                     {{"count", obs::EventLog::u64(resp.hints_moved)},
                      {"refuge", obs::EventLog::u64(refuge)}});
        }
      }
    }
  }
  // Wipe the local catalog and its durable records. The idempotency cache
  // survives: a client retry of a pre-drain mutation must still replay its
  // original response instead of hitting the drained gate.
  for (auto& [key, entry] : segments_) {
    release_chunks(entry.segment);
    account_stored(entry.segment, -1);
    erase_segment_record(key);
  }
  segments_.clear();
  for (auto& [id, meta] : models_) erase_meta(id);
  models_.clear();
  lcp_index_.clear();
  cache_dir_.clear();
  for (auto& [epoch, keys] : pins_) {
    for (auto& [key, count] : keys) persist_pin(epoch, key, 0);
  }
  pins_.clear();
  (void)chunk_store_.drop_unreferenced();
  EVO_INFO << "provider " << id_ << " drained: " << resp.models_moved
           << " models, " << resp.segments_moved << " segments moved";
  span.tag_u64("models_moved", resp.models_moved);
  span.tag_u64("segments_moved", resp.segments_moved);
  span.tag_u64("hints_moved", resp.hints_moved);
  span.tag("outcome", "ok");
  if (obs::EventLog* ev = events()) {
    // The analyzer asserts every drain.begin has a drain.end whose *_left
    // counts are all zero: nothing may remain placed on a drained node.
    ev->record(sim_->now(), "drain.end", node_,
               {{"models_left", obs::EventLog::u64(models_.size())},
                {"segments_left", obs::EventLog::u64(segments_.size())},
                {"hints_left", obs::EventLog::u64(hints_.size())},
                {"models_moved", obs::EventLog::u64(resp.models_moved)},
                {"segments_moved", obs::EventLog::u64(resp.segments_moved)},
                {"hints_moved", obs::EventLog::u64(resp.hints_moved)}});
  }
  resp.status = Status::Ok();
  co_return pack(resp);
}

sim::CoTask<Bytes> Provider::handle_repair(Bytes request,
                                           net::HandlerContext ctx) {
  common::Deserializer d(request);
  auto req = wire::RepairRequest::deserialize(d);
  wire::RepairResponse resp;
  if (!d.ok()) {
    resp.status = d.status();
    co_return pack(resp);
  }
  co_await sim_->delay(config_.op_seconds);
  const size_t n = req.provider_nodes.size();
  if (drained_ || req.target == id_ || n <= req.target ||
      req.live.size() < n) {
    resp.status = Status::Ok();  // nothing this provider can contribute
    co_return pack(resp);
  }
  obs::Span span =
      obs::Tracer::maybe_begin(tracer(), "repair_serve", node_, ctx.trace);
  span.tag_u64("target", req.target);
  const size_t k = req.replication == 0 ? 1 : req.replication;
  std::vector<bool> live(n, false);
  for (size_t i = 0; i < n; ++i) live[i] = req.live[i] != 0;
  // Responsibility rule: for each owner id whose replica set contains the
  // target, the FIRST live member of the set that is not the target pushes.
  // Every peer evaluates the same deterministic rule, so the target gets
  // each model exactly once with no coordination.
  auto responsible = [&](ModelId id) {
    auto set = replicas_for(id, n, k, live);
    if (std::find(set.begin(), set.end(), req.target) == set.end()) {
      return false;
    }
    for (common::ProviderId p : set) {
      if (p != req.target) return p == id_;
    }
    return false;
  };
  auto peers_of = [&](ModelId id) {
    std::vector<common::NodeId> peers;
    for (common::ProviderId p : replicas_for(id, n, k, live)) {
      if (p != id_ && p != req.target && p < n) {
        peers.push_back(req.provider_nodes[p]);
      }
    }
    return peers;
  };
  std::vector<ModelId> with_meta = model_ids();
  std::set<ModelId> orphan_owners;
  for (const auto& [key, entry] : segments_) {
    if (models_.find(key.owner) == models_.end()) orphan_owners.insert(key.owner);
  }
  const std::vector<common::ProviderId> target_only{req.target};
  for (ModelId id : with_meta) {
    if (!responsible(id)) continue;
    uint64_t segs =
        co_await push_owner(id, /*with_meta=*/true, target_only,
                            req.provider_nodes, peers_of(id), span.context());
    ++resp.models_pushed;
    resp.segments_pushed += segs;
  }
  for (ModelId owner : orphan_owners) {
    if (!responsible(owner)) continue;
    uint64_t segs =
        co_await push_owner(owner, /*with_meta=*/false, target_only,
                            req.provider_nodes, peers_of(owner),
                            span.context());
    resp.segments_pushed += segs;
  }
  span.tag_u64("models_pushed", resp.models_pushed);
  span.tag_u64("segments_pushed", resp.segments_pushed);
  span.tag("outcome", "ok");
  if (obs::EventLog* ev = events()) {
    ev->record(sim_->now(), "repair.peer_push", node_,
               {{"target", obs::EventLog::u64(req.target)},
                {"models", obs::EventLog::u64(resp.models_pushed)},
                {"segments", obs::EventLog::u64(resp.segments_pushed)}});
  }
  resp.status = Status::Ok();
  co_return pack(resp);
}

sim::CoTask<Bytes> Provider::handle_get_stats(Bytes request) {
  (void)request;
  ++stats_.stat_gets;
  co_await sim_->delay(config_.op_seconds);
  wire::StatsResponse resp;
  resp.puts = stats_.puts;
  resp.segment_reads = stats_.segment_reads;
  resp.refs_added = stats_.refs_added;
  resp.refs_removed = stats_.refs_removed;
  resp.segments_freed = stats_.segments_freed;
  resp.live_models = models_.size();
  resp.live_segments = segments_.size();
  resp.logical_bytes = payload_bytes_;
  resp.physical_bytes = stored_physical_bytes();
  resp.pre_dedup_physical_bytes = physical_bytes_;
  resp.live_chunks = chunk_store_.chunk_count();
  resp.chunk_physical_bytes = chunk_store_.physical_bytes();
  const storage::ChunkStoreStats& cs = chunk_store_.stats();
  resp.chunk_hits = cs.hits;
  resp.chunk_misses = cs.misses;
  resp.chunks_freed = cs.freed;
  resp.dedup_saved_bytes = cs.saved_bytes;
  resp.not_modified_reads = stats_.not_modified_reads;
  resp.redirects_issued = stats_.redirects_issued;
  resp.pins_reaped = stats_.pins_reaped;
  resp.handoff_recorded = stats_.hints_recorded;
  resp.handoff_replayed = stats_.hints_replayed;
  resp.handoff_discarded = stats_.hints_discarded;
  resp.replica_installed_models = stats_.replica_installed_models;
  resp.replica_installed_segments = stats_.replica_installed_segments;
  resp.replica_chunks_fetched = stats_.replica_chunks_fetched;
  resp.drain_models_moved = stats_.drain_models_moved;
  resp.drain_segments_moved = stats_.drain_segments_moved;
  resp.lcp_index_answers = stats_.lcp_index_answers;
  resp.lcp_index_fallback_scans = stats_.lcp_index_fallback_scans;
  resp.lcp_index_nodes = lcp_index_.node_count();
  resp.lcp_index_bytes = config_.lcp_index ? lcp_index_.memory_bytes() : 0;
  for (size_t i = 0; i < compress::kCodecCount; ++i) {
    const auto& u = codec_usage_[i];
    if (u.segments == 0) continue;
    resp.codecs.push_back(wire::CodecUsageEntry{
        static_cast<compress::CodecId>(i), u.segments, u.logical_bytes,
        u.physical_bytes});
  }
  // Local histogram digests, name-ordered (the registry iterates a
  // std::map), so the wire encoding is deterministic.
  for (const auto& [name, hist] : metrics_.histograms()) {
    obs::HistogramSummary s = hist->summary();
    resp.histograms.push_back(wire::HistogramSummaryEntry{
        std::string(name), s.count, s.sum, s.min, s.max, s.p50, s.p95,
        s.p99});
  }
  resp.status = Status::Ok();
  co_return pack(resp);
}

}  // namespace evostore::core
