// EvoStore provider: the combined data + metadata server (paper §4.1).
//
// Each provider stores, for the models hashed to it: the compact architecture
// graph, the owner map, the quality metric — and, for every vertex the model
// *owns*, the consolidated parameter segment with its reference count.
// Because metadata and data are co-located, one provider answers both the
// owner-map lookup and the bulk read for locally-owned tensors, and the
// provider fleet collectively answers LCP queries by scanning only local
// catalogs (map) followed by a client-side reduce.
//
// Garbage collection: a segment is created with refcount 1 (its owner's own
// owner-map reference). Deriving a model increments every inherited
// segment's count; retiring decrements every owner-map entry. Payloads are
// freed at zero; model metadata is removed eagerly on retire (§4.1).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <unordered_map>

#include "compress/chunker.h"
#include "compress/codec.h"
#include "compress/compressed_segment.h"
#include "core/prefix_index.h"
#include "core/wire.h"
#include "net/rpc.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/chunk_store.h"
#include "storage/kv_store.h"

namespace evostore::core {

struct ProviderConfig {
  /// CPU cost per vertex visit in the local LCP scan (Algorithm 1).
  double lcp_visit_seconds = 15e-9;
  /// Fixed CPU cost per locally stored model considered in a scan (a root
  /// signature compare on the compact in-memory graph).
  double lcp_per_model_seconds = 8e-9;
  /// Local KV bookkeeping cost per put/get/retire operation.
  double op_seconds = 2e-6;
  /// Additional cost per segment touched (insert/lookup/free).
  double per_segment_seconds = 200e-9;
  /// Bandwidth of the in-memory KV pool (synchronized memory pool memcpy);
  /// put/read payload bytes flow through a per-provider fair-share port.
  /// 0 disables pool modelling (metadata-only deployments).
  double pool_bandwidth = 7e9;
  /// Most recent idempotency tokens whose responses are cached for replay
  /// (FIFO-evicted). Must exceed the number of tokened requests a client can
  /// have in flight across one retry horizon.
  size_t dedup_window = 1 << 16;
  /// Content-defined chunk dedup (DESIGN.md §13). When enabled, an incoming
  /// inline payload of at least `chunker.min_bytes` is split into
  /// content-defined chunks stored once per provider (deduplicating identical
  /// content across *unrelated* models, which the delta codec's
  /// ancestor-only scope cannot reach); the segment keeps a chunk manifest
  /// and reads reassemble transparently. The default parameters are
  /// real-deployment chunk sizes, so compact simulation payloads stay inline
  /// unless a harness opts into simulation-scale parameters.
  bool chunking = true;
  compress::ChunkerConfig chunker;
  /// Deadline on provider-to-provider RPCs (hint replay, replicate pushes,
  /// chunk fetches): a down peer must fail the call, not hang the drain or
  /// repair pass.
  double peer_rpc_timeout = 1.0;
  /// Sublinear LCP serving (DESIGN.md §16): maintain the catalog prefix
  /// index and answer `evostore.lcp_query` from it in O(prefix depth)
  /// instead of scanning O(catalog) models. The serving path verifies each
  /// index answer with one exact Algorithm 1 run against the chosen
  /// candidate and falls back to the full scan if the lengths disagree, so
  /// answers always match the scan's. Off by default: the scan is the
  /// reference path at paper scale.
  bool lcp_index = false;
  /// Oracle mode (testing): with the index on, ALSO run the full catalog
  /// scan on every query and compare answers field-for-field. Mismatches
  /// are counted, logged, and the scan's answer is served. Latency is
  /// charged for the index path only, so verified runs keep index-shaped
  /// timing.
  bool lcp_index_verify = false;
};

struct ProviderStats {
  uint64_t puts = 0;
  uint64_t meta_gets = 0;
  uint64_t segment_reads = 0;
  uint64_t lcp_queries = 0;
  uint64_t lcp_models_scanned = 0;
  uint64_t lcp_vertex_visits = 0;
  uint64_t retires = 0;
  uint64_t refs_added = 0;
  uint64_t refs_removed = 0;
  uint64_t segments_freed = 0;
  uint64_t stat_gets = 0;
  /// Tokened requests answered from the dedup cache (retries that would
  /// have double-applied without idempotency).
  uint64_t deduped_replays = 0;
  /// Crash-recovery cycles this provider went through (restart() calls).
  uint64_t restarts = 0;
  /// Cumulative payload volume ingested by puts (logical = decoded tensor
  /// content, physical = post-compression envelope payload).
  uint64_t logical_bytes_ingested = 0;
  uint64_t physical_bytes_ingested = 0;
  // Cooperative cache + pin ledger (DESIGN.md §14).
  /// Validation handshakes answered with kNotModified (no payload moved).
  uint64_t not_modified_reads = 0;
  /// Reads answered with a kRedirect hint to a peer client's cache.
  uint64_t redirects_issued = 0;
  /// Transfer pins recorded in the durable pin ledger.
  uint64_t pins_recorded = 0;
  /// Stale-epoch pins reaped when a newer client incarnation appeared (the
  /// leaked pins of a client that crashed mid-transfer).
  uint64_t pins_reaped = 0;
  // Replication fault model (DESIGN.md §15).
  /// Hinted handoffs parked here for a down replica.
  uint64_t hints_recorded = 0;
  /// Hints replayed to their target after it recovered.
  uint64_t hints_replayed = 0;
  /// Hints discarded because a full repair push subsumed them.
  uint64_t hints_discarded = 0;
  /// Metadata records installed via evostore.replicate (repair/drain pushes).
  uint64_t replica_installed_models = 0;
  /// Segments installed via evostore.replicate.
  uint64_t replica_installed_segments = 0;
  /// Chunk bodies pulled from peers while installing replicated manifests.
  uint64_t replica_chunks_fetched = 0;
  /// Catalog entries this provider migrated away when drained.
  uint64_t drain_models_moved = 0;
  uint64_t drain_segments_moved = 0;
  // Catalog prefix index (DESIGN.md §16).
  /// LCP queries answered from the index without scanning the catalog.
  uint64_t lcp_index_answers = 0;
  /// Index answers discarded because the exact LCP length against the
  /// chosen candidate disagreed with the trie depth (full scan ran instead).
  uint64_t lcp_index_fallback_scans = 0;
  /// Oracle disagreements seen under `lcp_index_verify` (should stay 0).
  uint64_t lcp_index_verify_mismatches = 0;
};

class Provider {
 public:
  /// Constructs the provider and registers its RPC handlers on `node`.
  /// `backend` (optional, non-owning) is the provider's persistent KV store
  /// (paper §4.3: "in-memory [or] persistently using underlying backends
  /// such as ... RocksDB"): metadata, segments, and reference counts are
  /// written through to it, and a provider constructed over a non-empty
  /// backend recovers its full state from it (restart/crash recovery).
  Provider(net::RpcSystem& rpc, common::NodeId node, common::ProviderId id,
           ProviderConfig config = {}, storage::KvStore* backend = nullptr);

  common::NodeId node() const { return node_; }
  common::ProviderId id() const { return id_; }

  // -- Introspection (same-process access for tests, benches, GC audits) --
  size_t model_count() const { return models_.size(); }
  size_t segment_count() const { return segments_.size(); }
  /// Logical payload bytes of all live segments (decoded tensor content).
  size_t stored_payload_bytes() const { return payload_bytes_; }
  /// Physical payload bytes actually occupied: post-compression inline
  /// envelopes plus each deduplicated chunk once. Equal to
  /// stored_pre_dedup_physical_bytes() when chunking never triggered.
  size_t stored_physical_bytes() const {
    return inline_physical_bytes_ + chunk_store_.physical_bytes();
  }
  /// Physical bytes the same live segments would occupy without chunk dedup
  /// (the delta codec alone): the sum of envelope physical_bytes.
  size_t stored_pre_dedup_physical_bytes() const { return physical_bytes_; }
  /// The provider's content-addressed chunk store (hit/miss/refcount
  /// introspection for tests and GC audits).
  const storage::ChunkStore& chunk_store() const { return chunk_store_; }
  /// Live stored volume broken down by codec.
  const compress::CodecUsageTable& codec_usage() const { return codec_usage_; }
  /// Owner-map + graph metadata footprint estimate.
  size_t metadata_bytes() const;
  bool has_model(common::ModelId id) const {
    return models_.find(id) != models_.end();
  }
  /// Stored owner map for `id` (nullptr when absent): lets harnesses walk a
  /// model's composition for replica-convergence audits.
  const OwnerMap* owner_map(common::ModelId id) const {
    auto it = models_.find(id);
    return it == models_.end() ? nullptr : &it->second.owners;
  }
  bool has_segment(const common::SegmentKey& key) const {
    return segments_.find(key) != segments_.end();
  }
  /// At-rest envelope stored for `key` (nullptr when absent): lets tests and
  /// GC audits inspect the stored encoding (inline vs chunked manifest).
  const compress::CompressedSegment* segment_envelope(
      const common::SegmentKey& key) const {
    auto it = segments_.find(key);
    return it == segments_.end() ? nullptr : &it->second.segment;
  }
  int refcount(const common::SegmentKey& key) const;
  /// Current version of a stored segment (the store sequence of the put
  /// that created it), 0 when absent. Clients validate cached entries
  /// against this.
  uint64_t segment_version(const common::SegmentKey& key) const;
  /// Outstanding transfer pins recorded for `key` across all epochs.
  uint64_t pinned_count(const common::SegmentKey& key) const;
  /// Total (epoch, key) records in the pin ledger.
  size_t pin_ledger_size() const;
  const ProviderStats& stats() const { return stats_; }
  std::vector<common::ModelId> model_ids() const;
  /// The catalog prefix index (empty unless config.lcp_index): node/model
  /// counts and the memory-footprint model for tests, benches, and stats.
  const PrefixIndex& prefix_index() const { return lcp_index_; }

  /// Always-on local metrics (sim-time latencies + payload sizes per
  /// operation class). Exported as histogram digests in StatsResponse so
  /// `Client::collect_stats` can aggregate cluster-wide.
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Crash-recovery entry point (wired to FaultInjector::on_restart by the
  /// repository): drop all volatile state — catalogs, segments, refcounts,
  /// the idempotency cache — and reconstruct everything from the persistent
  /// backend. A provider without a backend restarts empty (data loss), which
  /// is the honest model for an in-memory-only deployment. Cumulative
  /// operation counters survive (they model external monitoring).
  void restart();

  // ---- replication fault model (DESIGN.md §15) ----
  /// True once evostore.drain migrated this provider's catalog away: it no
  /// longer accepts puts, hints, or replicate pushes, and serves nothing
  /// (clients route around it via the shared Membership).
  bool drained() const { return drained_; }
  /// Hinted-handoff records currently parked here (all targets).
  size_t hint_count() const { return hints_.size(); }
  /// Hints parked here for one specific target replica.
  size_t hint_count_for(common::ProviderId target) const;
  /// Replay every parked hint aimed at `target` (now back up at
  /// `target_node`) in original arrival order, erasing each on delivery.
  /// Stops at the first transport failure (the target died again) and keeps
  /// the remainder for the next recovery. Spawned by the repository's
  /// restart hook on every surviving peer. Returns the number replayed.
  sim::CoTask<uint64_t> replay_hints(common::ProviderId target,
                                     common::NodeId target_node);
  /// Drop every parked hint aimed at `target` without replaying: a full
  /// repair push just rebuilt the target from live replica state (which
  /// already contains the hinted writes), and the target's idempotency
  /// cache was lost with its backend — replaying now would double-apply.
  uint64_t discard_hints_for(common::ProviderId target);

  static constexpr const char* kPutModel = "evostore.put_model";
  static constexpr const char* kGetMeta = "evostore.get_meta";
  static constexpr const char* kReadSegments = "evostore.read_segments";
  static constexpr const char* kModifyRefs = "evostore.modify_refs";
  static constexpr const char* kRetire = "evostore.retire";
  static constexpr const char* kLcpQuery = "evostore.lcp_query";
  static constexpr const char* kGetStats = "evostore.get_stats";
  static constexpr const char* kStoreHint = "evostore.store_hint";
  static constexpr const char* kReplicate = "evostore.replicate";
  static constexpr const char* kFetchChunks = "evostore.fetch_chunks";
  static constexpr const char* kDrain = "evostore.drain";
  static constexpr const char* kRepairPeer = "evostore.repair_peer";

 private:
  struct MetaRecord {
    model::ArchGraph graph;
    OwnerMap owners;
    double quality = 0;
    common::ModelId ancestor;
    double store_time = 0;
    uint64_t store_seq = 0;
  };
  struct SegEntry {
    compress::CompressedSegment segment;
    int32_t refs = 0;
    /// Version clients validate cached copies against: the store sequence
    /// of the put that created this segment. Strictly monotonic per
    /// provider, so a freed-then-recreated key always carries a newer
    /// version and a stale cache entry can never validate.
    uint64_t version = 0;
  };

  void register_handlers(net::RpcSystem& rpc);
  // Charge `bytes` through the provider's memory-pool port (no-op when pool
  // modelling is disabled).
  sim::CoTask<void> charge_pool(double bytes);
  /// Add (`dir` = +1) or remove (-1) one stored envelope from the live
  /// logical/physical byte totals and the per-codec usage table.
  void account_stored(const compress::CompressedSegment& env, int dir);

  // ---- chunk dedup (DESIGN.md §13) ----
  /// Split an inline envelope's payload into content-defined chunks, add
  /// one chunk-store reference per chunk, and rewrite the envelope to a
  /// kChunked manifest. No-op when chunking is disabled or the payload is
  /// below the chunking threshold.
  void maybe_chunk(compress::CompressedSegment& env);
  /// Resolve a kChunked envelope's manifest back to an inline envelope
  /// (identity for kInline). Corruption if a referenced chunk is gone.
  common::Result<compress::CompressedSegment> reassemble(
      const compress::CompressedSegment& env) const;
  /// Release the chunk references a freed kChunked envelope held.
  void release_chunks(const compress::CompressedSegment& env);

  // ---- GC core ----
  /// Decrement one reference on `key`. At zero the envelope is freed:
  /// chunk references released, byte accounting reversed, the backend
  /// record erased, and the delta base it referenced (if any) appended to
  /// `freed_bases` for the caller to decrement next. Returns false when the
  /// key is not stored here.
  bool release_ref(const common::SegmentKey& key, uint64_t* freed_bytes,
                   std::vector<common::SegmentKey>* freed_bases);

  // ---- pin ledger (DESIGN.md §14: crash-proof transfer pins) ----
  /// Note the client incarnation epoch carried by `token` (high 16 bits).
  /// The first token from a strictly newer epoch reaps every pin recorded
  /// under older epochs — those clients are gone; their pins leaked.
  void observe_epoch(uint64_t token);
  void reap_stale_pins(uint64_t current_epoch);
  void pin_add(uint64_t epoch, const common::SegmentKey& key);
  /// Remove one pin record (no-op when absent — e.g. rollback of an
  /// increment the provider never saw).
  void pin_remove(uint64_t epoch, const common::SegmentKey& key);
  void persist_pin(uint64_t epoch, const common::SegmentKey& key,
                   uint32_t count);
  static std::string pin_record_key(uint64_t epoch,
                                    const common::SegmentKey& key);

  // ---- persistence (no-ops when backend_ == nullptr) ----
  struct MetaRecord;
  struct SegEntry;
  void persist_meta(common::ModelId id, const MetaRecord& meta);
  void erase_meta(common::ModelId id);
  void persist_segment(const common::SegmentKey& key, const SegEntry& entry);
  void erase_segment_record(const common::SegmentKey& key);
  /// Rebuild models_/segments_ from the backend (called at construction).
  void restore_from_backend();
  static std::string meta_key(common::ModelId id);
  static std::string segment_key(const common::SegmentKey& key);
  static std::string token_key(uint64_t token);

  // ---- idempotency dedup (exactly-once for tokened mutations) ----
  /// Cached response for `token`, or nullptr. Counts a replay on hit.
  const common::Bytes* dedup_lookup(uint64_t token);
  /// Cache `response` under `token` (no-op for token 0), write it through to
  /// the backend, and FIFO-evict past the window.
  void dedup_store(uint64_t token, const common::Bytes& response);

  sim::CoTask<common::Bytes> handle_put(common::Bytes request,
                                        net::HandlerContext ctx);
  sim::CoTask<common::Bytes> handle_get_meta(common::Bytes request);
  sim::CoTask<common::Bytes> handle_read_segments(common::Bytes request,
                                                  net::HandlerContext ctx);
  sim::CoTask<common::Bytes> handle_modify_refs(common::Bytes request,
                                                net::HandlerContext ctx);
  sim::CoTask<common::Bytes> handle_retire(common::Bytes request);
  sim::CoTask<common::Bytes> handle_lcp_query(common::Bytes request,
                                              net::HandlerContext ctx);
  sim::CoTask<common::Bytes> handle_get_stats(common::Bytes request);
  sim::CoTask<common::Bytes> handle_store_hint(common::Bytes request);
  sim::CoTask<common::Bytes> handle_replicate(common::Bytes request,
                                              net::HandlerContext ctx);
  sim::CoTask<common::Bytes> handle_fetch_chunks(common::Bytes request,
                                                 net::HandlerContext ctx);
  sim::CoTask<common::Bytes> handle_drain(common::Bytes request,
                                          net::HandlerContext ctx);
  sim::CoTask<common::Bytes> handle_repair(common::Bytes request,
                                           net::HandlerContext ctx);

  // ---- replication fault model internals (DESIGN.md §15) ----
  /// Durably park one hint; returns its sequence number.
  uint64_t record_hint(wire::HintRecord hint);
  void erase_hint(uint64_t seq);
  static std::string hint_key(uint64_t seq);
  /// Push one owner id's local state (metadata when `with_meta`, plus every
  /// locally stored segment owned by it) to each provider in `targets` via
  /// evostore.replicate. `peer_nodes` names where missing chunk bodies can
  /// be fetched besides this provider. Returns segments pushed (counted once
  /// whatever the fan-out, for drain/repair reporting).
  /// `parent` parents the replicate RPC spans under the caller's drain /
  /// repair serve span (invalid roots them, matching the untraced path).
  sim::CoTask<uint64_t> push_owner(common::ModelId id, bool with_meta,
                                   std::vector<common::ProviderId> targets,
                                   std::vector<common::NodeId> provider_nodes,
                                   std::vector<common::NodeId> peer_nodes,
                                   obs::TraceContext parent = {});

  /// The attached tracer, if any (provider-side child spans: segment
  /// writes, KV commits, LCP scans).
  obs::Tracer* tracer() { return rpc_->tracer(); }
  /// The attached flight recorder, if any (replication lifecycle events:
  /// hints, drain, repair, replica installs, dedup and GC activity).
  obs::EventLog* events() { return rpc_->events(); }
  /// Record `v` into the local histogram and, when a cluster registry is
  /// attached to the RpcSystem, the shared one.
  void record(obs::Histogram* local, obs::Histogram* shared, double v) {
    local->add(v);
    if (shared != nullptr) shared->add(v);
  }

  sim::Simulation* sim_;
  net::RpcSystem* rpc_;
  sim::FlowScheduler* flows_;
  common::NodeId node_;
  common::ProviderId id_;
  ProviderConfig config_;
  storage::KvStore* backend_ = nullptr;
  sim::PortId pool_port_ = 0;
  bool pool_enabled_ = false;
  uint64_t seq_ = 0;

  std::unordered_map<common::ModelId, MetaRecord> models_;
  std::unordered_map<common::SegmentKey, SegEntry> segments_;
  /// Cache directory: last client node known to cache each segment
  /// (volatile — a stale hint only costs a peer miss + provider fallback,
  /// so it is deliberately not persisted).
  std::unordered_map<common::SegmentKey, common::NodeId> cache_dir_;
  /// Durable pin ledger: epoch -> key -> outstanding pin count. Ordered
  /// maps so reaping walks epochs and keys deterministically.
  std::map<uint64_t, std::map<common::SegmentKey, uint32_t>> pins_;
  /// Highest client incarnation epoch seen in an idempotency token.
  uint64_t last_pin_epoch_ = 0;
  // Idempotency cache: token -> packed response, FIFO order for eviction.
  // `dedup_seq_` orders entries in the backend so restore rebuilds the FIFO.
  std::unordered_map<uint64_t, common::Bytes> dedup_;
  std::deque<uint64_t> dedup_order_;
  uint64_t dedup_seq_ = 0;
  /// Hinted-handoff parking lot: arrival seq -> record, ordered so replay
  /// preserves per-key write order (all hints for one key land on the same
  /// peer while membership is stable). Durable as "hint/<seq>" records.
  std::map<uint64_t, wire::HintRecord> hints_;
  uint64_t hint_seq_ = 0;
  /// Set by evostore.drain after the catalog migrated away.
  bool drained_ = false;
  size_t payload_bytes_ = 0;   // logical (decoded) bytes of live segments
  size_t physical_bytes_ = 0;  // post-compression bytes of live segments
                               // (pre-dedup: counts duplicated chunks fully)
  size_t inline_physical_bytes_ = 0;  // the kInline subset of physical_bytes_
  storage::ChunkStore chunk_store_;
  compress::CodecUsageTable codec_usage_{};
  /// Catalog prefix index (DESIGN.md §16), maintained on every catalog
  /// mutation when config.lcp_index is set; rebuilt (not restored) on
  /// restart, like the chunk store. Empty when the flag is off.
  PrefixIndex lcp_index_;
  ProviderStats stats_;

  // Local per-operation histograms (sim-time seconds / payload bytes), fed
  // unconditionally: every value is simulation-derived, so the registry's
  // contents — and the digests exported over the wire — are deterministic.
  obs::MetricsRegistry metrics_;
  obs::Histogram* hist_put_seconds_;
  obs::Histogram* hist_put_bytes_;
  obs::Histogram* hist_read_seconds_;
  obs::Histogram* hist_read_bytes_;
  obs::Histogram* hist_lcp_seconds_;
  obs::Histogram* hist_refs_seconds_;
  // Chunk dedup observability: payload size of every chunk an ingest
  // produced, plus hit/miss counters (also exported via StatsResponse).
  obs::Histogram* hist_chunk_bytes_;
  obs::Counter* counter_chunk_hits_;
  obs::Counter* counter_chunk_misses_;
  // Cluster-wide mirrors in the RpcSystem's registry (null when detached).
  obs::Histogram* shared_put_seconds_ = nullptr;
  obs::Histogram* shared_put_bytes_ = nullptr;
  obs::Histogram* shared_read_seconds_ = nullptr;
  obs::Histogram* shared_read_bytes_ = nullptr;
  obs::Histogram* shared_lcp_seconds_ = nullptr;
  obs::Histogram* shared_refs_seconds_ = nullptr;
  obs::Histogram* shared_chunk_bytes_ = nullptr;
};

}  // namespace evostore::core
