#include "core/repository.h"

#include <algorithm>

#include "common/serde.h"

namespace evostore::core {

namespace {

Status combine(Status acc, const Status& next) {
  return acc.ok() ? next : acc;
}

constexpr const char* kEpochKey = "repo/epoch";

// Read-modify-write the incarnation counter persisted in `backend`.
uint64_t bump_epoch(storage::KvStore& backend) {
  uint64_t stored = 0;
  auto value = backend.get(kEpochKey);
  if (value.ok()) {
    common::Buffer buf = value.value().materialize();
    common::Deserializer d(buf.dense_span());
    uint64_t v = d.u64();
    if (d.finish().ok()) stored = v;
  }
  common::Serializer s;
  s.u64(stored + 1);
  (void)backend.put(kEpochKey, common::Buffer::dense(std::move(s).take()));
  return stored + 1;
}

}  // namespace

EvoStoreRepository::EvoStoreRepository(net::RpcSystem& rpc,
                                       std::vector<NodeId> provider_nodes,
                                       ProviderConfig config,
                                       std::vector<storage::KvStore*> backends,
                                       ClientConfig client_config)
    : rpc_(&rpc),
      provider_nodes_(std::move(provider_nodes)),
      client_config_(client_config) {
  uint64_t epoch = 1;
  for (storage::KvStore* backend : backends) {
    if (backend != nullptr) epoch = std::max(epoch, bump_epoch(*backend));
  }
  client_config_.token_epoch = epoch;
  // One membership view shared by every client this repository creates: a
  // drain flips liveness once and every placement decision sees it.
  membership_ = std::make_shared<Membership>(provider_nodes_.size(),
                                             client_config_.replication);
  client_config_.membership = membership_;
  providers_.reserve(provider_nodes_.size());
  for (size_t i = 0; i < provider_nodes_.size(); ++i) {
    storage::KvStore* backend = i < backends.size() ? backends[i] : nullptr;
    providers_.push_back(std::make_unique<Provider>(
        rpc, provider_nodes_[i], static_cast<common::ProviderId>(i), config,
        backend));
    if (rpc.fault_injector() != nullptr) {
      rpc.fault_injector()->on_restart(
          provider_nodes_[i], [this, i] {
            providers_[i]->restart();
            // Hinted-handoff replay: every surviving peer that parked writes
            // for this provider pushes them now, in arrival order. The spawn
            // detaches — replay proceeds concurrently with resumed traffic,
            // exactly-once thanks to the replayed requests' own tokens.
            common::ProviderId target = providers_[i]->id();
            for (auto& peer : providers_) {
              if (peer->id() == target) continue;
              if (peer->hint_count_for(target) == 0) continue;
              rpc_->simulation().spawn(
                  peer->replay_hints(target, provider_nodes_[i]));
            }
          });
    }
  }
}

Client& EvoStoreRepository::client(NodeId node) {
  auto it = clients_.find(node);
  if (it == clients_.end()) {
    it = clients_
             .emplace(node, std::make_unique<Client>(*rpc_, node,
                                                     next_client_id_++,
                                                     provider_nodes_,
                                                     client_config_))
             .first;
  }
  return *it->second;
}

sim::CoTask<Result<std::optional<TransferContext>>>
// NOLINTNEXTLINE(cppcoreguidelines-avoid-reference-coroutine-parameters)
EvoStoreRepository::prepare_transfer(NodeId node, const ArchGraph& g,
                                     bool fetch_payload) {
  co_return co_await client(node).prepare_transfer(g, fetch_payload);
}

// NOLINTNEXTLINE(cppcoreguidelines-avoid-reference-coroutine-parameters)
sim::CoTask<Status> EvoStoreRepository::store(NodeId node, const Model& m,
                                              const TransferContext* tc) {
  co_return co_await client(node).put_model(m, tc);
}

sim::CoTask<Result<Model>> EvoStoreRepository::load(NodeId node, ModelId id) {
  co_return co_await client(node).get_model(id);
}

sim::CoTask<Status> EvoStoreRepository::retire(NodeId node, ModelId id) {
  co_return co_await client(node).retire(id);
}

sim::CoTask<Result<Client::ClusterStats>> EvoStoreRepository::collect_stats(
    NodeId node) {
  co_return co_await client(node).collect_stats();
}

size_t EvoStoreRepository::stored_payload_bytes() const {
  size_t n = 0;
  for (const auto& p : providers_) n += p->stored_payload_bytes();
  return n;
}

size_t EvoStoreRepository::stored_physical_bytes() const {
  size_t n = 0;
  for (const auto& p : providers_) n += p->stored_physical_bytes();
  return n;
}

size_t EvoStoreRepository::stored_pre_dedup_physical_bytes() const {
  size_t n = 0;
  for (const auto& p : providers_) n += p->stored_pre_dedup_physical_bytes();
  return n;
}

size_t EvoStoreRepository::total_chunks() const {
  size_t n = 0;
  for (const auto& p : providers_) n += p->chunk_store().chunk_count();
  return n;
}

uint64_t EvoStoreRepository::total_dedup_saved_bytes() const {
  uint64_t n = 0;
  for (const auto& p : providers_) n += p->chunk_store().stats().saved_bytes;
  return n;
}

size_t EvoStoreRepository::total_models() const {
  size_t n = 0;
  for (const auto& p : providers_) n += p->model_count();
  return n;
}

size_t EvoStoreRepository::total_segments() const {
  size_t n = 0;
  for (const auto& p : providers_) n += p->segment_count();
  return n;
}

size_t EvoStoreRepository::total_metadata_bytes() const {
  size_t n = 0;
  for (const auto& p : providers_) n += p->metadata_bytes();
  return n;
}

ClientFaultStats EvoStoreRepository::total_client_fault_stats() const {
  ClientFaultStats total;
  for (const auto& [node, c] : clients_) {
    const ClientFaultStats& s = c->fault_stats();
    total.retries += s.retries;
    total.exhausted += s.exhausted;
    total.partial_lcp_queries += s.partial_lcp_queries;
    total.degraded_transfers += s.degraded_transfers;
    total.read_failovers += s.read_failovers;
    total.hints_sent += s.hints_sent;
  }
  return total;
}

size_t EvoStoreRepository::total_hints() const {
  size_t n = 0;
  for (const auto& p : providers_) n += p->hint_count();
  return n;
}

sim::CoTask<Status> EvoStoreRepository::drain_provider(common::ProviderId p) {
  if (p >= providers_.size()) {
    co_return Status::InvalidArgument("no such provider");
  }
  // Membership flips BEFORE the migration starts: a put landing after this
  // line already targets the post-drain replica set, so nothing new can
  // strand on the leaving provider (it refuses writes once drained anyway).
  membership_->retire_provider(p);
  wire::DrainRequest req;
  req.replication = static_cast<uint32_t>(membership_->replication());
  req.provider_nodes = provider_nodes_;
  const std::vector<bool>& live = membership_->live();
  req.live.reserve(live.size());
  for (size_t i = 0; i < live.size(); ++i) req.live.push_back(live[i] ? 1 : 0);
  // Intra-node, no deadline: a drain moves a whole catalog and its duration
  // scales with stored volume, not with an RPC budget.
  net::CallOptions opts;
  opts.timeout = -1;
  auto r = co_await net::typed_call<wire::DrainResponse>(
      rpc_, provider_nodes_[p], provider_nodes_[p], Provider::kDrain, req,
      opts);
  if (!r.ok()) co_return r.status();
  co_return r->status;
}

sim::CoTask<Status> EvoStoreRepository::repair_provider(common::ProviderId p) {
  if (p >= providers_.size()) {
    co_return Status::InvalidArgument("no such provider");
  }
  if (obs::EventLog* ev = rpc_->events()) {
    ev->record(rpc_->simulation().now(), "repair.begin", provider_nodes_[p],
               {{"target", obs::EventLog::u64(p)}});
  }
  wire::RepairRequest req;
  req.target = p;
  req.replication = static_cast<uint32_t>(membership_->replication());
  req.provider_nodes = provider_nodes_;
  const std::vector<bool>& live = membership_->live();
  req.live.reserve(live.size());
  for (size_t i = 0; i < live.size(); ++i) req.live.push_back(live[i] ? 1 : 0);
  Status status;
  for (size_t i = 0; i < providers_.size(); ++i) {
    if (i == p || !membership_->is_live(static_cast<common::ProviderId>(i))) {
      continue;
    }
    net::CallOptions opts;
    opts.timeout = -1;
    auto r = co_await net::typed_call<wire::RepairResponse>(
        rpc_, provider_nodes_[i], provider_nodes_[i], Provider::kRepairPeer,
        req, opts);
    status = combine(status, r.ok() ? r->status : r.status());
  }
  if (status.ok()) {
    // The pushes rebuilt the target from live replica state, which already
    // contains every parked hint's effect; the target's dedup records died
    // with its backend, so replaying those hints would double-apply them.
    for (auto& peer : providers_) {
      if (peer->id() != p) (void)peer->discard_hints_for(p);
    }
  }
  if (obs::EventLog* ev = rpc_->events()) {
    // The analyzer asserts every repair.begin is closed by a repair.end and
    // that the outcome was ok (an interrupted repair is a coverage hole).
    ev->record(rpc_->simulation().now(), "repair.end", provider_nodes_[p],
               {{"target", obs::EventLog::u64(p)},
                {"outcome", status.ok() ? "ok" : status.to_string()}});
  }
  co_return status;
}

uint64_t EvoStoreRepository::total_provider_restarts() const {
  uint64_t n = 0;
  for (const auto& p : providers_) n += p->stats().restarts;
  return n;
}

uint64_t EvoStoreRepository::total_deduped_replays() const {
  uint64_t n = 0;
  for (const auto& p : providers_) n += p->stats().deduped_replays;
  return n;
}

}  // namespace evostore::core
