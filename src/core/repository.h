// Repository interface shared by EvoStore and the baselines, plus the
// EvoStore deployment facade.
//
// The NAS runner and the experiment harnesses talk to this interface only,
// so swapping EvoStore for HDF5+PFS(+Redis) changes nothing but the wiring —
// exactly how the paper's end-to-end comparisons are set up.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/client.h"
#include "core/provider.h"

namespace evostore::core {

class ModelRepository {
 public:
  virtual ~ModelRepository() = default;

  virtual std::string name() const = 0;

  /// Allocate a globally unique model id.
  virtual ModelId allocate_id() = 0;

  /// Find the best transfer-learning ancestor for `g` (LCP semantics) and,
  /// when `fetch_payload`, read the prefix segments. nullopt => train from
  /// scratch.
  virtual sim::CoTask<Result<std::optional<TransferContext>>> prepare_transfer(
      NodeId client, const ArchGraph& g, bool fetch_payload) = 0;

  /// Persist `m`. For derived models `tc` enables incremental storage where
  /// the implementation supports it.
  virtual sim::CoTask<Status> store(NodeId client, const Model& m,
                                    const TransferContext* tc) = 0;

  /// Load a complete model.
  virtual sim::CoTask<Result<Model>> load(NodeId client, ModelId id) = 0;

  /// Retire a model dropped from the active population.
  virtual sim::CoTask<Status> retire(NodeId client, ModelId id) = 0;

  /// Logical bytes of parameter payload currently stored (dedup-aware).
  virtual size_t stored_payload_bytes() const = 0;
};

/// EvoStore deployment: providers on the given fabric nodes + per-node
/// client instances, implementing ModelRepository.
class EvoStoreRepository final : public ModelRepository {
 public:
  /// `backends` (optional) supplies one persistent KV store per provider
  /// (paper §4.3's RocksDB-class backends); pass an empty vector for pure
  /// in-memory providers. Non-owning; backends must outlive the repository.
  /// Construction bumps a persisted incarnation epoch on every backend and
  /// folds the maximum into the clients' idempotency-token namespace, so
  /// tokens minted by this repository's clients can never collide with
  /// `tok/` dedup records a PREVIOUS repository left in the backend. (Within
  /// one repository, provider crash-recovery deliberately keeps the epoch:
  /// in-flight retries must still match their pre-crash dedup records.)
  ///
  /// When the RpcSystem has a FaultInjector, each provider's restart() is
  /// registered as the restart hook of its node.
  EvoStoreRepository(net::RpcSystem& rpc, std::vector<NodeId> provider_nodes,
                     ProviderConfig config = {},
                     std::vector<storage::KvStore*> backends = {},
                     ClientConfig client_config = {});

  std::string name() const override { return "EvoStore"; }
  ModelId allocate_id() override { return ModelId::make(0, ++id_seq_); }

  sim::CoTask<Result<std::optional<TransferContext>>> prepare_transfer(
      NodeId client, const ArchGraph& g, bool fetch_payload) override;
  sim::CoTask<Status> store(NodeId client, const Model& m,
                            const TransferContext* tc) override;
  sim::CoTask<Result<Model>> load(NodeId client, ModelId id) override;
  sim::CoTask<Status> retire(NodeId client, ModelId id) override;
  size_t stored_payload_bytes() const override;

  /// Physical payload bytes actually occupied across all providers
  /// (post-compression, post-chunk-dedup).
  size_t stored_physical_bytes() const;
  /// Physical bytes the same segments would occupy with the delta codec
  /// alone (no chunk dedup); the ratio to stored_physical_bytes() is the
  /// cluster-wide cross-model dedup factor.
  size_t stored_pre_dedup_physical_bytes() const;
  /// Live deduplicated chunks across all providers' chunk stores.
  size_t total_chunks() const;
  /// Cumulative modeled bytes chunk dedup avoided storing.
  uint64_t total_dedup_saved_bytes() const;

  /// Direct client access (full API incl. provenance queries).
  Client& client(NodeId node);

  /// Cluster-wide stats through the RPC path: one GetStats fan-out over
  /// every provider from `node`'s client, reduced via wire::merge_stats.
  /// This is what `--metrics-out` harnesses call so the exported snapshot
  /// reflects the same wire-visible digests a monitoring client would see.
  sim::CoTask<Result<Client::ClusterStats>> collect_stats(NodeId node);

  size_t provider_count() const { return providers_.size(); }
  Provider& provider(size_t i) { return *providers_[i]; }
  const Provider& provider(size_t i) const { return *providers_[i]; }

  /// Aggregates across providers.
  size_t total_models() const;
  size_t total_segments() const;
  size_t total_metadata_bytes() const;

  /// Shared ring-membership view installed into every client (k-way
  /// replica placement; drain flips liveness here first).
  Membership& membership() { return *membership_; }
  const Membership& membership() const { return *membership_; }

  /// Parked hinted-handoff records across all providers (converges to 0
  /// once every crashed replica has been restarted or repaired).
  size_t total_hints() const;

  /// Drain provider `p` out of the ring: flip the shared membership first
  /// (from that instant every client places on the survivors only, so the
  /// migration races no new arrivals), then drive `evostore.drain` — the
  /// provider pushes its catalog to the successor replicas of each owner id,
  /// re-homes its parked hints, and empties itself. Safe under ongoing
  /// traffic; idempotent.
  sim::CoTask<Status> drain_provider(common::ProviderId p);

  /// Anti-entropy rebuild of provider `p` after permanent data loss (its
  /// backend wiped, then restarted empty): every live peer pushes the
  /// models/segments it is first-live-responsible for, pulling chunk bodies
  /// from whichever replica has them; afterwards the now-subsumed parked
  /// hints for `p` are discarded everywhere (the pushed state already
  /// contains their effects, and `p`'s dedup records died with its backend,
  /// so replaying them would double-apply).
  sim::CoTask<Status> repair_provider(common::ProviderId p);

  /// Sum of the fault-path counters of every client created so far (all
  /// zero in a fault-free run).
  ClientFaultStats total_client_fault_stats() const;
  /// Sum of provider crash-recovery cycles and dedup-cache replays.
  uint64_t total_provider_restarts() const;
  uint64_t total_deduped_replays() const;
  /// Incarnation epoch of this repository (see ctor).
  uint64_t token_epoch() const { return client_config_.token_epoch; }

 private:
  net::RpcSystem* rpc_;
  std::vector<NodeId> provider_nodes_;
  std::shared_ptr<Membership> membership_;
  std::vector<std::unique_ptr<Provider>> providers_;
  std::unordered_map<NodeId, std::unique_ptr<Client>> clients_;
  ClientConfig client_config_;
  uint32_t id_seq_ = 0;
  uint32_t next_client_id_ = 1;
};

}  // namespace evostore::core
