// Wire messages of the EvoStore client/provider protocol.
//
// Every request/response is a plain struct with canonical serde methods so
// `net::typed_call` can move it across the simulated fabric. Payload tensors
// ride inside `Segment`s whose buffers keep their representation (synthetic
// descriptors stay tiny on the wire; their byte cost is charged through the
// separate bulk/RDMA path, mirroring Mercury's RPC-vs-bulk split).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/serde.h"
#include "common/status.h"
#include "common/types.h"
#include "compress/codec.h"
#include "compress/compressed_segment.h"
#include "core/owner_map.h"
#include "model/arch_graph.h"
#include "model/model.h"

namespace evostore::core::wire {

using common::Deserializer;
using common::ModelId;
using common::SegmentKey;
using common::Serializer;
using common::VertexId;
using compress::CompressedSegment;
using model::ArchGraph;
using model::Segment;

inline void serialize_status(Serializer& s, const common::Status& st) {
  s.u8(static_cast<uint8_t>(st.code()));
  s.str(st.message());
}
inline common::Status deserialize_status(Deserializer& d) {
  auto code = static_cast<common::ErrorCode>(d.u8());
  std::string msg = d.str();
  return common::Status(code, std::move(msg));
}

inline void serialize_key(Serializer& s, const SegmentKey& k) {
  s.u64(k.owner.value);
  s.u32(k.vertex);
}
inline SegmentKey deserialize_key(Deserializer& d) {
  SegmentKey k;
  k.owner.value = d.u64();
  k.vertex = d.u32();
  return k;
}

// ---- put_model -----------------------------------------------------------

struct PutModelRequest {
  ModelId id;
  ModelId ancestor;  // invalid() for from-scratch models
  double quality = 0;
  ArchGraph graph;
  OwnerMap owners;
  /// Compressed segment envelopes this model owns, keyed by local vertex id.
  std::vector<std::pair<VertexId, CompressedSegment>> new_segments;
  /// Idempotency token (see ModifyRefsRequest::token). Puts are naturally
  /// idempotent (model ids are globally unique), but the embedded epoch lets
  /// the provider reap stale-epoch transfer pins on ANY mutation — even in a
  /// workload that only ever stores from-scratch models.
  uint64_t token = 0;

  void serialize(Serializer& s) const {
    s.u64(id.value);
    s.u64(ancestor.value);
    s.u64(token);
    s.f64(quality);
    graph.serialize(s);
    owners.serialize(s);
    s.u64(new_segments.size());
    for (const auto& [v, env] : new_segments) {
      s.u32(v);
      env.serialize(s);
    }
  }
  static PutModelRequest deserialize(Deserializer& d) {
    PutModelRequest r;
    r.id.value = d.u64();
    r.ancestor.value = d.u64();
    r.token = d.u64();
    r.quality = d.f64();
    r.graph = ArchGraph::deserialize(d);
    r.owners = OwnerMap::deserialize(d);
    uint64_t n = d.u64();
    if (!d.check_count(n, 5)) return r;
    r.new_segments.reserve(n);
    for (uint64_t i = 0; i < n && d.ok(); ++i) {
      VertexId v = d.u32();
      r.new_segments.emplace_back(v, CompressedSegment::deserialize(d));
    }
    return r;
  }
};

struct PutModelResponse {
  common::Status status;
  uint64_t store_seq = 0;

  void serialize(Serializer& s) const {
    serialize_status(s, status);
    s.u64(store_seq);
  }
  static PutModelResponse deserialize(Deserializer& d) {
    PutModelResponse r;
    r.status = deserialize_status(d);
    r.store_seq = d.u64();
    return r;
  }
};

// ---- get_meta ------------------------------------------------------------

struct GetMetaRequest {
  ModelId id;
  void serialize(Serializer& s) const { s.u64(id.value); }
  static GetMetaRequest deserialize(Deserializer& d) {
    return GetMetaRequest{ModelId{d.u64()}};
  }
};

struct GetMetaResponse {
  bool found = false;
  ArchGraph graph;
  OwnerMap owners;
  double quality = 0;
  ModelId ancestor;
  double store_time = 0;
  uint64_t store_seq = 0;

  void serialize(Serializer& s) const {
    s.boolean(found);
    if (!found) return;
    graph.serialize(s);
    owners.serialize(s);
    s.f64(quality);
    s.u64(ancestor.value);
    s.f64(store_time);
    s.u64(store_seq);
  }
  static GetMetaResponse deserialize(Deserializer& d) {
    GetMetaResponse r;
    r.found = d.boolean();
    if (!r.found || !d.ok()) return r;
    r.graph = ArchGraph::deserialize(d);
    r.owners = OwnerMap::deserialize(d);
    r.quality = d.f64();
    r.ancestor.value = d.u64();
    r.store_time = d.f64();
    r.store_seq = d.u64();
    return r;
  }
};

// ---- read_segments -------------------------------------------------------

struct ReadSegmentsRequest {
  std::vector<SegmentKey> keys;
  /// Cache-validation handshake (DESIGN.md §14): when non-empty, parallel to
  /// `keys` — cached_versions[i] is the provider version the client already
  /// holds for keys[i] (0 = not cached). A match lets the provider answer
  /// kNotModified instead of shipping payload bytes.
  std::vector<uint64_t> cached_versions;
  /// The reader's fabric node. Meaningful iff `caching`: the provider
  /// records it in its cache directory so later readers can be redirected
  /// to this client's cache.
  common::NodeId reader_node = 0;
  /// Reader fills a local segment cache from this response.
  bool caching = false;
  /// Reader is willing to chase kRedirect hints to a peer cache. Fallback
  /// re-fetches set this false to guarantee termination.
  bool accept_redirect = false;

  void serialize(Serializer& s) const {
    s.u64(keys.size());
    for (const auto& k : keys) serialize_key(s, k);
    s.u64(cached_versions.size());
    for (uint64_t v : cached_versions) s.u64(v);
    s.u32(reader_node);
    s.boolean(caching);
    s.boolean(accept_redirect);
  }
  static ReadSegmentsRequest deserialize(Deserializer& d) {
    ReadSegmentsRequest r;
    uint64_t n = d.u64();
    if (!d.check_count(n, 2)) return r;
    r.keys.reserve(n);
    for (uint64_t i = 0; i < n && d.ok(); ++i) r.keys.push_back(deserialize_key(d));
    uint64_t nv = d.u64();
    if (!d.check_count(nv, 1)) return r;
    r.cached_versions.reserve(nv);
    for (uint64_t i = 0; i < nv && d.ok(); ++i) r.cached_versions.push_back(d.u64());
    r.reader_node = d.u32();
    r.caching = d.boolean();
    r.accept_redirect = d.boolean();
    return r;
  }
};

/// Per-key disposition of a read (parallel to the request's `keys`).
enum class ReadEntryState : uint8_t {
  kFresh = 0,        ///< envelope shipped in `segments`
  kNotModified = 1,  ///< cached version still current; no bytes moved
  kRedirect = 2,     ///< fetch from the peer cache named in `redirect`
};

struct ReadEntryInfo {
  ReadEntryState state = ReadEntryState::kFresh;
  /// Provider's current version of the segment (all states) — the version a
  /// peer read must match exactly.
  uint64_t version = 0;
  /// Peer node last known to cache this segment (kRedirect only).
  common::NodeId redirect = 0;

  friend bool operator==(const ReadEntryInfo&, const ReadEntryInfo&) = default;
};

struct ReadSegmentsResponse {
  common::Status status;
  /// Per-key dispositions in request-key order (empty on error).
  std::vector<ReadEntryInfo> info;
  /// Compressed envelopes for the kFresh entries only, in request-key order
  /// (empty on error). Decoding — including resolving delta base
  /// dependencies — is the client's job.
  std::vector<CompressedSegment> segments;
  /// Physical bytes moved over the bulk path (post-compression); counts the
  /// kFresh envelopes only — NotModified and redirected keys cost nothing
  /// here.
  uint64_t payload_bytes = 0;

  void serialize(Serializer& s) const {
    serialize_status(s, status);
    s.u64(info.size());
    for (const auto& e : info) {
      s.u8(static_cast<uint8_t>(e.state));
      s.u64(e.version);
      s.u32(e.redirect);
    }
    s.u64(segments.size());
    for (const auto& env : segments) env.serialize(s);
    s.u64(payload_bytes);
  }
  static ReadSegmentsResponse deserialize(Deserializer& d) {
    ReadSegmentsResponse r;
    r.status = deserialize_status(d);
    uint64_t ni = d.u64();
    // u8 state + varint version + varint redirect: >= 3 bytes per entry.
    if (!d.check_count(ni, 3)) return r;
    r.info.reserve(ni);
    for (uint64_t i = 0; i < ni && d.ok(); ++i) {
      ReadEntryInfo e;
      e.state = static_cast<ReadEntryState>(d.u8());
      e.version = d.u64();
      e.redirect = d.u32();
      r.info.push_back(e);
    }
    uint64_t n = d.u64();
    if (!d.check_count(n, 5)) return r;
    r.segments.reserve(n);
    for (uint64_t i = 0; i < n && d.ok(); ++i) {
      r.segments.push_back(CompressedSegment::deserialize(d));
    }
    r.payload_bytes = d.u64();
    return r;
  }
};

// ---- peer_read (client-to-client cooperative cache) ----------------------

/// Fetch segments from a peer client's cache after a provider kRedirect
/// hint. Versions are mandatory and must match exactly — a peer serving
/// anything else could resurrect stale bytes the provider already replaced.
struct PeerReadRequest {
  std::vector<SegmentKey> keys;
  std::vector<uint64_t> versions;  // parallel to keys; required match

  void serialize(Serializer& s) const {
    s.u64(keys.size());
    for (const auto& k : keys) serialize_key(s, k);
    for (uint64_t v : versions) s.u64(v);
  }
  static PeerReadRequest deserialize(Deserializer& d) {
    PeerReadRequest r;
    uint64_t n = d.u64();
    // Varint key (>= 2 bytes) + varint version (>= 1) per entry.
    if (!d.check_count(n, 3)) return r;
    r.keys.reserve(n);
    for (uint64_t i = 0; i < n && d.ok(); ++i) r.keys.push_back(deserialize_key(d));
    r.versions.reserve(n);
    for (uint64_t i = 0; i < n && d.ok(); ++i) r.versions.push_back(d.u64());
    return r;
  }
};

struct PeerReadResponse {
  common::Status status;
  /// Parallel to the request keys: 1 when the peer held the exact version.
  std::vector<uint8_t> found;
  /// Envelopes for the found keys, in request-key order.
  std::vector<CompressedSegment> segments;
  /// Physical bytes the requester pulls over the bulk path.
  uint64_t payload_bytes = 0;

  void serialize(Serializer& s) const {
    serialize_status(s, status);
    s.u64(found.size());
    for (uint8_t f : found) s.u8(f);
    s.u64(segments.size());
    for (const auto& env : segments) env.serialize(s);
    s.u64(payload_bytes);
  }
  static PeerReadResponse deserialize(Deserializer& d) {
    PeerReadResponse r;
    r.status = deserialize_status(d);
    uint64_t nf = d.u64();
    if (!d.check_count(nf, 1)) return r;
    r.found.reserve(nf);
    for (uint64_t i = 0; i < nf && d.ok(); ++i) r.found.push_back(d.u8());
    uint64_t n = d.u64();
    if (!d.check_count(n, 5)) return r;
    r.segments.reserve(n);
    for (uint64_t i = 0; i < n && d.ok(); ++i) {
      r.segments.push_back(CompressedSegment::deserialize(d));
    }
    r.payload_bytes = d.u64();
    return r;
  }
};

// ---- modify_refs ---------------------------------------------------------

struct ModifyRefsRequest {
  std::vector<SegmentKey> keys;
  bool increment = true;
  /// Idempotency token: non-zero tokens identify one logical request across
  /// retries. A provider that already applied the token replays its cached
  /// response instead of re-applying the refcount deltas (exactly-once
  /// semantics under message loss). 0 disables deduplication.
  uint64_t token = 0;
  /// Transfer-pin bookkeeping (DESIGN.md §14): non-zero marks this request
  /// as pin traffic from the given client incarnation epoch. Increments
  /// record pins in the provider's durable pin ledger; decrements release
  /// them. When the client incarnation restarts, the provider reaps every
  /// ledger entry of older epochs — the fix for pins leaked by a client
  /// crash mid-transfer. 0 = plain reference traffic, no ledger entry.
  uint64_t pin_epoch = 0;
  /// With pin_epoch set: remove the ledger entries WITHOUT touching
  /// refcounts — the pin just became a stored model's permanent reference
  /// (put_model consumed it).
  bool pin_consume = false;

  void serialize(Serializer& s) const {
    s.boolean(increment);
    s.u64(token);
    s.u64(pin_epoch);
    s.boolean(pin_consume);
    s.u64(keys.size());
    for (const auto& k : keys) serialize_key(s, k);
  }
  static ModifyRefsRequest deserialize(Deserializer& d) {
    ModifyRefsRequest r;
    r.increment = d.boolean();
    r.token = d.u64();
    r.pin_epoch = d.u64();
    r.pin_consume = d.boolean();
    uint64_t n = d.u64();
    if (!d.check_count(n, 2)) return r;
    r.keys.reserve(n);
    for (uint64_t i = 0; i < n && d.ok(); ++i) r.keys.push_back(deserialize_key(d));
    return r;
  }
};

struct ModifyRefsResponse {
  common::Status status;
  uint32_t missing = 0;
  uint64_t freed_bytes = 0;
  /// Base keys whose delta-dependency reference was released because a
  /// dependent envelope was freed by this request. The caller must decrement
  /// these in turn (the release can cascade down a delta chain).
  std::vector<SegmentKey> freed_bases;
  /// The request keys this provider did not hold (parallel data for
  /// `missing`). With k-way replication a key is only globally missing when
  /// EVERY replica reports it here — one replica lagging (repairing,
  /// freshly rebuilt) must not fail the whole operation.
  std::vector<SegmentKey> missing_keys;

  void serialize(Serializer& s) const {
    serialize_status(s, status);
    s.u32(missing);
    s.u64(freed_bytes);
    s.u64(freed_bases.size());
    for (const auto& k : freed_bases) serialize_key(s, k);
    s.u64(missing_keys.size());
    for (const auto& k : missing_keys) serialize_key(s, k);
  }
  static ModifyRefsResponse deserialize(Deserializer& d) {
    ModifyRefsResponse r;
    r.status = deserialize_status(d);
    r.missing = d.u32();
    r.freed_bytes = d.u64();
    uint64_t n = d.u64();
    if (!d.check_count(n, 2)) return r;
    r.freed_bases.reserve(n);
    for (uint64_t i = 0; i < n && d.ok(); ++i) {
      r.freed_bases.push_back(deserialize_key(d));
    }
    uint64_t nm = d.u64();
    if (!d.check_count(nm, 2)) return r;
    r.missing_keys.reserve(nm);
    for (uint64_t i = 0; i < nm && d.ok(); ++i) {
      r.missing_keys.push_back(deserialize_key(d));
    }
    return r;
  }
};

// ---- retire --------------------------------------------------------------

struct RetireRequest {
  ModelId id;
  /// Idempotency token (see ModifyRefsRequest::token): a retried retire must
  /// return the original owner map instead of NotFound, or the caller could
  /// never run the reference decrements.
  uint64_t token = 0;
  void serialize(Serializer& s) const {
    s.u64(id.value);
    s.u64(token);
  }
  static RetireRequest deserialize(Deserializer& d) {
    RetireRequest r;
    r.id.value = d.u64();
    r.token = d.u64();
    return r;
  }
};

struct RetireResponse {
  common::Status status;
  OwnerMap owners;  // the retired model's owner map (for ref decrements)

  void serialize(Serializer& s) const {
    serialize_status(s, status);
    owners.serialize(s);
  }
  static RetireResponse deserialize(Deserializer& d) {
    RetireResponse r;
    r.status = deserialize_status(d);
    r.owners = OwnerMap::deserialize(d);
    return r;
  }
};

// ---- store_hint (hinted handoff, DESIGN.md §15) --------------------------

/// One write a down replica missed, parked durably on a live peer until the
/// target recovers. The payload is the ORIGINAL serialized request (put /
/// modify_refs / retire), token and all — replay simply re-sends it, and the
/// embedded idempotency token makes the replay exactly-once even when the
/// target had in fact applied the write before crashing.
struct HintRecord {
  common::ProviderId target = 0;  ///< replica the write was aimed at
  std::string method;             ///< RPC method to replay
  common::Bytes payload;          ///< serialized original request

  friend bool operator==(const HintRecord&, const HintRecord&) = default;

  void serialize(Serializer& s) const {
    s.u32(target);
    s.str(method);
    s.bytes(payload);
  }
  static HintRecord deserialize(Deserializer& d) {
    HintRecord r;
    r.target = d.u32();
    r.method = d.str();
    r.payload = d.bytes();
    return r;
  }
};

struct StoreHintRequest {
  HintRecord hint;
  void serialize(Serializer& s) const { hint.serialize(s); }
  static StoreHintRequest deserialize(Deserializer& d) {
    return StoreHintRequest{HintRecord::deserialize(d)};
  }
};

struct StoreHintResponse {
  common::Status status;
  void serialize(Serializer& s) const { serialize_status(s, status); }
  static StoreHintResponse deserialize(Deserializer& d) {
    return StoreHintResponse{deserialize_status(d)};
  }
};

// ---- replicate (anti-entropy push: drain migration + peer repair) --------

/// One stored segment travelling provider-to-provider. Unlike put_model,
/// kChunked envelopes travel AS MANIFESTS here — the receiver re-references
/// chunks it already holds and pulls only missing bodies via fetch_chunks
/// (cross-provider dedup-aware rebuild). The source's refcount travels too:
/// replication copies GC state, so later symmetric decrements balance.
struct ReplicateSegment {
  SegmentKey key;
  CompressedSegment segment;
  uint32_t refs = 0;

  void serialize(Serializer& s) const {
    serialize_key(s, key);
    segment.serialize(s);
    s.u32(refs);
  }
  static ReplicateSegment deserialize(Deserializer& d) {
    ReplicateSegment r;
    r.key = deserialize_key(d);
    r.segment = CompressedSegment::deserialize(d);
    r.refs = d.u32();
    return r;
  }
};

struct ReplicateRequest {
  /// Metadata present? Orphan segments (owner meta already retired, payload
  /// alive through inherited references) replicate with has_meta = false.
  bool has_meta = false;
  ModelId id;
  ArchGraph graph;
  OwnerMap owners;
  double quality = 0;
  ModelId ancestor;
  double store_time = 0;
  std::vector<ReplicateSegment> segments;
  /// Where missing chunk bodies live: the pushing provider first, then any
  /// other replica peer (whoever has the content-addressed chunk serves it).
  common::NodeId source_node = 0;
  std::vector<common::NodeId> peer_nodes;

  void serialize(Serializer& s) const {
    s.boolean(has_meta);
    s.u64(id.value);
    if (has_meta) {
      graph.serialize(s);
      owners.serialize(s);
      s.f64(quality);
      s.u64(ancestor.value);
      s.f64(store_time);
    }
    s.u64(segments.size());
    for (const auto& seg : segments) seg.serialize(s);
    s.u32(source_node);
    s.u64(peer_nodes.size());
    for (common::NodeId n : peer_nodes) s.u32(n);
  }
  static ReplicateRequest deserialize(Deserializer& d) {
    ReplicateRequest r;
    r.has_meta = d.boolean();
    r.id.value = d.u64();
    if (r.has_meta && d.ok()) {
      r.graph = ArchGraph::deserialize(d);
      r.owners = OwnerMap::deserialize(d);
      r.quality = d.f64();
      r.ancestor.value = d.u64();
      r.store_time = d.f64();
    }
    uint64_t n = d.u64();
    if (!d.check_count(n, 7)) return r;
    r.segments.reserve(n);
    for (uint64_t i = 0; i < n && d.ok(); ++i) {
      r.segments.push_back(ReplicateSegment::deserialize(d));
    }
    r.source_node = d.u32();
    uint64_t np = d.u64();
    if (!d.check_count(np, 1)) return r;
    r.peer_nodes.reserve(np);
    for (uint64_t i = 0; i < np && d.ok(); ++i) r.peer_nodes.push_back(d.u32());
    return r;
  }
};

struct ReplicateResponse {
  common::Status status;
  bool installed_meta = false;
  uint32_t installed_segments = 0;
  uint32_t fetched_chunks = 0;

  void serialize(Serializer& s) const {
    serialize_status(s, status);
    s.boolean(installed_meta);
    s.u32(installed_segments);
    s.u32(fetched_chunks);
  }
  static ReplicateResponse deserialize(Deserializer& d) {
    ReplicateResponse r;
    r.status = deserialize_status(d);
    r.installed_meta = d.boolean();
    r.installed_segments = d.u32();
    r.fetched_chunks = d.u32();
    return r;
  }
};

// ---- fetch_chunks (content-addressed chunk bodies by digest) -------------

struct FetchChunksRequest {
  std::vector<common::Hash128> digests;

  void serialize(Serializer& s) const {
    s.u64(digests.size());
    for (const auto& h : digests) {
      s.u64(h.hi);
      s.u64(h.lo);
    }
  }
  static FetchChunksRequest deserialize(Deserializer& d) {
    FetchChunksRequest r;
    uint64_t n = d.u64();
    if (!d.check_count(n, 2)) return r;
    r.digests.reserve(n);
    for (uint64_t i = 0; i < n && d.ok(); ++i) {
      common::Hash128 h;
      h.hi = d.u64();
      h.lo = d.u64();
      r.digests.push_back(h);
    }
    return r;
  }
};

/// One chunk body with the modeled storage cost it carries at the source
/// (the telescoping per-chunk share — see DESIGN.md §13); the cost travels
/// so the receiver's byte accounting replicates exactly.
struct ChunkBodyEntry {
  common::Hash128 digest;
  common::Bytes bytes;
  uint64_t cost = 0;

  void serialize(Serializer& s) const {
    s.u64(digest.hi);
    s.u64(digest.lo);
    s.bytes(bytes);
    s.u64(cost);
  }
  static ChunkBodyEntry deserialize(Deserializer& d) {
    ChunkBodyEntry e;
    e.digest.hi = d.u64();
    e.digest.lo = d.u64();
    e.bytes = d.bytes();
    e.cost = d.u64();
    return e;
  }
};

struct FetchChunksResponse {
  common::Status status;
  /// Bodies for the digests this provider holds (request order, absent ones
  /// skipped — the requester retries the remainder against another peer).
  std::vector<ChunkBodyEntry> chunks;
  uint64_t payload_bytes = 0;

  void serialize(Serializer& s) const {
    serialize_status(s, status);
    s.u64(chunks.size());
    for (const auto& c : chunks) c.serialize(s);
    s.u64(payload_bytes);
  }
  static FetchChunksResponse deserialize(Deserializer& d) {
    FetchChunksResponse r;
    r.status = deserialize_status(d);
    uint64_t n = d.u64();
    if (!d.check_count(n, 5)) return r;
    r.chunks.reserve(n);
    for (uint64_t i = 0; i < n && d.ok(); ++i) {
      r.chunks.push_back(ChunkBodyEntry::deserialize(d));
    }
    r.payload_bytes = d.u64();
    return r;
  }
};

// ---- drain (decommission: migrate catalog to successor replicas) ---------

/// Self-contained ring view: the post-drain membership, the replication
/// factor, and every provider's fabric node, so the drained provider can
/// compute successor replica sets and push without any directory service.
struct DrainRequest {
  uint32_t replication = 0;
  std::vector<common::NodeId> provider_nodes;  ///< ProviderId -> NodeId
  std::vector<uint8_t> live;  ///< post-drain membership (self already 0)

  void serialize(Serializer& s) const {
    s.u32(replication);
    s.u64(provider_nodes.size());
    for (common::NodeId n : provider_nodes) s.u32(n);
    s.u64(live.size());
    for (uint8_t b : live) s.u8(b);
  }
  static DrainRequest deserialize(Deserializer& d) {
    DrainRequest r;
    r.replication = d.u32();
    uint64_t n = d.u64();
    if (!d.check_count(n, 1)) return r;
    r.provider_nodes.reserve(n);
    for (uint64_t i = 0; i < n && d.ok(); ++i) r.provider_nodes.push_back(d.u32());
    uint64_t nl = d.u64();
    if (!d.check_count(nl, 1)) return r;
    r.live.reserve(nl);
    for (uint64_t i = 0; i < nl && d.ok(); ++i) r.live.push_back(d.u8());
    return r;
  }
};

struct DrainResponse {
  common::Status status;
  uint64_t models_moved = 0;
  uint64_t segments_moved = 0;
  uint64_t hints_moved = 0;

  void serialize(Serializer& s) const {
    serialize_status(s, status);
    s.u64(models_moved);
    s.u64(segments_moved);
    s.u64(hints_moved);
  }
  static DrainResponse deserialize(Deserializer& d) {
    DrainResponse r;
    r.status = deserialize_status(d);
    r.models_moved = d.u64();
    r.segments_moved = d.u64();
    r.hints_moved = d.u64();
    return r;
  }
};

// ---- repair_peer (anti-entropy rebuild of a lost provider) ---------------

/// Ask a live peer to push every model it is first-live-replica for whose
/// replica set includes `target` (the provider being rebuilt). Carries the
/// full ring view so responsibility is computed identically everywhere —
/// exactly one peer pushes each model.
struct RepairRequest {
  common::ProviderId target = 0;
  uint32_t replication = 0;
  std::vector<common::NodeId> provider_nodes;
  std::vector<uint8_t> live;  ///< full membership, target included

  void serialize(Serializer& s) const {
    s.u32(target);
    s.u32(replication);
    s.u64(provider_nodes.size());
    for (common::NodeId n : provider_nodes) s.u32(n);
    s.u64(live.size());
    for (uint8_t b : live) s.u8(b);
  }
  static RepairRequest deserialize(Deserializer& d) {
    RepairRequest r;
    r.target = d.u32();
    r.replication = d.u32();
    uint64_t n = d.u64();
    if (!d.check_count(n, 1)) return r;
    r.provider_nodes.reserve(n);
    for (uint64_t i = 0; i < n && d.ok(); ++i) r.provider_nodes.push_back(d.u32());
    uint64_t nl = d.u64();
    if (!d.check_count(nl, 1)) return r;
    r.live.reserve(nl);
    for (uint64_t i = 0; i < nl && d.ok(); ++i) r.live.push_back(d.u8());
    return r;
  }
};

struct RepairResponse {
  common::Status status;
  uint64_t models_pushed = 0;
  uint64_t segments_pushed = 0;

  void serialize(Serializer& s) const {
    serialize_status(s, status);
    s.u64(models_pushed);
    s.u64(segments_pushed);
  }
  static RepairResponse deserialize(Deserializer& d) {
    RepairResponse r;
    r.status = deserialize_status(d);
    r.models_pushed = d.u64();
    r.segments_pushed = d.u64();
    return r;
  }
};

// ---- lcp_query (provider-side collective piece) --------------------------

struct LcpQueryRequest {
  ArchGraph graph;
  void serialize(Serializer& s) const { graph.serialize(s); }
  static LcpQueryRequest deserialize(Deserializer& d) {
    return LcpQueryRequest{ArchGraph::deserialize(d)};
  }
};

struct LcpQueryResponse {
  bool found = false;
  ModelId ancestor;
  double quality = 0;
  std::vector<std::pair<VertexId, VertexId>> matches;  // (G vertex, A vertex)
  /// Client-side only (never serialized): set by the broadcast+reduce when
  /// at least one provider could not be reached within the retry budget —
  /// the reduction covers the responders only (graceful degradation).
  bool partial = false;

  size_t lcp_len() const { return matches.size(); }

  void serialize(Serializer& s) const {
    s.boolean(found);
    if (!found) return;
    s.u64(ancestor.value);
    s.f64(quality);
    s.u64(matches.size());
    for (auto [gv, av] : matches) {
      s.u32(gv);
      s.u32(av);
    }
  }
  static LcpQueryResponse deserialize(Deserializer& d) {
    LcpQueryResponse r;
    r.found = d.boolean();
    if (!r.found || !d.ok()) return r;
    r.ancestor.value = d.u64();
    r.quality = d.f64();
    uint64_t n = d.u64();
    if (!d.check_count(n, 2)) return r;
    r.matches.reserve(n);
    for (uint64_t i = 0; i < n && d.ok(); ++i) {
      VertexId gv = d.u32();
      VertexId av = d.u32();
      r.matches.emplace_back(gv, av);
    }
    return r;
  }
};

// ---- get_stats -----------------------------------------------------------

struct StatsRequest {
  void serialize(Serializer&) const {}
  static StatsRequest deserialize(Deserializer&) { return {}; }
};

/// One named histogram digest from a provider's local metrics registry
/// (obs::HistogramSummary + its name). Quantiles are bucket-interpolated
/// provider-side; merging across providers (see merge_stats) keeps exact
/// count/sum/min/max and count-weights the quantiles.
struct HistogramSummaryEntry {
  std::string name;
  uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;

  friend bool operator==(const HistogramSummaryEntry&,
                         const HistogramSummaryEntry&) = default;

  void serialize(Serializer& s) const {
    s.str(name);
    s.u64(count);
    s.f64(sum);
    s.f64(min);
    s.f64(max);
    s.f64(p50);
    s.f64(p95);
    s.f64(p99);
  }
  static HistogramSummaryEntry deserialize(Deserializer& d) {
    HistogramSummaryEntry e;
    e.name = d.str();
    e.count = d.u64();
    e.sum = d.f64();
    e.min = d.f64();
    e.max = d.f64();
    e.p50 = d.f64();
    e.p95 = d.f64();
    e.p99 = d.f64();
    return e;
  }
};

/// Live per-codec stored volume on one provider.
struct CodecUsageEntry {
  compress::CodecId codec = compress::CodecId::kRaw;
  uint64_t segments = 0;
  uint64_t logical_bytes = 0;
  uint64_t physical_bytes = 0;

  friend bool operator==(const CodecUsageEntry&,
                         const CodecUsageEntry&) = default;
};

struct StatsResponse {
  common::Status status;
  // Operation counters (cumulative).
  uint64_t puts = 0;
  uint64_t segment_reads = 0;
  uint64_t refs_added = 0;
  uint64_t refs_removed = 0;
  uint64_t segments_freed = 0;
  // Live stored state.
  uint64_t live_models = 0;
  uint64_t live_segments = 0;
  uint64_t logical_bytes = 0;   // decoded payload the provider serves
  uint64_t physical_bytes = 0;  // at-rest payload: inline + deduped chunks
  // Chunk dedup (DESIGN.md §13). `physical_bytes` above is the deduped
  // at-rest footprint; `pre_dedup_physical_bytes` is what the same live
  // segments would cost with the delta codec alone (every chunk charged at
  // every occurrence). Their ratio is the cross-model dedup factor.
  uint64_t pre_dedup_physical_bytes = 0;
  uint64_t live_chunks = 0;
  uint64_t chunk_physical_bytes = 0;  // the chunk-store share of physical
  uint64_t chunk_hits = 0;            // cumulative dedup hits on ingest
  uint64_t chunk_misses = 0;          // cumulative newly stored chunks
  uint64_t chunks_freed = 0;          // chunks whose last reference died
  uint64_t dedup_saved_bytes = 0;     // cumulative modeled bytes not stored
  // Cooperative cache + pin ledger (DESIGN.md §14).
  uint64_t not_modified_reads = 0;  // validation handshakes answered cheaply
  uint64_t redirects_issued = 0;    // reads pointed at a peer cache
  uint64_t pins_reaped = 0;         // stale-epoch pins released on the ledger
  // Replication fault model (DESIGN.md §15).
  uint64_t handoff_recorded = 0;    // hints parked for a down replica
  uint64_t handoff_replayed = 0;    // hints delivered on target recovery
  uint64_t handoff_discarded = 0;   // hints subsumed by a full repair push
  uint64_t replica_installed_models = 0;    // metas installed via replicate
  uint64_t replica_installed_segments = 0;  // segments installed via replicate
  uint64_t replica_chunks_fetched = 0;      // chunk bodies pulled from peers
  uint64_t drain_models_moved = 0;          // metas migrated by evostore.drain
  uint64_t drain_segments_moved = 0;        // segments migrated by drain
  // Catalog prefix index (DESIGN.md §16).
  uint64_t lcp_index_answers = 0;         // queries answered without a scan
  uint64_t lcp_index_fallback_scans = 0;  // index bypassed (depth mismatch)
  uint64_t lcp_index_nodes = 0;           // live trie nodes
  uint64_t lcp_index_bytes = 0;           // index memory footprint model
  std::vector<CodecUsageEntry> codecs;
  // Per-provider histogram digests (name-ordered: providers export their
  // registry with std::map iteration, so the wire order is deterministic).
  std::vector<HistogramSummaryEntry> histograms;

  void serialize(Serializer& s) const {
    serialize_status(s, status);
    s.u64(puts);
    s.u64(segment_reads);
    s.u64(refs_added);
    s.u64(refs_removed);
    s.u64(segments_freed);
    s.u64(live_models);
    s.u64(live_segments);
    s.u64(logical_bytes);
    s.u64(physical_bytes);
    s.u64(pre_dedup_physical_bytes);
    s.u64(live_chunks);
    s.u64(chunk_physical_bytes);
    s.u64(chunk_hits);
    s.u64(chunk_misses);
    s.u64(chunks_freed);
    s.u64(dedup_saved_bytes);
    s.u64(not_modified_reads);
    s.u64(redirects_issued);
    s.u64(pins_reaped);
    s.u64(handoff_recorded);
    s.u64(handoff_replayed);
    s.u64(handoff_discarded);
    s.u64(replica_installed_models);
    s.u64(replica_installed_segments);
    s.u64(replica_chunks_fetched);
    s.u64(drain_models_moved);
    s.u64(drain_segments_moved);
    s.u64(lcp_index_answers);
    s.u64(lcp_index_fallback_scans);
    s.u64(lcp_index_nodes);
    s.u64(lcp_index_bytes);
    s.u64(codecs.size());
    for (const auto& c : codecs) {
      s.u8(static_cast<uint8_t>(c.codec));
      s.u64(c.segments);
      s.u64(c.logical_bytes);
      s.u64(c.physical_bytes);
    }
    s.u64(histograms.size());
    for (const auto& h : histograms) h.serialize(s);
  }
  static StatsResponse deserialize(Deserializer& d) {
    StatsResponse r;
    r.status = deserialize_status(d);
    r.puts = d.u64();
    r.segment_reads = d.u64();
    r.refs_added = d.u64();
    r.refs_removed = d.u64();
    r.segments_freed = d.u64();
    r.live_models = d.u64();
    r.live_segments = d.u64();
    r.logical_bytes = d.u64();
    r.physical_bytes = d.u64();
    r.pre_dedup_physical_bytes = d.u64();
    r.live_chunks = d.u64();
    r.chunk_physical_bytes = d.u64();
    r.chunk_hits = d.u64();
    r.chunk_misses = d.u64();
    r.chunks_freed = d.u64();
    r.dedup_saved_bytes = d.u64();
    r.not_modified_reads = d.u64();
    r.redirects_issued = d.u64();
    r.pins_reaped = d.u64();
    r.handoff_recorded = d.u64();
    r.handoff_replayed = d.u64();
    r.handoff_discarded = d.u64();
    r.replica_installed_models = d.u64();
    r.replica_installed_segments = d.u64();
    r.replica_chunks_fetched = d.u64();
    r.drain_models_moved = d.u64();
    r.drain_segments_moved = d.u64();
    r.lcp_index_answers = d.u64();
    r.lcp_index_fallback_scans = d.u64();
    r.lcp_index_nodes = d.u64();
    r.lcp_index_bytes = d.u64();
    uint64_t n = d.u64();
    if (!d.check_count(n, 4)) return r;
    r.codecs.reserve(n);
    for (uint64_t i = 0; i < n && d.ok(); ++i) {
      CodecUsageEntry e;
      e.codec = static_cast<compress::CodecId>(d.u8());
      e.segments = d.u64();
      e.logical_bytes = d.u64();
      e.physical_bytes = d.u64();
      r.codecs.push_back(e);
    }
    uint64_t nh = d.u64();
    // >= 1 byte name-length + 7 numeric fields per entry.
    if (!d.check_count(nh, 8)) return r;
    r.histograms.reserve(nh);
    for (uint64_t i = 0; i < nh && d.ok(); ++i) {
      r.histograms.push_back(HistogramSummaryEntry::deserialize(d));
    }
    return r;
  }
};

/// Cluster-wide aggregation of per-provider stats (used by
/// Client::collect_stats). Counters sum exactly; codec usage merges by
/// codec id; histogram digests merge by name with exact count/sum/min/max
/// and count-weighted quantiles (an approximation — the exact quantile of
/// a union is not recoverable from per-provider digests).
inline StatsResponse merge_stats(const std::vector<StatsResponse>& parts) {
  StatsResponse total;
  total.status = common::Status::Ok();
  std::vector<CodecUsageEntry> codecs;
  std::vector<HistogramSummaryEntry> hists;
  for (const StatsResponse& p : parts) {
    total.puts += p.puts;
    total.segment_reads += p.segment_reads;
    total.refs_added += p.refs_added;
    total.refs_removed += p.refs_removed;
    total.segments_freed += p.segments_freed;
    total.live_models += p.live_models;
    total.live_segments += p.live_segments;
    total.logical_bytes += p.logical_bytes;
    total.physical_bytes += p.physical_bytes;
    total.pre_dedup_physical_bytes += p.pre_dedup_physical_bytes;
    total.live_chunks += p.live_chunks;
    total.chunk_physical_bytes += p.chunk_physical_bytes;
    total.chunk_hits += p.chunk_hits;
    total.chunk_misses += p.chunk_misses;
    total.chunks_freed += p.chunks_freed;
    total.dedup_saved_bytes += p.dedup_saved_bytes;
    total.not_modified_reads += p.not_modified_reads;
    total.redirects_issued += p.redirects_issued;
    total.pins_reaped += p.pins_reaped;
    total.handoff_recorded += p.handoff_recorded;
    total.handoff_replayed += p.handoff_replayed;
    total.handoff_discarded += p.handoff_discarded;
    total.replica_installed_models += p.replica_installed_models;
    total.replica_installed_segments += p.replica_installed_segments;
    total.replica_chunks_fetched += p.replica_chunks_fetched;
    total.drain_models_moved += p.drain_models_moved;
    total.drain_segments_moved += p.drain_segments_moved;
    total.lcp_index_answers += p.lcp_index_answers;
    total.lcp_index_fallback_scans += p.lcp_index_fallback_scans;
    total.lcp_index_nodes += p.lcp_index_nodes;
    total.lcp_index_bytes += p.lcp_index_bytes;
    for (const CodecUsageEntry& c : p.codecs) {
      auto it = std::find_if(codecs.begin(), codecs.end(),
                             [&](const auto& e) { return e.codec == c.codec; });
      if (it == codecs.end()) {
        codecs.push_back(c);
      } else {
        it->segments += c.segments;
        it->logical_bytes += c.logical_bytes;
        it->physical_bytes += c.physical_bytes;
      }
    }
    for (const HistogramSummaryEntry& h : p.histograms) {
      auto it = std::find_if(hists.begin(), hists.end(),
                             [&](const auto& e) { return e.name == h.name; });
      if (it == hists.end()) {
        hists.push_back(h);
        continue;
      }
      if (h.count == 0) continue;
      if (it->count == 0) {
        *it = h;
        continue;
      }
      double wa = static_cast<double>(it->count);
      double wb = static_cast<double>(h.count);
      it->p50 = (it->p50 * wa + h.p50 * wb) / (wa + wb);
      it->p95 = (it->p95 * wa + h.p95 * wb) / (wa + wb);
      it->p99 = (it->p99 * wa + h.p99 * wb) / (wa + wb);
      it->min = std::min(it->min, h.min);
      it->max = std::max(it->max, h.max);
      it->count += h.count;
      it->sum += h.sum;
    }
  }
  std::sort(codecs.begin(), codecs.end(), [](const auto& a, const auto& b) {
    return static_cast<uint8_t>(a.codec) < static_cast<uint8_t>(b.codec);
  });
  std::sort(hists.begin(), hists.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  total.codecs = std::move(codecs);
  total.histograms = std::move(hists);
  return total;
}

}  // namespace evostore::core::wire
