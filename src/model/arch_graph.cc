#include "model/arch_graph.h"

#include <algorithm>
#include <queue>

namespace evostore::model {

namespace {

// Working representation during recursive expansion: leaf nodes with edges
// in temporary (creation-order) ids.
struct TempGraph {
  std::vector<const LayerDef*> leaves;
  std::vector<std::vector<uint32_t>> out;

  uint32_t add(const LayerDef& def) {
    leaves.push_back(&def);
    out.emplace_back();
    return static_cast<uint32_t>(leaves.size() - 1);
  }
};

// Expand `arch` into `tg`; returns {entry, exit} temp ids of the expansion.
// Validation has already guaranteed a single root and (for submodels) a
// single sink.
struct EntryExit {
  uint32_t entry;
  uint32_t exit;
};

EntryExit expand(const Architecture& arch, TempGraph& tg) {
  size_t n = arch.node_count();
  // Per nested node: the temp ids that incoming/outgoing edges attach to.
  std::vector<EntryExit> spans(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (arch.is_leaf(i)) {
      uint32_t id = tg.add(arch.layer(i));
      spans[i] = {id, id};
    } else {
      spans[i] = expand(arch.submodel(i), tg);
    }
  }
  for (auto [from, to] : arch.edges()) {
    tg.out[spans[from].exit].push_back(spans[to].entry);
  }
  // Locate this level's root and sink in nested-node space.
  std::vector<uint32_t> indeg(n, 0), outdeg(n, 0);
  for (auto [from, to] : arch.edges()) {
    ++indeg[to];
    ++outdeg[from];
  }
  uint32_t root = 0, sink = 0;
  for (uint32_t i = 0; i < n; ++i) {
    if (indeg[i] == 0) root = i;
    if (outdeg[i] == 0) sink = i;
  }
  return {spans[root].entry, spans[sink].exit};
}

}  // namespace

common::Result<ArchGraph> ArchGraph::flatten(const Architecture& arch) {
  EVO_RETURN_IF_ERROR(arch.validate());
  TempGraph tg;
  EntryExit top = expand(arch, tg);

  // Deterministic BFS from the entry to assign final vertex ids. Neighbor
  // order is creation order, which is itself deterministic.
  size_t n = tg.leaves.size();
  std::vector<VertexId> temp_to_final(n, UINT32_MAX);
  std::vector<uint32_t> bfs_order;
  bfs_order.reserve(n);
  std::queue<uint32_t> q;
  q.push(top.entry);
  temp_to_final[top.entry] = 0;
  while (!q.empty()) {
    uint32_t u = q.front();
    q.pop();
    bfs_order.push_back(u);
    for (uint32_t v : tg.out[u]) {
      if (temp_to_final[v] == UINT32_MAX) {
        temp_to_final[v] = static_cast<VertexId>(bfs_order.size() + q.size());
        q.push(v);
      }
    }
  }
  if (bfs_order.size() != n) {
    return common::Status::Internal(
        "flatten: not all leaf layers reachable from the input root");
  }
  // Fix final id assignment: id = position in BFS order.
  for (size_t pos = 0; pos < bfs_order.size(); ++pos) {
    temp_to_final[bfs_order[pos]] = static_cast<VertexId>(pos);
  }

  ArchGraph g;
  g.defs_.reserve(n);
  g.out_.assign(n, {});
  for (uint32_t temp : bfs_order) {
    g.defs_.push_back(*tg.leaves[temp]);
  }
  for (uint32_t temp = 0; temp < n; ++temp) {
    VertexId from = temp_to_final[temp];
    for (uint32_t t : tg.out[temp]) {
      g.out_[from].push_back(temp_to_final[t]);
    }
    std::sort(g.out_[from].begin(), g.out_[from].end());
  }
  g.finalize();
  return g;
}

common::Result<ArchGraph> ArchGraph::from_parts(
    std::vector<LayerDef> defs,
    std::vector<std::pair<VertexId, VertexId>> edges) {
  ArchGraph g;
  g.defs_ = std::move(defs);
  g.out_.assign(g.defs_.size(), {});
  for (auto [from, to] : edges) {
    if (from >= g.defs_.size() || to >= g.defs_.size()) {
      return common::Status::InvalidArgument("edge endpoint out of range");
    }
    g.out_[from].push_back(to);
  }
  for (auto& adj : g.out_) std::sort(adj.begin(), adj.end());
  g.finalize();
  return g;
}

void ArchGraph::finalize() {
  size_t n = defs_.size();
  sigs_.resize(n);
  for (size_t i = 0; i < n; ++i) sigs_[i] = defs_[i].signature();
  in_degree_.assign(n, 0);
  for (const auto& adj : out_) {
    for (VertexId v : adj) ++in_degree_[v];
  }
  common::Hasher128 h(0xa2c4);
  h.u64(n);
  for (size_t i = 0; i < n; ++i) {
    h.h128(sigs_[i]);
    h.u64(out_[i].size());
    for (VertexId v : out_[i]) h.u64(v);
  }
  graph_hash_ = h.finish();
}

size_t ArchGraph::edge_count() const {
  size_t n = 0;
  for (const auto& adj : out_) n += adj.size();
  return n;
}

size_t ArchGraph::total_param_bytes(DType dtype) const {
  size_t total = 0;
  for (const auto& def : defs_) total += def.param_bytes(dtype);
  return total;
}

void ArchGraph::serialize(common::Serializer& s) const {
  s.u64(defs_.size());
  for (const auto& def : defs_) def.serialize(s);
  for (const auto& adj : out_) {
    s.u64(adj.size());
    for (VertexId v : adj) s.u32(v);
  }
}

ArchGraph ArchGraph::deserialize(common::Deserializer& d) {
  ArchGraph g;
  uint64_t n = d.u64();
  if (!d.check_count(n)) return g;
  g.defs_.reserve(n);
  for (uint64_t i = 0; i < n && d.ok(); ++i) {
    g.defs_.push_back(LayerDef::deserialize(d));
  }
  if (!d.ok()) return g;
  g.out_.assign(n, {});
  for (uint64_t i = 0; i < n && d.ok(); ++i) {
    uint64_t deg = d.u64();
    if (!d.check_count(deg)) break;
    g.out_[i].resize(deg);
    for (auto& v : g.out_[i]) {
      v = d.u32();
      if (v >= n) {
        // Malformed input: an edge target outside the vertex range must not
        // reach finalize()'s in-degree accounting.
        g.out_.clear();
        g.defs_.clear();
        (void)d.check_count(UINT64_MAX);  // fail the stream
        return g;
      }
    }
  }
  if (d.ok()) g.finalize();
  return g;
}

}  // namespace evostore::model
