// Compact flattened architecture graphs (paper §4.2).
//
// Flattening recursively expands all submodels of a nested `Architecture`
// into a single DAG of leaf layers, then assigns unique vertex ids in
// deterministic BFS order from the input root. The result is the unit the
// repository stores, hashes, LCP-matches, and builds owner maps over.
#pragma once

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/serde.h"
#include "common/status.h"
#include "common/types.h"
#include "model/architecture.h"

namespace evostore::model {

using common::VertexId;

class ArchGraph {
 public:
  ArchGraph() = default;

  /// Flatten a validated nested architecture. Fails if validation fails.
  static common::Result<ArchGraph> flatten(const Architecture& arch);

  size_t size() const { return defs_.size(); }
  bool empty() const { return defs_.empty(); }
  VertexId root() const { return 0; }

  const LayerDef& def(VertexId v) const { return defs_[v]; }
  /// Canonical configuration hash of vertex v's leaf layer.
  const common::Hash128& signature(VertexId v) const { return sigs_[v]; }

  const std::vector<VertexId>& out_edges(VertexId v) const { return out_[v]; }
  uint32_t in_degree(VertexId v) const { return in_degree_[v]; }
  size_t edge_count() const;

  /// Parameter bytes of one vertex / of the whole model.
  size_t param_bytes(VertexId v, DType dtype = DType::kF32) const {
    return defs_[v].param_bytes(dtype);
  }
  size_t total_param_bytes(DType dtype = DType::kF32) const;

  /// Identity hash of the whole graph (structure + layer configs).
  const common::Hash128& graph_hash() const { return graph_hash_; }

  void serialize(common::Serializer& s) const;
  static ArchGraph deserialize(common::Deserializer& d);

  /// Construct directly from flat parts (used by deserialization and tests).
  static common::Result<ArchGraph> from_parts(
      std::vector<LayerDef> defs,
      std::vector<std::pair<VertexId, VertexId>> edges);

 private:
  void finalize();  // compute sigs, in-degrees, graph hash

  std::vector<LayerDef> defs_;
  std::vector<common::Hash128> sigs_;
  std::vector<std::vector<VertexId>> out_;
  std::vector<uint32_t> in_degree_;
  common::Hash128 graph_hash_;
};

}  // namespace evostore::model
