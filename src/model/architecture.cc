#include "model/architecture.h"

#include <algorithm>
#include <queue>

namespace evostore::model {

Architecture::NodeIndex Architecture::add_layer(LayerDef def) {
  nodes_.push_back(Node{std::move(def), {}});
  return static_cast<NodeIndex>(nodes_.size() - 1);
}

Architecture::NodeIndex Architecture::add_submodel(
    std::shared_ptr<const Architecture> sub, std::string label) {
  // Built field-by-field: GCC 12's -Wmaybe-uninitialized false-positives on
  // moving an aggregate holding a variant at -O2 and the build is -Werror.
  Node node;
  node.content = std::move(sub);
  node.label = std::move(label);
  nodes_.push_back(std::move(node));
  return static_cast<NodeIndex>(nodes_.size() - 1);
}

void Architecture::connect(NodeIndex from, NodeIndex to) {
  edges_.emplace_back(from, to);
}

common::Status Architecture::validate() const {
  if (nodes_.empty()) {
    return common::Status::InvalidArgument("architecture has no nodes");
  }
  std::vector<uint32_t> in_degree(nodes_.size(), 0);
  std::vector<uint32_t> out_degree(nodes_.size(), 0);
  for (auto [from, to] : edges_) {
    if (from >= nodes_.size() || to >= nodes_.size()) {
      return common::Status::InvalidArgument("edge endpoint out of range");
    }
    if (from == to) {
      return common::Status::InvalidArgument("self edge");
    }
    ++in_degree[to];
    ++out_degree[from];
  }
  size_t roots = 0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (in_degree[i] == 0) ++roots;
  }
  if (roots != 1) {
    return common::Status::InvalidArgument(
        "architecture must have exactly one root, found " +
        std::to_string(roots));
  }
  // Kahn's algorithm for acyclicity.
  std::vector<std::vector<NodeIndex>> out(nodes_.size());
  for (auto [from, to] : edges_) out[from].push_back(to);
  std::vector<uint32_t> indeg = in_degree;
  std::queue<NodeIndex> q;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (indeg[i] == 0) q.push(static_cast<NodeIndex>(i));
  }
  size_t visited = 0;
  while (!q.empty()) {
    NodeIndex u = q.front();
    q.pop();
    ++visited;
    for (NodeIndex v : out[u]) {
      if (--indeg[v] == 0) q.push(v);
    }
  }
  if (visited != nodes_.size()) {
    return common::Status::InvalidArgument("architecture graph has a cycle");
  }
  // Validate submodels: recursively valid and single-sink.
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (is_leaf(static_cast<NodeIndex>(i))) continue;
    const Architecture& sub = submodel(static_cast<NodeIndex>(i));
    EVO_RETURN_IF_ERROR(sub.validate());
    std::vector<uint32_t> sub_out(sub.node_count(), 0);
    for (auto [f, t] : sub.edges()) {
      (void)t;
      ++sub_out[f];
    }
    size_t sinks = std::count(sub_out.begin(), sub_out.end(), 0u);
    if (sinks != 1) {
      return common::Status::InvalidArgument(
          "submodel must have exactly one sink, found " +
          std::to_string(sinks));
    }
  }
  return common::Status::Ok();
}

size_t Architecture::leaf_count() const {
  size_t n = 0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (is_leaf(static_cast<NodeIndex>(i))) {
      ++n;
    } else {
      n += submodel(static_cast<NodeIndex>(i)).leaf_count();
    }
  }
  return n;
}

Architecture make_chain(std::vector<LayerDef> layers) {
  Architecture arch;
  Architecture::NodeIndex prev = 0;
  for (size_t i = 0; i < layers.size(); ++i) {
    auto idx = arch.add_layer(std::move(layers[i]));
    if (i > 0) arch.connect(prev, idx);
    prev = idx;
  }
  return arch;
}

}  // namespace evostore::model
