// Nested model architectures.
//
// Mirrors how high-level runtimes (Keras) express models: a directed graph
// whose nodes are either leaf layers or *submodels* (whole architectures
// embedded as a single node, possibly recursively). The repository never
// works on this nested form directly — it flattens it to a leaf-layer
// `ArchGraph` (arch_graph.h) exactly as §4.2 prescribes, because matching
// at submodel granularity would miss shareable leaf layers.
#pragma once

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"
#include "model/layer.h"

namespace evostore::model {

class Architecture {
 public:
  using NodeIndex = uint32_t;

  /// Add a leaf layer node. Returns its index.
  NodeIndex add_layer(LayerDef def);

  /// Embed `sub` as a single node. The submodel must have exactly one root
  /// (its input) and exactly one sink (its output); incoming edges attach to
  /// the root and outgoing edges to the sink on flattening.
  NodeIndex add_submodel(std::shared_ptr<const Architecture> sub,
                         std::string label = {});

  /// Directed edge `from -> to`.
  void connect(NodeIndex from, NodeIndex to);

  size_t node_count() const { return nodes_.size(); }
  bool is_leaf(NodeIndex i) const {
    return std::holds_alternative<LayerDef>(nodes_[i].content);
  }
  const LayerDef& layer(NodeIndex i) const {
    return std::get<LayerDef>(nodes_[i].content);
  }
  const Architecture& submodel(NodeIndex i) const {
    return *std::get<std::shared_ptr<const Architecture>>(nodes_[i].content);
  }
  const std::string& label(NodeIndex i) const { return nodes_[i].label; }
  const std::vector<std::pair<NodeIndex, NodeIndex>>& edges() const {
    return edges_;
  }

  /// Checks: non-empty, a single root (in-degree 0), acyclic, edges in
  /// range, and every submodel (recursively) valid with a single sink.
  common::Status validate() const;

  /// Number of leaf layers after full recursive expansion.
  size_t leaf_count() const;

 private:
  struct Node {
    std::variant<LayerDef, std::shared_ptr<const Architecture>> content;
    std::string label;
  };
  std::vector<Node> nodes_;
  std::vector<std::pair<NodeIndex, NodeIndex>> edges_;

  friend class ArchGraphBuilder;
};

/// Convenience: a sequential (chain) architecture from an ordered layer list.
Architecture make_chain(std::vector<LayerDef> layers);

}  // namespace evostore::model
