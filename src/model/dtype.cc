#include "model/dtype.h"

namespace evostore::model {

size_t dtype_size(DType t) {
  switch (t) {
    case DType::kF32: return 4;
    case DType::kF64: return 8;
    case DType::kF16: return 2;
    case DType::kBF16: return 2;
    case DType::kI8: return 1;
    case DType::kI32: return 4;
    case DType::kI64: return 8;
  }
  return 0;
}

std::string_view dtype_name(DType t) {
  switch (t) {
    case DType::kF32: return "f32";
    case DType::kF64: return "f64";
    case DType::kF16: return "f16";
    case DType::kBF16: return "bf16";
    case DType::kI8: return "i8";
    case DType::kI32: return "i32";
    case DType::kI64: return "i64";
  }
  return "unknown";
}

}  // namespace evostore::model
