// Element types for model parameter tensors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace evostore::model {

enum class DType : uint8_t {
  kF32 = 0,
  kF64 = 1,
  kF16 = 2,
  kBF16 = 3,
  kI8 = 4,
  kI32 = 5,
  kI64 = 6,
};

/// Size of one element in bytes.
size_t dtype_size(DType t);

/// Canonical lowercase name ("f32", ...).
std::string_view dtype_name(DType t);

}  // namespace evostore::model
