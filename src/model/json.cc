#include "model/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace evostore::model {

namespace {

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

// ---- A minimal recursive-descent JSON reader ------------------------------

class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  bool ok() const { return ok_; }
  std::string error() const { return error_; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    fail(std::string("expected '") + c + "'");
    return false;
  }

  bool peek(char c) {
    skip_ws();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool at_end() {
    skip_ws();
    return pos_ == text_.size();
  }

  std::string string() {
    skip_ws();
    std::string out;
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      fail("expected string");
      return out;
    }
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        char e = text_[pos_++];
        switch (e) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'u':
            if (pos_ + 4 <= text_.size()) {
              out += static_cast<char>(
                  std::strtol(std::string(text_.substr(pos_, 4)).c_str(),
                              nullptr, 16));
              pos_ += 4;
            } else {
              fail("bad \\u escape");
            }
            break;
          default: out += e;
        }
      } else {
        out += c;
      }
    }
    if (pos_ >= text_.size()) {
      fail("unterminated string");
    } else {
      ++pos_;  // closing quote
    }
    return out;
  }

  double number() {
    skip_ws();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected number");
      return 0;
    }
    return std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                       nullptr);
  }

  void fail(std::string msg) {
    if (ok_) {
      ok_ = false;
      error_ = msg + " at offset " + std::to_string(pos_);
    }
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
  bool ok_ = true;
  std::string error_;
};

common::Result<LayerKind> kind_from_name(const std::string& name) {
  for (int k = 0; k <= static_cast<int>(LayerKind::kOutput); ++k) {
    if (layer_kind_name(static_cast<LayerKind>(k)) == name) {
      return static_cast<LayerKind>(k);
    }
  }
  return common::Status::InvalidArgument("unknown layer kind '" + name + "'");
}

}  // namespace

std::string to_json(const ArchGraph& g) {
  std::string out = "{\"layers\":[";
  for (common::VertexId v = 0; v < g.size(); ++v) {
    if (v) out += ',';
    const LayerDef& def = g.def(v);
    out += "{\"kind\":";
    append_escaped(out, layer_kind_name(def.kind()));
    if (!def.name().empty()) {
      out += ",\"name\":";
      append_escaped(out, def.name());
    }
    out += ",\"params\":{";
    bool first = true;
    for (const auto& [k, val] : def.int_params()) {
      if (!first) out += ',';
      first = false;
      append_escaped(out, k);
      out += ':';
      out += std::to_string(val);
    }
    for (const auto& [k, val] : def.float_params()) {
      if (!first) out += ',';
      first = false;
      append_escaped(out, k);
      out += ':';
      append_double(out, val);
    }
    out += "}}";
  }
  out += "],\"edges\":[";
  bool first_edge = true;
  for (common::VertexId v = 0; v < g.size(); ++v) {
    for (common::VertexId to : g.out_edges(v)) {
      if (!first_edge) out += ',';
      first_edge = false;
      out += '[';
      out += std::to_string(v);
      out += ',';
      out += std::to_string(to);
      out += ']';
    }
  }
  out += "]}";
  return out;
}

common::Result<ArchGraph> from_json(std::string_view json) {
  JsonReader r(json);
  std::vector<LayerDef> defs;
  std::vector<std::pair<common::VertexId, common::VertexId>> edges;

  if (!r.consume('{')) return common::Status::InvalidArgument(r.error());
  bool saw_layers = false;
  while (r.ok()) {
    std::string key = r.string();
    if (!r.consume(':')) break;
    if (key == "layers") {
      saw_layers = true;
      if (!r.consume('[')) break;
      if (!r.peek(']')) {
        do {
          if (!r.consume('{')) break;
          LayerDef def;
          LayerKind kind = LayerKind::kInput;
          bool have_kind = false;
          std::string name;
          while (r.ok()) {
            std::string field = r.string();
            if (!r.consume(':')) break;
            if (field == "kind") {
              auto k = kind_from_name(r.string());
              if (!k.ok()) return k.status();
              kind = k.value();
              have_kind = true;
            } else if (field == "name") {
              name = r.string();
            } else if (field == "params") {
              if (!r.consume('{')) break;
              if (!r.peek('}')) {
                while (r.ok()) {
                  std::string pname = r.string();
                  if (!r.consume(':')) break;
                  double value = r.number();
                  double rounded = std::nearbyint(value);
                  if (rounded == value && std::abs(value) < 9e15) {
                    def.set_int(pname, static_cast<int64_t>(rounded));
                  } else {
                    def.set_float(pname, value);
                  }
                  if (!r.peek(',')) break;
                  (void)r.consume(',');
                }
              }
              if (!r.consume('}')) break;
            } else {
              r.fail("unknown layer field '" + field + "'");
            }
            if (!r.peek(',')) break;
            (void)r.consume(',');
          }
          if (!r.consume('}')) break;
          if (!have_kind) r.fail("layer missing kind");
          LayerDef rebuilt(kind);
          rebuilt.set_name(name);
          for (const auto& [k, v] : def.int_params()) rebuilt.set_int(k, v);
          for (const auto& [k, v] : def.float_params()) rebuilt.set_float(k, v);
          defs.push_back(std::move(rebuilt));
          if (!r.peek(',')) break;
          (void)r.consume(',');
        } while (r.ok());
      }
      if (!r.consume(']')) break;
    } else if (key == "edges") {
      if (!r.consume('[')) break;
      if (!r.peek(']')) {
        do {
          if (!r.consume('[')) break;
          auto from = static_cast<common::VertexId>(r.number());
          if (!r.consume(',')) break;
          auto to = static_cast<common::VertexId>(r.number());
          if (!r.consume(']')) break;
          edges.emplace_back(from, to);
          if (!r.peek(',')) break;
          (void)r.consume(',');
        } while (r.ok());
      }
      if (!r.consume(']')) break;
    } else {
      r.fail("unknown top-level key '" + key + "'");
    }
    if (!r.peek(',')) break;
    (void)r.consume(',');
  }
  if (r.ok()) (void)r.consume('}');
  if (r.ok() && !r.at_end()) r.fail("trailing characters");
  if (!r.ok()) return common::Status::InvalidArgument(r.error());
  if (!saw_layers) return common::Status::InvalidArgument("missing layers");
  return ArchGraph::from_parts(std::move(defs), std::move(edges));
}

}  // namespace evostore::model
