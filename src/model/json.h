// JSON export/import for architecture graphs.
//
// The paper's evaluation serializes DL model architectures "in JSON format"
// to populate the metadata stores (§5.5); this module provides that
// interchange format for EvoStore: a stable, human-readable rendering of a
// flattened leaf-layer graph, round-trippable back into an ArchGraph.
//
// The writer emits a minimal canonical JSON subset (sorted keys, no
// insignificant whitespace) and the reader accepts standard JSON with
// arbitrary whitespace.
#pragma once

#include <string>

#include "common/status.h"
#include "model/arch_graph.h"

namespace evostore::model {

/// Render `g` as a JSON document:
/// {"layers":[{"kind":"dense","name":"...","params":{"in":8,...}},...],
///  "edges":[[0,1],[1,2],...]}
std::string to_json(const ArchGraph& g);

/// Parse a document produced by to_json (or hand-written equivalents).
common::Result<ArchGraph> from_json(std::string_view json);

}  // namespace evostore::model
