#include "model/layer.h"

#include <algorithm>

namespace evostore::model {

std::string_view layer_kind_name(LayerKind k) {
  switch (k) {
    case LayerKind::kInput: return "input";
    case LayerKind::kDense: return "dense";
    case LayerKind::kConv2D: return "conv2d";
    case LayerKind::kAttention: return "attention";
    case LayerKind::kLayerNorm: return "layer_norm";
    case LayerKind::kBatchNorm: return "batch_norm";
    case LayerKind::kActivation: return "activation";
    case LayerKind::kDropout: return "dropout";
    case LayerKind::kAdd: return "add";
    case LayerKind::kConcat: return "concat";
    case LayerKind::kEmbedding: return "embedding";
    case LayerKind::kPooling: return "pooling";
    case LayerKind::kFlatten: return "flatten";
    case LayerKind::kOutput: return "output";
  }
  return "unknown";
}

namespace {
template <typename V>
auto find_key(std::vector<std::pair<std::string, V>>& params,
              std::string_view key) {
  return std::lower_bound(
      params.begin(), params.end(), key,
      [](const auto& p, std::string_view k) { return p.first < k; });
}
template <typename V>
auto find_key(const std::vector<std::pair<std::string, V>>& params,
              std::string_view key) {
  return std::lower_bound(
      params.begin(), params.end(), key,
      [](const auto& p, std::string_view k) { return p.first < k; });
}
}  // namespace

LayerDef& LayerDef::set_int(std::string_view key, int64_t v) {
  auto it = find_key(int_params_, key);
  if (it != int_params_.end() && it->first == key) {
    it->second = v;
  } else {
    int_params_.emplace(it, std::string(key), v);
  }
  return *this;
}

LayerDef& LayerDef::set_float(std::string_view key, double v) {
  auto it = find_key(float_params_, key);
  if (it != float_params_.end() && it->first == key) {
    it->second = v;
  } else {
    float_params_.emplace(it, std::string(key), v);
  }
  return *this;
}

int64_t LayerDef::get_int(std::string_view key, int64_t fallback) const {
  auto it = find_key(int_params_, key);
  return (it != int_params_.end() && it->first == key) ? it->second : fallback;
}

double LayerDef::get_float(std::string_view key, double fallback) const {
  auto it = find_key(float_params_, key);
  return (it != float_params_.end() && it->first == key) ? it->second : fallback;
}

bool LayerDef::has_int(std::string_view key) const {
  auto it = find_key(int_params_, key);
  return it != int_params_.end() && it->first == key;
}

common::Hash128 LayerDef::signature() const {
  common::Hasher128 h(0x1a7e5);
  h.u64(static_cast<uint64_t>(kind_));
  h.u64(int_params_.size());
  for (const auto& [k, v] : int_params_) h.str(k).i64(v);
  h.u64(float_params_.size());
  for (const auto& [k, v] : float_params_) h.str(k).f64(v);
  return h.finish();
}

std::vector<TensorSpec> LayerDef::param_specs(DType dtype) const {
  std::vector<TensorSpec> specs;
  auto push = [&](std::vector<int64_t> shape) {
    specs.push_back(TensorSpec{std::move(shape), dtype});
  };
  switch (kind_) {
    case LayerKind::kDense: {
      int64_t in = get_int("in"), out = get_int("out");
      push({out, in});
      if (get_int("bias", 1)) push({out});
      break;
    }
    case LayerKind::kConv2D: {
      int64_t in = get_int("in_ch"), out = get_int("out_ch"), k = get_int("k");
      push({out, in, k, k});
      if (get_int("bias", 1)) push({out});
      break;
    }
    case LayerKind::kAttention: {
      int64_t e = get_int("embed");
      push({3 * e, e});  // fused QKV projection
      push({3 * e});
      push({e, e});  // output projection
      push({e});
      break;
    }
    case LayerKind::kLayerNorm:
    case LayerKind::kBatchNorm: {
      int64_t dim = get_int("dim");
      push({dim});  // gamma
      push({dim});  // beta
      break;
    }
    case LayerKind::kEmbedding: {
      push({get_int("vocab"), get_int("dim")});
      break;
    }
    case LayerKind::kOutput: {
      int64_t in = get_int("in"), classes = get_int("classes");
      push({classes, in});
      push({classes});
      break;
    }
    case LayerKind::kInput:
    case LayerKind::kActivation:
    case LayerKind::kDropout:
    case LayerKind::kAdd:
    case LayerKind::kConcat:
    case LayerKind::kPooling:
    case LayerKind::kFlatten:
      break;  // parameterless
  }
  return specs;
}

size_t LayerDef::param_bytes(DType dtype) const {
  size_t total = 0;
  for (const auto& spec : param_specs(dtype)) total += spec.nbytes();
  return total;
}

std::string LayerDef::to_string() const {
  std::string out(layer_kind_name(kind_));
  out += "(";
  bool first = true;
  for (const auto& [k, v] : int_params_) {
    if (!first) out += ",";
    first = false;
    out += k + "=" + std::to_string(v);
  }
  for (const auto& [k, v] : float_params_) {
    if (!first) out += ",";
    first = false;
    out += k + "=" + std::to_string(v);
  }
  out += ")";
  if (!name_.empty()) out += "#" + name_;
  return out;
}

void LayerDef::serialize(common::Serializer& s) const {
  s.u8(static_cast<uint8_t>(kind_));
  s.str(name_);
  s.u64(int_params_.size());
  for (const auto& [k, v] : int_params_) {
    s.str(k);
    s.i64(v);
  }
  s.u64(float_params_.size());
  for (const auto& [k, v] : float_params_) {
    s.str(k);
    s.f64(v);
  }
}

LayerDef LayerDef::deserialize(common::Deserializer& d) {
  LayerDef def(static_cast<LayerKind>(d.u8()));
  def.name_ = d.str();
  uint64_t ni = d.u64();
  if (!d.ok()) return def;
  for (uint64_t i = 0; i < ni && d.ok(); ++i) {
    std::string k = d.str();
    int64_t v = d.i64();
    def.set_int(k, v);
  }
  uint64_t nf = d.u64();
  if (!d.ok()) return def;
  for (uint64_t i = 0; i < nf && d.ok(); ++i) {
    std::string k = d.str();
    double v = d.f64();
    def.set_float(k, v);
  }
  return def;
}

LayerDef make_input(int64_t dim) {
  LayerDef def(LayerKind::kInput);
  def.set_int("dim", dim);
  return def;
}

LayerDef make_dense(int64_t in, int64_t out, bool bias) {
  LayerDef def(LayerKind::kDense);
  def.set_int("in", in).set_int("out", out).set_int("bias", bias ? 1 : 0);
  return def;
}

LayerDef make_attention(int64_t embed, int64_t heads) {
  LayerDef def(LayerKind::kAttention);
  def.set_int("embed", embed).set_int("heads", heads);
  return def;
}

LayerDef make_layer_norm(int64_t dim) {
  LayerDef def(LayerKind::kLayerNorm);
  def.set_int("dim", dim);
  return def;
}

LayerDef make_batch_norm(int64_t dim) {
  LayerDef def(LayerKind::kBatchNorm);
  def.set_int("dim", dim);
  return def;
}

LayerDef make_activation(int64_t fn) {
  LayerDef def(LayerKind::kActivation);
  def.set_int("fn", fn);
  return def;
}

LayerDef make_dropout(double rate) {
  LayerDef def(LayerKind::kDropout);
  // Quantize so float equality in signatures is robust.
  def.set_int("rate_x1000", static_cast<int64_t>(rate * 1000.0 + 0.5));
  return def;
}

LayerDef make_add() { return LayerDef(LayerKind::kAdd); }
LayerDef make_concat() { return LayerDef(LayerKind::kConcat); }

LayerDef make_conv2d(int64_t in_ch, int64_t out_ch, int64_t k, bool bias) {
  LayerDef def(LayerKind::kConv2D);
  def.set_int("in_ch", in_ch)
      .set_int("out_ch", out_ch)
      .set_int("k", k)
      .set_int("bias", bias ? 1 : 0);
  return def;
}

LayerDef make_embedding(int64_t vocab, int64_t dim) {
  LayerDef def(LayerKind::kEmbedding);
  def.set_int("vocab", vocab).set_int("dim", dim);
  return def;
}

LayerDef make_output(int64_t in, int64_t classes) {
  LayerDef def(LayerKind::kOutput);
  def.set_int("in", in).set_int("classes", classes);
  return def;
}

}  // namespace evostore::model
