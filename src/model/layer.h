// Leaf layer definitions.
//
// A `LayerDef` is the configuration of one leaf layer: its kind plus a
// canonical (sorted) hyperparameter list. Matching for LCP queries is by
// `signature()` — a 128-bit canonical hash that deliberately EXCLUDES the
// layer's display name, because (paper §4.2) identical names may describe
// different configurations and vice versa.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/hash.h"
#include "common/serde.h"
#include "model/tensor.h"

namespace evostore::model {

enum class LayerKind : uint8_t {
  kInput = 0,
  kDense,
  kConv2D,
  kAttention,
  kLayerNorm,
  kBatchNorm,
  kActivation,
  kDropout,
  kAdd,
  kConcat,
  kEmbedding,
  kPooling,
  kFlatten,
  kOutput,
};

std::string_view layer_kind_name(LayerKind k);

class LayerDef {
 public:
  LayerDef() = default;
  explicit LayerDef(LayerKind kind) : kind_(kind) {}

  LayerKind kind() const { return kind_; }

  /// Display name; informational only, never part of the identity.
  const std::string& name() const { return name_; }
  LayerDef& set_name(std::string n) {
    name_ = std::move(n);
    return *this;
  }

  /// Hyperparameter accessors. Keys are kept sorted so the signature is
  /// canonical regardless of insertion order.
  LayerDef& set_int(std::string_view key, int64_t v);
  LayerDef& set_float(std::string_view key, double v);
  int64_t get_int(std::string_view key, int64_t fallback = 0) const;
  double get_float(std::string_view key, double fallback = 0.0) const;
  bool has_int(std::string_view key) const;

  const std::vector<std::pair<std::string, int64_t>>& int_params() const {
    return int_params_;
  }
  const std::vector<std::pair<std::string, double>>& float_params() const {
    return float_params_;
  }

  /// Canonical configuration hash (kind + sorted hyperparams, no name).
  common::Hash128 signature() const;

  /// Two defs match for LCP purposes iff their signatures match.
  bool same_config(const LayerDef& other) const {
    return signature() == other.signature();
  }

  /// Parameter tensors this layer owns (weights, biases, ...), derived from
  /// its hyperparameters. Parameterless layers return an empty list.
  std::vector<TensorSpec> param_specs(DType dtype = DType::kF32) const;

  /// Total parameter bytes.
  size_t param_bytes(DType dtype = DType::kF32) const;

  std::string to_string() const;

  void serialize(common::Serializer& s) const;
  static LayerDef deserialize(common::Deserializer& d);

 private:
  LayerKind kind_ = LayerKind::kInput;
  std::string name_;
  std::vector<std::pair<std::string, int64_t>> int_params_;
  std::vector<std::pair<std::string, double>> float_params_;
};

// ---- Factory helpers for the common layer kinds -------------------------

/// Input placeholder with `dim` features.
LayerDef make_input(int64_t dim);
/// Fully connected `in -> out`, optional bias.
LayerDef make_dense(int64_t in, int64_t out, bool bias = true);
/// Multi-head self-attention over `embed` dims with `heads` heads
/// (QKV projection + output projection, with biases).
LayerDef make_attention(int64_t embed, int64_t heads);
/// Layer normalization over `dim` features (gamma + beta).
LayerDef make_layer_norm(int64_t dim);
/// Batch normalization over `dim` features (gamma, beta; running stats are
/// optimizer-adjacent state and not stored, per the paper's limitation).
LayerDef make_batch_norm(int64_t dim);
/// Elementwise activation. `fn` examples: 0=relu 1=gelu 2=tanh 3=sigmoid.
LayerDef make_activation(int64_t fn);
LayerDef make_dropout(double rate);
LayerDef make_add();
LayerDef make_concat();
/// 2D convolution `in_ch -> out_ch`, square kernel `k`.
LayerDef make_conv2d(int64_t in_ch, int64_t out_ch, int64_t k, bool bias = true);
LayerDef make_embedding(int64_t vocab, int64_t dim);
LayerDef make_output(int64_t in, int64_t classes);

}  // namespace evostore::model
