#include "model/model.h"

#include "common/rng.h"

namespace evostore::model {

Segment make_random_segment(const ArchGraph& graph, VertexId v, uint64_t seed,
                            DType dtype) {
  Segment seg;
  auto specs = graph.def(v).param_specs(dtype);
  seg.tensors.reserve(specs.size());
  uint64_t slot = 0;
  for (auto& spec : specs) {
    uint64_t tensor_seed =
        common::hash_combine(common::hash_combine(seed, v), slot++);
    seg.tensors.push_back(Tensor::random(std::move(spec), tensor_seed));
  }
  return seg;
}

Segment finetune_segment(const Segment& base, uint64_t seed,
                         double update_fraction) {
  Segment seg;
  seg.tensors.reserve(base.tensors.size());
  for (size_t slot = 0; slot < base.tensors.size(); ++slot) {
    uint64_t h = common::SplitMix64::at(seed, slot);
    // Map the slot's hash to [0,1) for an unbiased per-slot update decision.
    double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    if (u < update_fraction) {
      seg.tensors.push_back(Tensor::random(base.tensors[slot].spec(),
                                           common::hash_combine(seed, slot)));
    } else {
      seg.tensors.push_back(base.tensors[slot]);
    }
  }
  return seg;
}

Model Model::random(ModelId id, ArchGraph graph, uint64_t seed, DType dtype) {
  Model m(id, std::move(graph));
  for (VertexId v = 0; v < m.graph_.size(); ++v) {
    m.segments_[v] = make_random_segment(m.graph_, v, seed, dtype);
  }
  return m;
}

void Model::rerandomize_segment(VertexId v, uint64_t seed, DType dtype) {
  segments_[v] = make_random_segment(graph_, v, seed, dtype);
}

}  // namespace evostore::model
