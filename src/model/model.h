// In-memory DL models: a flattened architecture graph plus, per leaf-layer
// vertex, a *segment* — the consolidated set of parameter tensors the paper
// stores, transfers, and refcounts as a unit.
#pragma once

#include <cstdint>
#include <vector>

#include "common/serde.h"
#include "common/types.h"
#include "model/arch_graph.h"
#include "model/tensor.h"

namespace evostore::model {

using common::ModelId;

/// All parameter tensors of one leaf layer, consolidated. This is the unit
/// addressed by `SegmentKey` and moved by one bulk transfer.
struct Segment {
  std::vector<Tensor> tensors;

  size_t nbytes() const {
    size_t n = 0;
    for (const auto& t : tensors) n += t.nbytes();
    return n;
  }

  /// Cheap fingerprint of the segment's logical content.
  common::Hash128 identity() const {
    common::Hasher128 h(0x5e6);
    h.u64(tensors.size());
    for (const auto& t : tensors) {
      h.h128(t.spec().signature());
      h.h128(t.identity());
    }
    return h.finish();
  }

  bool content_equals(const Segment& other) const {
    if (tensors.size() != other.tensors.size()) return false;
    for (size_t i = 0; i < tensors.size(); ++i) {
      if (!tensors[i].content_equals(other.tensors[i])) return false;
    }
    return true;
  }

  void serialize(common::Serializer& s) const {
    s.u64(tensors.size());
    for (const auto& t : tensors) t.serialize(s);
  }
  static Segment deserialize(common::Deserializer& d) {
    Segment seg;
    uint64_t n = d.u64();
    if (!d.check_count(n)) return seg;
    seg.tensors.reserve(n);
    for (uint64_t i = 0; i < n && d.ok(); ++i) {
      seg.tensors.push_back(Tensor::deserialize(d));
    }
    return seg;
  }
};

/// A complete model: id + graph + one segment per vertex + quality metric.
class Model {
 public:
  Model() = default;
  Model(ModelId id, ArchGraph graph)
      : id_(id), graph_(std::move(graph)), segments_(graph_.size()) {}

  /// Model with every segment randomly initialized ("trained from scratch").
  /// Content is fully determined by (seed, vertex, tensor slot).
  static Model random(ModelId id, ArchGraph graph, uint64_t seed,
                      DType dtype = DType::kF32);

  ModelId id() const { return id_; }
  void set_id(ModelId id) { id_ = id; }
  const ArchGraph& graph() const { return graph_; }

  double quality() const { return quality_; }
  void set_quality(double q) { quality_ = q; }

  Segment& segment(VertexId v) { return segments_[v]; }
  const Segment& segment(VertexId v) const { return segments_[v]; }
  size_t vertex_count() const { return segments_.size(); }

  /// Sum of all segment payload bytes.
  size_t total_bytes() const {
    size_t n = 0;
    for (const auto& s : segments_) n += s.nbytes();
    return n;
  }

  /// Replace vertex v's segment with freshly randomized tensors of the same
  /// specs (what a training step does to a non-frozen layer).
  void rerandomize_segment(VertexId v, uint64_t seed,
                           DType dtype = DType::kF32);

 private:
  ModelId id_;
  ArchGraph graph_;
  std::vector<Segment> segments_;
  double quality_ = 0.0;
};

/// Build the random segment for vertex v of `graph` (deterministic in seed).
Segment make_random_segment(const ArchGraph& graph, VertexId v, uint64_t seed,
                            DType dtype = DType::kF32);

/// What fine-tuning does to a layer: re-seed roughly `update_fraction` of the
/// base segment's tensor slots (deterministic in seed), sharing the base's
/// buffers for the rest. Shared slots are O(1) copies whose identity matches
/// the base, so a delta codec stores them as zero physical bytes.
Segment finetune_segment(const Segment& base, uint64_t seed,
                         double update_fraction);

}  // namespace evostore::model
