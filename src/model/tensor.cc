#include "model/tensor.h"

namespace evostore::model {

common::Hash128 TensorSpec::signature() const {
  common::Hasher128 h(0x7e4507);
  h.u64(static_cast<uint64_t>(dtype));
  h.u64(shape.size());
  for (int64_t d : shape) h.i64(d);
  return h.finish();
}

std::string TensorSpec::to_string() const {
  std::string out(dtype_name(dtype));
  out += "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(shape[i]);
  }
  out += "]";
  return out;
}

void TensorSpec::serialize(common::Serializer& s) const {
  s.u8(static_cast<uint8_t>(dtype));
  s.u64(shape.size());
  for (int64_t d : shape) s.i64(d);
}

TensorSpec TensorSpec::deserialize(common::Deserializer& d) {
  TensorSpec spec;
  spec.dtype = static_cast<DType>(d.u8());
  uint64_t n = d.u64();
  if (!d.check_count(n)) return spec;
  spec.shape.resize(n);
  for (auto& dim : spec.shape) dim = d.i64();
  return spec;
}

Tensor Tensor::zeros(TensorSpec spec) {
  size_t n = spec.nbytes();
  return Tensor(std::move(spec), common::Buffer::zeros(n));
}

Tensor Tensor::random(TensorSpec spec, uint64_t seed) {
  size_t n = spec.nbytes();
  return Tensor(std::move(spec), common::Buffer::synthetic(n, seed));
}

void Tensor::serialize(common::Serializer& s) const {
  spec_.serialize(s);
  s.buffer(data_);
}

Tensor Tensor::deserialize(common::Deserializer& d) {
  TensorSpec spec = TensorSpec::deserialize(d);
  common::Buffer data = d.buffer();
  if (!d.ok() || data.size() != spec.nbytes()) return {};
  return Tensor(std::move(spec), std::move(data));
}

}  // namespace evostore::model
