// Tensors: typed, shaped parameter payloads.
//
// A Tensor pairs a `TensorSpec` (shape + dtype) with a `Buffer` holding its
// logical bytes. Random initialization produces synthetic buffers so that
// paper-scale models stay cheap to hold; training in the NAS simulator
// "updates" a tensor by re-seeding its content stream (same spec, new bytes).
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/hash.h"
#include "common/serde.h"
#include "model/dtype.h"

namespace evostore::model {

struct TensorSpec {
  std::vector<int64_t> shape;
  DType dtype = DType::kF32;

  int64_t elements() const {
    int64_t n = 1;
    for (int64_t d : shape) n *= d;
    return n;
  }
  size_t nbytes() const {
    return static_cast<size_t>(elements()) * dtype_size(dtype);
  }

  friend bool operator==(const TensorSpec&, const TensorSpec&) = default;

  /// Canonical content hash of the spec.
  common::Hash128 signature() const;

  /// "f32[128,64]"
  std::string to_string() const;

  void serialize(common::Serializer& s) const;
  static TensorSpec deserialize(common::Deserializer& d);
};

class Tensor {
 public:
  Tensor() = default;
  Tensor(TensorSpec spec, common::Buffer data)
      : spec_(std::move(spec)), data_(std::move(data)) {
    assert(data_.size() == spec_.nbytes());
  }

  /// Zero-initialized dense tensor (tests / small models).
  static Tensor zeros(TensorSpec spec);

  /// Pseudo-randomly initialized tensor backed by a synthetic buffer; the
  /// seed fully determines the content.
  static Tensor random(TensorSpec spec, uint64_t seed);

  const TensorSpec& spec() const { return spec_; }
  const common::Buffer& data() const { return data_; }
  size_t nbytes() const { return data_.size(); }

  /// Logical content fingerprint (cheap for synthetic tensors).
  common::Hash128 identity() const { return data_.identity(); }
  bool content_equals(const Tensor& other) const {
    return spec_ == other.spec_ && data_.content_equals(other.data_);
  }

  void serialize(common::Serializer& s) const;
  static Tensor deserialize(common::Deserializer& d);

 private:
  TensorSpec spec_;
  common::Buffer data_;
};

}  // namespace evostore::model
