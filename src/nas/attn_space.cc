#include "nas/attn_space.h"

#include <cassert>
#include <memory>

#include "model/architecture.h"

namespace evostore::nas {

AttnSearchSpace::AttnSearchSpace()
    : widths_{832, 1024, 1216, 1408, 1600, 1792} {}

uint16_t AttnSearchSpace::choices_at(size_t pos) const {
  switch (pos % 3) {
    case 0: return kTypes;
    case 1: return static_cast<uint16_t>(widths_.size());
    default: return kActivations;
  }
}

model::ArchGraph AttnSearchSpace::decode(const CandidateSeq& seq) const {
  assert(seq.size() == positions());
  using model::Architecture;
  Architecture arch;
  int64_t first_width = widths_[seq[1] % widths_.size()];
  auto input = arch.add_layer(model::make_input(kInputDim));
  auto cur = arch.add_layer(model::make_dense(kInputDim, first_width));
  arch.connect(input, cur);
  int64_t width = first_width;

  for (int cell = 0; cell < kCells; ++cell) {
    uint16_t type = seq[cell * 3] % kTypes;
    int64_t w = widths_[seq[cell * 3 + 1] % widths_.size()];
    auto act = static_cast<int64_t>(seq[cell * 3 + 2] % kActivations);
    switch (type) {
      case 0: {  // dense block: Dense -> LayerNorm -> Activation
        auto dense = arch.add_layer(model::make_dense(width, w));
        auto norm = arch.add_layer(model::make_layer_norm(w));
        auto a = arch.add_layer(model::make_activation(act));
        arch.connect(cur, dense);
        arch.connect(dense, norm);
        arch.connect(norm, a);
        cur = a;
        width = w;
        break;
      }
      case 1: {  // pre-norm self-attention with residual branch
        auto sub = std::make_shared<Architecture>();
        auto ln = sub->add_layer(model::make_layer_norm(width));
        auto attn = sub->add_layer(model::make_attention(width, 8));
        sub->connect(ln, attn);
        auto block = arch.add_submodel(std::move(sub), "attn");
        auto add = arch.add_layer(model::make_add());
        arch.connect(cur, block);
        arch.connect(block, add);
        arch.connect(cur, add);
        cur = add;
        break;
      }
      default: {  // residual MLP with activation choice
        auto sub = std::make_shared<Architecture>();
        auto up = sub->add_layer(model::make_dense(width, 2 * width));
        auto a = sub->add_layer(model::make_activation(act));
        auto down = sub->add_layer(model::make_dense(2 * width, width));
        sub->connect(up, a);
        sub->connect(a, down);
        auto block = arch.add_submodel(std::move(sub), "mlp");
        auto add = arch.add_layer(model::make_add());
        arch.connect(cur, block);
        arch.connect(block, add);
        arch.connect(cur, add);
        cur = add;
        break;
      }
    }
  }
  auto head = arch.add_layer(model::make_output(width, kClasses));
  arch.connect(cur, head);
  auto g = model::ArchGraph::flatten(arch);
  assert(g.ok());
  return std::move(g).value();
}

}  // namespace evostore::nas
