// The CANDLE-ATTN-like search space (paper §5.3): candidate architectures
// for the drug-response inference problem, searched with aged evolution.
//
// Structure: a feature-embedding layer from the ATTN input dimensionality,
// then `kCells` cells, each configured by three choices — block type
// (dense / pre-norm attention / residual MLP), hidden width, activation —
// then a classification head. The cardinality (54^10 ≈ 2.1e17) is in the
// same regime as the paper's 3.1e17-candidate ATTN space.
#pragma once

#include "nas/search_space.h"

namespace evostore::nas {

class AttnSearchSpace final : public SearchSpace {
 public:
  static constexpr int kCells = 10;
  static constexpr int kTypes = 3;
  static constexpr int kActivations = 3;
  /// ATTN input features.
  static constexpr int64_t kInputDim = 6212;
  static constexpr int64_t kClasses = 2;

  AttnSearchSpace();

  std::string name() const override { return "candle-attn"; }
  size_t positions() const override { return kCells * 3; }
  uint16_t choices_at(size_t pos) const override;
  model::ArchGraph decode(const CandidateSeq& seq) const override;

  const std::vector<int64_t>& widths() const { return widths_; }

 private:
  std::vector<int64_t> widths_;
};

}  // namespace evostore::nas
