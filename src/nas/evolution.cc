#include "nas/evolution.h"

#include <algorithm>
#include <cassert>

namespace evostore::nas {

AgedEvolution::AgedEvolution(const SearchSpace& space, EvolutionConfig config,
                             uint64_t seed)
    : space_(&space), config_(config), rng_(seed) {}

CandidateSeq AgedEvolution::next() {
  assert(!exhausted());
  ++issued_;
  // sample_size == 0 => pure random search. Otherwise, warm-up phase:
  // random sampling until the population fills (asynchronous workers mean
  // some of the first population_cap evaluations may still be in flight;
  // sampling falls back to random while the population is empty).
  if (config_.sample_size == 0 || issued_ <= config_.population_cap ||
      population_.empty()) {
    return space_->random(rng_);
  }
  // Tournament: best of `sample_size` random members, then mutate.
  const Member* best = nullptr;
  for (size_t i = 0; i < config_.sample_size; ++i) {
    const Member& m = population_[rng_.below(population_.size())];
    if (best == nullptr || m.accuracy > best->accuracy) best = &m;
  }
  return space_->mutate(best->seq, rng_);
}

std::vector<common::ModelId> AgedEvolution::report(Member member) {
  ++completed_;
  best_accuracy_ = std::max(best_accuracy_, member.accuracy);
  population_.push_back(std::move(member));
  std::vector<common::ModelId> retired;
  while (population_.size() > config_.population_cap) {
    if (population_.front().model.valid()) {
      retired.push_back(population_.front().model);
    }
    population_.pop_front();
  }
  return retired;
}

}  // namespace evostore::nas
