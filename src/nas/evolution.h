// Aged (regularized) evolution search strategy [Real et al. 2019], the
// controller plug-in the paper uses for both EvoStore-backed DeepHyper and
// the DH-NoTransfer baseline (§4.3, §5.2).
//
// The population is a FIFO of at most `population_cap` evaluated candidates.
// New candidates are random until the population warms up, then each is a
// single-choice mutation of the best of `sample_size` randomly drawn
// members. When a member ages out, it reports the dropped model for
// retirement from the repository.
#pragma once

#include <deque>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "nas/search_space.h"

namespace evostore::nas {

struct EvolutionConfig {
  size_t population_cap = 100;
  /// Tournament size. 0 selects pure random search (paper §2's baseline
  /// strategy [21]): every candidate is sampled uniformly, the population
  /// still tracks the top performers for retirement purposes.
  size_t sample_size = 10;
  size_t total_candidates = 1000;
};

class AgedEvolution {
 public:
  AgedEvolution(const SearchSpace& space, EvolutionConfig config,
                uint64_t seed);

  /// True once every candidate has been issued.
  bool exhausted() const { return issued_ >= config_.total_candidates; }
  size_t issued() const { return issued_; }
  size_t completed() const { return completed_; }

  /// Produce the next candidate sequence to evaluate.
  CandidateSeq next();

  struct Member {
    CandidateSeq seq;
    double accuracy = 0;
    common::ModelId model;      // invalid when no repository is used
    double experience = 1.0;    // effective epochs at evaluation time
  };

  /// Report a completed evaluation. Returns the models dropped from the
  /// population (to be retired from the repository).
  std::vector<common::ModelId> report(Member member);

  const std::deque<Member>& population() const { return population_; }
  double best_accuracy() const { return best_accuracy_; }

 private:
  const SearchSpace* space_;
  EvolutionConfig config_;
  common::Xoshiro256 rng_;
  std::deque<Member> population_;
  size_t issued_ = 0;
  size_t completed_ = 0;
  double best_accuracy_ = 0;
};

}  // namespace evostore::nas
