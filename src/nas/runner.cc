#include "nas/runner.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/log.h"

namespace evostore::nas {

namespace {

using common::ModelId;
using common::NodeId;

// Shared state of one NAS run (lives in run_nas's frame; workers borrow it).
struct RunState {
  const SearchSpace* space;
  core::ModelRepository* repo;
  NodeId controller_node;
  const NasConfig* config;
  AgedEvolution evo;
  TrainingModel training;
  common::Xoshiro256 jitter_rng;
  std::unordered_map<ModelId, double> experience;  // model -> effective epochs
  NasResult result;

  RunState(const SearchSpace& s, core::ModelRepository* r, NodeId ctrl,
           const NasConfig& cfg)
      : space(&s),
        repo(r),
        controller_node(ctrl),
        config(&cfg),
        evo(s, EvolutionConfig{cfg.population_cap, cfg.sample_size,
                               cfg.total_candidates},
            cfg.seed),
        training(s, cfg.seed ^ 0x7a317ULL, cfg.training),
        jitter_rng(cfg.seed ^ 0x1177) {}
};

sim::CoTask<void> worker_loop(sim::Simulation* sim, net::Fabric* fabric,
                              RunState* st, int worker_index, NodeId node) {
  while (!st->evo.exhausted()) {
    CandidateSeq seq = st->evo.next();
    model::ArchGraph graph = st->space->decode(seq);

    TaskTrace trace;
    trace.worker = worker_index;
    trace.start = sim->now();

    // Controller dispatch.
    co_await fabric->signal(st->controller_node, node);
    co_await sim->delay(st->config->controller_seconds);

    double effective = 1.0;
    double frozen_fraction = 0.0;
    std::optional<core::TransferContext> tc;
    bool transfer = st->repo != nullptr && st->config->use_transfer;
    if (transfer) {
      auto prep = co_await st->repo->prepare_transfer(node, graph, true);
      if (prep.ok() && prep->has_value()) {
        tc = std::move(prep->value());
        // The deepest finetune_lcp_fraction of the LCP gets fine-tuned:
        // those vertices are stored self-owned (delta-encodable), and only
        // the remaining (inherited) prefix counts as frozen for epoch cost.
        size_t ft_count = static_cast<size_t>(
            std::floor(static_cast<double>(tc->matches.size()) *
                       st->config->finetune_lcp_fraction));
        ft_count = std::min(ft_count, tc->matches.size());
        for (size_t i = tc->matches.size() - ft_count; i < tc->matches.size();
             ++i) {
          tc->finetuned.push_back(tc->matches[i].first);
        }
        std::sort(tc->finetuned.begin(), tc->finetuned.end());
        size_t prefix_bytes = 0;
        for (size_t i = 0; i + ft_count < tc->matches.size(); ++i) {
          if (i < tc->prefix_segments.size()) {
            prefix_bytes += tc->prefix_segments[i].nbytes();
          }
        }
        size_t total = graph.total_param_bytes();
        frozen_fraction =
            total > 0 ? static_cast<double>(prefix_bytes) /
                            static_cast<double>(total)
                      : 0.0;
        auto it = st->experience.find(tc->ancestor);
        double ancestor_exp = it != st->experience.end() ? it->second : 1.0;
        effective =
            st->training.effective_epochs(ancestor_exp, frozen_fraction);
        trace.lcp_len = tc->lcp_len();
        trace.lcp_fraction = frozen_fraction;
      } else if (!prep.ok()) {
        EVO_WARN << "prepare_transfer failed: " << prep.status().to_string();
      }
    }

    // One epoch (or a zero-cost-proxy fraction of one) of superficial
    // training with the transferred prefix frozen.
    double train_seconds =
        st->config->train_fraction *
        st->training.epoch_seconds(graph, frozen_fraction, st->jitter_rng);
    co_await sim->delay(train_seconds);
    double acc = st->training.accuracy(seq, effective);
    trace.train_seconds = train_seconds;
    trace.accuracy = acc;

    ModelId id;
    if (st->repo != nullptr) {
      id = st->repo->allocate_id();
      uint64_t weight_seed = common::hash_combine(st->config->seed, id.value);
      model::Model m = model::Model::random(id, graph, weight_seed);
      if (tc.has_value()) {
        for (size_t i = 0; i < tc->matches.size(); ++i) {
          if (i >= tc->prefix_segments.size()) continue;
          common::VertexId v = tc->matches[i].first;
          if (std::binary_search(tc->finetuned.begin(), tc->finetuned.end(),
                                 v)) {
            // Fine-tuned: perturb a fraction of the ancestor's tensors; the
            // untouched ones share buffers and delta-encode to nothing.
            m.segment(v) = model::finetune_segment(
                tc->prefix_segments[i], common::hash_combine(weight_seed, v),
                st->config->finetune_update_fraction);
          } else {
            m.segment(v) = tc->prefix_segments[i];
          }
        }
      }
      m.set_quality(acc);
      auto st_store = co_await st->repo->store(
          node, m, tc.has_value() ? &tc.value() : nullptr);
      if (!st_store.ok()) {
        EVO_WARN << "store failed: " << st_store.to_string();
        id = ModelId::invalid();
      } else {
        st->experience[id] = effective;
      }
    }

    // Report to the controller; retire models dropped from the population.
    co_await fabric->signal(node, st->controller_node);
    co_await sim->delay(st->config->controller_seconds);
    auto retired = st->evo.report(AgedEvolution::Member{
        std::move(seq), acc, id, effective});
    for (ModelId dropped : retired) {
      if (!st->config->retire_dropped) continue;
      ++st->result.retired;
      // A candidate whose store failed (or a no-repo run) has no stored
      // model to retire.
      if (st->repo != nullptr && dropped.valid()) {
        auto rs = co_await st->repo->retire(node, dropped);
        if (!rs.ok()) {
          EVO_WARN << "retire failed: " << rs.to_string();
        }
      }
    }

    trace.finish = sim->now();
    trace.io_seconds = (trace.finish - trace.start) - train_seconds;
    if (tc.has_value()) ++st->result.transfers;
    st->result.accuracy_over_time.add(trace.finish, acc);
    st->result.traces.push_back(trace);
  }
}

}  // namespace

NasResult run_nas(sim::Simulation& sim, net::Fabric& fabric,
                  const SearchSpace& space, core::ModelRepository* repo,
                  const std::vector<common::NodeId>& worker_nodes,
                  common::NodeId controller_node, const NasConfig& config) {
  RunState st(space, repo, controller_node, config);
  st.result.approach =
      repo == nullptr || !config.use_transfer ? "DH-NoTransfer" : repo->name();

  std::vector<sim::Future<void>> workers;
  workers.reserve(worker_nodes.size());
  for (size_t w = 0; w < worker_nodes.size(); ++w) {
    // sim.run() below drains every worker before this scope returns.
    // evo-lint: suppress(EVO-CORO-004) st outlives workers: run() in scope
    workers.push_back(sim.spawn(worker_loop(&sim, &fabric, &st,
                                            static_cast<int>(w),
                                            worker_nodes[w])));
  }
  sim.run();
  for (auto& w : workers) {
    (void)w.get();  // re-raise any worker exception
  }

  NasResult& r = st.result;
  sim::Samples task_seconds;
  sim::Samples accs;
  sim::Samples lcp_fracs;
  double makespan = 0;
  for (const auto& t : r.traces) {
    task_seconds.add(t.finish - t.start);
    accs.add(t.accuracy);
    r.total_io_seconds += t.io_seconds;
    r.total_train_seconds += t.train_seconds;
    if (t.lcp_len > 0) lcp_fracs.add(t.lcp_fraction);
    makespan = std::max(makespan, t.finish);
  }
  r.makespan = makespan;
  for (const auto& member : st.evo.population()) {
    if (member.model.valid()) r.final_population.push_back(member.model);
  }
  r.best_accuracy = r.accuracy_over_time.max_value();
  r.mean_accuracy = accs.mean();
  r.mean_task_seconds = task_seconds.mean();
  r.stddev_task_seconds = task_seconds.stddev();
  r.mean_lcp_fraction = lcp_fracs.count() > 0 ? lcp_fracs.mean() : 0.0;
  return r;
}

}  // namespace evostore::nas
