// DeepHyper-like NAS runner on the simulated cluster (paper §4.3, Figure 3).
//
// A controller (aged evolution) hands candidate sequences to a pool of
// workers, each pinned to one simulated GPU. A worker evaluates a candidate
// by (1) querying the repository for the best LCP ancestor and reading the
// prefix tensors, (2) training one epoch with the transferred layers frozen,
// (3) writing the modified tensors back, (4) reporting accuracy; the
// controller retires candidates dropped from the population. Passing a null
// repository (or use_transfer=false) reproduces DH-NoTransfer.
#pragma once

#include <string>
#include <vector>

#include "core/repository.h"
#include "nas/evolution.h"
#include "nas/training_model.h"
#include "sim/stats.h"

namespace evostore::nas {

struct NasConfig {
  size_t total_candidates = 1000;
  size_t population_cap = 100;
  /// 0 => pure random search instead of aged evolution.
  size_t sample_size = 10;
  /// Fraction of a full epoch each candidate trains for. 1.0 reproduces the
  /// paper's superficial-training setup; small values model the zero-cost
  /// proxy direction from §6 (cheaper estimation => I/O share of the
  /// workflow rises; see bench/ablation_zero_cost_proxy).
  double train_fraction = 1.0;
  uint64_t seed = 42;
  /// false => never contact the repository (DH-NoTransfer).
  bool use_transfer = true;
  /// Retire models dropped from the population (false reproduces the
  /// "No Retire" storage accounting of paper Fig. 10).
  bool retire_dropped = true;
  /// Fraction of the transferred LCP (deepest matches first) each worker
  /// fine-tunes instead of keeping frozen. Fine-tuned vertices are stored
  /// self-owned — delta-encodable against the ancestor when the client codec
  /// supports it — rather than inherited by reference. 0 reproduces the
  /// classic freeze-the-whole-prefix behavior exactly.
  double finetune_lcp_fraction = 0.0;
  /// Fraction of each fine-tuned segment's tensors that training actually
  /// modifies (the rest keep the ancestor's weights and delta-encode to
  /// nothing). Only meaningful when finetune_lcp_fraction > 0.
  double finetune_update_fraction = 0.25;
  TrainingConfig training;
  /// Controller dispatch/report overhead per interaction.
  double controller_seconds = 2e-3;
};

struct TaskTrace {
  int worker = 0;
  double start = 0;
  double finish = 0;
  double accuracy = 0;
  size_t lcp_len = 0;
  double lcp_fraction = 0;  // parameter share of the transferred prefix
  double io_seconds = 0;    // repository interaction time
  double train_seconds = 0;
};

struct NasResult {
  std::string approach;
  sim::TimeSeries accuracy_over_time;  // (completion time, accuracy)
  std::vector<TaskTrace> traces;
  double makespan = 0;
  double best_accuracy = 0;
  double mean_accuracy = 0;
  double total_io_seconds = 0;
  double total_train_seconds = 0;
  double mean_task_seconds = 0;
  double stddev_task_seconds = 0;
  size_t transfers = 0;
  double mean_lcp_fraction = 0;
  size_t retired = 0;
  /// Models still alive in the evolution population when the search ended
  /// (the complement of `retired` among stored models). A fault ablation
  /// retires these after the run to check that refcounts drain to zero.
  std::vector<common::ModelId> final_population;

  /// First time a candidate at or above `threshold` accuracy completed
  /// (negative if never).
  double time_to(double threshold) const {
    return accuracy_over_time.first_time_reaching(threshold);
  }
};

/// Run a NAS search to completion on the given worker nodes. `repo` may be
/// null (DH-NoTransfer). Drives `sim` until all candidates finish.
NasResult run_nas(sim::Simulation& sim, net::Fabric& fabric,
                  const SearchSpace& space, core::ModelRepository* repo,
                  const std::vector<common::NodeId>& worker_nodes,
                  common::NodeId controller_node, const NasConfig& config);

}  // namespace evostore::nas
