#include "nas/search_space.h"

#include <cassert>
#include <cmath>

namespace evostore::nas {

CandidateSeq SearchSpace::random(common::Xoshiro256& rng) const {
  CandidateSeq seq(positions());
  for (size_t p = 0; p < seq.size(); ++p) {
    seq[p] = static_cast<uint16_t>(rng.below(choices_at(p)));
  }
  return seq;
}

CandidateSeq SearchSpace::mutate(const CandidateSeq& seq,
                                 common::Xoshiro256& rng) const {
  assert(seq.size() == positions());
  CandidateSeq out = seq;
  // Pick a position with more than one choice.
  for (int attempt = 0; attempt < 64; ++attempt) {
    size_t pos = rng.below(out.size());
    uint16_t domain = choices_at(pos);
    if (domain <= 1) continue;
    if (domain >= 5) {
      // Ordered hyperparameters (e.g., layer widths): perturb locally, the
      // usual NAS convention — neighboring choices behave similarly, so
      // evolution can hill-climb instead of resampling blindly.
      int step = rng.chance(0.5) ? 1 : -1;
      int next = static_cast<int>(out[pos]) + step;
      if (next < 0 || next >= domain) next = out[pos] - step;
      out[pos] = static_cast<uint16_t>(next);
    } else {
      // Small categorical domains: pick a different value uniformly.
      auto next = static_cast<uint16_t>(rng.below(domain - 1));
      if (next >= out[pos]) ++next;
      out[pos] = next;
    }
    return out;
  }
  return out;  // degenerate space: nothing mutable
}

double SearchSpace::cardinality_log10() const {
  double log10_total = 0;
  for (size_t p = 0; p < positions(); ++p) {
    log10_total += std::log10(static_cast<double>(choices_at(p)));
  }
  return log10_total;
}

}  // namespace evostore::nas
