// Network-architecture-search spaces (paper §2).
//
// A search space defines, per position, how many choices exist; a candidate
// is a choice vector ("candidate sequence"). Decoding produces the flattened
// architecture graph the repository operates on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "model/arch_graph.h"

namespace evostore::nas {

using CandidateSeq = std::vector<uint16_t>;

class SearchSpace {
 public:
  virtual ~SearchSpace() = default;

  virtual std::string name() const = 0;
  /// Number of decision positions in a candidate sequence.
  virtual size_t positions() const = 0;
  /// Number of choices at position `pos`.
  virtual uint16_t choices_at(size_t pos) const = 0;
  /// Decode a candidate sequence into a flattened architecture graph.
  virtual model::ArchGraph decode(const CandidateSeq& seq) const = 0;

  /// Uniformly random candidate.
  CandidateSeq random(common::Xoshiro256& rng) const;

  /// Aged-evolution mutation: change exactly one position to a different
  /// choice.
  CandidateSeq mutate(const CandidateSeq& seq, common::Xoshiro256& rng) const;

  /// log10 of the number of candidates in the space.
  double cardinality_log10() const;
};

}  // namespace evostore::nas
