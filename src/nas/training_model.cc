#include "nas/training_model.h"

#include <cassert>
#include <cmath>

#include "common/hash.h"

namespace evostore::nas {

TrainingModel::TrainingModel(const SearchSpace& space, uint64_t landscape_seed,
                             TrainingConfig config)
    : space_(&space), seed_(landscape_seed), config_(config) {
  size_t n = space.positions();
  optimum_.resize(n);
  weights_.resize(n);
  double total = 0;
  for (size_t p = 0; p < n; ++p) {
    uint64_t h = common::SplitMix64::at(seed_, p);
    optimum_[p] = static_cast<uint16_t>(h % space.choices_at(p));
    // Weights in [0.5, 1.5): some positions matter more than others; the
    // geometric decay concentrates importance on early positions.
    weights_[p] = (0.5 + static_cast<double>((h >> 32) & 0xffff) / 65536.0) *
                  std::pow(config_.weight_decay, static_cast<double>(p));
    total += weights_[p];
  }
  for (auto& w : weights_) w *= config_.quality_spread / total;
}

double TrainingModel::quality(const CandidateSeq& seq) const {
  assert(seq.size() == optimum_.size());
  double penalty = 0;
  for (size_t p = 0; p < seq.size(); ++p) {
    uint16_t domain = space_->choices_at(p);
    if (domain <= 1) continue;
    // Ordered distance: neighboring choices have similar effect, which makes
    // the landscape smooth under single-choice mutations.
    double d = std::abs(static_cast<double>(seq[p]) -
                        static_cast<double>(optimum_[p])) /
               static_cast<double>(domain - 1);
    penalty += weights_[p] * d;
  }
  common::Hasher128 h(seed_ ^ 0xacc);
  for (uint16_t c : seq) h.u64(c);
  double noise =
      (static_cast<double>(h.finish().lo >> 11) * 0x1.0p-53 - 0.5) * 2.0;
  double q = config_.quality_best - penalty + config_.quality_noise * noise;
  return std::clamp(q, 0.05, 0.999);
}

double TrainingModel::accuracy(const CandidateSeq& seq,
                               double effective_epochs) const {
  assert(effective_epochs >= 1.0);
  double shortfall = config_.scratch_penalty *
                     std::exp(-(effective_epochs - 1.0) / config_.experience_tau);
  return quality(seq) * (1.0 - shortfall);
}

double TrainingModel::effective_epochs(double ancestor_experience,
                                       double lcp_param_fraction) const {
  assert(lcp_param_fraction >= 0.0 && lcp_param_fraction <= 1.0);
  double inherited = config_.inherit_fraction * lcp_param_fraction *
                     std::max(0.0, ancestor_experience);
  return std::min(config_.max_experience, 1.0 + inherited);
}

double TrainingModel::epoch_seconds(const model::ArchGraph& graph,
                                    double frozen_param_fraction,
                                    common::Xoshiro256& jitter_rng) const {
  double gb = static_cast<double>(graph.total_param_bytes()) / 1e9;
  double compute_scale =
      1.0 - config_.backward_fraction * frozen_param_fraction;
  double base = config_.epoch_fixed_seconds +
                config_.epoch_seconds_per_gb * gb * compute_scale;
  double jitter = 1.0 + config_.duration_jitter * jitter_rng.normal();
  return base * std::max(0.2, jitter);
}

}  // namespace evostore::nas
