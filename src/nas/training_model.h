// Analytic training model: the GPU substitute (see DESIGN.md §2).
//
// Two ingredients drive every end-to-end result in the paper:
//
//  1. *Accuracy*: a candidate has an intrinsic quality q(seq) drawn from a
//     smooth, seeded fitness landscape (mutating one choice moves quality a
//     little — the property aged evolution exploits). One epoch of
//     superficial training from scratch reveals q minus a shortfall; the
//     shortfall decays with *effective epochs*, which transfer learning
//     inherits through the frozen prefix proportionally to the prefix's
//     parameter share and the ancestor's own accumulated experience
//     (paper §2: "benefit from the experience of the entire lineage").
//
//  2. *Duration*: one epoch costs a fixed pipeline term plus a per-parameter
//     term; freezing the transferred prefix skips its backward pass
//     (paper §1/§2), scaling the per-parameter term down by
//     backward_fraction × frozen parameter share.
//
// Everything is deterministic in (landscape seed, candidate, jitter stream).
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "model/arch_graph.h"
#include "nas/search_space.h"

namespace evostore::nas {

struct TrainingConfig {
  // ---- accuracy model ----
  // Calibrated once against the paper's reported ranges (see EXPERIMENTS.md):
  // DH-NoTransfer plateaus near 0.94 = quality_best * (1 - scratch_penalty);
  // transfer recovers most of the shortfall, topping out above 0.96; random
  // candidates land near 0.66 accuracy so the 0.80 threshold is reached by
  // evolutionary progress, not by sampling luck.
  double quality_best = 0.99;    // quality of the hidden optimum
  double quality_spread = 1.0;   // max total penalty across positions
  /// Geometric decay of per-position weights (1.0 = uniform). Values < 1
  /// concentrate importance on early positions (early layers matter more),
  /// widening the population's quality spread — the lever that controls how
  /// fast best-of-sample selection climbs under asynchronous lag.
  double weight_decay = 0.85;
  double quality_noise = 0.004;  // per-candidate idiosyncratic noise
  double scratch_penalty = 0.06;   // 1-epoch shortfall factor from scratch
  double experience_tau = 1.0;     // shortfall decay with effective epochs
  double inherit_fraction = 1.0;   // of (lcp share x ancestor experience)
  double max_experience = 12.0;

  // ---- duration model ----
  double epoch_fixed_seconds = 5.0;
  double epoch_seconds_per_gb = 300.0;
  double backward_fraction = 0.68;
  double duration_jitter = 0.06;  // relative stddev of task-time noise
};

class TrainingModel {
 public:
  TrainingModel(const SearchSpace& space, uint64_t landscape_seed,
                TrainingConfig config = {});

  const TrainingConfig& config() const { return config_; }

  /// Intrinsic architecture quality in (0, quality_best].
  double quality(const CandidateSeq& seq) const;

  /// Training accuracy after `effective_epochs` of (inherited + actual)
  /// training. effective_epochs >= 1 (one superficial epoch always runs).
  double accuracy(const CandidateSeq& seq, double effective_epochs) const;

  /// Effective epochs of a candidate trained for one epoch after inheriting
  /// a frozen prefix covering `lcp_param_fraction` of its parameters from an
  /// ancestor with `ancestor_experience` effective epochs.
  double effective_epochs(double ancestor_experience,
                          double lcp_param_fraction) const;

  /// Wall-clock seconds of one training epoch. `frozen_param_fraction` of
  /// the parameters skip the backward pass. `jitter_rng` supplies the
  /// task-duration noise (pass a dedicated seeded stream for determinism).
  double epoch_seconds(const model::ArchGraph& graph,
                       double frozen_param_fraction,
                       common::Xoshiro256& jitter_rng) const;

 private:
  const SearchSpace* space_;
  uint64_t seed_;
  TrainingConfig config_;
  std::vector<uint16_t> optimum_;   // hidden optimal choice per position
  std::vector<double> weights_;     // per-position penalty weight (sums to
                                    // quality_spread at max distance)
};

}  // namespace evostore::nas
