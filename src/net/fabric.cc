#include "net/fabric.h"

namespace evostore::net {

NodeId Fabric::add_node(double bw_in, double bw_out, std::string name) {
  Node node;
  node.name = name.empty() ? "node" + std::to_string(nodes_.size()) : name;
  node.in = flows_.add_port(bw_in, node.name + ".in");
  node.out = flows_.add_port(bw_out, node.name + ".out");
  nodes_.push_back(node);
  return static_cast<NodeId>(nodes_.size() - 1);
}

sim::CoTask<void> Fabric::move_bytes(NodeId from, NodeId to, double bytes) {
  if (from == to) {
    // Shared memory: latency only; NICs are not involved.
    co_await sim_->delay(config_.local_latency);
    co_return;
  }
  double start = sim_->now();
  co_await sim_->delay(config_.latency);
  if (bytes > 0) {
    std::vector<sim::PortId> path;
    path.push_back(nodes_[from].out);
    path.push_back(nodes_[to].in);
    co_await flows_.transfer(std::move(path), bytes);
  }
  if (hist_transfer_bytes_ != nullptr) {
    hist_transfer_bytes_->add(bytes);
    hist_transfer_seconds_->add(sim_->now() - start);
  }
}

sim::CoTask<void> Fabric::signal(NodeId from, NodeId to) {
  co_await sim_->delay(from == to ? config_.local_latency : config_.latency);
}

}  // namespace evostore::net
