// Simulated cluster fabric.
//
// Nodes have full-duplex NICs (independent ingress/egress capacities) joined
// by a non-blocking core (Slingshot-class fat tree: the core is modelled as
// contention-free; endpoints are the bottleneck, which matches the paper's
// deployment where providers and the PFS are the hot spots). A byte transfer
// pays a fixed one-way latency plus fair-share bandwidth through the source
// egress and destination ingress ports. Intra-node transfers are shared
// memory: latency only.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "sim/flow.h"
#include "sim/simulation.h"

namespace evostore::net {

using common::NodeId;

struct FabricConfig {
  /// One-way message latency between distinct nodes, seconds.
  double latency = 1.5e-6;
  /// Latency for intra-node (shared-memory) messages, seconds.
  double local_latency = 2.0e-7;
};

class Fabric {
 public:
  Fabric(sim::Simulation& sim, FabricConfig config = {})
      : sim_(&sim), flows_(sim), config_(config) {}

  sim::Simulation& simulation() { return *sim_; }
  const FabricConfig& config() const { return config_; }

  /// Add a node with the given NIC capacities (bytes/second each direction).
  NodeId add_node(double bw_in, double bw_out, std::string name = {});

  size_t node_count() const { return nodes_.size(); }
  const std::string& node_name(NodeId n) const { return nodes_[n].name; }

  /// Attach a metrics registry: inter-node transfers record size and
  /// sim-time duration histograms. nullptr detaches.
  void set_metrics(obs::MetricsRegistry* metrics) {
    metrics_ = metrics;
    if (metrics != nullptr) {
      hist_transfer_bytes_ = metrics->histogram("fabric.transfer_bytes");
      hist_transfer_seconds_ = metrics->histogram("fabric.transfer_seconds");
    } else {
      hist_transfer_bytes_ = nullptr;
      hist_transfer_seconds_ = nullptr;
    }
  }

  /// Move `bytes` from `from` to `to`: one-way latency + NIC bandwidth.
  sim::CoTask<void> move_bytes(NodeId from, NodeId to, double bytes);

  /// Latency-only signal (e.g., a zero-payload ack).
  sim::CoTask<void> signal(NodeId from, NodeId to);

  /// Cumulative bytes through a node's NIC.
  double bytes_in(NodeId n) const { return flows_.bytes_carried(nodes_[n].in); }
  double bytes_out(NodeId n) const { return flows_.bytes_carried(nodes_[n].out); }

  /// Direct access for co-modelled resources (e.g., charging an extra hop).
  sim::FlowScheduler& flows() { return flows_; }
  sim::PortId ingress_port(NodeId n) const { return nodes_[n].in; }
  sim::PortId egress_port(NodeId n) const { return nodes_[n].out; }

 private:
  struct Node {
    sim::PortId in;
    sim::PortId out;
    std::string name;
  };
  sim::Simulation* sim_;
  sim::FlowScheduler flows_;
  FabricConfig config_;
  std::vector<Node> nodes_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Histogram* hist_transfer_bytes_ = nullptr;
  obs::Histogram* hist_transfer_seconds_ = nullptr;
};

}  // namespace evostore::net
