#include "net/fault.h"

#include "common/log.h"

namespace evostore::net {

void FaultInjector::schedule_crash(common::NodeId node, double at,
                                   double downtime) {
  // A negative downtime would schedule the restart BEFORE the crash,
  // leaving the down-counter permanently positive (the node never comes
  // back); clamp to an instant restart instead.
  if (downtime < 0) downtime = 0;
  sim_->schedule_callback(at, [this, node] { crash_now(node); });
  sim_->schedule_callback(at + downtime, [this, node] { restart_now(node); });
}

void FaultInjector::schedule_mtbf(common::NodeId node, double start,
                                  double horizon, double mtbf, double mttr) {
  // Degenerate inputs draw nothing. exponential(0) == 0, so a non-positive
  // MTBF would pin t at `start` and spin this loop forever; an empty window
  // [start, horizon) has no room for a crash in the first place.
  if (mtbf <= 0) {
    EVO_WARN << "schedule_mtbf: non-positive mtbf " << mtbf
             << " for node " << node << "; no crashes scheduled";
    return;
  }
  if (horizon <= start) return;
  if (mttr < 0) mttr = 0;
  // Draw the full schedule up front: crash times depend only on the seed,
  // never on traffic, so the same seed reproduces the same windows.
  double t = start + rng_.exponential(mtbf);
  while (t < horizon) {
    schedule_crash(node, t, mttr);
    t += mttr + rng_.exponential(mtbf);
  }
}

void FaultInjector::on_restart(common::NodeId node, std::function<void()> fn) {
  restart_hooks_[node].push_back(std::move(fn));
}

bool FaultInjector::should_drop(common::NodeId from, common::NodeId to) {
  if (config_.drop_probability <= 0 || from == to) return false;
  if (!rng_.chance(config_.drop_probability)) return false;
  ++stats_.dropped_messages;
  return true;
}

double FaultInjector::latency_spike(common::NodeId from, common::NodeId to) {
  if (config_.spike_probability <= 0 || from == to) return 0;
  if (!rng_.chance(config_.spike_probability)) return 0;
  ++stats_.latency_spikes;
  return config_.spike_seconds;
}

void FaultInjector::crash_now(common::NodeId node) {
  ++stats_.crashes;
  ++down_[node];
}

void FaultInjector::restart_now(common::NodeId node) {
  ++stats_.restarts;
  auto it = down_.find(node);
  if (it != down_.end() && it->second > 0) --it->second;
  if (!node_up(node)) return;  // another overlapping window still open
  auto hooks = restart_hooks_.find(node);
  if (hooks == restart_hooks_.end()) return;
  for (auto& fn : hooks->second) fn();
}

}  // namespace evostore::net
