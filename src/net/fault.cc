#include "net/fault.h"

#include <algorithm>

#include "common/hash.h"
#include "common/log.h"

namespace evostore::net {

void FaultInjector::schedule_crash(common::NodeId node, double at,
                                   double downtime) {
  // A negative downtime would schedule the restart BEFORE the crash,
  // leaving the down-counter permanently positive (the node never comes
  // back); clamp to an instant restart instead.
  if (downtime < 0) downtime = 0;
  sim_->schedule_callback(at, [this, node] { crash_now(node); });
  sim_->schedule_callback(at + downtime, [this, node] { restart_now(node); });
}

void FaultInjector::schedule_mtbf(common::NodeId node, double start,
                                  double horizon, double mtbf, double mttr) {
  // Degenerate inputs draw nothing. exponential(0) == 0, so a non-positive
  // MTBF would pin t at `start` and spin this loop forever; an empty window
  // [start, horizon) has no room for a crash in the first place.
  if (mtbf <= 0) {
    EVO_WARN << "schedule_mtbf: non-positive mtbf " << mtbf
             << " for node " << node << "; no crashes scheduled";
    return;
  }
  if (horizon <= start) return;
  if (mttr < 0) mttr = 0;
  // Draw the full schedule up front: crash times depend only on the seed,
  // never on traffic, so the same seed reproduces the same windows.
  double t = start + rng_.exponential(mtbf);
  while (t < horizon) {
    schedule_crash(node, t, mttr);
    t += mttr + rng_.exponential(mtbf);
  }
}

void FaultInjector::on_restart(common::NodeId node, std::function<void()> fn) {
  restart_hooks_[node].push_back(std::move(fn));
}

void FaultInjector::schedule_partition(std::vector<common::NodeId> island,
                                       double start, double end) {
  if (end <= start || island.empty()) return;
  std::sort(island.begin(), island.end());
  // Each partition draws its reorder jitter from its OWN rng, seeded from
  // the config seed and the window parameters: adding a partition never
  // perturbs the drop/spike streams, and reruns reproduce the same smear.
  uint64_t seed = common::hash_combine(
      common::hash_combine(config_.seed, island.front()),
      static_cast<uint64_t>(start * 1e6));
  // Flight-recorder bookends. Scheduled unconditionally (the callbacks are
  // no-ops when no recorder is attached): a record-only callback touches no
  // simulation or cluster state, so attaching events cannot perturb a run.
  std::string island_attr;
  for (common::NodeId n : island) {
    if (!island_attr.empty()) island_attr += ",";
    island_attr += std::to_string(n);
  }
  sim_->schedule_callback(start, [this, island_attr, end] {
    if (events_ == nullptr) return;
    events_->record(sim_->now(), "fault.partition_open", 0,
                    {{"island", island_attr},
                     {"until", obs::EventLog::f64(end)}});
  });
  sim_->schedule_callback(end, [this, island_attr] {
    if (events_ == nullptr) return;
    events_->record(sim_->now(), "fault.partition_heal", 0,
                    {{"island", island_attr}});
  });
  partitions_.emplace_back(std::move(island), start, end, seed);
}

double FaultInjector::partition_hold(common::NodeId from, common::NodeId to) {
  if (partitions_.empty() || from == to) return 0;
  double now = sim_->now();
  for (Partition& p : partitions_) {
    if (now < p.start || now >= p.end) continue;
    bool from_in = std::binary_search(p.island.begin(), p.island.end(), from);
    bool to_in = std::binary_search(p.island.begin(), p.island.end(), to);
    if (from_in == to_in) continue;
    ++stats_.partitioned_messages;
    // Held until the heal, then delivered at a seeded offset inside the
    // reorder spread — so two messages held in send order A, B can land as
    // B, A after the heal.
    return (p.end - now) + p.jitter_rng.uniform() *
                               std::max(config_.partition_reorder_spread, 0.0);
  }
  return 0;
}

bool FaultInjector::should_drop(common::NodeId from, common::NodeId to) {
  if (config_.drop_probability <= 0 || from == to) return false;
  if (!rng_.chance(config_.drop_probability)) return false;
  ++stats_.dropped_messages;
  return true;
}

double FaultInjector::latency_spike(common::NodeId from, common::NodeId to) {
  if (config_.spike_probability <= 0 || from == to) return 0;
  if (!rng_.chance(config_.spike_probability)) return 0;
  ++stats_.latency_spikes;
  return config_.spike_seconds;
}

void FaultInjector::crash_now(common::NodeId node) {
  ++stats_.crashes;
  ++down_[node];
  if (events_ != nullptr) {
    events_->record(sim_->now(), "fault.crash", node,
                    {{"down_depth",
                      obs::EventLog::u64(
                          static_cast<uint64_t>(down_[node]))}});
  }
}

void FaultInjector::restart_now(common::NodeId node) {
  ++stats_.restarts;
  auto it = down_.find(node);
  if (it != down_.end() && it->second > 0) --it->second;
  bool up = node_up(node);
  if (events_ != nullptr) {
    events_->record(sim_->now(), "fault.restart", node,
                    {{"up", up ? "1" : "0"}});
  }
  if (!up) return;  // another overlapping window still open
  auto hooks = restart_hooks_.find(node);
  if (hooks == restart_hooks_.end()) return;
  for (auto& fn : hooks->second) fn();
}

}  // namespace evostore::net
