// Deterministic fault injection for the simulated cluster.
//
// A `FaultInjector` is the single authority the networking layer consults
// about injected failures: per-node crash/restart windows (a down node
// neither receives requests nor delivers responses), per-message drop
// probability on inter-node links, and latency spikes. Every decision is
// drawn from one seeded RNG or from schedules precomputed at configuration
// time, so an entire faulted run is exactly reproducible from
// `FaultConfig::seed` — the same determinism contract the rest of the DES
// provides for time.
//
// The crash model is fail-stop with recovery: a node goes down at a
// scheduled instant and comes back up after its downtime, at which point
// the registered restart hooks run (providers use them to rebuild state
// from their persistent backends, see core/provider.h). Handlers already
// executing when the node goes down run to completion — state they commit
// is treated as having reached the backend before the crash ("crash after
// commit") — but their responses are lost, which is exactly the ambiguity
// idempotency tokens exist to resolve.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "obs/events.h"
#include "sim/simulation.h"

namespace evostore::net {

struct FaultConfig {
  /// Seed for every probabilistic decision (drops, spikes, MTBF schedules).
  uint64_t seed = 1;
  /// Probability an inter-node message leg (request, response, or bulk) is
  /// silently lost. Intra-node messages never drop. 0 disables (and skips
  /// the RNG draw, keeping fault-free streams bit-identical).
  double drop_probability = 0;
  /// Probability a message leg suffers an extra `spike_seconds` latency
  /// (a slow switch queue / straggler NIC). 0 disables.
  double spike_probability = 0;
  double spike_seconds = 0;
  /// How long a sender waits on a silently lost message before concluding
  /// the peer is unreachable (transport-level keepalive). An RPC deadline,
  /// when set and sooner, preempts this with DeadlineExceeded.
  double loss_detect_seconds = 0.5;
  /// Network partitions (schedule_partition) do not drop crossing messages —
  /// they HOLD them until the partition heals, then deliver them smeared
  /// over this many seconds in a deterministic seeded order (the "reordered
  /// heal": held messages land interleaved, not in send order, which is
  /// exactly the ambiguity idempotency tokens must absorb).
  double partition_reorder_spread = 0.05;
};

struct FaultStats {
  uint64_t crashes = 0;
  uint64_t restarts = 0;
  uint64_t dropped_messages = 0;
  uint64_t latency_spikes = 0;
  /// Message legs refused because the destination (or source) was down.
  uint64_t rejected_down = 0;
  /// Message legs held by a network partition until its heal.
  uint64_t partitioned_messages = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(sim::Simulation& sim, FaultConfig config = {})
      : sim_(&sim), config_(config), rng_(config.seed) {}

  const FaultConfig& config() const { return config_; }
  const FaultStats& stats() const { return stats_; }
  sim::Simulation& simulation() { return *sim_; }

  /// Attach a flight recorder for fault lifecycle events (`fault.crash`,
  /// `fault.restart`, `fault.partition_open`, `fault.partition_heal`).
  /// Recording is pure memory append and draws nothing from the RNGs, so
  /// attaching it never perturbs a seeded schedule. nullptr detaches.
  void set_events(obs::EventLog* events) { events_ = events; }

  /// Schedule one crash window: `node` goes down at `at` (simulated time,
  /// >= now) and restarts `downtime` seconds later.
  void schedule_crash(common::NodeId node, double at, double downtime);

  /// Schedule repeated crash/restart cycles for `node`: uptimes are drawn
  /// exponential(mtbf), each downtime is exactly `mttr`, starting from
  /// `start` until `horizon`. The whole schedule is drawn from the seeded
  /// RNG immediately, so it is independent of traffic.
  void schedule_mtbf(common::NodeId node, double start, double horizon,
                     double mtbf, double mttr);

  /// Run `fn` every time `node` completes a restart (after its state is
  /// marked up). Providers hook their backend-recovery here.
  void on_restart(common::NodeId node, std::function<void()> fn);

  /// Crash `node` immediately (no scheduled restart). Pairs with
  /// restart_node for harness-driven windows whose end is not known at
  /// schedule time — e.g. "kill one forever, repair after the run".
  void crash_node(common::NodeId node) { crash_now(node); }
  /// Bring `node` back up immediately and run its restart hooks (once the
  /// down-counter reaches zero). No-op if the node is already up.
  void restart_node(common::NodeId node) {
    if (!node_up(node)) restart_now(node);
  }

  /// Schedule a symmetric network partition: from `start` to `end`, every
  /// message leg crossing between `island` and the rest of the cluster is
  /// HELD (not dropped) and delivered only after the heal, smeared over
  /// `partition_reorder_spread` seconds in a seeded deterministic order.
  /// Senders observe timeouts meanwhile and retry; the held originals land
  /// later as duplicates, which idempotency tokens must absorb. Intra-island
  /// and intra-mainland traffic is unaffected.
  void schedule_partition(std::vector<common::NodeId> island, double start,
                          double end);

  /// Extra delay a message leg from->to must wait out before delivery
  /// because a partition window is open across it; 0 when unaffected.
  /// Counts a partitioned message and draws its reorder jitter from the
  /// partition's own seeded RNG (so runs without partitions keep their
  /// exact RNG streams).
  double partition_hold(common::NodeId from, common::NodeId to);

  bool node_up(common::NodeId node) const {
    auto it = down_.find(node);
    return it == down_.end() || it->second == 0;
  }

  /// Decide whether the message leg from->to is lost. Draws from the RNG
  /// (order of calls is deterministic under the DES). Intra-node legs and
  /// p==0 never drop and never draw.
  bool should_drop(common::NodeId from, common::NodeId to);

  /// Extra latency (seconds) injected on this message leg; 0 most of the
  /// time. p==0 never draws.
  double latency_spike(common::NodeId from, common::NodeId to);

  void count_rejected() { ++stats_.rejected_down; }

 private:
  struct Partition {
    std::vector<common::NodeId> island;  // sorted for binary_search
    double start = 0;
    double end = 0;
    common::Xoshiro256 jitter_rng;

    Partition(std::vector<common::NodeId> nodes, double s, double e,
              uint64_t seed)
        : island(std::move(nodes)), start(s), end(e), jitter_rng(seed) {}
  };

  void crash_now(common::NodeId node);
  void restart_now(common::NodeId node);

  sim::Simulation* sim_;
  FaultConfig config_;
  common::Xoshiro256 rng_;
  FaultStats stats_;
  obs::EventLog* events_ = nullptr;
  // Down-counter per node: schedules could overlap; a node is up when 0.
  std::map<common::NodeId, int> down_;
  std::map<common::NodeId, std::vector<std::function<void()>>> restart_hooks_;
  std::vector<Partition> partitions_;
};

}  // namespace evostore::net
