#include "net/rpc.h"

namespace evostore::net {

void RpcSystem::register_handler(NodeId node, std::string method,
                                 RpcHandler handler) {
  handlers_[std::make_pair(node, std::move(method))] = std::move(handler);
}

void RpcSystem::set_service_pool(NodeId node, int slots,
                                 double service_overhead) {
  ServicePool pool;
  pool.slots = std::make_unique<sim::Semaphore>(simulation(), slots);
  pool.overhead = service_overhead;
  pools_[node] = std::move(pool);
}

sim::CoTask<Result<Bytes>> RpcSystem::call(NodeId from, NodeId to,
                                           const std::string& method,
                                           Bytes request) {
  auto it = handlers_.find(std::make_pair(to, method));
  if (it == handlers_.end()) {
    co_return common::Status::NotFound("no handler for '" + method + "' on " +
                                       fabric_->node_name(to));
  }
  ++stats_.calls;
  stats_.request_bytes += static_cast<double>(request.size());

  // Request travels to the server.
  co_await fabric_->move_bytes(from, to, static_cast<double>(request.size()));

  // Execute the handler, optionally gated by the node's service pool.
  auto pool_it = pools_.find(to);
  Bytes response;
  if (pool_it != pools_.end()) {
    auto& pool = pool_it->second;
    co_await pool.slots->acquire();
    if (pool.overhead > 0) co_await simulation().delay(pool.overhead);
    response = co_await it->second(std::move(request));
    pool.slots->release();
  } else {
    response = co_await it->second(std::move(request));
  }

  stats_.response_bytes += static_cast<double>(response.size());
  // Response travels back.
  co_await fabric_->move_bytes(to, from, static_cast<double>(response.size()));
  co_return response;
}

sim::CoTask<void> RpcSystem::bulk(NodeId from, NodeId to,
                                  const Buffer& buffer) {
  ++stats_.bulk_transfers;
  stats_.bulk_bytes += static_cast<double>(buffer.size());
  co_await fabric_->move_bytes(from, to, static_cast<double>(buffer.size()));
}

}  // namespace evostore::net
