#include "net/rpc.h"

#include <coroutine>
#include <optional>

namespace evostore::net {

void RpcSystem::register_handler(NodeId node, std::string method,
                                 RpcHandler handler) {
  // Wrap the legacy context-free form; the context is dropped.
  handlers_[std::make_pair(node, std::move(method))] =
      [h = std::move(handler)](Bytes request, HandlerContext) {
        return h(std::move(request));
      };
}

void RpcSystem::register_handler(NodeId node, std::string method,
                                 RpcHandlerCtx handler) {
  handlers_[std::make_pair(node, std::move(method))] = std::move(handler);
}

void RpcSystem::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics != nullptr) {
    hist_call_seconds_ = metrics->histogram("rpc.call_seconds");
    hist_request_bytes_ = metrics->histogram("rpc.request_bytes");
    hist_response_bytes_ = metrics->histogram("rpc.response_bytes");
    hist_bulk_bytes_ = metrics->histogram("rpc.bulk_bytes");
  } else {
    hist_call_seconds_ = nullptr;
    hist_request_bytes_ = nullptr;
    hist_response_bytes_ = nullptr;
    hist_bulk_bytes_ = nullptr;
  }
}

void RpcSystem::set_service_pool(NodeId node, int slots,
                                 double service_overhead) {
  ServicePool pool;
  pool.slots = std::make_unique<sim::Semaphore>(simulation(), slots);
  pool.overhead = service_overhead;
  pools_[node] = std::move(pool);
}

sim::CoTask<Result<Bytes>> RpcSystem::call(NodeId from, NodeId to,
                                           // NOLINTNEXTLINE(cppcoreguidelines-avoid-reference-coroutine-parameters)
                                           const std::string& method,
                                           Bytes request, CallOptions options) {
  if (handlers_.find(std::make_pair(to, method)) == handlers_.end()) {
    // Unimplemented, not NotFound: an unregistered handler must stay
    // distinguishable from a provider legitimately answering "not found".
    co_return common::Status::Unimplemented("no handler for '" + method +
                                            "' on " + fabric_->node_name(to));
  }
  double start = simulation().now();
  obs::Span span =
      obs::Tracer::maybe_begin(tracer_, "rpc:" + method, from, options.parent);
  if (span.active()) {
    // Frame the trace context ahead of the payload; unframe_request strips
    // it server-side. The extra wire bytes are honest tracing overhead and
    // exist only while a tracer is attached.
    obs::TraceContext ctx = span.context();
    common::Serializer s;
    s.u64(ctx.trace_id);
    s.u64(ctx.span_id);
    s.bytes(request);
    request = std::move(s).take();
  }
  double timeout = options.timeout != 0 ? options.timeout : default_timeout_;
  // Separate statements, NOT a conditional expression: co_await inside ?:
  // makes shipped GCC destroy the CoTask temporary (and the coroutine frame
  // that owns the response bytes) before the result is consumed.
  std::optional<Result<Bytes>> result;
  if (timeout > 0) {
    result.emplace(co_await race_deadline(
        call_inner(from, to, method, std::move(request)), timeout, method,
        to));
  } else {
    result.emplace(co_await call_inner(from, to, method, std::move(request)));
  }
  if (hist_call_seconds_ != nullptr) {
    hist_call_seconds_->add(simulation().now() - start);
  }
  if (span.active()) {
    span.tag("status", result->ok() ? "ok" : result->status().to_string());
  }
  co_return std::move(*result);
}

Bytes RpcSystem::unframe_request(Bytes request,
                                 obs::TraceContext* parent_out) {
  common::Deserializer d(request);
  obs::TraceContext ctx;
  ctx.trace_id = d.u64();
  ctx.span_id = d.u64();
  Bytes body = d.bytes();
  // The frame was written by `call` on this same RpcSystem, so a decode
  // failure here would be a bug, not hostile input; fall back to the raw
  // bytes rather than crash if it ever happens.
  if (!d.ok() || !d.at_end()) return request;
  *parent_out = ctx;
  return body;
}

sim::CoTask<Result<Bytes>> RpcSystem::call_inner(NodeId from, NodeId to,
                                                 std::string method,
                                                 Bytes request) {
  ++stats_.calls;
  stats_.request_bytes += static_cast<double>(request.size());
  if (hist_request_bytes_ != nullptr) {
    hist_request_bytes_->add(static_cast<double>(request.size()));
  }

  if (injector_ != nullptr) {
    // Destination down up front: the connection attempt is refused after a
    // NACK round trip (fail fast — a refusal is detectable, a loss is not).
    if (!injector_->node_up(to)) {
      injector_->count_rejected();
      ++stats_.unavailable;
      co_await fabric_->signal(from, to);
      co_await fabric_->signal(to, from);
      co_return common::Status::Unavailable(
          "node " + fabric_->node_name(to) + " is down ('" + method + "')");
    }
    if (injector_->should_drop(from, to)) {
      ++stats_.unavailable;
      co_await simulation().delay(injector_->config().loss_detect_seconds);
      co_return common::Status::Unavailable(
          "request for '" + method + "' to " + fabric_->node_name(to) +
          " lost");
    }
    double spike = injector_->latency_spike(from, to);
    if (spike > 0) co_await simulation().delay(spike);
    // Partition across this leg: the request is HELD until the heal (plus a
    // seeded reorder jitter), not dropped. The caller's deadline fires long
    // before; this abandoned frame still delivers the handler's effect after
    // the heal — the late-duplicate ambiguity idempotency tokens absorb.
    double hold = injector_->partition_hold(from, to);
    if (hold > 0) co_await simulation().delay(hold);
  }

  // Request travels to the server.
  co_await fabric_->move_bytes(from, to, static_cast<double>(request.size()));

  // Crash while the request was in flight: it is silently swallowed.
  if (injector_ != nullptr && !injector_->node_up(to)) {
    injector_->count_rejected();
    ++stats_.unavailable;
    co_await simulation().delay(injector_->config().loss_detect_seconds);
    co_return common::Status::Unavailable(
        "node " + fabric_->node_name(to) + " went down before serving '" +
        method + "'");
  }

  // Execute the handler, optionally gated by the node's service pool.
  // (Handler lookup is redone here: a restart hook may have re-registered.)
  auto it = handlers_.find(std::make_pair(to, method));
  if (it == handlers_.end()) {
    co_return common::Status::Unimplemented("no handler for '" + method +
                                            "' on " + fabric_->node_name(to));
  }
  obs::TraceContext client_ctx;
  if (tracer_ != nullptr) {
    request = unframe_request(std::move(request), &client_ctx);
  }
  // The serve span opens before any pool wait so queueing time is visible.
  obs::Span serve =
      obs::Tracer::maybe_begin(tracer_, "serve:" + method, to, client_ctx);
  HandlerContext hctx{serve.context()};
  auto pool_it = pools_.find(to);
  Bytes response;
  if (pool_it != pools_.end()) {
    auto& pool = pool_it->second;
    co_await pool.slots->acquire();
    if (pool.overhead > 0) co_await simulation().delay(pool.overhead);
    response = co_await it->second(std::move(request), hctx);
    pool.slots->release();
  } else {
    response = co_await it->second(std::move(request), hctx);
  }
  serve.end();

  if (injector_ != nullptr) {
    // Crash during handler execution: effects committed, response lost.
    if (!injector_->node_up(to)) {
      ++stats_.unavailable;
      co_await simulation().delay(injector_->config().loss_detect_seconds);
      co_return common::Status::Unavailable(
          "node " + fabric_->node_name(to) + " crashed answering '" + method +
          "'");
    }
    if (injector_->should_drop(to, from)) {
      ++stats_.unavailable;
      co_await simulation().delay(injector_->config().loss_detect_seconds);
      co_return common::Status::Unavailable(
          "response for '" + method + "' from " + fabric_->node_name(to) +
          " lost");
    }
    double spike = injector_->latency_spike(to, from);
    if (spike > 0) co_await simulation().delay(spike);
    // Partition opened while the handler ran: the response is held until
    // the heal (the request already committed — same ambiguity as a crash
    // after commit, resolved the same way).
    double hold = injector_->partition_hold(to, from);
    if (hold > 0) co_await simulation().delay(hold);
  }

  stats_.response_bytes += static_cast<double>(response.size());
  if (hist_response_bytes_ != nullptr) {
    hist_response_bytes_->add(static_cast<double>(response.size()));
  }
  // Response travels back.
  co_await fabric_->move_bytes(to, from, static_cast<double>(response.size()));
  co_return response;
}

namespace {

// Shared state of one deadline race. The inner task and the deadline
// callback both try to settle it; whichever is first wins and wakes the
// caller. The loser's outcome is discarded.
struct RaceState {
  bool settled = false;
  std::optional<Result<Bytes>> result;
  std::coroutine_handle<> waiter;
};

sim::CoTask<void> drive_inner(sim::Simulation* sim,
                              std::shared_ptr<RaceState> st,
                              sim::CoTask<Result<Bytes>> inner) {
  Result<Bytes> r = co_await std::move(inner);
  if (!st->settled) {
    st->settled = true;
    st->result.emplace(std::move(r));
    if (st->waiter) sim->schedule_handle(sim->now(), st->waiter);
  }
}

}  // namespace

sim::CoTask<Result<Bytes>> RpcSystem::race_deadline(
    sim::CoTask<Result<Bytes>> inner, double timeout, std::string method,
    NodeId to) {
  auto& sim = simulation();
  auto st = std::make_shared<RaceState>();
  sim.spawn(drive_inner(&sim, st, std::move(inner)));
  uint64_t token = sim.schedule_callback(
      sim.now() + timeout, [this, st, timeout, method, to] {
        if (st->settled) return;
        st->settled = true;
        ++stats_.deadline_exceeded;
        st->result.emplace(common::Status::DeadlineExceeded(
            "deadline (" + std::to_string(timeout) + "s) exceeded calling '" +
            method + "' on " + fabric_->node_name(to)));
        auto& s = simulation();
        if (st->waiter) s.schedule_handle(s.now(), st->waiter);
      });
  // The awaiter holds a plain pointer (the frame-local `st` keeps the state
  // alive for the whole co_await) and is a named local, not a temporary:
  // temporaries with owning captures inside co_await expressions have been
  // double-destroyed by shipped GCC coroutine codegen.
  struct Awaiter {
    RaceState* st;
    bool await_ready() const noexcept { return st->settled; }
    void await_suspend(std::coroutine_handle<> h) { st->waiter = h; }
    void await_resume() const noexcept {}
  };
  Awaiter settle{st.get()};
  co_await settle;
  sim.cancel(token);
  co_return std::move(*st->result);
}

sim::CoTask<common::Status> RpcSystem::bulk(NodeId from, NodeId to,
                                            // NOLINTNEXTLINE(cppcoreguidelines-avoid-reference-coroutine-parameters)
                                            const Buffer& buffer) {
  // Everything this frame needs from `buffer` is read before the first
  // suspension point; the reference must not be touched after a co_await
  // (EVO-CORO-003: the caller's frame may already be gone on resume).
  const double payload_bytes = static_cast<double>(buffer.size());
  ++stats_.bulk_transfers;
  stats_.bulk_bytes += payload_bytes;
  if (hist_bulk_bytes_ != nullptr) {
    hist_bulk_bytes_->add(payload_bytes);
  }
  if (injector_ != nullptr) {
    if (!injector_->node_up(to) || !injector_->node_up(from)) {
      injector_->count_rejected();
      ++stats_.unavailable;
      co_await fabric_->signal(from, to);
      co_await fabric_->signal(to, from);
      co_return common::Status::Unavailable(
          "bulk endpoint down (" + fabric_->node_name(from) + " -> " +
          fabric_->node_name(to) + ")");
    }
    if (injector_->should_drop(from, to)) {
      ++stats_.unavailable;
      co_await simulation().delay(injector_->config().loss_detect_seconds);
      co_return common::Status::Unavailable(
          "bulk transfer " + fabric_->node_name(from) + " -> " +
          fabric_->node_name(to) + " lost");
    }
    double spike = injector_->latency_spike(from, to);
    if (spike > 0) co_await simulation().delay(spike);
    double hold = injector_->partition_hold(from, to);
    if (hold > 0) co_await simulation().delay(hold);
  }
  co_await fabric_->move_bytes(from, to, payload_bytes);
  co_return common::Status::Ok();
}

}  // namespace evostore::net
