// RPC + bulk-transfer layer over the simulated fabric.
//
// Mirrors the Mochi/Thallium split the paper relies on:
//  - `call` is a classic request/response RPC: the (small) serialized request
//    travels to the target node, a registered handler coroutine runs there,
//    and the serialized response travels back.
//  - `bulk` is an RDMA-style transfer: payload bytes cross the NICs without
//    invoking any handler, so providers stay "mostly idle" during data
//    movement (the property §4.1 exploits for collective metadata queries).
//
// Handlers may optionally be gated by a per-node execution semaphore to model
// a bounded service pool (used by the Redis baseline, where the single
// server's CPU is the bottleneck).
//
// Fault semantics (when a FaultInjector is attached, see net/fault.h):
//  - a down destination refuses both RPCs and bulks with Unavailable after a
//    connection-refusal round trip;
//  - a dropped request or response leg surfaces as Unavailable after
//    `loss_detect_seconds` (or as DeadlineExceeded if a sooner deadline is
//    set on the call);
//  - a node that crashes while a handler runs still commits the handler's
//    effects ("crash after commit"), but the response is lost.
// Without an injector and without a deadline the code path is byte-for-byte
// the pre-fault one: no RNG draws, no extra events.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/buffer.h"
#include "common/serde.h"
#include "common/status.h"
#include "common/types.h"
#include "net/fabric.h"
#include "net/fault.h"
#include "sim/sync.h"

namespace evostore::net {

using common::Buffer;
using common::Bytes;
using common::Result;

/// A handler receives the request bytes and produces response bytes.
using RpcHandler = std::function<sim::CoTask<Bytes>(Bytes)>;

struct RpcStats {
  uint64_t calls = 0;
  uint64_t bulk_transfers = 0;
  double bulk_bytes = 0;
  double request_bytes = 0;
  double response_bytes = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t unavailable = 0;
};

/// Per-call knobs.
struct CallOptions {
  /// Deadline in simulated seconds. 0 uses the system default
  /// (`set_default_timeout`); negative disables the deadline for this call.
  double timeout = 0;
};

class RpcSystem {
 public:
  explicit RpcSystem(Fabric& fabric) : fabric_(&fabric) {}

  Fabric& fabric() { return *fabric_; }
  sim::Simulation& simulation() { return fabric_->simulation(); }

  /// Attach a fault injector consulted on every message leg. Must outlive
  /// the RpcSystem. nullptr detaches.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() { return injector_; }

  /// Deadline applied to calls whose CallOptions leave timeout == 0.
  /// 0 (the default) means no deadline.
  void set_default_timeout(double seconds) { default_timeout_ = seconds; }

  /// Register `handler` for (node, method). Replaces any previous handler.
  void register_handler(NodeId node, std::string method, RpcHandler handler);

  /// Gate all handler executions on `node` behind `slots` concurrent
  /// executors, each charging `service_overhead` seconds per call (models a
  /// bounded RPC thread pool / single-threaded server loop).
  void set_service_pool(NodeId node, int slots, double service_overhead);

  /// Issue an RPC. The returned bytes are the handler's response.
  /// Fails with Unimplemented if no handler is registered (distinct from a
  /// provider legitimately answering NotFound), Unavailable if the target is
  /// down or the message was lost, DeadlineExceeded if the deadline fires.
  sim::CoTask<Result<Bytes>> call(NodeId from, NodeId to,
                                  const std::string& method, Bytes request,
                                  CallOptions options = {});

  /// RDMA-style payload movement: `buffer.size()` bytes cross from `from`
  /// to `to` with no handler involvement. Content travels logically (the
  /// caller hands the Buffer to whatever registered it). Fails with
  /// Unavailable when the destination is down or the transfer is dropped.
  sim::CoTask<common::Status> bulk(NodeId from, NodeId to,
                                   const Buffer& buffer);

  const RpcStats& stats() const { return stats_; }

 private:
  struct ServicePool {
    std::unique_ptr<sim::Semaphore> slots;
    double overhead = 0;
  };

  // The call body without deadline handling (raced against the timer when a
  // deadline is set; run directly otherwise). Takes `method` BY VALUE: when
  // the deadline loses the race the abandoned frame keeps running after the
  // caller's arguments are gone.
  sim::CoTask<Result<Bytes>> call_inner(NodeId from, NodeId to,
                                        std::string method, Bytes request);
  // Race `inner` against a deadline `timeout` seconds from now.
  sim::CoTask<Result<Bytes>> race_deadline(sim::CoTask<Result<Bytes>> inner,
                                           double timeout, std::string method,
                                           NodeId to);

  Fabric* fabric_;
  FaultInjector* injector_ = nullptr;
  double default_timeout_ = 0;
  std::map<std::pair<NodeId, std::string>, RpcHandler> handlers_;
  std::map<NodeId, ServicePool> pools_;
  RpcStats stats_;
};

/// Convenience: serialize a request struct, call, deserialize the response.
/// Request/Response must provide `void serialize(common::Serializer&) const`
/// and `static Response deserialize(common::Deserializer&)`.
/// A malformed response is annotated with the method and target node so the
/// failure is attributable without a packet trace.
template <typename Response, typename Request>
sim::CoTask<Result<Response>> typed_call(RpcSystem& rpc, NodeId from, NodeId to,
                                         const std::string& method,
                                         const Request& request,
                                         CallOptions options = {}) {
  common::Serializer s;
  request.serialize(s);
  auto raw = co_await rpc.call(from, to, method, std::move(s).take(), options);
  if (!raw.ok()) co_return raw.status();
  common::Deserializer d(raw.value());
  Response resp = Response::deserialize(d);
  if (!d.ok()) {
    co_return common::Status(
        d.status().code(),
        "deserializing '" + method + "' response from " +
            rpc.fabric().node_name(to) + ": " + d.status().message());
  }
  co_return resp;
}

}  // namespace evostore::net
