// RPC + bulk-transfer layer over the simulated fabric.
//
// Mirrors the Mochi/Thallium split the paper relies on:
//  - `call` is a classic request/response RPC: the (small) serialized request
//    travels to the target node, a registered handler coroutine runs there,
//    and the serialized response travels back.
//  - `bulk` is an RDMA-style transfer: payload bytes cross the NICs without
//    invoking any handler, so providers stay "mostly idle" during data
//    movement (the property §4.1 exploits for collective metadata queries).
//
// Handlers may optionally be gated by a per-node execution semaphore to model
// a bounded service pool (used by the Redis baseline, where the single
// server's CPU is the bottleneck).
//
// Fault semantics (when a FaultInjector is attached, see net/fault.h):
//  - a down destination refuses both RPCs and bulks with Unavailable after a
//    connection-refusal round trip;
//  - a dropped request or response leg surfaces as Unavailable after
//    `loss_detect_seconds` (or as DeadlineExceeded if a sooner deadline is
//    set on the call);
//  - a node that crashes while a handler runs still commits the handler's
//    effects ("crash after commit"), but the response is lost.
// Without an injector and without a deadline the code path is byte-for-byte
// the pre-fault one: no RNG draws, no extra events.
//
// Observability (see obs/trace.h): when a tracer is attached, every call
// opens a client-side span and frames its TraceContext (two varint u64s +
// a length-prefixed body) ahead of the request payload; the server side
// strips the frame before the handler runs and opens a `serve:` span as the
// remote child. The framing — and therefore any change to wire sizes or
// timings — exists only while a tracer is attached; detached runs keep the
// pre-tracing byte stream exactly. Handlers registered with the
// context-aware signature receive the server span's context so they can
// parent their own spans (e.g. a provider's KV commit) under the RPC.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/buffer.h"
#include "common/serde.h"
#include "common/status.h"
#include "common/types.h"
#include "net/fabric.h"
#include "net/fault.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/sync.h"

namespace evostore::net {

using common::Buffer;
using common::Bytes;
using common::Result;

/// Server-side per-call context. `trace` is the serve-span context when a
/// tracer is attached (invalid otherwise); handlers parent their own spans
/// under it.
struct HandlerContext {
  obs::TraceContext trace{};
};

/// A handler receives the request bytes and produces response bytes.
using RpcHandler = std::function<sim::CoTask<Bytes>(Bytes)>;
/// Context-aware handler form. Overload resolution between the two
/// register_handler signatures is unambiguous: std::function's converting
/// constructor only accepts callables invocable with its exact argument
/// list, so a one-argument lambda matches RpcHandler and a two-argument
/// lambda matches RpcHandlerCtx.
using RpcHandlerCtx = std::function<sim::CoTask<Bytes>(Bytes, HandlerContext)>;

struct RpcStats {
  uint64_t calls = 0;
  uint64_t bulk_transfers = 0;
  double bulk_bytes = 0;
  double request_bytes = 0;
  double response_bytes = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t unavailable = 0;
};

/// Per-call knobs.
struct CallOptions {
  /// Deadline in simulated seconds. 0 uses the system default
  /// (`set_default_timeout`); negative disables the deadline for this call.
  double timeout = 0;
  /// Parent span for the client-side RPC span (ignored when no tracer is
  /// attached). Invalid -> the RPC span roots a new trace.
  obs::TraceContext parent{};
};

class RpcSystem {
 public:
  explicit RpcSystem(Fabric& fabric) : fabric_(&fabric) {}

  Fabric& fabric() { return *fabric_; }
  sim::Simulation& simulation() { return fabric_->simulation(); }

  /// Attach a fault injector consulted on every message leg. Must outlive
  /// the RpcSystem. nullptr detaches.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() { return injector_; }

  /// Deadline applied to calls whose CallOptions leave timeout == 0.
  /// 0 (the default) means no deadline.
  void set_default_timeout(double seconds) { default_timeout_ = seconds; }

  /// Attach a tracer: every call opens client/server spans and the trace
  /// context travels in the wire header. Must outlive in-flight calls; do
  /// not attach/detach while calls are running (the frame format must match
  /// on both legs). nullptr detaches and restores the untraced byte stream.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  obs::Tracer* tracer() { return tracer_; }

  /// Attach a metrics registry for call-latency / wire-size histograms.
  /// Histogram pointers are cached here; clients and providers also read
  /// this at construction to cache their own. nullptr detaches.
  void set_metrics(obs::MetricsRegistry* metrics);
  obs::MetricsRegistry* metrics() { return metrics_; }

  /// Attach a flight recorder (obs/events.h). The RpcSystem itself records
  /// nothing; it is the distribution point clients, providers, and the
  /// fault injector read their `EventLog*` through. Recording is pure
  /// memory append — unlike trace framing it never changes wire bytes or
  /// simulated timings, so it is safe under `--verify`. nullptr detaches.
  void set_events(obs::EventLog* events) { events_ = events; }
  obs::EventLog* events() { return events_; }

  /// Register `handler` for (node, method). Replaces any previous handler.
  void register_handler(NodeId node, std::string method, RpcHandler handler);
  void register_handler(NodeId node, std::string method,
                        RpcHandlerCtx handler);

  /// Gate all handler executions on `node` behind `slots` concurrent
  /// executors, each charging `service_overhead` seconds per call (models a
  /// bounded RPC thread pool / single-threaded server loop).
  void set_service_pool(NodeId node, int slots, double service_overhead);

  /// Issue an RPC. The returned bytes are the handler's response.
  /// Fails with Unimplemented if no handler is registered (distinct from a
  /// provider legitimately answering NotFound), Unavailable if the target is
  /// down or the message was lost, DeadlineExceeded if the deadline fires.
  sim::CoTask<Result<Bytes>> call(NodeId from, NodeId to,
                                  const std::string& method, Bytes request,
                                  CallOptions options = {});

  /// RDMA-style payload movement: `buffer.size()` bytes cross from `from`
  /// to `to` with no handler involvement. Content travels logically (the
  /// caller hands the Buffer to whatever registered it). Fails with
  /// Unavailable when the destination is down or the transfer is dropped.
  sim::CoTask<common::Status> bulk(NodeId from, NodeId to,
                                   const Buffer& buffer);

  const RpcStats& stats() const { return stats_; }

 private:
  struct ServicePool {
    std::unique_ptr<sim::Semaphore> slots;
    double overhead = 0;
  };

  // The call body without deadline handling (raced against the timer when a
  // deadline is set; run directly otherwise). Takes `method` BY VALUE: when
  // the deadline loses the race the abandoned frame keeps running after the
  // caller's arguments are gone.
  sim::CoTask<Result<Bytes>> call_inner(NodeId from, NodeId to,
                                        std::string method, Bytes request);
  // Strip the trace frame (added by `call` when a tracer is attached) off a
  // request just before handler dispatch.
  Bytes unframe_request(Bytes request, obs::TraceContext* parent_out);
  // Race `inner` against a deadline `timeout` seconds from now.
  sim::CoTask<Result<Bytes>> race_deadline(sim::CoTask<Result<Bytes>> inner,
                                           double timeout, std::string method,
                                           NodeId to);

  Fabric* fabric_;
  FaultInjector* injector_ = nullptr;
  double default_timeout_ = 0;
  std::map<std::pair<NodeId, std::string>, RpcHandlerCtx> handlers_;
  std::map<NodeId, ServicePool> pools_;
  RpcStats stats_;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::EventLog* events_ = nullptr;
  // Cached histogram pointers (stable for the registry's lifetime); null
  // when no registry is attached, so the untraced hot path is one branch.
  obs::Histogram* hist_call_seconds_ = nullptr;
  obs::Histogram* hist_request_bytes_ = nullptr;
  obs::Histogram* hist_response_bytes_ = nullptr;
  obs::Histogram* hist_bulk_bytes_ = nullptr;
};

/// Convenience: serialize a request struct, call, deserialize the response.
/// Request/Response must provide `void serialize(common::Serializer&) const`
/// and `static Response deserialize(common::Deserializer&)`.
/// A malformed response is annotated with the method and target node so the
/// failure is attributable without a packet trace.
/// `rpc` is a pointer and `method` a by-value copy because both are used
/// after the call suspends (EVO-CORO-003: the caller's frame may be gone
/// when this coroutine resumes).
template <typename Response, typename Request>
sim::CoTask<Result<Response>> typed_call(RpcSystem* rpc, NodeId from, NodeId to,
                                         std::string method,
                                         const Request& request,
                                         CallOptions options = {}) {
  common::Serializer s;
  request.serialize(s);
  auto raw =
      co_await rpc->call(from, to, method, std::move(s).take(), options);
  if (!raw.ok()) co_return raw.status();
  common::Deserializer d(raw.value());
  Response resp = Response::deserialize(d);
  if (!d.ok()) {
    co_return common::Status(
        d.status().code(),
        "deserializing '" + method + "' response from " +
            rpc->fabric().node_name(to) + ": " + d.status().message());
  }
  co_return resp;
}

}  // namespace evostore::net
