// RPC + bulk-transfer layer over the simulated fabric.
//
// Mirrors the Mochi/Thallium split the paper relies on:
//  - `call` is a classic request/response RPC: the (small) serialized request
//    travels to the target node, a registered handler coroutine runs there,
//    and the serialized response travels back.
//  - `bulk` is an RDMA-style transfer: payload bytes cross the NICs without
//    invoking any handler, so providers stay "mostly idle" during data
//    movement (the property §4.1 exploits for collective metadata queries).
//
// Handlers may optionally be gated by a per-node execution semaphore to model
// a bounded service pool (used by the Redis baseline, where the single
// server's CPU is the bottleneck).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/buffer.h"
#include "common/serde.h"
#include "common/status.h"
#include "common/types.h"
#include "net/fabric.h"
#include "sim/sync.h"

namespace evostore::net {

using common::Buffer;
using common::Bytes;
using common::Result;

/// A handler receives the request bytes and produces response bytes.
using RpcHandler = std::function<sim::CoTask<Bytes>(Bytes)>;

struct RpcStats {
  uint64_t calls = 0;
  uint64_t bulk_transfers = 0;
  double bulk_bytes = 0;
  double request_bytes = 0;
  double response_bytes = 0;
};

class RpcSystem {
 public:
  explicit RpcSystem(Fabric& fabric) : fabric_(&fabric) {}

  Fabric& fabric() { return *fabric_; }
  sim::Simulation& simulation() { return fabric_->simulation(); }

  /// Register `handler` for (node, method). Replaces any previous handler.
  void register_handler(NodeId node, std::string method, RpcHandler handler);

  /// Gate all handler executions on `node` behind `slots` concurrent
  /// executors, each charging `service_overhead` seconds per call (models a
  /// bounded RPC thread pool / single-threaded server loop).
  void set_service_pool(NodeId node, int slots, double service_overhead);

  /// Issue an RPC. The returned bytes are the handler's response.
  /// Fails with NotFound if no handler is registered.
  sim::CoTask<Result<Bytes>> call(NodeId from, NodeId to,
                                  const std::string& method, Bytes request);

  /// RDMA-style payload movement: `buffer.size()` bytes cross from `from`
  /// to `to` with no handler involvement. Content travels logically (the
  /// caller hands the Buffer to whatever registered it).
  sim::CoTask<void> bulk(NodeId from, NodeId to, const Buffer& buffer);

  const RpcStats& stats() const { return stats_; }

 private:
  struct ServicePool {
    std::unique_ptr<sim::Semaphore> slots;
    double overhead = 0;
  };

  Fabric* fabric_;
  std::map<std::pair<NodeId, std::string>, RpcHandler> handlers_;
  std::map<NodeId, ServicePool> pools_;
  RpcStats stats_;
};

/// Convenience: serialize a request struct, call, deserialize the response.
/// Request/Response must provide `void serialize(common::Serializer&) const`
/// and `static Response deserialize(common::Deserializer&)`.
template <typename Response, typename Request>
sim::CoTask<Result<Response>> typed_call(RpcSystem& rpc, NodeId from, NodeId to,
                                         const std::string& method,
                                         const Request& request) {
  common::Serializer s;
  request.serialize(s);
  auto raw = co_await rpc.call(from, to, method, std::move(s).take());
  if (!raw.ok()) co_return raw.status();
  common::Deserializer d(raw.value());
  Response resp = Response::deserialize(d);
  if (!d.ok()) co_return d.status();
  co_return resp;
}

}  // namespace evostore::net
