#include "obs/analyze.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <unordered_map>

namespace evostore::obs {

// ---- minimal JSON ---------------------------------------------------------

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_v) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool parse(JsonValue* out, std::string* error) {
    skip_ws();
    if (!parse_value(out)) {
      *error = error_ + " at offset " + std::to_string(pos_);
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      *error = "trailing garbage at offset " + std::to_string(pos_);
      return false;
    }
    return true;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool fail(const char* what) {
    if (error_.empty()) error_ = what;
    return false;
  }

  bool consume(char c, const char* what) {
    if (pos_ >= text_.size() || text_[pos_] != c) return fail(what);
    ++pos_;
    return true;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return fail("bad literal");
    pos_ += word.size();
    return true;
  }

  bool parse_value(JsonValue* out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return parse_object(out);
      case '[':
        return parse_array(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return parse_string(&out->str_v);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->bool_v = true;
        return literal("true");
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->bool_v = false;
        return literal("false");
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return literal("null");
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (!consume(':', "expected ':'")) return false;
      skip_ws();
      JsonValue value;
      if (!parse_value(&value)) return false;
      out->object_v.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return consume('}', "expected '}' or ','");
    }
  }

  bool parse_array(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue value;
      if (!parse_value(&value)) return false;
      out->array_v.push_back(std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return consume(']', "expected ']' or ','");
    }
  }

  bool parse_string(std::string* out) {
    if (!consume('"', "expected string")) return false;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad \\u escape");
            }
          }
          // UTF-8 encode the code point (surrogate pairs are not produced
          // by this repo's writers, which only escape control characters).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return fail("expected value");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("bad number");
    out->kind = JsonValue::Kind::kNumber;
    out->num_v = v;
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string error_;
};

uint64_t to_u64(const std::string& s, uint64_t fallback) {
  char* end = nullptr;
  uint64_t v = std::strtoull(s.c_str(), &end, 10);
  return (end != nullptr && *end == '\0' && !s.empty()) ? v : fallback;
}

}  // namespace

bool parse_json(std::string_view text, JsonValue* out, std::string* error) {
  *out = JsonValue{};
  JsonParser parser(text);
  return parser.parse(out, error);
}

// ---- artifact loaders -----------------------------------------------------

const std::string* AnalyzedEvent::attr(std::string_view key) const {
  for (const auto& [k, v] : attrs) {
    if (k == key) return &v;
  }
  return nullptr;
}

uint64_t AnalyzedEvent::attr_u64(std::string_view key,
                                 uint64_t fallback) const {
  const std::string* v = attr(key);
  return v == nullptr ? fallback : to_u64(*v, fallback);
}

bool parse_event_log(std::string_view text, EventLogFile* out,
                     std::string* error) {
  *out = EventLogFile{};
  JsonValue root;
  if (!parse_json(text, &root, error)) return false;
  if (root.kind != JsonValue::Kind::kObject) {
    *error = "event log root is not an object";
    return false;
  }
  out->capacity = static_cast<uint64_t>(
      root.find("capacity") != nullptr ? root.find("capacity")->number_or(0)
                                       : 0);
  out->recorded = static_cast<uint64_t>(
      root.find("recorded") != nullptr ? root.find("recorded")->number_or(0)
                                       : 0);
  out->dropped = static_cast<uint64_t>(
      root.find("dropped") != nullptr ? root.find("dropped")->number_or(0)
                                      : 0);
  const JsonValue* events = root.find("events");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    *error = "event log has no \"events\" array";
    return false;
  }
  out->events.reserve(events->array_v.size());
  for (const JsonValue& e : events->array_v) {
    const JsonValue* id = e.find("id");
    if (e.kind != JsonValue::Kind::kObject || id == nullptr ||
        id->kind != JsonValue::Kind::kString) {
      *error = "event entry missing string \"id\"";
      return false;
    }
    AnalyzedEvent ev;
    ev.id = id->str_v;
    const JsonValue* time = e.find("time");
    ev.time = time != nullptr ? time->number_or(0) : 0;
    const JsonValue* node = e.find("node");
    ev.node = static_cast<uint32_t>(node != nullptr ? node->number_or(0) : 0);
    const JsonValue* attrs = e.find("attrs");
    if (attrs != nullptr && attrs->kind == JsonValue::Kind::kObject) {
      for (const auto& [k, v] : attrs->object_v) {
        if (v.kind != JsonValue::Kind::kString) {
          *error = "event attr \"" + k + "\" is not a string";
          return false;
        }
        ev.attrs.emplace_back(k, v.str_v);
      }
    }
    out->events.push_back(std::move(ev));
  }
  return true;
}

bool parse_chrome_trace(std::string_view text, std::vector<SpanInfo>* out,
                        std::string* error) {
  out->clear();
  JsonValue root;
  if (!parse_json(text, &root, error)) return false;
  const JsonValue* events = root.find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    *error = "trace has no \"traceEvents\" array";
    return false;
  }
  for (const JsonValue& e : events->array_v) {
    if (e.kind != JsonValue::Kind::kObject) continue;
    const JsonValue* ph = e.find("ph");
    if (ph == nullptr || ph->str_v != "X") continue;  // only complete spans
    SpanInfo span;
    const JsonValue* name = e.find("name");
    if (name != nullptr) span.name = name->str_v;
    const JsonValue* pid = e.find("pid");
    span.node = static_cast<uint32_t>(pid != nullptr ? pid->number_or(0) : 0);
    const JsonValue* ts = e.find("ts");
    span.ts_us = ts != nullptr ? ts->number_or(0) : 0;
    const JsonValue* dur = e.find("dur");
    span.dur_us = dur != nullptr ? dur->number_or(0) : 0;
    const JsonValue* args = e.find("args");
    if (args != nullptr && args->kind == JsonValue::Kind::kObject) {
      for (const auto& [k, v] : args->object_v) {
        if (k == "trace_id") {
          span.trace_id = static_cast<uint64_t>(v.number_or(0));
        } else if (k == "span_id") {
          span.span_id = static_cast<uint64_t>(v.number_or(0));
        } else if (k == "parent_span_id") {
          span.parent_span_id = static_cast<uint64_t>(v.number_or(0));
        } else if (v.kind == JsonValue::Kind::kString) {
          span.tags.emplace_back(k, v.str_v);
        }
      }
    }
    if (span.span_id == 0) {
      *error = "span \"" + span.name + "\" has no span_id";
      return false;
    }
    out->push_back(std::move(span));
  }
  return true;
}

// ---- invariants -----------------------------------------------------------

namespace {

// Splits "0,2,3" into provider ids. Malformed pieces parse as 0 — the
// membership check then fails loudly rather than silently passing.
std::vector<uint64_t> split_ids(const std::string& s) {
  std::vector<uint64_t> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t comma = s.find(',', start);
    if (comma == std::string::npos) comma = s.size();
    if (comma > start) out.push_back(to_u64(s.substr(start, comma - start), 0));
    start = comma + 1;
  }
  return out;
}

}  // namespace

InvariantReport check_invariants(const EventLogFile& events,
                                 const std::vector<SpanInfo>& spans) {
  InvariantReport report;
  auto violate = [&report](std::string message) {
    report.violations.push_back(std::move(message));
  };

  // Completeness precondition: a truncated ring can hide the very events
  // the balances below need, so refuse to certify it.
  if (events.dropped > 0) {
    violate("event log dropped " + std::to_string(events.dropped) +
            " event(s) (ring capacity " + std::to_string(events.capacity) +
            " too small): invariants cannot be certified on a truncated log");
  }

  // Per-node drain state and per-target repair state. Events arrive in
  // export order (ascending time; at equal times ".begin" sorts before
  // ".end" lexicographically, matching causality).
  std::map<uint32_t, uint64_t> open_drains;       // node -> open begins
  std::map<uint64_t, uint64_t> open_repairs;      // target -> open begins
  for (const AnalyzedEvent& e : events.events) {
    if (e.id == "hint.recorded") {
      report.hints_recorded += e.attr_u64("count");
    } else if (e.id == "hint.replayed") {
      report.hints_replayed += e.attr_u64("count");
    } else if (e.id == "hint.superseded") {
      report.hints_superseded += e.attr_u64("count");
    } else if (e.id == "hint.moved") {
      report.hints_moved += e.attr_u64("count");
    } else if (e.id == "read.served") {
      ++report.reads_served;
      const std::string* provider = e.attr("provider");
      const std::string* replicas = e.attr("replicas");
      if (provider == nullptr || replicas == nullptr) {
        violate("read.served at t=" + std::to_string(e.time) +
                " is missing provider/replicas attrs");
        continue;
      }
      uint64_t p = to_u64(*provider, ~0ull);
      std::vector<uint64_t> set = split_ids(*replicas);
      if (std::find(set.begin(), set.end(), p) == set.end()) {
        violate("read.served at t=" + std::to_string(e.time) +
                ": provider " + *provider +
                " is not in the replica set [" + *replicas + "]");
      }
    } else if (e.id == "read.failover") {
      ++report.read_failovers;
    } else if (e.id == "drain.begin") {
      ++open_drains[e.node];
      ++report.drains_checked;
    } else if (e.id == "drain.end") {
      auto it = open_drains.find(e.node);
      if (it == open_drains.end() || it->second == 0) {
        violate("drain.end on node " + std::to_string(e.node) +
                " without a matching drain.begin");
      } else {
        --it->second;
      }
      uint64_t models = e.attr_u64("models_left");
      uint64_t segments = e.attr_u64("segments_left");
      uint64_t hints = e.attr_u64("hints_left");
      if (models != 0 || segments != 0 || hints != 0) {
        violate("drain on node " + std::to_string(e.node) + " left " +
                std::to_string(models) + " model(s), " +
                std::to_string(segments) + " segment(s), " +
                std::to_string(hints) + " hint(s) behind");
      }
    } else if (e.id == "repair.begin") {
      ++open_repairs[e.attr_u64("target", ~0ull)];
      ++report.repairs_checked;
    } else if (e.id == "repair.end") {
      uint64_t target = e.attr_u64("target", ~0ull);
      auto it = open_repairs.find(target);
      if (it == open_repairs.end() || it->second == 0) {
        violate("repair.end for target " + std::to_string(target) +
                " without a matching repair.begin");
      } else {
        --it->second;
      }
      const std::string* outcome = e.attr("outcome");
      if (outcome == nullptr || *outcome != "ok") {
        violate("repair of target " + std::to_string(target) + " ended " +
                (outcome == nullptr ? std::string("without an outcome")
                                    : "with outcome \"" + *outcome + "\""));
      }
    }
  }
  for (const auto& [node, open] : open_drains) {
    if (open != 0) {
      violate("drain.begin on node " + std::to_string(node) +
              " was never closed by a drain.end");
    }
  }
  for (const auto& [target, open] : open_repairs) {
    if (open != 0) {
      violate("repair.begin for target " + std::to_string(target) +
              " was never closed by a repair.end");
    }
  }

  // Hint balance. `hint.moved` hints are re-recorded by the refuge's
  // store_hint handler, so a moved hint contributes 2x recorded and
  // eventually 1x moved + 1x (replayed|superseded): both sides stay equal.
  uint64_t resolved =
      report.hints_replayed + report.hints_superseded + report.hints_moved;
  if (report.hints_recorded != resolved) {
    violate("hint imbalance: " + std::to_string(report.hints_recorded) +
            " recorded but " + std::to_string(report.hints_replayed) +
            " replayed + " + std::to_string(report.hints_superseded) +
            " superseded + " + std::to_string(report.hints_moved) +
            " moved = " + std::to_string(resolved) +
            " (parked hints were never resolved)");
  }

  // Span nesting: parent exists, same trace, and does not start after the
  // child. NOT interval containment — a server handler span legitimately
  // outlives a client span whose deadline fired first.
  std::unordered_map<uint64_t, const SpanInfo*> by_id;
  by_id.reserve(spans.size());
  for (const SpanInfo& s : spans) by_id.emplace(s.span_id, &s);
  constexpr double kStartEpsUs = 0.002;  // trace ts resolution is 0.001us
  for (const SpanInfo& s : spans) {
    ++report.spans_checked;
    if (s.parent_span_id == 0) continue;
    auto it = by_id.find(s.parent_span_id);
    if (it == by_id.end()) {
      // An abandoned (incomplete) parent is dropped from the export while
      // its children survive — that is expected under deadline races, but
      // the child must then still carry its parent's trace id as root.
      if (s.trace_id == s.span_id) {
        violate("span \"" + s.name + "\" (id " + std::to_string(s.span_id) +
                ") roots its own trace yet claims parent " +
                std::to_string(s.parent_span_id));
      }
      continue;
    }
    const SpanInfo& parent = *it->second;
    if (parent.trace_id != s.trace_id) {
      violate("span \"" + s.name + "\" (id " + std::to_string(s.span_id) +
              ") is in trace " + std::to_string(s.trace_id) +
              " but its parent \"" + parent.name + "\" is in trace " +
              std::to_string(parent.trace_id));
    }
    if (s.ts_us + kStartEpsUs < parent.ts_us) {
      violate("span \"" + s.name + "\" (id " + std::to_string(s.span_id) +
              ") starts before its parent \"" + parent.name + "\"");
    }
  }

  return report;
}

// ---- critical paths -------------------------------------------------------

std::vector<CriticalPath> critical_paths(const std::vector<SpanInfo>& spans,
                                         size_t max_paths) {
  std::unordered_map<uint64_t, const SpanInfo*> by_id;
  std::unordered_map<uint64_t, std::vector<const SpanInfo*>> children;
  by_id.reserve(spans.size());
  for (const SpanInfo& s : spans) by_id.emplace(s.span_id, &s);
  std::vector<const SpanInfo*> roots;
  for (const SpanInfo& s : spans) {
    // A span whose parent was abandoned (dropped from the export) acts as
    // a root for breakdown purposes: it is the oldest visible ancestor.
    if (s.parent_span_id == 0 || by_id.count(s.parent_span_id) == 0) {
      roots.push_back(&s);
    } else {
      children[s.parent_span_id].push_back(&s);
    }
  }
  // Deterministic traversal: children by (duration desc, span_id asc).
  for (auto& [id, kids] : children) {
    std::sort(kids.begin(), kids.end(),
              [](const SpanInfo* a, const SpanInfo* b) {
                if (a->dur_us != b->dur_us) return a->dur_us > b->dur_us;
                return a->span_id < b->span_id;
              });
  }
  std::vector<CriticalPath> paths;
  paths.reserve(roots.size());
  for (const SpanInfo* root : roots) {
    CriticalPath path;
    path.trace_id = root->trace_id;
    path.root = root->name;
    path.total_us = root->dur_us;
    const SpanInfo* cursor = root;
    while (cursor != nullptr) {
      auto it = children.find(cursor->span_id);
      const SpanInfo* widest =
          it != children.end() && !it->second.empty() ? it->second.front()
                                                      : nullptr;
      CriticalPathStep step;
      step.name = cursor->name;
      step.node = cursor->node;
      step.dur_us = cursor->dur_us;
      step.self_us =
          cursor->dur_us - (widest != nullptr ? widest->dur_us : 0.0);
      path.steps.push_back(std::move(step));
      cursor = widest;
    }
    paths.push_back(std::move(path));
  }
  std::sort(paths.begin(), paths.end(),
            [](const CriticalPath& a, const CriticalPath& b) {
              if (a.total_us != b.total_us) return a.total_us > b.total_us;
              return a.trace_id < b.trace_id;
            });
  if (max_paths != 0 && paths.size() > max_paths) paths.resize(max_paths);
  return paths;
}

// ---- time series ----------------------------------------------------------

std::vector<SeriesRow> time_series(const EventLogFile& events,
                                   double bucket_seconds) {
  std::vector<SeriesRow> rows;
  if (bucket_seconds <= 0 || events.events.empty()) return rows;
  double max_time = 0;
  for (const AnalyzedEvent& e : events.events) {
    max_time = std::max(max_time, e.time);
  }
  size_t buckets = static_cast<size_t>(max_time / bucket_seconds) + 1;
  rows.resize(buckets);
  for (size_t i = 0; i < buckets; ++i) {
    rows[i].bucket_start = static_cast<double>(i) * bucket_seconds;
  }
  // Per-bucket deltas first; backlog integrates across buckets afterwards.
  std::vector<int64_t> backlog_delta(buckets, 0);
  for (const AnalyzedEvent& e : events.events) {
    size_t b = static_cast<size_t>(e.time / bucket_seconds);
    if (b >= buckets) b = buckets - 1;
    SeriesRow& row = rows[b];
    if (e.id == "hint.recorded") {
      backlog_delta[b] += static_cast<int64_t>(e.attr_u64("count"));
    } else if (e.id == "hint.replayed" || e.id == "hint.superseded" ||
               e.id == "hint.moved") {
      backlog_delta[b] -= static_cast<int64_t>(e.attr_u64("count"));
    } else if (e.id == "read.served") {
      ++row.reads_served;
    } else if (e.id == "read.failover") {
      ++row.read_failovers;
    } else if (e.id == "cache.trusted") {
      row.cache_hits += e.attr_u64("hits");
    } else if (e.id == "cache.lookup") {
      row.cache_misses += e.attr_u64("fresh");
      row.cache_hits += e.attr_u64("not_modified");
    } else if (e.id == "cache.peer") {
      row.cache_hits += e.attr_u64("hits");
    }
  }
  int64_t backlog = 0;
  for (size_t i = 0; i < buckets; ++i) {
    backlog += backlog_delta[i];
    rows[i].hint_backlog = backlog;
  }
  return rows;
}

}  // namespace evostore::obs
