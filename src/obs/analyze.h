// Post-hoc trace/event analysis for the flight recorder (obs/events.h) and
// the Chrome-trace tracer (obs/trace.h).
//
// Three layers, each usable on its own:
//   1. A minimal generic JSON reader (`JsonValue` / `parse_json`). The repo
//      deliberately has no external dependencies, and the only JSON this
//      must read is the JSON this repo writes — so the parser is small,
//      strict where it matters (structure), and tolerant nowhere.
//   2. Artifact loaders: `parse_event_log` understands EventLog::write_json
//      output; `parse_chrome_trace` understands Tracer::write_chrome_trace.
//   3. Analyses: `check_invariants` (the CI gate — replication and tracing
//      properties that must hold for EVERY run), `critical_paths`
//      (per-request latency breakdowns), and `time_series` (handoff
//      backlog, failover and cache-hit rates over simulated time).
//
// Invariants checked (each violation is one human-readable string):
//   - completeness: the event log must not have dropped events (a truncated
//     log cannot prove anything — resize the ring instead);
//   - hint balance: every parked hint is eventually replayed, superseded by
//     a repair, or moved by a drain (moved hints re-record at the refuge,
//     so both sides of the move count consistently);
//   - replica reads: every `read.served` names a provider inside the
//     replica set it reports — a read served off-set is a routing bug;
//   - drain emptiness: every `drain.begin` is closed by a `drain.end` on
//     the same node with zero models/segments/hints left behind;
//   - repair completion: every `repair.begin` is closed by an ok
//     `repair.end` for the same target;
//   - span nesting: every span's parent exists, shares its trace id, and
//     does not start after its child. (Deliberately NOT interval
//     containment: a server handler span legitimately outlives a client
//     span whose deadline fired.)
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace evostore::obs {

// ---- minimal JSON ---------------------------------------------------------

/// Parsed JSON tree node. Objects keep insertion order (the exports are
/// deterministic, so order is meaningful for round-trip tests).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_v = false;
  double num_v = 0;
  std::string str_v;
  std::vector<JsonValue> array_v;
  std::vector<std::pair<std::string, JsonValue>> object_v;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
  double number_or(double fallback) const {
    return kind == Kind::kNumber ? num_v : fallback;
  }
};

/// Parse `text` into `*out`. Returns false (and fills `*error` with a
/// position-annotated message) on malformed input or trailing garbage.
bool parse_json(std::string_view text, JsonValue* out, std::string* error);

// ---- artifact loaders -----------------------------------------------------

/// One event as loaded from an exported log (seq is not exported).
struct AnalyzedEvent {
  double time = 0;
  std::string id;
  uint32_t node = 0;
  std::vector<std::pair<std::string, std::string>> attrs;

  /// Attr value by key; nullptr when absent.
  const std::string* attr(std::string_view key) const;
  uint64_t attr_u64(std::string_view key, uint64_t fallback = 0) const;
};

/// A loaded event-log file (EventLog::write_json output).
struct EventLogFile {
  uint64_t capacity = 0;
  uint64_t recorded = 0;
  uint64_t dropped = 0;
  std::vector<AnalyzedEvent> events;  // export order: (time, id, node, attrs)
};

bool parse_event_log(std::string_view text, EventLogFile* out,
                     std::string* error);

/// One complete span as loaded from a Chrome trace. Times in microseconds
/// (the trace's native unit).
struct SpanInfo {
  std::string name;
  uint32_t node = 0;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;  // 0 = root
  double ts_us = 0;
  double dur_us = 0;
  std::vector<std::pair<std::string, std::string>> tags;
};

bool parse_chrome_trace(std::string_view text, std::vector<SpanInfo>* out,
                        std::string* error);

// ---- invariants -----------------------------------------------------------

struct InvariantReport {
  std::vector<std::string> violations;
  // Summary counters (filled whether or not violations exist).
  uint64_t hints_recorded = 0;
  uint64_t hints_replayed = 0;
  uint64_t hints_superseded = 0;
  uint64_t hints_moved = 0;
  uint64_t reads_served = 0;
  uint64_t read_failovers = 0;
  uint64_t drains_checked = 0;
  uint64_t repairs_checked = 0;
  uint64_t spans_checked = 0;

  bool ok() const { return violations.empty(); }
};

/// Run every invariant that applies to the inputs given. Pass an empty span
/// vector when only an event log is available (span nesting is then
/// vacuously unchecked), and vice versa an empty event log.
InvariantReport check_invariants(const EventLogFile& events,
                                 const std::vector<SpanInfo>& spans);

// ---- critical paths -------------------------------------------------------

/// One hop on a trace's critical path: the span, its duration, and its
/// self time (duration minus the child consuming the most of it).
struct CriticalPathStep {
  std::string name;
  uint32_t node = 0;
  double dur_us = 0;
  double self_us = 0;
};

struct CriticalPath {
  uint64_t trace_id = 0;
  std::string root;
  double total_us = 0;
  std::vector<CriticalPathStep> steps;  // root first, deepest last
};

/// Per-trace critical paths, longest total first. At each level the child
/// with the largest duration is followed. `max_paths` 0 = all.
std::vector<CriticalPath> critical_paths(const std::vector<SpanInfo>& spans,
                                         size_t max_paths = 0);

// ---- time series ----------------------------------------------------------

/// One bucket of the replication/cache time-series.
struct SeriesRow {
  double bucket_start = 0;
  /// Parked hints outstanding at bucket end: cumulative recorded minus
  /// replayed, superseded, and moved.
  int64_t hint_backlog = 0;
  uint64_t reads_served = 0;
  uint64_t read_failovers = 0;
  /// Cache outcomes inside the bucket. Hits = trusted + revalidated +
  /// peer-served; misses = fresh payloads pulled from providers.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
};

/// Bucket events into `bucket_seconds`-wide rows (empty buckets between
/// occupied ones are emitted so plots have a continuous x-axis).
std::vector<SeriesRow> time_series(const EventLogFile& events,
                                   double bucket_seconds);

}  // namespace evostore::obs
