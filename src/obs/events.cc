#include "obs/events.h"

#include <algorithm>
#include <ostream>

#include "obs/metrics.h"  // format_double / json_escape

namespace evostore::obs {

EventLog::EventLog(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  // Reserve lazily: an attached-but-idle recorder costs nothing.
}

std::string EventLog::f64(double v) { return format_double(v); }

void EventLog::record(double time, std::string_view id, uint32_t node,
                      std::initializer_list<Attr> attrs) {
  EventRecord* slot;
  if (ring_.size() < capacity_) {
    slot = &ring_.emplace_back();
  } else {
    slot = &ring_[recorded_ % capacity_];  // evict the oldest
  }
  slot->seq = recorded_++;
  slot->time = time;
  slot->id.assign(id);
  slot->node = node;
  slot->attrs.clear();
  slot->attrs.reserve(attrs.size());
  for (const Attr& a : attrs) {
    slot->attrs.emplace_back(std::string(a.first), std::string(a.second));
  }
}

size_t EventLog::size() const { return ring_.size(); }

void EventLog::clear() {
  ring_.clear();
  recorded_ = 0;
}

std::vector<const EventRecord*> EventLog::snapshot() const {
  std::vector<const EventRecord*> out;
  out.reserve(ring_.size());
  for (const EventRecord& e : ring_) out.push_back(&e);
  std::sort(out.begin(), out.end(),
            [](const EventRecord* a, const EventRecord* b) {
              return a->seq < b->seq;
            });
  return out;
}

std::vector<const EventRecord*> EventLog::sorted_for_export() const {
  std::vector<const EventRecord*> out = snapshot();
  std::sort(out.begin(), out.end(),
            [](const EventRecord* a, const EventRecord* b) {
              if (a->time != b->time) return a->time < b->time;
              if (a->id != b->id) return a->id < b->id;
              if (a->node != b->node) return a->node < b->node;
              if (a->attrs != b->attrs) return a->attrs < b->attrs;
              return a->seq < b->seq;
            });
  return out;
}

void EventLog::write_json(std::ostream& os) const {
  std::string out;
  out += "{\n";
  out += "  \"capacity\": " + std::to_string(capacity_) + ",\n";
  out += "  \"recorded\": " + std::to_string(recorded_) + ",\n";
  out += "  \"dropped\": " + std::to_string(dropped()) + ",\n";
  out += "  \"events\": [";
  bool first = true;
  for (const EventRecord* e : sorted_for_export()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"time\": " + format_double(e->time);
    out += ", \"id\": \"" + json_escape(e->id);
    out += "\", \"node\": " + std::to_string(e->node);
    out += ", \"attrs\": {";
    bool afirst = true;
    for (const auto& [k, v] : e->attrs) {
      if (!afirst) out += ", ";
      afirst = false;
      out += "\"" + json_escape(k) + "\": \"" + json_escape(v) + "\"";
    }
    out += "}}";
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  os << out;
}

void EventLog::write_csv(std::ostream& os) const {
  std::string out;
  out += "time,id,node,attrs\n";
  for (const EventRecord* e : sorted_for_export()) {
    out += format_double(e->time);
    out += ',';
    out += e->id;  // ids are code-controlled, no commas
    out += ',';
    out += std::to_string(e->node);
    out += ",\"";
    bool afirst = true;
    for (const auto& [k, v] : e->attrs) {
      if (!afirst) out += ';';
      afirst = false;
      out += k;
      out += '=';
      // CSV quoting: double any embedded quote; attr values never hold
      // newlines (they come from ids/counters), but escape defensively.
      for (char c : v) {
        if (c == '"') out += "\"\"";
        else if (c == '\n') out += ' ';
        else out += c;
      }
    }
    out += "\"\n";
  }
  os << out;
}

}  // namespace evostore::obs
