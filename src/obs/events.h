// Cluster flight recorder: a bounded, sim-timestamped structured event log.
//
// Where metrics answer "how many" and spans answer "how long", the event
// log answers "what happened, in what order": replication and cache
// lifecycle transitions — write legs committed/exhausted, hinted handoffs
// parked/replayed/superseded, read failover hops, drain/repair progress,
// partition open/heal, cache validation outcomes, dedup hits, GC retires —
// each recorded as a stable event id plus key/value attributes.
//
// Design constraints mirror the metrics registry (obs/metrics.h):
//   1. Cheap when detached. Call sites hold an `EventLog*` (null when no
//      recorder is attached) and guard with one branch; `record` itself is
//      a bounded-ring append with no allocation beyond the attr strings.
//   2. Deterministic export. Events are exported sorted by content
//      (time, id, node, attrs), doubles print via `format_double`, and the
//      instrumented paths record nothing host-dependent — identical seeded
//      runs serialize to byte-identical JSON/CSV, and two logs fed the same
//      events in different orders export identically.
//   3. Pure recording. Unlike trace framing (which adds wire bytes and so
//      shifts simulated timings), recording an event never touches the
//      simulation, the RNGs, or the wire: `--events-out` is safe under
//      `--verify` exactly like `--metrics-out`.
//
// The ring is bounded: once `capacity` events are held, each append evicts
// the OLDEST retained event (newest events always survive) and bumps the
// `dropped` count. Post-hoc invariant checking (obs/analyze.h) refuses
// truncated logs, so size the capacity to the run — the default holds every
// event the bench harnesses produce.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace evostore::obs {

/// One recorded event. `seq` is the lifetime append index (never reused, so
/// wraparound is observable); attrs keep insertion order.
struct EventRecord {
  uint64_t seq = 0;
  double time = 0;  // simulated seconds
  std::string id;   // stable event id, e.g. "hint.recorded"
  uint32_t node = 0;
  std::vector<std::pair<std::string, std::string>> attrs;
};

class EventLog {
 public:
  /// Generous default: a full ablation_faults sweep records a few thousand
  /// events; invariant checks need the log complete (dropped == 0).
  static constexpr size_t kDefaultCapacity = 1 << 16;

  using Attr = std::pair<std::string_view, std::string_view>;

  explicit EventLog(size_t capacity = kDefaultCapacity);

  /// Append one event. When the ring is full the oldest retained event is
  /// evicted (and counted in `dropped()`).
  void record(double time, std::string_view id, uint32_t node,
              std::initializer_list<Attr> attrs = {});

  /// Deterministic attr-value formatting helpers.
  static std::string u64(uint64_t v) { return std::to_string(v); }
  static std::string f64(double v);

  size_t capacity() const { return capacity_; }
  /// Events currently retained (<= capacity).
  size_t size() const;
  /// Lifetime append count (includes evicted events).
  uint64_t recorded() const { return recorded_; }
  /// Events evicted by wraparound.
  uint64_t dropped() const { return recorded_ - size(); }
  void clear();

  /// Retained events oldest-first (ascending seq).
  std::vector<const EventRecord*> snapshot() const;

  /// Deterministic JSON export:
  ///   {"capacity": N, "recorded": N, "dropped": N, "events": [
  ///       {"time": T, "id": "...", "node": N, "attrs": {...}}, ...]}
  /// Events sorted by (time, id, node, attrs); `seq` is intentionally
  /// omitted so the bytes depend only on WHAT was recorded, not the
  /// interleaving it was recorded in.
  void write_json(std::ostream& os) const;

  /// Deterministic CSV export (same sort): header `time,id,node,attrs`,
  /// attrs flattened to a quoted `k=v;k=v` field.
  void write_csv(std::ostream& os) const;

 private:
  std::vector<const EventRecord*> sorted_for_export() const;

  size_t capacity_;
  uint64_t recorded_ = 0;
  std::vector<EventRecord> ring_;  // slot = seq % capacity_
};

}  // namespace evostore::obs
