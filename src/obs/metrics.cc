#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace evostore::obs {

namespace {

// JSON string escaping for metric names and (in trace.cc via the shared
// helper below) tag values. Names here are code-controlled ASCII, but the
// escaper is total so hostile input can never produce invalid JSON.
void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::string format_double(double v) {
  // Normalize negative zero and NaN so exports never depend on how a
  // platform happens to print them.
  if (std::isnan(v)) return "0";
  if (v == 0) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  append_json_escaped(out, s);
  return out;
}

int Histogram::bucket_of(double v) {
  // Callers guarantee v > 0 and finite.
  int exp = 0;
  double mant = std::frexp(v, &exp);  // mant in [0.5, 1)
  exp = std::clamp(exp, kMinExp, kMaxExp - 1);
  int sub = static_cast<int>((mant - 0.5) * 2 * kSubBuckets);
  sub = std::clamp(sub, 0, kSubBuckets - 1);
  return (exp - kMinExp) * kSubBuckets + sub;
}

double Histogram::bucket_lower(int b) {
  int exp = kMinExp + b / kSubBuckets;
  int sub = b % kSubBuckets;
  return std::ldexp(0.5 + static_cast<double>(sub) / (2.0 * kSubBuckets), exp);
}

double Histogram::bucket_upper(int b) { return bucket_lower(b + 1); }

void Histogram::add(double v) {
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  if (!std::isnan(v)) sum_ += v;
  if (!(v > 0) || !std::isfinite(v)) {
    ++underflow_;
    return;
  }
  if (buckets_.empty()) buckets_.assign(kBucketCount, 0);
  ++buckets_[static_cast<size_t>(bucket_of(v))];
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the requested quantile among `count_` samples, 1-based.
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  rank = std::clamp<uint64_t>(rank, 1, count_);
  if (rank <= underflow_) return min();
  uint64_t cum = underflow_;
  for (int b = 0; b < kBucketCount; ++b) {
    uint64_t n = buckets_.empty() ? 0 : buckets_[static_cast<size_t>(b)];
    if (n == 0) continue;
    if (cum + n >= rank) {
      // Interpolate linearly inside the bucket, then clamp to the observed
      // range so quantiles never exceed max() or undercut min().
      double frac =
          static_cast<double>(rank - cum) / static_cast<double>(n);
      double v = bucket_lower(b) + frac * (bucket_upper(b) - bucket_lower(b));
      return std::clamp(v, min_, max_);
    }
    cum += n;
  }
  return max();
}

HistogramSummary Histogram::summary() const {
  HistogramSummary s;
  s.count = count_;
  s.sum = sum_;
  s.min = min();
  s.max = max();
  s.p50 = quantile(0.5);
  s.p95 = quantile(0.95);
  s.p99 = quantile(0.99);
  return s;
}

Counter* MetricsRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), Counter{}).first;
  }
  return &it->second;
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), Gauge{}).first;
  }
  return &it->second;
}

Histogram* MetricsRegistry::histogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  }
  return &it->second;
}

std::vector<std::pair<std::string_view, const Histogram*>>
MetricsRegistry::histograms() const {
  std::vector<std::pair<std::string_view, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) out.emplace_back(name, &hist);
  return out;
}

void MetricsRegistry::write_json(std::ostream& os) const {
  std::string out;
  out += "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    append_json_escaped(out, name);
    out += "\": " + std::to_string(c.value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    append_json_escaped(out, name);
    out += "\": " + format_double(g.value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    HistogramSummary s = h.summary();
    out += "    \"";
    append_json_escaped(out, name);
    out += "\": {\"count\": " + std::to_string(s.count);
    out += ", \"sum\": " + format_double(s.sum);
    out += ", \"min\": " + format_double(s.min);
    out += ", \"max\": " + format_double(s.max);
    out += ", \"mean\": " + format_double(h.mean());
    out += ", \"p50\": " + format_double(s.p50);
    out += ", \"p95\": " + format_double(s.p95);
    out += ", \"p99\": " + format_double(s.p99);
    out += "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  os << out;
}

}  // namespace evostore::obs
