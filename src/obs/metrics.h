// Hot-path metrics: counters, gauges, and log-bucketed histograms.
//
// Design constraints, in order:
//   1. Cheap enough for the hot path. `Counter::add` is one integer add;
//      `Histogram::add` is a frexp + two integer ops. Call sites cache the
//      `Counter*`/`Histogram*` returned by the registry once (pointers are
//      stable — the registry stores node-based maps) and guard on nullptr,
//      so an unattached registry costs a single branch.
//   2. Deterministic export. Registries iterate in name order (std::map),
//      doubles print with fixed printf formats, and nothing host-dependent
//      (wall clocks, addresses, thread interleavings) is ever recorded by
//      the instrumented code paths — identical simulated runs therefore
//      serialize to byte-identical JSON.
//   3. No dependency on the simulation. Values are whatever the caller
//      feeds in (sim-time durations, byte counts); this header needs only
//      the standard library, so leaf modules (storage, compress) can link
//      it without pulling in the DES.
//
// Not thread-safe: in this codebase metrics are fed from the single-threaded
// simulation loop. Attach registries before concurrent host-side use.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace evostore::obs {

class Counter {
 public:
  void add(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double v) { value_ += v; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

/// The fixed-size digest of a histogram that travels on the wire
/// (wire::StatsResponse) and lands in JSON snapshots. Quantiles are
/// bucket-interpolated, so two histograms fed the same values in any order
/// produce the same summary.
struct HistogramSummary {
  uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

/// Log-bucketed histogram for latencies (seconds) and sizes (bytes).
//
// Buckets: each power-of-two octave of the value range splits into
// `kSubBuckets` linear sub-buckets (relative resolution 1/kSubBuckets ≈
// 12.5%), over binary exponents [kMinExp, kMaxExp). That covers ~1e-13
// through ~1e15 — every latency and byte count this simulator produces —
// in a few KB of flat storage with no allocation on `add`.
//
// Values <= 0 (and NaN) land in a dedicated underflow bucket; quantile
// resolution for them collapses to `min()`, which is exact enough for the
// "how many zero-length ops" questions they answer.
class Histogram {
 public:
  static constexpr int kSubBuckets = 8;
  static constexpr int kMinExp = -44;  // frexp exponent; 2^-45 ~ 2.8e-14
  static constexpr int kMaxExp = 51;   // 2^50 ~ 1.1e15

  void add(double v);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ > 0 ? min_ : 0; }
  double max() const { return count_ > 0 ? max_ : 0; }
  double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0;
  }

  /// Bucket-interpolated quantile; q is clamped into [0, 1]. Empty
  /// histogram -> 0.
  double quantile(double q) const;

  HistogramSummary summary() const;

 private:
  static constexpr int kBucketCount = (kMaxExp - kMinExp) * kSubBuckets;

  static int bucket_of(double v);
  static double bucket_lower(int b);
  static double bucket_upper(int b);

  uint64_t count_ = 0;
  uint64_t underflow_ = 0;  // v <= 0 or NaN
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
  std::vector<uint64_t> buckets_;  // allocated on first positive add
};

/// Named metric families. Lookup is by full name ("rpc.call_seconds");
/// returned pointers stay valid for the registry's lifetime, so hot paths
/// resolve once and cache.
class MetricsRegistry {
 public:
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  /// Histograms in name order (for wire export of per-provider summaries).
  std::vector<std::pair<std::string_view, const Histogram*>> histograms()
      const;

  /// Deterministic JSON snapshot:
  ///   {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,
  ///    max,mean,p50,p95,p99},...}}
  /// Name-ordered, fixed number formatting — byte-identical across runs
  /// that recorded identical values.
  void write_json(std::ostream& os) const;

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

/// Fixed, locale-independent-enough formatting for exported doubles: %.17g
/// round-trips exactly and prints identically for identical bit patterns.
std::string format_double(double v);

/// Total JSON string escaping (quotes, backslashes, control chars).
std::string json_escape(std::string_view s);

}  // namespace evostore::obs
