#include "obs/trace.h"

#include <cstdio>
#include <ostream>

#include "obs/metrics.h"

namespace evostore::obs {

namespace {

// Microsecond timestamps with fixed sub-microsecond precision: enough to
// resolve the 200ns local-latency hops, and a stable byte representation.
std::string format_us(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  return buf;
}

}  // namespace

TraceContext Span::context() const {
  if (tracer_ == nullptr) return {};
  const SpanRecord& r = tracer_->records_[index_];
  return {r.trace_id, r.span_id};
}

void Span::tag(std::string_view key, std::string_view value) {
  if (tracer_ == nullptr) return;
  tracer_->records_[index_].tags.emplace_back(std::string(key),
                                              std::string(value));
}

void Span::tag_u64(std::string_view key, uint64_t value) {
  if (tracer_ == nullptr) return;
  tag(key, std::to_string(value));
}

void Span::tag_f64(std::string_view key, double value) {
  if (tracer_ == nullptr) return;
  tag(key, format_double(value));
}

void Span::end() {
  if (tracer_ == nullptr) return;
  SpanRecord& r = tracer_->records_[index_];
  if (!r.complete()) r.end = tracer_->sim_->now();
  tracer_ = nullptr;
}

Span Tracer::begin(std::string name, uint32_t node, TraceContext parent) {
  SpanRecord r;
  r.span_id = ++next_id_;
  if (parent.valid()) {
    r.trace_id = parent.trace_id;
    r.parent_span_id = parent.span_id;
  } else {
    r.trace_id = r.span_id;  // new trace rooted here
  }
  r.name = std::move(name);
  r.node = node;
  r.start = sim_->now();
  records_.push_back(std::move(r));
  return Span{this, records_.size() - 1};
}

size_t Tracer::complete_count() const {
  size_t n = 0;
  for (const SpanRecord& r : records_) {
    if (r.complete()) ++n;
  }
  return n;
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  std::string out;
  out += "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const SpanRecord& r : records_) {
    if (!r.complete()) continue;  // abandoned (e.g. deadline-raced) spans
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"name\": \"" + json_escape(r.name) + "\"";
    out += ", \"cat\": \"evostore\", \"ph\": \"X\"";
    out += ", \"ts\": " + format_us(r.start);
    out += ", \"dur\": " + format_us(r.end - r.start);
    out += ", \"pid\": " + std::to_string(r.node);
    out += ", \"tid\": " + std::to_string(r.trace_id);
    out += ", \"args\": {\"trace_id\": " + std::to_string(r.trace_id);
    out += ", \"span_id\": " + std::to_string(r.span_id);
    out += ", \"parent_span_id\": " + std::to_string(r.parent_span_id);
    for (const auto& [k, v] : r.tags) {
      out += ", \"" + json_escape(k) + "\": \"" + json_escape(v) + "\"";
    }
    out += "}}";
  }
  out += first ? "]}\n" : "\n]}\n";
  os << out;
}

}  // namespace evostore::obs
