// Span-based tracing on the simulated clock.
//
// A `Tracer` records spans — named intervals of simulated time with a
// trace_id / span_id / parent_span_id triple — into a flat vector in begin
// order. Ids are sequential from a per-tracer counter, and timestamps come
// from `Simulation::now()`, so two runs of the same seeded scenario record
// byte-identical span tables: the trace file is a regression artifact, not
// just a debugging aid.
//
// There is deliberately no ambient ("current span") context: the simulation
// interleaves thousands of coroutines on one host thread, so thread-local
// context would attribute children to whichever coroutine last resumed.
// Instead a `TraceContext` is passed explicitly — through function
// parameters inside a process, and through a 16-ish-byte header framed
// ahead of the RPC request payload across the wire (see net/rpc.cc). That
// framing exists only while a tracer is attached, so untraced runs keep the
// exact pre-tracing wire format and timings.
//
// `Span` is a cheap RAII handle (tracer pointer + record index). A
// default-constructed or moved-from span is inert: every operation on it is
// a no-op, which is what lets instrumented code run unconditionally with a
// single null check hidden inside `Tracer::maybe_begin`.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/simulation.h"

namespace evostore::obs {

/// What crosses process/coroutine boundaries. span_id 0 means "no parent".
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;

  bool valid() const { return span_id != 0; }
};

struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  std::string name;
  uint32_t node = 0;   // fabric NodeId where the span ran
  double start = 0;    // simulated seconds
  double end = -1;     // < start until the span ends
  std::vector<std::pair<std::string, std::string>> tags;

  bool complete() const { return end >= start; }
};

class Tracer;

class Span {
 public:
  Span() = default;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& o) noexcept : tracer_(o.tracer_), index_(o.index_) {
    o.tracer_ = nullptr;
  }
  Span& operator=(Span&& o) noexcept {
    if (this != &o) {
      end();
      tracer_ = o.tracer_;
      index_ = o.index_;
      o.tracer_ = nullptr;
    }
    return *this;
  }
  ~Span() { end(); }

  /// False for inert spans (no tracer attached / already ended).
  bool active() const { return tracer_ != nullptr; }

  /// Context to hand to children; invalid when inert.
  TraceContext context() const;

  void tag(std::string_view key, std::string_view value);
  void tag_u64(std::string_view key, uint64_t value);
  void tag_f64(std::string_view key, double value);

  /// Stamp the end time. Idempotent; the destructor calls it too.
  void end();

 private:
  friend class Tracer;
  Span(Tracer* tracer, size_t index) : tracer_(tracer), index_(index) {}

  Tracer* tracer_ = nullptr;
  size_t index_ = 0;
};

class Tracer {
 public:
  explicit Tracer(sim::Simulation& sim) : sim_(&sim) {}

  /// Begin a span. An invalid `parent` starts a new trace (trace_id =
  /// span_id of the root).
  Span begin(std::string name, uint32_t node, TraceContext parent = {});

  /// Null-safe begin: inert span when `tracer` is null. This is the form
  /// instrumented code uses so the untraced hot path costs one branch.
  static Span maybe_begin(Tracer* tracer, std::string name, uint32_t node,
                          TraceContext parent = {}) {
    if (tracer == nullptr) return Span{};
    return tracer->begin(std::move(name), node, parent);
  }

  const std::vector<SpanRecord>& records() const { return records_; }
  size_t complete_count() const;

  /// Chrome trace-event JSON ("X" complete events, ts/dur in microseconds
  /// of simulated time), loadable in Perfetto / chrome://tracing. Only
  /// complete spans are exported, in begin order; pid is the fabric node,
  /// tid the trace id, and args carry the span/parent ids plus tags.
  /// Deterministic: identical span tables serialize byte-identically.
  void write_chrome_trace(std::ostream& os) const;

 private:
  friend class Span;

  sim::Simulation* sim_;
  uint64_t next_id_ = 0;
  std::vector<SpanRecord> records_;
};

}  // namespace evostore::obs
