#include "sim/flow.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace evostore::sim {

FlowScheduler::~FlowScheduler() {
  if (callback_scheduled_) sim_->cancel(pending_callback_);
}

PortId FlowScheduler::add_port(double capacity, std::string name) {
  assert(capacity > 0 && "port capacity must be positive");
  ports_.push_back(Port{capacity, std::move(name), 0, 0.0});
  return static_cast<PortId>(ports_.size() - 1);
}

CoTask<void> FlowScheduler::transfer(std::vector<PortId> path, double bytes) {
  assert(bytes >= 0);
  if (bytes <= 0 || path.empty()) co_return;
  for (PortId p : path) {
    assert(p < ports_.size());
    (void)p;
  }
  Event done(*sim_);
  advance();
  flows_.push_back(Flow{std::move(path), bytes, 0.0, &done});
  for (PortId p : flows_.back().path) ++ports_[p].active;
  reschedule();
  co_await done.wait();
}

void FlowScheduler::advance() {
  double now = sim_->now();
  double elapsed = now - last_update_;
  last_update_ = now;
  if (elapsed > 0) {
    for (auto& f : flows_) {
      double moved = f.rate * elapsed;
      if (moved > f.remaining) moved = f.remaining;
      f.remaining -= moved;
      for (PortId p : f.path) ports_[p].bytes += moved;
    }
  }
  // Complete finished flows (signal outside the loop body for clarity; the
  // Event schedules resumption through the event queue, never inline).
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->remaining <= kEpsBytes) {
      for (PortId p : it->path) --ports_[p].active;
      it->done->set();
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
}

void FlowScheduler::reschedule() {
  if (callback_scheduled_) {
    sim_->cancel(pending_callback_);
    callback_scheduled_ = false;
  }
  if (flows_.empty()) return;
  double next_dt = std::numeric_limits<double>::infinity();
  for (auto& f : flows_) {
    double rate = std::numeric_limits<double>::infinity();
    for (PortId p : f.path) {
      rate = std::min(rate, ports_[p].capacity / ports_[p].active);
    }
    f.rate = rate;
    next_dt = std::min(next_dt, f.remaining / rate);
  }
  assert(std::isfinite(next_dt));
  // Guard against floating-point stalls: when `now + next_dt` rounds back to
  // `now` (tiny residuals on large clocks), force the callback one ulp into
  // the future so advance() always observes nonzero elapsed time.
  double now = sim_->now();
  double at = now + next_dt;
  if (at <= now) at = std::nextafter(now, std::numeric_limits<double>::max());
  pending_callback_ = sim_->schedule_callback(at, [this] {
    callback_scheduled_ = false;
    advance();
    reschedule();
  });
  callback_scheduled_ = true;
}

}  // namespace evostore::sim
