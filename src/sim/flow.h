// Bandwidth modelling: fair-share flows over capacity-limited ports.
//
// A `Port` models a capacity-limited resource in bytes/second (a NIC
// direction, an OST's disk bandwidth, a metadata server's CPU). A *flow*
// pushes N bytes through an ordered set of ports simultaneously; its
// instantaneous rate is  min over its ports of (capacity / flows at port),
// i.e., each port divides its capacity equally among the flows crossing it
// and a flow is limited by its most contended port (processor sharing with
// a per-flow bottleneck).
//
// Rates are recomputed whenever a flow starts or finishes, so completion
// times reflect the full contention history — this is what gives the
// paper-shaped saturation curves under concurrency. The model is not fully
// max-min fair (capacity unused by bottlenecked flows is not redistributed);
// the simplification is conservative and documented in DESIGN.md.
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <vector>

#include "sim/simulation.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace evostore::sim {

using PortId = uint32_t;

class FlowScheduler {
 public:
  explicit FlowScheduler(Simulation& sim) : sim_(&sim) {}
  ~FlowScheduler();
  FlowScheduler(const FlowScheduler&) = delete;
  FlowScheduler& operator=(const FlowScheduler&) = delete;

  /// Register a port with `capacity` bytes/second. Capacity must be > 0.
  PortId add_port(double capacity, std::string name = {});

  double capacity(PortId port) const { return ports_[port].capacity; }
  const std::string& name(PortId port) const { return ports_[port].name; }
  /// Cumulative bytes carried through this port so far.
  double bytes_carried(PortId port) const { return ports_[port].bytes; }
  /// Number of flows currently crossing this port.
  int active_flows(PortId port) const { return ports_[port].active; }
  size_t total_active_flows() const { return flows_.size(); }

  /// Move `bytes` through every port in `path` simultaneously; completes
  /// when the last byte has crossed. Zero-byte transfers complete instantly.
  CoTask<void> transfer(std::vector<PortId> path, double bytes);

 private:
  struct Port {
    double capacity = 0;
    std::string name;
    int active = 0;
    double bytes = 0;  // cumulative carried
  };
  struct Flow {
    std::vector<PortId> path;
    double remaining = 0;
    double rate = 0;
    Event* done = nullptr;  // owned by the transfer coroutine frame
  };

  // Advance all flows to the current time, completing any that finished.
  void advance();
  // Recompute per-flow rates and (re)schedule the next completion callback.
  void reschedule();

  Simulation* sim_;
  std::vector<Port> ports_;
  std::list<Flow> flows_;
  double last_update_ = 0;
  uint64_t pending_callback_ = 0;
  bool callback_scheduled_ = false;

  // Completion slack: large transfers accumulate ~1e-6-byte rounding per
  // rate recomputation; a sub-byte epsilon absorbs it (all real transfers
  // are >= 1 byte).
  static constexpr double kEpsBytes = 1e-3;
};

}  // namespace evostore::sim
