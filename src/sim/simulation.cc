#include "sim/simulation.h"

#include <algorithm>

#include "common/log.h"

namespace evostore::sim {

namespace {

double sim_log_time(void* ctx) {
  return static_cast<Simulation*>(ctx)->now();
}

}  // namespace

Simulation::Simulation() {
  common::set_log_time_source(&sim_log_time, this);
}

Simulation::~Simulation() {
  // Clear only our own registration: with interleaved simulation lifetimes
  // the newest one keeps the clock, and a stale pointer is never left
  // behind.
  if (common::log_time_ctx() == this) {
    common::set_log_time_source(nullptr, nullptr);
  }
}

uint64_t Simulation::run(uint64_t max_steps) {
  uint64_t processed = 0;
  while (!queue_.empty() && processed < max_steps) {
    Entry e = queue_.top();
    queue_.pop();
    assert(e.t >= now_ && "event queue went backwards");
    now_ = e.t;
    ++processed;
    ++steps_;
    if (e.callback) {
      prune_cell(e.seq);
      if (!e.callback->cancelled) e.callback->fn();
    } else if (e.handle) {
      e.handle.resume();
    }
  }
  return processed;
}

void Simulation::prune_cell(uint64_t token) {
  auto it = std::find_if(cells_.begin(), cells_.end(),
                         [&](const auto& p) { return p.first == token; });
  if (it != cells_.end()) {
    std::swap(*it, cells_.back());
    cells_.pop_back();
  }
}

}  // namespace evostore::sim
