// Deterministic discrete-event simulation engine.
//
// A `Simulation` owns a virtual clock and an event queue. Simulated
// processes are C++20 coroutines (`CoTask<T>`, see task.h) that suspend on
// awaitables — `delay()`, synchronization primitives (sync.h), bandwidth
// flows (flow.h) — and are resumed by the event loop in strict
// (time, sequence-number) order, which makes every run exactly reproducible.
//
// Concurrency model: everything runs on ONE OS thread. "Parallelism" between
// simulated processes is interleaving at await points only, which mirrors how
// the paper's distributed processes interleave at I/O boundaries.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/task.h"

namespace evostore::sim {

/// Virtual time, in seconds.
using SimTime = double;

class Simulation;

namespace detail {

template <typename T>
struct FutureValue {
  std::optional<T> value;
  void set(T v) { value.emplace(std::move(v)); }
  T get() const { return *value; }
  bool has() const { return value.has_value(); }
};

template <>
struct FutureValue<void> {
  bool done = false;
  void set() { done = true; }
  void get() const {}
  bool has() const { return done; }
};

template <typename T>
struct FutureState {
  Simulation* sim = nullptr;
  FutureValue<T> value;
  std::exception_ptr exception;
  bool completed = false;
  std::vector<std::coroutine_handle<>> waiters;

  void complete();  // defined after Simulation
};

}  // namespace detail

/// Handle to the eventual result of a spawned coroutine. Copyable; many
/// coroutines may await the same future. `await_resume` returns a copy of
/// the result (results are small or internally shared in this codebase).
template <typename T>
class Future {
 public:
  Future() = default;
  explicit Future(std::shared_ptr<detail::FutureState<T>> s) : state_(std::move(s)) {}

  bool valid() const { return state_ != nullptr; }
  bool done() const { return state_ && state_->completed; }

  /// Result accessor for after the simulation has run (non-coroutine code).
  T get() const {
    assert(done());
    if (state_->exception) std::rethrow_exception(state_->exception);
    return state_->value.get();
  }

  bool await_ready() const noexcept { return done(); }
  void await_suspend(std::coroutine_handle<> h) { state_->waiters.push_back(h); }
  T await_resume() const { return get(); }

 private:
  std::shared_ptr<detail::FutureState<T>> state_;
};

class Simulation {
 public:
  /// Registers this simulation's clock as the logger's time source, so log
  /// lines emitted while it exists carry simulated time (see common/log.h).
  /// The destructor clears the registration — but only if it is still this
  /// instance's (a newer simulation may have taken over in the meantime).
  Simulation();
  ~Simulation();
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const { return now_; }
  uint64_t steps() const { return steps_; }

  /// Resume `h` at virtual time `t` (>= now).
  void schedule_handle(SimTime t, std::coroutine_handle<> h) {
    assert(t >= now_);
    queue_.push(Entry{t, next_seq_++, h, nullptr});
  }

  /// Run `fn` at virtual time `t`. Returns a token usable with `cancel`.
  uint64_t schedule_callback(SimTime t, std::function<void()> fn) {
    assert(t >= now_);
    auto cell = std::make_shared<CallbackCell>();
    cell->fn = std::move(fn);
    uint64_t token = next_seq_++;
    cells_.emplace_back(token, cell);
    queue_.push(Entry{t, token, {}, std::move(cell)});
    return token;
  }

  /// Cancel a pending callback (no-op if it already ran).
  void cancel(uint64_t token) {
    for (auto& [id, cell] : cells_) {
      if (id == token) {
        cell->cancelled = true;
        return;
      }
    }
  }

  /// Awaitable: suspend the current coroutine for `dt` virtual seconds.
  struct DelayAwaiter {
    Simulation* sim;
    SimTime wake_at;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      sim->schedule_handle(wake_at, h);
    }
    void await_resume() const noexcept {}
  };
  [[nodiscard]] DelayAwaiter delay(SimTime dt) {
    assert(dt >= 0);
    return DelayAwaiter{this, now_ + dt};
  }
  /// Reschedule at the current time (lets equal-time events interleave).
  [[nodiscard]] DelayAwaiter yield() { return delay(0); }

  /// Start `task` as an independent simulated process. The task begins from
  /// the event loop at the current virtual time (spawn itself never runs
  /// user code inline). Returns a Future for its result.
  template <typename T>
  Future<T> spawn(CoTask<T> task) {
    auto state = std::make_shared<detail::FutureState<T>>();
    state->sim = this;
    drive(std::move(task), state);
    return Future<T>(state);
  }

  /// Drain the event queue. Returns the number of events processed.
  uint64_t run(uint64_t max_steps = UINT64_MAX);

  /// Spawn `task`, drain the queue, and return the task's result.
  template <typename T>
  T run_until_complete(CoTask<T> task) {
    Future<T> f = spawn(std::move(task));
    run();
    assert(f.done() && "simulation drained but task still blocked (deadlock?)");
    return f.get();
  }

 private:
  struct CallbackCell {
    std::function<void()> fn;
    bool cancelled = false;
  };
  struct Entry {
    SimTime t;
    uint64_t seq;
    std::coroutine_handle<> handle;
    std::shared_ptr<CallbackCell> callback;
    bool operator>(const Entry& o) const {
      if (t != o.t) return t > o.t;
      return seq > o.seq;
    }
  };

  // Fire-and-forget driver coroutine: frame self-destroys at completion.
  struct Driver {
    struct promise_type {
      Driver get_return_object() {
        return Driver{std::coroutine_handle<promise_type>::from_promise(*this)};
      }
      std::suspend_always initial_suspend() noexcept { return {}; }
      std::suspend_never final_suspend() noexcept { return {}; }
      void return_void() {}
      void unhandled_exception() { std::terminate(); }
    };
    std::coroutine_handle<promise_type> handle;
  };

  template <typename T>
  void drive(CoTask<T> task, std::shared_ptr<detail::FutureState<T>> state) {
    Driver d = drive_impl(std::move(task), state);
    schedule_handle(now_, d.handle);
  }

  template <typename T>
  Driver drive_impl(CoTask<T> task, std::shared_ptr<detail::FutureState<T>> state) {
    try {
      if constexpr (std::is_void_v<T>) {
        co_await std::move(task);
        state->value.set();
      } else {
        state->value.set(co_await std::move(task));
      }
    } catch (...) {
      state->exception = std::current_exception();
    }
    state->complete();
  }

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t steps_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  // Live callback cells for cancellation lookup; pruned as they fire.
  std::vector<std::pair<uint64_t, std::shared_ptr<CallbackCell>>> cells_;

  void prune_cell(uint64_t token);
};

namespace detail {
template <typename T>
void FutureState<T>::complete() {
  completed = true;
  for (auto h : waiters) sim->schedule_handle(sim->now(), h);
  waiters.clear();
}
}  // namespace detail

}  // namespace evostore::sim
