#include "sim/stats.h"

#include <cassert>
#include <limits>
#include <numeric>

namespace evostore::sim {

double Samples::quantile(double q) {
  // Clamp rather than assert: with NDEBUG an out-of-range (or NaN) q would
  // otherwise index past the vector — q slightly above 1.0 from accumulated
  // float error is enough to trigger it.
  if (!(q >= 0.0)) q = 0.0;  // also catches NaN
  if (q > 1.0) q = 1.0;
  if (values_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  double idx = q * static_cast<double>(values_.size() - 1);
  auto lo = static_cast<size_t>(idx);
  size_t hi = std::min(lo + 1, values_.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

double Samples::mean() const {
  if (values_.empty()) return 0.0;
  return std::accumulate(values_.begin(), values_.end(), 0.0) /
         static_cast<double>(values_.size());
}

double Samples::stddev() const {
  if (values_.size() < 2) return 0.0;
  double m = mean();
  double ss = 0;
  for (double v : values_) ss += (v - m) * (v - m);
  return std::sqrt(ss / static_cast<double>(values_.size() - 1));
}

double TimeSeries::first_time_reaching(double threshold) const {
  for (const auto& p : points_) {
    if (p.v >= threshold) return p.t;
  }
  return -1.0;
}

double TimeSeries::max_value() const {
  double best = 0.0;
  for (const auto& p : points_) best = std::max(best, p.v);
  return best;
}

}  // namespace evostore::sim
