// Small statistics collectors used by benchmarks and experiment harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace evostore::sim {

/// Streaming mean / variance (Welford) with min/max.
class Accumulator {
 public:
  void add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  uint64_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double sum_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Sample collector with exact quantiles (stores all samples; intended for
/// experiment-sized data, not unbounded streams).
class Samples {
 public:
  void add(double x) {
    values_.push_back(x);
    sorted_ = false;
  }
  size_t count() const { return values_.size(); }
  /// Linear-interpolated quantile. `q` is clamped into [0, 1] (NaN behaves
  /// as 0), so an out-of-range request can never index out of bounds; an
  /// empty collector returns 0.
  double quantile(double q);
  double mean() const;
  double stddev() const;
  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;
  bool sorted_ = false;
};

/// (time, value) series, e.g., accuracy-over-time curves.
class TimeSeries {
 public:
  void add(double t, double v) { points_.push_back({t, v}); }
  size_t size() const { return points_.size(); }
  struct Point {
    double t;
    double v;
  };
  const std::vector<Point>& points() const { return points_; }

  /// First time at which the running maximum of `v` reaches `threshold`,
  /// or a negative value if never reached.
  double first_time_reaching(double threshold) const;

  /// Running maximum value over the whole series (0 when empty).
  double max_value() const;

 private:
  std::vector<Point> points_;
};

}  // namespace evostore::sim
