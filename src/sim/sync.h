// Synchronization primitives for simulated processes.
//
// All primitives are FIFO-fair and resume waiters through the simulation's
// event queue (never inline), so wake-up order is deterministic and a
// release never re-enters user code.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <vector>

#include "sim/simulation.h"

namespace evostore::sim {

/// One-shot event: processes wait until some process sets it.
class Event {
 public:
  explicit Event(Simulation& sim) : sim_(&sim) {}

  bool is_set() const { return set_; }

  void set() {
    if (set_) return;
    set_ = true;
    for (auto h : waiters_) sim_->schedule_handle(sim_->now(), h);
    waiters_.clear();
  }

  struct Awaiter {
    Event* ev;
    bool await_ready() const noexcept { return ev->set_; }
    void await_suspend(std::coroutine_handle<> h) { ev->waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };
  [[nodiscard]] Awaiter wait() { return Awaiter{this}; }

 private:
  Simulation* sim_;
  bool set_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Counted semaphore with FIFO service (a queued large request blocks later
/// smaller ones, so it is not starved).
class Semaphore {
 public:
  Semaphore(Simulation& sim, int64_t initial) : sim_(&sim), count_(initial) {}

  int64_t available() const { return count_; }
  size_t queue_length() const { return waiters_.size(); }

  struct Awaiter {
    Semaphore* sem;
    int64_t n;
    bool queued = false;
    bool await_ready() const noexcept {
      return sem->waiters_.empty() && sem->count_ >= n;
    }
    void await_suspend(std::coroutine_handle<> h) {
      queued = true;
      sem->waiters_.push_back({n, h});
    }
    void await_resume() noexcept {
      // Queued acquisitions were already debited by drain(); the fast path
      // debits here.
      if (!queued) sem->count_ -= n;
    }
  };

  /// Acquire `n` units (suspends until available).
  [[nodiscard]] Awaiter acquire(int64_t n = 1) {
    assert(n >= 0);
    return Awaiter{this, n};
  }

  /// Non-blocking acquire: succeeds only if it would not queue.
  bool try_acquire(int64_t n = 1) {
    if (!waiters_.empty() || count_ < n) return false;
    count_ -= n;
    return true;
  }

  /// Return `n` units and wake eligible waiters in FIFO order.
  void release(int64_t n = 1) {
    count_ += n;
    drain();
  }

 private:
  void drain() {
    std::vector<std::coroutine_handle<>> resumes;
    while (!waiters_.empty() && count_ >= waiters_.front().n) {
      auto [need, handle] = waiters_.front();
      waiters_.pop_front();
      count_ -= need;
      resumes.push_back(handle);
    }
    for (auto h : resumes) sim_->schedule_handle(sim_->now(), h);
  }

  friend struct Awaiter;
  Simulation* sim_;
  int64_t count_;
  struct Waiter {
    int64_t n;
    std::coroutine_handle<> handle;
  };
  std::deque<Waiter> waiters_;
};

/// Mutual exclusion. `co_await mu.lock();` ... `mu.unlock();`
class Mutex {
 public:
  explicit Mutex(Simulation& sim) : sem_(sim, 1) {}
  [[nodiscard]] Semaphore::Awaiter lock() { return sem_.acquire(1); }
  /// Non-blocking lock attempt.
  bool try_lock_now() { return sem_.try_acquire(1); }
  void unlock() { sem_.release(1); }
  bool locked() const { return sem_.available() == 0; }

 private:
  Semaphore sem_;
};

/// Reader/writer lock, FIFO-fair across both kinds (a queued writer blocks
/// later readers; matches the paper's Redis-Queries baseline semantics).
class RwLock {
 public:
  explicit RwLock(Simulation& sim) : sim_(&sim) {}

  struct Awaiter {
    RwLock* lk;
    bool writer;
    bool queued = false;
    bool await_ready() const noexcept {
      if (!lk->queue_.empty()) return false;
      return writer ? (lk->readers_ == 0 && !lk->writer_held_)
                    : !lk->writer_held_;
    }
    void await_suspend(std::coroutine_handle<> h) {
      queued = true;
      lk->queue_.push_back({writer, h});
    }
    void await_resume() noexcept {
      // Queued grants had their state applied by drain(); the fast path
      // applies here.
      if (!queued) {
        if (writer) {
          lk->writer_held_ = true;
        } else {
          ++lk->readers_;
        }
      }
    }
  };

  [[nodiscard]] Awaiter lock_shared() { return Awaiter{this, false}; }
  [[nodiscard]] Awaiter lock_exclusive() { return Awaiter{this, true}; }

  void unlock_shared() {
    assert(readers_ > 0);
    --readers_;
    drain();
  }
  void unlock_exclusive() {
    assert(writer_held_);
    writer_held_ = false;
    drain();
  }

  int readers() const { return readers_; }
  bool writer_held() const { return writer_held_; }

 private:
  void drain() {
    std::vector<std::coroutine_handle<>> resumes;
    while (!queue_.empty()) {
      auto [writer, handle] = queue_.front();
      if (writer) {
        if (readers_ != 0 || writer_held_) break;
        writer_held_ = true;
        queue_.pop_front();
        resumes.push_back(handle);
        break;  // an exclusive grant blocks everything behind it
      }
      ++readers_;
      queue_.pop_front();
      resumes.push_back(handle);
    }
    for (auto h : resumes) sim_->schedule_handle(sim_->now(), h);
  }

  friend struct Awaiter;
  Simulation* sim_;
  int readers_ = 0;
  bool writer_held_ = false;
  struct Waiter {
    bool writer;
    std::coroutine_handle<> handle;
  };
  std::deque<Waiter> queue_;
};

/// Cyclic barrier for `parties` processes. The last arriver does not
/// suspend; it releases the whole generation.
class Barrier {
 public:
  Barrier(Simulation& sim, int parties) : sim_(&sim), parties_(parties) {
    assert(parties >= 1);
  }

  struct Awaiter {
    Barrier* b;
    bool await_ready() noexcept {
      if (b->arrived_ + 1 < b->parties_) return false;
      // Last arriver: open the barrier for this generation.
      b->arrived_ = 0;
      for (auto h : b->waiters_) b->sim_->schedule_handle(b->sim_->now(), h);
      b->waiters_.clear();
      return true;
    }
    void await_suspend(std::coroutine_handle<> h) {
      ++b->arrived_;
      b->waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };
  [[nodiscard]] Awaiter arrive_and_wait() { return Awaiter{this}; }

  int waiting() const { return arrived_; }

 private:
  friend struct Awaiter;
  Simulation* sim_;
  int parties_;
  int arrived_ = 0;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace evostore::sim
