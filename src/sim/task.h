// Coroutine task types for the discrete-event simulation.
//
// `CoTask<T>` is a lazily-started coroutine: it begins executing when first
// awaited and resumes its awaiter on completion via symmetric transfer.
// Sequential composition is just `co_await subroutine();`.
//
// Fan-out/parallel composition goes through `Simulation::spawn`, which drives
// a CoTask eagerly (from the event loop) and returns a `Future<T>` that any
// number of coroutines can await. See simulation.h.
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace evostore::sim {

template <typename T>
class CoTask;

namespace detail {

template <typename T>
struct PromiseStorage {
  std::optional<T> value;
  void return_value(T v) { value.emplace(std::move(v)); }
  T take() { return std::move(*value); }
};

template <>
struct PromiseStorage<void> {
  void return_void() {}
  void take() {}
};

template <typename T>
struct CoTaskPromise : PromiseStorage<T> {
  std::exception_ptr exception;
  std::coroutine_handle<> continuation;

  CoTask<T> get_return_object();
  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<CoTaskPromise<T>> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() { exception = std::current_exception(); }
};

}  // namespace detail

/// Lazily-started coroutine returning T. Move-only; owns the coroutine frame.
template <typename T>
class [[nodiscard]] CoTask {
 public:
  using promise_type = detail::CoTaskPromise<T>;
  using handle_type = std::coroutine_handle<promise_type>;

  CoTask() = default;
  explicit CoTask(handle_type h) : handle_(h) {}
  CoTask(CoTask&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  CoTask& operator=(CoTask&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  CoTask(const CoTask&) = delete;
  CoTask& operator=(const CoTask&) = delete;
  ~CoTask() { destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }

  // Awaiter interface: start the coroutine, resume awaiter on completion.
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiting) {
    assert(handle_ && !handle_.done());
    handle_.promise().continuation = awaiting;
    return handle_;
  }
  T await_resume() {
    auto& p = handle_.promise();
    if (p.exception) std::rethrow_exception(p.exception);
    return p.take();
  }

  /// Release ownership of the frame (used by Simulation::spawn's driver).
  handle_type release() { return std::exchange(handle_, {}); }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  handle_type handle_;
};

namespace detail {
template <typename T>
CoTask<T> CoTaskPromise<T>::get_return_object() {
  return CoTask<T>(std::coroutine_handle<CoTaskPromise<T>>::from_promise(*this));
}
}  // namespace detail

}  // namespace evostore::sim
