#include "storage/chunk_store.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/serde.h"

namespace evostore::storage {

ChunkStore::ChunkStore(KvStore* backend) : backend_(backend) {}

std::string ChunkStore::record_key(uint64_t seq) {
  return "chunk/" + std::to_string(seq);
}

void ChunkStore::persist(const common::Hash128& digest, const Chunk& chunk) {
  if (backend_ == nullptr) return;
  // Record layout: digest (hi u64, lo u64), modeled cost, payload bytes.
  // The digest lives in the value, not the key — a numeric key avoids
  // parsing 32 hex digits on restore, and record identity does not matter
  // (restore re-keys by the digest inside).
  common::Serializer s;
  s.u64(digest.hi);
  s.u64(digest.lo);
  s.u64(chunk.cost);
  s.bytes(chunk.bytes);
  (void)backend_->put(record_key(chunk.record_seq),
                      common::Buffer::dense(std::move(s).take()));
}

bool ChunkStore::add_ref(const common::Hash128& digest,
                         std::span<const std::byte> bytes, uint64_t cost) {
  auto it = chunks_.find(digest);
  if (it != chunks_.end()) {
    ++it->second.refs;
    ++stats_.hits;
    stats_.saved_bytes += cost;
    return false;
  }
  Chunk chunk;
  chunk.bytes.assign(bytes.begin(), bytes.end());
  chunk.cost = cost;
  chunk.refs = 1;
  chunk.record_seq = ++record_seq_;
  physical_bytes_ += cost;
  payload_bytes_ += chunk.bytes.size();
  ++stats_.misses;
  persist(digest, chunk);
  chunks_.emplace(digest, std::move(chunk));
  return true;
}

bool ChunkStore::add_ref_existing(const common::Hash128& digest) {
  auto it = chunks_.find(digest);
  if (it == chunks_.end()) return false;
  ++it->second.refs;
  return true;
}

uint64_t ChunkStore::release(const common::Hash128& digest) {
  auto it = chunks_.find(digest);
  if (it == chunks_.end()) return 0;
  if (--it->second.refs > 0) return 0;
  uint64_t cost = it->second.cost;
  physical_bytes_ -= cost;
  payload_bytes_ -= it->second.bytes.size();
  ++stats_.freed;
  if (backend_ != nullptr) {
    (void)backend_->erase(record_key(it->second.record_seq));
  }
  chunks_.erase(it);
  return cost;
}

const ChunkStore::Chunk* ChunkStore::find(
    const common::Hash128& digest) const {
  auto it = chunks_.find(digest);
  return it == chunks_.end() ? nullptr : &it->second;
}

void ChunkStore::clear() {
  chunks_.clear();
  physical_bytes_ = 0;
  payload_bytes_ = 0;
}

bool ChunkStore::install(const common::Hash128& digest, common::Bytes bytes,
                         uint64_t cost, uint64_t record_seq) {
  Chunk chunk;
  chunk.bytes = std::move(bytes);
  chunk.cost = cost;
  chunk.refs = 0;
  chunk.record_seq = record_seq;
  auto [it, inserted] = chunks_.emplace(digest, std::move(chunk));
  if (!inserted) return false;
  physical_bytes_ += cost;
  payload_bytes_ += it->second.bytes.size();
  record_seq_ = std::max(record_seq_, record_seq);
  return true;
}

size_t ChunkStore::drop_unreferenced() {
  size_t dropped = 0;
  for (auto it = chunks_.begin(); it != chunks_.end();) {
    if (it->second.refs > 0) {
      ++it;
      continue;
    }
    physical_bytes_ -= it->second.cost;
    payload_bytes_ -= it->second.bytes.size();
    if (backend_ != nullptr) {
      (void)backend_->erase(record_key(it->second.record_seq));
    }
    it = chunks_.erase(it);
    ++dropped;
  }
  return dropped;
}

}  // namespace evostore::storage
