// ChunkStore: a per-provider content-addressed store of deduplicated
// payload chunks.
//
// The owner-map + delta-codec layers deduplicate tensors only along ancestor
// edges; identical content appearing in *unrelated* models (shared pretrained
// backbones, repeated NAS cells, zero-initialized heads) is stored once per
// lineage. The chunk store recovers that cross-lineage redundancy: segment
// payloads are split with content-defined chunking (compress/chunker.h),
// each chunk is keyed by a 128-bit content digest, and a provider stores
// every distinct chunk exactly once with a reference count.
//
// Lifecycle composition with the segment GC: each kChunked envelope holds
// one reference on every manifest chunk; the reference is taken when the
// provider chunks an incoming put and released when the envelope itself is
// freed by the refcount GC — which in turn only happens once every owner-map
// reference AND every delta-base dependency on the segment is gone. A chunk
// therefore dies exactly when the last segment (or delta base) whose payload
// contains it is retired.
//
// Costs: chunks carry two sizes. `bytes` is the real payload byte count (the
// serialized descriptor bytes in simulation); `cost` is the chunk's modeled
// physical footprint — its proportional share of the envelope's
// physical_bytes, so dedup savings are priced at the same modeled scale as
// the rest of the storage accounting (a deduped 4 GB backbone saves 4 GB,
// not 40 descriptor bytes). Per-envelope chunk costs telescope exactly:
// they always sum to the envelope's physical_bytes.
//
// Persistence: with a backend attached, a newly stored chunk writes one
// `chunk/<seq>` record (digest + cost + bytes) through to it and the record
// is erased when the chunk is freed. Reference counts are NOT persisted —
// after a crash they are recomputed from the surviving segment manifests
// (Provider::restore_from_backend installs the records via `install`, then
// re-references them via `add_ref_existing`, then calls
// `drop_unreferenced`). Cumulative counters survive restarts, mirroring
// ProviderStats (they model external monitoring).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>

#include "common/buffer.h"
#include "common/hash.h"
#include "storage/kv_store.h"

namespace evostore::storage {

/// Cumulative chunk-store counters (monotone; survive restart()).
struct ChunkStoreStats {
  /// add_ref calls deduplicated against an already-stored chunk.
  uint64_t hits = 0;
  /// add_ref calls that stored a new chunk.
  uint64_t misses = 0;
  /// Chunks freed because their last reference was released.
  uint64_t freed = 0;
  /// Modeled physical bytes that dedup hits avoided storing.
  uint64_t saved_bytes = 0;
};

class ChunkStore {
 public:
  struct Chunk {
    common::Bytes bytes;   // real payload bytes
    uint64_t cost = 0;     // modeled physical footprint
    int32_t refs = 0;
    uint64_t record_seq = 0;  // backend record id (stable across refcounts)
  };

  /// `backend` (optional, non-owning) receives one write-through record per
  /// stored chunk; nullptr keeps the store purely in-memory.
  explicit ChunkStore(KvStore* backend = nullptr);

  /// Add one reference to the chunk identified by `digest`, storing
  /// (`bytes`, `cost`) if it is not yet present. Returns true when the chunk
  /// was newly stored (miss), false on a dedup hit. On a hit, `cost` is the
  /// modeled footprint the caller avoided storing (counted into
  /// stats().saved_bytes); the stored chunk keeps its original cost.
  bool add_ref(const common::Hash128& digest, std::span<const std::byte> bytes,
               uint64_t cost);

  /// Add one reference to a chunk that must already be present (restore
  /// path: manifests re-reference installed records). Returns false — and
  /// leaves the store untouched — when the chunk is absent. Does not count a
  /// hit (it is not a dedup event).
  bool add_ref_existing(const common::Hash128& digest);

  /// Release one reference. Frees the chunk — and erases its backend record
  /// — when the count reaches zero. Returns the freed chunk's modeled cost,
  /// or 0 while references remain (or for an unknown digest).
  uint64_t release(const common::Hash128& digest);

  /// Lookup; nullptr when absent.
  const Chunk* find(const common::Hash128& digest) const;

  // ---- restore (driven by Provider::restore_from_backend) ----

  /// Drop all live chunks and their byte accounting; cumulative stats
  /// survive. Backend records are left untouched (they are the recovery
  /// source).
  void clear();
  /// Install a record recovered from the backend with zero references.
  /// Returns false (ignoring the record) on a duplicate digest.
  bool install(const common::Hash128& digest, common::Bytes bytes,
               uint64_t cost, uint64_t record_seq);
  /// Erase every chunk still at zero references (and its backend record):
  /// the end-of-restore sweep for records whose manifests did not survive.
  /// Returns the number of chunks dropped.
  size_t drop_unreferenced();
  /// Highest record id observed (install/new-store), for seq continuation.
  uint64_t record_seq() const { return record_seq_; }
  void set_record_seq(uint64_t seq) { record_seq_ = seq; }

  // ---- introspection ----
  size_t chunk_count() const { return chunks_.size(); }
  /// Modeled physical bytes of all live chunks (deduped at-rest footprint).
  uint64_t physical_bytes() const { return physical_bytes_; }
  /// Real payload bytes resident across live chunks.
  uint64_t payload_bytes() const { return payload_bytes_; }
  const ChunkStoreStats& stats() const { return stats_; }

  /// Backend key of a chunk record ("chunk/<seq>").
  static std::string record_key(uint64_t seq);

 private:
  void persist(const common::Hash128& digest, const Chunk& chunk);

  // Ordered by digest so iteration (drop_unreferenced, debugging dumps) is
  // deterministic regardless of insertion order.
  std::map<common::Hash128, Chunk> chunks_;
  KvStore* backend_ = nullptr;
  uint64_t physical_bytes_ = 0;
  uint64_t payload_bytes_ = 0;
  uint64_t record_seq_ = 0;
  ChunkStoreStats stats_;
};

}  // namespace evostore::storage
