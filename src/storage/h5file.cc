#include "storage/h5file.h"

#include "common/serde.h"

namespace evostore::storage {

using common::Buffer;
using common::Result;
using common::Status;

namespace {
constexpr uint32_t kMagic = 0x45564835;  // "EVH5"
constexpr uint32_t kVersion = 1;
}  // namespace

Status H5Writer::put_dataset(const std::string& path, model::Tensor tensor) {
  for (const auto& e : datasets_) {
    if (e.path == path) {
      return Status::AlreadyExists("dataset '" + path + "'");
    }
  }
  datasets_.push_back(Entry{path, std::move(tensor)});
  return Status::Ok();
}

void H5Writer::put_attr(const std::string& key, const std::string& value) {
  attrs_[key] = value;
}

std::vector<Buffer> H5Writer::finish() && {
  common::Serializer toc;
  toc.u32(kMagic);
  toc.u32(kVersion);
  toc.u64(attrs_.size());
  for (const auto& [k, v] : attrs_) {
    toc.str(k);
    toc.str(v);
  }
  toc.u64(datasets_.size());
  for (const auto& e : datasets_) {
    toc.str(e.path);
    e.tensor.spec().serialize(toc);
    toc.u64(e.tensor.nbytes());
  }
  std::vector<Buffer> extents;
  extents.reserve(1 + datasets_.size());
  extents.push_back(Buffer::dense(std::move(toc).take()));
  for (auto& e : datasets_) {
    extents.push_back(e.tensor.data());
  }
  return extents;
}

Result<H5Reader> H5Reader::open(std::vector<Buffer> extents) {
  if (extents.empty()) return Status::Corruption("empty file image");
  Buffer toc_buf = extents[0].materialize();
  common::Deserializer d(toc_buf.dense_span());
  if (d.u32() != kMagic) return Status::Corruption("bad magic");
  if (d.u32() != kVersion) return Status::Corruption("unsupported version");
  H5Reader reader;
  uint64_t n_attrs = d.u64();
  if (!d.ok()) return Status::Corruption("bad TOC header");
  for (uint64_t i = 0; i < n_attrs && d.ok(); ++i) {
    std::string k = d.str();
    std::string v = d.str();
    reader.attrs_[k] = v;
  }
  uint64_t n_datasets = d.u64();
  if (!d.ok()) return Status::Corruption("bad dataset directory");
  if (extents.size() != 1 + n_datasets) {
    return Status::Corruption("extent count does not match TOC");
  }
  for (uint64_t i = 0; i < n_datasets && d.ok(); ++i) {
    std::string path = d.str();
    model::TensorSpec spec = model::TensorSpec::deserialize(d);
    uint64_t nbytes = d.u64();
    if (!d.ok()) break;
    if (extents[1 + i].size() != nbytes || spec.nbytes() != nbytes) {
      return Status::Corruption("dataset '" + path + "' size mismatch");
    }
    reader.order_.push_back(path);
    reader.datasets_[path] = Entry{std::move(spec), extents[1 + i]};
  }
  EVO_RETURN_IF_ERROR(d.finish());
  return reader;
}

std::vector<std::string> H5Reader::dataset_paths() const { return order_; }

bool H5Reader::has_dataset(const std::string& path) const {
  return datasets_.find(path) != datasets_.end();
}

Result<model::Tensor> H5Reader::dataset(const std::string& path) const {
  auto it = datasets_.find(path);
  if (it == datasets_.end()) {
    return Status::NotFound("dataset '" + path + "'");
  }
  return model::Tensor(it->second.spec, it->second.payload);
}

Result<std::string> H5Reader::attr(const std::string& key) const {
  auto it = attrs_.find(key);
  if (it == attrs_.end()) return Status::NotFound("attr '" + key + "'");
  return it->second;
}

}  // namespace evostore::storage
