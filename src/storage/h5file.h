// H5-lite: a hierarchical container format in the spirit of HDF5/Keras
// weight files, used by the HDF5+PFS baseline repository.
//
// Layout: a serialized table of contents (attributes + dataset directory
// with paths, tensor specs and payload sizes) followed by one payload extent
// per dataset. The in-memory image is a scatter/gather list (`extents()`),
// so multi-GB synthetic tensors are "written to a file" without being
// materialized — extent 0 is the TOC, extent 1+i is dataset i's payload.
//
// Group structure is implicit in dataset paths ("/model_weights/dense_3/
// kernel:0"), matching how Keras lays out weight files.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/status.h"
#include "model/tensor.h"

namespace evostore::storage {

class H5Writer {
 public:
  /// Add a dataset at `path` (must be unique).
  common::Status put_dataset(const std::string& path, model::Tensor tensor);

  /// Attach a string attribute to the file root.
  void put_attr(const std::string& key, const std::string& value);

  /// Number of datasets added so far.
  size_t dataset_count() const { return datasets_.size(); }

  /// Produce the file image: extents[0] is the TOC; extents[1+i] is dataset
  /// i's payload buffer. Total logical file size = sum of extent sizes.
  std::vector<common::Buffer> finish() &&;

 private:
  struct Entry {
    std::string path;
    model::Tensor tensor;
  };
  std::vector<Entry> datasets_;
  std::map<std::string, std::string> attrs_;
};

class H5Reader {
 public:
  /// Parse a file image produced by H5Writer::finish (or read back from the
  /// PFS). Fails with Corruption on malformed input.
  static common::Result<H5Reader> open(std::vector<common::Buffer> extents);

  std::vector<std::string> dataset_paths() const;
  bool has_dataset(const std::string& path) const;
  common::Result<model::Tensor> dataset(const std::string& path) const;
  common::Result<std::string> attr(const std::string& key) const;

  size_t dataset_count() const { return order_.size(); }

 private:
  struct Entry {
    model::TensorSpec spec;
    common::Buffer payload;
  };
  std::map<std::string, Entry> datasets_;
  std::vector<std::string> order_;
  std::map<std::string, std::string> attrs_;
};

}  // namespace evostore::storage
