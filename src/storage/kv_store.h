// Key-value store abstraction used by providers as their persistence
// backend (paper §4.3: "an extensible key-value store abstraction ...
// either in-memory [or] persistently using underlying backends such as C++
// synchronized memory pools or RocksDB").
//
// Implementations: MemKv (sharded in-memory, storage/mem_kv.h) and LogKv
// (file-backed log-structured store, storage/log_kv.h).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/buffer.h"
#include "common/status.h"

namespace evostore::storage {

using common::Buffer;
using common::Result;
using common::Status;

class KvStore {
 public:
  virtual ~KvStore() = default;

  /// Insert or overwrite.
  virtual Status put(std::string_view key, Buffer value) = 0;

  /// NotFound if absent.
  virtual Result<Buffer> get(std::string_view key) const = 0;

  /// NotFound if absent.
  virtual Status erase(std::string_view key) = 0;

  virtual bool contains(std::string_view key) const = 0;
  virtual size_t size() const = 0;

  /// All keys in lexicographic order (snapshot).
  virtual std::vector<std::string> keys() const = 0;

  /// Sum of logical value sizes currently stored.
  virtual size_t value_bytes() const = 0;
};

}  // namespace evostore::storage
