// Key-value store abstraction used by providers as their persistence
// backend (paper §4.3: "an extensible key-value store abstraction ...
// either in-memory [or] persistently using underlying backends such as C++
// synchronized memory pools or RocksDB").
//
// Implementations: MemKv (sharded in-memory, storage/mem_kv.h) and LogKv
// (file-backed log-structured store, storage/log_kv.h).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/buffer.h"
#include "common/status.h"

namespace evostore::storage {

using common::Buffer;
using common::Result;
using common::Status;

/// Bytes a value actually occupies in the store. Synthetic buffers are
/// persisted as their (seed, size) descriptor — a tag byte plus two varints —
/// so their footprint is a small constant regardless of logical size. Dense
/// buffers cost their content.
inline size_t physical_value_size(const Buffer& v) {
  constexpr size_t kSyntheticDescriptorBytes = 1 + 8 + 8;
  return v.is_synthetic() ? kSyntheticDescriptorBytes : v.size();
}

class KvStore {
 public:
  virtual ~KvStore() = default;

  /// Insert or overwrite.
  virtual Status put(std::string_view key, Buffer value) = 0;

  /// NotFound if absent.
  virtual Result<Buffer> get(std::string_view key) const = 0;

  /// NotFound if absent.
  virtual Status erase(std::string_view key) = 0;

  virtual bool contains(std::string_view key) const = 0;
  virtual size_t size() const = 0;

  /// All keys in lexicographic order (snapshot).
  virtual std::vector<std::string> keys() const = 0;

  /// Sum of *physical* value footprints currently stored (what the values
  /// occupy in memory or on disk: post-compression payloads, descriptor cost
  /// for synthetic buffers). See `physical_value_size`.
  virtual size_t value_bytes() const = 0;

  /// Sum of *logical* value sizes currently stored (`Buffer::size()` — the
  /// uncompressed byte count each value represents).
  virtual size_t logical_value_bytes() const = 0;
};

}  // namespace evostore::storage
