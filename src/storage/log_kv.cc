#include "storage/log_kv.h"

#include <algorithm>
#include <cstring>

#include "common/hash.h"
#include "common/log.h"
#include "common/serde.h"

namespace evostore::storage {

namespace {

// Record layout: [u32 payload_len][u64 checksum][payload]
// payload = serde{ u8 tombstone, str key, (buffer value if !tombstone) }
constexpr size_t kHeaderLen = 4 + 8;

void put_u32(unsigned char* p, uint32_t v) { std::memcpy(p, &v, 4); }
void put_u64(unsigned char* p, uint64_t v) { std::memcpy(p, &v, 8); }
uint32_t get_u32(const unsigned char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
uint64_t get_u64(const unsigned char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace

Result<std::unique_ptr<LogKv>> LogKv::open(std::filesystem::path dir,
                                           LogKvOptions options) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("create_directories(" + dir.string() +
                           "): " + ec.message());
  }
  auto kv = std::unique_ptr<LogKv>(new LogKv(std::move(dir), options));
  EVO_RETURN_IF_ERROR(kv->load());
  // Restart-time compaction sweep: the load scan has just computed the dead
  // share; rewrite the log now if it crossed the configured ratio.
  if (options.compact_on_open_ratio > 0 && kv->dead_bytes() > 0 &&
      static_cast<double>(kv->dead_bytes()) >=
          options.compact_on_open_ratio *
              static_cast<double>(kv->disk_bytes())) {
    auto reclaimed = kv->compact();
    if (!reclaimed.ok()) return reclaimed.status();
  }
  return kv;
}

LogKv::~LogKv() {
  if (active_file_ != nullptr) std::fclose(active_file_);
}

std::filesystem::path LogKv::segment_path(uint64_t id) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%08llu.evl",
                static_cast<unsigned long long>(id));
  return dir_ / name;
}

Status LogKv::load() {
  // Discover segments.
  std::vector<uint64_t> ids;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    auto name = entry.path().filename().string();
    if (name.size() == 12 && name.ends_with(".evl")) {
      ids.push_back(std::strtoull(name.c_str(), nullptr, 10));
    }
  }
  std::sort(ids.begin(), ids.end());

  for (size_t si = 0; si < ids.size(); ++si) {
    uint64_t id = ids[si];
    bool last = (si + 1 == ids.size());
    std::FILE* f = std::fopen(segment_path(id).string().c_str(), "rb");
    if (f == nullptr) {
      return Status::IoError("open segment " + segment_path(id).string());
    }
    uint64_t offset = 0;
    std::vector<unsigned char> payload;
    while (true) {
      unsigned char header[kHeaderLen];
      size_t got = std::fread(header, 1, kHeaderLen, f);
      if (got == 0) break;  // clean end
      uint32_t plen = got == kHeaderLen ? get_u32(header) : 0;
      bool ok = got == kHeaderLen;
      if (ok) {
        payload.resize(plen);
        ok = std::fread(payload.data(), 1, plen, f) == plen;
      }
      if (ok) {
        ok = common::fnv1a64(payload.data(), plen) == get_u64(header + 4);
      }
      common::Deserializer d(
          std::span<const std::byte>(reinterpret_cast<const std::byte*>(payload.data()), ok ? plen : 0));
      bool tombstone = false;
      std::string key;
      Buffer value;
      if (ok) {
        tombstone = d.boolean();
        key = d.str();
        if (!tombstone) value = d.buffer();
        ok = d.ok();
      }
      if (!ok) {
        std::fclose(f);
        if (last) {
          // Torn tail from a crash: truncate and continue.
          EVO_WARN << "LogKv: truncating torn tail of segment " << id
                   << " at offset " << offset;
          std::filesystem::resize_file(segment_path(id), offset);
          f = nullptr;
          break;
        }
        return Status::Corruption("corrupt record in non-final segment " +
                                  std::to_string(id));
      }
      uint64_t record_len = kHeaderLen + plen;
      // Apply to index.
      auto it = index_.find(key);
      if (it != index_.end()) {
        dead_bytes_ += it->second.length;
        // The old value is no longer live.
      }
      if (tombstone) {
        if (it != index_.end()) {
          // Recompute live bytes lazily: we cannot know the old value size
          // without re-reading; track via read.
          std::string dummy;
          auto old = read_record(it->second, &dummy);
          if (old.ok()) {
            live_logical_bytes_ -= old.value().size();
            live_physical_bytes_ -= physical_value_size(old.value());
          }
          index_.erase(it);
        }
        dead_bytes_ += record_len;  // the tombstone itself is dead weight
      } else {
        if (it != index_.end()) {
          std::string dummy;
          auto old = read_record(it->second, &dummy);
          if (old.ok()) {
            live_logical_bytes_ -= old.value().size();
            live_physical_bytes_ -= physical_value_size(old.value());
          }
          it->second = Location{id, offset, record_len};
        } else {
          index_.emplace(key, Location{id, offset, record_len});
        }
        live_logical_bytes_ += value.size();
        live_physical_bytes_ += physical_value_size(value);
      }
      offset += record_len;
    }
    if (f != nullptr) std::fclose(f);
    segments_[id] = std::filesystem::file_size(segment_path(id));
  }

  active_segment_ = ids.empty() ? 0 : ids.back();
  if (ids.empty()) {
    EVO_RETURN_IF_ERROR(roll_segment());
  } else {
    active_file_ =
        std::fopen(segment_path(active_segment_).string().c_str(), "ab");
    if (active_file_ == nullptr) {
      return Status::IoError("open active segment for append");
    }
    active_offset_ = segments_[active_segment_];
  }
  return Status::Ok();
}

Status LogKv::roll_segment() {
  if (active_file_ != nullptr) {
    std::fclose(active_file_);
    active_file_ = nullptr;
  }
  ++active_segment_;
  active_file_ =
      std::fopen(segment_path(active_segment_).string().c_str(), "wb");
  if (active_file_ == nullptr) {
    return Status::IoError("create segment " +
                           segment_path(active_segment_).string());
  }
  active_offset_ = 0;
  segments_[active_segment_] = 0;
  return Status::Ok();
}

Status LogKv::append_record(std::string_view key, const Buffer* value,
                            Location* loc) {
  common::Serializer s;
  s.boolean(value == nullptr);
  s.str(key);
  if (value != nullptr) s.buffer(*value);
  common::Bytes payload = std::move(s).take();

  unsigned char header[kHeaderLen];
  put_u32(header, static_cast<uint32_t>(payload.size()));
  put_u64(header + 4, common::fnv1a64(payload.data(), payload.size()));

  if (active_offset_ >= options_.segment_max_bytes) {
    EVO_RETURN_IF_ERROR(roll_segment());
  }
  if (std::fwrite(header, 1, kHeaderLen, active_file_) != kHeaderLen ||
      std::fwrite(payload.data(), 1, payload.size(), active_file_) !=
          payload.size()) {
    return Status::IoError("append failed");
  }
  std::fflush(active_file_);
  if (options_.sync_every_write) {
    // fflush + OS sync; fileno is POSIX.
    // (fdatasync omitted on purpose in tests for speed.)
  }
  uint64_t record_len = kHeaderLen + payload.size();
  if (loc != nullptr) {
    *loc = Location{active_segment_, active_offset_, record_len};
  }
  active_offset_ += record_len;
  segments_[active_segment_] = active_offset_;
  return Status::Ok();
}

Result<Buffer> LogKv::read_record(const Location& loc,
                                  std::string* key_out) const {
  std::FILE* f = std::fopen(segment_path(loc.segment).string().c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("open segment " + std::to_string(loc.segment));
  }
  std::vector<unsigned char> record(loc.length);
  bool ok = std::fseek(f, static_cast<long>(loc.offset), SEEK_SET) == 0 &&
            std::fread(record.data(), 1, loc.length, f) == loc.length;
  std::fclose(f);
  if (!ok) return Status::IoError("short read");
  uint32_t plen = get_u32(record.data());
  if (plen + kHeaderLen != loc.length) return Status::Corruption("bad length");
  if (common::fnv1a64(record.data() + kHeaderLen, plen) !=
      get_u64(record.data() + 4)) {
    return Status::Corruption("checksum mismatch");
  }
  common::Deserializer d(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(record.data() + kHeaderLen), plen));
  bool tombstone = d.boolean();
  std::string key = d.str();
  if (tombstone) return Status::Corruption("tombstone in index");
  Buffer value = d.buffer();
  if (!d.ok()) return d.status();
  if (key_out != nullptr) *key_out = std::move(key);
  return value;
}

void LogKv::set_metrics(obs::MetricsRegistry* registry,
                        std::string_view prefix) {
  if (registry == nullptr) {
    ctr_puts_ = nullptr;
    ctr_gets_ = nullptr;
    ctr_erases_ = nullptr;
    ctr_compactions_ = nullptr;
    hist_put_bytes_ = nullptr;
    return;
  }
  std::string p(prefix);
  ctr_puts_ = registry->counter(p + ".puts");
  ctr_gets_ = registry->counter(p + ".gets");
  ctr_erases_ = registry->counter(p + ".erases");
  ctr_compactions_ = registry->counter(p + ".compactions");
  hist_put_bytes_ = registry->histogram(p + ".put_bytes");
}

Status LogKv::put(std::string_view key, Buffer value) {
  std::lock_guard lock(mu_);
  if (ctr_puts_ != nullptr) {
    ctr_puts_->add(1);
    hist_put_bytes_->add(static_cast<double>(value.size()));
  }
  auto it = index_.find(key);
  size_t old_value_size = 0;
  size_t old_physical_size = 0;
  bool had_old = false;
  if (it != index_.end()) {
    std::string dummy;
    auto old = read_record(it->second, &dummy);
    if (old.ok()) {
      old_value_size = old.value().size();
      old_physical_size = physical_value_size(old.value());
    }
    had_old = true;
  }
  Location loc;
  EVO_RETURN_IF_ERROR(append_record(key, &value, &loc));
  if (had_old) {
    dead_bytes_ += it->second.length;
    live_logical_bytes_ -= old_value_size;
    live_physical_bytes_ -= old_physical_size;
    it->second = loc;
  } else {
    index_.emplace(std::string(key), loc);
  }
  live_logical_bytes_ += value.size();
  live_physical_bytes_ += physical_value_size(value);
  return Status::Ok();
}

Result<Buffer> LogKv::get(std::string_view key) const {
  std::lock_guard lock(mu_);
  if (ctr_gets_ != nullptr) ctr_gets_->add(1);
  auto it = index_.find(key);
  if (it == index_.end()) {
    return Status::NotFound("key '" + std::string(key) + "'");
  }
  return read_record(it->second, nullptr);
}

Status LogKv::erase(std::string_view key) {
  std::lock_guard lock(mu_);
  if (ctr_erases_ != nullptr) ctr_erases_->add(1);
  auto it = index_.find(key);
  if (it == index_.end()) {
    return Status::NotFound("key '" + std::string(key) + "'");
  }
  std::string dummy;
  auto old = read_record(it->second, &dummy);
  Location loc;
  EVO_RETURN_IF_ERROR(append_record(key, nullptr, &loc));
  dead_bytes_ += it->second.length + loc.length;
  if (old.ok()) {
    live_logical_bytes_ -= old.value().size();
    live_physical_bytes_ -= physical_value_size(old.value());
  }
  index_.erase(it);
  return Status::Ok();
}

bool LogKv::contains(std::string_view key) const {
  std::lock_guard lock(mu_);
  return index_.find(key) != index_.end();
}

size_t LogKv::size() const {
  std::lock_guard lock(mu_);
  return index_.size();
}

std::vector<std::string> LogKv::keys() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  out.reserve(index_.size());
  for (const auto& [k, loc] : index_) out.push_back(k);
  return out;
}

size_t LogKv::value_bytes() const {
  std::lock_guard lock(mu_);
  return live_physical_bytes_;
}

size_t LogKv::logical_value_bytes() const {
  std::lock_guard lock(mu_);
  return live_logical_bytes_;
}

Result<size_t> LogKv::compact() {
  std::lock_guard lock(mu_);
  if (ctr_compactions_ != nullptr) ctr_compactions_->add(1);
  size_t before = 0;
  for (const auto& [id, sz] : segments_) before += sz;

  // Snapshot live records.
  std::vector<std::pair<std::string, Buffer>> live;
  live.reserve(index_.size());
  for (const auto& [key, loc] : index_) {
    auto value = read_record(loc, nullptr);
    if (!value.ok()) return value.status();
    live.emplace_back(key, std::move(value).value());
  }

  // Remove all existing segments and start fresh.
  if (active_file_ != nullptr) {
    std::fclose(active_file_);
    active_file_ = nullptr;
  }
  for (const auto& [id, sz] : segments_) {
    std::error_code ec;
    std::filesystem::remove(segment_path(id), ec);
  }
  segments_.clear();
  index_.clear();
  live_logical_bytes_ = 0;
  live_physical_bytes_ = 0;
  dead_bytes_ = 0;
  EVO_RETURN_IF_ERROR(roll_segment());

  for (auto& [key, value] : live) {
    Location loc;
    EVO_RETURN_IF_ERROR(append_record(key, &value, &loc));
    index_.emplace(key, loc);
    live_logical_bytes_ += value.size();
    live_physical_bytes_ += physical_value_size(value);
  }
  size_t after = 0;
  for (const auto& [id, sz] : segments_) after += sz;
  return before > after ? before - after : size_t{0};
}

size_t LogKv::disk_bytes() const {
  std::lock_guard lock(mu_);
  size_t n = 0;
  for (const auto& [id, sz] : segments_) n += sz;
  return n;
}

}  // namespace evostore::storage
