// LogKv: file-backed log-structured KV store (the RocksDB-class persistent
// backend of the paper's providers, reimplemented from scratch).
//
// Design: append-only segment files + an in-memory index.
//  - Every put/erase appends one checksummed record to the active segment;
//    the log is the write-ahead log.
//  - `open` rebuilds the index by scanning segments in order. A torn write
//    at the tail of the *last* segment (crash mid-append) is detected by the
//    checksum and truncated away; corruption anywhere else is an error.
//  - `compact` rewrites live records into fresh segments and deletes the
//    old ones, reclaiming space from overwrites and tombstones.
//
// Synthetic buffers are persisted as their (seed, size) descriptors, so a
// provider spilling simulated multi-GB tensors keeps small logs while dense
// (test) data round-trips bit-exactly.
#pragma once

#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string_view>

#include "obs/metrics.h"
#include "storage/kv_store.h"

namespace evostore::storage {

struct LogKvOptions {
  /// Roll to a new segment once the active one exceeds this many bytes.
  size_t segment_max_bytes = 64 * 1024 * 1024;
  /// fsync after every append (slow; off for tests/benches).
  bool sync_every_write = false;
  /// Compact during `open` when at least this fraction of the on-disk bytes
  /// is dead (overwritten records and tombstones). The rebuild scan already
  /// knows exactly which records are live, so restart is the cheapest moment
  /// to reclaim the space a crash-interrupted lifetime accumulated. 0
  /// disables (open never rewrites; matches the pre-option behavior).
  double compact_on_open_ratio = 0.5;
};

class LogKv final : public KvStore {
 public:
  /// Open (creating if needed) a store rooted at `dir`.
  static Result<std::unique_ptr<LogKv>> open(std::filesystem::path dir,
                                             LogKvOptions options = {});
  ~LogKv() override;

  LogKv(const LogKv&) = delete;
  LogKv& operator=(const LogKv&) = delete;

  Status put(std::string_view key, Buffer value) override;
  Result<Buffer> get(std::string_view key) const override;
  Status erase(std::string_view key) override;
  bool contains(std::string_view key) const override;
  size_t size() const override;
  std::vector<std::string> keys() const override;
  size_t value_bytes() const override;
  size_t logical_value_bytes() const override;

  /// Rewrite live data into fresh segments, dropping overwritten records and
  /// tombstones. Returns bytes reclaimed on disk.
  Result<size_t> compact();

  /// Attach operation counters (`<prefix>.puts/gets/erases/compactions`)
  /// and a value-size histogram (`<prefix>.put_bytes`) to `registry`;
  /// nullptr detaches. Not synchronized — attach only under single-threaded
  /// use. No wall-clock timings are recorded (file I/O runs on the host
  /// clock, which would leak nondeterminism into exports).
  void set_metrics(obs::MetricsRegistry* registry,
                   std::string_view prefix = "log_kv");

  /// Bytes currently occupied by all segment files.
  size_t disk_bytes() const;
  /// Bytes occupied by records that are no longer live (compaction target).
  size_t dead_bytes() const { return dead_bytes_; }
  size_t segment_count() const { return segments_.size(); }

 private:
  LogKv(std::filesystem::path dir, LogKvOptions options)
      : dir_(std::move(dir)), options_(options) {}

  struct Location {
    uint64_t segment = 0;
    uint64_t offset = 0;  // of the record header
    uint64_t length = 0;  // full record length incl. header
  };

  Status load();
  Status roll_segment();
  Status append_record(std::string_view key, const Buffer* value,
                       Location* loc);
  Result<Buffer> read_record(const Location& loc, std::string* key_out) const;
  std::filesystem::path segment_path(uint64_t id) const;

  std::filesystem::path dir_;
  LogKvOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, Location, std::less<>> index_;
  std::map<uint64_t, uint64_t> segments_;  // id -> byte size
  uint64_t active_segment_ = 0;
  std::FILE* active_file_ = nullptr;
  uint64_t active_offset_ = 0;
  size_t live_logical_bytes_ = 0;
  size_t live_physical_bytes_ = 0;
  size_t dead_bytes_ = 0;

  obs::Counter* ctr_puts_ = nullptr;
  obs::Counter* ctr_gets_ = nullptr;
  obs::Counter* ctr_erases_ = nullptr;
  obs::Counter* ctr_compactions_ = nullptr;
  obs::Histogram* hist_put_bytes_ = nullptr;
};

}  // namespace evostore::storage
