#include "storage/mem_kv.h"

#include <algorithm>
#include <mutex>

#include "common/hash.h"

namespace evostore::storage {

MemKv::MemKv(size_t shard_count)
    : shard_count_(shard_count == 0 ? 1 : shard_count),
      shards_(std::make_unique<Shard[]>(shard_count_)) {}

MemKv::Shard& MemKv::shard_for(std::string_view key) const {
  return shards_[common::fnv1a64(key) % shard_count_];
}

void MemKv::set_metrics(obs::MetricsRegistry* registry,
                        std::string_view prefix) {
  if (registry == nullptr) {
    ctr_puts_ = nullptr;
    ctr_gets_ = nullptr;
    ctr_erases_ = nullptr;
    hist_put_bytes_ = nullptr;
    return;
  }
  std::string p(prefix);
  ctr_puts_ = registry->counter(p + ".puts");
  ctr_gets_ = registry->counter(p + ".gets");
  ctr_erases_ = registry->counter(p + ".erases");
  hist_put_bytes_ = registry->histogram(p + ".put_bytes");
}

Status MemKv::put(std::string_view key, Buffer value) {
  if (ctr_puts_ != nullptr) {
    ctr_puts_->add(1);
    hist_put_bytes_->add(static_cast<double>(value.size()));
  }
  Shard& s = shard_for(key);
  std::unique_lock lock(s.mu);
  auto it = s.entries.find(key);
  if (it != s.entries.end()) {
    s.logical_bytes -= it->second.size();
    s.physical_bytes -= physical_value_size(it->second);
    s.logical_bytes += value.size();
    s.physical_bytes += physical_value_size(value);
    it->second = std::move(value);
  } else {
    s.logical_bytes += value.size();
    s.physical_bytes += physical_value_size(value);
    s.entries.emplace(std::string(key), std::move(value));
  }
  return Status::Ok();
}

Result<Buffer> MemKv::get(std::string_view key) const {
  if (ctr_gets_ != nullptr) ctr_gets_->add(1);
  Shard& s = shard_for(key);
  std::shared_lock lock(s.mu);
  auto it = s.entries.find(key);
  if (it == s.entries.end()) {
    return Status::NotFound("key '" + std::string(key) + "'");
  }
  return it->second;
}

Status MemKv::erase(std::string_view key) {
  if (ctr_erases_ != nullptr) ctr_erases_->add(1);
  Shard& s = shard_for(key);
  std::unique_lock lock(s.mu);
  auto it = s.entries.find(key);
  if (it == s.entries.end()) {
    return Status::NotFound("key '" + std::string(key) + "'");
  }
  s.logical_bytes -= it->second.size();
  s.physical_bytes -= physical_value_size(it->second);
  s.entries.erase(it);
  return Status::Ok();
}

bool MemKv::contains(std::string_view key) const {
  Shard& s = shard_for(key);
  std::shared_lock lock(s.mu);
  return s.entries.find(key) != s.entries.end();
}

size_t MemKv::size() const {
  size_t n = 0;
  for (size_t i = 0; i < shard_count_; ++i) {
    std::shared_lock lock(shards_[i].mu);
    n += shards_[i].entries.size();
  }
  return n;
}

std::vector<std::string> MemKv::keys() const {
  std::vector<std::string> out;
  for (size_t i = 0; i < shard_count_; ++i) {
    std::shared_lock lock(shards_[i].mu);
    for (const auto& [k, v] : shards_[i].entries) out.push_back(k);
  }
  std::sort(out.begin(), out.end());
  return out;
}

size_t MemKv::value_bytes() const {
  size_t n = 0;
  for (size_t i = 0; i < shard_count_; ++i) {
    std::shared_lock lock(shards_[i].mu);
    n += shards_[i].physical_bytes;
  }
  return n;
}

size_t MemKv::logical_value_bytes() const {
  size_t n = 0;
  for (size_t i = 0; i < shard_count_; ++i) {
    std::shared_lock lock(shards_[i].mu);
    n += shards_[i].logical_bytes;
  }
  return n;
}

}  // namespace evostore::storage
