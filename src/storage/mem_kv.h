// Sharded in-memory KV store ("C++ synchronized memory pool" backend).
//
// Thread-safe: keys are hashed to shards, each protected by its own
// shared_mutex. Inside the single-threaded simulation the locks are
// uncontended and effectively free; the store is also usable directly from
// multi-threaded host code (tests exercise this).
#pragma once

#include <array>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string_view>

#include "obs/metrics.h"
#include "storage/kv_store.h"

namespace evostore::storage {

class MemKv final : public KvStore {
 public:
  explicit MemKv(size_t shard_count = 16);

  Status put(std::string_view key, Buffer value) override;
  Result<Buffer> get(std::string_view key) const override;
  Status erase(std::string_view key) override;
  bool contains(std::string_view key) const override;
  size_t size() const override;
  std::vector<std::string> keys() const override;
  size_t value_bytes() const override;
  size_t logical_value_bytes() const override;

  /// Attach operation counters (`<prefix>.puts/gets/erases`) and a
  /// value-size histogram (`<prefix>.put_bytes`) to `registry`; nullptr
  /// detaches. The registry is NOT synchronized — attach only when the store
  /// is driven from a single thread (the simulation). Unattached, each op
  /// pays one null check.
  void set_metrics(obs::MetricsRegistry* registry,
                   std::string_view prefix = "mem_kv");

 private:
  struct Shard {
    mutable std::shared_mutex mu;
    std::map<std::string, Buffer, std::less<>> entries;
    size_t logical_bytes = 0;
    size_t physical_bytes = 0;
  };
  Shard& shard_for(std::string_view key) const;

  size_t shard_count_;
  std::unique_ptr<Shard[]> shards_;

  obs::Counter* ctr_puts_ = nullptr;
  obs::Counter* ctr_gets_ = nullptr;
  obs::Counter* ctr_erases_ = nullptr;
  obs::Histogram* hist_put_bytes_ = nullptr;
};

}  // namespace evostore::storage
