#include "storage/pfs.h"

#include <algorithm>

#include "common/hash.h"

namespace evostore::storage {

using common::Buffer;
using common::NodeId;
using common::Result;
using common::Status;

Pfs::Pfs(net::Fabric& fabric, PfsConfig config)
    : fabric_(&fabric), config_(config) {
  double per_ost = config_.aggregate_bandwidth / config_.ost_count;
  ost_ports_.reserve(config_.ost_count);
  for (int i = 0; i < config_.ost_count; ++i) {
    ost_ports_.push_back(
        fabric_->flows().add_port(per_ost, "ost" + std::to_string(i)));
  }
  mds_slots_ = std::make_unique<sim::Semaphore>(fabric_->simulation(),
                                                config_.mds_parallelism);
}

sim::CoTask<void> Pfs::mds_op() {
  ++mds_ops_;
  co_await mds_slots_->acquire();
  co_await fabric_->simulation().delay(config_.mds_op_seconds);
  mds_slots_->release();
}

// NOLINTNEXTLINE(cppcoreguidelines-avoid-reference-coroutine-parameters)
sim::CoTask<void> Pfs::data_transfer(NodeId client, const File& file,
                                     size_t bytes, bool to_ost) {
  if (bytes == 0) co_return;
  size_t n_stripes = (bytes + config_.stripe_size - 1) / config_.stripe_size;
  size_t k = std::min<size_t>(n_stripes, config_.stripe_count);
  double per_ost_bytes = static_cast<double>(bytes) / static_cast<double>(k);
  std::vector<sim::Future<void>> transfers;
  transfers.reserve(k);
  auto& sim = fabric_->simulation();
  for (size_t i = 0; i < k; ++i) {
    sim::PortId ost = ost_ports_[(file.first_ost + i) % ost_ports_.size()];
    std::vector<sim::PortId> path;
    if (to_ost) {
      path.push_back(fabric_->egress_port(client));
      path.push_back(ost);
    } else {
      path.push_back(ost);
      path.push_back(fabric_->ingress_port(client));
    }
    transfers.push_back(
        sim.spawn(fabric_->flows().transfer(std::move(path), per_ost_bytes)));
  }
  for (auto& t : transfers) co_await t;
}

// Coroutine path params are by value: the string must live in this frame,
// not the caller's (EVO-CORO-003).
sim::CoTask<Status> Pfs::write(NodeId client, std::string path,
                               std::vector<Buffer> extents) {
  co_await mds_op();  // create/open
  File file;
  file.extents = std::move(extents);
  for (const auto& e : file.extents) file.size += e.size();
  file.first_ost =
      static_cast<uint32_t>(common::fnv1a64(path) % ost_ports_.size());
  co_await data_transfer(client, file, file.size, /*to_ost=*/true);
  auto it = files_.find(path);
  if (it != files_.end()) {
    stored_bytes_ -= it->second.size;
    it->second = std::move(file);
    stored_bytes_ += it->second.size;
  } else {
    stored_bytes_ += file.size;
    files_.emplace(path, std::move(file));
  }
  co_return Status::Ok();
}

sim::CoTask<Result<std::vector<Buffer>>> Pfs::read(NodeId client,
                                                   std::string path) {
  co_await mds_op();  // open/stat
  auto it = files_.find(path);
  if (it == files_.end()) {
    co_return Status::NotFound("pfs file '" + path + "'");
  }
  co_await data_transfer(client, it->second, it->second.size,
                         /*to_ost=*/false);
  co_return it->second.extents;
}

sim::CoTask<Result<Buffer>> Pfs::read_range(NodeId client, std::string path,
                                            size_t offset, size_t len) {
  co_await mds_op();
  auto it = files_.find(path);
  if (it == files_.end()) {
    co_return Status::NotFound("pfs file '" + path + "'");
  }
  const File& file = it->second;
  if (offset + len > file.size) {
    co_return Status::OutOfRange("range past end of file");
  }
  co_await data_transfer(client, file, len, /*to_ost=*/false);
  // Assemble the logical range from the extent list.
  common::Bytes out(len);
  size_t out_pos = 0;
  size_t ext_start = 0;
  for (const auto& e : file.extents) {
    size_t ext_end = ext_start + e.size();
    if (ext_end > offset && ext_start < offset + len) {
      size_t from = std::max(offset, ext_start) - ext_start;
      size_t to = std::min(offset + len, ext_end) - ext_start;
      e.read(from, std::span<std::byte>(out.data() + out_pos, to - from));
      out_pos += to - from;
    }
    ext_start = ext_end;
    if (ext_start >= offset + len) break;
  }
  co_return Buffer::dense(std::move(out));
}

sim::CoTask<bool> Pfs::exists(NodeId client, std::string path) {
  (void)client;
  co_await mds_op();
  co_return files_.find(path) != files_.end();
}

sim::CoTask<Status> Pfs::remove(NodeId client, std::string path) {
  (void)client;
  co_await mds_op();
  auto it = files_.find(path);
  if (it == files_.end()) {
    co_return Status::NotFound("pfs file '" + path + "'");
  }
  stored_bytes_ -= it->second.size;
  files_.erase(it);
  co_return Status::Ok();
}

}  // namespace evostore::storage
