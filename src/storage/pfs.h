// Parallel file system model (Lustre-class), used by the HDF5+PFS baseline.
//
// Data path: files are striped round-robin over `stripe_count` object
// storage targets (OSTs) starting at a hash of the path. Each stripe's bytes
// flow through [client NIC egress, OST bandwidth port] (or the reverse for
// reads) in the shared FlowScheduler, so concurrent clients contend for both
// their NIC and the OSTs — the contention that flattens HDF5+PFS's curve in
// paper Fig. 4.
//
// Metadata path: open/create/stat/unlink are serviced by a metadata server
// pool with bounded parallelism and per-op service time (40 MDTs on Polaris;
// §5.1), which queues under bursts.
//
// File contents are held as scatter/gather lists of Buffers, so multi-GB
// synthetic payloads are stored without materializing.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/status.h"
#include "net/fabric.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace evostore::storage {

struct PfsConfig {
  int ost_count = 150;
  /// Aggregate bandwidth across all OSTs (bytes/s); per-OST = aggregate/count.
  double aggregate_bandwidth = 650e9;
  int stripe_count = 4;
  size_t stripe_size = 1 << 20;
  /// Metadata service: concurrent ops and per-op service time.
  int mds_parallelism = 40;
  double mds_op_seconds = 50e-6;
};

class Pfs {
 public:
  Pfs(net::Fabric& fabric, PfsConfig config = {});

  const PfsConfig& config() const { return config_; }
  sim::Simulation& simulation() { return fabric_->simulation(); }

  /// Write a whole file (create or replace). Pays one metadata op plus the
  /// striped data transfer of all extents.
  sim::CoTask<common::Status> write(common::NodeId client, std::string path,
                                    std::vector<common::Buffer> extents);

  /// Read a whole file. Pays one metadata op plus the striped transfer.
  sim::CoTask<common::Result<std::vector<common::Buffer>>> read(
      common::NodeId client, std::string path);

  /// Read `len` logical bytes starting at `offset`. Pays one metadata op
  /// plus the transfer of just that range (small-range reads still pay the
  /// per-op latency — the paper's "not optimized for small non-contiguous
  /// transfers" effect).
  sim::CoTask<common::Result<common::Buffer>> read_range(
      common::NodeId client, std::string path, size_t offset, size_t len);

  /// Metadata-only existence check.
  sim::CoTask<bool> exists(common::NodeId client, std::string path);

  /// Remove a file (metadata op).
  sim::CoTask<common::Status> remove(common::NodeId client,
                                     std::string path);

  /// Zero-cost same-process view of a file's extents (simulation
  /// side-channel used by clients that already parsed a file's layout and
  /// charge their data movement through read_range). Null if absent.
  const std::vector<common::Buffer>* peek(const std::string& path) const {
    auto it = files_.find(path);
    return it == files_.end() ? nullptr : &it->second.extents;
  }

  /// Logical bytes currently stored across all files.
  size_t stored_bytes() const { return stored_bytes_; }
  size_t file_count() const { return files_.size(); }

  /// Total metadata operations served (for overhead breakdowns).
  uint64_t mds_ops() const { return mds_ops_; }

 private:
  struct File {
    std::vector<common::Buffer> extents;
    size_t size = 0;
    uint32_t first_ost = 0;
  };

  sim::CoTask<void> mds_op();
  /// Move `bytes` of file data between client and the file's OSTs.
  /// `to_ost` = true for writes.
  sim::CoTask<void> data_transfer(common::NodeId client, const File& file,
                                  size_t bytes, bool to_ost);

  net::Fabric* fabric_;
  PfsConfig config_;
  std::vector<sim::PortId> ost_ports_;
  std::unique_ptr<sim::Semaphore> mds_slots_;
  std::map<std::string, File> files_;
  size_t stored_bytes_ = 0;
  uint64_t mds_ops_ = 0;
};

}  // namespace evostore::storage
