#include "workload/arch_generator.h"

#include <cmath>

namespace evostore::workload {

model::ArchGraph generate_chain(const ArchGenConfig& config) {
  common::Xoshiro256 rng(config.seed);
  // A square dense layer w->w with bias holds (w^2 + w) f32 parameters.
  double bytes_per_layer = static_cast<double>(config.total_bytes) /
                           static_cast<double>(config.leaf_layers);
  auto width_for = [&](double target_bytes) -> int64_t {
    double w = std::sqrt(target_bytes / 4.0);
    return std::max<int64_t>(1, static_cast<int64_t>(w));
  };
  std::vector<model::LayerDef> defs;
  defs.reserve(config.leaf_layers + 1);
  int64_t w0 = width_for(bytes_per_layer);
  defs.push_back(model::make_input(w0));
  for (int i = 0; i < config.leaf_layers; ++i) {
    double jitter = config.variation > 0
                        ? 1.0 + config.variation * (rng.uniform() - 0.5)
                        : 1.0;
    int64_t w = width_for(bytes_per_layer * jitter);
    // Square layers keep the chain dimension-consistent in spirit; the
    // generator is a storage workload, so exact shape algebra is relaxed.
    defs.push_back(model::make_dense(w, w));
  }
  auto g = model::ArchGraph::flatten(model::make_chain(std::move(defs)));
  return std::move(g).value();
}

model::Model make_base_model(common::ModelId id, const model::ArchGraph& graph,
                             uint64_t seed) {
  return model::Model::random(id, graph, seed);
}

DerivedModel derive_partial(common::ModelId id, const model::Model& base,
                            const core::OwnerMap& base_owners,
                            int frozen_layers, uint64_t seed) {
  DerivedModel out{model::Model::random(id, base.graph(), seed), {}};
  out.transfer.ancestor = base.id();
  out.transfer.ancestor_owners = base_owners;
  // Prefix = the input vertex plus the first `frozen_layers` dense layers.
  size_t prefix = std::min<size_t>(base.graph().size(),
                                   static_cast<size_t>(frozen_layers) + 1);
  for (common::VertexId v = 0; v < prefix; ++v) {
    out.transfer.matches.emplace_back(v, v);
    out.model.segment(v) = base.segment(v);
  }
  return out;
}

}  // namespace evostore::workload
