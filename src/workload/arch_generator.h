// Architecture generator for the incremental-storage micro-benchmarks
// (paper §5.3): configurable total model size, number of leaf layers, and
// controllable variation, so a benchmark can dial in any LCP length /
// modified-tensor fraction.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "core/client.h"
#include "model/model.h"

namespace evostore::workload {

struct ArchGenConfig {
  /// Total parameter bytes of the generated model (approximate; layer sizes
  /// are rounded to whole square dense layers).
  size_t total_bytes = 4ull << 30;
  /// Number of evenly-sized leaf layers carrying parameters.
  int leaf_layers = 100;
  /// Seed controlling per-layer width jitter when `variation` > 0.
  uint64_t seed = 1;
  /// Fraction of width jitter between layers (0 = perfectly even).
  double variation = 0.0;
};

/// A chain model of `leaf_layers` square dense layers (plus the input
/// placeholder at vertex 0) sized to ~`total_bytes` in total.
model::ArchGraph generate_chain(const ArchGenConfig& config);

/// Build a fully random model over `graph`.
model::Model make_base_model(common::ModelId id, const model::ArchGraph& graph,
                             uint64_t seed);

/// Derive a model from `base` where the first `frozen_layers` parameter
/// layers are inherited (frozen) and the rest are re-randomized — the
/// "partial write" workload of Fig. 4. Returns the model plus the
/// TransferContext describing the inherited prefix.
struct DerivedModel {
  model::Model model;
  core::TransferContext transfer;
};
DerivedModel derive_partial(common::ModelId id, const model::Model& base,
                            const core::OwnerMap& base_owners,
                            int frozen_layers, uint64_t seed);

}  // namespace evostore::workload
