#include "workload/deepspace.h"

#include <cassert>
#include <memory>

namespace evostore::workload {

namespace {
constexpr int kCellFields = 3;  // type, width index, activation
constexpr uint16_t kTypeDense = 0;
constexpr uint16_t kTypeAttention = 1;
constexpr uint16_t kTypeResidual = 2;
constexpr int kTypes = 3;
constexpr int kActivations = 4;

size_t field_index(size_t cell, size_t field) {
  return 1 + cell * kCellFields + field;
}
}  // namespace

DeepSpace::DeepSpace(DeepSpaceConfig config) : config_(std::move(config)) {
  assert(!config_.widths.empty());
}

int DeepSpace::cell_choices() const {
  return kTypes * static_cast<int>(config_.widths.size()) * kActivations;
}

DeepSpaceSeq DeepSpace::random(common::Xoshiro256& rng) const {
  int cells = static_cast<int>(
      rng.range(config_.min_cells, config_.max_cells));
  DeepSpaceSeq seq;
  seq.reserve(1 + cells * kCellFields);
  seq.push_back(static_cast<uint16_t>(cells));
  for (int i = 0; i < cells; ++i) {
    seq.push_back(static_cast<uint16_t>(rng.below(kTypes)));
    seq.push_back(static_cast<uint16_t>(rng.below(config_.widths.size())));
    seq.push_back(static_cast<uint16_t>(rng.below(kActivations)));
  }
  return seq;
}

DeepSpaceSeq DeepSpace::mutate(const DeepSpaceSeq& seq,
                               common::Xoshiro256& rng) const {
  DeepSpaceSeq out = seq;
  size_t cells = seq[0];
  size_t cell = rng.below(cells);
  size_t field = rng.below(kCellFields);
  // Inert mutations (width on non-dense cells, activation on attention
  // cells) would not alter the decoded graph; redirect them to the type
  // field so every mutation is real.
  uint16_t cell_type = out[field_index(cell, 0)];
  if (field == 1 && cell_type != kTypeDense) field = 0;
  if (field == 2 && cell_type == kTypeAttention) field = 0;
  size_t idx = field_index(cell, field);
  uint16_t domain = field == 0   ? kTypes
                    : field == 1 ? static_cast<uint16_t>(config_.widths.size())
                                 : kActivations;
  if (domain <= 1) return out;
  uint16_t next = static_cast<uint16_t>(rng.below(domain - 1));
  if (next >= out[idx]) ++next;  // ensure the value actually changes
  out[idx] = next;
  return out;
}

model::Architecture DeepSpace::decode(const DeepSpaceSeq& seq) const {
  using model::Architecture;
  Architecture arch;
  size_t cells = seq[0];
  int64_t first_width =
      cells > 0 ? config_.widths[seq[field_index(0, 1)] %
                                 config_.widths.size()]
                : config_.widths[0];
  auto input = arch.add_layer(model::make_input(config_.input_dim));
  auto cur = arch.add_layer(model::make_dense(config_.input_dim, first_width));
  arch.connect(input, cur);
  int64_t width = first_width;

  for (size_t i = 0; i < cells; ++i) {
    uint16_t type = seq[field_index(i, 0)] % kTypes;
    int64_t w =
        config_.widths[seq[field_index(i, 1)] % config_.widths.size()];
    auto act = static_cast<int64_t>(seq[field_index(i, 2)] % kActivations);
    switch (type) {
      case kTypeDense: {
        auto dense = arch.add_layer(model::make_dense(width, w));
        auto a = arch.add_layer(model::make_activation(act));
        arch.connect(cur, dense);
        arch.connect(dense, a);
        cur = a;
        width = w;
        break;
      }
      case kTypeAttention: {
        // Pre-norm attention submodel with a residual Add branch outside.
        auto sub = std::make_shared<Architecture>();
        auto ln = sub->add_layer(model::make_layer_norm(width));
        auto attn = sub->add_layer(model::make_attention(width, 8));
        sub->connect(ln, attn);
        auto sub_node = arch.add_submodel(std::move(sub), "attn_block");
        auto add = arch.add_layer(model::make_add());
        arch.connect(cur, sub_node);
        arch.connect(sub_node, add);
        arch.connect(cur, add);  // residual branch
        cur = add;
        break;
      }
      case kTypeResidual:
      default: {
        auto sub = std::make_shared<Architecture>();
        auto up = sub->add_layer(model::make_dense(width, 2 * width));
        auto a = sub->add_layer(model::make_activation(act));
        auto down = sub->add_layer(model::make_dense(2 * width, width));
        sub->connect(up, a);
        sub->connect(a, down);
        auto sub_node = arch.add_submodel(std::move(sub), "mlp_block");
        auto add = arch.add_layer(model::make_add());
        arch.connect(cur, sub_node);
        arch.connect(sub_node, add);
        arch.connect(cur, add);  // residual branch
        cur = add;
        break;
      }
    }
  }
  auto out = arch.add_layer(model::make_output(width, config_.output_classes));
  arch.connect(cur, out);
  return arch;
}

model::ArchGraph DeepSpace::decode_graph(const DeepSpaceSeq& seq) const {
  auto g = model::ArchGraph::flatten(decode(seq));
  assert(g.ok());
  return std::move(g).value();
}

}  // namespace evostore::workload
