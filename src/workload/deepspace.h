// DeepSpace-like architecture generator (paper §5.3): produces diverse DL
// model architectures with alternating branches and nested submodels, used
// to stress the LCP query machinery (Fig. 5) with complex leaf-layer graphs.
//
// Every architecture is decoded from a compact choice vector, so generating
// a *related* architecture (sharing a prefix) is just mutating a suffix
// choice — which is how the query benchmark produces realistic lookups.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "model/arch_graph.h"
#include "model/architecture.h"

namespace evostore::workload {

struct DeepSpaceConfig {
  int min_cells = 3;
  int max_cells = 9;
  int64_t input_dim = 128;
  /// Width table; attention widths must divide by 8 heads.
  std::vector<int64_t> widths = {32, 64, 96, 128, 192, 256};
  int64_t output_classes = 10;
};

/// Choice vector: [n_cells, then per cell (type, width_idx, act)].
using DeepSpaceSeq = std::vector<uint16_t>;

class DeepSpace {
 public:
  explicit DeepSpace(DeepSpaceConfig config = {});

  /// Sample a random choice vector.
  DeepSpaceSeq random(common::Xoshiro256& rng) const;

  /// Mutate one cell of `seq` (guaranteed to change the decoded graph).
  DeepSpaceSeq mutate(const DeepSpaceSeq& seq, common::Xoshiro256& rng) const;

  /// Decode a choice vector into a nested architecture (with submodels and
  /// branches) — flattening it exercises §4.2 end to end.
  model::Architecture decode(const DeepSpaceSeq& seq) const;

  /// Convenience: decode + flatten.
  model::ArchGraph decode_graph(const DeepSpaceSeq& seq) const;

  /// Number of distinct cell configurations.
  int cell_choices() const;

 private:
  DeepSpaceConfig config_;
};

}  // namespace evostore::workload
