#include "baseline/hdf5_pfs.h"

#include <gtest/gtest.h>

#include "tests/core/test_env.h"

namespace evostore::baseline {
namespace {

using common::NodeId;
using core::testing::chain_graph;
using core::testing::widths_graph;
using sim::CoTask;

struct H5Env {
  sim::Simulation sim;
  net::Fabric fabric;
  net::RpcSystem rpc;
  NodeId client;
  NodeId redis_node;
  std::unique_ptr<storage::Pfs> pfs;
  std::unique_ptr<RedisQueries> redis;
  std::unique_ptr<Hdf5PfsRepository> repo;

  explicit H5Env(bool with_redis = true)
      : fabric(sim, net::FabricConfig{}), rpc(fabric) {
    client = fabric.add_node(25e9, 25e9);
    redis_node = fabric.add_node(25e9, 25e9);
    storage::PfsConfig cfg;
    cfg.ost_count = 16;
    cfg.aggregate_bandwidth = 16e9;
    pfs = std::make_unique<storage::Pfs>(fabric, cfg);
    if (with_redis) {
      redis = std::make_unique<RedisQueries>(rpc, redis_node);
    }
    repo = std::make_unique<Hdf5PfsRepository>(*pfs, redis.get());
  }

  template <typename T>
  T run(CoTask<T> t) {
    return sim.run_until_complete(std::move(t));
  }
};

TEST(Hdf5Pfs, StoreLoadRoundTrip) {
  H5Env env;
  auto g = chain_graph(5, 16);
  auto m = model::Model::random(env.repo->allocate_id(), g, 3);
  m.set_quality(0.45);
  auto store_task = [&]() -> CoTask<common::Status> {
    co_return co_await env.repo->store(env.client, m, nullptr);
  };
  ASSERT_TRUE(env.run(store_task()).ok());
  EXPECT_EQ(env.repo->stored_payload_bytes(), 0u + env.pfs->stored_bytes());
  EXPECT_GT(env.pfs->stored_bytes(), m.total_bytes());  // payload + TOC

  auto loaded = env.run(env.repo->load(env.client, m.id()));
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded->graph().graph_hash(), g.graph_hash());
  EXPECT_NEAR(loaded->quality(), 0.45, 1e-6);
  for (common::VertexId v = 0; v < g.size(); ++v) {
    EXPECT_TRUE(loaded->segment(v).content_equals(m.segment(v))) << v;
  }
}

TEST(Hdf5Pfs, LoadMissingModel) {
  H5Env env;
  auto r = env.run(env.repo->load(env.client, ModelId::make(1, 42)));
  EXPECT_EQ(r.status().code(), common::ErrorCode::kNotFound);
}

TEST(Hdf5Pfs, NoDeduplicationAcrossDerivedModels) {
  // The defining weakness vs EvoStore: every store writes the full model.
  H5Env env;
  auto g = chain_graph(6, 32);
  auto m1 = model::Model::random(env.repo->allocate_id(), g, 1);
  auto m2 = model::Model::random(env.repo->allocate_id(), chain_graph(6, 32, 1), 2);
  auto store2 = [&]() -> CoTask<void> {
    (void)co_await env.repo->store(env.client, m1, nullptr);
    (void)co_await env.repo->store(env.client, m2, nullptr);
  };
  env.run(store2());
  EXPECT_GE(env.pfs->stored_bytes(), m1.total_bytes() + m2.total_bytes());
}

TEST(Hdf5Pfs, PrepareTransferWithoutRedisFindsNothing) {
  H5Env env(/*with_redis=*/false);
  auto g = chain_graph(4, 16);
  auto m = model::Model::random(env.repo->allocate_id(), g, 1);
  auto task = [&]() -> CoTask<bool> {
    (void)co_await env.repo->store(env.client, m, nullptr);
    auto r = co_await env.repo->prepare_transfer(env.client, g, true);
    EXPECT_TRUE(r.ok());
    co_return r->has_value();
  };
  EXPECT_FALSE(env.run(task()));
  EXPECT_EQ(env.repo->name(), "HDF5+PFS");
}

TEST(Hdf5Pfs, PrepareTransferViaRedisReturnsPrefixPayload) {
  H5Env env;
  auto base_g = widths_graph({16, 16, 16, 16, 20});
  auto m = model::Model::random(env.repo->allocate_id(), base_g, 7);
  m.set_quality(0.5);
  auto task = [&]() -> CoTask<bool> {
    auto st = co_await env.repo->store(env.client, m, nullptr);
    EXPECT_TRUE(st.ok()) << st.to_string();
    auto query_g = widths_graph({16, 16, 16, 16, 40});
    auto r = co_await env.repo->prepare_transfer(env.client, query_g, true);
    EXPECT_TRUE(r.ok()) << r.status().to_string();
    if (!r.ok() || !r->has_value()) co_return false;
    auto& tc = r->value();
    EXPECT_EQ(tc.ancestor, m.id());
    EXPECT_EQ(tc.lcp_len(), 4u);
    EXPECT_EQ(tc.prefix_segments.size(), 4u);
    for (size_t i = 0; i < tc.matches.size(); ++i) {
      EXPECT_TRUE(tc.prefix_segments[i].content_equals(
          m.segment(tc.matches[i].second)));
    }
    co_return true;
  };
  EXPECT_TRUE(env.run(task()));
  EXPECT_GT(env.repo->io_stats().ranged_reads, 1u);  // TOC + per-tensor reads
}

TEST(Hdf5Pfs, RetireRemovesFileWhenLastReferenceDropped) {
  H5Env env;
  auto g = chain_graph(4, 16);
  auto m = model::Model::random(env.repo->allocate_id(), g, 1);
  auto task = [&]() -> CoTask<common::Status> {
    (void)co_await env.repo->store(env.client, m, nullptr);
    co_return co_await env.repo->retire(env.client, m.id());
  };
  ASSERT_TRUE(env.run(task()).ok());
  EXPECT_EQ(env.pfs->stored_bytes(), 0u);
  EXPECT_EQ(env.pfs->file_count(), 0u);
}

TEST(Hdf5Pfs, RetireWithoutRedisDeletesDirectly) {
  H5Env env(/*with_redis=*/false);
  auto g = chain_graph(3, 16);
  auto m = model::Model::random(env.repo->allocate_id(), g, 1);
  auto task = [&]() -> CoTask<common::Status> {
    (void)co_await env.repo->store(env.client, m, nullptr);
    co_return co_await env.repo->retire(env.client, m.id());
  };
  ASSERT_TRUE(env.run(task()).ok());
  EXPECT_EQ(env.pfs->file_count(), 0u);
}

TEST(Hdf5Pfs, StorePaysStagingAndPfsTime) {
  H5Env env;
  auto g = chain_graph(8, 256);  // ~2 MB model
  auto m = model::Model::random(env.repo->allocate_id(), g, 1);
  auto task = [&]() -> CoTask<double> {
    double t0 = env.sim.now();
    (void)co_await env.repo->store(env.client, m, nullptr);
    co_return env.sim.now() - t0;
  };
  double secs = env.run(task());
  // Must include at least the context setup (2 ms).
  EXPECT_GT(secs, 2e-3);
  EXPECT_GT(env.repo->io_stats().staged_bytes, 0.0);
}

TEST(Hdf5Pfs, FullLoadSlowerThanPrefixReadForSmallPrefix) {
  H5Env env;
  auto base_g = widths_graph({64, 512, 512, 512, 512, 512, 64});
  auto m = model::Model::random(env.repo->allocate_id(), base_g, 1);
  m.set_quality(0.5);
  auto task = [&]() -> CoTask<std::pair<double, double>> {
    (void)co_await env.repo->store(env.client, m, nullptr);
    double t0 = env.sim.now();
    (void)co_await env.repo->load(env.client, m.id());
    double load_time = env.sim.now() - t0;
    // Query with a graph sharing only the first two vertices.
    auto query_g = widths_graph({64, 512, 99});
    t0 = env.sim.now();
    auto r = co_await env.repo->prepare_transfer(env.client, query_g, true);
    EXPECT_TRUE(r.ok() && r->has_value());
    double prefix_time = env.sim.now() - t0;
    co_return std::make_pair(load_time, prefix_time);
  };
  auto [load_time, prefix_time] = env.run(task());
  EXPECT_LT(prefix_time, load_time);
}

}  // namespace
}  // namespace evostore::baseline
