#include "baseline/redis_queries.h"

#include <gtest/gtest.h>

#include "tests/core/test_env.h"

namespace evostore::baseline {
namespace {

using common::NodeId;
using core::testing::chain_graph;
using sim::CoTask;

struct RedisEnv {
  sim::Simulation sim;
  net::Fabric fabric;
  net::RpcSystem rpc;
  NodeId server_node;
  NodeId client_node;
  std::unique_ptr<RedisQueries> redis;

  RedisEnv() : fabric(sim, net::FabricConfig{}), rpc(fabric) {
    server_node = fabric.add_node(25e9, 25e9, "redis");
    client_node = fabric.add_node(25e9, 25e9, "client");
    redis = std::make_unique<RedisQueries>(rpc, server_node);
  }

  template <typename T>
  T run(CoTask<T> t) {
    return sim.run_until_complete(std::move(t));
  }

  CoTask<bool> add(ModelId id, model::ArchGraph g, double quality) {
    auto r = co_await redis->begin_add(client_node, id, g, quality);
    if (!r.status.ok()) co_return false;
    if (r.need_weights) {
      // (weights write happens here in the real flow)
      auto f = co_await redis->finish_add(client_node, id);
      co_return f.ok();
    }
    co_return true;
  }
};

TEST(RedisQueries, AddPublishesAndCounts) {
  RedisEnv env;
  auto g = chain_graph(4, 8);
  EXPECT_TRUE(env.run(env.add(ModelId::make(1, 1), g, 0.5)));
  EXPECT_EQ(env.redis->published_count(), 1u);
  EXPECT_EQ(env.redis->stats().adds, 1u);
}

TEST(RedisQueries, QueryFindsBestMatch) {
  RedisEnv env;
  ASSERT_TRUE(env.run(env.add(ModelId::make(1, 1), chain_graph(6, 8, 3), 0.5)));
  ASSERT_TRUE(env.run(env.add(ModelId::make(1, 2), chain_graph(6, 8, 1), 0.6)));
  auto r = env.run(env.redis->query(env.client_node, chain_graph(6, 8)));
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->found);
  EXPECT_EQ(r->ancestor, ModelId::make(1, 2));
  EXPECT_EQ(r->lcp_len(), 6u);
  // Winner is pinned; unpin releases it.
  auto unpin = env.run(env.redis->unpin(env.client_node, r->ancestor));
  EXPECT_TRUE(unpin.status.ok());
  EXPECT_FALSE(unpin.remove_weights);
}

TEST(RedisQueries, QueryOnEmptyCatalog) {
  RedisEnv env;
  auto r = env.run(env.redis->query(env.client_node, chain_graph(3, 8)));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->found);
}

TEST(RedisQueries, RetireUnpublishesAndSignalsFileRemoval) {
  RedisEnv env;
  ModelId id = ModelId::make(1, 1);
  ASSERT_TRUE(env.run(env.add(id, chain_graph(4, 8), 0.5)));
  auto r = env.run(env.redis->retire(env.client_node, id));
  EXPECT_TRUE(r.status.ok());
  EXPECT_TRUE(r.remove_weights);
  EXPECT_EQ(env.redis->published_count(), 0u);
}

TEST(RedisQueries, RetireUnknownModelFails) {
  RedisEnv env;
  auto r = env.run(env.redis->retire(env.client_node, ModelId::make(9, 9)));
  EXPECT_EQ(r.status.code(), common::ErrorCode::kNotFound);
}

TEST(RedisQueries, PinPreventsRemovalUntilUnpin) {
  RedisEnv env;
  ModelId id = ModelId::make(1, 1);
  auto g = chain_graph(4, 8);
  ASSERT_TRUE(env.run(env.add(id, g, 0.5)));

  auto q = env.run(env.redis->query(env.client_node, g));
  ASSERT_TRUE(q.ok() && q->found);

  // Retire while pinned: refcount 2 -> 1, weights survive.
  auto r = env.run(env.redis->retire(env.client_node, id));
  EXPECT_TRUE(r.status.ok());
  EXPECT_FALSE(r.remove_weights);

  // Unpin drops the last reference: now the caller deletes the file.
  auto u = env.run(env.redis->unpin(env.client_node, id));
  EXPECT_TRUE(u.status.ok());
  EXPECT_TRUE(u.remove_weights);
  EXPECT_EQ(env.redis->published_count(), 0u);
}

TEST(RedisQueries, DuplicateArchitectureSkipsWeightWrite) {
  RedisEnv env;
  ModelId id = ModelId::make(1, 1);
  auto g = chain_graph(4, 8);
  ASSERT_TRUE(env.run(env.add(id, g, 0.5)));
  // Re-adding the same model id: already registered, refcount bumped, no
  // weight write requested.
  auto r = env.run(env.redis->begin_add(env.client_node, id, g, 0.6));
  EXPECT_TRUE(r.status.ok());
  EXPECT_FALSE(r.need_weights);
  // Two retires now needed to free it.
  auto r1 = env.run(env.redis->retire(env.client_node, id));
  EXPECT_FALSE(r1.remove_weights);
  auto r2 = env.run(env.redis->retire(env.client_node, id));
  EXPECT_TRUE(r2.remove_weights);
}

TEST(RedisQueries, QueriesSerializeOnSingleCpu) {
  RedisEnv env;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(env.run(
        env.add(ModelId::make(1, static_cast<uint32_t>(i + 1)),
                chain_graph(6, 8, (i % 5) + 1, 7 + i), 0.5)));
  }
  double t0 = env.sim.now();
  // One query to measure the single-query latency.
  auto q = env.run(env.redis->query(env.client_node, chain_graph(6, 8)));
  ASSERT_TRUE(q.ok());
  double single = env.sim.now() - t0;
  ASSERT_GT(single, 0.0);

  // 8 concurrent queries: single CPU means ~8x the latency, not ~1x.
  double t1 = env.sim.now();
  auto issue = [&]() -> CoTask<void> {
    auto r = co_await env.redis->query(env.client_node, chain_graph(6, 8));
    EXPECT_TRUE(r.ok());
  };
  std::vector<sim::Future<void>> fs;
  for (int i = 0; i < 8; ++i) fs.push_back(env.sim.spawn(issue()));
  env.sim.run();
  double batch = env.sim.now() - t1;
  EXPECT_GT(batch, 6.0 * single);
}

TEST(RedisQueries, AddBlocksQueriesViaMetadataLock) {
  // A writer holding the global metadata lock delays readers (the paper's
  // coordination cost). We interleave: start a query storm and an add.
  RedisEnv env;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(env.run(env.add(ModelId::make(1, static_cast<uint32_t>(i + 1)),
                                chain_graph(5, 8, (i % 4) + 1, 3 + i), 0.5)));
  }
  int completed = 0;
  auto query_loop = [&]() -> CoTask<void> {
    for (int i = 0; i < 5; ++i) {
      auto r = co_await env.redis->query(env.client_node, chain_graph(5, 8));
      EXPECT_TRUE(r.ok());
      ++completed;
    }
  };
  auto adder = [&]() -> CoTask<void> {
    bool ok = co_await env.add(ModelId::make(2, 1), chain_graph(5, 8, 2, 99), 0.4);
    EXPECT_TRUE(ok);
  };
  auto f1 = env.sim.spawn(query_loop());
  auto f2 = env.sim.spawn(adder());
  env.sim.run();
  (void)f1; (void)f2;
  EXPECT_EQ(completed, 5);
  EXPECT_EQ(env.redis->published_count(), 21u);
}

TEST(RedisQueries, StatsAccounting) {
  RedisEnv env;
  ASSERT_TRUE(env.run(env.add(ModelId::make(1, 1), chain_graph(3, 8), 0.5)));
  (void)env.run(env.redis->query(env.client_node, chain_graph(3, 8)));
  (void)env.run(env.redis->query(env.client_node, chain_graph(3, 8)));
  EXPECT_EQ(env.redis->stats().queries, 2u);
  EXPECT_EQ(env.redis->stats().entries_scanned, 2u);
}

}  // namespace
}  // namespace evostore::baseline
