#include "cache/segment_cache.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace evostore::cache {
namespace {

using common::SegmentKey;
using compress::CompressedSegment;

SegmentKey key_of(uint64_t owner, uint32_t vertex) {
  SegmentKey k;
  k.owner.value = owner;
  k.vertex = vertex;
  return k;
}

CompressedSegment env_of(uint64_t bytes) {
  CompressedSegment env;
  env.logical_bytes = bytes;
  env.physical_bytes = bytes;
  return env;
}

TEST(SegmentCache, InsertLookupAndByteAccounting) {
  SegmentCache cache(CacheConfig{.capacity_bytes = 1000});
  cache.insert(key_of(1, 0), env_of(100), /*version=*/7, /*now=*/0.0);
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ(cache.charged_bytes(), 100u);
  const auto* e = cache.lookup(key_of(1, 0));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->version, 7u);
  EXPECT_EQ(e->envelope.physical_bytes, 100u);
  EXPECT_EQ(cache.lookup(key_of(1, 1)), nullptr);
}

TEST(SegmentCache, ClockEvictionGivesSecondChance) {
  SegmentCache cache(CacheConfig{.capacity_bytes = 300});
  cache.insert(key_of(1, 0), env_of(100), 1, 0.0);  // a
  cache.insert(key_of(1, 1), env_of(100), 1, 0.0);  // b
  cache.insert(key_of(1, 2), env_of(100), 1, 0.0);  // c
  // Touch a: its reference bit spares it one sweep; the hand clears the bit
  // and evicts the first cold entry behind it (b).
  ASSERT_NE(cache.lookup(key_of(1, 0)), nullptr);
  cache.insert(key_of(1, 3), env_of(100), 1, 0.0);  // d
  EXPECT_NE(cache.lookup(key_of(1, 0)), nullptr);
  EXPECT_EQ(cache.lookup(key_of(1, 1)), nullptr);
  EXPECT_NE(cache.lookup(key_of(1, 2)), nullptr);
  EXPECT_NE(cache.lookup(key_of(1, 3)), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_LE(cache.charged_bytes(), 300u);
}

TEST(SegmentCache, EvictionSweepsInRingOrder) {
  SegmentCache cache(CacheConfig{.capacity_bytes = 300});
  cache.insert(key_of(1, 0), env_of(100), 1, 0.0);  // a
  cache.insert(key_of(1, 1), env_of(100), 1, 0.0);  // b
  cache.insert(key_of(1, 2), env_of(100), 1, 0.0);  // c
  ASSERT_NE(cache.lookup(key_of(1, 0)), nullptr);
  cache.insert(key_of(1, 3), env_of(100), 1, 0.0);  // evicts b; hand at c
  ASSERT_NE(cache.lookup(key_of(1, 2)), nullptr);   // c referenced
  cache.insert(key_of(1, 4), env_of(100), 1, 0.0);  // c spared -> d evicted
  EXPECT_NE(cache.lookup(key_of(1, 2)), nullptr);
  EXPECT_EQ(cache.lookup(key_of(1, 3)), nullptr);
  EXPECT_NE(cache.lookup(key_of(1, 4)), nullptr);
  EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(SegmentCache, OversizedEnvelopeIsNotCached) {
  SegmentCache cache(CacheConfig{.capacity_bytes = 100});
  cache.insert(key_of(1, 0), env_of(50), 1, 0.0);
  cache.insert(key_of(1, 1), env_of(101), 1, 0.0);  // larger than the budget
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ(cache.lookup(key_of(1, 1)), nullptr);
  // The resident entry survives (no pointless full eviction).
  EXPECT_NE(cache.lookup(key_of(1, 0)), nullptr);
}

TEST(SegmentCache, ReplaceInPlaceAdjustsCharge) {
  SegmentCache cache(CacheConfig{.capacity_bytes = 1000});
  cache.insert(key_of(1, 0), env_of(100), 1, 0.0);
  cache.insert(key_of(1, 0), env_of(300), 2, 1.0);
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ(cache.charged_bytes(), 300u);
  const auto* e = cache.lookup(key_of(1, 0));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->version, 2u);
  EXPECT_EQ(e->validated_at, 1.0);
}

TEST(SegmentCache, RevalidateRefreshesTrustWindow) {
  SegmentCache cache(CacheConfig{.capacity_bytes = 1000,
                                 .trust_seconds = 5.0});
  cache.insert(key_of(1, 0), env_of(10), 3, 0.0);
  const auto* e = cache.lookup(key_of(1, 0));
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(cache.trusted(*e, 5.0));
  EXPECT_FALSE(cache.trusted(*e, 5.1));
  EXPECT_TRUE(cache.revalidate(key_of(1, 0), 3, 6.0));
  EXPECT_TRUE(cache.trusted(*e, 11.0));
  EXPECT_EQ(cache.stats().invalidations, 0u);
}

TEST(SegmentCache, RevalidateVersionMismatchInvalidates) {
  SegmentCache cache(CacheConfig{.capacity_bytes = 1000});
  cache.insert(key_of(1, 0), env_of(10), 3, 0.0);
  // A re-created key carries a strictly newer version: the stale entry must
  // go, never be served.
  EXPECT_FALSE(cache.revalidate(key_of(1, 0), 4, 1.0));
  EXPECT_EQ(cache.lookup(key_of(1, 0)), nullptr);
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_FALSE(cache.revalidate(key_of(1, 0), 4, 1.0));  // absent -> false
}

TEST(SegmentCache, InvalidateCountsOnlyRealDrops) {
  SegmentCache cache(CacheConfig{.capacity_bytes = 1000});
  cache.insert(key_of(1, 0), env_of(10), 1, 0.0);
  cache.invalidate(key_of(1, 0));
  cache.invalidate(key_of(1, 0));  // already gone
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.charged_bytes(), 0u);
}

TEST(SegmentCache, BudgetHoldsUnderChurn) {
  SegmentCache cache(CacheConfig{.capacity_bytes = 512});
  for (uint32_t i = 0; i < 100; ++i) {
    cache.insert(key_of(1, i), env_of(64 + i % 32), 1, 0.0);
    if (i % 3 == 0) cache.lookup(key_of(1, i / 2));
    EXPECT_LE(cache.charged_bytes(), 512u);
  }
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(SegmentCache, MetricsMirrorTracksCountersAndGauge) {
  obs::MetricsRegistry registry;
  SegmentCache cache(CacheConfig{.capacity_bytes = 200});
  cache.bind_metrics(&registry, "client.cache");
  cache.insert(key_of(1, 0), env_of(100), 1, 0.0);
  cache.insert(key_of(1, 1), env_of(100), 1, 0.0);
  cache.insert(key_of(1, 2), env_of(100), 1, 0.0);  // forces one eviction
  cache.count_hit(100);
  cache.count_miss();
  cache.count_revalidation(50);
  cache.count_peer_hit();
  cache.count_peer_miss();
  cache.invalidate(key_of(1, 2));
  EXPECT_EQ(registry.counter("client.cache.inserts")->value(), 3u);
  EXPECT_EQ(registry.counter("client.cache.evictions")->value(), 1u);
  EXPECT_EQ(registry.counter("client.cache.hits")->value(), 1u);
  EXPECT_EQ(registry.counter("client.cache.misses")->value(), 1u);
  EXPECT_EQ(registry.counter("client.cache.revalidations")->value(), 1u);
  EXPECT_EQ(registry.counter("client.cache.peer_hits")->value(), 1u);
  EXPECT_EQ(registry.counter("client.cache.peer_misses")->value(), 1u);
  EXPECT_EQ(registry.counter("client.cache.invalidations")->value(), 1u);
  EXPECT_EQ(registry.counter("client.cache.bytes_saved")->value(), 150u);
  EXPECT_EQ(registry.gauge("client.cache.cached_bytes")->value(),
            static_cast<double>(cache.charged_bytes()));
  EXPECT_EQ(cache.stats().bytes_saved, 150u);
}

TEST(SegmentCache, ClearDropsEverything) {
  SegmentCache cache(CacheConfig{.capacity_bytes = 1000});
  cache.insert(key_of(1, 0), env_of(10), 1, 0.0);
  cache.insert(key_of(1, 1), env_of(10), 1, 0.0);
  cache.clear();
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.charged_bytes(), 0u);
  EXPECT_EQ(cache.lookup(key_of(1, 0)), nullptr);
  // Still usable after clear.
  cache.insert(key_of(1, 2), env_of(10), 1, 0.0);
  EXPECT_EQ(cache.entry_count(), 1u);
}

}  // namespace
}  // namespace evostore::cache
