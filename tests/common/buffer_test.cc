#include "common/buffer.h"

#include <gtest/gtest.h>

#include <cstring>

namespace evostore::common {
namespace {

Bytes make_bytes(std::initializer_list<int> vals) {
  Bytes b;
  for (int v : vals) b.push_back(static_cast<std::byte>(v));
  return b;
}

TEST(Buffer, EmptyDefault) {
  Buffer b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.empty());
  EXPECT_FALSE(b.is_synthetic());
}

TEST(Buffer, DenseRoundTrip) {
  Buffer b = Buffer::dense(make_bytes({1, 2, 3, 4, 5}));
  EXPECT_EQ(b.size(), 5u);
  EXPECT_FALSE(b.is_synthetic());
  Bytes out = b.to_bytes();
  EXPECT_EQ(out, make_bytes({1, 2, 3, 4, 5}));
}

TEST(Buffer, ZerosIsAllZero) {
  Buffer b = Buffer::zeros(16);
  for (std::byte x : b.to_bytes()) EXPECT_EQ(x, std::byte{0});
}

TEST(Buffer, CopyFromSpan) {
  Bytes src = make_bytes({9, 8, 7});
  Buffer b = Buffer::copy(src);
  EXPECT_EQ(b.to_bytes(), src);
}

TEST(Buffer, SyntheticIsDeterministic) {
  Buffer a = Buffer::synthetic(1000, 42);
  Buffer b = Buffer::synthetic(1000, 42);
  EXPECT_TRUE(a.is_synthetic());
  EXPECT_EQ(a.to_bytes(), b.to_bytes());
  Buffer c = Buffer::synthetic(1000, 43);
  EXPECT_NE(a.to_bytes(), c.to_bytes());
}

TEST(Buffer, SyntheticResidentFootprintIsZero) {
  Buffer big = Buffer::synthetic(1ull << 33, 7);  // 8 GB logical
  EXPECT_EQ(big.size(), 1ull << 33);
  EXPECT_EQ(big.resident_bytes(), 0u);
}

TEST(Buffer, ReadAtOffsetMatchesFullRead) {
  Buffer b = Buffer::synthetic(4096, 5);
  Bytes full = b.to_bytes();
  for (size_t off : {0ul, 1ul, 7ul, 8ul, 100ul, 4000ul}) {
    Bytes chunk(64);
    if (off + chunk.size() > b.size()) continue;
    b.read(off, chunk);
    EXPECT_EQ(0, std::memcmp(chunk.data(), full.data() + off, chunk.size()))
        << "offset " << off;
  }
}

TEST(Buffer, SyntheticByteMatchesStream) {
  Buffer b = Buffer::synthetic(64, 9);
  Bytes full = b.to_bytes();
  for (size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(Buffer::synthetic_byte(9, i), full[i]) << "pos " << i;
  }
}

TEST(Buffer, MaterializeEqualsSynthetic) {
  Buffer s = Buffer::synthetic(777, 13);
  Buffer d = s.materialize();
  EXPECT_FALSE(d.is_synthetic());
  EXPECT_TRUE(s.content_equals(d));
  EXPECT_EQ(s.content_hash(), d.content_hash());
}

TEST(Buffer, SliceDense) {
  Buffer b = Buffer::dense(make_bytes({0, 1, 2, 3, 4, 5, 6, 7}));
  Buffer s = b.slice(2, 4);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s.to_bytes(), make_bytes({2, 3, 4, 5}));
}

TEST(Buffer, SliceSyntheticKeepsContent) {
  Buffer b = Buffer::synthetic(100, 3);
  Bytes full = b.to_bytes();
  Buffer s = b.slice(10, 50);
  EXPECT_TRUE(s.is_synthetic());
  Bytes sl = s.to_bytes();
  EXPECT_EQ(0, std::memcmp(sl.data(), full.data() + 10, 50));
}

TEST(Buffer, SliceOfSlice) {
  Buffer b = Buffer::synthetic(100, 3);
  Buffer s = b.slice(10, 50).slice(5, 10);
  Bytes full = b.to_bytes();
  Bytes sl = s.to_bytes();
  EXPECT_EQ(0, std::memcmp(sl.data(), full.data() + 15, 10));
}

TEST(Buffer, SliceZeroLength) {
  Buffer b = Buffer::synthetic(10, 1);
  Buffer s = b.slice(5, 0);
  EXPECT_TRUE(s.empty());
}

TEST(Buffer, ContentEqualsAcrossRepresentations) {
  Buffer s = Buffer::synthetic(300, 21);
  Buffer d = Buffer::dense(s.to_bytes());
  EXPECT_TRUE(s.content_equals(d));
  EXPECT_TRUE(d.content_equals(s));
  Buffer other = Buffer::synthetic(300, 22);
  EXPECT_FALSE(s.content_equals(other));
}

TEST(Buffer, ContentEqualsDifferentSizes) {
  EXPECT_FALSE(Buffer::synthetic(10, 1).content_equals(Buffer::synthetic(11, 1)));
}

TEST(Buffer, ContentHashConsistent) {
  Buffer a = Buffer::dense(make_bytes({1, 2, 3}));
  Buffer b = Buffer::copy(a.dense_span());
  EXPECT_EQ(a.content_hash(), b.content_hash());
  EXPECT_NE(a.content_hash(), Buffer::dense(make_bytes({1, 2, 4})).content_hash());
}

TEST(Buffer, ContentHashLargeSyntheticStreams) {
  // Chunked hashing path (> 64 KiB).
  Buffer big = Buffer::synthetic(200 * 1024, 77);
  Buffer dense = big.materialize();
  EXPECT_EQ(big.content_hash(), dense.content_hash());
}

TEST(Buffer, IdentityIsCheapAndStable) {
  Buffer a = Buffer::synthetic(1ull << 30, 5);
  Buffer b = Buffer::synthetic(1ull << 30, 5);
  EXPECT_EQ(a.identity(), b.identity());
  EXPECT_NE(a.identity(), Buffer::synthetic(1ull << 30, 6).identity());
  EXPECT_NE(a.identity(), Buffer::synthetic((1ull << 30) + 1, 5).identity());
}

TEST(Buffer, SharedStorageSlicesAreZeroCopy) {
  Buffer b = Buffer::dense(Bytes(1024));
  Buffer s1 = b.slice(0, 512);
  Buffer s2 = b.slice(512, 512);
  // Dense spans point into the same allocation.
  EXPECT_EQ(s1.dense_span().data() + 512, s2.dense_span().data());
}

TEST(Buffer, EqualFastPathSameDescriptor) {
  Buffer a = Buffer::synthetic(1ull << 40, 9);  // 1 TB logical
  Buffer b = Buffer::synthetic(1ull << 40, 9);
  // Must use the descriptor fast path (no 1 TB scan).
  EXPECT_TRUE(a.content_equals(b));
}

}  // namespace
}  // namespace evostore::common
