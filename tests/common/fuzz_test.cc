// Robustness fuzzing: malformed wire bytes must never crash, hang, or
// silently decode wrong data — decoders either round-trip exactly or report
// a sticky error. Seeded and deterministic.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/wire.h"
#include "storage/h5file.h"
#include "tests/core/test_env.h"

namespace evostore {
namespace {

using common::Buffer;
using common::Bytes;
using common::Deserializer;
using common::Serializer;
using common::Xoshiro256;

Bytes random_bytes(Xoshiro256& rng, size_t max_len) {
  Bytes out(rng.below(max_len + 1));
  for (auto& b : out) b = static_cast<std::byte>(rng.below(256));
  return out;
}

Bytes mutate_bytes(const Bytes& in, Xoshiro256& rng) {
  Bytes out = in;
  switch (rng.below(3)) {
    case 0:  // truncate
      if (!out.empty()) out.resize(rng.below(out.size()));
      break;
    case 1:  // bit flip
      if (!out.empty()) {
        size_t pos = rng.below(out.size());
        out[pos] = out[pos] ^ static_cast<std::byte>(1u << rng.below(8));
      }
      break;
    default:  // splice garbage
      if (!out.empty()) {
        size_t pos = rng.below(out.size());
        out[pos] = static_cast<std::byte>(rng.below(256));
        if (out.size() > 4) out.erase(out.begin() + static_cast<long>(pos % 3));
      }
      break;
  }
  return out;
}

TEST(Fuzz, DeserializerNeverCrashesOnRandomBytes) {
  Xoshiro256 rng(1);
  for (int iter = 0; iter < 3000; ++iter) {
    Bytes data = random_bytes(rng, 64);
    Deserializer d(data);
    // Drive a random read program over the garbage.
    for (int op = 0; op < 8; ++op) {
      switch (rng.below(7)) {
        case 0: (void)d.u8(); break;
        case 1: (void)d.u32(); break;
        case 2: (void)d.u64(); break;
        case 3: (void)d.i64(); break;
        case 4: (void)d.f64(); break;
        case 5: (void)d.str(); break;
        default: (void)d.buffer(); break;
      }
    }
    (void)d.finish();  // must not crash; may be ok or error
  }
  SUCCEED();
}

TEST(Fuzz, ArchGraphDecodeRejectsOrRoundTrips) {
  Xoshiro256 rng(2);
  auto graph = core::testing::chain_graph(6, 16, 2);
  Serializer s;
  graph.serialize(s);
  const Bytes valid = s.data();

  int ok_count = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    Bytes mutated = mutate_bytes(valid, rng);
    Deserializer d(mutated);
    auto g = model::ArchGraph::deserialize(d);
    if (d.finish().ok()) {
      ++ok_count;
      // Whatever decoded must be internally consistent: edges in range.
      for (common::VertexId v = 0; v < g.size(); ++v) {
        for (auto to : g.out_edges(v)) {
          ASSERT_LT(to, g.size());
        }
      }
    }
  }
  // Some mutations (e.g., hyperparameter bit flips) decode fine — but the
  // framing must catch structural damage most of the time.
  EXPECT_LT(ok_count, 1500);
}

TEST(Fuzz, WireMessagesSurviveMutation) {
  Xoshiro256 rng(3);
  core::wire::PutModelRequest req;
  req.id = common::ModelId::make(1, 1);
  req.ancestor = common::ModelId::make(1, 2);
  req.quality = 0.8;
  req.graph = core::testing::chain_graph(4, 8);
  req.owners = core::OwnerMap::self_owned(req.id, req.graph.size());
  for (common::VertexId v = 0; v < req.graph.size(); ++v) {
    auto env = compress::compress_segment(
        model::make_random_segment(req.graph, v, 7), compress::CodecId::kRaw);
    ASSERT_TRUE(env.ok());
    req.new_segments.emplace_back(v, std::move(env).value());
  }
  Serializer s;
  req.serialize(s);
  const Bytes valid = s.data();

  // The untouched message round-trips.
  {
    Deserializer d(valid);
    auto out = core::wire::PutModelRequest::deserialize(d);
    ASSERT_TRUE(d.finish().ok());
    EXPECT_EQ(out.id, req.id);
    EXPECT_EQ(out.owners, req.owners);
    EXPECT_EQ(out.new_segments.size(), req.new_segments.size());
  }
  for (int iter = 0; iter < 2000; ++iter) {
    Bytes mutated = mutate_bytes(valid, rng);
    Deserializer d(mutated);
    auto out = core::wire::PutModelRequest::deserialize(d);
    (void)out;
    (void)d.finish();  // must not crash or hang
  }
  SUCCEED();
}

TEST(Fuzz, H5ReaderRejectsMutatedTocs) {
  Xoshiro256 rng(4);
  storage::H5Writer w;
  w.put_attr("quality", "0.5");
  ASSERT_TRUE(
      w.put_dataset("/w/k", model::Tensor::random({{8, 8}, model::DType::kF32}, 1))
          .ok());
  ASSERT_TRUE(
      w.put_dataset("/w/b", model::Tensor::random({{8}, model::DType::kF32}, 2))
          .ok());
  auto extents = std::move(w).finish();
  Bytes toc = extents[0].to_bytes();

  for (int iter = 0; iter < 1500; ++iter) {
    auto mutated = extents;
    mutated[0] = Buffer::dense(mutate_bytes(toc, rng));
    auto r = storage::H5Reader::open(std::move(mutated));
    if (r.ok()) {
      // Accepted images must still be self-consistent.
      for (const auto& path : r->dataset_paths()) {
        auto t = r->dataset(path);
        ASSERT_TRUE(t.ok());
      }
    }
  }
  SUCCEED();
}

TEST(Fuzz, OwnerMapDeserializeBounded) {
  // Length-prefix attacks: a huge claimed count on a tiny payload must fail
  // without attempting a huge allocation... within reason (reserve() on the
  // claimed count is bounded by the varint check failing first on read).
  Serializer s;
  s.u64(1ull << 20);  // claims a million entries, provides none
  Deserializer d(s.data());
  auto m = core::OwnerMap::deserialize(d);
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(m.size(), 0u);
}

TEST(Fuzz, SegmentDeserializeGarbageTensorCount) {
  Serializer s;
  s.u64(3);  // three tensors claimed, zero provided
  Deserializer d(s.data());
  auto seg = model::Segment::deserialize(d);
  EXPECT_FALSE(d.ok());
  EXPECT_TRUE(seg.tensors.empty() || seg.nbytes() == 0);
}

TEST(Fuzz, CompressedSegmentSurvivesMutation) {
  // Mutated envelopes must deserialize without crashing, and the full decode
  // path (envelope -> codec -> tensors) must either round-trip or return a
  // Status — never crash, hang, or over-allocate.
  Xoshiro256 rng(5);
  auto graph = core::testing::chain_graph(3, 8);
  model::Segment base = model::make_random_segment(graph, 1, 11);
  model::Segment child = base;
  // A dense tensor so the delta codec exercises its RLE-diff payload too.
  {
    Bytes bytes(base.tensors[0].data().size());
    base.tensors[0].data().read(0, bytes);
    base.tensors[0] = model::Tensor(
        base.tensors[0].spec(),
        Buffer::copy(std::span<const std::byte>(bytes)));
    bytes[0] ^= std::byte{0x11};
    child.tensors[0] = model::Tensor(
        base.tensors[0].spec(),
        Buffer::copy(std::span<const std::byte>(bytes)));
  }
  common::SegmentKey base_key{common::ModelId::make(1, 1), 1};

  for (compress::CodecId codec :
       {compress::CodecId::kRaw, compress::CodecId::kZeroRle,
        compress::CodecId::kDeltaVsAncestor}) {
    auto env = compress::compress_segment(child, codec, &base, &base_key);
    ASSERT_TRUE(env.ok());
    Serializer s;
    env->serialize(s);
    const Bytes valid = s.data();

    // Untouched envelope round-trips through serde + decode.
    {
      Deserializer d(valid);
      auto out = compress::CompressedSegment::deserialize(d);
      ASSERT_TRUE(d.finish().ok());
      auto seg = compress::decompress_segment(out, &base);
      ASSERT_TRUE(seg.ok()) << seg.status().to_string();
      EXPECT_TRUE(seg->content_equals(child));
    }
    for (int iter = 0; iter < 2000; ++iter) {
      Bytes mutated = mutate_bytes(valid, rng);
      Deserializer d(mutated);
      auto out = compress::CompressedSegment::deserialize(d);
      if (!d.finish().ok()) continue;
      // Decodable framing: the codec layer must still verify content.
      auto seg = compress::decompress_segment(out, &base);
      if (seg.ok()) {
        EXPECT_EQ(seg->nbytes(), out.logical_bytes);
      }
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace evostore
