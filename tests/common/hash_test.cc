#include "common/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

namespace evostore::common {
namespace {

TEST(Mix64, IsDeterministicAndSpreads) {
  EXPECT_EQ(mix64(1), mix64(1));
  EXPECT_NE(mix64(1), mix64(2));
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 1000; ++i) seen.insert(mix64(i));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Fnv1a64, MatchesSelfAndDiffersOnContent) {
  std::string a = "hello world";
  std::string b = "hello worle";
  EXPECT_EQ(fnv1a64(a), fnv1a64(a));
  EXPECT_NE(fnv1a64(a), fnv1a64(b));
  EXPECT_NE(fnv1a64(a, 1), fnv1a64(a, 2));  // seed matters
}

TEST(Fnv1a64, HandlesAllLengths) {
  // Exercise the word loop plus every tail length.
  std::string data(37, 'x');
  std::set<uint64_t> hashes;
  for (size_t len = 0; len <= data.size(); ++len) {
    hashes.insert(fnv1a64(data.data(), len));
  }
  EXPECT_EQ(hashes.size(), data.size() + 1);
}

TEST(Hash128, OrderingAndEquality) {
  Hash128 a{1, 2};
  Hash128 b{1, 3};
  Hash128 c{2, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (Hash128{1, 2}));
  EXPECT_TRUE(Hash128{}.is_zero());
  EXPECT_FALSE(a.is_zero());
}

TEST(Hash128, HexFormat) {
  Hash128 h{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  EXPECT_EQ(h.hex(), "0123456789abcdeffedcba9876543210");
  EXPECT_EQ(Hash128{}.hex(), std::string(32, '0'));
}

TEST(Hash128Bytes, DistinctContentDistinctHash) {
  std::string a = "abc";
  std::string b = "abd";
  EXPECT_EQ(hash128_str(a), hash128_str(a));
  EXPECT_NE(hash128_str(a), hash128_str(b));
  EXPECT_NE(hash128_str(a, 0), hash128_str(a, 1));
}

TEST(Hasher128, StructuredAppendsAreOrderSensitive) {
  Hasher128 h1;
  h1.u64(1).u64(2);
  Hasher128 h2;
  h2.u64(2).u64(1);
  EXPECT_NE(h1.finish(), h2.finish());
}

TEST(Hasher128, TypedAppendsAreDistinguished) {
  // str("ab") followed by str("c") must differ from str("a") + str("bc"):
  // length prefixes prevent concatenation ambiguity.
  Hasher128 h1;
  h1.str("ab").str("c");
  Hasher128 h2;
  h2.str("a").str("bc");
  EXPECT_NE(h1.finish(), h2.finish());
}

TEST(Hasher128, F64DistinguishesValues) {
  Hasher128 h1, h2, h3;
  h1.f64(1.0);
  h2.f64(1.0000000001);
  h3.f64(1.0);
  EXPECT_NE(h1.finish(), h2.finish());
  EXPECT_EQ(h1.finish(), h3.finish());
}

TEST(Hasher128, SeedChangesResult) {
  Hasher128 a(1), b(2);
  a.u64(42);
  b.u64(42);
  EXPECT_NE(a.finish(), b.finish());
}

TEST(Hasher128, NoCollisionsOverManyInputs) {
  std::set<Hash128> seen;
  for (uint64_t i = 0; i < 20000; ++i) {
    Hasher128 h;
    h.u64(i);
    seen.insert(h.finish());
  }
  EXPECT_EQ(seen.size(), 20000u);
}

TEST(Hash128, UsableInUnorderedSet) {
  std::unordered_set<Hash128> set;
  set.insert(Hash128{1, 2});
  set.insert(Hash128{1, 2});
  set.insert(Hash128{3, 4});
  EXPECT_EQ(set.size(), 2u);
}

TEST(HashCombine, NotCommutative) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

}  // namespace
}  // namespace evostore::common
