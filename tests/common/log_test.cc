#include "common/log.h"

#include <gtest/gtest.h>

#include "sim/simulation.h"

namespace evostore::common {
namespace {

TEST(Log, ParseLevelCaseInsensitive) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("Info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("wArN"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("ERROR"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("OFF"), LogLevel::kOff);
}

TEST(Log, ParseLevelRejectsGarbage) {
  EXPECT_EQ(parse_log_level(""), std::nullopt);
  EXPECT_EQ(parse_log_level("verbose"), std::nullopt);
  EXPECT_EQ(parse_log_level("warning"), std::nullopt);  // exact names only
  EXPECT_EQ(parse_log_level("debug "), std::nullopt);   // no trimming
  EXPECT_EQ(parse_log_level("débug"), std::nullopt);
}

TEST(Log, SetAndGetLevel) {
  LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(before);
}

TEST(Log, TimeSourceRegisterAndClear) {
  void* before = log_time_ctx();
  int marker = 0;
  auto fn = +[](void* ctx) { return *static_cast<int*>(ctx) + 0.5; };
  set_log_time_source(fn, &marker);
  EXPECT_EQ(log_time_ctx(), &marker);
  set_log_time_source(nullptr, nullptr);
  EXPECT_EQ(log_time_ctx(), nullptr);
  // Restore whatever was registered when the test started (another test's
  // simulation may be alive).
  set_log_time_source(nullptr, before);
}

TEST(Log, SimulationRegistersItsClock) {
  {
    sim::Simulation sim;
    EXPECT_EQ(log_time_ctx(), &sim);
    {
      // A nested (newer) simulation takes over the registration...
      sim::Simulation inner;
      EXPECT_EQ(log_time_ctx(), &inner);
    }
    // ...and the outer one does NOT clear the slot when the inner one was
    // the registrant at its destruction: destroying `inner` cleared it.
    EXPECT_EQ(log_time_ctx(), nullptr);
  }
  EXPECT_EQ(log_time_ctx(), nullptr);
}

TEST(Log, ThreadIdStable) {
  unsigned a = log_thread_id();
  unsigned b = log_thread_id();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace evostore::common
