#include "common/rng.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace evostore::common {
namespace {

TEST(SplitMix64, StatefulMatchesStateless) {
  SplitMix64 sm(123);
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(sm.next(), SplitMix64::at(123, i)) << "index " << i;
  }
}

TEST(SplitMix64, DistinctSeedsDistinctStreams) {
  EXPECT_NE(SplitMix64::at(1, 0), SplitMix64::at(2, 0));
}

TEST(Xoshiro, DeterministicFromSeed) {
  Xoshiro256 a(7), b(7), c(8);
  for (int i = 0; i < 32; ++i) {
    uint64_t va = a.next();
    EXPECT_EQ(va, b.next());
  }
  bool any_diff = false;
  Xoshiro256 a2(7);
  for (int i = 0; i < 32; ++i) any_diff |= (a2.next() != c.next());
  EXPECT_TRUE(any_diff);
}

TEST(Xoshiro, BelowStaysInRange) {
  Xoshiro256 rng(99);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(7), 7u);
  }
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro, BelowCoversAllValues) {
  Xoshiro256 rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Xoshiro, BelowIsRoughlyUniform) {
  Xoshiro256 rng(11);
  constexpr int kBuckets = 8;
  constexpr int kSamples = 80000;
  std::map<uint64_t, int> counts;
  for (int i = 0; i < kSamples; ++i) ++counts[rng.below(kBuckets)];
  for (auto [bucket, count] : counts) {
    EXPECT_NEAR(count, kSamples / kBuckets, kSamples / kBuckets * 0.1)
        << "bucket " << bucket;
  }
}

TEST(Xoshiro, RangeInclusive) {
  Xoshiro256 rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(rng.range(4, 4), 4);
}

TEST(Xoshiro, UniformInUnitInterval) {
  Xoshiro256 rng(17);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.01);
}

TEST(Xoshiro, UniformRangeRespectsBounds) {
  Xoshiro256 rng(21);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform(2.5, 3.5);
    EXPECT_GE(u, 2.5);
    EXPECT_LT(u, 3.5);
  }
}

TEST(Xoshiro, NormalHasExpectedMoments) {
  Xoshiro256 rng(31);
  double sum = 0, sum_sq = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.03);
}

TEST(Xoshiro, NormalWithParams) {
  Xoshiro256 rng(37);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.1);
}

TEST(Xoshiro, ExponentialMeanMatches) {
  Xoshiro256 rng(41);
  double sum = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    double x = rng.exponential(3.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kN, 3.0, 0.1);
}

TEST(Xoshiro, ChanceProbability) {
  Xoshiro256 rng(43);
  int hits = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) hits += rng.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.25, 0.01);
}

TEST(Xoshiro, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Xoshiro256>);
  SUCCEED();
}

}  // namespace
}  // namespace evostore::common
