#include "common/serde.h"

#include <gtest/gtest.h>

#include <limits>

namespace evostore::common {
namespace {

TEST(Serde, ScalarRoundTrip) {
  Serializer s;
  s.u8(200);
  s.u32(123456);
  s.u64(0xdeadbeefcafeULL);
  s.i64(-42);
  s.boolean(true);
  s.f64(3.14159);
  Bytes data = std::move(s).take();

  Deserializer d(data);
  EXPECT_EQ(d.u8(), 200);
  EXPECT_EQ(d.u32(), 123456u);
  EXPECT_EQ(d.u64(), 0xdeadbeefcafeULL);
  EXPECT_EQ(d.i64(), -42);
  EXPECT_TRUE(d.boolean());
  EXPECT_DOUBLE_EQ(d.f64(), 3.14159);
  EXPECT_TRUE(d.finish().ok());
}

TEST(Serde, VarintBoundaries) {
  Serializer s;
  const uint64_t values[] = {0,     127,   128,
                             16383, 16384, std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : values) s.u64(v);
  Deserializer d(s.data());
  EXPECT_EQ(d.u64(), 0u);
  EXPECT_EQ(d.u64(), 127u);
  EXPECT_EQ(d.u64(), 128u);
  EXPECT_EQ(d.u64(), 16383u);
  EXPECT_EQ(d.u64(), 16384u);
  EXPECT_EQ(d.u64(), std::numeric_limits<uint64_t>::max());
  EXPECT_TRUE(d.finish().ok());
}

TEST(Serde, ZigzagExtremes) {
  Serializer s;
  s.i64(std::numeric_limits<int64_t>::min());
  s.i64(std::numeric_limits<int64_t>::max());
  s.i64(0);
  s.i64(-1);
  Deserializer d(s.data());
  EXPECT_EQ(d.i64(), std::numeric_limits<int64_t>::min());
  EXPECT_EQ(d.i64(), std::numeric_limits<int64_t>::max());
  EXPECT_EQ(d.i64(), 0);
  EXPECT_EQ(d.i64(), -1);
}

TEST(Serde, StringsAndBytes) {
  Serializer s;
  s.str("");
  s.str("hello");
  s.str(std::string(1000, 'z'));
  Bytes blob{std::byte{1}, std::byte{0}, std::byte{255}};
  s.bytes(blob);
  Deserializer d(s.data());
  EXPECT_EQ(d.str(), "");
  EXPECT_EQ(d.str(), "hello");
  EXPECT_EQ(d.str(), std::string(1000, 'z'));
  EXPECT_EQ(d.bytes(), blob);
  EXPECT_TRUE(d.finish().ok());
}

TEST(Serde, DenseBufferRoundTrip) {
  Serializer s;
  Buffer b = Buffer::copy(std::as_bytes(std::span("payload", 7)));
  s.buffer(b);
  Deserializer d(s.data());
  Buffer out = d.buffer();
  EXPECT_TRUE(out.content_equals(b));
  EXPECT_FALSE(out.is_synthetic());
}

TEST(Serde, SyntheticBufferTravelsAsDescriptor) {
  Serializer s;
  Buffer b = Buffer::synthetic(1ull << 32, 12345);  // 4 GB logical
  s.buffer(b);
  EXPECT_LT(s.size(), 64u);  // descriptor, not payload
  Deserializer d(s.data());
  Buffer out = d.buffer();
  EXPECT_TRUE(out.is_synthetic());
  EXPECT_EQ(out.size(), b.size());
  EXPECT_EQ(out.seed(), b.seed());
}

TEST(Serde, OffsetSyntheticSliceFallsBackToDense) {
  Buffer b = Buffer::synthetic(100, 7).slice(10, 20);
  Serializer s;
  s.buffer(b);
  Deserializer d(s.data());
  Buffer out = d.buffer();
  EXPECT_TRUE(out.content_equals(b));
}

TEST(Serde, TruncatedInputSetsStickyError) {
  Serializer s;
  s.str("hello world");
  Bytes data = std::move(s).take();
  data.resize(4);  // cut mid-string
  Deserializer d(data);
  (void)d.str();
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), ErrorCode::kCorruption);
  // Sticky: subsequent reads stay failed and return defaults.
  EXPECT_EQ(d.u64(), 0u);
  EXPECT_FALSE(d.finish().ok());
}

TEST(Serde, TrailingBytesFailFinish) {
  Serializer s;
  s.u8(1);
  s.u8(2);
  Deserializer d(s.data());
  EXPECT_EQ(d.u8(), 1);
  EXPECT_FALSE(d.finish().ok());
  EXPECT_EQ(d.u8(), 2);
  EXPECT_TRUE(d.finish().ok());
}

TEST(Serde, MalformedVarintOverflow) {
  Bytes data(11, std::byte{0xff});  // endless continuation bits
  Deserializer d(data);
  (void)d.u64();
  EXPECT_FALSE(d.ok());
}

TEST(Serde, U32RangeEnforced) {
  Serializer s;
  s.u64(1ull << 40);
  Deserializer d(s.data());
  (void)d.u32();
  EXPECT_FALSE(d.ok());
}

TEST(Serde, UnknownBufferTagFails) {
  Bytes data{std::byte{9}};
  Deserializer d(data);
  (void)d.buffer();
  EXPECT_FALSE(d.ok());
}

TEST(Serde, SkipAndRemaining) {
  Serializer s;
  s.u8(1);
  s.u8(2);
  s.u8(3);
  Deserializer d(s.data());
  d.skip(2);
  EXPECT_EQ(d.remaining().size(), 1u);
  EXPECT_EQ(d.u8(), 3);
  d.skip(1);
  EXPECT_FALSE(d.ok());
}

TEST(Serde, EmptyInput) {
  Deserializer d(std::span<const std::byte>{});
  EXPECT_TRUE(d.at_end());
  EXPECT_TRUE(d.finish().ok());
  (void)d.u8();
  EXPECT_FALSE(d.ok());
}

}  // namespace
}  // namespace evostore::common
