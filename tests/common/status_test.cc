#include "common/status.h"

#include <gtest/gtest.h>

namespace evostore::common {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.to_string(), "Ok");
}

TEST(Status, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x").code(), ErrorCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(Status::InvalidArgument("x").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(Status::Corruption("x").code(), ErrorCode::kCorruption);
  EXPECT_EQ(Status::IoError("x").code(), ErrorCode::kIoError);
  EXPECT_EQ(Status::Unavailable("x").code(), ErrorCode::kUnavailable);
  EXPECT_EQ(Status::Internal("x").code(), ErrorCode::kInternal);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(), ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Unimplemented("x").code(), ErrorCode::kUnimplemented);
  EXPECT_EQ(Status::NotFound("missing thing").message(), "missing thing");
}

TEST(Status, ToStringIncludesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("no such model").to_string(),
            "NotFound: no such model");
  EXPECT_EQ(Status(ErrorCode::kIoError, "").to_string(), "IoError");
}

TEST(Status, Equality) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, ValueOrReturnsValueWhenOk) {
  Result<int> r(7);
  EXPECT_EQ(r.value_or(-1), 7);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(Result, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

Status helper_propagates(bool fail) {
  EVO_RETURN_IF_ERROR(fail ? Status::IoError("inner") : Status::Ok());
  return Status::Ok();
}

TEST(StatusMacros, ReturnIfError) {
  EXPECT_TRUE(helper_propagates(false).ok());
  EXPECT_EQ(helper_propagates(true).code(), ErrorCode::kIoError);
}

TEST(ErrorCodeName, AllNamesDistinct) {
  EXPECT_EQ(error_code_name(ErrorCode::kOk), "Ok");
  EXPECT_EQ(error_code_name(ErrorCode::kCorruption), "Corruption");
  EXPECT_EQ(error_code_name(ErrorCode::kUnavailable), "Unavailable");
  EXPECT_EQ(error_code_name(ErrorCode::kDeadlineExceeded), "DeadlineExceeded");
  EXPECT_EQ(error_code_name(ErrorCode::kUnimplemented), "Unimplemented");
}

TEST(Status, RetryableCodes) {
  // Exactly the transient transport failures are retryable: a retry can
  // change their outcome. Application-level answers must never be retried.
  EXPECT_TRUE(is_retryable(ErrorCode::kUnavailable));
  EXPECT_TRUE(is_retryable(ErrorCode::kDeadlineExceeded));
  EXPECT_FALSE(is_retryable(ErrorCode::kOk));
  EXPECT_FALSE(is_retryable(ErrorCode::kNotFound));
  EXPECT_FALSE(is_retryable(ErrorCode::kAlreadyExists));
  EXPECT_FALSE(is_retryable(ErrorCode::kUnimplemented));
  EXPECT_FALSE(is_retryable(ErrorCode::kCorruption));
}

}  // namespace
}  // namespace evostore::common
