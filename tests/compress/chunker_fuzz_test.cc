// Chunker fuzz: for randomized inputs and configs, splitting at the reported
// boundaries and concatenating the pieces must reproduce the input exactly,
// and every non-final piece must respect the [min, max] contract. This is
// the property the read path's reassembly depends on.
#include <gtest/gtest.h>

#include <cstddef>
#include <span>
#include <vector>

#include "common/buffer.h"
#include "common/rng.h"
#include "compress/chunker.h"

namespace evostore::compress {
namespace {

using common::Bytes;

// Mix of byte distributions that stress the rolling hash differently:
// uniform random, long constant runs (force-splits), and a small alphabet
// (frequent hash collisions).
Bytes fuzz_bytes(size_t n, common::SplitMix64& rng) {
  Bytes out(n);
  size_t i = 0;
  while (i < n) {
    uint64_t mode = rng.next() % 3;
    size_t run = 1 + static_cast<size_t>(rng.next() % 512);
    std::byte constant = static_cast<std::byte>(rng.next() & 0xff);
    for (size_t j = 0; j < run && i < n; ++j, ++i) {
      switch (mode) {
        case 0: out[i] = static_cast<std::byte>(rng.next() & 0xff); break;
        case 1: out[i] = constant; break;
        default: out[i] = static_cast<std::byte>(rng.next() & 0x03); break;
      }
    }
  }
  return out;
}

ChunkerConfig fuzz_config(common::SplitMix64& rng) {
  ChunkerConfig cfg;
  cfg.min_bytes = 8 + static_cast<size_t>(rng.next() % 64);
  cfg.avg_bytes = cfg.min_bytes + 8 + static_cast<size_t>(rng.next() % 128);
  cfg.max_bytes = cfg.avg_bytes + 1 + static_cast<size_t>(rng.next() % 512);
  return cfg;
}

TEST(ChunkerFuzz, ReassemblyIsIdentityAcrossRandomInputsAndConfigs) {
  common::SplitMix64 rng(0xfeedULL);
  for (int iter = 0; iter < 200; ++iter) {
    size_t n = static_cast<size_t>(rng.next() % 20'000);
    Bytes data = fuzz_bytes(n, rng);
    ChunkerConfig cfg = fuzz_config(rng);
    ASSERT_TRUE(cfg.valid());

    auto ends = chunk_boundaries(data, cfg);
    if (data.empty()) {
      EXPECT_TRUE(ends.empty());
      continue;
    }
    ASSERT_FALSE(ends.empty());
    ASSERT_EQ(ends.back(), data.size());

    Bytes rebuilt;
    rebuilt.reserve(data.size());
    size_t start = 0;
    for (size_t i = 0; i < ends.size(); ++i) {
      size_t end = ends[i];
      ASSERT_GT(end, start) << "iter " << iter << " empty chunk at " << i;
      ASSERT_LE(end - start, cfg.max_bytes)
          << "iter " << iter << " oversized chunk at " << i;
      if (i + 1 < ends.size()) {
        ASSERT_GE(end - start, cfg.min_bytes)
            << "iter " << iter << " undersized non-final chunk at " << i;
      }
      auto piece = std::span<const std::byte>(data).subspan(start, end - start);
      rebuilt.insert(rebuilt.end(), piece.begin(), piece.end());
      start = end;
    }
    ASSERT_EQ(rebuilt, data) << "iter " << iter << " reassembly mismatch";
  }
}

TEST(ChunkerFuzz, DegenerateConfigsStillCoverTheInput) {
  common::SplitMix64 rng(0xbeefULL);
  Bytes data = fuzz_bytes(4096, rng);
  // Invalid orderings and zeros must degrade to one whole-stream chunk, not
  // crash or drop bytes.
  for (ChunkerConfig cfg : {ChunkerConfig{0, 0, 0}, ChunkerConfig{64, 32, 16},
                            ChunkerConfig{100, 100, 100}}) {
    if (cfg.valid()) continue;
    auto ends = chunk_boundaries(data, cfg);
    ASSERT_EQ(ends.size(), 1u);
    EXPECT_EQ(ends[0], data.size());
  }
}

}  // namespace
}  // namespace evostore::compress
