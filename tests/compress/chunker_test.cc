// Content-defined chunking: boundary determinism, min/max enforcement, and
// the shift-locality property that makes chunk dedup work (an edit realigns
// downstream boundaries instead of shifting every chunk).
#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <set>
#include <span>
#include <vector>

#include "common/buffer.h"
#include "common/hash.h"
#include "common/rng.h"
#include "compress/chunker.h"

namespace evostore::compress {
namespace {

using common::Bytes;

Bytes random_bytes(size_t n, uint64_t seed) {
  common::SplitMix64 rng(seed);
  Bytes out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::byte>(rng.next() & 0xff);
  }
  return out;
}

ChunkerConfig small_config() {
  return ChunkerConfig{/*min_bytes=*/32, /*avg_bytes=*/64, /*max_bytes=*/256};
}

TEST(Chunker, EmptyInputYieldsNoChunks) {
  EXPECT_TRUE(chunk_boundaries({}, small_config()).empty());
}

TEST(Chunker, BoundariesAreExhaustiveAndOrdered) {
  Bytes data = random_bytes(10'000, 1);
  auto ends = chunk_boundaries(data, small_config());
  ASSERT_FALSE(ends.empty());
  size_t prev = 0;
  for (size_t e : ends) {
    EXPECT_GT(e, prev);
    prev = e;
  }
  EXPECT_EQ(ends.back(), data.size());
}

TEST(Chunker, RespectsMinAndMaxExceptFinalTail) {
  ChunkerConfig cfg = small_config();
  Bytes data = random_bytes(50'000, 2);
  auto ends = chunk_boundaries(data, cfg);
  size_t start = 0;
  for (size_t i = 0; i < ends.size(); ++i) {
    size_t len = ends[i] - start;
    EXPECT_LE(len, cfg.max_bytes);
    if (i + 1 < ends.size()) {
      EXPECT_GE(len, cfg.min_bytes);
    }
    start = ends[i];
  }
}

TEST(Chunker, MeanChunkSizeNearTarget) {
  ChunkerConfig cfg = small_config();
  Bytes data = random_bytes(200'000, 3);
  auto ends = chunk_boundaries(data, cfg);
  double mean = static_cast<double>(data.size()) /
                static_cast<double>(ends.size());
  // Gear CDC lands near (min + mask span); accept a generous band.
  EXPECT_GT(mean, cfg.min_bytes);
  EXPECT_LT(mean, cfg.max_bytes);
}

TEST(Chunker, DeterministicAcrossCalls) {
  Bytes data = random_bytes(30'000, 4);
  auto a = chunk_boundaries(data, small_config());
  auto b = chunk_boundaries(data, small_config());
  EXPECT_EQ(a, b);
}

TEST(Chunker, AllZerosForceSplitsAtMax) {
  ChunkerConfig cfg = small_config();
  Bytes zeros(cfg.max_bytes * 4);
  auto ends = chunk_boundaries(zeros, cfg);
  // Constant content never produces a natural cut; every chunk is exactly
  // max_bytes (the input is a multiple of it).
  ASSERT_EQ(ends.size(), 4u);
  for (size_t i = 0; i < ends.size(); ++i) {
    EXPECT_EQ(ends[i], (i + 1) * cfg.max_bytes);
  }
}

TEST(Chunker, ShortInputIsOneChunk) {
  ChunkerConfig cfg = small_config();
  Bytes data = random_bytes(cfg.min_bytes, 5);
  auto ends = chunk_boundaries(data, cfg);
  ASSERT_EQ(ends.size(), 1u);
  EXPECT_EQ(ends[0], data.size());
}

TEST(Chunker, InvalidConfigDegeneratesToWholeStream) {
  ChunkerConfig bad{/*min_bytes=*/64, /*avg_bytes=*/32, /*max_bytes=*/16};
  EXPECT_FALSE(bad.valid());
  Bytes data = random_bytes(1000, 6);
  auto ends = chunk_boundaries(data, bad);
  ASSERT_EQ(ends.size(), 1u);
  EXPECT_EQ(ends[0], data.size());
}

// The dedup-enabling property: prepending bytes shifts every offset, yet
// most chunk *content* (keyed by digest) survives because boundaries are
// decided by local content. A fixed-size chunker would lose every chunk.
TEST(Chunker, InsertShiftPreservesMostChunkDigests) {
  ChunkerConfig cfg = small_config();
  Bytes base = random_bytes(40'000, 7);
  Bytes shifted = random_bytes(97, 8);  // insert 97 bytes up front
  shifted.insert(shifted.end(), base.begin(), base.end());

  auto digests = [&](const Bytes& data) {
    std::multiset<common::Hash128> out;
    size_t start = 0;
    for (size_t end : chunk_boundaries(data, cfg)) {
      out.insert(common::hash128_bytes(
          std::span<const std::byte>(data).subspan(start, end - start)));
      start = end;
    }
    return out;
  };
  auto a = digests(base);
  auto b = digests(shifted);
  size_t common_count = 0;
  for (const auto& h : a) {
    if (b.count(h) > 0) ++common_count;
  }
  // The edit may disturb the first chunk or two; everything after the first
  // surviving cut point realigns. Require >= 80% survival.
  EXPECT_GE(common_count * 10, a.size() * 8)
      << "only " << common_count << " of " << a.size()
      << " chunk digests survived a 97-byte prefix insertion";
}

TEST(Chunker, MidStreamEditOnlyDisturbsNearbyChunks) {
  ChunkerConfig cfg = small_config();
  Bytes base = random_bytes(60'000, 9);
  Bytes edited = base;
  // Flip a small window in the middle.
  for (size_t i = 30'000; i < 30'016; ++i) {
    edited[i] = static_cast<std::byte>(~static_cast<uint8_t>(edited[i]));
  }
  auto chunks_of = [&](const Bytes& data) {
    std::map<common::Hash128, size_t> out;
    size_t start = 0;
    for (size_t end : chunk_boundaries(data, cfg)) {
      out.emplace(common::hash128_bytes(
                      std::span<const std::byte>(data).subspan(start,
                                                               end - start)),
                  start);
      start = end;
    }
    return out;
  };
  auto a = chunks_of(base);
  auto b = chunks_of(edited);
  size_t changed = 0;
  for (const auto& [h, off] : a) {
    if (b.find(h) == b.end()) ++changed;
  }
  // A 16-byte edit can invalidate at most a handful of chunks around it.
  EXPECT_LE(changed, 4u) << changed << " of " << a.size()
                         << " chunks changed after a 16-byte edit";
}

TEST(Chunker, GearTableIsStable) {
  // The table is part of the stored format: pin two spot values so an
  // accidental reseeding (which would orphan every persisted chunk digest)
  // fails loudly. Values derive from mix64 with pinned salts.
  const uint64_t* g = gear_table();
  EXPECT_EQ(g[0], common::mix64(0x9e3779b97f4a7c15ULL));
  EXPECT_EQ(g[255],
            common::mix64(0x9e3779b97f4a7c15ULL ^ (255 * 0xff51afd7ed558ccdULL)));
}

}  // namespace
}  // namespace evostore::compress
