// Tensor codec subsystem: round-trip properties for every codec, fallback
// policy, envelope serde, and the client-side stats counters.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "compress/compressed_segment.h"
#include "compress/zero_rle.h"
#include "model/model.h"

namespace evostore::compress {
namespace {

using common::Buffer;
using model::DType;
using model::Segment;
using model::Tensor;
using model::TensorSpec;

TensorSpec spec_of(int64_t elems) {
  TensorSpec spec;
  spec.shape = {elems};
  spec.dtype = DType::kF32;
  return spec;
}

Tensor dense_tensor(int64_t elems, uint64_t seed, double zero_fraction) {
  TensorSpec spec = spec_of(elems);
  common::Bytes bytes(spec.nbytes());
  size_t zeros = static_cast<size_t>(zero_fraction *
                                     static_cast<double>(bytes.size()));
  for (size_t i = zeros; i < bytes.size(); ++i) {
    bytes[i] = static_cast<std::byte>(common::SplitMix64::at(seed, i) & 0xff);
  }
  return Tensor(spec, Buffer::copy(std::span<const std::byte>(bytes)));
}

Segment dense_segment(size_t tensors, int64_t elems, uint64_t seed,
                      double zero_fraction = 0.0) {
  Segment seg;
  for (size_t t = 0; t < tensors; ++t) {
    seg.tensors.push_back(dense_tensor(elems, seed + t, zero_fraction));
  }
  return seg;
}

Segment synthetic_segment(size_t tensors, int64_t elems, uint64_t seed) {
  Segment seg;
  for (size_t t = 0; t < tensors; ++t) {
    seg.tensors.push_back(Tensor::random(spec_of(elems), seed + t));
  }
  return seg;
}

const common::SegmentKey kBaseKey{common::ModelId::make(1, 7), 3};

// Serialize + deserialize the envelope (as the wire does), then decompress.
Segment round_trip(const CompressedSegment& env, const Segment* base) {
  common::Serializer s;
  env.serialize(s);
  common::Bytes bytes = std::move(s).take();
  common::Deserializer d{std::span<const std::byte>(bytes)};
  CompressedSegment back = CompressedSegment::deserialize(d);
  EXPECT_TRUE(d.finish().ok());
  EXPECT_EQ(back, env);
  auto seg = decompress_segment(back, base);
  EXPECT_TRUE(seg.ok()) << seg.status().to_string();
  return seg.ok() ? std::move(seg).value() : Segment{};
}

TEST(Codec, RegistryKnowsAllCodecs) {
  EXPECT_EQ(codec_for(CodecId::kRaw), &raw_codec());
  EXPECT_EQ(codec_for(CodecId::kZeroRle), &zero_rle_codec());
  EXPECT_EQ(codec_for(CodecId::kDeltaVsAncestor), &delta_codec());
  EXPECT_EQ(codec_for(static_cast<CodecId>(200)), nullptr);
  EXPECT_EQ(codec_index(static_cast<CodecId>(200)), kCodecCount);
  EXPECT_FALSE(raw_codec().needs_base());
  EXPECT_TRUE(delta_codec().needs_base());
}

TEST(Codec, RawRoundTripsDenseAndSynthetic) {
  for (const Segment& seg :
       {dense_segment(3, 64, 1), synthetic_segment(2, 256, 9), Segment{}}) {
    auto env = compress_segment(seg, CodecId::kRaw);
    ASSERT_TRUE(env.ok()) << env.status().to_string();
    EXPECT_EQ(env->codec, CodecId::kRaw);
    EXPECT_EQ(env->logical_bytes, seg.nbytes());
    EXPECT_EQ(env->physical_bytes, seg.nbytes());
    EXPECT_FALSE(env->has_base);
    Segment back = round_trip(*env, nullptr);
    EXPECT_TRUE(back.content_equals(seg));
  }
}

TEST(Codec, ZeroRleCompressesZeroHeavyContent) {
  Segment seg = dense_segment(2, 512, 3, /*zero_fraction=*/0.75);
  auto env = compress_segment(seg, CodecId::kZeroRle);
  ASSERT_TRUE(env.ok());
  EXPECT_EQ(env->codec, CodecId::kZeroRle);
  EXPECT_LT(env->physical_bytes, env->logical_bytes / 2);
  Segment back = round_trip(*env, nullptr);
  EXPECT_TRUE(back.content_equals(seg));
}

TEST(Codec, ZeroRleFallsBackToRawOnIncompressibleContent) {
  Segment seg = dense_segment(2, 512, 3, /*zero_fraction=*/0.0);
  CodecStatsTable stats{};
  auto env = compress_segment(seg, CodecId::kZeroRle, nullptr, nullptr,
                              &stats);
  ASSERT_TRUE(env.ok());
  EXPECT_EQ(env->codec, CodecId::kRaw);
  EXPECT_EQ(env->physical_bytes, seg.nbytes());
  EXPECT_EQ(stats[codec_index(CodecId::kZeroRle)].fallbacks, 1u);
  Segment back = round_trip(*env, nullptr);
  EXPECT_TRUE(back.content_equals(seg));
}

TEST(Codec, DeltaUnchangedSegmentCostsNothing) {
  Segment base = synthetic_segment(3, 1024, 5);
  Segment child = base;  // shares every buffer => identity fast path
  auto env = compress_segment(child, CodecId::kDeltaVsAncestor, &base,
                              &kBaseKey);
  ASSERT_TRUE(env.ok());
  EXPECT_EQ(env->codec, CodecId::kDeltaVsAncestor);
  EXPECT_TRUE(env->has_base);
  EXPECT_EQ(env->base, kBaseKey);
  EXPECT_EQ(env->physical_bytes, 0u);
  Segment back = round_trip(*env, &base);
  EXPECT_TRUE(back.content_equals(child));
}

TEST(Codec, DeltaFinetunedSegmentCarriesOnlyChangedSlots) {
  Segment base = synthetic_segment(4, 1024, 5);
  Segment child = base;
  child.tensors[2] = Tensor::random(child.tensors[2].spec(), 777);
  auto env = compress_segment(child, CodecId::kDeltaVsAncestor, &base,
                              &kBaseKey);
  ASSERT_TRUE(env.ok());
  EXPECT_EQ(env->codec, CodecId::kDeltaVsAncestor);
  // Exactly one of four equal-size tensors changed.
  EXPECT_EQ(env->physical_bytes, child.tensors[2].nbytes());
  Segment back = round_trip(*env, &base);
  EXPECT_TRUE(back.content_equals(child));
}

TEST(Codec, DeltaDenseDiffCompressesSmallPerturbations) {
  Segment base = dense_segment(2, 1024, 11);
  Segment child = base;
  // Perturb a few bytes of tensor 0: the byte-wise diff is almost all zeros
  // and RLE-compresses far below the raw size.
  common::Bytes bytes(base.tensors[0].data().size());
  base.tensors[0].data().read(0, bytes);
  bytes[10] ^= std::byte{0x5a};
  bytes[100] ^= std::byte{0x21};
  child.tensors[0] =
      Tensor(base.tensors[0].spec(),
             Buffer::copy(std::span<const std::byte>(bytes)));
  auto env = compress_segment(child, CodecId::kDeltaVsAncestor, &base,
                              &kBaseKey);
  ASSERT_TRUE(env.ok());
  EXPECT_EQ(env->codec, CodecId::kDeltaVsAncestor);
  EXPECT_LT(env->physical_bytes, child.nbytes() / 10);
  Segment back = round_trip(*env, &base);
  EXPECT_TRUE(back.content_equals(child));
}

TEST(Codec, DeltaWithoutBaseFallsBackToRaw) {
  Segment seg = synthetic_segment(2, 256, 21);
  auto env = compress_segment(seg, CodecId::kDeltaVsAncestor);
  ASSERT_TRUE(env.ok());
  EXPECT_EQ(env->codec, CodecId::kRaw);
  EXPECT_FALSE(env->has_base);
  Segment back = round_trip(*env, nullptr);
  EXPECT_TRUE(back.content_equals(seg));
}

TEST(Codec, DeltaAgainstUnrelatedBaseFallsBackToRaw) {
  // Every tensor differs and none is dense-diffable: the delta is as big as
  // raw, so the fallback policy drops the base dependency.
  Segment base = synthetic_segment(3, 256, 1);
  Segment seg = synthetic_segment(3, 256, 1000);
  auto env = compress_segment(seg, CodecId::kDeltaVsAncestor, &base,
                              &kBaseKey);
  ASSERT_TRUE(env.ok());
  EXPECT_EQ(env->codec, CodecId::kRaw);
  EXPECT_FALSE(env->has_base);
  Segment back = round_trip(*env, nullptr);
  EXPECT_TRUE(back.content_equals(seg));
}

TEST(Codec, DecompressDeltaWithoutBaseIsAnError) {
  Segment base = synthetic_segment(2, 128, 2);
  Segment child = base;
  child.tensors[1] = Tensor::random(child.tensors[1].spec(), 99);
  auto env = compress_segment(child, CodecId::kDeltaVsAncestor, &base,
                              &kBaseKey);
  ASSERT_TRUE(env.ok());
  ASSERT_TRUE(env->has_base);
  auto seg = decompress_segment(*env, nullptr);
  EXPECT_FALSE(seg.ok());
}

TEST(Codec, DecompressRejectsUnknownCodec) {
  auto env = compress_segment(dense_segment(1, 16, 1), CodecId::kRaw);
  ASSERT_TRUE(env.ok());
  env->codec = static_cast<CodecId>(99);
  auto seg = decompress_segment(*env);
  EXPECT_FALSE(seg.ok());
  EXPECT_EQ(seg.status().code(), common::ErrorCode::kCorruption);
}

TEST(Codec, DecompressRejectsLogicalSizeMismatch) {
  auto env = compress_segment(dense_segment(2, 64, 1), CodecId::kRaw);
  ASSERT_TRUE(env.ok());
  env->logical_bytes += 1;
  auto seg = decompress_segment(*env);
  EXPECT_FALSE(seg.ok());
}

// Property: for any segment shape/content mix and any codec, encode ->
// envelope serde -> decode reproduces the content bit-exactly, and
// physical_bytes never exceeds logical (+ the fallback threshold slack).
TEST(Codec, PropertyRoundTripAcrossShapesAndCodecs) {
  int case_index = 0;
  for (uint64_t seed : {1ull, 42ull, 999ull}) {
    for (size_t tensors : {size_t{0}, size_t{1}, size_t{3}}) {
      for (int64_t elems : {int64_t{1}, int64_t{64}, int64_t{500}}) {
        // Mixed content: even slots synthetic, odd slots dense (half zeros).
        Segment seg;
        for (size_t t = 0; t < tensors; ++t) {
          if (t % 2 == 0) {
            seg.tensors.push_back(Tensor::random(spec_of(elems), seed + t));
          } else {
            seg.tensors.push_back(dense_tensor(elems, seed + t, 0.5));
          }
        }
        // Base: same shapes, every third slot identical to seg.
        Segment base;
        for (size_t t = 0; t < tensors; ++t) {
          base.tensors.push_back(t % 3 == 0 ? seg.tensors[t]
                                            : dense_tensor(elems, seed ^ t,
                                                           0.25));
        }
        for (CodecId codec : {CodecId::kRaw, CodecId::kZeroRle,
                              CodecId::kDeltaVsAncestor}) {
          SCOPED_TRACE("case " + std::to_string(case_index++) + " codec " +
                       std::string(codec_name(codec)));
          auto env = compress_segment(seg, codec, &base, &kBaseKey);
          ASSERT_TRUE(env.ok()) << env.status().to_string();
          EXPECT_EQ(env->logical_bytes, seg.nbytes());
          EXPECT_LE(env->physical_bytes, seg.nbytes());
          Segment back = round_trip(*env, env->has_base ? &base : nullptr);
          EXPECT_TRUE(back.content_equals(seg));
        }
      }
    }
  }
}

TEST(Codec, StatsCountEncodesDecodesAndVolume) {
  CodecStatsTable stats{};
  Segment seg = dense_segment(2, 512, 3, 0.75);
  auto env = compress_segment(seg, CodecId::kZeroRle, nullptr, nullptr,
                              &stats);
  ASSERT_TRUE(env.ok());
  const CodecStats& enc = stats[codec_index(CodecId::kZeroRle)];
  EXPECT_EQ(enc.encodes, 1u);
  EXPECT_EQ(enc.fallbacks, 0u);
  EXPECT_EQ(enc.bytes_in, seg.nbytes());
  EXPECT_EQ(enc.bytes_out, env->physical_bytes);
  EXPECT_LT(enc.ratio(), 1.0);
  auto back = decompress_segment(*env, nullptr, &stats);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(stats[codec_index(CodecId::kZeroRle)].decodes, 1u);
}

TEST(ZeroRle, ByteStreamRoundTripsAndRejectsCorruption) {
  common::Bytes in(1000);
  for (size_t i = 0; i < in.size(); ++i) {
    in[i] = (i % 10 < 7) ? std::byte{0}
                         : static_cast<std::byte>(
                               common::SplitMix64::at(4, i) & 0xff);
  }
  common::Bytes encoded = zero_rle_encode(std::span<const std::byte>(in));
  EXPECT_LT(encoded.size(), in.size());
  common::Bytes out(in.size());
  ASSERT_TRUE(zero_rle_decode(std::span<const std::byte>(encoded),
                              std::span<std::byte>(out))
                  .ok());
  EXPECT_EQ(in, out);
  // Truncated stream must fail cleanly.
  auto truncated = std::span<const std::byte>(encoded).first(
      encoded.size() / 2);
  EXPECT_FALSE(zero_rle_decode(truncated, std::span<std::byte>(out)).ok());
  // Wrong declared output size must fail cleanly.
  common::Bytes small(in.size() / 2);
  EXPECT_FALSE(zero_rle_decode(std::span<const std::byte>(encoded),
                               std::span<std::byte>(small))
                   .ok());
}

TEST(Finetune, DeterministicAndSharesUnchangedBuffers) {
  Segment base = synthetic_segment(8, 128, 31);
  Segment a = model::finetune_segment(base, 12345, 0.3);
  Segment b = model::finetune_segment(base, 12345, 0.3);
  EXPECT_TRUE(a.content_equals(b));
  // Some slots changed, some kept — and kept slots share the base's buffer
  // identity (the delta codec's zero-cost path).
  size_t kept = 0, changed = 0;
  for (size_t t = 0; t < base.tensors.size(); ++t) {
    if (a.tensors[t].identity() == base.tensors[t].identity()) {
      ++kept;
    } else {
      ++changed;
    }
  }
  EXPECT_GT(kept, 0u);
  EXPECT_GT(changed, 0u);
  // A different seed fine-tunes differently.
  Segment c = model::finetune_segment(base, 54321, 0.3);
  EXPECT_FALSE(c.content_equals(a));
}

}  // namespace
}  // namespace evostore::compress
