// CompressedSegment envelope: the versioned kind byte, the kChunked manifest
// representation, and the defined decode errors for input from the future
// (unknown kind / unknown codec) or from an attacker (lying lengths).
#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "common/serde.h"
#include "compress/compressed_segment.h"

namespace evostore::compress {
namespace {

using common::Bytes;
using common::Deserializer;
using common::Serializer;

CompressedSegment chunked_envelope() {
  CompressedSegment env;
  env.kind = EnvelopeKind::kChunked;
  env.codec = CodecId::kRaw;
  env.logical_bytes = 300;
  env.physical_bytes = 300;
  env.chunks = {
      ChunkRef{{0x1111222233334444ULL, 0x5555666677778888ULL}, 100},
      ChunkRef{{0x9999aaaabbbbccccULL, 0xddddeeeeffff0000ULL}, 200},
  };
  return env;
}

Bytes encode(const CompressedSegment& env) {
  Serializer s;
  env.serialize(s);
  return std::move(s).take();
}

TEST(Envelope, ChunkedRoundTripPreservesManifest) {
  CompressedSegment env = chunked_envelope();
  env.has_base = true;
  env.base = common::SegmentKey{common::ModelId::make(2, 9), 4};

  Bytes wire = encode(env);
  Deserializer d(wire);
  CompressedSegment back = CompressedSegment::deserialize(d);
  ASSERT_TRUE(d.finish().ok()) << d.status().to_string();
  EXPECT_EQ(back, env);
  EXPECT_TRUE(back.payload.empty());
  EXPECT_EQ(back.manifest_bytes(), 300u);
}

TEST(Envelope, KindByteLeadsTheWireFormat) {
  CompressedSegment inline_env;  // default: kInline, empty Raw payload
  EXPECT_EQ(encode(inline_env)[0], std::byte{0});
  EXPECT_EQ(encode(chunked_envelope())[0], std::byte{1});
}

TEST(Envelope, UnknownKindIsADefinedDecodeError) {
  Bytes wire = encode(chunked_envelope());
  // A future envelope kind this reader does not know.
  wire[0] = std::byte{kEnvelopeKindCount};
  Deserializer d(wire);
  (void)CompressedSegment::deserialize(d);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), common::ErrorCode::kCorruption)
      << d.status().to_string();
  EXPECT_NE(d.status().to_string().find("envelope kind"), std::string::npos)
      << d.status().to_string();
}

TEST(Envelope, UnknownCodecIsADefinedDecodeError) {
  Bytes wire = encode(chunked_envelope());
  wire[1] = std::byte{0xee};  // codec id byte follows the kind byte
  Deserializer d(wire);
  (void)CompressedSegment::deserialize(d);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), common::ErrorCode::kCorruption)
      << d.status().to_string();
  EXPECT_NE(d.status().to_string().find("codec"), std::string::npos);
}

TEST(Envelope, TruncatedManifestFailsCleanly) {
  Bytes wire = encode(chunked_envelope());
  for (size_t cut = 1; cut < wire.size(); ++cut) {
    Bytes prefix(wire.begin(), wire.begin() + static_cast<long>(cut));
    Deserializer d(prefix);
    (void)CompressedSegment::deserialize(d);
    EXPECT_FALSE(d.finish().ok()) << "cut at " << cut << " decoded cleanly";
  }
}

TEST(Envelope, LyingManifestCountCannotForceAllocation) {
  // Hand-build a chunked envelope whose manifest claims 2^40 entries with
  // almost no bytes behind it: check_count must fail the stream instead of
  // reserving terabytes.
  Serializer s;
  s.u8(1);  // kChunked
  s.u8(0);  // Raw
  s.u64(0);
  s.u64(0);
  s.boolean(false);
  s.u64(uint64_t{1} << 40);  // chunk count
  Bytes wire = std::move(s).take();
  Deserializer d(wire);
  CompressedSegment env = CompressedSegment::deserialize(d);
  ASSERT_FALSE(d.ok());
  EXPECT_TRUE(env.chunks.empty());
}

TEST(Envelope, DecompressRejectsChunkedEnvelope) {
  auto seg = decompress_segment(chunked_envelope());
  ASSERT_FALSE(seg.ok());
  EXPECT_EQ(seg.status().code(), common::ErrorCode::kInvalidArgument)
      << seg.status().to_string();
}

}  // namespace
}  // namespace evostore::compress
