// Client-side cooperative segment cache (DESIGN.md §14): repeat reads move
// no payload bytes, provider validation keeps cached bytes correct across
// retire, peer redirects serve from other clients' caches, and faulted runs
// stay deterministic.
#include <gtest/gtest.h>

#include "net/fault.h"
#include "tests/core/test_env.h"

namespace evostore::core {
namespace {

using common::ModelId;
using common::NodeId;
using common::VertexId;
using testing::ClusterEnv;
using testing::chain_graph;

ClientConfig cached_config(uint64_t capacity_bytes, double trust_seconds = 0) {
  ClientConfig c;
  c.cache.capacity_bytes = capacity_bytes;
  c.cache.trust_seconds = trust_seconds;
  return c;
}

struct CacheReadTest : ::testing::Test {
  model::Model make_and_store(ClusterEnv& env, int layers = 6,
                              int64_t width = 32) {
    auto g = chain_graph(layers, width);
    auto m = model::Model::random(env.repo->allocate_id(), g, 42);
    m.set_quality(0.5);
    auto task = [&]() -> sim::CoTask<common::Status> {
      co_return co_await env.client().put_model(m, nullptr);
    };
    EXPECT_TRUE(env.run(task()).ok());
    return m;
  }

  void expect_identical(const Result<model::Model>& r, const model::Model& m) {
    ASSERT_TRUE(r.ok()) << r.status().to_string();
    for (VertexId v = 0; v < m.vertex_count(); ++v) {
      EXPECT_TRUE(r->segment(v).content_equals(m.segment(v))) << v;
    }
  }

  uint64_t totals_not_modified(ClusterEnv& env) {
    auto stats = env.run(env.client().collect_stats());
    EXPECT_TRUE(stats.ok());
    return stats->totals.not_modified_reads;
  }
};

TEST_F(CacheReadTest, RepeatReadRevalidatesWithoutPayload) {
  ClusterEnv env{4, ProviderConfig{}, cached_config(1 << 20)};
  auto m = make_and_store(env);
  const size_t vertices = m.vertex_count();

  double b0 = env.rpc.stats().bulk_bytes;
  expect_identical(env.run(env.client().get_model(m.id())), m);
  double first_read_bytes = env.rpc.stats().bulk_bytes - b0;
  EXPECT_GT(first_read_bytes, 0);

  // Strict validation (trust 0): the second read still asks every owning
  // provider, but a matching version answers NotModified — zero payload
  // bytes on the wire.
  double b1 = env.rpc.stats().bulk_bytes;
  expect_identical(env.run(env.client().get_model(m.id())), m);
  EXPECT_EQ(env.rpc.stats().bulk_bytes - b1, 0.0);

  const auto& cs = env.client().segment_cache()->stats();
  EXPECT_EQ(cs.misses, vertices);
  EXPECT_EQ(cs.revalidations, vertices);
  EXPECT_EQ(cs.hits, 0u);
  EXPECT_GT(cs.bytes_saved, 0u);
  EXPECT_EQ(totals_not_modified(env), vertices);
}

TEST_F(CacheReadTest, TrustedReadSkipsProvidersEntirely) {
  ClusterEnv env{4, ProviderConfig{}, cached_config(1 << 20, /*trust=*/3600)};
  auto m = make_and_store(env);
  const size_t vertices = m.vertex_count();

  expect_identical(env.run(env.client().get_model(m.id())), m);
  double b1 = env.rpc.stats().bulk_bytes;
  expect_identical(env.run(env.client().get_model(m.id())), m);
  EXPECT_EQ(env.rpc.stats().bulk_bytes - b1, 0.0);

  const auto& cs = env.client().segment_cache()->stats();
  EXPECT_EQ(cs.hits, vertices);
  EXPECT_EQ(cs.revalidations, 0u);
  // Segments were served before any provider round trip happened.
  EXPECT_EQ(totals_not_modified(env), 0u);
}

TEST_F(CacheReadTest, RetireInvalidatesCachedEntries) {
  ClusterEnv env{4, ProviderConfig{}, cached_config(1 << 20)};
  auto m = make_and_store(env);
  const size_t vertices = m.vertex_count();

  expect_identical(env.run(env.client().get_model(m.id())), m);
  EXPECT_EQ(env.client().segment_cache()->entry_count(), vertices);

  ASSERT_TRUE(env.run(env.client().retire(m.id())).ok());
  EXPECT_EQ(env.client().segment_cache()->entry_count(), 0u);
  EXPECT_EQ(env.client().segment_cache()->stats().invalidations, vertices);
  EXPECT_EQ(env.run(env.client().get_model(m.id())).status().code(),
            common::ErrorCode::kNotFound);
}

TEST_F(CacheReadTest, PeerRedirectServesFromAnotherClientsCache) {
  ClusterEnv env{4, ProviderConfig{}, cached_config(1 << 20)};
  auto m = make_and_store(env);
  const size_t vertices = m.vertex_count();

  // Client A fills its cache; the providers record A as a known holder.
  expect_identical(env.run(env.client().get_model(m.id())), m);

  // Client B's first read gets redirect hints and pulls the envelopes from
  // A's cache instead of the providers.
  NodeId node_b = env.fabric.add_node(25e9, 25e9);
  Client& cli_b = env.repo->client(node_b);
  expect_identical(env.run(cli_b.get_model(m.id())), m);

  const auto& bs = cli_b.segment_cache()->stats();
  EXPECT_EQ(bs.peer_hits, vertices);
  EXPECT_EQ(bs.peer_misses, 0u);
  auto stats = env.run(env.client().collect_stats());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->totals.redirects_issued, vertices);

  // B's copy is now first-class: a repeat read revalidates locally.
  double b1 = env.rpc.stats().bulk_bytes;
  expect_identical(env.run(cli_b.get_model(m.id())), m);
  EXPECT_EQ(env.rpc.stats().bulk_bytes - b1, 0.0);
}

TEST_F(CacheReadTest, CrashedPeerFallsBackToProvider) {
  ClusterEnv env{4, ProviderConfig{}, cached_config(1 << 20)};
  net::FaultInjector injector(env.sim);
  env.rpc.set_fault_injector(&injector);

  auto m = make_and_store(env);
  expect_identical(env.run(env.client().get_model(m.id())), m);

  // A goes down for good. The providers notice the dead peer the moment a
  // redirect would name it, drop the stale directory entry, and serve the
  // bytes themselves — B must see identical payloads WITHOUT ever being
  // pointed at the corpse (regression: redirect-to-dead-peer used to cost
  // every read a doomed peer round trip).
  injector.schedule_crash(env.worker, env.sim.now(), /*downtime=*/1e9);
  NodeId node_b = env.fabric.add_node(25e9, 25e9);
  Client& cli_b = env.repo->client(node_b);
  expect_identical(env.run(cli_b.get_model(m.id())), m);

  const auto& bs = cli_b.segment_cache()->stats();
  EXPECT_EQ(bs.peer_hits, 0u);
  EXPECT_EQ(bs.peer_misses, 0u);
  EXPECT_EQ(bs.misses, m.vertex_count());
  auto stats = env.run(cli_b.collect_stats());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->totals.redirects_issued, 0u);
}

TEST_F(CacheReadTest, FaultedRunIsDeterministicAcrossReplays) {
  struct Digest {
    double bulk_bytes = 0;
    double end_time = 0;
    uint64_t peer_hits = 0;
    uint64_t peer_misses = 0;
    uint64_t revalidations = 0;
    uint64_t not_modified = 0;
    uint64_t redirects = 0;

    bool operator==(const Digest&) const = default;
  };
  auto run_once = [&]() -> Digest {
    ClusterEnv env{4, ProviderConfig{}, cached_config(1 << 20)};
    net::FaultInjector injector(env.sim);
    env.rpc.set_fault_injector(&injector);
    auto m = make_and_store(env);
    expect_identical(env.run(env.client().get_model(m.id())), m);
    injector.schedule_crash(env.worker, env.sim.now() + 1e-4, 0.5);
    NodeId node_b = env.fabric.add_node(25e9, 25e9);
    Client& cli_b = env.repo->client(node_b);
    expect_identical(env.run(cli_b.get_model(m.id())), m);
    expect_identical(env.run(cli_b.get_model(m.id())), m);
    auto stats = env.run(cli_b.collect_stats());
    EXPECT_TRUE(stats.ok());
    const auto& bs = cli_b.segment_cache()->stats();
    return Digest{env.rpc.stats().bulk_bytes,
                  env.sim.now(),
                  bs.peer_hits,
                  bs.peer_misses,
                  bs.revalidations,
                  stats->totals.not_modified_reads,
                  stats->totals.redirects_issued};
  };
  Digest first = run_once();
  Digest second = run_once();
  EXPECT_EQ(first, second);
}

TEST_F(CacheReadTest, DisabledCacheKeepsWireTrafficIdentical) {
  auto traffic = [&](ClientConfig config) {
    ClusterEnv env{4, ProviderConfig{}, config};
    auto m = make_and_store(env);
    expect_identical(env.run(env.client().get_model(m.id())), m);
    return env.rpc.stats().bulk_bytes;
  };
  // capacity_bytes == 0 must be byte-identical to the pre-cache client; a
  // cold cache changes nothing about the first read either.
  EXPECT_EQ(traffic(ClientConfig{}), traffic(cached_config(1 << 20)));
}

}  // namespace
}  // namespace evostore::core
