// get_model_via_chain (the paper's §4.1 "simple solution" ablation baseline)
// must reconstruct byte-identical models — just with chain-length-dependent
// cost — and fail cleanly where the naive scheme genuinely breaks.
#include <gtest/gtest.h>

#include "tests/core/test_env.h"

namespace evostore::core {
namespace {

using common::ModelId;
using common::VertexId;
using testing::ClusterEnv;
using testing::widths_graph;

// Build a derivation chain where generation k rewrites dense layer k, so
// every ancestor owns live tensors of the leaf.
struct ChainFixture : ::testing::Test {
  static constexpr int kLayers = 8;
  ClusterEnv env{4};
  std::vector<model::Model> generations;

  void build(int chain_length) {
    auto& cli = env.client();
    std::vector<int64_t> widths(kLayers + 1, 16);
    auto base = model::Model::random(env.repo->allocate_id(),
                                     widths_graph(widths), 1);
    base.set_quality(0.5);
    ASSERT_TRUE(store(base, nullptr));
    generations.push_back(std::move(base));
    for (int gen = 1; gen <= chain_length; ++gen) {
      widths[gen] = 100 + gen;
      auto g = widths_graph(widths);
      auto prep = env.run(cli.prepare_transfer(g, true));
      ASSERT_TRUE(prep.ok() && prep->has_value()) << "generation " << gen;
      auto tc = std::move(prep->value());
      ASSERT_EQ(tc.ancestor, generations.back().id());
      auto m = model::Model::random(env.repo->allocate_id(), g,
                                    static_cast<uint64_t>(100 + gen));
      for (size_t i = 0; i < tc.matches.size(); ++i) {
        m.segment(tc.matches[i].first) = tc.prefix_segments[i];
      }
      m.set_quality(0.5 + 0.01 * gen);
      ASSERT_TRUE(store(m, &tc));
      generations.push_back(std::move(m));
    }
  }

  bool store(const model::Model& m, const TransferContext* tc) {
    auto task = [&]() -> sim::CoTask<common::Status> {
      co_return co_await env.client().put_model(m, tc);
    };
    return env.run(task()).ok();
  }
};

TEST_F(ChainFixture, ChainReadMatchesOwnerMapRead) {
  build(5);
  const auto& leaf = generations.back();
  auto via_map = env.run(env.client().get_model(leaf.id()));
  auto via_chain = env.run(env.client().get_model_via_chain(leaf.id()));
  ASSERT_TRUE(via_map.ok());
  ASSERT_TRUE(via_chain.ok()) << via_chain.status().to_string();
  for (VertexId v = 0; v < leaf.vertex_count(); ++v) {
    EXPECT_TRUE(via_chain->segment(v).content_equals(leaf.segment(v))) << v;
    EXPECT_TRUE(via_chain->segment(v).content_equals(via_map->segment(v))) << v;
  }
  EXPECT_NEAR(via_chain->quality(), leaf.quality(), 1e-9);
}

TEST_F(ChainFixture, ChainReadOfRootModel) {
  build(0);
  auto r = env.run(env.client().get_model_via_chain(generations[0].id()));
  ASSERT_TRUE(r.ok());
}

TEST_F(ChainFixture, ChainReadCostGrowsWithDepthOwnerMapDoesNot) {
  build(6);
  auto timed = [&](auto&& reader, ModelId id) {
    double t0 = env.sim.now();
    auto r = env.run(reader(id));
    EXPECT_TRUE(r.ok());
    return env.sim.now() - t0;
  };
  auto& cli = env.client();
  auto map_read = [&](ModelId id) { return cli.get_model(id); };
  auto chain_read = [&](ModelId id) { return cli.get_model_via_chain(id); };

  double map_shallow = timed(map_read, generations[1].id());
  double map_deep = timed(map_read, generations.back().id());
  double chain_shallow = timed(chain_read, generations[1].id());
  double chain_deep = timed(chain_read, generations.back().id());

  // Owner-map reads stay flat (within 2x of shallow); chain reads grow with
  // depth and exceed the owner-map path (paper §4.1).
  // (A deep model's owner map spans more distinct replica groups than a
  // shallow one's, so "flat" allows up to 3x.)
  EXPECT_LT(map_deep, 3.0 * map_shallow);
  EXPECT_GT(chain_deep, 2.0 * chain_shallow);
  EXPECT_GT(chain_deep, 2.0 * map_deep);
}

TEST_F(ChainFixture, ChainReadFailsWhenAncestorRetired) {
  build(3);
  // Retire the middle generation: owner-map reads still work (refcounts keep
  // the tensors), but the naive chain walk loses the metadata link.
  ASSERT_TRUE(env.run(env.client().retire(generations[1].id())).ok());
  auto via_map = env.run(env.client().get_model(generations.back().id()));
  EXPECT_TRUE(via_map.ok());
  auto via_chain =
      env.run(env.client().get_model_via_chain(generations.back().id()));
  EXPECT_FALSE(via_chain.ok());
}

TEST_F(ChainFixture, ChainReadMissingLeaf) {
  build(1);
  auto r = env.run(env.client().get_model_via_chain(ModelId::make(9, 9)));
  EXPECT_EQ(r.status().code(), common::ErrorCode::kNotFound);
}

}  // namespace
}  // namespace evostore::core
